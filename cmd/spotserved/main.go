// Command spotserved is the long-running serving daemon: an HTTP management
// plane over the scenario-sweep harness. Clients submit grid job specs,
// poll or stream NDJSON rows as cells finish, and repeated what-if queries
// are served from the fingerprint-keyed cell cache. Jobs run fault-
// isolated: a failing cell degrades to an n/a row instead of failing the
// job, per-cell retries are deterministic, and jobs can carry deadlines or
// be cancelled mid-run.
//
// Usage:
//
//	spotserved [-addr :8044] [-queue 16] [-parallel 0] [-cache-cells 4096] [-no-cache]
//	           [-retries 1] [-retry-backoff 100ms]
//	           [-chaos kind] [-chaos-seed 1] [-chaos-rate 0.05] [-chaos-cells 3,7]
//
// Endpoints (full schema in docs/ARCHITECTURE.md):
//
//	POST   /jobs              submit a grid spec → 202 {"id": "job-000001", ...}
//	GET    /jobs              list jobs
//	GET    /jobs/{id}         poll status, rows, rendered table when done
//	DELETE /jobs/{id}         cancel a queued or running job
//	GET    /jobs/{id}/stream  NDJSON rows as cells finish + terminal done-line
//	GET    /healthz           liveness
//	GET    /stats             queue depth, cache hit rate, retry/failure counters
//
// Example session:
//
//	spotserved -addr :8044 &
//	curl -s -X POST localhost:8044/jobs -d '{"avail":["diurnal"],"policies":["fixed"],"fleets":["homog"],"seeds":2}'
//	curl -sN localhost:8044/jobs/job-000001/stream
//	curl -s -X DELETE localhost:8044/jobs/job-000001
//	curl -s localhost:8044/stats
//
// The -chaos flags run the daemon in chaos mode: the named fault plan
// (internal/faults) is injected deterministically into every job, proving
// the degraded paths on live traffic without touching results — completed
// cells stay byte-identical to a fault-free run.
//
// SIGINT/SIGTERM drain gracefully: submissions are refused, in-flight and
// queued jobs finish (bounded by -drain-timeout), then the process exits.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"spotserve/internal/experiments"
	"spotserve/internal/faults"
	"spotserve/internal/serve"
)

func main() {
	addr := flag.String("addr", ":8044", "HTTP listen address")
	queue := flag.Int("queue", serve.DefaultQueueDepth, "job queue depth; submissions beyond it get 429")
	parallel := flag.Int("parallel", 0, "sweep worker pool size per job (0 = all cores)")
	cacheCells := flag.Int("cache-cells", serve.DefaultCacheCells, "cell cache capacity (completed per-seed replicas)")
	noCache := flag.Bool("no-cache", false, "disable the cell cache (every job simulates every replica)")
	drainTimeout := flag.Duration("drain-timeout", 5*time.Minute, "max time to drain queued and in-flight jobs on shutdown")
	retries := flag.Int("retries", 1, "per-cell attempt budget (1 = no retries); retries are deterministic and never change results")
	retryBackoff := flag.Duration("retry-backoff", 100*time.Millisecond, "base backoff before a cell retry (doubles per attempt, capped)")
	maxBody := flag.Int64("max-body", serve.DefaultMaxBodyBytes, "request body size limit in bytes")
	readHeaderTimeout := flag.Duration("read-header-timeout", 5*time.Second, "http.Server ReadHeaderTimeout (slow-loris guard)")
	idleTimeout := flag.Duration("idle-timeout", 2*time.Minute, "http.Server IdleTimeout for keep-alive connections")
	chaos := flag.String("chaos", "", "chaos mode: inject the named fault plan into every job ("+strings.Join(faults.Kinds(), ", ")+")")
	chaosSeed := flag.Int64("chaos-seed", 1, "chaos plan seed (same seed = same fault schedule)")
	chaosRate := flag.Float64("chaos-rate", 0.05, "fraction of cells the chaos plan afflicts")
	chaosCells := flag.String("chaos-cells", "", "comma-separated sweep job indices to afflict (overrides -chaos-rate)")
	flag.Parse()
	if flag.NArg() > 0 {
		fmt.Fprintf(os.Stderr, "unexpected argument %q\n", flag.Arg(0))
		flag.Usage()
		os.Exit(2)
	}

	var plan *faults.Plan
	if *chaos != "" {
		kind, ok := faults.ByName(*chaos)
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown -chaos kind %q (have %s)\n", *chaos, strings.Join(faults.Kinds(), ", "))
			os.Exit(2)
		}
		p := faults.Plan{Kind: kind, Seed: *chaosSeed, Rate: *chaosRate}
		if *chaosCells != "" {
			for _, f := range strings.Split(*chaosCells, ",") {
				n, err := strconv.Atoi(strings.TrimSpace(f))
				if err != nil {
					fmt.Fprintf(os.Stderr, "bad -chaos-cells entry %q: %v\n", f, err)
					os.Exit(2)
				}
				p.Cells = append(p.Cells, n)
			}
		}
		if err := p.Validate(); err != nil {
			fmt.Fprintf(os.Stderr, "%v\n", err)
			os.Exit(2)
		}
		plan = &p
	}

	daemon := serve.New(serve.Options{
		QueueDepth:   *queue,
		Parallel:     *parallel,
		CacheCells:   *cacheCells,
		DisableCache: *noCache,
		Retry: experiments.RetryPolicy{
			MaxAttempts: *retries,
			Backoff:     *retryBackoff,
		},
		Faults:       plan,
		MaxBodyBytes: *maxBody,
	})
	httpSrv := &http.Server{
		Addr:    *addr,
		Handler: daemon.Handler(),
		// ReadHeaderTimeout bounds how long a connection may dribble its
		// request head (slow-loris), and IdleTimeout reaps idle keep-alive
		// connections. Deliberately NO WriteTimeout: /jobs/{id}/stream is a
		// long-lived NDJSON response that writes for as long as the job
		// runs, and a write deadline would sever every slow stream mid-job.
		// Stream lifetime is bounded by the job itself (deadline_ms,
		// DELETE, drain), not by the transport.
		ReadHeaderTimeout: *readHeaderTimeout,
		IdleTimeout:       *idleTimeout,
	}

	errc := make(chan error, 1)
	go func() { errc <- httpSrv.ListenAndServe() }()
	fmt.Fprintf(os.Stderr, "spotserved: listening on %s (queue %d, cache %s%s)\n",
		*addr, *queue, cacheLabel(*noCache, *cacheCells), chaosLabel(plan))

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errc:
		fmt.Fprintf(os.Stderr, "spotserved: %v\n", err)
		os.Exit(1)
	case got := <-sig:
		fmt.Fprintf(os.Stderr, "spotserved: %v, draining (timeout %v)\n", got, *drainTimeout)
	}

	ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	// Drain the job queue first — daemon.Shutdown refuses new submissions
	// immediately (503) while HTTP stays up so clients can keep polling and
	// streaming the jobs being drained. Stopping HTTP first would deadlock:
	// stream connections only end when their job finishes.
	drainErr := daemon.Shutdown(ctx)
	if err := httpSrv.Shutdown(ctx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		fmt.Fprintf(os.Stderr, "spotserved: http shutdown: %v\n", err)
	}
	if drainErr != nil {
		fmt.Fprintf(os.Stderr, "spotserved: drain incomplete: %v\n", drainErr)
		os.Exit(1)
	}
	fmt.Fprintln(os.Stderr, "spotserved: drained, bye")
}

func cacheLabel(disabled bool, cells int) string {
	if disabled {
		return "off"
	}
	return fmt.Sprintf("%d cells", cells)
}

func chaosLabel(p *faults.Plan) string {
	if p == nil {
		return ""
	}
	return fmt.Sprintf(", chaos %s seed %d", p.Kind, p.Seed)
}
