// Command spotserved is the long-running serving daemon: an HTTP management
// plane over the scenario-sweep harness. Clients submit grid job specs,
// poll or stream NDJSON rows as cells finish, and repeated what-if queries
// are served from the fingerprint-keyed cell cache.
//
// Usage:
//
//	spotserved [-addr :8044] [-queue 16] [-parallel 0] [-cache-cells 4096] [-no-cache]
//
// Endpoints (full schema in docs/ARCHITECTURE.md):
//
//	POST /jobs              submit a grid spec → 202 {"id": "job-000001", ...}
//	GET  /jobs              list jobs
//	GET  /jobs/{id}         poll status, rows, rendered table when done
//	GET  /jobs/{id}/stream  NDJSON rows as cells finish
//	GET  /healthz           liveness
//	GET  /stats             queue depth, cache hit rate, jobs served
//
// Example session:
//
//	spotserved -addr :8044 &
//	curl -s -X POST localhost:8044/jobs -d '{"avail":["diurnal"],"policies":["fixed"],"fleets":["homog"],"seeds":2}'
//	curl -sN localhost:8044/jobs/job-000001/stream
//	curl -s localhost:8044/stats
//
// SIGINT/SIGTERM drain gracefully: submissions are refused, in-flight and
// queued jobs finish (bounded by -drain-timeout), then the process exits.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"spotserve/internal/serve"
)

func main() {
	addr := flag.String("addr", ":8044", "HTTP listen address")
	queue := flag.Int("queue", serve.DefaultQueueDepth, "job queue depth; submissions beyond it get 429")
	parallel := flag.Int("parallel", 0, "sweep worker pool size per job (0 = all cores)")
	cacheCells := flag.Int("cache-cells", serve.DefaultCacheCells, "cell cache capacity (completed per-seed replicas)")
	noCache := flag.Bool("no-cache", false, "disable the cell cache (every job simulates every replica)")
	drainTimeout := flag.Duration("drain-timeout", 5*time.Minute, "max time to drain queued and in-flight jobs on shutdown")
	flag.Parse()
	if flag.NArg() > 0 {
		fmt.Fprintf(os.Stderr, "unexpected argument %q\n", flag.Arg(0))
		flag.Usage()
		os.Exit(2)
	}

	daemon := serve.New(serve.Options{
		QueueDepth:   *queue,
		Parallel:     *parallel,
		CacheCells:   *cacheCells,
		DisableCache: *noCache,
	})
	httpSrv := &http.Server{Addr: *addr, Handler: daemon.Handler()}

	errc := make(chan error, 1)
	go func() { errc <- httpSrv.ListenAndServe() }()
	fmt.Fprintf(os.Stderr, "spotserved: listening on %s (queue %d, cache %s)\n",
		*addr, *queue, cacheLabel(*noCache, *cacheCells))

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errc:
		fmt.Fprintf(os.Stderr, "spotserved: %v\n", err)
		os.Exit(1)
	case got := <-sig:
		fmt.Fprintf(os.Stderr, "spotserved: %v, draining (timeout %v)\n", got, *drainTimeout)
	}

	ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	// Drain the job queue first — daemon.Shutdown refuses new submissions
	// immediately (503) while HTTP stays up so clients can keep polling and
	// streaming the jobs being drained. Stopping HTTP first would deadlock:
	// stream connections only end when their job finishes.
	drainErr := daemon.Shutdown(ctx)
	if err := httpSrv.Shutdown(ctx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		fmt.Fprintf(os.Stderr, "spotserved: http shutdown: %v\n", err)
	}
	if drainErr != nil {
		fmt.Fprintf(os.Stderr, "spotserved: drain incomplete: %v\n", drainErr)
		os.Exit(1)
	}
	fmt.Fprintln(os.Stderr, "spotserved: drained, bye")
}

func cacheLabel(disabled bool, cells int) string {
	if disabled {
		return "off"
	}
	return fmt.Sprintf("%d cells", cells)
}
