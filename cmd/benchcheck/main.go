// Command benchcheck snapshots and gates benchmark results.
//
// It reads `go test -bench` output on stdin and either writes a JSON
// baseline (-write) or compares against one (-check), failing when a gated
// benchmark's ns/op — or allocs/op, when both sides recorded allocations —
// regresses beyond the allowed fraction:
//
//	go test -run='^$' -bench=... -benchmem -count=3 . | benchcheck -write -baseline BENCH_baseline.json
//	go test -run='^$' -bench=... -benchmem -count=3 . | benchcheck -check -baseline BENCH_baseline.json
//
// A third mode appends the current run to the committed performance
// trajectory, so ns/op history accumulates one labeled point per landed
// PR without touching the gating baseline:
//
//	go test -run='^$' -bench=... -benchmem -count=3 . | benchcheck -record -label "PR 8" -comment "..."
//
// With -count > 1 the fastest run per benchmark is kept, damping scheduler
// noise. `make bench-baseline` / `make bench-check` / `make bench-record`
// wrap the modes.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// Result is one benchmark's snapshot.
type Result struct {
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op,omitempty"`
	AllocsPerOp float64 `json:"allocs_per_op,omitempty"`
	Iters       int64   `json:"iters"`
}

// Baseline is the BENCH_baseline.json schema.
type Baseline struct {
	// Note documents how the snapshot was taken.
	Note       string            `json:"note"`
	Benchmarks map[string]Result `json:"benchmarks"`
	// History records the performance trajectory across PRs: hand-edited
	// entries of headline ns/op at each landed optimization. -write
	// preserves it.
	History []HistoryEntry `json:"history,omitempty"`
}

// HistoryEntry is one point of the recorded performance trajectory.
type HistoryEntry struct {
	Label      string             `json:"label"`
	NsPerOp    map[string]float64 `json:"ns_per_op"`
	CommentOpt string             `json:"comment,omitempty"`
}

// Trajectory is the BENCH_trajectory.json schema: the per-PR ns/op history
// -record appends to. It is separate from the baseline so recording a point
// never moves the regression gate.
type Trajectory struct {
	Note    string         `json:"note"`
	History []HistoryEntry `json:"history"`
}

// benchLine matches `BenchmarkName-8  40  123456 ns/op ...`.
var benchLine = regexp.MustCompile(`^(Benchmark\S*?)(?:-\d+)?\s+(\d+)\s+([0-9.]+) ns/op(.*)$`)

func parse(r *bufio.Scanner) map[string]Result {
	out := map[string]Result{}
	for r.Scan() {
		m := benchLine.FindStringSubmatch(r.Text())
		if m == nil {
			continue
		}
		name := m[1]
		iters, _ := strconv.ParseInt(m[2], 10, 64)
		ns, err := strconv.ParseFloat(m[3], 64)
		if err != nil {
			continue
		}
		res := Result{NsPerOp: ns, Iters: iters}
		rest := m[4]
		if bm := regexp.MustCompile(`([0-9.]+) B/op`).FindStringSubmatch(rest); bm != nil {
			res.BytesPerOp, _ = strconv.ParseFloat(bm[1], 64)
		}
		if am := regexp.MustCompile(`(\d+) allocs/op`).FindStringSubmatch(rest); am != nil {
			res.AllocsPerOp, _ = strconv.ParseFloat(am[1], 64)
		}
		// -count > 1 repeats names: keep the fastest run.
		if prev, ok := out[name]; !ok || res.NsPerOp < prev.NsPerOp {
			out[name] = res
		}
	}
	return out
}

func main() {
	var (
		baselinePath = flag.String("baseline", "BENCH_baseline.json", "baseline JSON path")
		write        = flag.Bool("write", false, "write the baseline from stdin results")
		check        = flag.Bool("check", false, "compare stdin results against the baseline")
		maxRegress   = flag.Float64("max-regress", 0.10, "allowed fractional ns/op regression for gated benchmarks")
		gate         = flag.String("gate", "BenchmarkEndToEndSimulation", "comma-separated benchmarks that fail the check on regression")
		record       = flag.Bool("record", false, "append stdin results to the trajectory file as one labeled history entry")
		trajectory   = flag.String("trajectory", "BENCH_trajectory.json", "trajectory JSON path for -record")
		label        = flag.String("label", "", "history entry label for -record (e.g. \"PR 8\"); required")
		comment      = flag.String("comment", "", "optional history entry comment for -record")
	)
	flag.Parse()
	modes := 0
	for _, m := range []bool{*write, *check, *record} {
		if m {
			modes++
		}
	}
	if modes != 1 {
		fmt.Fprintln(os.Stderr, "benchcheck: exactly one of -write / -check / -record required")
		os.Exit(2)
	}

	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	cur := parse(sc)
	if len(cur) == 0 {
		fmt.Fprintln(os.Stderr, "benchcheck: no benchmark results on stdin")
		os.Exit(2)
	}

	if *record {
		if *label == "" {
			fmt.Fprintln(os.Stderr, "benchcheck: -record requires -label (e.g. -label \"PR 8\")")
			os.Exit(2)
		}
		traj := Trajectory{
			Note: "ns/op trajectory, one entry per landed PR (`make bench-record BENCH_LABEL=...`); points are the recording machine's, so compare shapes across entries, not absolute values across machines",
		}
		if old, err := os.ReadFile(*trajectory); err == nil {
			if err := json.Unmarshal(old, &traj); err != nil {
				fmt.Fprintf(os.Stderr, "benchcheck: bad trajectory %s: %v\n", *trajectory, err)
				os.Exit(2)
			}
		}
		entry := HistoryEntry{Label: *label, NsPerOp: map[string]float64{}, CommentOpt: *comment}
		for name, res := range cur {
			entry.NsPerOp[name] = res.NsPerOp
		}
		// Re-recording a label replaces its entry, so re-running CI on the
		// same PR never duplicates points.
		replaced := false
		for i := range traj.History {
			if traj.History[i].Label == *label {
				traj.History[i] = entry
				replaced = true
				break
			}
		}
		if !replaced {
			traj.History = append(traj.History, entry)
		}
		data, err := json.MarshalIndent(traj, "", "  ")
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchcheck:", err)
			os.Exit(2)
		}
		if err := os.WriteFile(*trajectory, append(data, '\n'), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "benchcheck:", err)
			os.Exit(2)
		}
		fmt.Printf("benchcheck: recorded %q in %s (%d entries, %d benchmarks)\n",
			*label, *trajectory, len(traj.History), len(entry.NsPerOp))
		return
	}

	if *write {
		b := Baseline{
			Note:       "min ns/op over repeated runs; refresh with `make bench-baseline` on the reference machine",
			Benchmarks: cur,
		}
		// Preserve the hand-maintained trajectory across rewrites.
		if old, err := os.ReadFile(*baselinePath); err == nil {
			var prev Baseline
			if json.Unmarshal(old, &prev) == nil {
				b.History = prev.History
			}
		}
		data, err := json.MarshalIndent(b, "", "  ")
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchcheck:", err)
			os.Exit(2)
		}
		if err := os.WriteFile(*baselinePath, append(data, '\n'), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "benchcheck:", err)
			os.Exit(2)
		}
		names := make([]string, 0, len(cur))
		for n := range cur {
			names = append(names, n)
		}
		sort.Strings(names)
		fmt.Printf("benchcheck: wrote %s with %d benchmarks:\n", *baselinePath, len(cur))
		for _, n := range names {
			fmt.Printf("  %-50s %14.0f ns/op\n", n, cur[n].NsPerOp)
		}
		return
	}

	data, err := os.ReadFile(*baselinePath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchcheck: %v (run `make bench-baseline` first)\n", err)
		os.Exit(2)
	}
	var base Baseline
	if err := json.Unmarshal(data, &base); err != nil {
		fmt.Fprintf(os.Stderr, "benchcheck: bad baseline %s: %v\n", *baselinePath, err)
		os.Exit(2)
	}

	gated := map[string]bool{}
	for _, g := range strings.Split(*gate, ",") {
		if g = strings.TrimSpace(g); g != "" {
			gated[g] = true
		}
	}

	lines, errs, failed := compare(cur, base, gated, *maxRegress)
	for _, l := range lines {
		fmt.Println(l)
	}
	for _, e := range errs {
		fmt.Fprintln(os.Stderr, "benchcheck: "+e)
	}
	if failed {
		os.Exit(1)
	}
}

// compare evaluates current results against the baseline: gated benchmarks
// fail when ns/op OR allocs/op regresses beyond maxRegress (allocations are
// part of the performance contract — an alloc-pooling win must not quietly
// erode while ns/op hides it in run-to-run noise). Allocs are gated only
// when both sides recorded them, so pre-benchmem baselines keep working.
// Returns the per-benchmark report lines, the error lines, and whether the
// check failed.
func compare(cur map[string]Result, base Baseline, gated map[string]bool, maxRegress float64) (lines, errs []string, failed bool) {
	names := make([]string, 0, len(cur))
	for n := range cur {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		got := cur[n]
		want, ok := base.Benchmarks[n]
		if !ok {
			// A brand-new benchmark has nothing to regress against; that is
			// only a failure when the check is supposed to gate it.
			if gated[n] {
				errs = append(errs, fmt.Sprintf(
					"gated benchmark %s has no entry in the baseline — refresh it first (`make bench-baseline`)", n))
				failed = true
				continue
			}
			lines = append(lines, fmt.Sprintf("  %-50s %14.0f ns/op  (new, no baseline)", n, got.NsPerOp))
			continue
		}
		ratio := got.NsPerOp / want.NsPerOp
		status := "ok"
		if gated[n] && ratio > 1+maxRegress {
			status = fmt.Sprintf("FAIL (> %+.0f%% allowed)", maxRegress*100)
			failed = true
		}
		lines = append(lines, fmt.Sprintf("  %-50s %14.0f ns/op  baseline %14.0f  (%+.1f%%)  %s",
			n, got.NsPerOp, want.NsPerOp, (ratio-1)*100, status))
		if want.AllocsPerOp > 0 && got.AllocsPerOp > 0 {
			aratio := got.AllocsPerOp / want.AllocsPerOp
			astatus := "ok"
			if gated[n] && aratio > 1+maxRegress {
				astatus = fmt.Sprintf("FAIL (> %+.0f%% allowed)", maxRegress*100)
				failed = true
			}
			lines = append(lines, fmt.Sprintf("  %-50s %14.0f allocs/op  baseline %11.0f  (%+.1f%%)  %s",
				"", got.AllocsPerOp, want.AllocsPerOp, (aratio-1)*100, astatus))
		}
	}
	gnames := make([]string, 0, len(gated))
	for n := range gated {
		gnames = append(gnames, n)
	}
	sort.Strings(gnames)
	for _, n := range gnames {
		if _, ok := cur[n]; !ok {
			errs = append(errs, fmt.Sprintf("gated benchmark %s missing from input", n))
			failed = true
		}
	}
	return lines, errs, failed
}
