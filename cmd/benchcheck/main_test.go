package main

import (
	"bufio"
	"strings"
	"testing"
)

func parseString(t *testing.T, s string) map[string]Result {
	t.Helper()
	return parse(bufio.NewScanner(strings.NewReader(s)))
}

func TestParseKeepsFastestRunWithMemStats(t *testing.T) {
	out := parseString(t, `
goos: linux
BenchmarkEndToEndSimulation-8   	     300	   4000000 ns/op	 1100000 B/op	    4000 allocs/op
BenchmarkEndToEndSimulation-8   	     320	   3500000 ns/op	 1026420 B/op	    3444 allocs/op
BenchmarkConfigOptimizer-8      	    1000	    900000 ns/op
PASS
`)
	e, ok := out["BenchmarkEndToEndSimulation"]
	if !ok {
		t.Fatal("EndToEndSimulation not parsed")
	}
	if e.NsPerOp != 3500000 || e.AllocsPerOp != 3444 || e.BytesPerOp != 1026420 {
		t.Fatalf("fastest run not kept: %+v", e)
	}
	if out["BenchmarkConfigOptimizer"].NsPerOp != 900000 {
		t.Fatalf("memless benchmark mis-parsed: %+v", out["BenchmarkConfigOptimizer"])
	}
}

func baselineOf(ns, allocs float64) Baseline {
	return Baseline{Benchmarks: map[string]Result{
		"BenchmarkGated": {NsPerOp: ns, AllocsPerOp: allocs},
	}}
}

var gated = map[string]bool{"BenchmarkGated": true}

func TestCompareWithinToleranceOK(t *testing.T) {
	cur := map[string]Result{"BenchmarkGated": {NsPerOp: 1050, AllocsPerOp: 105}}
	_, errs, failed := compare(cur, baselineOf(1000, 100), gated, 0.10)
	if failed || len(errs) != 0 {
		t.Fatalf("5%% regression failed a 10%% gate: errs=%v", errs)
	}
}

func TestCompareNsRegressionFails(t *testing.T) {
	cur := map[string]Result{"BenchmarkGated": {NsPerOp: 1200, AllocsPerOp: 100}}
	lines, _, failed := compare(cur, baselineOf(1000, 100), gated, 0.10)
	if !failed {
		t.Fatalf("20%% ns/op regression passed the gate:\n%s", strings.Join(lines, "\n"))
	}
}

func TestCompareAllocRegressionFails(t *testing.T) {
	// ns/op improves, allocs/op regresses 20%: the gate must still fail —
	// this is exactly the erosion the alloc gate exists to catch.
	cur := map[string]Result{"BenchmarkGated": {NsPerOp: 900, AllocsPerOp: 120}}
	lines, _, failed := compare(cur, baselineOf(1000, 100), gated, 0.10)
	if !failed {
		t.Fatalf("20%% allocs/op regression passed the gate:\n%s", strings.Join(lines, "\n"))
	}
	joined := strings.Join(lines, "\n")
	if !strings.Contains(joined, "allocs/op") || !strings.Contains(joined, "FAIL") {
		t.Fatalf("alloc failure not reported:\n%s", joined)
	}
}

func TestCompareAllocGateSkippedWithoutBaselineAllocs(t *testing.T) {
	// Pre-benchmem baselines carry no allocs; the gate must not invent one.
	cur := map[string]Result{"BenchmarkGated": {NsPerOp: 1000, AllocsPerOp: 99999}}
	_, _, failed := compare(cur, baselineOf(1000, 0), gated, 0.10)
	if failed {
		t.Fatal("alloc gate fired against a baseline with no recorded allocs")
	}
}

func TestCompareUngatedRegressionReportsOnly(t *testing.T) {
	base := Baseline{Benchmarks: map[string]Result{
		"BenchmarkOther": {NsPerOp: 1000, AllocsPerOp: 100},
	}}
	cur := map[string]Result{"BenchmarkOther": {NsPerOp: 5000, AllocsPerOp: 500}}
	lines, errs, failed := compare(cur, base, map[string]bool{}, 0.10)
	if failed || len(errs) != 0 {
		t.Fatalf("ungated-only comparison failed: errs=%v", errs)
	}
	if len(lines) != 2 { // ns line + allocs line
		t.Fatalf("want report lines for ns and allocs, got:\n%s", strings.Join(lines, "\n"))
	}
}

func TestCompareGatedMissingFails(t *testing.T) {
	_, errs, failed := compare(map[string]Result{"BenchmarkOther": {NsPerOp: 1}},
		Baseline{Benchmarks: map[string]Result{}}, gated, 0.10)
	if !failed || len(errs) == 0 {
		t.Fatal("missing gated benchmark did not fail the check")
	}
}

func TestCompareGatedNewWithoutBaselineFails(t *testing.T) {
	cur := map[string]Result{"BenchmarkGated": {NsPerOp: 1000}}
	_, errs, failed := compare(cur, Baseline{Benchmarks: map[string]Result{}}, gated, 0.10)
	if !failed || len(errs) == 0 {
		t.Fatal("gated benchmark without a baseline entry did not fail the check")
	}
}
