// Command profiler prints the offline cost profile the optimizer consults
// (§5: "we design a cost model and implement an offline profiler ... to
// estimate the required inference latency, system throughput and the
// context migration overheads in advance").
//
// Usage:
//
//	profiler [-model GPT-20B] [-sin 512] [-sout 128]
package main

import (
	"flag"
	"fmt"
	"os"

	"spotserve/internal/config"
	"spotserve/internal/cost"
	"spotserve/internal/model"
)

func main() {
	name := flag.String("model", "GPT-20B", "model: OPT-6.7B, GPT-20B, LLaMA-30B, or all")
	sin := flag.Int("sin", cost.DefaultSeqIn, "input sequence length")
	sout := flag.Int("sout", cost.DefaultSeqOut, "output sequence length")
	flag.Parse()

	specs := model.All()
	if *name != "all" {
		s, ok := model.ByName(*name)
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown model %q\n", *name)
			os.Exit(2)
		}
		specs = []model.Spec{s}
	}
	for _, spec := range specs {
		est := cost.NewEstimator(cost.DefaultParams(), spec)
		p := est.BuildProfile(config.DefaultLimits(), *sin, *sout)
		fmt.Print(p.String())
		min, shape := est.MinGPUs(config.DefaultLimits(), *sin+*sout, false)
		fmt.Printf("→ minimum pipeline: %d GPUs at (P=%d,M=%d); %d/%d shapes feasible\n\n",
			min, shape.P, shape.M, p.FeasibleCount(), len(p.Entries))
	}
}
