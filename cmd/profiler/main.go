// Command profiler prints the offline cost profile the optimizer consults
// (§5: "we design a cost model and implement an offline profiler ... to
// estimate the required inference latency, system throughput and the
// context migration overheads in advance").
//
// Usage:
//
//	profiler list                          # models with min-GPU summary
//	profiler profile [-model m] [-sin N] [-sout N]
//	profiler shapes  [-model m] [-b N] [-memscale X] [-naive]
//
// Examples:
//
//	profiler profile -model GPT-20B
//	profiler shapes -model GPT-20B -memscale 0.8
//
// Unknown subcommands or flags exit 2 with usage (same convention as
// cmd/tracegen).
package main

import (
	"flag"
	"fmt"
	"os"

	"spotserve/internal/config"
	"spotserve/internal/cost"
	"spotserve/internal/model"
)

func usage(w *os.File) {
	fmt.Fprintf(w, `profiler — print the offline cost profile the optimizer consults

Subcommands:
  list               list models with their minimum feasible pipeline
  profile [flags]    print the full (P,M,B) latency/throughput profile
       -model name     model: OPT-6.7B, GPT-20B, LLaMA-30B, or all (default GPT-20B)
       -sin N          input sequence length (default %d)
       -sout N         output sequence length (default %d)
  shapes [flags]     print memory-feasible (P,M) shapes for one batch size
       -model name     model as above (default GPT-20B)
       -b N            batch size (default 1)
       -memscale X     usable-memory multiplier of the smallest instance
                       type (heterogeneous fleets; default 1.0)
       -naive          use the naive migration-buffer memory model (§6.2)
`, cost.DefaultSeqIn, cost.DefaultSeqOut)
}

func main() {
	if len(os.Args) < 2 {
		usage(os.Stderr)
		os.Exit(2)
	}
	switch os.Args[1] {
	case "list":
		cmdList()
	case "profile":
		cmdProfile(os.Args[2:])
	case "shapes":
		cmdShapes(os.Args[2:])
	case "-h", "-help", "--help", "help":
		usage(os.Stdout)
	default:
		fmt.Fprintf(os.Stderr, "profiler: unknown subcommand %q\n\n", os.Args[1])
		usage(os.Stderr)
		os.Exit(2)
	}
}

// specsFor resolves -model into specs, exiting 2 on unknown names.
func specsFor(name string) []model.Spec {
	if name == "all" {
		return model.All()
	}
	s, ok := model.ByName(name)
	if !ok {
		fmt.Fprintf(os.Stderr, "profiler: unknown model %q (run `profiler list`)\n", name)
		os.Exit(2)
	}
	return []model.Spec{s}
}

func cmdList() {
	fmt.Println("models (profiler profile -model <name>):")
	for _, spec := range model.All() {
		est := cost.Shared(cost.DefaultParams(), spec)
		min, shape := est.MinGPUs(config.DefaultLimits(), cost.DefaultMaxTokens, false)
		fmt.Printf("  %-10s %6.1f GB, %d layers — min pipeline %d GPUs at (P=%d,M=%d)\n",
			spec.Name, spec.ParamBytes/model.GB, spec.Layers, min, shape.P, shape.M)
	}
}

func cmdProfile(args []string) {
	fs := flag.NewFlagSet("profile", flag.ExitOnError)
	name := fs.String("model", "GPT-20B", "model: OPT-6.7B, GPT-20B, LLaMA-30B, or all")
	sin := fs.Int("sin", cost.DefaultSeqIn, "input sequence length")
	sout := fs.Int("sout", cost.DefaultSeqOut, "output sequence length")
	fs.Parse(args)
	for _, spec := range specsFor(*name) {
		est := cost.Shared(cost.DefaultParams(), spec)
		p := est.BuildProfile(config.DefaultLimits(), *sin, *sout)
		fmt.Print(p.String())
		min, shape := est.MinGPUs(config.DefaultLimits(), *sin+*sout, false)
		fmt.Printf("→ minimum pipeline: %d GPUs at (P=%d,M=%d); %d/%d shapes feasible\n\n",
			min, shape.P, shape.M, p.FeasibleCount(), len(p.Entries))
	}
}

func cmdShapes(args []string) {
	fs := flag.NewFlagSet("shapes", flag.ExitOnError)
	name := fs.String("model", "GPT-20B", "model: OPT-6.7B, GPT-20B, LLaMA-30B, or all")
	bsz := fs.Int("b", 1, "batch size")
	memScale := fs.Float64("memscale", 1.0, "usable-memory multiplier (smallest instance type)")
	naive := fs.Bool("naive", false, "naive migration-buffer memory model")
	fs.Parse(args)
	if *memScale <= 0 {
		fmt.Fprintln(os.Stderr, "profiler: -memscale must be positive")
		os.Exit(2)
	}
	for _, spec := range specsFor(*name) {
		est := cost.Shared(cost.DefaultParams(), spec)
		shapes := est.FeasibleShapesScaled(config.DefaultLimits(), *bsz, cost.DefaultMaxTokens, *naive, *memScale)
		fmt.Printf("%s: %d feasible shapes at B=%d, memscale %.2f (buffer: %s)\n",
			spec.Name, len(shapes), *bsz, *memScale, bufferName(*naive))
		for _, c := range shapes {
			fmt.Printf("  (P=%d,M=%d) %2d GPUs/pipeline  l_exe=%6.2fs\n",
				c.P, c.M, c.GPUsPerPipeline(),
				est.Exec(c.P, c.M, c.B, cost.DefaultSeqIn, cost.DefaultSeqOut))
		}
		min, shape := est.MinGPUsScaled(config.DefaultLimits(), cost.DefaultMaxTokens, *naive, *memScale)
		fmt.Printf("→ minimum pipeline: %d GPUs at (P=%d,M=%d)\n\n", min, shape.P, shape.M)
	}
}

func bufferName(naive bool) string {
	if naive {
		return "naive 2x-resident"
	}
	return "memory-optimized U_max"
}
