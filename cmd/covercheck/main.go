// Command covercheck snapshots and gates per-package test coverage.
//
// It reads `go test -cover ./...` output on stdin and either writes a JSON
// floor file (-write) or compares against one (-check), failing when a
// gated package's statement coverage drops below its recorded floor:
//
//	go test -cover ./... | covercheck -write -floor COVER_floor.json
//	go test -cover ./... | covercheck -check -floor COVER_floor.json
//
// The floor file is committed and updated deliberately, like
// BENCH_baseline.json: a drop below a floor means a change shed tests, not
// that the machine was slow. `make cover` / `make cover-floor` wrap both
// modes.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// Floor is the COVER_floor.json schema: statement-coverage floors in
// percent per import path. Only listed packages are gated; everything else
// is reported.
type Floor struct {
	// Note documents how the snapshot was taken and how to refresh it.
	Note     string             `json:"note"`
	Packages map[string]float64 `json:"packages"`
}

// coverLine matches `ok  spotserve/internal/x  0.25s  coverage: 85.3% of
// statements` (and the cached-run variant without a timing column).
var coverLine = regexp.MustCompile(`^ok\s+(\S+)\s+.*coverage:\s+([0-9.]+)% of statements`)

// parse extracts per-package coverage percentages from `go test -cover`
// output. Packages without test files (`? ... [no test files]`) and
// `[no statements]` lines carry no percentage and are skipped — a gated
// package losing its tests therefore fails the check as "missing".
func parse(r *bufio.Scanner) map[string]float64 {
	out := map[string]float64{}
	for r.Scan() {
		m := coverLine.FindStringSubmatch(r.Text())
		if m == nil {
			continue
		}
		pct, err := strconv.ParseFloat(m[2], 64)
		if err != nil {
			continue
		}
		out[m[1]] = pct
	}
	return out
}

func main() {
	var (
		floorPath = flag.String("floor", "COVER_floor.json", "floor JSON path")
		write     = flag.Bool("write", false, "write the floor file from stdin results")
		check     = flag.Bool("check", false, "compare stdin results against the floor file")
		gate      = flag.String("gate", "spotserve/internal/analysis,spotserve/internal/calibrate,spotserve/internal/scenario,spotserve/internal/serve",
			"comma-separated packages recorded by -write (the -check gate is whatever the floor file lists)")
	)
	flag.Parse()
	if *write == *check {
		fmt.Fprintln(os.Stderr, "covercheck: exactly one of -write / -check required")
		os.Exit(2)
	}

	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	cur := parse(sc)
	if len(cur) == 0 {
		fmt.Fprintln(os.Stderr, "covercheck: no coverage results on stdin (run `go test -cover ./...`)")
		os.Exit(2)
	}

	if *write {
		f := Floor{
			Note:     "statement-coverage floors in percent; refresh deliberately with `make cover-floor` when coverage moves",
			Packages: map[string]float64{},
		}
		for _, pkg := range strings.Split(*gate, ",") {
			pkg = strings.TrimSpace(pkg)
			if pkg == "" {
				continue
			}
			pct, ok := cur[pkg]
			if !ok {
				fmt.Fprintf(os.Stderr, "covercheck: gated package %s missing from input\n", pkg)
				os.Exit(2)
			}
			f.Packages[pkg] = pct
		}
		data, err := json.MarshalIndent(f, "", "  ")
		if err != nil {
			fmt.Fprintln(os.Stderr, "covercheck:", err)
			os.Exit(2)
		}
		if err := os.WriteFile(*floorPath, append(data, '\n'), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "covercheck:", err)
			os.Exit(2)
		}
		names := make([]string, 0, len(f.Packages))
		for n := range f.Packages {
			names = append(names, n)
		}
		sort.Strings(names)
		fmt.Printf("covercheck: wrote %s with %d floors:\n", *floorPath, len(f.Packages))
		for _, n := range names {
			fmt.Printf("  %-45s %6.1f%%\n", n, f.Packages[n])
		}
		return
	}

	data, err := os.ReadFile(*floorPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "covercheck: %v (run `make cover-floor` first)\n", err)
		os.Exit(2)
	}
	var floor Floor
	if err := json.Unmarshal(data, &floor); err != nil {
		fmt.Fprintf(os.Stderr, "covercheck: bad floor file %s: %v\n", *floorPath, err)
		os.Exit(2)
	}

	failed := false
	names := make([]string, 0, len(cur))
	for n := range cur {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		got := cur[n]
		want, gated := floor.Packages[n]
		if !gated {
			fmt.Printf("  %-45s %6.1f%%  (not gated)\n", n, got)
			continue
		}
		status := "ok"
		// The tiny epsilon forgives float formatting, not coverage loss.
		if got+1e-9 < want {
			status = fmt.Sprintf("FAIL (floor %.1f%%)", want)
			failed = true
		}
		fmt.Printf("  %-45s %6.1f%%  floor %6.1f%%  %s\n", n, got, want, status)
	}
	for n := range floor.Packages {
		if _, ok := cur[n]; !ok {
			fmt.Fprintf(os.Stderr, "covercheck: gated package %s missing from input (tests deleted or build broken?)\n", n)
			failed = true
		}
	}
	if failed {
		os.Exit(1)
	}
}
