// Command spotserve runs one serving scenario from flags and prints the
// outcome: latency distribution, cost, migration counters and the
// configuration timeline.
//
// Examples:
//
//	spotserve -model GPT-20B -trace BS -system spotserve
//	spotserve -model LLaMA-30B -trace AS -system reroute -rate 0.2
//	spotserve -model GPT-20B -trace BS -mix -fluctuating
//	spotserve -model GPT-20B -trace BS -seeds 5        # replicate, report bands
package main

import (
	"flag"
	"fmt"
	"os"

	"spotserve/internal/cost"
	"spotserve/internal/experiments"
	"spotserve/internal/model"
	"spotserve/internal/trace"
	"spotserve/internal/workload"
)

func main() {
	modelName := flag.String("model", "GPT-20B", "model: OPT-6.7B, GPT-20B, LLaMA-30B")
	traceName := flag.String("trace", "AS", "availability trace: AS, BS, A'S, B'S, or a JSON file path")
	system := flag.String("system", "spotserve", "system: spotserve, reparallel, reroute")
	rate := flag.Float64("rate", 0, "arrival rate req/s (default: the paper's per-model rate)")
	cv := flag.Float64("cv", 6, "arrival coefficient of variance")
	mix := flag.Bool("mix", false, "allow on-demand instance mixing (+O)")
	fluct := flag.Bool("fluctuating", false, "use the MAF-style fluctuating arrival profile")
	seed := flag.Int64("seed", 1, "base random seed")
	seeds := flag.Int("seeds", 1, "replication: run the scenario at this many consecutive seeds")
	parallel := flag.Int("parallel", 0, "worker pool size for replication (0 = all cores)")
	flag.Parse()

	spec, ok := model.ByName(*modelName)
	if !ok {
		fatalf("unknown model %q (want OPT-6.7B, GPT-20B or LLaMA-30B)", *modelName)
	}
	tr, ok := trace.ByName(*traceName)
	if !ok {
		data, err := os.ReadFile(*traceName)
		if err != nil {
			fatalf("trace %q is not built in and not a readable file: %v", *traceName, err)
		}
		tr, err = trace.Unmarshal(data)
		if err != nil {
			fatalf("parse trace: %v", err)
		}
	}
	var sys experiments.System
	switch *system {
	case "spotserve":
		sys = experiments.SpotServe
	case "reparallel", "reparallelization":
		sys = experiments.Reparallel
	case "reroute", "rerouting":
		sys = experiments.Reroute
	default:
		fatalf("unknown system %q", *system)
	}

	sc := experiments.DefaultScenario(sys, spec, tr, *seed)
	sc.CV = *cv
	sc.AllowOnDemand = *mix
	if *rate > 0 {
		sc.Rate = *rate
	}
	if *fluct {
		sc.RateFn = workload.StepRate(workload.MAFSteps(sc.Rate))
	}

	sw := experiments.Sweep{Parallel: *parallel, Seeds: experiments.SeedRange(*seed, *seeds)}
	replicas := sw.RunCells([]experiments.Scenario{sc})[0]
	res := replicas[0]
	st := res.Stats

	fmt.Printf("system    : %s\n", sys)
	fmt.Printf("model     : %s\n", spec.Name)
	fmt.Printf("trace     : %s (%.0f s horizon, +O mixing %v)\n", tr.Name, tr.Horizon, *mix)
	fmt.Printf("workload  : rate %.2f req/s, CV %.0f, fluctuating %v\n", sc.Rate, sc.CV, *fluct)
	fmt.Printf("requests  : %d submitted, %d completed\n", st.Submitted, st.Completed)
	fmt.Printf("latency   : %s\n", st.Latency)
	fmt.Printf("cost      : %.2f USD (%.3f ×1e-5 USD/token)\n", st.CostUSD,
		costPerToken(st.CostUSD, st.Completed))
	fmt.Printf("events    : %d migrations, %d reloads, %d cache give-ups, %d tokens recovered, %d on-demand allocs\n",
		st.Migrations, st.Reloads, st.CacheGiveUps, st.TokensRecovered, st.OnDemandAllocated)
	if rep := experiments.NewReplication(replicas); rep.Replicated() {
		fmt.Printf("replicas  : %d seeds (%d..%d)\n", len(rep.Seeds), *seed, *seed+int64(*seeds)-1)
		fmt.Printf("  avg lat : %s s\n", rep.Avg.Band())
		fmt.Printf("  p95 lat : %s s\n", rep.P95.Band())
		fmt.Printf("  p99 lat : %s s\n", rep.P99.Band())
		fmt.Printf("  cost    : %s USD\n", rep.Cost.Band())
	}
	if len(st.ConfigLog) > 0 {
		fmt.Println("config timeline:")
		for _, c := range st.ConfigLog {
			fmt.Printf("  t=%6.0fs  %-22v %s\n", c.At, c.Config, c.Reason)
		}
	}
}

func costPerToken(usd float64, completed int) float64 {
	tokens := float64(completed * cost.DefaultSeqOut)
	if tokens == 0 {
		return 0
	}
	return usd / tokens * 1e5
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, format+"\n", args...)
	os.Exit(2)
}
