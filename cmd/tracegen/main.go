// Command tracegen generates, inspects, and exports spot availability
// traces.
//
// Examples:
//
//	tracegen -show AS                      # print an embedded trace
//	tracegen -name mytrace -seed 42 \
//	         -horizon 1200 -start 10 -min 2 -max 12 > mytrace.json
package main

import (
	"flag"
	"fmt"
	"os"

	"spotserve/internal/trace"
)

func main() {
	show := flag.String("show", "", "print an embedded trace (AS, BS, A'S, B'S) and exit")
	name := flag.String("name", "generated", "name for the generated trace")
	horizon := flag.Float64("horizon", 1200, "trace length in seconds")
	start := flag.Int("start", 10, "initial instance count")
	min := flag.Int("min", 2, "minimum instance count")
	max := flag.Int("max", 12, "maximum instance count")
	dwell := flag.Float64("dwell", 90, "mean seconds between availability changes")
	down := flag.Float64("downbias", 0.55, "probability a change is a preemption")
	step := flag.Int("maxstep", 2, "largest single change")
	seed := flag.Int64("seed", 1, "random seed")
	flag.Parse()

	var tr trace.Trace
	if *show != "" {
		var ok bool
		tr, ok = trace.ByName(*show)
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown embedded trace %q\n", *show)
			os.Exit(2)
		}
	} else {
		var err error
		tr, err = trace.Generate(trace.GenOptions{
			Name: *name, Horizon: *horizon, Start: *start,
			Min: *min, Max: *max, MeanDwell: *dwell,
			DownBias: *down, MaxStep: *step, Seed: *seed,
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "generate: %v\n", err)
			os.Exit(2)
		}
	}

	data, err := tr.Marshal()
	if err != nil {
		fmt.Fprintf(os.Stderr, "marshal: %v\n", err)
		os.Exit(1)
	}
	fmt.Println(string(data))
	fmt.Fprintf(os.Stderr, "# %s: %d events over %.0f s, count range [%d, %d]\n",
		tr.Name, len(tr.Events), tr.Horizon, tr.MinCount(), tr.MaxCount())
}
