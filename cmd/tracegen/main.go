// Command tracegen generates, inspects, and exports spot availability
// traces in the JSON format cmd/spotserve replays.
//
// Usage:
//
//	tracegen list                      # embedded traces + availability models
//	tracegen show <name>               # print an embedded trace (AS, BS, A'S, B'S)
//	tracegen gen -model <m> -seed N    # generate from a scenario-library model
//	tracegen walk [flags]              # seeded random-walk generator
//
// Examples:
//
//	tracegen show AS
//	tracegen gen -model bursty -seed 7 > bursty7.json
//	tracegen walk -name mytrace -seed 42 -horizon 1200 -start 10 -min 2 -max 12
//
// Generated traces print to stdout; a one-line summary goes to stderr.
// Unknown subcommands exit non-zero with this usage.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"spotserve/internal/scenario"
	"spotserve/internal/trace"
)

func usage(w *os.File) {
	fmt.Fprintf(w, `tracegen — generate, inspect and export spot availability traces

Subcommands:
  list               list embedded traces and registered availability models
  show <name>        print an embedded trace (AS, BS, A'S, B'S) as JSON
  gen  [flags]       generate a trace from a scenario-library availability model
       -model name     availability model: %s (default diurnal)
       -seed N         generator seed; same seed = byte-identical trace (default 1)
  walk [flags]       generate a random-walk trace (the legacy generator)
       -name s         trace name (default "generated")
       -horizon secs   trace length in seconds (default 1200)
       -start n        initial instance count (default 10)
       -min/-max n     bounds on the instance count (defaults 2, 12)
       -dwell secs     mean seconds between availability changes (default 90)
       -downbias p     probability a change is a preemption (default 0.55)
       -maxstep n      largest single change (default 2)
       -seed N         generator seed; same seed = byte-identical trace (default 1)

The JSON output replays through cmd/spotserve (-trace file.json) and
cloud.ReplayTrace; the format is fuzz-tested in internal/trace.
`, strings.Join(scenario.Models(), ", "))
}

func main() {
	if len(os.Args) < 2 {
		usage(os.Stderr)
		os.Exit(2)
	}
	switch os.Args[1] {
	case "list":
		cmdList()
	case "show":
		cmdShow(os.Args[2:])
	case "gen":
		cmdGen(os.Args[2:])
	case "walk":
		cmdWalk(os.Args[2:])
	case "-h", "-help", "--help", "help":
		usage(os.Stdout)
	default:
		fmt.Fprintf(os.Stderr, "tracegen: unknown subcommand %q\n\n", os.Args[1])
		usage(os.Stderr)
		os.Exit(2)
	}
}

func cmdList() {
	fmt.Println("embedded traces (tracegen show <name>):")
	for _, name := range []string{"AS", "BS", "A'S", "B'S"} {
		tr, _ := trace.ByName(name)
		fmt.Printf("  %-4s %4.0f s, %2d events, count range [%d, %d]\n",
			name, tr.Horizon, len(tr.Events), tr.MinCount(), tr.MaxCount())
	}
	fmt.Println("availability models (tracegen gen -model <name> -seed N):")
	for _, name := range scenario.Models() {
		fmt.Printf("  %s\n", name)
	}
}

func cmdShow(args []string) {
	if len(args) != 1 {
		fmt.Fprintln(os.Stderr, "usage: tracegen show <AS|BS|A'S|B'S>")
		os.Exit(2)
	}
	tr, ok := trace.ByName(args[0])
	if !ok {
		fmt.Fprintf(os.Stderr, "tracegen: unknown embedded trace %q (run `tracegen list`)\n", args[0])
		os.Exit(2)
	}
	emit(tr)
}

func cmdGen(args []string) {
	fs := flag.NewFlagSet("gen", flag.ExitOnError)
	modelName := fs.String("model", "diurnal",
		"availability model: "+strings.Join(scenario.Models(), ", "))
	seed := fs.Int64("seed", 1, "generator seed; the same seed reproduces the trace byte for byte")
	fs.Parse(args)
	m, ok := scenario.ModelByName(*modelName)
	if !ok {
		fmt.Fprintf(os.Stderr, "tracegen: unknown availability model %q (have %s)\n",
			*modelName, strings.Join(scenario.Models(), ", "))
		os.Exit(2)
	}
	emit(m.Trace(*seed))
}

func cmdWalk(args []string) {
	fs := flag.NewFlagSet("walk", flag.ExitOnError)
	name := fs.String("name", "generated", "name for the generated trace")
	horizon := fs.Float64("horizon", 1200, "trace length in seconds")
	start := fs.Int("start", 10, "initial instance count")
	min := fs.Int("min", 2, "minimum instance count")
	max := fs.Int("max", 12, "maximum instance count")
	dwell := fs.Float64("dwell", 90, "mean seconds between availability changes")
	down := fs.Float64("downbias", 0.55, "probability a change is a preemption")
	step := fs.Int("maxstep", 2, "largest single change")
	seed := fs.Int64("seed", 1, "generator seed; the same seed reproduces the trace byte for byte")
	fs.Parse(args)

	tr, err := trace.Generate(trace.GenOptions{
		Name: *name, Horizon: *horizon, Start: *start,
		Min: *min, Max: *max, MeanDwell: *dwell,
		DownBias: *down, MaxStep: *step, Seed: *seed,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "tracegen: generate: %v\n", err)
		os.Exit(2)
	}
	emit(tr)
}

func emit(tr trace.Trace) {
	data, err := tr.Marshal()
	if err != nil {
		fmt.Fprintf(os.Stderr, "tracegen: marshal: %v\n", err)
		os.Exit(1)
	}
	fmt.Println(string(data))
	fmt.Fprintf(os.Stderr, "# %s: %d events over %.0f s, count range [%d, %d]\n",
		tr.Name, len(tr.Events), tr.Horizon, tr.MinCount(), tr.MaxCount())
}
