// Command detlint statically enforces the simulator's byte-identity
// contract: the determinism invariants the runtime equivalence tests pin
// (parallel==serial, cache-on==cache-off, fault-injected==fault-free
// fingerprints) are checked on every line of the kernel packages, not
// just on exercised paths. See docs/ANALYSIS.md for the invariant
// catalog and the `//detlint:allow` annotation grammar.
//
// Standalone (what `make lint` runs):
//
//	detlint [-run maprange,wallclock] [packages ...]   # default ./...
//
// Findings print one per line as `file:line:col: analyzer: message` and
// the exit status is 1 when there are any, so CI failures are clickable.
//
// As a vet tool, analyzing each package as the build graph compiles it:
//
//	go vet -vettool=$(pwd)/bin/detlint ./...
//
// In that mode detlint speaks go vet's driver protocol (-flags, -V=full,
// unit.cfg) and needs no package loading of its own.
package main

import (
	"crypto/sha256"
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"spotserve/internal/analysis"
)

func main() {
	progname := filepath.Base(os.Args[0])

	// go vet probes its tool with `-flags` and `-V=full` before any real
	// work; both must be handled before normal flag parsing because vet
	// passes them as the sole argument.
	if len(os.Args) == 2 {
		switch os.Args[1] {
		case "-flags", "--flags":
			// detlint accepts no pass-through analyzer flags from vet.
			fmt.Println("[]")
			return
		case "-V=full", "--V=full":
			printVersion(progname)
			return
		}
	}

	run := flag.String("run", "", "comma-separated subset of analyzers to run (default: all)")
	list := flag.Bool("list", false, "list analyzers and exit")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: %s [-run a,b] [-list] [package patterns | unit.cfg]\n\nanalyzers:\n", progname)
		for _, a := range analysis.All() {
			fmt.Fprintf(os.Stderr, "  %-11s %s\n", a.Name, a.Doc)
		}
	}
	flag.Parse()

	analyzers, err := analysis.ByName(*run)
	if err != nil {
		fmt.Fprintf(os.Stderr, "%s: %v\n", progname, err)
		os.Exit(2)
	}
	if *list {
		for _, a := range analyzers {
			fmt.Println(a.Name)
		}
		return
	}

	args := flag.Args()

	// Unit mode: go vet hands us a single JSON config file.
	if len(args) == 1 && filepath.Ext(args[0]) == ".cfg" {
		diags, err := analysis.RunUnit(args[0], analyzers)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", progname, err)
			os.Exit(1)
		}
		for _, d := range diags {
			fmt.Fprintf(os.Stderr, "%s:%d:%d: %s: %s\n", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
		}
		if len(diags) > 0 {
			os.Exit(1)
		}
		return
	}

	dir, err := os.Getwd()
	if err != nil {
		fmt.Fprintf(os.Stderr, "%s: %v\n", progname, err)
		os.Exit(2)
	}
	findings, err := analysis.RunStandalone(dir, args, analyzers, os.Stdout)
	if err != nil {
		fmt.Fprintf(os.Stderr, "%s: %v\n", progname, err)
		os.Exit(2)
	}
	if findings > 0 {
		fmt.Fprintf(os.Stderr, "%s: %d finding(s)\n", progname, findings)
		os.Exit(1)
	}
}

// printVersion satisfies go vet's build-caching handshake: the output
// must be `<name> version <version>` with at least three fields. The
// version embeds a hash of the binary itself so editing detlint
// invalidates vet's result cache.
func printVersion(progname string) {
	version := "unknown"
	if exe, err := os.Executable(); err == nil {
		if data, err := os.ReadFile(exe); err == nil {
			sum := sha256.Sum256(data)
			version = fmt.Sprintf("h%x", sum[:8])
		}
	}
	fmt.Printf("%s version %s\n", progname, version)
}
