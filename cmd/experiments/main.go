// Command experiments regenerates the paper's tables and figures.
//
// Usage:
//
//	experiments [-exp all|table1|fig5|fig6|fig7|fig8|fig9|minmem] [-seed N]
//
// Each experiment prints a text rendition of the corresponding table or
// figure, including SpotServe-vs-baseline factors where the paper reports
// them. Runs are deterministic for a fixed seed.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"spotserve/internal/experiments"
)

func main() {
	exp := flag.String("exp", "all", "experiment to run: all, table1, fig5, fig6, fig7, fig8, fig9, minmem")
	seed := flag.Int64("seed", 1, "random seed (runs are deterministic per seed)")
	flag.Parse()

	run := func(name string, fn func()) {
		if *exp != "all" && *exp != name {
			return
		}
		start := time.Now()
		fn()
		fmt.Printf("[%s completed in %v]\n\n", name, time.Since(start).Round(time.Millisecond))
	}

	run("table1", func() { fmt.Print(experiments.RenderTable1(experiments.Table1())) })
	run("minmem", func() { fmt.Print(experiments.RenderMinMem(experiments.MinMem())) })
	run("fig5", func() { fmt.Print(experiments.RenderFigure5(experiments.Figure5(*seed))) })
	run("fig6", func() { fmt.Print(experiments.RenderFigure6(experiments.Figure6(*seed))) })
	run("fig7", func() { fmt.Print(experiments.RenderFigure7(experiments.Figure7(*seed))) })
	run("fig8", func() { fmt.Print(experiments.RenderFigure8(experiments.Figure8(*seed))) })
	run("fig9", func() { fmt.Print(experiments.RenderFigure9(experiments.Figure9(*seed))) })

	switch *exp {
	case "all", "table1", "fig5", "fig6", "fig7", "fig8", "fig9", "minmem":
	default:
		fmt.Fprintf(os.Stderr, "unknown experiment %q\n", *exp)
		os.Exit(2)
	}
}
