// Command experiments regenerates the paper's tables and figures.
//
// Usage:
//
//	experiments [-exp all|table1|fig5|fig6|fig7|fig8|fig9|minmem]
//	            [-seed N] [-seeds K] [-parallel W]
//
// Each experiment prints a text rendition of the corresponding table or
// figure, including SpotServe-vs-baseline factors where the paper reports
// them. Runs are deterministic for a fixed seed: the scenario grid executes
// on a bounded worker pool (-parallel, default all cores) with results
// aggregated in scenario order, so the output is byte-identical to a serial
// run. -seeds K replicates every simulated cell at seeds seed..seed+K-1 and
// appends mean ±stderr [min,max] bands to the rendered tables.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"spotserve/internal/experiments"
)

func main() {
	exp := flag.String("exp", "all", "experiment to run: all, table1, fig5, fig6, fig7, fig8, fig9, minmem")
	seed := flag.Int64("seed", 1, "base random seed (runs are deterministic per seed)")
	seeds := flag.Int("seeds", 1, "replication: run each cell at this many consecutive seeds")
	parallel := flag.Int("parallel", runtime.GOMAXPROCS(0), "worker pool size for the scenario sweep (1 = serial)")
	flag.Parse()

	sw := experiments.Sweep{
		Parallel: *parallel,
		Seeds:    experiments.SeedRange(*seed, *seeds),
	}

	run := func(name string, fn func()) {
		if *exp != "all" && *exp != name {
			return
		}
		start := time.Now()
		fn()
		fmt.Printf("[%s completed in %v]\n\n", name, time.Since(start).Round(time.Millisecond))
	}

	run("table1", func() { fmt.Print(experiments.RenderTable1(experiments.Table1())) })
	run("minmem", func() { fmt.Print(experiments.RenderMinMem(experiments.MinMem())) })
	run("fig5", func() { fmt.Print(experiments.RenderFigure5(experiments.Figure5Sweep(sw))) })
	run("fig6", func() { fmt.Print(experiments.RenderFigure6(experiments.Figure6Sweep(sw))) })
	run("fig7", func() { fmt.Print(experiments.RenderFigure7(experiments.Figure7Sweep(sw))) })
	run("fig8", func() { fmt.Print(experiments.RenderFigure8(experiments.Figure8Sweep(sw))) })
	run("fig9", func() { fmt.Print(experiments.RenderFigure9(experiments.Figure9Sweep(sw))) })

	switch *exp {
	case "all", "table1", "fig5", "fig6", "fig7", "fig8", "fig9", "minmem":
	default:
		fmt.Fprintf(os.Stderr, "unknown experiment %q\n", *exp)
		os.Exit(2)
	}
}
