// Command experiments regenerates the paper's tables and figures, and runs
// scenario-library grids.
//
// Usage:
//
//	experiments [-exp all|table1|fig5|fig6|fig7|fig8|fig9|minmem|scenarios|calibrate]
//	            [-seed N] [-seeds K] [-parallel W]
//	            [-avail a,b] [-policies p,q] [-fleets f,g] [-systems spotserve|baselines|all]
//	            [-market ou|squeeze] [-slo S] [-full]
//	            [-observed trace.json] [-fit] [-calib-export out.json]
//
// Each experiment prints a text rendition of the corresponding table or
// figure, including SpotServe-vs-baseline factors where the paper reports
// them. Runs are deterministic for a fixed seed: the scenario grid executes
// on a bounded worker pool (-parallel, default all cores) with results
// aggregated in scenario order, so the output is byte-identical to a serial
// run. -seeds K replicates every simulated cell at seeds seed..seed+K-1 and
// appends mean ±stderr [min,max] bands to the rendered tables.
//
// -exp scenarios sweeps the scenario library (docs/SCENARIOS.md): the
// cross product of availability models × autoscaling policies × fleet
// presets, selectable with -avail/-policies/-fleets (comma-separated
// registry names; empty = the default grid axes). -market bills every
// cell's spot capacity against a registered price process (price-signal
// cells default to their own driving process), and -slo sets the latency
// objective behind the grid's SLO% column. -full swaps in the scale-out
// cross (scenario.FullGrid): every registered model plus a 12-variant bid
// ladder × every policy × every fleet × flat billing plus every market
// process — 1020 cells, aggregated streamingly in O(active cells) memory.
//
// -exp calibrate (docs/CALIBRATION.md; never part of -exp all) replays the
// scenario of an observed serving trace (-observed trace.json) and prints
// the tolerance-scored validation report, exiting 1 when any metric fails
// its band. -fit additionally searches the default market-parameter grid
// for the candidate matching the trace best. -calib-export out.json instead
// simulates the scenario selected by the grid flags (first of each axis)
// and writes it as an observed trace — the round-trip input.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"
	"time"

	"spotserve/internal/calibrate"
	"spotserve/internal/experiments"
	"spotserve/internal/scenario"
)

func main() {
	exp := flag.String("exp", "all", "experiment to run: all, table1, fig5, fig6, fig7, fig8, fig9, minmem, scenarios")
	seed := flag.Int64("seed", 1, "base random seed (runs are deterministic per seed)")
	seeds := flag.Int("seeds", 1, "replication: run each cell at this many consecutive seeds")
	parallel := flag.Int("parallel", runtime.GOMAXPROCS(0), "worker pool size for the scenario sweep (1 = serial)")
	avail := flag.String("avail", "", "scenario grid: comma-separated availability models (default: all registered)")
	policies := flag.String("policies", "", "scenario grid: comma-separated autoscaling policies (default: all registered)")
	fleets := flag.String("fleets", "", "scenario grid: comma-separated fleet presets (default: homog,hetero-speed)")
	systems := flag.String("systems", "spotserve", "scenario grid: spotserve, baselines, or all")
	marketName := flag.String("market", "", "scenario grid: spot-price process billing every cell (default: flat prices; price-signal cells use their own process)")
	full := flag.Bool("full", false, "scenario grid: run the full 1000+-cell cross (all models + a 12-variant bid ladder × policies × fleets × markets) with streaming aggregation")
	slo := flag.Float64("slo", 0, "scenario grid: latency objective in seconds for the SLO% column (default 120)")
	observed := flag.String("observed", "", "calibrate: observed-trace JSON file to validate against (docs/CALIBRATION.md)")
	fit := flag.Bool("fit", false, "calibrate: also fit the default market-parameter grid to the observed trace")
	calibExport := flag.String("calib-export", "", "calibrate: simulate the scenario from the grid flags and write it as an observed trace to this file")
	flag.Parse()

	sw := experiments.Sweep{
		Parallel: *parallel,
		Seeds:    experiments.SeedRange(*seed, *seeds),
	}

	run := func(name string, fn func()) {
		if *exp != "all" && *exp != name {
			return
		}
		start := time.Now()
		fn()
		fmt.Printf("[%s completed in %v]\n\n", name, time.Since(start).Round(time.Millisecond))
	}

	run("table1", func() { fmt.Print(experiments.RenderTable1(experiments.Table1())) })
	run("minmem", func() { fmt.Print(experiments.RenderMinMem(experiments.MinMem())) })
	run("fig5", func() { fmt.Print(experiments.RenderFigure5(experiments.Figure5Sweep(sw))) })
	run("fig6", func() { fmt.Print(experiments.RenderFigure6(experiments.Figure6Sweep(sw))) })
	run("fig7", func() { fmt.Print(experiments.RenderFigure7(experiments.Figure7Sweep(sw))) })
	run("fig8", func() { fmt.Print(experiments.RenderFigure8(experiments.Figure8Sweep(sw))) })
	run("fig9", func() { fmt.Print(experiments.RenderFigure9(experiments.Figure9Sweep(sw))) })
	run("scenarios", func() {
		g := scenario.Grid{
			Avail:    splitList(*avail),
			Policies: splitList(*policies),
			Fleets:   splitList(*fleets),
			Market:   *marketName,
			SLO:      *slo,
			Systems:  systemList(*systems),
			Seed:     *seed,
		}
		if *full {
			// The full cross, with any explicit axis flags overriding the
			// scale-out defaults. Rows aggregate as cells finish (streaming,
			// O(active cells) memory); a progress line keeps the 1000+-cell
			// run observable.
			fg := scenario.FullGrid()
			fg.SLO, fg.Seed = g.SLO, *seed
			if len(g.Avail) > 0 {
				fg.Avail = g.Avail
			}
			if len(g.Policies) > 0 {
				fg.Policies = g.Policies
			}
			if len(g.Fleets) > 0 {
				fg.Fleets = g.Fleets
			}
			if *marketName != "" {
				fg.Markets = splitList(*marketName)
			}
			fg.Systems = systemList(*systems)
			g = fg
		}
		done := 0
		onRow := func(int, scenario.GridRow) {
			if done++; *full && done%100 == 0 {
				fmt.Fprintf(os.Stderr, "scenarios: %d cells done\n", done)
			}
		}
		rows, err := scenario.GridSweepStream(g, sw, onRow)
		if err != nil {
			fmt.Fprintf(os.Stderr, "scenarios: %v\n", err)
			os.Exit(2)
		}
		fmt.Print(scenario.RenderGrid(rows))
	})

	// Calibration is an explicit mode, never part of -exp all: it needs an
	// input file (or writes one) and its exit status means verdict, not
	// render success.
	if *exp == "calibrate" {
		runCalibrate(calibrateFlags{
			observed: *observed,
			fit:      *fit,
			export:   *calibExport,
			parallel: *parallel,
			ref: calibrate.ScenarioRef{
				Avail:  firstOf(splitList(*avail)),
				Policy: firstOf(splitList(*policies)),
				Fleet:  firstOf(splitList(*fleets)),
				Market: *marketName,
				SLO:    *slo,
				Seed:   *seed,
				Seeds:  *seeds,
			},
		})
		return
	}

	switch *exp {
	case "all", "table1", "fig5", "fig6", "fig7", "fig8", "fig9", "minmem", "scenarios":
	default:
		fmt.Fprintf(os.Stderr, "unknown experiment %q\n", *exp)
		os.Exit(2)
	}
}

// calibrateFlags bundles the -exp calibrate inputs.
type calibrateFlags struct {
	observed string
	fit      bool
	export   string
	parallel int
	ref      calibrate.ScenarioRef
}

// runCalibrate drives the calibration mode: export a simulated run as an
// observed trace (-calib-export), or validate an observed trace against its
// replayed scenario (-observed), optionally fitting market parameters
// (-fit). A fail verdict exits 1; usage and I/O errors exit 2.
func runCalibrate(cf calibrateFlags) {
	if cf.export != "" {
		obs, err := calibrate.ExportScenario("export", cf.ref, cf.parallel)
		if err != nil {
			fmt.Fprintf(os.Stderr, "calibrate: %v\n", err)
			os.Exit(2)
		}
		data, err := obs.Marshal()
		if err != nil {
			fmt.Fprintf(os.Stderr, "calibrate: %v\n", err)
			os.Exit(2)
		}
		if err := os.WriteFile(cf.export, data, 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "calibrate: %v\n", err)
			os.Exit(2)
		}
		fmt.Printf("calibrate: wrote observed trace to %s (%d metrics)\n", cf.export, len(obs.Metrics))
		return
	}
	if cf.observed == "" {
		fmt.Fprintln(os.Stderr, "calibrate: -observed trace.json required (or -calib-export out.json)")
		os.Exit(2)
	}
	data, err := os.ReadFile(cf.observed)
	if err != nil {
		fmt.Fprintf(os.Stderr, "calibrate: %v\n", err)
		os.Exit(2)
	}
	obs, err := calibrate.ParseObserved(data)
	if err != nil {
		fmt.Fprintf(os.Stderr, "calibrate: %v\n", err)
		os.Exit(2)
	}
	rep, err := calibrate.Run(obs, calibrate.Options{Parallel: cf.parallel})
	if err != nil {
		fmt.Fprintf(os.Stderr, "calibrate: %v\n", err)
		os.Exit(2)
	}
	fmt.Print(rep.Render())
	if cf.fit {
		fr, err := calibrate.FitMarket(obs, calibrate.FitSpec{}, calibrate.Options{Parallel: cf.parallel})
		if err != nil {
			fmt.Fprintf(os.Stderr, "calibrate: fit: %v\n", err)
			os.Exit(2)
		}
		fmt.Print(fr.Render())
	}
	if rep.Verdict == calibrate.VerdictFail {
		os.Exit(1)
	}
}

// firstOf returns a list's first entry ("" when empty) — the calibration
// scenario is a single cell, so only the first of each grid axis applies.
func firstOf(xs []string) string {
	if len(xs) == 0 {
		return ""
	}
	return xs[0]
}

// splitList parses a comma-separated flag value, dropping empty entries.
func splitList(s string) []string {
	if s == "" {
		return nil
	}
	var out []string
	for _, part := range strings.Split(s, ",") {
		if part = strings.TrimSpace(part); part != "" {
			out = append(out, part)
		}
	}
	return out
}

// systemList maps the -systems flag to serving systems.
func systemList(s string) []experiments.System {
	switch s {
	case "", "spotserve":
		return []experiments.System{experiments.SpotServe}
	case "baselines":
		return []experiments.System{experiments.Reroute, experiments.Reparallel}
	case "all":
		return experiments.Systems()
	default:
		fmt.Fprintf(os.Stderr, "unknown -systems %q (want spotserve, baselines, or all)\n", s)
		os.Exit(2)
		return nil
	}
}
