// Package spotserve_bench regenerates every table and figure of the
// paper's evaluation as Go benchmarks. Each benchmark reports, besides
// ns/op for the simulation itself, custom metrics carrying the figure's
// headline numbers (latencies in seconds, speedup factors, costs) so that
//
//	go test -bench=. -benchmem
//
// replays the full evaluation and prints the reproduced results.
package spotserve_bench

import (
	"fmt"
	"runtime"
	"testing"

	"spotserve/internal/cloud"
	"spotserve/internal/config"
	"spotserve/internal/cost"
	"spotserve/internal/experiments"
	"spotserve/internal/km"
	"spotserve/internal/model"
	"spotserve/internal/reconfig"
	"spotserve/internal/trace"
	"spotserve/internal/workload"
)

// BenchmarkTable1 regenerates Table 1: minimum GPU counts and l_exe(B=1)
// for the three models.
func BenchmarkTable1(b *testing.B) {
	var rows []experiments.Table1Row
	for i := 0; i < b.N; i++ {
		rows = experiments.Table1()
	}
	for _, r := range rows {
		b.ReportMetric(float64(r.MinGPUs), r.Model+"_minGPUs")
		b.ReportMetric(r.LexeB1, r.Model+"_lexe_s")
	}
}

// BenchmarkFigure5 regenerates the availability traces including the
// Algorithm-1 on-demand mixes.
func BenchmarkFigure5(b *testing.B) {
	var rows []experiments.Figure5Row
	for i := 0; i < b.N; i++ {
		rows = experiments.Figure5(1)
	}
	for _, r := range rows {
		b.ReportMetric(float64(r.MinTotal), r.Name+"_min")
		b.ReportMetric(float64(r.Max), r.Name+"_max")
	}
}

// benchScenario runs one (system, model, trace) cell and reports its P99.
// Allocations are reported (the simulation hot paths are supposed to be
// allocation-lean; regressions show up here) and the timer excludes setup.
func benchScenario(b *testing.B, sys experiments.System, spec model.Spec, tr trace.Trace, mix bool) {
	sc := experiments.DefaultScenario(sys, spec, tr, 1)
	sc.AllowOnDemand = mix
	var p99, avg float64
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := experiments.Run(sc)
		p99, avg = res.Stats.Latency.P99, res.Stats.Latency.Avg
	}
	b.ReportMetric(p99, "P99_s")
	b.ReportMetric(avg, "Avg_s")
}

// BenchmarkFigure6 regenerates the end-to-end latency comparison, one
// sub-benchmark per (model, trace, system) cell.
func BenchmarkFigure6(b *testing.B) {
	for _, spec := range model.All() {
		for _, tr := range []trace.Trace{trace.AS(), trace.BS()} {
			for _, mix := range []bool{false, true} {
				name := tr.Name
				if mix {
					name += "+O"
				}
				for _, sys := range experiments.Systems() {
					spec, tr, mix, sys := spec, tr, mix, sys
					b.Run(spec.Name+"/"+name+"/"+string(sys), func(b *testing.B) {
						benchScenario(b, sys, spec, tr, mix)
					})
				}
			}
		}
	}
}

// BenchmarkFigure7 regenerates the monetary-cost study on GPT-20B and
// reports the best spot-vs-on-demand saving.
func BenchmarkFigure7(b *testing.B) {
	b.ReportAllocs()
	var rows []experiments.Figure7Row
	for i := 0; i < b.N; i++ {
		rows = experiments.Figure7(1)
	}
	var spotCost, odCost float64
	for _, r := range rows {
		if r.CostPerToken <= 0 {
			continue
		}
		if r.System == experiments.SpotServe && (spotCost == 0 || r.CostPerToken < spotCost) {
			spotCost = r.CostPerToken
		}
		if r.System == experiments.OnDemandOnly && (odCost == 0 || r.CostPerToken < odCost) {
			odCost = r.CostPerToken
		}
	}
	b.ReportMetric(spotCost, "spot_cost_1e-5USD/tok")
	b.ReportMetric(odCost, "ondemand_cost_1e-5USD/tok")
	if odCost > 0 {
		b.ReportMetric((1-spotCost/odCost)*100, "saving_%")
	}
}

// BenchmarkFigure8 regenerates the fluctuating-workload study and reports
// SpotServe's P99 improvement over both baselines.
func BenchmarkFigure8(b *testing.B) {
	b.ReportAllocs()
	var rows []experiments.Figure8Row
	for i := 0; i < b.N; i++ {
		rows = experiments.Figure8(1)
	}
	p99 := map[string]map[experiments.System]float64{}
	for _, r := range rows {
		if p99[r.Trace] == nil {
			p99[r.Trace] = map[experiments.System]float64{}
		}
		p99[r.Trace][r.System] = r.Summary.P99
	}
	for tr, m := range p99 {
		if m[experiments.SpotServe] > 0 {
			b.ReportMetric(m[experiments.Reparallel]/m[experiments.SpotServe], tr+"_vsReparallel_x")
			b.ReportMetric(m[experiments.Reroute]/m[experiments.SpotServe], tr+"_vsReroute_x")
		}
	}
}

// BenchmarkFigure9 regenerates the ablation study and reports the total
// degradation factor of the fully ablated system per trace (the paper's
// 1.61× on A_S and 3.41× on B_S).
func BenchmarkFigure9(b *testing.B) {
	b.ReportAllocs()
	var rows []experiments.Figure9Row
	for i := 0; i < b.N; i++ {
		rows = experiments.Figure9(1)
	}
	base := map[string]float64{}
	last := map[string]float64{}
	for _, r := range rows {
		if r.Variant == "SpotServe" {
			base[r.Trace] = r.Summary.P99
		}
		if r.Variant == "-DeviceMapper" {
			last[r.Trace] = r.Summary.P99
		}
	}
	for tr := range base {
		if base[tr] > 0 {
			b.ReportMetric(last[tr]/base[tr], tr+"_ablation_x")
		}
	}
}

// BenchmarkFigure6Sweep replays the full 36-scenario Figure 6 grid through
// the sweep harness at several worker counts. Comparing the serial/1 and
// parallel/N sub-benchmarks measures the wall-clock speedup of the
// parallel path (the determinism tests separately prove the results are
// identical).
func BenchmarkFigure6Sweep(b *testing.B) {
	for _, workers := range []int{1, 2, 4, 0} {
		name := fmt.Sprintf("workers=%d", workers)
		if workers == 0 {
			name = fmt.Sprintf("workers=GOMAXPROCS(%d)", runtime.GOMAXPROCS(0))
		}
		b.Run(name, func(b *testing.B) {
			b.ReportAllocs()
			var cells []experiments.Figure6Cell
			for i := 0; i < b.N; i++ {
				cells = experiments.Figure6Sweep(experiments.Sweep{
					Parallel: workers, Seeds: []int64{1},
				})
			}
			if len(cells) != 36 {
				b.Fatalf("cells = %d, want 36", len(cells))
			}
		})
	}
}

// BenchmarkSweepReplication measures multi-seed replication end to end:
// one Figure 6 cell replicated at 5 seeds on the full worker pool, with
// the rendered band as the reported artifact.
func BenchmarkSweepReplication(b *testing.B) {
	sw := experiments.Sweep{Seeds: experiments.SeedRange(1, 5)}
	cell := experiments.DefaultScenario(
		experiments.SpotServe, model.GPT20B, trace.BS(), 1)
	var rep experiments.Replication
	for i := 0; i < b.N; i++ {
		reps := sw.RunCells([]experiments.Scenario{cell})
		rep = experiments.NewReplication(reps[0])
	}
	band := rep.P99.Band()
	b.ReportMetric(band.Mean, "P99_mean_s")
	b.ReportMetric(band.Stderr, "P99_stderr_s")
	b.ReportMetric(band.Max-band.Min, "P99_spread_s")
}

// BenchmarkMinMem regenerates the §6.2 migration-buffer observation.
func BenchmarkMinMem(b *testing.B) {
	var rows []experiments.MinMemRow
	for i := 0; i < b.N; i++ {
		rows = experiments.MinMem()
	}
	for _, r := range rows {
		b.ReportMetric(float64(r.MemOptMinGPUs), r.Model+"_memopt")
		b.ReportMetric(float64(r.NaiveMinGPUs), r.Model+"_naive")
	}
}

// BenchmarkConfigOptimizer measures Algorithm 1's decision latency — the
// paper notes the online optimizer costs well under a second.
func BenchmarkConfigOptimizer(b *testing.B) {
	est := cost.NewEstimator(cost.DefaultParams(), model.GPT20B)
	sc := experiments.DefaultScenario(experiments.SpotServe, model.GPT20B, trace.AS(), 1)
	_ = sc
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// Fresh optimizer each round so the memo does not trivialize it.
		o := newOptimizer(est)
		_ = o.Propose(10, 0.35)
	}
}

// BenchmarkWorkloadGen measures arrival generation throughput.
func BenchmarkWorkloadGen(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_, err := workload.Generate(workload.Options{
			Horizon: 1200, Rate: workload.ConstantRate(1.5), CV: 6,
			SeqIn: 512, SeqOut: 128, Seed: int64(i),
		})
		if err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEndToEndSimulation measures the wall-clock cost of one full
// 20-minute serving simulation (SpotServe, GPT-20B, trace B_S).
func BenchmarkEndToEndSimulation(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sc := experiments.DefaultScenario(experiments.SpotServe, model.GPT20B, trace.BS(), 1)
		_ = experiments.Run(sc)
	}
}

// newOptimizer mirrors core.NewOptimizer without importing internal/core
// symbols beyond what the bench needs.
func newOptimizer(est *cost.Estimator) *benchOptimizer {
	return &benchOptimizer{est: est}
}

type benchOptimizer struct{ est *cost.Estimator }

// Propose enumerates candidate configurations the way Algorithm 1 does and
// picks the throughput-feasible latency minimum; this standalone copy keeps
// the benchmark honest about the enumeration cost.
func (o *benchOptimizer) Propose(nInstances int, alpha float64) config.Config {
	limits := config.DefaultLimits()
	gpus := nInstances * 4
	best := config.Zero
	bestL := 0.0
	for _, bsz := range limits.Bs {
		for _, s := range o.est.FeasibleShapes(limits, bsz, cost.DefaultMaxTokens, false) {
			for d := 1; d*s.GPUsPerPipeline() <= gpus; d++ {
				c := config.Config{D: d, P: s.P, M: s.M, B: bsz}
				l := o.est.Exec(c.P, c.M, c.B, cost.DefaultSeqIn, cost.DefaultSeqOut)
				phi := float64(c.D) * float64(c.B) / l
				if phi < alpha {
					continue
				}
				if best.IsZero() || l < bestL {
					best, bestL = c, l
				}
			}
		}
	}
	return best
}

// benchDevices fabricates nInst 4-GPU instances whose devices hold the
// contexts of configuration old (extra devices hold nothing) — the
// reconfiguration fixture shared by the pipeline benchmarks.
func benchDevices(spec model.Spec, nInst int, old config.Config) []reconfig.DeviceContext {
	var gpus []*cloud.GPU
	id := int64(0)
	for i := 0; i < nInst; i++ {
		inst := &cloud.Instance{ID: int64(i), Kind: cloud.Spot, State: cloud.Running}
		for s := 0; s < 4; s++ {
			g := &cloud.GPU{ID: id, Slot: s, Inst: inst}
			inst.GPUs = append(inst.GPUs, g)
			gpus = append(gpus, g)
			id++
		}
	}
	positions := old.Positions()
	out := make([]reconfig.DeviceContext, len(gpus))
	for i, g := range gpus {
		dc := reconfig.DeviceContext{GPU: g, CachePipeline: -1}
		if i < len(positions) {
			pos := positions[i]
			dc.ModelCtx = model.PositionRect(spec, old.P, old.M, pos.P, pos.M)
		}
		out[i] = dc
	}
	return out
}

// BenchmarkReconfigure measures one full Request→Proposal→Mapping→Plan
// pipeline pass (the work SpotServe performs per preemption event) with
// the reconfiguration cache cold — every stage recomputed, as with
// reconfig.Options.DisableCache — versus warm, where the fleet signature,
// KM sub-matchings and parameter plan recur and replay from the memos.
func BenchmarkReconfigure(b *testing.B) {
	spec := model.GPT20B
	old := config.Config{D: 1, P: 2, M: 8, B: 1}
	devs := benchDevices(spec, 4, old)
	req := reconfig.Request{Alpha: 0.35, GPUsAvail: 16, MaxGPUs: 16, SpeedFloor: 1, MemFloor: 1}

	newEngine := func(disable bool) *reconfig.Engine {
		return reconfig.NewEngine(reconfig.Options{
			Spec:         spec,
			Est:          cost.NewEstimator(cost.DefaultParams(), spec),
			Limits:       config.DefaultLimits(),
			MaxInstances: 12,
			UseKM:        true,
			Hierarchical: true,
			Progressive:  true,
			MemOpt:       true,
			UmaxBytes:    cost.DefaultParams().BufMaxBytes,
			MigrateCache: true,
			DisableCache: disable,
		})
	}
	pipeline := func(b *testing.B, eng *reconfig.Engine) {
		prop := eng.Propose(req)
		mapping, err := eng.Map(devs, prop.Config, nil)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := eng.Plan(devs, mapping, nil); err != nil {
			b.Fatal(err)
		}
	}

	b.Run("cold", func(b *testing.B) {
		eng := newEngine(true)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			pipeline(b, eng)
		}
	})
	b.Run("warm", func(b *testing.B) {
		eng := newEngine(false)
		pipeline(b, eng) // prime the memos
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			pipeline(b, eng)
		}
		stats := eng.CacheStats()
		b.ReportMetric(stats.HitRate()*100, "hit_%")
	})
}

// BenchmarkKMWarmStart measures the Kuhn–Munkres solver cold versus the
// exact-reuse warm start (km.Cache) on a recurring device-mapping matrix —
// the situation after a preemption, where most instance×block sub-problems
// are untouched and replay instead of re-solving.
func BenchmarkKMWarmStart(b *testing.B) {
	spec := model.GPT20B
	old := config.Config{D: 1, P: 2, M: 8, B: 1}
	target := config.Config{D: 1, P: 3, M: 4, B: 1}
	devs := benchDevices(spec, 4, old)[:12]

	b.Run("cold", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := reconfig.MapDevices(spec, devs, target, reconfig.MapperOptions{
				UseKM: true, Hierarchical: true,
			}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("warm", func(b *testing.B) {
		kc := km.NewCache(0)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := reconfig.MapDevices(spec, devs, target, reconfig.MapperOptions{
				UseKM: true, Hierarchical: true, KM: kc,
			}); err != nil {
				b.Fatal(err)
			}
		}
		hits, misses := kc.Stats()
		if hits+misses > 0 {
			b.ReportMetric(float64(hits)/float64(hits+misses)*100, "hit_%")
		}
	})
}
