module spotserve

go 1.21
