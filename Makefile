# Standard local CI gate: `make ci` is what a change must pass before it
# lands. Individual stages are exposed for faster iteration.

GO ?= go

# Tier-1 performance benches: the headline simulation-kernel numbers.
# (-bench patterns are slash-separated: the second element selects the
# workers=1 sub-benchmark of the Figure 6 sweep.)
TIER1_BENCH = BenchmarkEndToEndSimulation$$|BenchmarkConfigOptimizer$$|BenchmarkFigure6Sweep$$/workers=1$$

# ns/op baselines are machine-specific. The committed BENCH_baseline.json
# is the reference box's; on other hardware snapshot your own once
# (`make bench-baseline BENCH_BASELINE=BENCH_baseline.local.json`) and gate
# against it.
BENCH_BASELINE ?= BENCH_baseline.json

.PHONY: ci build vet lint test race race-engine race-reconfig race-market race-serve chaos fuzz bench figures bench-baseline bench-check bench-record cover cover-floor examples daemon-smoke

ci: build vet lint race-engine race-reconfig race-market race-serve chaos race examples daemon-smoke cover bench-check

# Smoke gate: every example must build and run to completion (stdout is
# discarded; a non-zero exit or panic fails the gate). examples/daemon is
# gated separately by daemon-smoke, which checks its output contracts.
EXAMPLES = quickstart spotmarket autoscale faulttolerance scenarios
examples:
	$(GO) build ./examples/...
	@for ex in $(EXAMPLES); do \
		echo "go run ./examples/$$ex"; \
		$(GO) run ./examples/$$ex > /dev/null || exit 1; \
	done

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# Determinism lint: detlint statically enforces the byte-identity
# contract (no order-sensitive map iteration, wall-clock reads or
# non-canonical float formatting in the kernel packages; no global rand
# anywhere in internal/). Exits non-zero on any unsuppressed finding;
# suppressions require `//detlint:allow <analyzer> — <reason>`. See
# docs/ANALYSIS.md. Also usable as `go vet -vettool`:
#   go build -o /tmp/detlint ./cmd/detlint && go vet -vettool=/tmp/detlint ./...
lint:
	$(GO) run ./cmd/detlint ./...

test:
	$(GO) test ./...

# The experiments package hosts the parallel sweep worker pool; the full
# suite under -race is the concurrency gate.
race:
	$(GO) test -race ./...

# Focused race gate on the decode hot path: the span-commit engine and the
# simulation kernel own the pooled state (span scratch buffers, event slabs,
# free lists) that the sweep pool runs on every worker — fast to iterate on
# when touching either.
race-engine:
	$(GO) test -race ./internal/engine/ ./internal/sim/

# Focused race gate on the reconfiguration pipeline and the control plane
# that drives it: the per-server memos and the process-wide shared cost
# profile are exercised concurrently by the sweep pool, so these two
# packages get an explicit first-class -race run (fast to iterate on).
race-reconfig:
	$(GO) test -race ./internal/reconfig/ ./internal/core/

# Focused race gate on the spot-market subsystem: price processes and the
# scenario axes that regenerate per-replica markets/traces inside the
# parallel sweep pool.
race-market:
	$(GO) test -race ./internal/market/ ./internal/scenario/

# Focused race gate on the serving daemon: many HTTP clients share one
# warm process (job registry, cell cache, stream fan-out), so the package
# gets a first-class -race run.
race-serve:
	$(GO) test -race ./internal/serve/

# Chaos gate: the fault-injection suite. The harness itself (schedule
# determinism) and the daemon's degraded paths run under -race — fault
# isolation is concurrency machinery — plus the focused fault-tolerance
# tests in the sweep pool and the grid layer.
chaos:
	$(GO) test -race ./internal/faults/ ./internal/serve/
	$(GO) test -race -run 'Isolated|Retry|Tolerant' ./internal/experiments/ ./internal/scenario/

# Daemon smoke gate: start spotserved's engine, submit a small grid over
# HTTP, assert the streamed NDJSON rows fingerprint-match the equivalent
# CLI run, assert a resubmit is served entirely from the cell cache, and
# shut down cleanly. Any violation exits non-zero.
daemon-smoke:
	$(GO) run ./examples/daemon > /dev/null

# Short fuzz pass over the JSON wire formats (CI smoke; run longer locally
# with -fuzztime=5m when touching a parser). Seed corpora live under each
# package's testdata/fuzz/<FuzzName>/ and run as plain tests in `make test`.
fuzz:
	$(GO) test -fuzz=FuzzParseTrace$$ -fuzztime=15s ./internal/trace/
	$(GO) test -fuzz=FuzzParseTraceEvents -fuzztime=15s ./internal/trace/
	$(GO) test -fuzz=FuzzParseObservedTrace -fuzztime=15s ./internal/calibrate/
	$(GO) test -fuzz=FuzzParseJobSpec -fuzztime=15s ./internal/scenario/

# Coverage gate: per-package statement coverage must not drop below the
# committed floors in COVER_floor.json (calibrate/scenario/serve). The test
# run lands in a temp file first so a failing test fails the target instead
# of vanishing down an unchecked pipe.
cover:
	$(GO) test -cover ./... > cover-out.tmp \
		|| { cat cover-out.tmp; rm -f cover-out.tmp; exit 1; }
	$(GO) run ./cmd/covercheck -check -floor COVER_floor.json < cover-out.tmp; \
		st=$$?; rm -f cover-out.tmp; exit $$st

# Re-record the coverage floors after deliberately moving coverage.
cover-floor:
	$(GO) test -cover ./... > cover-out.tmp \
		|| { cat cover-out.tmp; rm -f cover-out.tmp; exit 1; }
	$(GO) run ./cmd/covercheck -write -floor COVER_floor.json < cover-out.tmp; \
		st=$$?; rm -f cover-out.tmp; exit $$st

# Replay the paper's full evaluation as benchmarks.
bench:
	$(GO) test -bench=. -benchmem .

# Snapshot the tier-1 benches to $(BENCH_BASELINE) (min ns/op of 3 runs).
# Re-run on the reference machine after deliberate performance changes.
# The bench run lands in a temp file first so a failing/panicking benchmark
# fails the target instead of vanishing down an unchecked pipe.
bench-baseline:
	$(GO) test -run='^$$' -bench='$(TIER1_BENCH)' -benchmem -count=3 . > bench-out.tmp \
		|| { cat bench-out.tmp; rm -f bench-out.tmp; exit 1; }
	$(GO) run ./cmd/benchcheck -write -baseline $(BENCH_BASELINE) < bench-out.tmp; \
		st=$$?; rm -f bench-out.tmp; exit $$st

# Gate: BenchmarkEndToEndSimulation may not regress >10% in ns/op OR
# allocs/op vs the baseline (other tier-1 benches are reported, not gated).
# Allocations gate alongside time so pooling wins cannot quietly erode.
bench-check:
	$(GO) test -run='^$$' -bench='$(TIER1_BENCH)' -benchmem -count=3 . > bench-out.tmp \
		|| { cat bench-out.tmp; rm -f bench-out.tmp; exit 1; }
	$(GO) run ./cmd/benchcheck -check -baseline $(BENCH_BASELINE) -max-regress 0.10 < bench-out.tmp; \
		st=$$?; rm -f bench-out.tmp; exit $$st

# Record the current tier-1 numbers as one labeled point in the committed
# performance trajectory (separate from the gating baseline, so a record
# never moves the regression gate). Re-recording a label replaces its entry.
#   make bench-record BENCH_LABEL="PR 9" BENCH_COMMENT="what changed"
BENCH_LABEL ?=
BENCH_COMMENT ?=
bench-record:
	@test -n '$(BENCH_LABEL)' || { echo 'bench-record: set BENCH_LABEL="PR N"'; exit 2; }
	$(GO) test -run='^$$' -bench='$(TIER1_BENCH)' -benchmem -count=3 . > bench-out.tmp \
		|| { cat bench-out.tmp; rm -f bench-out.tmp; exit 1; }
	$(GO) run ./cmd/benchcheck -record -trajectory BENCH_trajectory.json \
		-label '$(BENCH_LABEL)' -comment '$(BENCH_COMMENT)' < bench-out.tmp; \
		st=$$?; rm -f bench-out.tmp; exit $$st

# Regenerate every table and figure on all cores.
figures:
	$(GO) run ./cmd/experiments -parallel 0 -seeds 1
