# Standard local CI gate: `make ci` is what a change must pass before it
# lands. Individual stages are exposed for faster iteration.

GO ?= go

.PHONY: ci build vet test race fuzz bench figures

ci: build vet race

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# The experiments package hosts the parallel sweep worker pool; the full
# suite under -race is the concurrency gate.
race:
	$(GO) test -race ./...

# Short fuzz pass over the JSON trace format (CI smoke; run longer locally
# with -fuzztime=5m when touching internal/trace).
fuzz:
	$(GO) test -fuzz=FuzzParseTrace$$ -fuzztime=15s ./internal/trace/
	$(GO) test -fuzz=FuzzParseTraceEvents -fuzztime=15s ./internal/trace/

# Replay the paper's full evaluation as benchmarks.
bench:
	$(GO) test -bench=. -benchmem .

# Regenerate every table and figure on all cores.
figures:
	$(GO) run ./cmd/experiments -parallel 0 -seeds 1
