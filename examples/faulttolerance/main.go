// Faulttolerance: exercise SpotServe's interruption fault-tolerance paths
// (§4.2) — overlapping preemption notices, cache give-ups, and the
// total-context-loss reload from cloud storage.
//
// Run with: go run ./examples/faulttolerance
package main

import (
	"fmt"

	"spotserve/internal/experiments"
	"spotserve/internal/model"
	"spotserve/internal/trace"
)

func main() {
	// A brutal trace: compact consecutive preemptions (overlapping grace
	// periods), then a total outage, then recovery.
	brutal := trace.Trace{
		Name:    "brutal",
		Horizon: 900,
		Events: []trace.Event{
			{At: 0, Count: 8},
			{At: 100, Count: 6}, // two at once
			{At: 115, Count: 4}, // overlapping with the previous grace period
			{At: 130, Count: 3}, // and again
			{At: 300, Count: 0}, // total outage: every replica lost
			{At: 420, Count: 6}, // capacity returns → storage reload
		},
	}
	if err := brutal.Validate(); err != nil {
		panic(err)
	}

	fmt.Println("trace: 8 → 6 → 4 → 3 instances in 30 s, total outage at t=300, recovery at t=420")
	fmt.Println()
	for _, sys := range []experiments.System{experiments.SpotServe, experiments.Reparallel} {
		sc := experiments.DefaultScenario(sys, model.OPT6B7, brutal, 3)
		sc.Rate = 0.6
		res := experiments.Run(sc)
		st := res.Stats
		fmt.Printf("%s:\n", sys)
		fmt.Printf("  served %d/%d   %s\n", st.Completed, st.Submitted, st.Latency)
		fmt.Printf("  migrations=%d reloads=%d cache-give-ups=%d tokens-recovered=%d\n",
			st.Migrations, st.Reloads, st.CacheGiveUps, st.TokensRecovered)
		for _, c := range st.ConfigLog {
			fmt.Printf("    t=%6.0fs  %-22v %s\n", c.At, c.Config, c.Reason)
		}
		fmt.Println()
	}
	fmt.Println("SpotServe survives the cascade by migrating context while replicas exist,")
	fmt.Println("gives up cache context when grace periods overlap, and falls back to a")
	fmt.Println("cloud-storage reload only after the total outage destroyed every replica.")
}
