// Example daemon walks through the spotserved serving daemon end to end —
// and doubles as the `make daemon-smoke` gate. It starts the daemon on a
// loopback port, submits a small grid job over real HTTP, streams the NDJSON
// rows as cells finish, and then checks the determinism contract the hard
// way: every streamed fingerprint must match the equivalent CLI-path run
// (scenario.GridSweep at the same seed), and a resubmitted identical job
// must be served entirely from the cell cache. Any mismatch exits non-zero.
package main

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"os"
	"time"

	"spotserve/internal/scenario"
	"spotserve/internal/serve"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintf(os.Stderr, "daemon example: %v\n", err)
		os.Exit(1)
	}
}

func run() error {
	// 1. Start the daemon — the same serve.Server cmd/spotserved wraps —
	// on a loopback port.
	daemon := serve.New(serve.Options{QueueDepth: 4})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	httpSrv := &http.Server{Handler: daemon.Handler()}
	go httpSrv.Serve(ln)
	base := "http://" + ln.Addr().String()
	fmt.Printf("spotserved listening on %s\n", base)

	// 2. Submit a small grid job: 2 availability models × 2 policies on the
	// homogeneous fleet, replicated at 2 seeds.
	spec := scenario.JobSpec{
		Avail:    []string{"diurnal", "bursty"},
		Policies: []string{"fixed", "slo-latency"},
		Fleets:   []string{"homog"},
		Seed:     1,
		Seeds:    2,
	}
	body, _ := json.Marshal(spec)
	resp, err := http.Post(base+"/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		return err
	}
	var sub struct {
		ID        string `json:"id"`
		Cells     int    `json:"cells"`
		StreamURL string `json:"stream_url"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&sub); err != nil {
		return err
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		return fmt.Errorf("submit: status %d", resp.StatusCode)
	}
	fmt.Printf("submitted %s: %d cells → %s\n", sub.ID, sub.Cells, sub.StreamURL)

	// 3. Stream the NDJSON rows as cells finish.
	rows, err := streamRows(base+sub.StreamURL, sub.Cells)
	if err != nil {
		return err
	}

	// 4. Determinism: the streamed fingerprints must match the equivalent
	// CLI-path run (exactly what `experiments -exp scenarios` computes).
	grid, err := spec.Grid()
	if err != nil {
		return err
	}
	cliRows, err := scenario.GridSweep(grid, spec.Sweep())
	if err != nil {
		return err
	}
	if len(rows) != len(cliRows) {
		return fmt.Errorf("daemon streamed %d rows, CLI computed %d", len(rows), len(cliRows))
	}
	for _, row := range rows {
		want := fmt.Sprint(cliRows[row.Cell].Fingerprints)
		if got := fmt.Sprint(row.Fingerprints); got != want {
			return fmt.Errorf("cell %d: daemon fingerprints %s != CLI %s", row.Cell, got, want)
		}
	}
	fmt.Printf("determinism: all %d streamed rows fingerprint-match the CLI run\n", len(rows))

	// 5. Resubmit the identical job: the cell cache must serve every
	// replica without simulating.
	resp, err = http.Post(base+"/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		return err
	}
	var sub2 struct {
		ID string `json:"id"`
	}
	json.NewDecoder(resp.Body).Decode(&sub2)
	resp.Body.Close()
	if _, err := streamRows(base+"/jobs/"+sub2.ID+"/stream", sub.Cells); err != nil {
		return err
	}
	st, err := jobStatus(base + "/jobs/" + sub2.ID)
	if err != nil {
		return err
	}
	replicas := sub.Cells * 2 // seeds per cell
	if st.CacheHits != replicas || st.CacheMisses != 0 {
		return fmt.Errorf("resubmit: %d hits / %d misses, want %d / 0 (fully cached)",
			st.CacheHits, st.CacheMisses, replicas)
	}
	fmt.Printf("cache: resubmitted job served %d/%d replicas from the cell cache\n",
		st.CacheHits, replicas)

	// 6. /stats surfaces the fleet-wide counters.
	var stats serve.Stats
	if err := getJSON(base+"/stats", &stats); err != nil {
		return err
	}
	fmt.Printf("stats: %d jobs served, cache hit rate %.0f%% (%d/%d)\n",
		stats.JobsServed, stats.Cache.HitRate*100, stats.Cache.Hits,
		stats.Cache.Hits+stats.Cache.Misses)

	// 7. Graceful shutdown: drain jobs, then close the listener.
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := daemon.Shutdown(ctx); err != nil {
		return fmt.Errorf("drain: %w", err)
	}
	if err := httpSrv.Shutdown(ctx); err != nil {
		return fmt.Errorf("http shutdown: %w", err)
	}
	fmt.Println("clean shutdown: queue drained, listener closed")
	return nil
}

// streamRows consumes one NDJSON stream to its terminal line.
func streamRows(url string, wantCells int) ([]serve.Row, error) {
	resp, err := http.Get(url)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	var rows []serve.Row
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<24)
	for sc.Scan() {
		var probe map[string]json.RawMessage
		if err := json.Unmarshal(sc.Bytes(), &probe); err != nil {
			return nil, fmt.Errorf("bad NDJSON line: %w", err)
		}
		if _, done := probe["done"]; done {
			break
		}
		var row serve.Row
		if err := json.Unmarshal(sc.Bytes(), &row); err != nil {
			return nil, err
		}
		rows = append(rows, row)
		fmt.Printf("  row cell=%d %s/%s p99=%.1fs $/1ktok=%.4f\n",
			row.Cell, row.Avail, row.Policy, row.Summary.P99, row.CostPer1kTok.Mean())
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(rows) != wantCells {
		return nil, fmt.Errorf("streamed %d rows, want %d", len(rows), wantCells)
	}
	return rows, nil
}

func jobStatus(url string) (serve.Status, error) {
	var st serve.Status
	err := getJSON(url, &st)
	return st, err
}

func getJSON(url string, v any) error {
	resp, err := http.Get(url)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("GET %s: status %d", url, resp.StatusCode)
	}
	return json.NewDecoder(resp.Body).Decode(v)
}
