// Autoscale: replay the fluctuating MAF-style workload of §6.3 with
// on-demand mixing enabled and watch the parallelization controller scale
// the configuration up through the overload and back down afterwards
// (Figure 8g/8h).
//
// Run with: go run ./examples/autoscale
package main

import (
	"fmt"

	"spotserve/internal/experiments"
	"spotserve/internal/model"
	"spotserve/internal/trace"
	"spotserve/internal/workload"
)

func main() {
	base := workload.DefaultRates()["GPT-20B"] // 0.35 req/s

	sc := experiments.DefaultScenario(experiments.SpotServe, model.GPT20B, trace.APrimeS(), 11)
	sc.AllowOnDemand = true
	sc.RateFn = workload.StepRate(workload.MAFSteps(base))
	res := experiments.Run(sc)
	st := res.Stats

	fmt.Println("fluctuating workload (rescaled MAF) on GPT-20B, trace A'_S with on-demand mixing")
	fmt.Printf("arrival rate: %.2f → %.2f → %.2f req/s (ramp at t≈270 s, decay after t≈600 s)\n\n",
		base*0.85, base*1.9, base*0.85)

	fmt.Printf("served %d/%d   %s\n", st.Completed, st.Submitted, st.Latency)
	fmt.Printf("on-demand instances allocated: %d   cost: %.2f USD\n\n",
		st.OnDemandAllocated, st.CostUSD)

	fmt.Println("configuration timeline (the controller follows the workload):")
	for _, c := range st.ConfigLog {
		fmt.Printf("  t=%6.0fs  %-22v %-12s %3d GPUs, %2d concurrent requests\n",
			c.At, c.Config, c.Reason, c.Config.GPUs(), c.Config.ConcurrentRequests())
	}

	// Per-request latency in windows, the Figure 8g view.
	fmt.Println("\nper-arrival-window average latency:")
	for w := 0.0; w < trace.APrimeS().Horizon; w += 120 {
		n, sum := 0, 0.0
		for _, sample := range st.PerRequest.Samples {
			if sample.At >= w && sample.At < w+120 {
				n++
				sum += sample.Value
			}
		}
		if n == 0 {
			continue
		}
		fmt.Printf("  t=%4.0f-%4.0fs  n=%3d  avg=%6.1fs\n", w, w+120, n, sum/float64(n))
	}
}
