// Scenarios: sweep the scenario library's three axes — availability
// model × autoscaling policy × fleet composition — through the parallel
// harness with multi-seed replication, and compare how the policies hold
// up under a capacity crunch on homogeneous and mixed fleets.
//
// Run with: go run ./examples/scenarios
package main

import (
	"fmt"

	"spotserve/internal/experiments"
	"spotserve/internal/scenario"
)

func main() {
	fmt.Println("capacity crunch (12 → 3 instances) under three autoscaling policies,")
	fmt.Println("on the homogeneous g4dn fleet and the mixed g4dn+g5 fleet, 3 seeds each")
	fmt.Println()

	grid := scenario.Grid{
		Avail:    []string{"crunch"},
		Policies: scenario.Policies(), // fixed, reactive-queue, predictive
		Fleets:   []string{"homog", "hetero-speed"},
	}
	rows, err := scenario.GridSweep(grid, experiments.Sweep{
		Seeds: experiments.SeedRange(1, 3),
	})
	if err != nil {
		panic(err)
	}
	fmt.Print(scenario.RenderGrid(rows))

	// Headline: how much P99 the proactive policies buy back vs fixed.
	base := map[string]float64{}
	for _, r := range rows {
		if r.Policy == "fixed" {
			base[r.Fleet] = r.Reps.P99.Mean()
		}
	}
	fmt.Println()
	for _, r := range rows {
		if r.Policy == "fixed" || base[r.Fleet] <= 0 {
			continue
		}
		fmt.Printf("%-15s on %-13s mean P99 %.0fs vs fixed %.0fs (%.2fx)\n",
			r.Policy, r.Fleet, r.Reps.P99.Mean(), base[r.Fleet],
			base[r.Fleet]/r.Reps.P99.Mean())
	}

	fmt.Println("\nall registered axes (see docs/SCENARIOS.md):")
	fmt.Printf("  availability models: %v\n", scenario.Models())
	fmt.Printf("  autoscaling policies: %v\n", scenario.Policies())
	fmt.Printf("  fleet presets: %v\n", scenario.Fleets())
}
