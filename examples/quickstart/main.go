// Quickstart: serve GPT-20B on a replayed spot-availability trace with
// SpotServe and print the latency distribution.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"

	"spotserve/internal/cloud"
	"spotserve/internal/core"
	"spotserve/internal/model"
	"spotserve/internal/sim"
	"spotserve/internal/trace"
	"spotserve/internal/workload"
)

func main() {
	// 1. A deterministic discrete-event simulator is the clock.
	s := sim.New()

	// 2. A simulated cloud provider offers 4-GPU spot instances whose
	//    availability follows the embedded trace A_S (Figure 5), with
	//    30 s grace-period preemption notices.
	cl := cloud.New(s, cloud.DefaultParams(), nil)
	if err := cl.ReplayTrace(trace.AS()); err != nil {
		panic(err)
	}

	// 3. The SpotServe server: parallelization controller, device
	//    mapper, migration planner and interruption arranger.
	opts := core.DefaultOptions(model.GPT20B)
	srv := core.NewServer(s, cl, opts)
	srv.Install()

	// 4. A bursty request workload: 0.35 req/s, Gamma arrivals with
	//    CV=6, 512 input and 128 output tokens (the paper's setup).
	reqs, err := workload.Generate(workload.Options{
		Horizon: trace.AS().Horizon,
		Rate:    workload.ConstantRate(0.35),
		CV:      6,
		SeqIn:   512,
		SeqOut:  128,
		Seed:    42,
	})
	if err != nil {
		panic(err)
	}
	srv.LoadWorkload(reqs, trace.AS().Horizon)

	// 5. Run the virtual 20 minutes (plus drain) in real milliseconds.
	s.Run(trace.AS().Horizon + 600)

	st := srv.Stats()
	fmt.Printf("served %d/%d requests on preemptible instances\n", st.Completed, st.Submitted)
	fmt.Printf("latency: %s\n", st.Latency)
	fmt.Printf("cost:    %.2f USD  (spot price advantage over on-demand: ~2x)\n", st.CostUSD)
	fmt.Printf("context migrations: %d   full reloads: %d   tokens recovered statefully: %d\n",
		st.Migrations, st.Reloads, st.TokensRecovered)
	fmt.Println("\nconfiguration timeline:")
	for _, c := range st.ConfigLog {
		fmt.Printf("  t=%6.0fs  %-22v %s\n", c.At, c.Config, c.Reason)
	}
}
