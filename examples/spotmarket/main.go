// Spotmarket: compare SpotServe against the Rerouting and
// Reparallelization baselines on a synthetic, volatile spot market, the
// Figure-6 experiment in miniature.
//
// Run with: go run ./examples/spotmarket
package main

import (
	"fmt"

	"spotserve/internal/experiments"
	"spotserve/internal/model"
	"spotserve/internal/trace"
)

func main() {
	// Generate a 20-minute spot market with heavy churn: counts wander
	// between 3 and 12 four-GPU instances, biased toward preemptions.
	market, err := trace.Generate(trace.GenOptions{
		Name:      "volatile-market",
		Horizon:   1200,
		Start:     10,
		Min:       3,
		Max:       12,
		MeanDwell: 75,
		DownBias:  0.55,
		MaxStep:   2,
		Seed:      7,
	})
	if err != nil {
		panic(err)
	}
	fmt.Printf("market: %d availability changes, count range [%d, %d]\n\n",
		len(market.Events), market.MinCount(), market.MaxCount())

	fmt.Printf("%-18s %8s %8s %8s %10s %12s\n",
		"System", "Avg", "P99", "Done", "Cost USD", "Recovered")
	var spotP99, worst float64
	for _, sys := range experiments.Systems() {
		sc := experiments.DefaultScenario(sys, model.GPT20B, market, 7)
		res := experiments.Run(sc)
		st := res.Stats
		fmt.Printf("%-18s %7.1fs %7.1fs %4d/%3d %10.2f %9d tok\n",
			sys, st.Latency.Avg, st.Latency.P99, st.Completed, st.Submitted,
			st.CostUSD, st.TokensRecovered)
		if sys == experiments.SpotServe {
			spotP99 = st.Latency.P99
		} else if st.Latency.P99 > worst {
			worst = st.Latency.P99
		}
	}
	if spotP99 > 0 {
		fmt.Printf("\nSpotServe improves worst-baseline P99 by %.2fx\n", worst/spotP99)
	}
}
