// Spotmarket: the spot-price market subsystem end to end. A seeded
// regime-switching price process (internal/market) drives everything:
// capacity preempts when the price crosses the bid ladder (the
// price-signal availability model), billing integrates the same curve
// piecewise, and the SLO/cost-aware autoscaling policies trade dollars
// against latency on top — compared against the paper's fixed-target
// policy on one market.
//
// Run with: go run ./examples/spotmarket
package main

import (
	"fmt"
	"strings"

	"spotserve/internal/experiments"
	"spotserve/internal/market"
	"spotserve/internal/scenario"
)

const seed = 7

func main() {
	// The market: a squeeze process on the g4dn base price. The same
	// curve the availability model preempts against is the one billing
	// integrates.
	ps := scenario.DefaultPriceSignal()
	proc, ok := market.ByName(ps.Process)
	if !ok {
		panic(fmt.Sprintf("unknown market process %q (have %v)", ps.Process, market.Processes()))
	}
	curve, ok := proc.Generate(seed, ps.Horizon, []market.TypeSpec{ps.Type}).CurveFor(ps.Type.Name)
	if !ok {
		panic(fmt.Sprintf("market %q generated no curve for type %q", ps.Process, ps.Type.Name))
	}
	tr := ps.Trace(seed)

	prices := make([]float64, len(curve.Samples))
	for i, s := range curve.Samples {
		prices[i] = s.USDPerHour
	}
	counts := make([]float64, len(curve.Samples))
	for i, s := range curve.Samples {
		counts[i] = float64(tr.CountAt(s.At))
	}
	fmt.Printf("market %q at seed %d: base %.2f $/h, peak %.2f $/h, bid ladder %.2f–%.2f $/h\n",
		ps.Process, seed, ps.Type.USDPerHour, curve.MaxPrice(), ps.Bid, ps.Bid*(1+ps.Spread))
	fmt.Printf("price     |%s|\n", sparkline(prices, curve.MaxPrice()))
	fmt.Printf("capacity  |%s|  (%d availability changes, range [%d, %d])\n\n",
		sparkline(counts, float64(ps.Pool)), len(tr.Events), tr.MinCount(), tr.MaxCount())

	// Three policies on the identical market: the paper's fixed target,
	// the SLO holder, and the budget cap.
	rows, err := scenario.GridSweep(scenario.Grid{
		Avail:    []string{"price-signal"},
		Policies: []string{"fixed", "slo-latency", "cost-cap"},
		Fleets:   []string{"homog"},
		Seed:     seed,
	}, experiments.Sweep{Seeds: []int64{seed}})
	if err != nil {
		panic(err)
	}
	fmt.Printf("%-13s %8s %8s %6s %10s %9s %7s\n",
		"Policy", "Avg", "P99", "Done", "Cost USD", "$/1ktok", "SLO%")
	for _, r := range rows {
		fmt.Printf("%-13s %7.1fs %7.1fs %6d %9.2f$ %9.4f %6.1f%%\n",
			r.Policy, r.Summary.Avg, r.Summary.P99, r.Summary.Count,
			r.CostUSD, r.CostPer1kTok.Mean(), r.SLOPct.Mean())
	}
	fmt.Printf("\n(slo-latency buys capacity to hold p99 ≤ %.0f s; cost-cap sheds when the\n"+
		" squeeze pushes spend past its budget — same market, different trade.)\n", scenario.DefaultSLO)
}

func sparkline(vals []float64, maxV float64) string {
	glyphs := []rune(" ▁▂▃▄▅▆▇█")
	var b strings.Builder
	step := len(vals) / 60
	if step < 1 {
		step = 1
	}
	for i := 0; i < len(vals); i += step {
		idx := int(vals[i] / maxV * float64(len(glyphs)-1))
		if idx < 0 {
			idx = 0
		}
		if idx >= len(glyphs) {
			idx = len(glyphs) - 1
		}
		b.WriteRune(glyphs[idx])
	}
	return b.String()
}
