package calibrate

import (
	"fmt"
	"sort"
	"strings"

	"spotserve/internal/experiments"
	"spotserve/internal/market"
	"spotserve/internal/scenario"
	"spotserve/internal/trace"
)

// FitSpec is the market-parameter grid FitMarket scores: the cross product
// of OU mean prices (the level the process reverts to), OU volatilities,
// and bid-ladder positions/widths. Empty axes default to DefaultFitSpec's.
type FitSpec struct {
	// Bases are candidate mean spot prices in $/h (the OU reversion level
	// of the fleet's primary instance type).
	Bases []float64 `json:"bases,omitempty"`
	// Sigmas are candidate OU log-price volatilities per √second.
	Sigmas []float64 `json:"sigmas,omitempty"`
	// Bids are candidate ladder floors in $/h (the lowest bid).
	Bids []float64 `json:"bids,omitempty"`
	// Spreads are candidate ladder widths (top rung bids Bid·(1+Spread)).
	Spreads []float64 `json:"spreads,omitempty"`
}

// DefaultFitSpec brackets the library defaults: base prices around the
// g4dn 1.9 $/h reference, volatility at half/1×/2× DefaultOU's, and bids
// straddling the default 2.1 $/h ladder floor — 27 candidates.
func DefaultFitSpec() FitSpec {
	return FitSpec{
		Bases:   []float64{1.7, 1.9, 2.1},
		Sigmas:  []float64{0.007, 0.013, 0.026},
		Bids:    []float64{1.9, 2.1, 2.3},
		Spreads: []float64{0.6},
	}
}

// withDefaults fills empty axes from DefaultFitSpec.
func (f FitSpec) withDefaults() FitSpec {
	def := DefaultFitSpec()
	if len(f.Bases) == 0 {
		f.Bases = def.Bases
	}
	if len(f.Sigmas) == 0 {
		f.Sigmas = def.Sigmas
	}
	if len(f.Bids) == 0 {
		f.Bids = def.Bids
	}
	if len(f.Spreads) == 0 {
		f.Spreads = def.Spreads
	}
	return f
}

// FitCell is one candidate's outcome: its parameters and the summed capped
// relative error over the observed trace's scorable metrics (lower is
// better).
type FitCell struct {
	Base   float64 `json:"base"`
	Sigma  float64 `json:"sigma"`
	Bid    float64 `json:"bid"`
	Spread float64 `json:"spread"`
	Score  float64 `json:"score"`
	// Metrics counts the observed metrics the score summed over.
	Metrics int `json:"metrics"`
}

// name encodes the candidate's parameters into its registry-style axis
// name. The name carries the full parameter tuple, so two candidates can
// never share a sweep cache key (Scenario.CacheKey folds the axis names in).
func (c FitCell) name() string {
	return fmt.Sprintf("fit-ps(base=%g,sigma=%g,bid=%g,spread=%g)", c.Base, c.Sigma, c.Bid, c.Spread)
}

// FitReport is FitMarket's outcome: every candidate sorted best-first
// (score ascending, grid order breaking ties) and the winner.
type FitReport struct {
	Name  string    `json:"name,omitempty"`
	Spec  FitSpec   `json:"spec"`
	Cells []FitCell `json:"cells"`
	Best  FitCell   `json:"best"`
}

// scoreCap bounds one metric's contribution to a fit score, so a single
// wildly-off metric (a zero observation, a count far from the simulated
// regime) cannot drown the rest of the trace.
const scoreCap = 2.0

// FitMarket scores the FitSpec grid of market-process parameters against an
// observed trace: each candidate replaces the reference scenario's
// availability model with a price-signal ladder driven by an OU process at
// the candidate's (base, sigma), bills spot capacity against the same
// process, replays, and sums capped relative errors over the trace's
// scorable metrics. All candidates share one sweep, so the search
// parallelizes like a grid; the result is deterministic in (trace, seed,
// spec) at any worker count.
func FitMarket(obs ObservedTrace, spec FitSpec, opts Options) (*FitReport, error) {
	if err := obs.Validate(); err != nil {
		return nil, err
	}
	obsVals := obs.metricValues()
	if len(obsVals) == 0 {
		return nil, fmt.Errorf("calibrate: observed trace %q carries no metrics to fit against", obs.Name)
	}
	ref := obs.Scenario.WithDefaults()
	base, slo, err := ref.cell()
	if err != nil {
		return nil, err
	}
	fp, ok := scenario.FleetByName(ref.Fleet)
	if !ok {
		return nil, fmt.Errorf("calibrate: unknown fleet preset %q", ref.Fleet)
	}
	var types []market.TypeSpec
	for _, t := range fp.Params.TypeList() {
		types = append(types, market.TypeSpec{Name: t.Name, USDPerHour: t.SpotUSDPerHour})
	}
	if len(types) == 0 {
		return nil, fmt.Errorf("calibrate: fleet preset %q lists no instance types", ref.Fleet)
	}
	horizon := obs.horizon()

	spec = spec.withDefaults()
	rep := &FitReport{Name: obs.Name, Spec: spec}
	var cells []experiments.Scenario
	for _, b := range spec.Bases {
		for _, sg := range spec.Sigmas {
			for _, bid := range spec.Bids {
				for _, sp := range spec.Spreads {
					cand := FitCell{Base: b, Sigma: sg, Bid: bid, Spread: sp}
					name := cand.name()
					// The candidate's ladder preempts against the OU curve of
					// the fleet's primary type at the candidate base price; the
					// billing market regenerates the same per-type curves, so
					// spikes and preemptions stay two views of one process.
					ctypes := append([]market.TypeSpec(nil), types...)
					ctypes[0].USDPerHour = b
					ps := scenario.DefaultPriceSignal()
					ps.Horizon = horizon
					ps.Type = ctypes[0]
					ps.Bid = bid
					ps.Spread = sp
					ou := market.DefaultOU()
					ou.Sigma = sg
					cell := base
					cell.AvailModel = name
					cell.TraceFn = func(seed int64) trace.Trace {
						curve, ok := ou.Generate(seed, horizon, ctypes[:1]).CurveFor(ctypes[0].Name)
						if !ok {
							panic(fmt.Sprintf("calibrate: OU generated no curve for %q", ctypes[0].Name))
						}
						return ps.TraceFromCurve(fmt.Sprintf("%s/%d", name, seed), curve)
					}
					cell.Market = name
					cell.MarketFn = func(seed int64) market.Market {
						return ou.Generate(seed, horizon, ctypes)
					}
					cells = append(cells, cell)
					rep.Cells = append(rep.Cells, cand)
				}
			}
		}
	}

	sw := experiments.Sweep{
		Parallel: opts.Parallel,
		Seeds:    experiments.SeedRange(ref.Seed, ref.Seeds),
		Cache:    opts.Cache,
	}
	reps := sw.RunCells(cells)
	for i := range rep.Cells {
		pred := predictedMetrics(reps[i], horizon, slo)
		score, n := 0.0, 0
		for _, key := range MetricOrder {
			ov, observed := obsVals[key]
			agg, predicted := pred[key]
			if !observed || !predicted {
				continue
			}
			denom := ov
			if denom < 0 {
				denom = -denom
			}
			if denom < 1e-9 {
				denom = 1
			}
			e := agg.Mean() - ov
			if e < 0 {
				e = -e
			}
			e /= denom
			if e > scoreCap {
				e = scoreCap
			}
			score += e
			n++
		}
		if n == 0 {
			return nil, fmt.Errorf("calibrate: observed trace %q shares no metrics with the fit predictions", obs.Name)
		}
		rep.Cells[i].Score = score
		rep.Cells[i].Metrics = n
	}
	// Sort best-first; grid order breaks exact ties so the report is a pure
	// function of its inputs.
	sort.SliceStable(rep.Cells, func(i, j int) bool { return rep.Cells[i].Score < rep.Cells[j].Score })
	rep.Best = rep.Cells[0]
	return rep, nil
}

// Render formats the fit report as a fixed-width table, best candidate
// first and marked.
func (r *FitReport) Render() string {
	var b strings.Builder
	name := r.Name
	if name == "" {
		name = "(unnamed)"
	}
	fmt.Fprintf(&b, "Market-parameter fit: %s (%d candidates)\n", name, len(r.Cells))
	fmt.Fprintf(&b, "%8s %8s %8s %8s %10s %8s\n", "base$/h", "sigma", "bid$/h", "spread", "score", "metrics")
	for i, c := range r.Cells {
		mark := ""
		if i == 0 {
			mark = "  <- best"
		}
		fmt.Fprintf(&b, "%8.3f %8.4f %8.3f %8.2f %10.4f %8d%s\n",
			c.Base, c.Sigma, c.Bid, c.Spread, c.Score, c.Metrics, mark)
	}
	fmt.Fprintf(&b, "(score: sum over shared metrics of |predicted-observed|/|observed|, capped at %g per metric; lower is better)\n", scoreCap)
	return b.String()
}
