package calibrate

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
)

// ScenarioRef names the scenario an observed trace was captured under — the
// same registry axes a grid job uses, so replaying the matching scenario is
// one Scenario.Cell away. Zero-valued fields default like the CLI: diurnal
// availability, fixed-target policy, homogeneous fleet, SpotServe, GPT-20B,
// seed 1 at one replica.
type ScenarioRef struct {
	Avail  string  `json:"avail,omitempty"`
	Policy string  `json:"policy,omitempty"`
	Fleet  string  `json:"fleet,omitempty"`
	Market string  `json:"market,omitempty"`
	System string  `json:"system,omitempty"`
	Model  string  `json:"model,omitempty"`
	SLO    float64 `json:"slo,omitempty"`
	Seed   int64   `json:"seed,omitempty"`
	Seeds  int     `json:"seeds,omitempty"`
}

// WithDefaults fills the reference's zero values with the default scenario.
func (r ScenarioRef) WithDefaults() ScenarioRef {
	if r.Avail == "" {
		r.Avail = "diurnal"
	}
	if r.Policy == "" {
		r.Policy = "fixed"
	}
	if r.Fleet == "" {
		r.Fleet = "homog"
	}
	if r.System == "" {
		r.System = "spotserve"
	}
	if r.Seed == 0 {
		r.Seed = 1
	}
	if r.Seeds < 1 {
		r.Seeds = 1
	}
	return r
}

// SpendInterval is one step of an observed per-interval spend log: USD
// accrued over [T0, T1]. Calibration scores the summed total (spend_usd).
type SpendInterval struct {
	T0  float64 `json:"t0"`
	T1  float64 `json:"t1"`
	USD float64 `json:"usd"`
}

// ObservedTrace is the native observed-serving-trace schema: the scenario
// the trace was captured under plus whatever metrics the capture recorded —
// latency percentiles, throughput, a preemption log, a per-interval spend
// log, and free-form canonical metrics. Only metrics present are scored;
// explicit Metrics entries win over values derived from the structured
// fields. docs/CALIBRATION.md documents the schema and the canonical metric
// vocabulary.
type ObservedTrace struct {
	Name     string      `json:"name,omitempty"`
	Scenario ScenarioRef `json:"scenario,omitempty"`
	// Horizon is the capture window in seconds (throughput's denominator);
	// 0 means DefaultHorizon.
	Horizon float64 `json:"horizon,omitempty"`
	// Latency maps percentile labels ("avg", "p90", "p95", ... or the full
	// "latency_p99" form) to observed seconds.
	Latency map[string]float64 `json:"latency,omitempty"`
	// ThroughputRPS is completed requests per second over the horizon
	// (0 = not observed).
	ThroughputRPS float64 `json:"throughput_rps,omitempty"`
	// Preemptions is the observed preemption log: one entry per preempted
	// instance, at the preemption time in seconds. Scored as a count.
	Preemptions []float64 `json:"preemptions,omitempty"`
	// Spend is the observed per-interval spend log; scored as its total.
	Spend []SpendInterval `json:"spend,omitempty"`
	// Metrics carries canonical metric values directly (see MetricOrder);
	// an entry here overrides the value derived from the structured fields.
	Metrics map[string]float64 `json:"metrics,omitempty"`
	// Tolerances overrides the per-metric tolerance defaults for this trace
	// (merged under any request-level overrides; see MergeTolerances).
	Tolerances map[string]Tolerance `json:"tolerances,omitempty"`
}

// DefaultHorizon is the capture window assumed when an observed trace does
// not record one — the paper's 20-minute scale, matching the scenario
// library's generation window.
const DefaultHorizon = 1200.0

// ParseObserved decodes an observed trace from JSON. Two formats are
// accepted: the native ObservedTrace schema (unknown fields rejected, so a
// misspelled key fails loudly), and a Prometheus-style instant-query result
// ({"status":"success","data":{"result":[...]}}) whose samples map onto the
// canonical metric vocabulary. Malformed or hostile input returns an error,
// never panics; the fuzz harness pins this.
func ParseObserved(data []byte) (ObservedTrace, error) {
	// Prometheus-style results identify themselves with a status+data
	// envelope the native schema does not have.
	var probe struct {
		Status string          `json:"status"`
		Data   json.RawMessage `json:"data"`
	}
	if err := json.Unmarshal(data, &probe); err == nil && probe.Status != "" && len(probe.Data) > 0 {
		return parsePrometheus(data)
	}
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var o ObservedTrace
	if err := dec.Decode(&o); err != nil {
		return ObservedTrace{}, fmt.Errorf("calibrate: bad observed trace: %w", err)
	}
	if dec.More() {
		return ObservedTrace{}, fmt.Errorf("calibrate: bad observed trace: trailing data after JSON object")
	}
	if err := o.Validate(); err != nil {
		return ObservedTrace{}, err
	}
	return o, nil
}

// Marshal renders the observed trace as indented JSON (the form
// `experiments -exp calibrate -calib-export` writes).
func (o ObservedTrace) Marshal() ([]byte, error) {
	data, err := json.MarshalIndent(o, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(data, '\n'), nil
}

// finite rejects NaN and ±Inf (JSON cannot encode them, but traces are also
// constructed programmatically).
func finite(v float64) bool {
	return !math.IsNaN(v) && !math.IsInf(v, 0)
}

// Validate checks the observed trace's domains: finite non-negative
// measurements, ordered spend intervals, non-negative tolerances and a
// sane scenario reference. It never inspects registries — unknown axis
// names surface when the scenario is resolved, with the registry's own
// error text.
func (o ObservedTrace) Validate() error {
	if !finite(o.Horizon) || o.Horizon < 0 {
		return fmt.Errorf("calibrate: observed trace: horizon must be finite and >= 0, got %v", o.Horizon)
	}
	for k, v := range o.Latency {
		if !finite(v) || v < 0 {
			return fmt.Errorf("calibrate: observed trace: latency[%q] must be finite and >= 0, got %v", k, v)
		}
	}
	if !finite(o.ThroughputRPS) || o.ThroughputRPS < 0 {
		return fmt.Errorf("calibrate: observed trace: throughput_rps must be finite and >= 0, got %v", o.ThroughputRPS)
	}
	for i, t := range o.Preemptions {
		if !finite(t) || t < 0 {
			return fmt.Errorf("calibrate: observed trace: preemptions[%d] must be finite and >= 0, got %v", i, t)
		}
	}
	for i, s := range o.Spend {
		if !finite(s.T0) || !finite(s.T1) || !finite(s.USD) {
			return fmt.Errorf("calibrate: observed trace: spend[%d] must be finite", i)
		}
		if s.T1 < s.T0 {
			return fmt.Errorf("calibrate: observed trace: spend[%d]: t1 %v before t0 %v", i, s.T1, s.T0)
		}
		if s.USD < 0 {
			return fmt.Errorf("calibrate: observed trace: spend[%d]: negative usd %v", i, s.USD)
		}
	}
	for k, v := range o.Metrics {
		if !finite(v) {
			return fmt.Errorf("calibrate: observed trace: metrics[%q] must be finite, got %v", k, v)
		}
	}
	for k, t := range o.Tolerances {
		if !finite(t.Abs) || !finite(t.Rel) || t.Abs < 0 || t.Rel < 0 {
			return fmt.Errorf("calibrate: observed trace: tolerances[%q] must be finite and >= 0, got %+v", k, t)
		}
	}
	if o.Scenario.Seeds < 0 {
		return fmt.Errorf("calibrate: observed trace: scenario.seeds must be >= 0, got %d", o.Scenario.Seeds)
	}
	if !finite(o.Scenario.SLO) || o.Scenario.SLO < 0 {
		return fmt.Errorf("calibrate: observed trace: scenario.slo must be finite and >= 0, got %v", o.Scenario.SLO)
	}
	return nil
}

// horizon resolves the capture window.
func (o ObservedTrace) horizon() float64 {
	if o.Horizon > 0 {
		return o.Horizon
	}
	return DefaultHorizon
}

// metricValues flattens the observed trace into the canonical metric map:
// latency percentiles prefixed latency_, throughput, the preemption count,
// the summed spend, then explicit Metrics entries (which win on collision).
func (o ObservedTrace) metricValues() map[string]float64 {
	m := make(map[string]float64)
	for k, v := range o.Latency {
		key := strings.ToLower(strings.TrimSpace(k))
		if !strings.HasPrefix(key, "latency_") {
			key = "latency_" + key
		}
		m[key] = v
	}
	if o.ThroughputRPS > 0 {
		m[MetricThroughputRPS] = o.ThroughputRPS
	}
	if len(o.Preemptions) > 0 {
		m[MetricPreemptions] = float64(len(o.Preemptions))
	}
	if len(o.Spend) > 0 {
		total := 0.0
		for _, s := range o.Spend {
			total += s.USD
		}
		m[MetricSpendUSD] = total
	}
	for k, v := range o.Metrics {
		m[strings.ToLower(strings.TrimSpace(k))] = v
	}
	return m
}

// --- Prometheus-style import ---

// parsePrometheus maps a Prometheus HTTP-API instant-query result onto the
// canonical metric vocabulary: each sample's __name__ (with any spotserve_
// exporter prefix stripped, and a quantile label folded into latency_pNN)
// becomes one observed metric. The scenario reference cannot ride along in
// this format, so it stays zero-valued (defaults) — embed the samples in a
// native trace's "metrics" field when the scenario matters.
func parsePrometheus(data []byte) (ObservedTrace, error) {
	var pr struct {
		Status string `json:"status"`
		Data   struct {
			ResultType string `json:"resultType"`
			Result     []struct {
				Metric map[string]string `json:"metric"`
				Value  []json.RawMessage `json:"value"`
			} `json:"result"`
		} `json:"data"`
	}
	if err := json.Unmarshal(data, &pr); err != nil {
		return ObservedTrace{}, fmt.Errorf("calibrate: bad prometheus result: %w", err)
	}
	if pr.Status != "success" {
		return ObservedTrace{}, fmt.Errorf("calibrate: prometheus result status %q, want success", pr.Status)
	}
	o := ObservedTrace{Metrics: make(map[string]float64)}
	for i, r := range pr.Data.Result {
		key, err := promKey(r.Metric)
		if err != nil {
			return ObservedTrace{}, fmt.Errorf("calibrate: prometheus result[%d]: %w", i, err)
		}
		if len(r.Value) != 2 {
			return ObservedTrace{}, fmt.Errorf("calibrate: prometheus result[%d]: value must be [ts, \"v\"], got %d elements", i, len(r.Value))
		}
		var raw string
		if err := json.Unmarshal(r.Value[1], &raw); err != nil {
			return ObservedTrace{}, fmt.Errorf("calibrate: prometheus result[%d]: %w", i, err)
		}
		v, err := strconv.ParseFloat(raw, 64)
		if err != nil || !finite(v) {
			return ObservedTrace{}, fmt.Errorf("calibrate: prometheus result[%d]: bad sample value %q", i, raw)
		}
		if _, dup := o.Metrics[key]; dup {
			return ObservedTrace{}, fmt.Errorf("calibrate: prometheus result[%d]: duplicate metric %q", i, key)
		}
		o.Metrics[key] = v
	}
	if err := o.Validate(); err != nil {
		return ObservedTrace{}, err
	}
	return o, nil
}

// promAliases maps exporter metric names onto the canonical vocabulary.
var promAliases = map[string]string{
	"latency_avg_seconds":     MetricLatencyAvg,
	"requests_per_second":     MetricThroughputRPS,
	"requests_completed_total": MetricCompleted,
	"spend_usd_total":         MetricSpendUSD,
	"cost_per_1k_tokens_usd":  MetricCostPer1kTok,
	"preemptions_total":       MetricPreemptions,
	"on_demand_total":         MetricOnDemand,
	"slo_met_percent":         MetricSLOPct,
}

// promKey maps one Prometheus sample's labels to a canonical metric key.
func promKey(labels map[string]string) (string, error) {
	name := strings.TrimPrefix(labels["__name__"], "spotserve_")
	if name == "" {
		return "", fmt.Errorf("sample has no __name__ label")
	}
	if q, ok := labels["quantile"]; ok && name == "latency_seconds" {
		qf, err := strconv.ParseFloat(q, 64)
		if err != nil || !finite(qf) || qf <= 0 || qf >= 1 {
			return "", fmt.Errorf("bad latency quantile %q", q)
		}
		p := math.Round(qf * 100)
		if math.Abs(qf*100-p) > 1e-9 {
			return "", fmt.Errorf("unsupported latency quantile %q (want a whole percentile)", q)
		}
		return fmt.Sprintf("latency_p%d", int(p)), nil
	}
	if canon, ok := promAliases[name]; ok {
		return canon, nil
	}
	return strings.ToLower(name), nil
}

// sortedExtraKeys returns the observed metric keys outside the canonical
// order, sorted — the deterministic tail of a report.
func sortedExtraKeys(obs map[string]float64) []string {
	canon := make(map[string]bool, len(MetricOrder))
	for _, k := range MetricOrder {
		canon[k] = true
	}
	var extra []string
	for k := range obs {
		if !canon[k] {
			extra = append(extra, k)
		}
	}
	sort.Strings(extra)
	return extra
}
