package calibrate

import (
	"flag"
	"os"
	"path/filepath"
	"testing"
)

// update rewrites golden files with the current render output:
//
//	go test ./internal/calibrate/ -run Golden -update
//
// Goldens pin rendering byte-for-byte; regenerate them only when a render
// change is deliberate, and say why in the commit message.
var update = flag.Bool("update", false, "rewrite golden files with current output")

// checkGolden compares got against the named golden file, rewriting it
// under -update.
func checkGolden(t *testing.T, name, got string) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *update {
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("golden file unreadable (run with -update to create): %v", err)
	}
	if got != string(want) {
		t.Fatalf("render diverged from golden %s (rerun with -update if deliberate):\ngot:\n%s\nwant:\n%s", path, got, want)
	}
}

// TestGoldenCalibrationReportRender pins the calibration table byte-for-byte
// on a hand-built report covering every rendering branch: pass/warn/fail
// rows, a skipped row, prediction bands, and the footer.
func TestGoldenCalibrationReportRender(t *testing.T) {
	rep := &Report{
		Name: "golden-trace",
		Scenario: ScenarioRef{
			Avail: "bursty", Policy: "slo-latency", Fleet: "homog",
			Market: "ou", System: "spotserve", Seed: 7,
		},
		Horizon: 1200, SLO: 120, Seeds: 3,
		Rows: []Row{
			{Metric: MetricLatencyAvg, Observed: 47.25, Predicted: 46.9, AbsErr: 0.35, RelErr: 0.35 / 47.25,
				Allowed: 2.8625, Tol: Tolerance{Abs: 0.5, Rel: 0.05}, Verdict: VerdictPass,
				PredBand: "46.9 ±1.2 [45.1,48.8] n=3"},
			{Metric: MetricLatencyP99, Observed: 90, Predicted: 108, AbsErr: 18, RelErr: 0.2,
				Allowed: 15, Tol: Tolerance{Abs: 1.5, Rel: 0.15}, Verdict: VerdictWarn,
				PredBand: "108.0 ±4.0 [101.2,114.1] n=3"},
			{Metric: MetricSpendUSD, Observed: 10, Predicted: 19.5, AbsErr: 9.5, RelErr: 0.95,
				Allowed: 1.25, Tol: Tolerance{Abs: 0.25, Rel: 0.1}, Verdict: VerdictFail,
				PredBand: "19.5 ±0.2 [19.2,19.8] n=3"},
			{Metric: "gpu_temperature_c", Observed: 71, Verdict: VerdictSkipped},
		},
		Pass: 1, Warn: 1, Fail: 1, Skipped: 1,
		Verdict: VerdictFail,
	}
	checkGolden(t, "report_render.golden", rep.Render())

	data, err := rep.JSON()
	if err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "report_json.golden", string(data))
}

// TestGoldenCalibrationReportNoBands pins the band-free layout: when no row
// carries a prediction band (single-seed replay), the band column must be
// absent entirely, not rendered empty.
func TestGoldenCalibrationReportNoBands(t *testing.T) {
	rep := &Report{
		Name: "golden-single-seed",
		Scenario: ScenarioRef{
			Avail: "diurnal", Policy: "fixed", Fleet: "homog", System: "spotserve", Seed: 1,
		},
		Horizon: 1200, SLO: 120, Seeds: 1,
		Rows: []Row{
			{Metric: MetricThroughputRPS, Observed: 0.44, Predicted: 0.44, AbsErr: 0, RelErr: 0,
				Allowed: 0.094, Tol: Tolerance{Abs: 0.05, Rel: 0.1}, Verdict: VerdictPass},
		},
		Pass: 1, Verdict: VerdictPass,
	}
	checkGolden(t, "report_render_nobands.golden", rep.Render())
}
