package calibrate

import (
	"encoding/json"
	"strings"
	"sync"
	"testing"

	"spotserve/internal/experiments"
)

// ref2 is the small two-seed scenario the round-trip and equivalence tests
// replay: bursty availability keeps preemptions non-trivial.
func ref2() ScenarioRef {
	return ScenarioRef{Avail: "bursty", Policy: "fixed", Fleet: "homog", Seed: 1, Seeds: 2}
}

// TestRoundTripSelfCalibration is the tentpole acceptance test: a simulated
// run exported as an observed trace must calibrate against its own scenario
// with zero tolerance violations — predicted and observed flow through one
// metric definition, so every row's error is exactly zero.
func TestRoundTripSelfCalibration(t *testing.T) {
	obs, err := ExportScenario("round-trip", ref2(), 0)
	if err != nil {
		t.Fatalf("ExportScenario: %v", err)
	}
	rep, err := Run(obs, Options{})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if rep.Verdict != VerdictPass {
		t.Fatalf("round-trip verdict = %s, want pass\n%s", rep.Verdict, rep.Render())
	}
	if rep.Fail != 0 || rep.Warn != 0 {
		t.Fatalf("round-trip violations: %d fail, %d warn\n%s", rep.Fail, rep.Warn, rep.Render())
	}
	for _, row := range rep.Rows {
		if row.Verdict == VerdictSkipped {
			continue
		}
		if row.AbsErr != 0 {
			t.Errorf("metric %s: abs err %v, want exactly 0", row.Metric, row.AbsErr)
		}
	}
	if got := len(rep.Rows); got != len(MetricOrder) {
		t.Errorf("report rows = %d, want every canonical metric (%d)", got, len(MetricOrder))
	}
}

// TestReportDeterministicUnderParallel pins the determinism contract: the
// same observed trace produces byte-identical Render and JSON output across
// repeated runs and at any worker count.
func TestReportDeterministicUnderParallel(t *testing.T) {
	obs, err := ExportScenario("det", ref2(), 0)
	if err != nil {
		t.Fatalf("ExportScenario: %v", err)
	}
	var renders, jsons []string
	for _, parallel := range []int{1, 0, 4} {
		rep, err := Run(obs, Options{Parallel: parallel})
		if err != nil {
			t.Fatalf("Run(parallel=%d): %v", parallel, err)
		}
		data, err := rep.JSON()
		if err != nil {
			t.Fatalf("JSON(parallel=%d): %v", parallel, err)
		}
		renders = append(renders, rep.Render())
		jsons = append(jsons, string(data))
	}
	for i := 1; i < len(renders); i++ {
		if renders[i] != renders[0] {
			t.Errorf("render differs between parallel settings:\n%s\nvs\n%s", renders[0], renders[i])
		}
		if jsons[i] != jsons[0] {
			t.Errorf("JSON differs between parallel settings")
		}
	}
}

// TestVerdictBands walks one metric across the pass/warn/fail boundary by
// shifting the observed value away from the prediction.
func TestVerdictBands(t *testing.T) {
	obs, err := ExportScenario("bands", ScenarioRef{Avail: "diurnal", Seeds: 1}, 0)
	if err != nil {
		t.Fatalf("ExportScenario: %v", err)
	}
	const key = MetricCompleted
	base := obs.Metrics[key]
	tol := DefaultTolerances()[key]
	allowed := tol.Abs + tol.Rel*base // observed shifts are small vs base, so ≈ the scored band
	cases := []struct {
		name  string
		shift float64
		want  Verdict
	}{
		{"well-inside", allowed * 0.5, VerdictPass},
		{"warn-zone", allowed * 1.5, VerdictWarn},
		{"beyond-warn", allowed * 3.0, VerdictFail},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			shifted := obs
			shifted.Metrics = make(map[string]float64, len(obs.Metrics))
			for k, v := range obs.Metrics {
				shifted.Metrics[k] = v
			}
			shifted.Metrics[key] = base + tc.shift
			rep, err := Run(shifted, Options{})
			if err != nil {
				t.Fatalf("Run: %v", err)
			}
			var row *Row
			for i := range rep.Rows {
				if rep.Rows[i].Metric == key {
					row = &rep.Rows[i]
				}
			}
			if row == nil {
				t.Fatalf("no %s row in report", key)
			}
			if row.Verdict != tc.want {
				t.Errorf("%s shifted by %v: verdict %s, want %s (abs err %v, allowed %v)",
					key, tc.shift, row.Verdict, tc.want, row.AbsErr, row.Allowed)
			}
		})
	}
}

// TestToleranceMergeOrder checks the override chain: defaults ← trace
// overrides ← request overrides, later layers winning per key.
func TestToleranceMergeOrder(t *testing.T) {
	got := MergeTolerances(
		map[string]Tolerance{"a": {Abs: 1}, "b": {Abs: 1}, "c": {Abs: 1}},
		map[string]Tolerance{"b": {Abs: 2}, "c": {Abs: 2}},
		map[string]Tolerance{"c": {Abs: 3}},
	)
	if got["a"].Abs != 1 || got["b"].Abs != 2 || got["c"].Abs != 3 {
		t.Errorf("merge order wrong: %+v", got)
	}
	// A trace-level override must move a report's allowed band.
	obs, err := ExportScenario("tol", ScenarioRef{Avail: "diurnal", Seeds: 1}, 0)
	if err != nil {
		t.Fatalf("ExportScenario: %v", err)
	}
	obs.Tolerances = map[string]Tolerance{MetricCompleted: {Abs: 99, Rel: 0}}
	rep, err := Run(obs, Options{})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	for _, row := range rep.Rows {
		if row.Metric == MetricCompleted && row.Allowed != 99 {
			t.Errorf("trace tolerance override ignored: allowed = %v, want 99", row.Allowed)
		}
	}
	// And a request-level override must win over the trace's.
	rep, err = Run(obs, Options{Tolerances: map[string]Tolerance{MetricCompleted: {Abs: 7}}})
	if err != nil {
		t.Fatalf("Run with request override: %v", err)
	}
	for _, row := range rep.Rows {
		if row.Metric == MetricCompleted && row.Allowed != 7 {
			t.Errorf("request tolerance override ignored: allowed = %v, want 7", row.Allowed)
		}
	}
}

// TestSkippedAndUnscorable: an unknown observed key is reported "skipped"
// and never moves the verdict; a trace with only unknown keys errors.
func TestSkippedAndUnscorable(t *testing.T) {
	obs, err := ExportScenario("skip", ScenarioRef{Avail: "diurnal", Seeds: 1}, 0)
	if err != nil {
		t.Fatalf("ExportScenario: %v", err)
	}
	obs.Metrics["gpu_temperature_c"] = 71.5
	rep, err := Run(obs, Options{})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if rep.Skipped != 1 {
		t.Errorf("skipped = %d, want 1", rep.Skipped)
	}
	if rep.Verdict != VerdictPass {
		t.Errorf("verdict %s, want pass (skipped rows must not move it)", rep.Verdict)
	}
	last := rep.Rows[len(rep.Rows)-1]
	if last.Metric != "gpu_temperature_c" || last.Verdict != VerdictSkipped {
		t.Errorf("extra key not reported last as skipped: %+v", last)
	}

	only := ObservedTrace{Metrics: map[string]float64{"nonsense": 1}}
	if _, err := Run(only, Options{}); err == nil {
		t.Error("trace with only unscorable metrics: want error, got nil")
	}
	if _, err := Run(ObservedTrace{}, Options{}); err == nil {
		t.Error("empty trace: want error, got nil")
	}
}

// TestParseObservedNative exercises the native schema: valid input round-
// trips, unknown fields / trailing data / bad domains error.
func TestParseObservedNative(t *testing.T) {
	good := `{
		"name": "capture-1",
		"scenario": {"avail": "bursty", "seeds": 2},
		"horizon": 600,
		"latency": {"avg": 12.5, "p99": 40.25},
		"throughput_rps": 0.5,
		"preemptions": [10, 250, 251],
		"spend": [{"t0": 0, "t1": 600, "usd": 9.5}],
		"tolerances": {"latency_avg": {"abs": 1, "rel": 0.2}}
	}`
	obs, err := ParseObserved([]byte(good))
	if err != nil {
		t.Fatalf("ParseObserved(good): %v", err)
	}
	vals := obs.metricValues()
	checks := map[string]float64{
		"latency_avg": 12.5, "latency_p99": 40.25,
		MetricThroughputRPS: 0.5, MetricPreemptions: 3, MetricSpendUSD: 9.5,
	}
	for k, want := range checks {
		if got := vals[k]; got != want {
			t.Errorf("metricValues[%s] = %v, want %v", k, got, want)
		}
	}
	// An explicit metric wins over the derived value.
	withOverride := obs
	withOverride.Metrics = map[string]float64{MetricPreemptions: 7}
	if got := withOverride.metricValues()[MetricPreemptions]; got != 7 {
		t.Errorf("explicit metrics entry did not win: %v", got)
	}

	bad := []struct{ name, in string }{
		{"unknown-field", `{"name": "x", "latenzy": {}}`},
		{"trailing", `{"name": "x"} {"more": 1}`},
		{"nan-in-json", `{"horizon": NaN}`},
		{"negative-latency", `{"latency": {"avg": -1}}`},
		{"spend-reversed", `{"spend": [{"t0": 10, "t1": 5, "usd": 1}]}`},
		{"negative-tolerance", `{"tolerances": {"x": {"abs": -1, "rel": 0}}}`},
		{"negative-seeds", `{"scenario": {"seeds": -1}}`},
		{"not-json", `hello`},
		{"array", `[1,2,3]`},
	}
	for _, tc := range bad {
		if _, err := ParseObserved([]byte(tc.in)); err == nil {
			t.Errorf("ParseObserved(%s): want error, got nil", tc.name)
		}
	}
}

// TestParseObservedPrometheus exercises the Prometheus instant-query
// import: name mapping, quantile folding, exporter-prefix stripping,
// duplicate rejection.
func TestParseObservedPrometheus(t *testing.T) {
	in := `{
		"status": "success",
		"data": {
			"resultType": "vector",
			"result": [
				{"metric": {"__name__": "spotserve_latency_seconds", "quantile": "0.99"}, "value": [1700000000, "40.25"]},
				{"metric": {"__name__": "spotserve_latency_avg_seconds"}, "value": [1700000000, "12.5"]},
				{"metric": {"__name__": "spotserve_requests_per_second"}, "value": [1700000000, "0.5"]},
				{"metric": {"__name__": "spotserve_spend_usd_total"}, "value": [1700000000, "9.5"]},
				{"metric": {"__name__": "preemptions_total"}, "value": [1700000000, "3"]}
			]
		}
	}`
	obs, err := ParseObserved([]byte(in))
	if err != nil {
		t.Fatalf("ParseObserved(prometheus): %v", err)
	}
	want := map[string]float64{
		"latency_p99": 40.25, MetricLatencyAvg: 12.5,
		MetricThroughputRPS: 0.5, MetricSpendUSD: 9.5, MetricPreemptions: 3,
	}
	for k, v := range want {
		if got := obs.Metrics[k]; got != v {
			t.Errorf("Metrics[%s] = %v, want %v", k, got, v)
		}
	}

	bad := []struct{ name, in string }{
		{"bad-status", `{"status": "error", "data": {"result": []}}`},
		{"bad-value", `{"status": "success", "data": {"result": [{"metric": {"__name__": "x"}, "value": [1, "oops"]}]}}`},
		{"short-value", `{"status": "success", "data": {"result": [{"metric": {"__name__": "x"}, "value": [1]}]}}`},
		{"no-name", `{"status": "success", "data": {"result": [{"metric": {"job": "x"}, "value": [1, "2"]}]}}`},
		{"bad-quantile", `{"status": "success", "data": {"result": [{"metric": {"__name__": "latency_seconds", "quantile": "1.5"}, "value": [1, "2"]}]}}`},
		{"fractional-quantile", `{"status": "success", "data": {"result": [{"metric": {"__name__": "latency_seconds", "quantile": "0.995"}, "value": [1, "2"]}]}}`},
		{"duplicate", `{"status": "success", "data": {"result": [
			{"metric": {"__name__": "x"}, "value": [1, "2"]},
			{"metric": {"__name__": "x"}, "value": [1, "3"]}]}}`},
		{"inf-value", `{"status": "success", "data": {"result": [{"metric": {"__name__": "x"}, "value": [1, "+Inf"]}]}}`},
	}
	for _, tc := range bad {
		if _, err := ParseObserved([]byte(tc.in)); err == nil {
			t.Errorf("ParseObserved(%s): want error, got nil", tc.name)
		}
	}
}

// TestObservedMarshalRoundTrip: Marshal output reparses to the same trace.
func TestObservedMarshalRoundTrip(t *testing.T) {
	obs, err := ExportScenario("marshal", ScenarioRef{Avail: "diurnal", Seeds: 1}, 0)
	if err != nil {
		t.Fatalf("ExportScenario: %v", err)
	}
	data, err := obs.Marshal()
	if err != nil {
		t.Fatalf("Marshal: %v", err)
	}
	back, err := ParseObserved(data)
	if err != nil {
		t.Fatalf("ParseObserved(Marshal output): %v", err)
	}
	a, _ := json.Marshal(obs)
	b, _ := json.Marshal(back)
	if string(a) != string(b) {
		t.Errorf("marshal round trip drifted:\n%s\nvs\n%s", a, b)
	}
}

// TestRunUnknownAxes: a bad scenario reference surfaces the registry's
// error at Run time (and through ResolveScenario).
func TestRunUnknownAxes(t *testing.T) {
	obs := ObservedTrace{
		Scenario: ScenarioRef{Avail: "no-such-model"},
		Metrics:  map[string]float64{MetricCompleted: 10},
	}
	if _, err := Run(obs, Options{}); err == nil || !strings.Contains(err.Error(), "no-such-model") {
		t.Errorf("Run with unknown avail: err = %v, want registry error", err)
	}
	if err := obs.ResolveScenario(); err == nil {
		t.Error("ResolveScenario with unknown avail: want error")
	}
}

// TestRunUsesCache: a second calibration of the same trace is served from
// the sweep cache and still produces an identical report.
func TestRunUsesCache(t *testing.T) {
	obs, err := ExportScenario("cache", ScenarioRef{Avail: "diurnal", Seeds: 1}, 0)
	if err != nil {
		t.Fatalf("ExportScenario: %v", err)
	}
	cache := &mapCache{m: make(map[string]experiments.Result)}
	rep1, err := Run(obs, Options{Cache: cache})
	if err != nil {
		t.Fatalf("Run 1: %v", err)
	}
	puts := cache.puts
	if puts == 0 {
		t.Fatal("first run stored nothing in the cache")
	}
	rep2, err := Run(obs, Options{Cache: cache})
	if err != nil {
		t.Fatalf("Run 2: %v", err)
	}
	if cache.puts != puts {
		t.Errorf("second run stored %d new entries, want 0 (fully cached)", cache.puts-puts)
	}
	if rep1.Render() != rep2.Render() {
		t.Error("cached report differs from simulated report")
	}
}

type mapCache struct {
	mu   sync.Mutex
	m    map[string]experiments.Result
	puts int
}

func (c *mapCache) Get(key string) (experiments.Result, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	r, ok := c.m[key]
	return r, ok
}

func (c *mapCache) Put(key string, r experiments.Result) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.puts++
	c.m[key] = r
}

// TestFitMarketSingleCandidate runs the fitter on a one-candidate spec: the
// report must score that candidate against every observed metric, stay
// deterministic across worker counts, and render it as the best cell.
func TestFitMarketSingleCandidate(t *testing.T) {
	obs, err := ExportScenario("fit-smoke", ref2(), 0)
	if err != nil {
		t.Fatal(err)
	}
	spec := FitSpec{Bases: []float64{1.9}, Sigmas: []float64{0.013}, Bids: []float64{2.1}, Spreads: []float64{0.6}}
	rep, err := FitMarket(obs, spec, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Cells) != 1 {
		t.Fatalf("%d cells, want 1", len(rep.Cells))
	}
	best := rep.Best
	if best.Base != 1.9 || best.Sigma != 0.013 || best.Bid != 2.1 || best.Spread != 0.6 {
		t.Fatalf("best = %+v", best)
	}
	if best.Metrics != len(MetricOrder) {
		t.Fatalf("scored %d metrics, want %d", best.Metrics, len(MetricOrder))
	}
	if best.Score < 0 || best.Score > scoreCap*float64(len(MetricOrder)) {
		t.Fatalf("score %v out of range", best.Score)
	}
	render := rep.Render()
	if !strings.Contains(render, "<- best") || !strings.Contains(render, "1 candidates") {
		t.Fatalf("render missing best marker or count:\n%s", render)
	}
	// Worker count must not move the fit.
	rep4, err := FitMarket(obs, spec, Options{Parallel: 4})
	if err != nil {
		t.Fatal(err)
	}
	if rep4.Render() != render {
		t.Fatal("fit render differs across worker counts")
	}
	if rep4.Best.Score != best.Score {
		t.Fatalf("fit score differs across worker counts: %v vs %v", rep4.Best.Score, best.Score)
	}
}

// TestFitSpecDefaults pins the default grid: empty axes fill from
// DefaultFitSpec, partial specs keep what they set.
func TestFitSpecDefaults(t *testing.T) {
	def := FitSpec{}.withDefaults()
	want := DefaultFitSpec()
	if len(def.Bases) != len(want.Bases) || len(def.Sigmas) != len(want.Sigmas) ||
		len(def.Bids) != len(want.Bids) || len(def.Spreads) != len(want.Spreads) {
		t.Fatalf("defaults = %+v, want %+v", def, want)
	}
	partial := FitSpec{Bases: []float64{9.9}}.withDefaults()
	if len(partial.Bases) != 1 || partial.Bases[0] != 9.9 {
		t.Fatalf("partial spec lost its bases: %+v", partial)
	}
	if len(partial.Sigmas) != len(want.Sigmas) {
		t.Fatalf("partial spec missing default sigmas: %+v", partial)
	}
}

// TestFitMarketErrors covers the fitter's validation paths: a metric-free
// trace and an unknown fleet must error, not replay.
func TestFitMarketErrors(t *testing.T) {
	empty := ObservedTrace{Name: "empty", Scenario: ref2()}
	if _, err := FitMarket(empty, FitSpec{}, Options{}); err == nil {
		t.Fatal("metric-free trace did not error")
	}
	obs, err := ExportScenario("bad-fleet", ref2(), 0)
	if err != nil {
		t.Fatal(err)
	}
	obs.Scenario.Fleet = "no-such-fleet"
	if _, err := FitMarket(obs, FitSpec{}, Options{}); err == nil {
		t.Fatal("unknown fleet did not error")
	}
}
