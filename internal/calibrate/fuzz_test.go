package calibrate

import (
	"testing"
)

// FuzzParseObservedTrace hammers both wire formats ParseObserved accepts —
// the native observed-trace schema and the Prometheus query-result envelope.
// Arbitrary input must either yield a trace that passes Validate and
// survives a marshal→parse round trip, or return an error — never panic and
// never hand back a trace the calibrator would choke on.
func FuzzParseObservedTrace(f *testing.F) {
	f.Add([]byte(`{}`))
	f.Add([]byte(`{"name":"t","scenario":{"avail":"diurnal","policy":"fixed","fleet":"homog","seed":1,"seeds":2},"horizon":1200,"latency":{"avg":47.6,"p99":94.4},"throughput_rps":0.44,"preemptions":[120,340.5],"spend":[{"t0":0,"t1":1200,"usd":19.8}],"metrics":{"completed":528},"tolerances":{"completed":{"abs":5,"rel":0.05}}}`))
	f.Add([]byte(`{"status":"success","data":{"resultType":"vector","result":[{"metric":{"__name__":"spotserve_latency_avg_seconds"},"value":[0,"47.6"]}]}}`))
	f.Add([]byte(`{"status":"success","data":{"resultType":"vector","result":[{"metric":{"__name__":"latency_seconds","quantile":"0.99"},"value":[0,"94.4"]}]}}`))
	f.Add([]byte(`{"status":"error","data":{"result":[]}}`))
	f.Add([]byte(`{"name":"t","latency":{"avg":1e309}}`))
	f.Add([]byte(`{"name":"t","spend":[{"t0":10,"t1":5,"usd":1}]}`))
	f.Add([]byte(`{"name":"t","throughput_rps":-1}`))
	f.Add([]byte(`{"name":"t","unknown_field":1}`))
	f.Add([]byte(`{"name":"t"} trailing`))
	f.Add([]byte(`[1,2,3]`))
	f.Add([]byte(`not json`))

	f.Fuzz(func(t *testing.T, data []byte) {
		obs, err := ParseObserved(data)
		if err != nil {
			return
		}
		if verr := obs.Validate(); verr != nil {
			t.Fatalf("ParseObserved returned an invalid trace: %v\ninput: %q", verr, data)
		}
		// The derived metric view must be computable on anything accepted.
		for key, v := range obs.metricValues() {
			if !finite(v) {
				t.Fatalf("accepted trace yields non-finite metric %s=%v\ninput: %q", key, v, data)
			}
		}
		// The accepted trace must round-trip through the native schema.
		out, err := obs.Marshal()
		if err != nil {
			t.Fatalf("re-marshal of accepted trace failed: %v", err)
		}
		obs2, err := ParseObserved(out)
		if err != nil {
			t.Fatalf("round trip rejected: %v\njson: %s", err, out)
		}
		if obs.Name != obs2.Name || obs.Horizon != obs2.Horizon ||
			len(obs.metricValues()) != len(obs2.metricValues()) {
			t.Fatalf("round trip changed the trace:\n%+v\nvs\n%+v", obs, obs2)
		}
	})
}
