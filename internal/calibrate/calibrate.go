// Package calibrate is the simulator's realism gate: it replays the
// scenario an observed serving trace was captured under through the
// existing sweep harness and scores prediction against observation, metric
// by metric, under merged per-metric tolerances. The product is a
// deterministic validation report — same observed trace + seed ⇒
// byte-identical report at any worker count — in both rendered-table and
// machine-readable JSON form, plus a fitting helper that searches a small
// grid of market-process parameters for the cell matching the trace best.
//
// docs/CALIBRATION.md documents the observed-trace schema, the tolerance
// semantics and the fitting workflow; the round-trip self-test (a simulated
// run exported as an observed trace calibrates against itself with zero
// violations) pins the predicted and observed metric pipelines to one
// shared definition.
package calibrate

import (
	"encoding/json"
	"fmt"
	"strings"

	"spotserve/internal/experiments"
	"spotserve/internal/metrics"
	"spotserve/internal/model"
	"spotserve/internal/scenario"
)

// Options configures one calibration run.
type Options struct {
	// Parallel is the sweep worker pool (<= 0 = all cores). Results are
	// byte-identical at any setting.
	Parallel int
	// Cache, when non-nil, serves replicas the sweep has already simulated
	// (the daemon threads its cell cache through here).
	Cache experiments.ResultCache
	// Tolerances overrides per-metric tolerances, winning over both the
	// defaults and the trace's own overrides.
	Tolerances map[string]Tolerance
	// OnRow, when non-nil, receives the replayed cell's grid row as soon as
	// the replay finishes — the daemon streams it exactly like a grid job's
	// rows.
	OnRow func(row scenario.GridRow)
}

// Row is one metric's comparison in a calibration report.
type Row struct {
	Metric   string  `json:"metric"`
	Observed float64 `json:"observed"`
	// Predicted is the cross-seed mean prediction (meaningless when
	// Verdict is "skipped" — the simulator predicts nothing for the key).
	Predicted float64 `json:"predicted"`
	AbsErr    float64 `json:"abs_err"`
	// RelErr is AbsErr/|Observed|, or 0 for a zero observation (kept
	// finite so the JSON form always marshals).
	RelErr  float64   `json:"rel_err"`
	Allowed float64   `json:"allowed"`
	Tol     Tolerance `json:"tolerance"`
	// PredBand renders the cross-seed prediction band when the replay
	// replicated ("mean ±stderr [min,max] n=N").
	PredBand string  `json:"pred_band,omitempty"`
	Verdict  Verdict `json:"verdict"`
}

// Report is a calibration run's outcome: per-metric comparison rows in
// canonical order, verdict counts, the overall verdict (fail > warn > pass)
// and the replayed replicas' fingerprints — the determinism handle the
// daemon-vs-CLI equivalence test compares.
type Report struct {
	Name         string      `json:"name,omitempty"`
	Scenario     ScenarioRef `json:"scenario"`
	Horizon      float64     `json:"horizon"`
	SLO          float64     `json:"slo"`
	Seeds        int         `json:"seeds"`
	Rows         []Row       `json:"rows"`
	Pass         int         `json:"pass"`
	Warn         int         `json:"warn"`
	Fail         int         `json:"fail"`
	Skipped      int         `json:"skipped"`
	Verdict      Verdict     `json:"verdict"`
	Fingerprints []string    `json:"fingerprints"`
}

// cell resolves the reference into one sweep-ready scenario cell, reusing
// the registry resolution (and error text) of the scenario library.
func (r ScenarioRef) cell() (experiments.Scenario, float64, error) {
	r = r.WithDefaults()
	sys, err := scenario.SystemByName(r.System)
	if err != nil {
		return experiments.Scenario{}, 0, fmt.Errorf("calibrate: %w", err)
	}
	spec := model.GPT20B
	if r.Model != "" {
		s, ok := model.ByName(r.Model)
		if !ok {
			return experiments.Scenario{}, 0, fmt.Errorf("calibrate: unknown model %q", r.Model)
		}
		spec = s
	}
	sc, err := scenario.Scenario{
		Avail: r.Avail, Policy: r.Policy, Fleet: r.Fleet, Market: r.Market,
		System: sys, Model: spec, Seed: r.Seed,
	}.Cell()
	if err != nil {
		return experiments.Scenario{}, 0, fmt.Errorf("calibrate: %w", err)
	}
	slo := r.SLO
	if slo <= 0 {
		slo = scenario.DefaultSLO
	}
	return sc, slo, nil
}

// ResolveScenario validates the observed trace's scenario reference against
// the registries — the submission-time check the daemon runs so a bad axis
// name fails the POST, not the job.
func (o ObservedTrace) ResolveScenario() error {
	_, _, err := o.Scenario.cell()
	return err
}

// predictedMetrics folds one cell's seed replicas into the canonical metric
// aggregates. It is the single definition of "predicted" — Export writes
// the same aggregates as "observed", which is what makes the round-trip
// self-test exact rather than approximately close.
func predictedMetrics(rs []experiments.Result, horizon, slo float64) map[string]metrics.Agg {
	m := make(map[string]metrics.Agg, len(MetricOrder))
	add := func(key string, f func(r experiments.Result) float64) {
		var a metrics.Agg
		for _, r := range rs {
			a.Add(f(r))
		}
		m[key] = a
	}
	add(MetricLatencyAvg, func(r experiments.Result) float64 { return r.Stats.Latency.Avg })
	add(MetricLatencyP90, func(r experiments.Result) float64 { return r.Stats.Latency.P90 })
	add(MetricLatencyP95, func(r experiments.Result) float64 { return r.Stats.Latency.P95 })
	add(MetricLatencyP96, func(r experiments.Result) float64 { return r.Stats.Latency.P96 })
	add(MetricLatencyP97, func(r experiments.Result) float64 { return r.Stats.Latency.P97 })
	add(MetricLatencyP98, func(r experiments.Result) float64 { return r.Stats.Latency.P98 })
	add(MetricLatencyP99, func(r experiments.Result) float64 { return r.Stats.Latency.P99 })
	add(MetricThroughputRPS, func(r experiments.Result) float64 {
		if horizon <= 0 {
			return 0
		}
		return float64(r.Stats.Completed) / horizon
	})
	add(MetricCompleted, func(r experiments.Result) float64 { return float64(r.Stats.Completed) })
	add(MetricSpendUSD, func(r experiments.Result) float64 { return r.Stats.CostUSD })
	add(MetricCostPer1kTok, scenario.CostPer1kTok)
	add(MetricSLOPct, func(r experiments.Result) float64 { return scenario.SLOPct(r, slo) })
	add(MetricPreemptions, func(r experiments.Result) float64 {
		return float64(len(preemptionTimes(r)))
	})
	add(MetricOnDemand, func(r experiments.Result) float64 { return float64(r.Stats.OnDemandAllocated) })
	return m
}

// preemptionTimes derives a replica's preemption event log from its
// availability trace (experiments.Run stores the per-seed generated trace
// back into Result.Scenario): every capacity decrement is that many
// preempted instances at the step time.
func preemptionTimes(r experiments.Result) []float64 {
	var out []float64
	prev := 0
	for i, e := range r.Scenario.Trace.Events {
		if i > 0 && e.Count < prev {
			for k := 0; k < prev-e.Count; k++ {
				out = append(out, e.At)
			}
		}
		prev = e.Count
	}
	return out
}

// Run replays the observed trace's scenario through the sweep harness and
// scores prediction against observation. The report is deterministic: same
// trace + seed ⇒ byte-identical Render and JSON output at any Parallel.
func Run(obs ObservedTrace, opts Options) (*Report, error) {
	if err := obs.Validate(); err != nil {
		return nil, err
	}
	obsVals := obs.metricValues()
	if len(obsVals) == 0 {
		return nil, fmt.Errorf("calibrate: observed trace %q carries no metrics to score", obs.Name)
	}
	ref := obs.Scenario.WithDefaults()
	cell, slo, err := ref.cell()
	if err != nil {
		return nil, err
	}
	sw := experiments.Sweep{
		Parallel: opts.Parallel,
		Seeds:    experiments.SeedRange(ref.Seed, ref.Seeds),
		Cache:    opts.Cache,
	}
	rs := sw.RunCells([]experiments.Scenario{cell})[0]
	if opts.OnRow != nil {
		opts.OnRow(scenario.BuildRow(rs, slo))
	}
	pred := predictedMetrics(rs, obs.horizon(), slo)
	tol := MergeTolerances(DefaultTolerances(), obs.Tolerances, opts.Tolerances)

	rep := &Report{
		Name:     obs.Name,
		Scenario: ref,
		Horizon:  obs.horizon(),
		SLO:      slo,
		Seeds:    len(rs),
	}
	for _, r := range rs {
		rep.Fingerprints = append(rep.Fingerprints, r.Fingerprint())
	}
	keys := append(append([]string{}, MetricOrder...), sortedExtraKeys(obsVals)...)
	for _, key := range keys {
		ov, observed := obsVals[key]
		if !observed {
			continue
		}
		row := Row{Metric: key, Observed: ov}
		agg, predicted := pred[key]
		if !predicted {
			row.Verdict = VerdictSkipped
			rep.Skipped++
			rep.Rows = append(rep.Rows, row)
			continue
		}
		row.Predicted = agg.Mean()
		row.Tol = toleranceFor(tol, key)
		row.AbsErr = row.Predicted - ov
		if row.AbsErr < 0 {
			row.AbsErr = -row.AbsErr
		}
		if ov != 0 {
			o := ov
			if o < 0 {
				o = -o
			}
			row.RelErr = row.AbsErr / o
		}
		row.Allowed = row.Tol.allowed(ov)
		if agg.N > 1 {
			row.PredBand = agg.Band().String()
		}
		row.Verdict = scoreVerdict(row.AbsErr, row.Allowed)
		switch row.Verdict {
		case VerdictPass:
			rep.Pass++
		case VerdictWarn:
			rep.Warn++
		case VerdictFail:
			rep.Fail++
		}
		rep.Rows = append(rep.Rows, row)
	}
	if rep.Pass+rep.Warn+rep.Fail == 0 {
		return nil, fmt.Errorf("calibrate: observed trace %q has no scorable metrics (all %d skipped)",
			obs.Name, rep.Skipped)
	}
	switch {
	case rep.Fail > 0:
		rep.Verdict = VerdictFail
	case rep.Warn > 0:
		rep.Verdict = VerdictWarn
	default:
		rep.Verdict = VerdictPass
	}
	return rep, nil
}

// Render formats the report as a fixed-width table, deterministic in the
// report's contents (the golden test pins it byte-for-byte).
func (r *Report) Render() string {
	var b strings.Builder
	name := r.Name
	if name == "" {
		name = "(unnamed)"
	}
	fmt.Fprintf(&b, "Calibration report: %s\n", name)
	s := r.Scenario
	fmt.Fprintf(&b, "scenario: avail=%s policy=%s fleet=%s market=%s system=%s model=%s seed=%d seeds=%d slo=%gs horizon=%gs\n",
		s.Avail, s.Policy, s.Fleet, orDash(s.Market), s.System, orDash(s.Model), s.Seed, r.Seeds, r.SLO, r.Horizon)
	bands := false
	for _, row := range r.Rows {
		if row.PredBand != "" {
			bands = true
			break
		}
	}
	fmt.Fprintf(&b, "%-16s %12s %12s %10s %8s %10s  %-12s %-7s",
		"metric", "observed", "predicted", "abs err", "rel err", "allowed", "tolerance", "verdict")
	if bands {
		fmt.Fprintf(&b, " %-30s", "predicted band")
	}
	b.WriteString("\n")
	for _, row := range r.Rows {
		if row.Verdict == VerdictSkipped {
			fmt.Fprintf(&b, "%-16s %12.4f %12s %10s %8s %10s  %-12s %-7s",
				row.Metric, row.Observed, "n/a", "n/a", "n/a", "n/a", "n/a", row.Verdict)
			if bands {
				fmt.Fprintf(&b, " %-30s", "n/a")
			}
			b.WriteString("\n")
			continue
		}
		fmt.Fprintf(&b, "%-16s %12.4f %12.4f %10.4f %7.2f%% %10.4f  %-12s %-7s",
			row.Metric, row.Observed, row.Predicted, row.AbsErr, row.RelErr*100,
			row.Allowed, row.Tol, row.Verdict)
		if bands {
			fmt.Fprintf(&b, " %-30s", row.PredBand)
		}
		b.WriteString("\n")
	}
	fmt.Fprintf(&b, "verdict: %s (%d pass, %d warn, %d fail, %d skipped)\n",
		r.Verdict, r.Pass, r.Warn, r.Fail, r.Skipped)
	fmt.Fprintf(&b, "(allowed = abs + rel·|observed|; warn within %g× allowed; tolerances merged default ← trace ← request)\n",
		WarnFactor)
	return b.String()
}

// JSON renders the machine-readable report form (indented, trailing
// newline) — byte-identical across runs like Render.
func (r *Report) JSON() ([]byte, error) {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(data, '\n'), nil
}

func orDash(s string) string {
	if s == "" {
		return "-"
	}
	return s
}

// Export converts finished replicas of one cell into an observed trace
// whose metric values are the predictions themselves (cross-seed means via
// the shared predictedMetrics), plus the first replica's preemption log and
// a one-interval spend log for schema realism — both overridden by the
// explicit metrics, so calibrating the export against its own scenario
// yields zero violations by construction.
func Export(name string, ref ScenarioRef, rs []experiments.Result, horizon, slo float64) ObservedTrace {
	o := ObservedTrace{
		Name:     name,
		Scenario: ref.WithDefaults(),
		Horizon:  horizon,
		Metrics:  make(map[string]float64),
	}
	for key, agg := range predictedMetrics(rs, horizon, slo) {
		o.Metrics[key] = agg.Mean()
	}
	if len(rs) > 0 {
		o.Preemptions = preemptionTimes(rs[0])
		if cost := rs[0].Stats.CostUSD; cost > 0 {
			o.Spend = []SpendInterval{{T0: 0, T1: horizon, USD: cost}}
		}
	}
	return o
}

// ExportScenario simulates the referenced scenario and exports it as an
// observed trace — the `-exp calibrate -calib-export` path, and the seed
// generator for the round-trip self-test.
func ExportScenario(name string, ref ScenarioRef, parallel int) (ObservedTrace, error) {
	ref = ref.WithDefaults()
	cell, slo, err := ref.cell()
	if err != nil {
		return ObservedTrace{}, err
	}
	sw := experiments.Sweep{Parallel: parallel, Seeds: experiments.SeedRange(ref.Seed, ref.Seeds)}
	rs := sw.RunCells([]experiments.Scenario{cell})[0]
	return Export(name, ref, rs, DefaultHorizon, slo), nil
}
