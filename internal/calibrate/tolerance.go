package calibrate

import "fmt"

// Canonical metric keys, in report order. Latency keys mirror
// metrics.Summary; the rest are the scenario grid's headline columns, so a
// calibration row and a grid column always mean the same quantity.
const (
	MetricLatencyAvg    = "latency_avg"
	MetricLatencyP90    = "latency_p90"
	MetricLatencyP95    = "latency_p95"
	MetricLatencyP96    = "latency_p96"
	MetricLatencyP97    = "latency_p97"
	MetricLatencyP98    = "latency_p98"
	MetricLatencyP99    = "latency_p99"
	MetricThroughputRPS = "throughput_rps"
	MetricCompleted     = "completed"
	MetricSpendUSD      = "spend_usd"
	MetricCostPer1kTok  = "cost_per_1k_tok"
	MetricSLOPct        = "slo_pct"
	MetricPreemptions   = "preemptions"
	MetricOnDemand      = "on_demand"
)

// MetricOrder fixes the canonical rendering order; observed keys outside it
// follow, sorted (see sortedExtraKeys).
var MetricOrder = []string{
	MetricLatencyAvg, MetricLatencyP90, MetricLatencyP95, MetricLatencyP96,
	MetricLatencyP97, MetricLatencyP98, MetricLatencyP99,
	MetricThroughputRPS, MetricCompleted, MetricSpendUSD, MetricCostPer1kTok,
	MetricSLOPct, MetricPreemptions, MetricOnDemand,
}

// Tolerance is one metric's allowed prediction error: a deviation passes
// when |predicted − observed| ≤ Abs + Rel·|observed| (the abs term absorbs
// noise near zero, the rel term scales with the signal). WarnFactor
// stretches the band into a warn zone before fail.
type Tolerance struct {
	Abs float64 `json:"abs"`
	Rel float64 `json:"rel"`
}

// allowed is the tolerance band half-width around an observation.
func (t Tolerance) allowed(observed float64) float64 {
	o := observed
	if o < 0 {
		o = -o
	}
	return t.Abs + t.Rel*o
}

// String renders the band formula compactly ("0.5+10%").
func (t Tolerance) String() string {
	return fmt.Sprintf("%g+%g%%", t.Abs, t.Rel*100)
}

// WarnFactor stretches a tolerance band into the warn zone: an error within
// allowed passes, within WarnFactor×allowed warns, beyond it fails.
const WarnFactor = 2.0

// DefaultTolerance bounds metrics without an explicit entry — generous,
// because an unknown key carries no calibrated expectation.
var DefaultTolerance = Tolerance{Abs: 0.5, Rel: 0.15}

// DefaultTolerances is the per-metric tolerance table a report starts from.
// Latency tails are noisier than means; counts get integer slack; economics
// metrics track the 10% band the paper's cost comparisons resolve.
func DefaultTolerances() map[string]Tolerance {
	return map[string]Tolerance{
		MetricLatencyAvg:    {Abs: 0.5, Rel: 0.05},
		MetricLatencyP90:    {Abs: 1.0, Rel: 0.10},
		MetricLatencyP95:    {Abs: 1.0, Rel: 0.10},
		MetricLatencyP96:    {Abs: 1.0, Rel: 0.10},
		MetricLatencyP97:    {Abs: 1.0, Rel: 0.10},
		MetricLatencyP98:    {Abs: 1.0, Rel: 0.10},
		MetricLatencyP99:    {Abs: 1.5, Rel: 0.15},
		MetricThroughputRPS: {Abs: 0.05, Rel: 0.10},
		MetricCompleted:     {Abs: 5, Rel: 0.05},
		MetricSpendUSD:      {Abs: 0.25, Rel: 0.10},
		MetricCostPer1kTok:  {Abs: 0.002, Rel: 0.10},
		MetricSLOPct:        {Abs: 2, Rel: 0.05},
		MetricPreemptions:   {Abs: 1, Rel: 0.25},
		MetricOnDemand:      {Abs: 1, Rel: 0.50},
	}
}

// MergeTolerances layers per-metric overrides: later maps win per key (the
// report merges defaults ← trace overrides ← request overrides). Inputs are
// never mutated.
func MergeTolerances(layers ...map[string]Tolerance) map[string]Tolerance {
	out := make(map[string]Tolerance)
	for _, l := range layers {
		for k, t := range l {
			out[k] = t
		}
	}
	return out
}

// toleranceFor resolves one metric's tolerance from the merged table.
func toleranceFor(merged map[string]Tolerance, key string) Tolerance {
	if t, ok := merged[key]; ok {
		return t
	}
	return DefaultTolerance
}

// Verdict is one row's (or the whole report's) outcome.
type Verdict string

const (
	VerdictPass Verdict = "pass"
	VerdictWarn Verdict = "warn"
	VerdictFail Verdict = "fail"
	// VerdictSkipped marks an observed metric the simulator predicts
	// nothing for; it never affects the overall verdict.
	VerdictSkipped Verdict = "skipped"
)

// scoreVerdict classifies one metric's deviation against its band.
func scoreVerdict(absErr, allowed float64) Verdict {
	switch {
	case absErr <= allowed:
		return VerdictPass
	case absErr <= WarnFactor*allowed:
		return VerdictWarn
	default:
		return VerdictFail
	}
}
