package sim

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestRunOrder(t *testing.T) {
	s := New()
	var got []int
	s.At(3, func() { got = append(got, 3) })
	s.At(1, func() { got = append(got, 1) })
	s.At(2, func() { got = append(got, 2) })
	s.RunAll()
	want := []int{1, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order = %v, want %v", got, want)
		}
	}
}

func TestFIFOTieBreak(t *testing.T) {
	s := New()
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		s.At(5, func() { got = append(got, i) })
	}
	s.RunAll()
	for i := range got {
		if got[i] != i {
			t.Fatalf("same-time events not FIFO: %v", got)
		}
	}
}

func TestNowAdvances(t *testing.T) {
	s := New()
	s.At(2.5, func() {
		if s.Now() != 2.5 {
			t.Errorf("Now() = %v inside event, want 2.5", s.Now())
		}
	})
	end := s.RunAll()
	if end != 2.5 {
		t.Fatalf("RunAll returned %v, want 2.5", end)
	}
}

func TestAfter(t *testing.T) {
	s := New()
	var at float64
	s.At(10, func() {
		s.After(5, func() { at = s.Now() })
	})
	s.RunAll()
	if at != 15 {
		t.Fatalf("After fired at %v, want 15", at)
	}
}

func TestAfterNegativeClamps(t *testing.T) {
	s := New()
	fired := false
	s.At(10, func() {
		s.After(-1, func() { fired = true })
	})
	s.RunAll()
	if !fired {
		t.Fatal("negative-delay event did not fire")
	}
}

func TestSchedulePastPanics(t *testing.T) {
	s := New()
	s.At(10, func() {
		defer func() {
			if recover() == nil {
				t.Error("scheduling in the past did not panic")
			}
		}()
		s.At(5, func() {})
	})
	s.RunAll()
}

func TestCancel(t *testing.T) {
	s := New()
	fired := false
	h := s.At(1, func() { fired = true })
	if !h.Pending() {
		t.Fatal("handle should be pending before run")
	}
	if !h.Cancel() {
		t.Fatal("cancel of pending event returned false")
	}
	if h.Cancel() {
		t.Fatal("double cancel returned true")
	}
	s.RunAll()
	if fired {
		t.Fatal("cancelled event fired")
	}
}

func TestRunUntilHorizon(t *testing.T) {
	s := New()
	var got []float64
	for _, tt := range []float64{1, 2, 3, 4} {
		tt := tt
		s.At(tt, func() { got = append(got, tt) })
	}
	s.Run(2.5)
	if len(got) != 2 {
		t.Fatalf("ran %d events before horizon, want 2", len(got))
	}
	if s.Pending() != 2 {
		t.Fatalf("pending = %d, want 2", s.Pending())
	}
	s.Run(10)
	if len(got) != 4 {
		t.Fatalf("ran %d events total, want 4", len(got))
	}
}

func TestStop(t *testing.T) {
	s := New()
	n := 0
	s.At(1, func() { n++; s.Stop() })
	s.At(2, func() { n++ })
	s.RunAll()
	if n != 1 {
		t.Fatalf("executed %d events after Stop, want 1", n)
	}
	// Run can resume afterwards.
	s.RunAll()
	if n != 2 {
		t.Fatalf("executed %d events after resume, want 2", n)
	}
}

func TestEmptyRunAdvancesToHorizon(t *testing.T) {
	s := New()
	s.Run(100)
	if s.Now() != 100 {
		t.Fatalf("Now = %v, want 100", s.Now())
	}
}

// Property: for any set of scheduled times, execution order is the sorted
// order of times (with FIFO among equal times).
func TestQuickExecutionSorted(t *testing.T) {
	f := func(raw []uint16) bool {
		s := New()
		times := make([]float64, len(raw))
		for i, r := range raw {
			times[i] = float64(r) / 7.0
		}
		var fired []float64
		for _, tt := range times {
			tt := tt
			s.At(tt, func() { fired = append(fired, tt) })
		}
		s.RunAll()
		if len(fired) != len(times) {
			return false
		}
		return sort.Float64sAreSorted(fired)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: cancelling a random subset fires exactly the complement.
func TestQuickCancelSubset(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for iter := 0; iter < 100; iter++ {
		s := New()
		n := 1 + rng.Intn(50)
		fired := make([]bool, n)
		handles := make([]Handle, n)
		for i := 0; i < n; i++ {
			i := i
			handles[i] = s.At(rng.Float64()*100, func() { fired[i] = true })
		}
		cancelled := make([]bool, n)
		for i := 0; i < n; i++ {
			if rng.Intn(2) == 0 {
				cancelled[i] = handles[i].Cancel()
			}
		}
		s.RunAll()
		for i := 0; i < n; i++ {
			if fired[i] == cancelled[i] {
				t.Fatalf("event %d: fired=%v cancelled=%v", i, fired[i], cancelled[i])
			}
		}
	}
}

func BenchmarkSchedulerChurn(b *testing.B) {
	s := New()
	rng := rand.New(rand.NewSource(1))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s.After(rng.Float64(), func() {})
		if i%64 == 63 {
			s.Run(s.Now() + 0.5)
		}
	}
	s.RunAll()
}
