package sim

import (
	"math/rand"
	"testing"
)

// TestCancelCompactsQueue is the regression test for the cancelled-event
// memory leak: dead items used to linger in the heap until popped, so a
// workload that schedules and cancels in a loop grew the queue without
// bound. Cancellation must now remove items eagerly.
func TestCancelCompactsQueue(t *testing.T) {
	s := New()
	const rounds = 100_000
	live := s.At(1e12, func() {})
	for i := 0; i < rounds; i++ {
		h := s.At(1e9+float64(i), func() {})
		if !h.Cancel() {
			t.Fatalf("round %d: cancel failed", i)
		}
		if got := s.Pending(); got != 1 {
			t.Fatalf("round %d: pending = %d, want 1 (queue must not retain dead items)", i, got)
		}
	}
	if !live.Pending() {
		t.Fatal("surviving event lost")
	}
	if len(s.queue) != 1 {
		t.Fatalf("queue length = %d after mass cancellation, want 1", len(s.queue))
	}
}

// TestItemPoolRecycles checks the free list actually bounds allocations: a
// schedule/fire loop deep enough to need fresh items only once must keep
// reusing them afterwards.
func TestItemPoolRecycles(t *testing.T) {
	s := New()
	fired := 0
	for i := 0; i < 10_000; i++ {
		s.At(float64(i), func() { fired++ })
		s.RunAll()
	}
	if fired != 10_000 {
		t.Fatalf("fired = %d", fired)
	}
	// One live event at a time → the pool should hold O(1) items.
	if len(s.free) > 4 {
		t.Fatalf("free list holds %d items, want a handful", len(s.free))
	}
}

// TestHandleInvalidAfterFire pins the generation semantics: once an event
// fires, its Handle reports not-pending and cannot cancel whatever event
// has since recycled the pooled item.
func TestHandleInvalidAfterFire(t *testing.T) {
	s := New()
	var h1 Handle
	h1 = s.At(1, func() {})
	s.RunAll()
	if h1.Pending() {
		t.Fatal("fired handle still pending")
	}
	if h1.Cancel() {
		t.Fatal("fired handle cancelled something")
	}
	// The next event reuses the pooled item; the old handle must not be
	// able to touch it.
	fired := false
	h2 := s.At(2, func() { fired = true })
	if h1.Cancel() || h1.Pending() {
		t.Fatal("stale handle aliases the recycled item")
	}
	s.RunAll()
	if !fired {
		t.Fatal("recycled event did not fire")
	}
	_ = h2
}

// TestHandleInvalidAfterCancelRecycle is the same aliasing check through
// the cancellation path.
func TestHandleInvalidAfterCancelRecycle(t *testing.T) {
	s := New()
	h1 := s.At(1, func() { t.Fatal("cancelled event fired") })
	h1.Cancel()
	fired := false
	s.At(1, func() { fired = true })
	if h1.Cancel() {
		t.Fatal("stale handle cancelled the recycled event")
	}
	s.RunAll()
	if !fired {
		t.Fatal("recycled event did not fire")
	}
}

// TestPendingO1MatchesLiveCount cross-checks Pending against brute-force
// bookkeeping under random schedule/cancel/run churn.
func TestPendingO1MatchesLiveCount(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	s := New()
	var handles []Handle
	liveFired := 0
	scheduled := 0
	for i := 0; i < 5000; i++ {
		switch rng.Intn(3) {
		case 0:
			handles = append(handles, s.At(s.Now()+rng.Float64()*10, func() { liveFired++ }))
			scheduled++
		case 1:
			if len(handles) > 0 {
				handles[rng.Intn(len(handles))].Cancel()
			}
		case 2:
			s.Run(s.Now() + rng.Float64())
		}
		want := 0
		for _, h := range handles {
			if h.Pending() {
				want++
			}
		}
		if got := s.Pending(); got != want {
			t.Fatalf("step %d: Pending = %d, want %d", i, got, want)
		}
	}
}

// TestCancelInsideEvent cancels a pending event from within another event
// and checks heap integrity survives mid-run removal.
func TestCancelInsideEvent(t *testing.T) {
	s := New()
	var hs []Handle
	fired := make([]bool, 10)
	for i := 0; i < 10; i++ {
		i := i
		hs = append(hs, s.At(float64(i+10), func() { fired[i] = true }))
	}
	s.At(5, func() {
		for i := 1; i < 10; i += 2 {
			hs[i].Cancel()
		}
	})
	s.RunAll()
	for i := 0; i < 10; i++ {
		if want := i%2 == 0; fired[i] != want {
			t.Fatalf("event %d fired=%v want=%v", i, fired[i], want)
		}
	}
}
