// Package sim provides a deterministic discrete-event simulation kernel.
//
// Virtual time is measured in float64 seconds starting at zero. Events are
// executed in nondecreasing time order; events scheduled for the same instant
// run in scheduling order (stable FIFO tie-break), which keeps every
// simulation fully deterministic.
//
// The kernel is allocation-free on the steady-state hot path: event items are
// recycled through a free list, cancelled events are compacted out of the
// heap eagerly (no dead items linger until popped), and Pending is O(1).
package sim

import (
	"container/heap"
	"fmt"
	"math"
)

// Event is a callback scheduled to run at a virtual time.
type Event func()

// item is a scheduled event inside the queue. Items are pooled: once an item
// fires or is cancelled it returns to the simulator's free list and its
// generation counter advances, invalidating stale Handles.
type item struct {
	at    float64
	seq   uint64
	fn    Event
	index int
	gen   uint64
	owner *Simulator
}

// eventQueue is a binary heap ordered by (at, seq).
type eventQueue []*item

func (q eventQueue) Len() int { return len(q) }

func (q eventQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}

func (q eventQueue) Swap(i, j int) {
	q[i], q[j] = q[j], q[i]
	q[i].index = i
	q[j].index = j
}

func (q *eventQueue) Push(x any) {
	it := x.(*item)
	it.index = len(*q)
	*q = append(*q, it)
}

func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	it := old[n-1]
	old[n-1] = nil
	it.index = -1
	*q = old[:n-1]
	return it
}

// Handle identifies a scheduled event so it can be cancelled. A Handle stays
// valid forever: once its event has fired or been cancelled, the underlying
// item's generation moves on and the Handle simply reports not-pending.
type Handle struct {
	it  *item
	gen uint64
}

// Cancel removes the event from the queue if it has not fired yet.
// It reports whether the event was still pending. Cancellation is eager:
// the item leaves the heap immediately (O(log n)) instead of lingering as a
// dead entry until popped, so mass cancellation cannot grow the queue.
func (h Handle) Cancel() bool {
	it := h.it
	if it == nil || it.gen != h.gen || it.index < 0 {
		return false
	}
	s := it.owner
	heap.Remove(&s.queue, it.index)
	s.release(it)
	return true
}

// Pending reports whether the event has neither fired nor been cancelled.
func (h Handle) Pending() bool {
	return h.it != nil && h.it.gen == h.gen && h.it.index >= 0
}

// Simulator owns the virtual clock and the event queue.
type Simulator struct {
	now     float64
	seq     uint64
	queue   eventQueue
	free    []*item
	slab    []item
	stopped bool
	steps   uint64
}

// slabSize is the bump-allocation chunk for cold-path item creation: a
// workload that schedules thousands of arrival events up front costs
// O(events/slabSize) allocations instead of one per event.
const slabSize = 64

// New returns a simulator with the clock at zero.
func New() *Simulator {
	return &Simulator{}
}

// Now returns the current virtual time in seconds.
func (s *Simulator) Now() float64 { return s.now }

// Steps returns the number of events executed so far.
func (s *Simulator) Steps() uint64 { return s.steps }

// alloc takes an item from the free list (or the allocator on a cold path).
func (s *Simulator) alloc() *item {
	if n := len(s.free); n > 0 {
		it := s.free[n-1]
		s.free[n-1] = nil
		s.free = s.free[:n-1]
		return it
	}
	if len(s.slab) == 0 {
		s.slab = make([]item, slabSize)
	}
	it := &s.slab[0]
	s.slab = s.slab[1:]
	it.owner = s
	it.index = -1
	return it
}

// release recycles an item: the generation bump invalidates every Handle
// still pointing at it before it re-enters the free list.
func (s *Simulator) release(it *item) {
	it.gen++
	it.fn = nil
	it.index = -1
	s.free = append(s.free, it)
}

// At schedules fn to run at absolute virtual time t.
// Scheduling in the past panics: it indicates a logic error in the model.
func (s *Simulator) At(t float64, fn Event) Handle {
	if math.IsNaN(t) {
		panic("sim: schedule at NaN time")
	}
	if t < s.now {
		panic(fmt.Sprintf("sim: schedule at %.6f which is before now %.6f", t, s.now))
	}
	it := s.alloc()
	it.at, it.seq, it.fn = t, s.seq, fn
	s.seq++
	heap.Push(&s.queue, it)
	return Handle{it: it, gen: it.gen}
}

// After schedules fn to run delay seconds from now. Negative delays are
// clamped to zero so that tiny floating-point underruns do not panic.
func (s *Simulator) After(delay float64, fn Event) Handle {
	if delay < 0 {
		delay = 0
	}
	return s.At(s.now+delay, fn)
}

// Stop makes Run return after the currently executing event completes.
func (s *Simulator) Stop() { s.stopped = true }

// Run executes events until the queue is empty or virtual time would exceed
// until. It returns the virtual time at which it stopped.
func (s *Simulator) Run(until float64) float64 {
	s.stopped = false
	for len(s.queue) > 0 && !s.stopped {
		it := s.queue[0]
		if it.at > until {
			break
		}
		heap.Pop(&s.queue)
		s.now = it.at
		s.steps++
		fn := it.fn
		// Recycle before running: fn may schedule new events, and a fired
		// event's Handle must already read as not-pending inside fn.
		s.release(it)
		fn()
	}
	if s.now < until && len(s.queue) == 0 && !math.IsInf(until, 1) {
		// Advance to the horizon so repeated Run calls are monotonic.
		s.now = until
	}
	return s.now
}

// RunAll executes events until the queue drains (or Stop is called).
func (s *Simulator) RunAll() float64 {
	return s.Run(math.Inf(1))
}

// Pending returns the number of live events in the queue in O(1): cancelled
// events are removed eagerly, so the heap holds exactly the live events.
func (s *Simulator) Pending() int {
	return len(s.queue)
}
