package reconfig

import (
	"testing"

	"spotserve/internal/config"
	"spotserve/internal/cost"
	"spotserve/internal/model"
)

// Ablation benchmarks for the design choices DESIGN.md calls out: each
// reports the quality metric of the optimized mechanism against its naive
// counterpart as custom benchmark metrics.

// BenchmarkMapperKMvsIdentity measures device-mapping quality: reusable
// context bytes under KM matching vs arbitrary assignment for the paper's
// Figure-4a reconfiguration (GPT-20B, (2,8) → (3,4)).
func BenchmarkMapperKMvsIdentity(b *testing.B) {
	spec := model.GPT20B
	old := config.Config{D: 1, P: 2, M: 8, B: 1}
	target := config.Config{D: 1, P: 3, M: 4, B: 1}
	gpus := mkGPUs(4, 4)
	devs := devicesFor(spec, gpus, old)[:12]

	var km, id Mapping
	var err error
	for i := 0; i < b.N; i++ {
		km, err = MapDevices(spec, devs, target, MapperOptions{UseKM: true})
		if err != nil {
			b.Fatal(err)
		}
		id, err = MapDevices(spec, devs, target, MapperOptions{UseKM: false})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(km.ReusedModelBytes/1e9, "km_reuse_GB")
	b.ReportMetric(id.ReusedModelBytes/1e9, "identity_reuse_GB")
	b.ReportMetric(km.ReusedModelBytes/id.ReusedModelBytes, "km_advantage_x")
}

// BenchmarkMapperHierarchicalVsFlat compares the two-step matching with
// the flat global matching: reuse quality and intra-instance locality of
// tensor-parallel groups.
func BenchmarkMapperHierarchicalVsFlat(b *testing.B) {
	spec := model.GPT20B
	old := config.Config{D: 2, P: 2, M: 4, B: 1}
	target := config.Config{D: 1, P: 4, M: 4, B: 1}
	gpus := mkGPUs(4, 4)
	devs := devicesFor(spec, gpus, old)

	locality := func(m Mapping) float64 {
		colocated := 0
		for p := 0; p < target.P; p++ {
			inst := m.Assign[config.Position{D: 0, P: p, M: 0}].Inst.ID
			ok := true
			for mm := 1; mm < target.M; mm++ {
				if m.Assign[config.Position{D: 0, P: p, M: mm}].Inst.ID != inst {
					ok = false
				}
			}
			if ok {
				colocated++
			}
		}
		return float64(colocated) / float64(target.P)
	}

	var hier, flat Mapping
	var err error
	for i := 0; i < b.N; i++ {
		hier, err = MapDevices(spec, devs, target, MapperOptions{UseKM: true, Hierarchical: true})
		if err != nil {
			b.Fatal(err)
		}
		flat, err = MapDevices(spec, devs, target, MapperOptions{UseKM: true})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(locality(hier), "hier_stage_locality")
	b.ReportMetric(locality(flat), "flat_stage_locality")
	b.ReportMetric(hier.ReusedModelBytes/1e9, "hier_reuse_GB")
	b.ReportMetric(flat.ReusedModelBytes/1e9, "flat_reuse_GB")
}

// BenchmarkPlannerProgressiveVsBlocking measures when the first pipeline
// stage can resume serving under the progressive schedule vs the blocking
// one.
func BenchmarkPlannerProgressiveVsBlocking(b *testing.B) {
	spec := model.GPT20B
	est := cost.NewEstimator(cost.DefaultParams(), spec)
	old := config.Config{D: 1, P: 2, M: 8, B: 1}
	target := config.Config{D: 1, P: 3, M: 4, B: 1}
	gpus := mkGPUs(4, 4)
	devs := devicesFor(spec, gpus, old)
	mapping, err := MapDevices(spec, devs, target, MapperOptions{UseKM: true})
	if err != nil {
		b.Fatal(err)
	}
	opts := PlanOptions{Progressive: true, MemOpt: true,
		UmaxBytes: cost.DefaultParams().BufMaxBytes, MigrateCache: true}

	var prog, blk Timeline
	for i := 0; i < b.N; i++ {
		plan, err := PlanMigration(spec, est, devs, mapping, opts)
		if err != nil {
			b.Fatal(err)
		}
		prog = plan.Schedule(est, true)
		blk = plan.Schedule(est, false)
	}
	b.ReportMetric(prog.StageReady[0], "progressive_stage0_s")
	b.ReportMetric(blk.StageReady[0], "blocking_stage0_s")
	b.ReportMetric(prog.Duration, "total_migration_s")
}

// BenchmarkPlannerMemOptPeakBuffer measures Algorithm 2's effect on peak
// migration-buffer usage versus the naive order. The scenario preempts the
// instance holding the front of the model ((2,8) → (3,4) without old stage
// 0's first shards), shifting stage boundaries backward across instances:
// the naive ascending order receives new layers long before the old ones
// release, while the min-max order interleaves them.
func BenchmarkPlannerMemOptPeakBuffer(b *testing.B) {
	spec := model.GPT20B
	est := cost.NewEstimator(cost.DefaultParams(), spec)
	old := config.Config{D: 1, P: 2, M: 8, B: 1}
	target := config.Config{D: 1, P: 3, M: 4, B: 1}
	gpus := mkGPUs(4, 4)
	devs := devicesFor(spec, gpus, old)[4:] // inst0 (front shards) preempted
	mapping, err := MapDevices(spec, devs, target, MapperOptions{UseKM: true})
	if err != nil {
		b.Fatal(err)
	}
	peak := func(memopt bool) float64 {
		plan, err := PlanMigration(spec, est, devs, mapping, PlanOptions{
			Progressive: true, MemOpt: memopt, UmaxBytes: 1.0 * model.GB,
		})
		if err != nil {
			b.Fatal(err)
		}
		mx := 0.0
		for _, v := range plan.PeakBufferBytes {
			if v > mx {
				mx = v
			}
		}
		return mx
	}
	var opt, naive float64
	for i := 0; i < b.N; i++ {
		opt = peak(true)
		naive = peak(false)
	}
	b.ReportMetric(opt/1e9, "memopt_peak_GB")
	b.ReportMetric(naive/1e9, "naive_peak_GB")
}

// BenchmarkMigrationVsReload compares one reconfiguration's context
// migration against the Reparallelization baseline's full restart — the
// paper's central cost asymmetry.
func BenchmarkMigrationVsReload(b *testing.B) {
	spec := model.GPT20B
	est := cost.NewEstimator(cost.DefaultParams(), spec)
	old := config.Config{D: 1, P: 2, M: 8, B: 1}
	target := config.Config{D: 1, P: 3, M: 4, B: 1}
	gpus := mkGPUs(4, 4)
	devs := devicesFor(spec, gpus, old)
	mapping, err := MapDevices(spec, devs, target, MapperOptions{UseKM: true})
	if err != nil {
		b.Fatal(err)
	}
	var mig float64
	for i := 0; i < b.N; i++ {
		plan, err := PlanMigration(spec, est, devs, mapping, PlanOptions{
			Progressive: true, MemOpt: true, UmaxBytes: model.GB,
		})
		if err != nil {
			b.Fatal(err)
		}
		mig = plan.Schedule(est, true).Duration
	}
	reload := est.ReloadTime(target.P, target.M)
	b.ReportMetric(mig, "migration_s")
	b.ReportMetric(reload, "reload_s")
	b.ReportMetric(reload/mig, "advantage_x")
}

// BenchmarkDeviceMapping measures mapper latency at fleet scale (48 GPUs).
func BenchmarkDeviceMapping(b *testing.B) {
	spec := model.GPT20B
	old := config.Config{D: 3, P: 2, M: 8, B: 1}
	target := config.Config{D: 4, P: 3, M: 4, B: 1}
	gpus := mkGPUs(12, 4)
	devs := devicesFor(spec, gpus, old)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := MapDevices(spec, devs, target, MapperOptions{UseKM: true, Hierarchical: true}); err != nil {
			b.Fatal(err)
		}
	}
}
