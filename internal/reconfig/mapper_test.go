package reconfig

import (
	"testing"

	"spotserve/internal/cloud"
	"spotserve/internal/config"
	"spotserve/internal/model"
)

// mkGPUs fabricates nInst instances with gpusPer GPUs each.
func mkGPUs(nInst, gpusPer int) []*cloud.GPU {
	var out []*cloud.GPU
	id := int64(0)
	for i := 0; i < nInst; i++ {
		inst := &cloud.Instance{ID: int64(i), Kind: cloud.Spot, State: cloud.Running}
		for s := 0; s < gpusPer; s++ {
			g := &cloud.GPU{ID: id, Slot: s, Inst: inst}
			inst.GPUs = append(inst.GPUs, g)
			out = append(out, g)
			id++
		}
	}
	return out
}

// devicesFor binds each GPU (in order) to a position of cfg and fills the
// matching model context; extra GPUs hold nothing.
func devicesFor(spec model.Spec, gpus []*cloud.GPU, cfg config.Config) []DeviceContext {
	positions := cfg.Positions()
	out := make([]DeviceContext, len(gpus))
	for i, g := range gpus {
		dc := DeviceContext{GPU: g, CachePipeline: -1}
		if i < len(positions) {
			pos := positions[i]
			dc.ModelCtx = model.PositionRect(spec, cfg.P, cfg.M, pos.P, pos.M)
		}
		out[i] = dc
	}
	return out
}

func TestMapSameConfigIsPerfectReuse(t *testing.T) {
	spec := model.GPT20B
	cfg := config.Config{D: 1, P: 2, M: 4, B: 1}
	gpus := mkGPUs(2, 4)
	devs := devicesFor(spec, gpus, cfg)
	m, err := MapDevices(spec, devs, cfg, MapperOptions{UseKM: true})
	if err != nil {
		t.Fatal(err)
	}
	if m.ReusedModelBytes < spec.ParamBytes-1 {
		t.Fatalf("reuse = %v, want full model %v", m.ReusedModelBytes, spec.ParamBytes)
	}
	// Identity mapping: every GPU keeps its own shard.
	for i, pos := range cfg.Positions() {
		if m.Assign[pos] != gpus[i] {
			t.Fatalf("position %v → gpu %d, want %d", pos, m.Assign[pos].ID, gpus[i].ID)
		}
	}
	if len(m.Spare) != 0 {
		t.Fatalf("spare = %d", len(m.Spare))
	}
}

func TestMapBeatsIdentityOnReconfig(t *testing.T) {
	// Figure 4a: (D=1,P=2,M=8) → (D=1,P=3,M=4) on 16 → 12 GPUs. KM must
	// reuse strictly more context than arbitrary identity assignment.
	spec := model.GPT20B
	old := config.Config{D: 1, P: 2, M: 8, B: 1}
	target := config.Config{D: 1, P: 3, M: 4, B: 1}
	gpus := mkGPUs(4, 4)
	devs := devicesFor(spec, gpus, old)
	devs = devs[:12] // four GPUs were preempted

	kmMap, err := MapDevices(spec, devs, target, MapperOptions{UseKM: true})
	if err != nil {
		t.Fatal(err)
	}
	idMap, err := MapDevices(spec, devs, target, MapperOptions{UseKM: false})
	if err != nil {
		t.Fatal(err)
	}
	if kmMap.ReusedModelBytes <= idMap.ReusedModelBytes {
		t.Fatalf("KM reuse %v not above identity %v", kmMap.ReusedModelBytes, idMap.ReusedModelBytes)
	}
	if kmMap.TotalModelBytes < spec.ParamBytes-1 {
		t.Fatalf("total bytes %v below model size", kmMap.TotalModelBytes)
	}
	if kmMap.ReusedModelBytes > kmMap.TotalModelBytes+1 {
		t.Fatal("reuse exceeds total")
	}
}

func TestMapInsufficientGPUs(t *testing.T) {
	spec := model.GPT20B
	target := config.Config{D: 1, P: 3, M: 4, B: 1}
	gpus := mkGPUs(2, 4) // 8 < 12
	devs := devicesFor(spec, gpus, config.Config{D: 1, P: 2, M: 4, B: 1})
	if _, err := MapDevices(spec, devs, target, MapperOptions{UseKM: true}); err == nil {
		t.Fatal("mapping with too few GPUs accepted")
	}
}

func TestMapSparePool(t *testing.T) {
	spec := model.OPT6B7
	target := config.Config{D: 1, P: 1, M: 4, B: 1}
	gpus := mkGPUs(2, 4) // 8 GPUs, need 4
	devs := devicesFor(spec, gpus, target)
	m, err := MapDevices(spec, devs, target, MapperOptions{UseKM: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Spare) != 4 {
		t.Fatalf("spare = %d, want 4", len(m.Spare))
	}
}

func TestMapCacheInheritancePreference(t *testing.T) {
	// Two GPUs hold identical model context; one also holds the cache of
	// old pipeline 0. The position of new pipeline 0 (which inherits old
	// pipeline 0) must receive the cache-bearing GPU — the paper's
	// u1→v0 example in Figure 4b.
	spec := model.OPT6B7
	target := config.Config{D: 2, P: 1, M: 2, B: 1}
	gpus := mkGPUs(1, 4)
	shard0 := model.PositionRect(spec, 1, 2, 0, 0)
	devs := []DeviceContext{
		{GPU: gpus[0], ModelCtx: shard0, CachePipeline: -1},
		{GPU: gpus[1], ModelCtx: shard0, CachePipeline: 0,
			CacheRect: shard0, CacheTokens: 600},
		{GPU: gpus[2], ModelCtx: model.PositionRect(spec, 1, 2, 0, 1), CachePipeline: -1},
		{GPU: gpus[3], ModelCtx: model.PositionRect(spec, 1, 2, 0, 1), CachePipeline: -1},
	}
	m, err := MapDevices(spec, devs, target, MapperOptions{
		UseKM:   true,
		Inherit: map[int]int{0: 0},
	})
	if err != nil {
		t.Fatal(err)
	}
	pos := config.Position{D: 0, P: 0, M: 0}
	if m.Assign[pos] != gpus[1] {
		t.Fatalf("cache-bearing GPU not mapped to inheriting pipeline: got gpu %d", m.Assign[pos].ID)
	}
	if m.ReusedCacheBytes <= 0 {
		t.Fatal("no cache reuse recorded")
	}
}

func TestHierarchicalMatchingKeepsShardsTogether(t *testing.T) {
	// With M=4 and 4-GPU instances, hierarchical matching must place all
	// four shards of one stage on one instance (intra-instance
	// all-reduce), even from cold (empty) contexts.
	spec := model.GPT20B
	target := config.Config{D: 1, P: 3, M: 4, B: 1}
	gpus := mkGPUs(3, 4)
	devs := make([]DeviceContext, len(gpus))
	for i, g := range gpus {
		devs[i] = DeviceContext{GPU: g, CachePipeline: -1}
	}
	m, err := MapDevices(spec, devs, target, MapperOptions{UseKM: true, Hierarchical: true})
	if err != nil {
		t.Fatal(err)
	}
	for p := 0; p < 3; p++ {
		inst := m.Assign[config.Position{D: 0, P: p, M: 0}].Inst.ID
		for mm := 1; mm < 4; mm++ {
			if m.Assign[config.Position{D: 0, P: p, M: mm}].Inst.ID != inst {
				t.Fatalf("stage %d shards span instances", p)
			}
		}
	}
}

func TestHierarchicalReuseNotWorseThanIdentity(t *testing.T) {
	spec := model.GPT20B
	old := config.Config{D: 2, P: 2, M: 2, B: 1}
	target := config.Config{D: 2, P: 3, M: 1, B: 1} // Figure 4b shapes
	gpus := mkGPUs(2, 4)
	devs := devicesFor(spec, gpus, old)
	devs = devs[:6]
	h, err := MapDevices(spec, devs, target, MapperOptions{
		UseKM: true, Hierarchical: true, Inherit: map[int]int{0: 0, 1: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	id, err := MapDevices(spec, devs, target, MapperOptions{UseKM: false})
	if err != nil {
		t.Fatal(err)
	}
	if h.ReusedModelBytes+h.ReusedCacheBytes < id.ReusedModelBytes+id.ReusedCacheBytes {
		t.Fatalf("hierarchical reuse %v below identity %v",
			h.ReusedModelBytes+h.ReusedCacheBytes, id.ReusedModelBytes+id.ReusedCacheBytes)
	}
}

func TestFlatVsHierarchicalBothComplete(t *testing.T) {
	spec := model.LLaMA30B
	old := config.Config{D: 1, P: 2, M: 8, B: 1}
	target := config.Config{D: 1, P: 4, M: 4, B: 1}
	gpus := mkGPUs(4, 4)
	devs := devicesFor(spec, gpus, old)
	for _, hier := range []bool{false, true} {
		m, err := MapDevices(spec, devs, target, MapperOptions{UseKM: true, Hierarchical: hier})
		if err != nil {
			t.Fatalf("hier=%v: %v", hier, err)
		}
		if len(m.Assign) != target.GPUs() {
			t.Fatalf("hier=%v: assigned %d positions", hier, len(m.Assign))
		}
		seen := map[int64]bool{}
		for _, g := range m.Assign {
			if seen[g.ID] {
				t.Fatalf("hier=%v: GPU %d assigned twice", hier, g.ID)
			}
			seen[g.ID] = true
		}
	}
}

func TestMapRejectsZeroConfig(t *testing.T) {
	if _, err := MapDevices(model.OPT6B7, nil, config.Zero, MapperOptions{UseKM: true}); err == nil {
		t.Fatal("zero config accepted")
	}
}

func TestKeepBatches(t *testing.T) {
	prog := map[int]int{0: 50, 1: 120, 2: 10}
	got := KeepBatches(prog, 2)
	if len(got) != 2 || got[0] != 0 || got[1] != 1 {
		t.Fatalf("KeepBatches = %v, want [0 1] (most progressed)", got)
	}
	if got := KeepBatches(prog, 5); len(got) != 3 {
		t.Fatalf("cap above len: %v", got)
	}
	if got := KeepBatches(nil, 2); len(got) != 0 {
		t.Fatalf("empty progress: %v", got)
	}
	// Ties break deterministically by pipeline index.
	tie := map[int]int{3: 7, 1: 7, 2: 7}
	got = KeepBatches(tie, 2)
	if got[0] != 1 || got[1] != 2 {
		t.Fatalf("tie break = %v", got)
	}
}
