package reconfig

import (
	"fmt"
	"sort"
	"sync"

	"spotserve/internal/cloud"
	"spotserve/internal/config"
	"spotserve/internal/km"
	"spotserve/internal/model"
)

// solverPool recycles KM solver workspaces across mappings: one
// reconfiguration runs up to #instances × #blocks sub-matchings plus the
// top-level matching, all through one pooled solver.
var solverPool = sync.Pool{New: func() any { return km.NewSolver() }}

// mapWS pools MapDevices' transient scratch — the sorted device copy, the
// per-position rectangles, the used set and the matching workspaces (cost
// matrices, instance grouping, per-pair assignments). Everything retained
// by the returned Mapping (Assign, flat, Spare) stays freshly allocated:
// mappings are memoized and shared, so only strictly call-local storage is
// pooled.
type mapWS struct {
	devs  []DeviceContext
	rects []model.Rect
	used  []bool
	bonus []float64
	left  []int
	// hierarchical/flat matching scratch.
	mat       scratchMatrix
	sub       scratchMatrix
	instIdx   map[int64]int
	instCnt   []int
	instArena []int
	instGPUs  [][]int
	paStart   []int
	paArena   []int
}

var mapWSPool = sync.Pool{New: func() any { return &mapWS{} }}

// DeviceContext is the mapper's view of one GPU's context daemon: what
// model and cache context the device currently holds.
type DeviceContext struct {
	GPU *cloud.GPU
	// ModelCtx is the resident parameter shard (possibly empty).
	ModelCtx model.Rect
	// CachePipeline is the old pipeline index whose KV cache is resident
	// (-1 when none).
	CachePipeline int
	// CacheRect / CacheTokens describe the resident cache.
	CacheRect   model.Rect
	CacheTokens int
}

// MapperOptions tunes the device mapper.
type MapperOptions struct {
	// UseKM enables optimal Kuhn–Munkres matching; when false, devices
	// are assigned to positions in arbitrary (ID) order — the ablation
	// baseline of Figure 9.
	UseKM bool
	// Hierarchical enables the two-step intra-/inter-instance matching
	// for multi-GPU instances (§3.3 "two-step matching").
	Hierarchical bool
	// Inherit maps new pipeline index → old pipeline index whose
	// interrupted requests (and KV cache) the new pipeline adopts.
	// Pipelines absent from the map inherit nothing.
	Inherit map[int]int
	// KM, when non-nil, memoizes sub-matchings across reconfigurations
	// (the determinism-safe KM warm start — see km.Cache). Nil solves
	// cold through a pooled solver.
	KM *km.Cache
}

// Mapping is the device mapper's output.
type Mapping struct {
	Target config.Config
	// Assign binds every topology position of Target to a GPU.
	Assign map[config.Position]*cloud.GPU
	// Spare lists usable GPUs left out of the mesh (the candidate pool).
	Spare []*cloud.GPU
	// ReusedModelBytes / ReusedCacheBytes quantify context reuse achieved
	// by the matching (the KM objective value, split by kind).
	ReusedModelBytes float64
	ReusedCacheBytes float64
	// TotalModelBytes is the parameter bytes the full target mesh needs;
	// TotalModelBytes − ReusedModelBytes must be migrated or reloaded.
	TotalModelBytes float64
	// flat is Assign in Target.Positions() order (nil for mappings built
	// by hand); the planner's hot loops read it instead of the map.
	flat []*cloud.GPU
}

// gpuAt returns the GPU assigned to positions[i] (= pos), preferring the
// flat view when present.
func (m *Mapping) gpuAt(i int, pos config.Position) *cloud.GPU {
	if m.flat != nil {
		return m.flat[i]
	}
	return m.Assign[pos]
}

// assigned reports whether GPU id is placed somewhere in the target mesh.
// The mesh is small (Target.GPUs() positions), so a linear scan beats
// building a set per query.
func (m *Mapping) assigned(id int64) bool {
	if m.flat != nil {
		for _, g := range m.flat {
			if g != nil && g.ID == id {
				return true
			}
		}
		return false
	}
	//detlint:allow maprange — existential scan with pure reads: answers whether any position holds GPU id, identical under every visit order
	for _, g := range m.Assign {
		if g != nil && g.ID == id {
			return true
		}
	}
	return false
}

// edgeWeights computes the reusable model and cache bytes when placing
// device u at position v of the target configuration, whose context
// rectangle is want (precomputed once per matching).
func edgeWeights(spec model.Spec, u DeviceContext, want model.Rect, v config.Position, inherit map[int]int) (modelBytes, cacheBytes float64) {
	modelBytes = u.ModelCtx.OverlapParamBytes(spec, want)
	if u.CachePipeline >= 0 && u.CacheTokens > 0 {
		if oldD, ok := inherit[v.D]; ok && oldD == u.CachePipeline {
			inter := u.CacheRect.Intersect(want)
			if !inter.Empty() {
				cacheBytes = float64(u.CacheTokens) * spec.KVBytesPerTokenLayer() *
					float64(inter.Layers()) * inter.FracWidth()
			}
		}
	}
	return modelBytes, cacheBytes
}

// MapDevices maps available GPUs onto the pipeline-stage-shard positions of
// the target configuration, maximizing reusable context bytes. It returns
// an error when fewer GPUs are available than the target needs.
func MapDevices(spec model.Spec, devices []DeviceContext, target config.Config, opt MapperOptions) (Mapping, error) {
	if err := target.Validate(); err != nil {
		return Mapping{}, err
	}
	need := target.GPUs()
	if len(devices) < need {
		return Mapping{}, fmt.Errorf("reconfig: mapping needs %d GPUs, have %d", need, len(devices))
	}
	ws := mapWSPool.Get().(*mapWS)
	defer mapWSPool.Put(ws)

	// Deterministic input order.
	devs := append(ws.devs[:0], devices...)
	ws.devs = devs
	sort.Slice(devs, func(i, j int) bool { return devs[i].GPU.ID < devs[j].GPU.ID })
	positions := target.Positions()

	m := Mapping{
		Target: target,
		Assign: make(map[config.Position]*cloud.GPU, need),
	}
	// Position rectangles are shared by every weight computation below.
	if cap(ws.rects) < len(positions) {
		ws.rects = make([]model.Rect, len(positions))
	}
	rects := ws.rects[:len(positions)]
	for i, pos := range positions {
		rects[i] = model.PositionRect(spec, target.P, target.M, pos.P, pos.M)
		m.TotalModelBytes += rects[i].ParamBytes(spec)
	}

	// solve routes through the caller's KM memo when provided, else a
	// pooled cold solver. Both produce identical assignments (the memo
	// only replays exact recurrences).
	var solve func(km.Matrix) (km.Assignment, error)
	if opt.KM != nil {
		solve = opt.KM.Solve
	} else {
		sv := solverPool.Get().(*km.Solver)
		defer solverPool.Put(sv)
		solve = sv.Solve
	}

	bonus := speedBonus(devs, ws)

	var left []int // indices into devs chosen for the mesh, aligned to positions
	var err error
	switch {
	case !opt.UseKM:
		left = identityAssign(len(positions), ws)
	case opt.Hierarchical:
		left, err = hierarchicalMatch(solve, spec, devs, positions, rects, opt.Inherit, bonus, ws)
		if err != nil {
			// Irregular instance shapes (partially preempted instances,
			// uneven blocks) break the block structure; fall back to the
			// globally optimal flat matching.
			left, err = flatMatch(solve, spec, devs, positions, rects, opt.Inherit, bonus, ws)
		}
	default:
		left, err = flatMatch(solve, spec, devs, positions, rects, opt.Inherit, bonus, ws)
	}
	if err != nil {
		return Mapping{}, err
	}

	if cap(ws.used) < len(devs) {
		ws.used = make([]bool, len(devs))
	}
	used := ws.used[:len(devs)]
	for i := range used {
		used[i] = false
	}
	m.flat = make([]*cloud.GPU, len(positions))
	for pi, di := range left {
		pos := positions[pi]
		m.Assign[pos] = devs[di].GPU
		m.flat[pi] = devs[di].GPU
		used[di] = true
		mb, cb := edgeWeights(spec, devs[di], rects[pi], pos, opt.Inherit)
		m.ReusedModelBytes += mb
		m.ReusedCacheBytes += cb
	}
	for di := range devs {
		if !used[di] {
			m.Spare = append(m.Spare, devs[di].GPU)
		}
	}
	return m, nil
}

// identityAssign maps position i to device i (pooled scratch; the caller
// consumes the result before MapDevices returns).
func identityAssign(n int, ws *mapWS) []int {
	out := intsFor(&ws.left, n)
	for i := range out {
		out[i] = i
	}
	return out
}

// speedBonusBytes converts one unit of GPU speed multiplier into matching
// weight. It is small against real context reuse (a fraction of one layer's
// parameter bytes) so reuse always dominates, but breaks reuse ties toward
// the fast devices.
const speedBonusBytes = 16e6

// speedBonus returns a per-device weight bonus that steers the matching
// toward faster GPUs when the fleet mixes instance types: among devices
// with equal reusable context, KM then builds the mesh on the fastest
// devices and leaves the slow ones as spares. It returns nil for
// speed-homogeneous fleets, so their cost matrices — and the golden
// fingerprints — are bit-identical to the untyped baseline.
func speedBonus(devs []DeviceContext, ws *mapWS) []float64 {
	hetero := false
	for _, d := range devs {
		if d.GPU.Inst.GPUSpeed() != devs[0].GPU.Inst.GPUSpeed() {
			hetero = true
			break
		}
	}
	if !hetero {
		return nil
	}
	out := floatsFor(&ws.bonus, len(devs))
	for i, d := range devs {
		out[i] = d.GPU.Inst.GPUSpeed() * speedBonusBytes
	}
	return out
}

// flatMatch runs one global KM over all devices × positions. The cost
// matrix and result live in pooled scratch (the KM memo hashes matrix
// content without retaining it, and the caller consumes the result before
// MapDevices returns).
func flatMatch(solve func(km.Matrix) (km.Assignment, error), spec model.Spec, devs []DeviceContext, positions []config.Position, rects []model.Rect, inherit map[int]int, bonus []float64, ws *mapWS) ([]int, error) {
	w := ws.mat.sized(len(devs), len(positions))
	for i, u := range devs {
		for j, v := range positions {
			mb, cb := edgeWeights(spec, u, rects[j], v, inherit)
			w[i][j] = mb + cb
			if bonus != nil {
				w[i][j] += bonus[i]
			}
		}
	}
	a, err := solve(w)
	if err != nil {
		return nil, err
	}
	out := intsFor(&ws.left, len(positions))
	for j, i := range a.Right {
		if i < 0 {
			return nil, fmt.Errorf("reconfig: position %v unmatched", positions[j])
		}
		out[j] = i
	}
	return out, nil
}

// hierarchicalMatch exploits the instance hierarchy: step 1 matches
// instances to blocks of GPUsPerInstance consecutive positions with KM over
// block-level weights (themselves optimal 4×4 matchings); step 2 solves the
// per-pair GPU-level assignment. Consecutive positions share a stage
// whenever M ≥ GPUs/instance, so tensor-parallel all-reduce groups land on
// the fast intra-instance interconnect.
func hierarchicalMatch(solve func(km.Matrix) (km.Assignment, error), spec model.Spec, devs []DeviceContext, positions []config.Position, rects []model.Rect, inherit map[int]int, bonus []float64, ws *mapWS) ([]int, error) {
	// Group devices by instance (dense indices in first-touch order, which
	// preserves device order): a counting pass sizes per-instance groups,
	// then an arena holds them without per-instance allocations.
	if ws.instIdx == nil {
		ws.instIdx = map[int64]int{}
	} else {
		clear(ws.instIdx)
	}
	instIdx := ws.instIdx
	cnt := ws.instCnt[:0]
	for _, d := range devs {
		id := d.GPU.Inst.ID
		if gi, ok := instIdx[id]; ok {
			cnt[gi]++
		} else {
			instIdx[id] = len(cnt)
			cnt = append(cnt, 1)
		}
	}
	ws.instCnt = cnt
	ni := len(cnt)
	per := 0
	for _, n := range cnt {
		if n > per {
			per = n
		}
	}
	if per == 0 {
		return nil, fmt.Errorf("reconfig: no devices")
	}
	arena := intsFor(&ws.instArena, len(devs))[:0]
	if cap(ws.instGPUs) < ni {
		ws.instGPUs = make([][]int, ni)
	}
	groups := ws.instGPUs[:ni]
	off := 0
	for gi, n := range cnt {
		groups[gi] = arena[off:off : off+n]
		off += n
	}
	for i, d := range devs {
		gi := instIdx[d.GPU.Inst.ID]
		groups[gi] = append(groups[gi], i)
	}

	// Position blocks are the `per`-sized consecutive ranges
	// [bi*per, min((bi+1)*per, len)) — pure arithmetic, nothing to store.
	np := len(positions)
	nb := (np + per - 1) / per
	blockLo := func(bi int) int { return bi * per }
	blockHi := func(bi int) int {
		if e := (bi + 1) * per; e < np {
			return e
		}
		return np
	}

	// Block-level weight = optimal within-pair matching value. Pairs where
	// the instance has fewer GPUs than the block needs are infeasible.
	// Feasible per-pair assignments append into one arena; paStart
	// remembers each pair's offset (-1 = infeasible).
	if cap(ws.paStart) < ni*nb {
		ws.paStart = make([]int, ni*nb)
	}
	paStart := ws.paStart[:ni*nb]
	for i := range paStart {
		paStart[i] = -1
	}
	paArena := ws.paArena[:0]
	w := ws.mat.sized(ni, nb)
	for ii := 0; ii < ni; ii++ {
		gset := groups[ii]
		for bi := 0; bi < nb; bi++ {
			lo, hi := blockLo(bi), blockHi(bi)
			bn := hi - lo
			if len(gset) < bn {
				w[ii][bi] = 0
				continue
			}
			m := ws.sub.sized(len(gset), bn)
			for a, di := range gset {
				for b := 0; b < bn; b++ {
					pj := lo + b
					mb, cb := edgeWeights(spec, devs[di], rects[pj], positions[pj], inherit)
					m[a][b] = mb + cb
					if bonus != nil {
						m[a][b] += bonus[di]
					}
				}
			}
			sa, err := solve(m)
			if err != nil {
				return nil, err
			}
			w[ii][bi] = sa.Weight
			paStart[ii*nb+bi] = len(paArena)
			for b := 0; b < bn; b++ {
				paArena = append(paArena, gset[sa.Right[b]])
			}
		}
	}
	ws.paArena = paArena
	top, err := solve(w)
	if err != nil {
		return nil, err
	}
	out := intsFor(&ws.left, np)
	for bi := 0; bi < nb; bi++ {
		ii := top.Right[bi]
		if ii < 0 || paStart[ii*nb+bi] < 0 {
			return nil, fmt.Errorf("reconfig: block %d has no feasible instance", bi)
		}
		lo, hi := blockLo(bi), blockHi(bi)
		pa := paArena[paStart[ii*nb+bi]:]
		for b := 0; b < hi-lo; b++ {
			out[lo+b] = pa[b]
		}
	}
	return out, nil
}

// scratchMatrix hands out km.Matrix views over one growing backing array,
// so the many small sub-matchings of a hierarchical match do not allocate a
// fresh matrix each. Every cell of a sized view is overwritten by the
// caller before use.
type scratchMatrix struct {
	rows  []([]float64)
	cells []float64
}

// sized returns an r×c matrix view, growing the backing storage as needed.
func (s *scratchMatrix) sized(r, c int) km.Matrix {
	if cap(s.cells) < r*c {
		s.cells = make([]float64, r*c)
	}
	if cap(s.rows) < r {
		s.rows = make([][]float64, r)
	}
	s.rows = s.rows[:r]
	cells := s.cells[:r*c]
	for i := 0; i < r; i++ {
		s.rows[i] = cells[i*c : (i+1)*c : (i+1)*c]
	}
	return km.Matrix(s.rows)
}

// KeepBatches implements the cache-discard rule of §3.3: when the new
// configuration serves fewer concurrent requests than the old one
// (D_{t+1}×B_{t+1} < D_t×B_t), keep the batches with the most decoding
// progress and discard the rest (they will be recomputed). Batches are
// identified by their old pipeline index; progress is the summed committed
// tokens. It returns old pipeline indices to keep, most-progressed first,
// capped at newD.
func KeepBatches(progressByOldPipeline map[int]int, newD int) []int {
	type kv struct{ d, prog int }
	var all []kv
	for d, p := range progressByOldPipeline {
		all = append(all, kv{d, p})
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].prog != all[j].prog {
			return all[i].prog > all[j].prog
		}
		return all[i].d < all[j].d
	})
	if len(all) > newD {
		all = all[:newD]
	}
	out := make([]int, 0, len(all))
	for _, x := range all {
		out = append(out, x.d)
	}
	sort.Ints(out)
	return out
}
