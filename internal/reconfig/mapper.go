package reconfig

import (
	"fmt"
	"sort"
	"sync"

	"spotserve/internal/cloud"
	"spotserve/internal/config"
	"spotserve/internal/km"
	"spotserve/internal/model"
)

// solverPool recycles KM solver workspaces across mappings: one
// reconfiguration runs up to #instances × #blocks sub-matchings plus the
// top-level matching, all through one pooled solver.
var solverPool = sync.Pool{New: func() any { return km.NewSolver() }}

// DeviceContext is the mapper's view of one GPU's context daemon: what
// model and cache context the device currently holds.
type DeviceContext struct {
	GPU *cloud.GPU
	// ModelCtx is the resident parameter shard (possibly empty).
	ModelCtx model.Rect
	// CachePipeline is the old pipeline index whose KV cache is resident
	// (-1 when none).
	CachePipeline int
	// CacheRect / CacheTokens describe the resident cache.
	CacheRect   model.Rect
	CacheTokens int
}

// MapperOptions tunes the device mapper.
type MapperOptions struct {
	// UseKM enables optimal Kuhn–Munkres matching; when false, devices
	// are assigned to positions in arbitrary (ID) order — the ablation
	// baseline of Figure 9.
	UseKM bool
	// Hierarchical enables the two-step intra-/inter-instance matching
	// for multi-GPU instances (§3.3 "two-step matching").
	Hierarchical bool
	// Inherit maps new pipeline index → old pipeline index whose
	// interrupted requests (and KV cache) the new pipeline adopts.
	// Pipelines absent from the map inherit nothing.
	Inherit map[int]int
	// KM, when non-nil, memoizes sub-matchings across reconfigurations
	// (the determinism-safe KM warm start — see km.Cache). Nil solves
	// cold through a pooled solver.
	KM *km.Cache
}

// Mapping is the device mapper's output.
type Mapping struct {
	Target config.Config
	// Assign binds every topology position of Target to a GPU.
	Assign map[config.Position]*cloud.GPU
	// Spare lists usable GPUs left out of the mesh (the candidate pool).
	Spare []*cloud.GPU
	// ReusedModelBytes / ReusedCacheBytes quantify context reuse achieved
	// by the matching (the KM objective value, split by kind).
	ReusedModelBytes float64
	ReusedCacheBytes float64
	// TotalModelBytes is the parameter bytes the full target mesh needs;
	// TotalModelBytes − ReusedModelBytes must be migrated or reloaded.
	TotalModelBytes float64
	// flat is Assign in Target.Positions() order (nil for mappings built
	// by hand); the planner's hot loops read it instead of the map.
	flat []*cloud.GPU
}

// gpuAt returns the GPU assigned to positions[i] (= pos), preferring the
// flat view when present.
func (m *Mapping) gpuAt(i int, pos config.Position) *cloud.GPU {
	if m.flat != nil {
		return m.flat[i]
	}
	return m.Assign[pos]
}

// edgeWeights computes the reusable model and cache bytes when placing
// device u at position v of the target configuration, whose context
// rectangle is want (precomputed once per matching).
func edgeWeights(spec model.Spec, u DeviceContext, want model.Rect, v config.Position, inherit map[int]int) (modelBytes, cacheBytes float64) {
	modelBytes = u.ModelCtx.OverlapParamBytes(spec, want)
	if u.CachePipeline >= 0 && u.CacheTokens > 0 {
		if oldD, ok := inherit[v.D]; ok && oldD == u.CachePipeline {
			inter := u.CacheRect.Intersect(want)
			if !inter.Empty() {
				cacheBytes = float64(u.CacheTokens) * spec.KVBytesPerTokenLayer() *
					float64(inter.Layers()) * inter.FracWidth()
			}
		}
	}
	return modelBytes, cacheBytes
}

// MapDevices maps available GPUs onto the pipeline-stage-shard positions of
// the target configuration, maximizing reusable context bytes. It returns
// an error when fewer GPUs are available than the target needs.
func MapDevices(spec model.Spec, devices []DeviceContext, target config.Config, opt MapperOptions) (Mapping, error) {
	if err := target.Validate(); err != nil {
		return Mapping{}, err
	}
	need := target.GPUs()
	if len(devices) < need {
		return Mapping{}, fmt.Errorf("reconfig: mapping needs %d GPUs, have %d", need, len(devices))
	}
	// Deterministic input order.
	devs := append([]DeviceContext(nil), devices...)
	sort.Slice(devs, func(i, j int) bool { return devs[i].GPU.ID < devs[j].GPU.ID })
	positions := target.Positions()

	m := Mapping{
		Target: target,
		Assign: make(map[config.Position]*cloud.GPU, need),
	}
	// Position rectangles are shared by every weight computation below.
	rects := make([]model.Rect, len(positions))
	for i, pos := range positions {
		rects[i] = model.PositionRect(spec, target.P, target.M, pos.P, pos.M)
		m.TotalModelBytes += rects[i].ParamBytes(spec)
	}

	// solve routes through the caller's KM memo when provided, else a
	// pooled cold solver. Both produce identical assignments (the memo
	// only replays exact recurrences).
	var solve func(km.Matrix) (km.Assignment, error)
	if opt.KM != nil {
		solve = opt.KM.Solve
	} else {
		sv := solverPool.Get().(*km.Solver)
		defer solverPool.Put(sv)
		solve = sv.Solve
	}

	bonus := speedBonus(devs)

	var left []int // indices into devs chosen for the mesh, aligned to positions
	var err error
	switch {
	case !opt.UseKM:
		left = identityAssign(len(positions))
	case opt.Hierarchical:
		left, err = hierarchicalMatch(solve, spec, devs, positions, rects, opt.Inherit, bonus)
		if err != nil {
			// Irregular instance shapes (partially preempted instances,
			// uneven blocks) break the block structure; fall back to the
			// globally optimal flat matching.
			left, err = flatMatch(solve, spec, devs, positions, rects, opt.Inherit, bonus)
		}
	default:
		left, err = flatMatch(solve, spec, devs, positions, rects, opt.Inherit, bonus)
	}
	if err != nil {
		return Mapping{}, err
	}

	used := make(map[int]bool, need)
	m.flat = make([]*cloud.GPU, len(positions))
	for pi, di := range left {
		pos := positions[pi]
		m.Assign[pos] = devs[di].GPU
		m.flat[pi] = devs[di].GPU
		used[di] = true
		mb, cb := edgeWeights(spec, devs[di], rects[pi], pos, opt.Inherit)
		m.ReusedModelBytes += mb
		m.ReusedCacheBytes += cb
	}
	for di := range devs {
		if !used[di] {
			m.Spare = append(m.Spare, devs[di].GPU)
		}
	}
	return m, nil
}

// identityAssign maps position i to device i.
func identityAssign(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	return out
}

// speedBonusBytes converts one unit of GPU speed multiplier into matching
// weight. It is small against real context reuse (a fraction of one layer's
// parameter bytes) so reuse always dominates, but breaks reuse ties toward
// the fast devices.
const speedBonusBytes = 16e6

// speedBonus returns a per-device weight bonus that steers the matching
// toward faster GPUs when the fleet mixes instance types: among devices
// with equal reusable context, KM then builds the mesh on the fastest
// devices and leaves the slow ones as spares. It returns nil for
// speed-homogeneous fleets, so their cost matrices — and the golden
// fingerprints — are bit-identical to the untyped baseline.
func speedBonus(devs []DeviceContext) []float64 {
	hetero := false
	for _, d := range devs {
		if d.GPU.Inst.GPUSpeed() != devs[0].GPU.Inst.GPUSpeed() {
			hetero = true
			break
		}
	}
	if !hetero {
		return nil
	}
	out := make([]float64, len(devs))
	for i, d := range devs {
		out[i] = d.GPU.Inst.GPUSpeed() * speedBonusBytes
	}
	return out
}

// flatMatch runs one global KM over all devices × positions.
func flatMatch(solve func(km.Matrix) (km.Assignment, error), spec model.Spec, devs []DeviceContext, positions []config.Position, rects []model.Rect, inherit map[int]int, bonus []float64) ([]int, error) {
	w := km.NewMatrix(len(devs), len(positions))
	for i, u := range devs {
		for j, v := range positions {
			mb, cb := edgeWeights(spec, u, rects[j], v, inherit)
			w[i][j] = mb + cb
			if bonus != nil {
				w[i][j] += bonus[i]
			}
		}
	}
	a, err := solve(w)
	if err != nil {
		return nil, err
	}
	out := make([]int, len(positions))
	for j, i := range a.Right {
		if i < 0 {
			return nil, fmt.Errorf("reconfig: position %v unmatched", positions[j])
		}
		out[j] = i
	}
	return out, nil
}

// hierarchicalMatch exploits the instance hierarchy: step 1 matches
// instances to blocks of GPUsPerInstance consecutive positions with KM over
// block-level weights (themselves optimal 4×4 matchings); step 2 solves the
// per-pair GPU-level assignment. Consecutive positions share a stage
// whenever M ≥ GPUs/instance, so tensor-parallel all-reduce groups land on
// the fast intra-instance interconnect.
func hierarchicalMatch(solve func(km.Matrix) (km.Assignment, error), spec model.Spec, devs []DeviceContext, positions []config.Position, rects []model.Rect, inherit map[int]int, bonus []float64) ([]int, error) {
	// Group devices by instance (preserving device order).
	instOrder := []int64{}
	byInst := map[int64][]int{}
	for i, d := range devs {
		id := d.GPU.Inst.ID
		if _, ok := byInst[id]; !ok {
			instOrder = append(instOrder, id)
		}
		byInst[id] = append(byInst[id], i)
	}
	per := 0
	for _, g := range byInst {
		if len(g) > per {
			per = len(g)
		}
	}
	if per == 0 {
		return nil, fmt.Errorf("reconfig: no devices")
	}
	// Position blocks of `per` consecutive positions.
	var blocks [][]int
	for s := 0; s < len(positions); s += per {
		e := s + per
		if e > len(positions) {
			e = len(positions)
		}
		idx := make([]int, 0, e-s)
		for k := s; k < e; k++ {
			idx = append(idx, k)
		}
		blocks = append(blocks, idx)
	}

	// Block-level weight = optimal within-pair matching value. Pairs
	// where the instance has fewer GPUs than the block needs are
	// infeasible.
	nb := len(blocks)
	pairAssign := make([][]int, len(instOrder)*nb) // (instIdx, blockIdx) → per-position device index; nil = infeasible
	w := km.NewMatrix(len(instOrder), nb)
	var sub scratchMatrix // one buffer reused for every instance×block pair
	for ii, instID := range instOrder {
		gset := byInst[instID]
		for bi, block := range blocks {
			if len(gset) < len(block) {
				w[ii][bi] = 0
				continue
			}
			m := sub.sized(len(gset), len(block))
			for a, di := range gset {
				for b, pj := range block {
					mb, cb := edgeWeights(spec, devs[di], rects[pj], positions[pj], inherit)
					m[a][b] = mb + cb
					if bonus != nil {
						m[a][b] += bonus[di]
					}
				}
			}
			sa, err := solve(m)
			if err != nil {
				return nil, err
			}
			w[ii][bi] = sa.Weight
			assign := make([]int, len(block))
			for b := range block {
				assign[b] = gset[sa.Right[b]]
			}
			pairAssign[ii*nb+bi] = assign
		}
	}
	top, err := solve(w)
	if err != nil {
		return nil, err
	}
	out := make([]int, len(positions))
	for bi, block := range blocks {
		ii := top.Right[bi]
		if ii < 0 || pairAssign[ii*nb+bi] == nil {
			return nil, fmt.Errorf("reconfig: block %d has no feasible instance", bi)
		}
		assign := pairAssign[ii*nb+bi]
		for b, pj := range block {
			out[pj] = assign[b]
		}
	}
	return out, nil
}

// scratchMatrix hands out km.Matrix views over one growing backing array,
// so the many small sub-matchings of a hierarchical match do not allocate a
// fresh matrix each. Every cell of a sized view is overwritten by the
// caller before use.
type scratchMatrix struct {
	rows  []([]float64)
	cells []float64
}

// sized returns an r×c matrix view, growing the backing storage as needed.
func (s *scratchMatrix) sized(r, c int) km.Matrix {
	if cap(s.cells) < r*c {
		s.cells = make([]float64, r*c)
	}
	if cap(s.rows) < r {
		s.rows = make([][]float64, r)
	}
	s.rows = s.rows[:r]
	cells := s.cells[:r*c]
	for i := 0; i < r; i++ {
		s.rows[i] = cells[i*c : (i+1)*c : (i+1)*c]
	}
	return km.Matrix(s.rows)
}

// KeepBatches implements the cache-discard rule of §3.3: when the new
// configuration serves fewer concurrent requests than the old one
// (D_{t+1}×B_{t+1} < D_t×B_t), keep the batches with the most decoding
// progress and discard the rest (they will be recomputed). Batches are
// identified by their old pipeline index; progress is the summed committed
// tokens. It returns old pipeline indices to keep, most-progressed first,
// capped at newD.
func KeepBatches(progressByOldPipeline map[int]int, newD int) []int {
	type kv struct{ d, prog int }
	var all []kv
	for d, p := range progressByOldPipeline {
		all = append(all, kv{d, p})
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].prog != all[j].prog {
			return all[i].prog > all[j].prog
		}
		return all[i].d < all[j].d
	})
	if len(all) > newD {
		all = all[:newD]
	}
	out := make([]int, 0, len(all))
	for _, x := range all {
		out = append(out, x.d)
	}
	sort.Ints(out)
	return out
}
