package reconfig

import (
	"math"
	"testing"

	"spotserve/internal/cloud"
	"spotserve/internal/config"
	"spotserve/internal/cost"
	"spotserve/internal/model"
)

func planFixture(t *testing.T, spec model.Spec, old, target config.Config, nInst int) ([]DeviceContext, Mapping, *cost.Estimator) {
	t.Helper()
	gpus := mkGPUs(nInst, 4)
	devs := devicesFor(spec, gpus, old)
	if target.GPUs() > len(devs) {
		t.Fatalf("fixture: target needs %d GPUs, have %d", target.GPUs(), len(devs))
	}
	m, err := MapDevices(spec, devs, target, MapperOptions{UseKM: true})
	if err != nil {
		t.Fatal(err)
	}
	return devs, m, cost.NewEstimator(cost.DefaultParams(), spec)
}

func defaultPlanOpts() PlanOptions {
	return PlanOptions{
		Progressive:  true,
		MemOpt:       true,
		UmaxBytes:    cost.DefaultParams().BufMaxBytes,
		MigrateCache: true,
	}
}

func TestPlanNoopWhenConfigUnchanged(t *testing.T) {
	spec := model.GPT20B
	cfg := config.Config{D: 1, P: 3, M: 4, B: 1}
	devs, m, est := planFixture(t, spec, cfg, cfg, 3)
	plan, err := PlanMigration(spec, est, devs, m, defaultPlanOpts())
	if err != nil {
		t.Fatal(err)
	}
	if plan.TotalBytes > 1 {
		t.Fatalf("identical config migrated %v bytes", plan.TotalBytes)
	}
	tl := plan.Schedule(est, true)
	if tl.Duration > 1e-9 {
		t.Fatalf("no-op migration took %v", tl.Duration)
	}
}

func TestPlanCoversMissingContext(t *testing.T) {
	spec := model.GPT20B
	old := config.Config{D: 1, P: 2, M: 8, B: 1}
	target := config.Config{D: 1, P: 3, M: 4, B: 1}
	devs, m, est := planFixture(t, spec, old, target, 4)
	plan, err := PlanMigration(spec, est, devs, m, defaultPlanOpts())
	if err != nil {
		t.Fatal(err)
	}
	// Moved + reused = total needed by the mesh.
	if math.Abs((plan.TotalBytes+m.ReusedModelBytes)-m.TotalModelBytes) > 2 {
		t.Fatalf("moved %v + reused %v != needed %v",
			plan.TotalBytes, m.ReusedModelBytes, m.TotalModelBytes)
	}
	// Live replicas exist for every layer: nothing from storage.
	if plan.StorageBytes != 0 {
		t.Fatalf("storage bytes = %v with live sources available", plan.StorageBytes)
	}
	if len(plan.LayerOrder) == 0 {
		t.Fatal("no layers ordered")
	}
}

func TestPlanStorageFallbackWhenNoReplica(t *testing.T) {
	// Cold start: no device holds anything, so everything loads from
	// storage (the §4.2 total-context-loss path).
	spec := model.GPT20B
	target := config.Config{D: 1, P: 3, M: 4, B: 1}
	gpus := mkGPUs(3, 4)
	devs := make([]DeviceContext, len(gpus))
	for i, g := range gpus {
		devs[i] = DeviceContext{GPU: g, CachePipeline: -1}
	}
	m, err := MapDevices(spec, devs, target, MapperOptions{UseKM: true})
	if err != nil {
		t.Fatal(err)
	}
	est := cost.NewEstimator(cost.DefaultParams(), spec)
	plan, err := PlanMigration(spec, est, devs, m, defaultPlanOpts())
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(plan.StorageBytes-spec.ParamBytes) > 2 {
		t.Fatalf("storage bytes = %v, want full model %v", plan.StorageBytes, spec.ParamBytes)
	}
	tl := plan.Schedule(est, true)
	// Cold load must be in the minutes regime — the cost the paper's
	// context reuse avoids (~15 s/GPU at 0.4 GB/s for ~6.2 GB shards).
	if tl.Duration < 10 {
		t.Fatalf("cold load took only %v s", tl.Duration)
	}
}

func TestProgressiveStagesReadyEarlier(t *testing.T) {
	spec := model.GPT20B
	old := config.Config{D: 1, P: 2, M: 8, B: 1}
	target := config.Config{D: 1, P: 3, M: 4, B: 1}
	devs, m, est := planFixture(t, spec, old, target, 4)
	plan, err := PlanMigration(spec, est, devs, m, defaultPlanOpts())
	if err != nil {
		t.Fatal(err)
	}
	prog := plan.Schedule(est, true)
	blk := plan.Schedule(est, false)
	if math.Abs(prog.Duration-blk.Duration) > 1e-9 {
		t.Fatalf("total duration should match: %v vs %v", prog.Duration, blk.Duration)
	}
	// Progressive: at least one stage ready strictly before the end.
	early := false
	for p, r := range prog.StageReady {
		if r < prog.Duration-1e-9 {
			early = true
		}
		if blk.StageReady[p] != blk.Duration {
			t.Fatal("blocking schedule staggered stages")
		}
	}
	if !early {
		t.Fatal("progressive schedule has no early stage")
	}
}

func TestMemOptRespectsUmax(t *testing.T) {
	spec := model.GPT20B
	old := config.Config{D: 1, P: 2, M: 8, B: 1}
	target := config.Config{D: 1, P: 3, M: 4, B: 1}
	devs, m, est := planFixture(t, spec, old, target, 4)

	umax := 0.6 * model.GB
	opts := defaultPlanOpts()
	opts.UmaxBytes = umax
	planOpt, err := PlanMigration(spec, est, devs, m, opts)
	if err != nil {
		t.Fatal(err)
	}
	opts.MemOpt = false
	planNaive, err := PlanMigration(spec, est, devs, m, opts)
	if err != nil {
		t.Fatal(err)
	}
	peak := func(p *Plan) float64 {
		mx := 0.0
		for _, v := range p.PeakBufferBytes {
			if v > mx {
				mx = v
			}
		}
		return mx
	}
	if peak(planOpt) > peak(planNaive)+1 {
		t.Fatalf("memopt peak %v above naive %v", peak(planOpt), peak(planNaive))
	}
	// Both orders must cover the same layers.
	if len(planOpt.LayerOrder) != len(planNaive.LayerOrder) {
		t.Fatalf("order lengths differ: %d vs %d",
			len(planOpt.LayerOrder), len(planNaive.LayerOrder))
	}
	seen := map[int]bool{}
	for _, l := range planOpt.LayerOrder {
		if seen[l] {
			t.Fatalf("layer %d ordered twice", l)
		}
		seen[l] = true
	}
}

func TestMemOptHalvesPeakOnBackwardShift(t *testing.T) {
	// Preempting the instance with the model's front shards forces stage
	// boundaries backward; Algorithm 2's ordering must then beat the
	// naive ascending order on peak buffer (it interleaves releases).
	spec := model.GPT20B
	est := cost.NewEstimator(cost.DefaultParams(), spec)
	old := config.Config{D: 1, P: 2, M: 8, B: 1}
	target := config.Config{D: 1, P: 3, M: 4, B: 1}
	gpus := mkGPUs(4, 4)
	devs := devicesFor(spec, gpus, old)[4:]
	mapping, err := MapDevices(spec, devs, target, MapperOptions{UseKM: true})
	if err != nil {
		t.Fatal(err)
	}
	peak := func(memopt bool) float64 {
		plan, err := PlanMigration(spec, est, devs, mapping, PlanOptions{
			Progressive: true, MemOpt: memopt, UmaxBytes: 1e9,
		})
		if err != nil {
			t.Fatal(err)
		}
		mx := 0.0
		for _, v := range plan.PeakBufferBytes {
			if v > mx {
				mx = v
			}
		}
		return mx
	}
	naive, opt := peak(false), peak(true)
	if opt >= naive*0.75 {
		t.Fatalf("memopt peak %v not clearly below naive %v", opt, naive)
	}
}

func TestCacheTransfersPrioritizedAndSized(t *testing.T) {
	spec := model.GPT20B
	old := config.Config{D: 1, P: 2, M: 8, B: 1}
	target := config.Config{D: 1, P: 3, M: 4, B: 1}
	gpus := mkGPUs(4, 4)
	devs := devicesFor(spec, gpus, old)
	// The old pipeline 0 carried a batch with 1200 cached tokens.
	for i := 0; i < old.GPUs(); i++ {
		devs[i].CachePipeline = 0
		devs[i].CacheRect = devs[i].ModelCtx
		devs[i].CacheTokens = 1200
	}
	m, err := MapDevices(spec, devs, target, MapperOptions{UseKM: true, Inherit: map[int]int{0: 0}})
	if err != nil {
		t.Fatal(err)
	}
	est := cost.NewEstimator(cost.DefaultParams(), spec)
	opts0 := defaultPlanOpts()
	opts0.Inherit = map[int]int{0: 0}
	plan, err := PlanMigration(spec, est, devs, m, opts0)
	if err != nil {
		t.Fatal(err)
	}
	var cacheBytes float64
	for _, tr := range plan.Cache {
		if tr.Layer != CacheLayer {
			t.Fatal("cache transfer mislabeled")
		}
		cacheBytes += tr.Bytes
	}
	// Full cache = tokens × KV/token across all layers; moved + reused = full.
	full := 1200 * spec.KVBytesPerToken()
	if cacheBytes+m.ReusedCacheBytes < full*0.99 || cacheBytes+m.ReusedCacheBytes > full*1.01 {
		t.Fatalf("cache moved %v + reused %v != full %v", cacheBytes, m.ReusedCacheBytes, full)
	}
	// Cache must complete no later than the whole migration.
	tl := plan.Schedule(est, true)
	if tl.CacheDone > tl.Duration+1e-9 {
		t.Fatal("cache finished after migration end")
	}
	// Disabling cache migration removes the transfers.
	opts := opts0
	opts.MigrateCache = false
	plan2, err := PlanMigration(spec, est, devs, m, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(plan2.Cache) != 0 {
		t.Fatal("cache transfers present with MigrateCache=false")
	}
}

func TestMigrationFarCheaperThanReload(t *testing.T) {
	// The end-to-end premise (§3): context migration during reconfig is
	// much cheaper than the Reparallelization baseline's full restart.
	spec := model.GPT20B
	old := config.Config{D: 1, P: 2, M: 8, B: 1}
	target := config.Config{D: 1, P: 3, M: 4, B: 1}
	devs, m, est := planFixture(t, spec, old, target, 4)
	plan, err := PlanMigration(spec, est, devs, m, defaultPlanOpts())
	if err != nil {
		t.Fatal(err)
	}
	tl := plan.Schedule(est, true)
	reload := est.ReloadTime(target.P, target.M)
	if tl.Duration >= reload/2 {
		t.Fatalf("migration %v s not clearly cheaper than reload %v s", tl.Duration, reload)
	}
}

func TestScheduleDeterministic(t *testing.T) {
	spec := model.LLaMA30B
	old := config.Config{D: 1, P: 2, M: 8, B: 1}
	target := config.Config{D: 1, P: 4, M: 4, B: 1}
	devs, m, est := planFixture(t, spec, old, target, 4)
	p1, err := PlanMigration(spec, est, devs, m, defaultPlanOpts())
	if err != nil {
		t.Fatal(err)
	}
	p2, _ := PlanMigration(spec, est, devs, m, defaultPlanOpts())
	t1, t2 := p1.Schedule(est, true), p2.Schedule(est, true)
	if t1.Duration != t2.Duration || t1.CacheDone != t2.CacheDone {
		t.Fatal("schedule not deterministic")
	}
	for i := range t1.StageReady {
		if t1.StageReady[i] != t2.StageReady[i] {
			t.Fatal("stage readiness not deterministic")
		}
	}
}

// TestFindSourceRequiresMissingOverlap pins the fully-preempted-source
// edge: a live device holding only the sub-rectangle the receiver already
// has cannot serve as a migration source. Before the fix the planner named
// an arbitrary overlapping device as From — simulating a fast peer copy of
// bytes that peer never held; the transfer must instead fall through to a
// cold storage fetch.
func TestFindSourceRequiresMissingOverlap(t *testing.T) {
	spec := model.OPT6B7
	target := config.Config{D: 1, P: 1, M: 2, B: 1}
	gpus := mkGPUs(2, 4)
	quarter := model.Rect{LayerLo: 0, LayerHi: spec.Layers, FracLo: 0, FracHi: 0.25}
	devs := []DeviceContext{
		// Receiver for position (0,0,0) wants [0, 0.5) but holds [0, 0.25).
		{GPU: gpus[0], ModelCtx: quarter, CachePipeline: -1},
		// A replica of exactly what the receiver already has: useless as a
		// source for the missing [0.25, 0.5) — all real holders of that
		// sub-rectangle were preempted.
		{GPU: gpus[1], ModelCtx: quarter, CachePipeline: -1},
		// Holder of position (0,0,1)'s full [0.5, 1) shard (no transfer).
		{GPU: gpus[2], ModelCtx: model.Rect{LayerLo: 0, LayerHi: spec.Layers, FracLo: 0.5, FracHi: 1}, CachePipeline: -1},
	}
	mapping := Mapping{
		Target: target,
		Assign: map[config.Position]*cloud.GPU{
			{D: 0, P: 0, M: 0}: gpus[0],
			{D: 0, P: 0, M: 1}: gpus[2],
		},
	}
	est := cost.NewEstimator(cost.DefaultParams(), spec)
	plan, err := PlanMigration(spec, est, devs, mapping, defaultPlanOpts())
	if err != nil {
		t.Fatal(err)
	}
	if plan.StorageBytes <= 0 {
		t.Fatal("missing context with no live holder must load from storage")
	}
	for _, trs := range plan.ByLayer {
		for _, tr := range trs {
			if tr.To != gpus[0] {
				continue
			}
			if tr.From != nil {
				t.Fatalf("transfer to receiver sourced from gpu %d, which holds only the receiver's own sub-rect", tr.From.ID)
			}
		}
	}

	// Control: once any live device holds part of the missing interval, it
	// must be chosen over storage.
	devs[1].ModelCtx = model.Rect{LayerLo: 0, LayerHi: spec.Layers, FracLo: 0.25, FracHi: 0.5}
	plan2, err := PlanMigration(spec, est, devs, mapping, defaultPlanOpts())
	if err != nil {
		t.Fatal(err)
	}
	if plan2.StorageBytes != 0 {
		t.Fatalf("storage fetch of %v bytes despite a live holder of the missing sub-rect", plan2.StorageBytes)
	}
	for _, trs := range plan2.ByLayer {
		for _, tr := range trs {
			if tr.To == gpus[0] && tr.From != gpus[1] {
				t.Fatalf("transfer to receiver sourced from %v, want the missing-rect holder", tr.From)
			}
		}
	}
}
