package reconfig

import (
	"fmt"
	"math"
	"sort"
	"sync"

	"spotserve/internal/cloud"
	"spotserve/internal/config"
	"spotserve/internal/cost"
	"spotserve/internal/model"
)

// Transfer is one context-migration instruction: move Bytes of layer
// context (or KV cache when Layer < 0) to GPU To. From is nil when no live
// replica exists and the context must be fetched from cloud storage — the
// §4.2 fault-tolerance fallback.
type Transfer struct {
	// Layer is the transformer layer index, or CacheLayer for KV cache.
	Layer int
	To    *cloud.GPU
	From  *cloud.GPU
	Bytes float64
	// Inter marks a transfer crossing the instance network.
	Inter bool
}

// CacheLayer marks cache-context transfers in a Plan.
const CacheLayer = -1

// PlanOptions tunes the migration planner.
type PlanOptions struct {
	// Progressive enables the progressive migration schedule: front
	// pipeline stages start serving while later stages still migrate.
	Progressive bool
	// MemOpt enables the memory-optimized layer ordering of Algorithm 2.
	MemOpt bool
	// UmaxBytes is the per-instance migration-buffer cap U_max.
	UmaxBytes float64
	// MigrateCache prioritizes KV-cache context so interrupted requests
	// resume without recomputation (stateful recovery, §4).
	MigrateCache bool
	// Inherit maps new pipeline index → old pipeline index whose KV
	// cache must follow the batch (same map given to the mapper).
	Inherit map[int]int
}

// Plan is a complete context-migration plan for one configuration update.
type Plan struct {
	Target config.Config
	// Cache lists the prioritized cache-context transfers (§3.4: cache
	// first, for interruption fault tolerance).
	Cache []Transfer
	// LayerOrder is the layer migration order O from Algorithm 2.
	LayerOrder []int
	// ByLayer groups parameter transfers per layer, indexed by layer
	// (empty for layers with nothing to move).
	ByLayer [][]Transfer
	// StageOfLayer maps each layer to its pipeline stage in Target,
	// indexed by layer.
	StageOfLayer []int
	// TotalBytes / StorageBytes summarize data movement.
	TotalBytes   float64
	StorageBytes float64
	// PeakBufferBytes is the highest in-flight buffer usage per instance
	// under the chosen order.
	PeakBufferBytes map[int64]float64
}

// paramPlan is the parameter-transfer portion of a migration plan: every
// quantity that depends only on the devices' *model* contexts and the
// mapping — not on KV-cache state. It is what the Engine memoizes, because
// it stays valid while pipelines keep decoding through the JIT window.
type paramPlan struct {
	byLayer      [][]Transfer
	layerOrder   []int
	stageOfLayer []int
	totalBytes   float64
	storageBytes float64
	peakBuffer   map[int64]float64
}

// planWS pools every transient structure a plan build needs — the device
// index, the per-layer counting passes, the source index and the whole of
// Algorithm 2's ordering scratch. Only strictly call-local storage lives
// here: everything the memoized paramPlan (or the returned Plan) retains
// is allocated fresh, since plans are shared across cache hits.
type planWS struct {
	devOf     map[int64]int
	counts    []int
	src       sourceIndex
	srcCounts []int
	srcArena  []srcEntry
	// orderLayers scratch.
	newRect  []model.Rect
	byID     []int
	hcounts  []int
	harena   []int
	holders  [][]int
	instIdx  map[int64]int
	instIDs  []int64
	instCap  []float64
	dArena   []instDelta
	dOff     []int
	layerPos []int
	scratch  []float64
	touched  []int
	usage    []float64
	peaks    []float64
	layers   []int
	deferred []int
}

var planWSPool = sync.Pool{New: func() any { return &planWS{} }}

// devMap returns the cleared reusable GPU-ID→device-index map.
func (w *planWS) devMap(n int) map[int64]int {
	if w.devOf == nil {
		w.devOf = make(map[int64]int, n)
	} else {
		clear(w.devOf)
	}
	return w.devOf
}

// intsFor returns a zeroed int slice of length n backed by *buf.
func intsFor(buf *[]int, n int) []int {
	s := *buf
	if cap(s) < n {
		s = make([]int, n)
	} else {
		s = s[:n]
		for i := range s {
			s[i] = 0
		}
	}
	*buf = s
	return s
}

// floatsFor returns a zeroed float64 slice of length n backed by *buf.
func floatsFor(buf *[]float64, n int) []float64 {
	s := *buf
	if cap(s) < n {
		s = make([]float64, n)
	} else {
		s = s[:n]
		for i := range s {
			s[i] = 0
		}
	}
	*buf = s
	return s
}

// PlanMigration builds the migration plan that realizes `mapping` starting
// from the devices' current contexts. devices must include every GPU in the
// mapping (sources may be any device in the list, including ones about to
// be preempted — they remain usable during the grace period).
func PlanMigration(spec model.Spec, est *cost.Estimator, devices []DeviceContext, mapping Mapping, opt PlanOptions) (*Plan, error) {
	if err := mapping.Target.Validate(); err != nil {
		return nil, err
	}
	pp, err := buildParamPlan(spec, devices, mapping, opt)
	if err != nil {
		return nil, err
	}
	return assemblePlan(spec, pp, devices, mapping, opt), nil
}

// srcEntry is one device's holding of a single layer in the source index.
type srcEntry struct {
	dev            int // index into the devices slice
	fracLo, fracHi float64
}

// instDelta is one instance's net memory change when a layer migrates:
// incoming transfer bytes minus releasable old context.
type instDelta struct {
	idx int
	by  float64
}

// sourceIndex is the persistent rect→device structure behind source
// selection: for every transformer layer, the devices holding context of
// that layer with their shard-fraction intervals, in devices order. One
// index is built per parameter plan (O(total held layers)) and replaces
// the previous per-transfer scan over every device. Its storage is pooled
// workspace: a count pass sizes one arena and the per-layer lists are
// views into it, so building the index allocates nothing in steady state.
type sourceIndex struct {
	devices []DeviceContext
	holders [][]srcEntry // per layer
}

func newSourceIndex(spec model.Spec, devices []DeviceContext, ws *planWS) *sourceIndex {
	counts := intsFor(&ws.srcCounts, spec.Layers)
	total := 0
	for _, dc := range devices {
		r := dc.ModelCtx
		if r.Empty() {
			continue
		}
		hi := r.LayerHi
		if hi > spec.Layers {
			hi = spec.Layers
		}
		for l := r.LayerLo; l < hi; l++ {
			counts[l]++
			total++
		}
	}
	if cap(ws.srcArena) < total {
		ws.srcArena = make([]srcEntry, 0, total)
	}
	arena := ws.srcArena[:0]
	if cap(ws.src.holders) < spec.Layers {
		ws.src.holders = make([][]srcEntry, spec.Layers)
	}
	holders := ws.src.holders[:spec.Layers]
	off := 0
	for l, n := range counts {
		if n > 0 {
			holders[l] = arena[off:off : off+n]
			off += n
		} else {
			holders[l] = nil
		}
	}
	for di, dc := range devices {
		r := dc.ModelCtx
		if r.Empty() {
			continue
		}
		hi := r.LayerHi
		if hi > spec.Layers {
			hi = spec.Layers
		}
		for l := r.LayerLo; l < hi; l++ {
			holders[l] = append(holders[l], srcEntry{dev: di, fracLo: r.FracLo, fracHi: r.FracHi})
		}
	}
	ws.src.devices = devices
	ws.src.holders = holders
	return &ws.src
}

// findSource locates a live device holding model context overlapping the
// *missing* part of the receiver's wanted interval [wantLo, wantHi) at
// layer — the part outside the receiver's already-held [heldLo, heldHi)
// (pass heldLo >= heldHi when nothing is held). A device holding only what
// the receiver already has cannot supply the missing bytes; when every
// holder of the missing sub-rectangle has been preempted the transfer
// falls through to a cold storage fetch (nil source) instead of naming an
// arbitrary live device as the source. Devices on the receiver's own
// instance are preferred; ties go to the earliest device in input order.
func (idx *sourceIndex) findSource(layer int, to *cloud.GPU, wantLo, wantHi, heldLo, heldHi float64) *cloud.GPU {
	var fallback *cloud.GPU
	for _, e := range idx.holders[layer] {
		dc := &idx.devices[e.dev]
		if dc.GPU.ID == to.ID {
			continue
		}
		if !overlapsMissing(e.fracLo, e.fracHi, wantLo, wantHi, heldLo, heldHi) {
			continue
		}
		if dc.GPU.Inst.ID == to.Inst.ID {
			return dc.GPU
		}
		if fallback == nil {
			fallback = dc.GPU
		}
	}
	return fallback
}

// missingAt returns the parameter bytes position `want` is missing at
// `layer` given the receiver's held rect, plus the held frac interval at
// that layer (zero-width when nothing is held). heldBytes reproduces
// held.OverlapParamBytes(spec, want.LayerRect(layer)) with the same float
// operations, so `missing` is bit-identical to the historical computation.
func missingAt(held, want model.Rect, layer int, wantBytes, layerParam float64) (missing, heldLo, heldHi float64) {
	heldBytes := 0.0
	if layer >= held.LayerLo && layer < held.LayerHi {
		lo, hi := maxf(held.FracLo, want.FracLo), minf(held.FracHi, want.FracHi)
		if hi > lo {
			heldBytes = (hi - lo) * layerParam
			heldLo, heldHi = lo, hi
		}
	}
	return wantBytes - heldBytes, heldLo, heldHi
}

// overlapsMissing reports whether [lo, hi) intersects the wanted interval
// minus the held interval, i.e. [wantLo, wantHi) \ [heldLo, heldHi).
func overlapsMissing(lo, hi, wantLo, wantHi, heldLo, heldHi float64) bool {
	if heldHi <= heldLo {
		// Nothing held: any overlap with the wanted interval counts.
		return hi > wantLo && lo < wantHi
	}
	// Left remainder [wantLo, min(heldLo, wantHi)).
	if r := minf(heldLo, wantHi); r > wantLo && hi > wantLo && lo < r {
		return true
	}
	// Right remainder [max(heldHi, wantLo), wantHi).
	if l := maxf(heldHi, wantLo); wantHi > l && hi > l && lo < wantHi {
		return true
	}
	return false
}

// buildParamPlan computes the parameter transfers, their source selection
// and Algorithm 2's layer order. It reads only the devices' model contexts.
func buildParamPlan(spec model.Spec, devices []DeviceContext, mapping Mapping, opt PlanOptions) (*paramPlan, error) {
	ws := planWSPool.Get().(*planWS)
	defer planWSPool.Put(ws)
	target := mapping.Target
	devOf := ws.devMap(len(devices))
	for i, d := range devices {
		devOf[d.GPU.ID] = i
	}

	pp := &paramPlan{
		byLayer:      make([][]Transfer, spec.Layers),
		stageOfLayer: make([]int, spec.Layers),
		peakBuffer:   make(map[int64]float64),
	}
	for l := 0; l < spec.Layers; l++ {
		pp.stageOfLayer[l] = model.StageOf(spec.Layers, target.P, l)
	}

	idx := newSourceIndex(spec, devices, ws)
	layerParam := spec.LayerParamBytes()

	// Deterministic position order.
	positions := target.Positions()

	// Counting pass: transfers per layer, so the fill pass appends into
	// exactly-sized arena slices instead of growing per-layer slices
	// through the map.
	counts := intsFor(&ws.counts, spec.Layers)
	total := 0
	for pi, pos := range positions {
		gpu := mapping.gpuAt(pi, pos)
		if gpu == nil {
			return nil, fmt.Errorf("reconfig: plan missing GPU for %v", pos)
		}
		var held model.Rect
		if di, ok := devOf[gpu.ID]; ok {
			held = devices[di].ModelCtx
		}
		want := model.PositionRect(spec, target.P, target.M, pos.P, pos.M)
		wantBytes := want.FracWidth() * layerParam // one layer's slice of the rect
		for layer := want.LayerLo; layer < want.LayerHi; layer++ {
			if missing, _, _ := missingAt(held, want, layer, wantBytes, layerParam); missing > 1 {
				counts[layer]++
				total++
			}
		}
	}
	arena := make([]Transfer, total)
	off := 0
	for l, n := range counts {
		if n > 0 {
			pp.byLayer[l] = arena[off:off : off+n]
			off += n
		}
	}

	// Fill pass: per (position, layer) compute missing bytes and select a
	// live source through the layer index.
	for pi, pos := range positions {
		gpu := mapping.gpuAt(pi, pos)
		var held model.Rect
		if di, ok := devOf[gpu.ID]; ok {
			held = devices[di].ModelCtx
		}
		want := model.PositionRect(spec, target.P, target.M, pos.P, pos.M)
		wantBytes := want.FracWidth() * layerParam
		for layer := want.LayerLo; layer < want.LayerHi; layer++ {
			missing, heldLo, heldHi := missingAt(held, want, layer, wantBytes, layerParam)
			if missing <= 1 { // sub-byte float residue
				continue
			}
			src := idx.findSource(layer, gpu, want.FracLo, want.FracHi, heldLo, heldHi)
			tr := Transfer{
				Layer: layer,
				To:    gpu,
				From:  src,
				Bytes: missing,
				Inter: src == nil || src.Inst.ID != gpu.Inst.ID,
			}
			if src == nil {
				pp.storageBytes += missing
			}
			pp.byLayer[layer] = append(pp.byLayer[layer], tr)
			pp.totalBytes += missing
		}
	}

	pp.layerOrder = orderLayers(spec, pp, devices, devOf, mapping, positions, opt, ws)
	return pp, nil
}

// assemblePlan combines a (possibly memoized) parameter plan with freshly
// computed cache-context transfers. The Plan shares the parameter plan's
// structures; callers treat plans as read-only.
func assemblePlan(spec model.Spec, pp *paramPlan, devices []DeviceContext, mapping Mapping, opt PlanOptions) *Plan {
	plan := &Plan{
		Target:          mapping.Target,
		LayerOrder:      pp.layerOrder,
		ByLayer:         pp.byLayer,
		StageOfLayer:    pp.stageOfLayer,
		TotalBytes:      pp.totalBytes,
		StorageBytes:    pp.storageBytes,
		PeakBufferBytes: pp.peakBuffer,
	}
	if !opt.MigrateCache || len(opt.Inherit) == 0 {
		return plan
	}
	// Cache transfers (prioritized): every position of an inheriting
	// pipeline needs the cache slice of its (layers × frac) rectangle.
	target := mapping.Target
	ws := planWSPool.Get().(*planWS)
	defer planWSPool.Put(ws)
	devOf := ws.devMap(len(devices))
	for i, d := range devices {
		devOf[d.GPU.ID] = i
	}
	for pi, pos := range target.Positions() {
		gpu := mapping.gpuAt(pi, pos)
		oldD, ok := opt.Inherit[pos.D]
		if !ok {
			continue
		}
		want := model.PositionRect(spec, target.P, target.M, pos.P, pos.M)
		tokens, src := cacheSource(devices, oldD, want)
		if tokens == 0 {
			continue
		}
		needBytes := float64(tokens) * spec.KVBytesPerTokenLayer() *
			float64(want.Layers()) * want.FracWidth()
		// Subtract cache the receiver already holds for this batch.
		if di, ok := devOf[gpu.ID]; ok {
			dc := devices[di]
			if dc.CachePipeline == oldD {
				inter := dc.CacheRect.Intersect(want)
				if !inter.Empty() {
					needBytes -= float64(dc.CacheTokens) * spec.KVBytesPerTokenLayer() *
						float64(inter.Layers()) * inter.FracWidth()
				}
			}
		}
		if needBytes <= 1 {
			continue
		}
		tr := Transfer{
			Layer: CacheLayer,
			To:    gpu,
			From:  src,
			Bytes: needBytes,
			Inter: src == nil || src.Inst.ID != gpu.Inst.ID,
		}
		plan.Cache = append(plan.Cache, tr)
		plan.TotalBytes += needBytes
	}
	return plan
}

// cacheSource finds a device holding cache of old pipeline d overlapping
// rect, returning its token count and GPU.
func cacheSource(devices []DeviceContext, oldD int, want model.Rect) (int, *cloud.GPU) {
	for _, dc := range devices {
		if dc.CachePipeline != oldD || dc.CacheTokens == 0 {
			continue
		}
		if !dc.CacheRect.Intersect(want).Empty() {
			return dc.CacheTokens, dc.GPU
		}
	}
	return 0, nil
}

// orderLayers implements Algorithm 2's MemOptMigPlanner. The memory model
// follows §3.4: migrating a layer's context makes every receiver's memory
// grow by the incoming bytes, while every holder of that layer's old
// context can release the part it does not keep once the layer's transfers
// complete ("the sender's memory can be released while the receivers'
// memory consumption will increase"). The net growth over the starting
// footprint is the migration buffer; layers whose migration would push any
// instance's buffer beyond U_max are deferred and then emitted in min-max
// order (line 19). The naive order (MemOpt=false) is plain layer order
// with unbounded buffer.
func orderLayers(spec model.Spec, pp *paramPlan, devices []DeviceContext, devOf map[int64]int, mapping Mapping, positions []config.Position, opt PlanOptions, ws *planWS) []int {
	layers := ws.layers[:0]
	for l, trs := range pp.byLayer {
		if len(trs) > 0 {
			layers = append(layers, l)
		}
	}
	ws.layers = layers
	// byLayer is layer-indexed, so layers is already in ascending order.
	if len(layers) == 0 {
		return nil
	}

	layerParam := spec.LayerParamBytes()

	// newRect[devIdx] is the context each mapped device keeps after
	// migration (empty when the device leaves the mesh).
	if cap(ws.newRect) < len(devices) {
		ws.newRect = make([]model.Rect, len(devices))
	}
	newRect := ws.newRect[:len(devices)]
	for i := range newRect {
		newRect[i] = model.Rect{}
	}
	for pi, pos := range positions {
		if di, ok := devOf[mapping.gpuAt(pi, pos).ID]; ok {
			newRect[di] = model.PositionRect(spec, mapping.Target.P, mapping.Target.M, pos.P, pos.M)
		}
	}

	// byID fixes an iteration order so float accumulation (and thus the
	// plan) is deterministic regardless of the devices' input order.
	byID := intsFor(&ws.byID, len(devices))
	for i := range byID {
		byID[i] = i
	}
	sort.Slice(byID, func(a, b int) bool { return devices[byID[a]].GPU.ID < devices[byID[b]].GPU.ID })

	// holders[l] lists the devices holding layer l in byID order, so the
	// release scan below touches only real holders instead of probing
	// every device per layer.
	hcounts := intsFor(&ws.hcounts, spec.Layers)
	htotal := 0
	for _, di := range byID {
		r := devices[di].ModelCtx
		if r.Empty() {
			continue
		}
		hi := r.LayerHi
		if hi > spec.Layers {
			hi = spec.Layers
		}
		for l := r.LayerLo; l < hi; l++ {
			hcounts[l]++
			htotal++
		}
	}
	if cap(ws.harena) < htotal {
		ws.harena = make([]int, 0, htotal)
	}
	harena := ws.harena[:0]
	if cap(ws.holders) < spec.Layers {
		ws.holders = make([][]int, spec.Layers)
	}
	holders := ws.holders[:spec.Layers]
	hoff := 0
	for l, n := range hcounts {
		if n > 0 {
			holders[l] = harena[hoff:hoff : hoff+n]
			hoff += n
		} else {
			holders[l] = nil
		}
	}
	for _, di := range byID {
		r := devices[di].ModelCtx
		if r.Empty() {
			continue
		}
		hi := r.LayerHi
		if hi > spec.Layers {
			hi = spec.Layers
		}
		for l := r.LayerLo; l < hi; l++ {
			holders[l] = append(holders[l], di)
		}
	}

	// Instances get dense indices (assigned in deterministic first-touch
	// order) so the per-layer deltas and running usage live in flat slices
	// instead of maps — the deferred-layer selection below reads them
	// O(L²) times in the worst case. Each instance carries its own buffer
	// cap: U_max scaled by its type's memory multiplier, so small-memory
	// types defer layers earlier in mixed fleets.
	if ws.instIdx == nil {
		ws.instIdx = map[int64]int{}
	} else {
		clear(ws.instIdx)
	}
	instIdx := ws.instIdx
	instIDs := ws.instIDs[:0]
	instCap := ws.instCap[:0]
	idxOf := func(inst *cloud.Instance) int {
		if i, ok := instIdx[inst.ID]; ok {
			return i
		}
		i := len(instIDs)
		instIdx[inst.ID] = i
		instIDs = append(instIDs, inst.ID)
		instCap = append(instCap, opt.UmaxBytes*inst.MemScale())
		return i
	}

	// deltas for layers[li] live in one arena at dOff[li]:dOff[li+1],
	// computed once per layer — recomputing them inside every
	// deferred-layer pass was O(L²) work, and per-layer slices were
	// per-plan allocations.
	dArena := ws.dArena[:0]
	dOff := append(ws.dOff[:0], 0)
	layerPos := intsFor(&ws.layerPos, spec.Layers)
	scratch := ws.scratch
	touched := ws.touched[:0]
	for li, l := range layers {
		layerPos[l] = li
		touched = touched[:0]
		touch := func(idx int) {
			for len(scratch) <= idx {
				scratch = append(scratch, 0)
			}
			for _, t := range touched {
				if t == idx {
					return
				}
			}
			touched = append(touched, idx)
		}
		for _, tr := range pp.byLayer[l] {
			idx := idxOf(tr.To.Inst)
			touch(idx)
			scratch[idx] += tr.Bytes
		}
		for _, di := range holders[l] {
			dc := &devices[di]
			old := dc.ModelCtx
			oldW := old.FracHi - old.FracLo
			if oldW <= 0 {
				continue
			}
			// keep reproduces oldL.OverlapParamBytes(spec, newRect) with
			// the same float operations; release is what the holder frees
			// once layer l's transfers complete.
			keep := 0.0
			nr := newRect[di]
			if l >= nr.LayerLo && l < nr.LayerHi {
				lo, hi := maxf(old.FracLo, nr.FracLo), minf(old.FracHi, nr.FracHi)
				if hi > lo {
					keep = (hi - lo) * layerParam
				}
			}
			release := oldW*layerParam - keep
			if release > 0 {
				idx := idxOf(dc.GPU.Inst)
				touch(idx)
				scratch[idx] -= release
			}
		}
		for _, idx := range touched {
			dArena = append(dArena, instDelta{idx: idx, by: scratch[idx]})
			scratch[idx] = 0
		}
		dOff = append(dOff, len(dArena))
	}
	ws.instIDs, ws.instCap = instIDs, instCap
	ws.dArena, ws.dOff = dArena, dOff
	ws.scratch, ws.touched = scratch, touched
	deltasOf := func(l int) []instDelta {
		li := layerPos[l]
		return dArena[dOff[li]:dOff[li+1]]
	}

	usage := floatsFor(&ws.usage, len(instIDs))
	peaks := floatsFor(&ws.peaks, len(instIDs))
	// heteroCap is set when instance types scale U_max differently; the
	// ordering score then becomes the worst per-instance cap excess instead
	// of the global peak, so small-memory instances defer layers first. The
	// homogeneous path keeps the exact historical computation (and thus the
	// golden plan orders).
	heteroCap := false
	for _, c := range instCap {
		if c != opt.UmaxBytes {
			heteroCap = true
			break
		}
	}
	// curScore caches the score of the *current* usage vector — the global
	// peak (homogeneous) or the worst cap excess (heterogeneous) — so
	// scoreAfter only has to look at the candidate layer's own deltas
	// instead of rescanning every instance per probe. Maxima are
	// order-independent, so the cached value is bit-identical to a rescan.
	curScore := 0.0
	if heteroCap {
		curScore = math.Inf(-1)
		for i := range usage {
			if v := usage[i] - instCap[i]; v > curScore {
				curScore = v
			}
		}
	}
	rescore := func() {
		if heteroCap {
			worst := math.Inf(-1)
			for i, u := range usage {
				if v := u - instCap[i]; v > worst {
					worst = v
				}
			}
			curScore = worst
			return
		}
		peak := 0.0
		for _, u := range usage {
			if u > peak {
				peak = u
			}
		}
		curScore = peak
	}
	apply := func(l int) {
		for _, d := range deltasOf(l) {
			usage[d.idx] += d.by
			if usage[d.idx] > peaks[d.idx] {
				peaks[d.idx] = usage[d.idx]
			}
		}
		rescore()
	}
	// scoreAfter returns the ordering score of migrating layer l next. A
	// layer is admissible when the score is within scoreLimit.
	scoreLimit := opt.UmaxBytes
	if heteroCap {
		scoreLimit = 0
	}
	scoreAfter := func(l int) float64 {
		worst := curScore
		if heteroCap {
			for _, d := range deltasOf(l) {
				if v := usage[d.idx] + d.by - instCap[d.idx]; v > worst {
					worst = v
				}
			}
			return worst
		}
		for _, d := range deltasOf(l) {
			if u := usage[d.idx] + d.by; u > worst {
				worst = u
			}
		}
		return worst
	}
	// flushPeaks publishes the per-instance peaks; entries appear only for
	// instances whose buffer ever grew, matching the map-based original.
	flushPeaks := func() {
		for i, p := range peaks {
			if p > 0 {
				pp.peakBuffer[instIDs[i]] = p
			}
		}
	}

	if !opt.MemOpt {
		for _, l := range layers {
			apply(l)
		}
		flushPeaks()
		// layers is pooled workspace; the order is retained by the
		// memoized plan, so hand back an owned copy.
		return append(make([]int, 0, len(layers)), layers...)
	}

	order := make([]int, 0, len(layers)) // retained as pp.layerOrder
	deferred := ws.deferred[:0]          // kept sorted ascending; min-score ties pick the lowest layer
	for _, l := range layers {
		if scoreAfter(l) <= scoreLimit {
			apply(l)
			order = append(order, l)
		} else {
			deferred = append(deferred, l)
		}
	}
	ws.deferred = deferred
	for len(deferred) > 0 {
		bestI := -1
		bestV := 0.0
		for i, l := range deferred {
			v := scoreAfter(l)
			if bestI < 0 || v < bestV {
				bestI, bestV = i, v
			}
		}
		bestL := deferred[bestI]
		apply(bestL)
		order = append(order, bestL)
		deferred = append(deferred[:bestI], deferred[bestI+1:]...)
	}
	flushPeaks()
	return order
}

// Timeline is the realized schedule of a plan: when each stage of the new
// configuration can start serving, relative to migration start.
type Timeline struct {
	// CacheDone is when all cache context has arrived.
	CacheDone float64
	// StageReady[p] is when stage p's context is fully resident.
	StageReady []float64
	// Duration is when the entire migration completes.
	Duration float64
}

// Schedule simulates the plan's data movement: each receiving GPU processes
// its transfers serially (NIC-bound) in plan order — cache context first
// (§3.4), then layers in LayerOrder — while distinct receivers proceed in
// parallel. With Progressive disabled every stage becomes ready only at
// full completion.
func (pl *Plan) Schedule(est *cost.Estimator, progressive bool) Timeline {
	busy := map[int64]float64{} // per receiving GPU
	tl := Timeline{StageReady: make([]float64, pl.Target.P)}

	run := func(tr Transfer) float64 {
		var d float64
		if tr.From == nil {
			// Storage fetch: bandwidth-limited cold load.
			d = tr.Bytes / est.Params.StorageBWPerGPU
		} else {
			d = est.TransferTime(tr.Bytes, tr.Inter)
		}
		busy[tr.To.ID] += d
		return busy[tr.To.ID]
	}

	for _, tr := range pl.Cache {
		end := run(tr)
		if end > tl.CacheDone {
			tl.CacheDone = end
		}
	}
	for _, l := range pl.LayerOrder {
		st := pl.StageOfLayer[l]
		for _, tr := range pl.ByLayer[l] {
			end := run(tr)
			if end > tl.StageReady[st] {
				tl.StageReady[st] = end
			}
		}
	}
	for _, t := range tl.StageReady {
		if t > tl.Duration {
			tl.Duration = t
		}
	}
	if tl.CacheDone > tl.Duration {
		tl.Duration = tl.CacheDone
	}
	if !progressive {
		for p := range tl.StageReady {
			tl.StageReady[p] = tl.Duration
		}
	}
	return tl
}

func maxf(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}

func minf(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}
