package reconfig

import (
	"bytes"
	"encoding/binary"
	"math"
	"sort"

	"spotserve/internal/config"
)

// Eviction bounds for the per-server memos. Exceeding a bound resets that
// memo wholesale: the caches are performance devices, never correctness
// ones, so dropping them is always safe, and wholesale reset keeps memory
// bounded on arbitrarily long traces without bookkeeping on the hit path.
const (
	maxProposalEntries = 4096
	maxMappingEntries  = 256
	maxPlanEntries     = 256
)

// propKey is the canonical fleet signature × workload rate a proposal
// depends on. Instance types influence Algorithm 1 only through the device
// counts and the speed/memory floors, so this tuple — not the raw fleet —
// is the exact memo key.
type propKey struct {
	gpusAvail, maxGPUs int
	alpha              uint64
	speedFloor         uint64
	memFloor           uint64
	reserve            int
}

func proposalKey(req Request, reserve int) propKey {
	return propKey{
		gpusAvail:  req.GPUsAvail,
		maxGPUs:    req.MaxGPUs,
		alpha:      math.Float64bits(req.Alpha),
		speedFloor: math.Float64bits(req.SpeedFloor),
		memFloor:   math.Float64bits(req.MemFloor),
		reserve:    reserve,
	}
}

// keyBuf builds canonical byte keys for the variable-length memos, folding
// a word-wise FNV-style hash as it writes (byte-at-a-time hashing of the
// multi-kilobyte device keys showed up in profiles).
type keyBuf struct {
	b []byte
	h uint64
}

const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
)

func newKeyBuf(capacity int) keyBuf {
	return keyBuf{b: make([]byte, 0, capacity), h: fnvOffset64}
}

func (k *keyBuf) u64(v uint64) {
	k.b = binary.LittleEndian.AppendUint64(k.b, v)
	k.h = (k.h ^ v) * fnvPrime64
}
func (k *keyBuf) i(v int)     { k.u64(uint64(int64(v))) }
func (k *keyBuf) i64(v int64) { k.u64(uint64(v)) }
func (k *keyBuf) f64(v float64) {
	k.u64(math.Float64bits(v))
}
func (k *keyBuf) bool(v bool) {
	if v {
		k.u64(1)
	} else {
		k.u64(0)
	}
}

// hash returns the accumulated hash of the written words.
func (k *keyBuf) hash() uint64 { return k.h }

// mappingKey canonically encodes everything MapDevices depends on beyond
// the engine's fixed spec: the device set (sorted by GPU ID — MapDevices
// sorts its input, so input order is irrelevant), each device's model
// context and speed, the target, the mapper switches, and — only when an
// inheritance map is present, since edge weights ignore cache state
// otherwise — the cache contexts and the inheritance pairs.
func mappingKey(devs []DeviceContext, target config.Config, opt MapperOptions) keyBuf {
	k := newKeyBuf(64 + len(devs)*13*8)
	k.i(target.D)
	k.i(target.P)
	k.i(target.M)
	k.i(target.B)
	k.bool(opt.UseKM)
	k.bool(opt.Hierarchical)
	order := make([]int, len(devs))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool { return devs[order[a]].GPU.ID < devs[order[b]].GPU.ID })
	withCache := len(opt.Inherit) > 0
	for _, di := range order {
		d := &devs[di]
		k.i64(d.GPU.ID)
		k.i64(d.GPU.Inst.ID)
		k.f64(d.GPU.Inst.GPUSpeed())
		k.i(d.ModelCtx.LayerLo)
		k.i(d.ModelCtx.LayerHi)
		k.f64(d.ModelCtx.FracLo)
		k.f64(d.ModelCtx.FracHi)
		if withCache {
			k.i(d.CachePipeline)
			k.i(d.CacheTokens)
			k.i(d.CacheRect.LayerLo)
			k.i(d.CacheRect.LayerHi)
			k.f64(d.CacheRect.FracLo)
			k.f64(d.CacheRect.FracHi)
		}
	}
	if withCache {
		news := make([]int, 0, len(opt.Inherit))
		for n := range opt.Inherit {
			news = append(news, n)
		}
		sort.Ints(news)
		for _, n := range news {
			k.i(n)
			k.i(opt.Inherit[n])
		}
	}
	return k
}

// planKey canonically encodes everything the parameter plan depends on:
// the devices' model contexts and instance memory scales (in input order —
// source selection prefers earlier devices), the realized assignment, the
// target, and the planner's buffer model. KV-cache state and the
// inheritance map are deliberately absent: cache transfers are recomputed
// on every call, which is what lets the estimate made at preemption notice
// be reused after the JIT drain even though decoding progressed.
func planKey(devs []DeviceContext, mapping Mapping, opt PlanOptions) keyBuf {
	t := mapping.Target
	k := newKeyBuf(64 + len(devs)*7*8 + t.GPUs()*8)
	k.i(t.D)
	k.i(t.P)
	k.i(t.M)
	k.i(t.B)
	k.bool(opt.MemOpt)
	k.f64(opt.UmaxBytes)
	for i := range devs {
		d := &devs[i]
		k.i64(d.GPU.ID)
		k.i64(d.GPU.Inst.ID)
		k.f64(d.GPU.Inst.MemScale())
		k.i(d.ModelCtx.LayerLo)
		k.i(d.ModelCtx.LayerHi)
		k.f64(d.ModelCtx.FracLo)
		k.f64(d.ModelCtx.FracHi)
	}
	if mapping.flat != nil {
		for _, g := range mapping.flat {
			if g == nil {
				k.i64(-1)
			} else {
				k.i64(g.ID)
			}
		}
		return k
	}
	for _, pos := range t.Positions() {
		g := mapping.Assign[pos]
		if g == nil {
			k.i64(-1)
		} else {
			k.i64(g.ID)
		}
	}
	return k
}

type mappingEntry struct {
	key []byte
	m   Mapping
}

type planEntry struct {
	key []byte
	pp  *paramPlan
}

// cache is the Engine's per-server memo set.
type cache struct {
	proposals map[propKey]Proposal
	mappings  map[uint64][]mappingEntry
	nMappings int
	plans     map[uint64][]planEntry
	nPlans    int
	stats     CacheStats
}

func newCache() *cache {
	return &cache{
		proposals: make(map[propKey]Proposal),
		mappings:  make(map[uint64][]mappingEntry),
		plans:     make(map[uint64][]planEntry),
	}
}

func (c *cache) proposal(key propKey) (Proposal, bool) {
	p, ok := c.proposals[key]
	if ok {
		c.stats.ProposalHits++
	} else {
		c.stats.ProposalMisses++
	}
	return p, ok
}

func (c *cache) storeProposal(key propKey, p Proposal) {
	if len(c.proposals) >= maxProposalEntries {
		c.proposals = make(map[propKey]Proposal)
	}
	c.proposals[key] = p
}

func (c *cache) mapping(k keyBuf) (Mapping, bool) {
	h := k.hash()
	for _, e := range c.mappings[h] {
		if bytes.Equal(e.key, k.b) {
			c.stats.MappingHits++
			return e.m, true
		}
	}
	c.stats.MappingMisses++
	return Mapping{}, false
}

func (c *cache) storeMapping(k keyBuf, m Mapping) {
	if c.nMappings >= maxMappingEntries {
		c.mappings = make(map[uint64][]mappingEntry)
		c.nMappings = 0
	}
	h := k.hash()
	c.mappings[h] = append(c.mappings[h], mappingEntry{key: k.b, m: m})
	c.nMappings++
}

func (c *cache) plan(k keyBuf) (*paramPlan, bool) {
	h := k.hash()
	for _, e := range c.plans[h] {
		if bytes.Equal(e.key, k.b) {
			c.stats.PlanHits++
			return e.pp, true
		}
	}
	c.stats.PlanMisses++
	return nil, false
}

func (c *cache) storePlan(k keyBuf, pp *paramPlan) {
	if c.nPlans >= maxPlanEntries {
		c.plans = make(map[uint64][]planEntry)
		c.nPlans = 0
	}
	h := k.hash()
	c.plans[h] = append(c.plans[h], planEntry{key: k.b, pp: pp})
	c.nPlans++
}
