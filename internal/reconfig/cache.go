package reconfig

import (
	"bytes"
	"encoding/binary"
	"math"
	"sort"

	"spotserve/internal/config"
)

// Eviction bounds for the per-server memos. Exceeding a bound resets that
// memo wholesale: the caches are performance devices, never correctness
// ones, so dropping them is always safe, and wholesale reset keeps memory
// bounded on arbitrarily long traces without bookkeeping on the hit path.
const (
	maxProposalEntries = 4096
	maxMappingEntries  = 256
	maxPlanEntries     = 256
)

// propKey is the canonical fleet signature × workload rate a proposal
// depends on. Instance types influence Algorithm 1 only through the device
// counts and the speed/memory floors, so this tuple — not the raw fleet —
// is the exact memo key.
type propKey struct {
	gpusAvail, maxGPUs int
	alpha              uint64
	speedFloor         uint64
	memFloor           uint64
	reserve            int
}

func proposalKey(req Request, reserve int) propKey {
	return propKey{
		gpusAvail:  req.GPUsAvail,
		maxGPUs:    req.MaxGPUs,
		alpha:      math.Float64bits(req.Alpha),
		speedFloor: math.Float64bits(req.SpeedFloor),
		memFloor:   math.Float64bits(req.MemFloor),
		reserve:    reserve,
	}
}

// keyBuf builds canonical byte keys for the variable-length memos, folding
// a word-wise FNV-style hash as it writes (byte-at-a-time hashing of the
// multi-kilobyte device keys showed up in profiles). A keyBuf is reusable:
// reset rewinds it, so the Engine keeps one per memo lookup instead of
// allocating a fresh buffer per key; the memos copy the bytes they retain.
type keyBuf struct {
	b []byte
	h uint64
	// dh is a second hash folded over only the device-portion words (the
	// fleet and its resident contexts, marked via setDev). A memo miss
	// whose dh matches the previous lookup's means the fleet was unchanged
	// and the *target or options* moved — the signature of a target shift
	// during the JIT drain, as opposed to a cold fleet.
	dh  uint64
	dev bool
	// order is scratch for mappingKey's device sort.
	order []int
}

const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
)

// reset rewinds the buffer for a fresh key, keeping its backing storage.
func (k *keyBuf) reset(capacity int) {
	if cap(k.b) < capacity {
		k.b = make([]byte, 0, capacity)
	} else {
		k.b = k.b[:0]
	}
	k.h = fnvOffset64
	k.dh = fnvOffset64
	k.dev = false
}

// setDev marks whether subsequent words belong to the device portion of the
// key (folded into the secondary device hash).
func (k *keyBuf) setDev(on bool) { k.dev = on }

func (k *keyBuf) u64(v uint64) {
	k.b = binary.LittleEndian.AppendUint64(k.b, v)
	k.h = (k.h ^ v) * fnvPrime64
	if k.dev {
		k.dh = (k.dh ^ v) * fnvPrime64
	}
}
func (k *keyBuf) i(v int)     { k.u64(uint64(int64(v))) }
func (k *keyBuf) i64(v int64) { k.u64(uint64(v)) }
func (k *keyBuf) f64(v float64) {
	k.u64(math.Float64bits(v))
}
func (k *keyBuf) bool(v bool) {
	if v {
		k.u64(1)
	} else {
		k.u64(0)
	}
}

// hash returns the accumulated hash of the written words.
func (k *keyBuf) hash() uint64 { return k.h }

// devHash returns the accumulated hash of the device-portion words.
func (k *keyBuf) devHash() uint64 { return k.dh }

// mappingKey canonically encodes everything MapDevices depends on beyond
// the engine's fixed spec: the device set (sorted by GPU ID — MapDevices
// sorts its input, so input order is irrelevant), each device's model
// context and speed, the target, the mapper switches, and — only when an
// inheritance map is present, since edge weights ignore cache state
// otherwise — the cache contexts and the inheritance pairs. The target's
// batch size is deliberately absent: MapDevices reads the target only
// through Validate/GPUs/Positions and the P/M fields, none of which depend
// on B, so a mapping memoized at the estimate-time batch size is reused
// verbatim when only B shifted during the JIT drain (the caller re-stamps
// Mapping.Target).
func mappingKey(k *keyBuf, devs []DeviceContext, target config.Config, opt MapperOptions) {
	k.reset(64 + len(devs)*13*8)
	k.i(target.D)
	k.i(target.P)
	k.i(target.M)
	k.bool(opt.UseKM)
	k.bool(opt.Hierarchical)
	if cap(k.order) < len(devs) {
		k.order = make([]int, len(devs))
	}
	order := k.order[:len(devs)]
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool { return devs[order[a]].GPU.ID < devs[order[b]].GPU.ID })
	withCache := len(opt.Inherit) > 0
	k.setDev(true)
	for _, di := range order {
		d := &devs[di]
		k.i64(d.GPU.ID)
		k.i64(d.GPU.Inst.ID)
		k.f64(d.GPU.Inst.GPUSpeed())
		k.i(d.ModelCtx.LayerLo)
		k.i(d.ModelCtx.LayerHi)
		k.f64(d.ModelCtx.FracLo)
		k.f64(d.ModelCtx.FracHi)
		if withCache {
			k.i(d.CachePipeline)
			k.i(d.CacheTokens)
			k.i(d.CacheRect.LayerLo)
			k.i(d.CacheRect.LayerHi)
			k.f64(d.CacheRect.FracLo)
			k.f64(d.CacheRect.FracHi)
		}
	}
	k.setDev(false)
	if withCache {
		news := make([]int, 0, len(opt.Inherit))
		for n := range opt.Inherit {
			news = append(news, n)
		}
		sort.Ints(news)
		for _, n := range news {
			k.i(n)
			k.i(opt.Inherit[n])
		}
	}
}

// planKey canonically encodes everything the parameter plan depends on:
// the devices' model contexts and instance memory scales (in input order —
// source selection prefers earlier devices), the realized assignment, the
// target, and the planner's buffer model. KV-cache state and the
// inheritance map are deliberately absent: cache transfers are recomputed
// on every call, which is what lets the estimate made at preemption notice
// be reused after the JIT drain even though decoding progressed. Two more
// canonicalizations widen reuse across drain-window shifts without ever
// aliasing distinct plans: the target's batch size is dropped (the plan
// reads only P/M/Positions, all B-free), and devices that hold no model
// context *and* are not placed by the mapping are skipped — such devices
// can neither source nor receive a parameter transfer, so spare-pool churn
// during the drain no longer invalidates the memoized plan.
func planKey(k *keyBuf, devs []DeviceContext, mapping Mapping, opt PlanOptions) {
	t := mapping.Target
	k.reset(64 + len(devs)*7*8 + t.GPUs()*8)
	k.i(t.D)
	k.i(t.P)
	k.i(t.M)
	k.bool(opt.MemOpt)
	k.f64(opt.UmaxBytes)
	k.setDev(true)
	for i := range devs {
		d := &devs[i]
		if d.ModelCtx.Empty() && !mapping.assigned(d.GPU.ID) {
			continue
		}
		k.i64(d.GPU.ID)
		k.i64(d.GPU.Inst.ID)
		k.f64(d.GPU.Inst.MemScale())
		k.i(d.ModelCtx.LayerLo)
		k.i(d.ModelCtx.LayerHi)
		k.f64(d.ModelCtx.FracLo)
		k.f64(d.ModelCtx.FracHi)
	}
	k.setDev(false)
	if mapping.flat != nil {
		for _, g := range mapping.flat {
			if g == nil {
				k.i64(-1)
			} else {
				k.i64(g.ID)
			}
		}
		return
	}
	for _, pos := range t.Positions() {
		g := mapping.Assign[pos]
		if g == nil {
			k.i64(-1)
		} else {
			k.i64(g.ID)
		}
	}
}

type mappingEntry struct {
	key []byte
	m   Mapping
}

type planEntry struct {
	key []byte
	pp  *paramPlan
}

// cache is the Engine's per-server memo set.
type cache struct {
	proposals map[propKey]Proposal
	mappings  map[uint64][]mappingEntry
	nMappings int
	plans     map[uint64][]planEntry
	nPlans    int
	stats     CacheStats
	// lastMapDev / lastPlanDev remember the previous lookup's device hash,
	// classifying each miss as a drain-window shift (same fleet, moved
	// target) or a cold fleet. Diagnostic only — never keyed on.
	lastMapDev  uint64
	haveMapDev  bool
	lastPlanDev uint64
	havePlanDev bool
}

func newCache() *cache {
	return &cache{
		proposals: make(map[propKey]Proposal),
		mappings:  make(map[uint64][]mappingEntry),
		plans:     make(map[uint64][]planEntry),
	}
}

func (c *cache) proposal(key propKey) (Proposal, bool) {
	p, ok := c.proposals[key]
	if ok {
		c.stats.ProposalHits++
	} else {
		c.stats.ProposalMisses++
	}
	return p, ok
}

func (c *cache) storeProposal(key propKey, p Proposal) {
	if len(c.proposals) >= maxProposalEntries {
		c.proposals = make(map[propKey]Proposal)
	}
	c.proposals[key] = p
}

func (c *cache) mapping(k *keyBuf) (Mapping, bool) {
	sameFleet := c.haveMapDev && c.lastMapDev == k.devHash()
	c.lastMapDev, c.haveMapDev = k.devHash(), true
	h := k.hash()
	for _, e := range c.mappings[h] {
		if bytes.Equal(e.key, k.b) {
			c.stats.MappingHits++
			return e.m, true
		}
	}
	c.stats.MappingMisses++
	if sameFleet {
		c.stats.MappingShiftMisses++
	}
	return Mapping{}, false
}

func (c *cache) storeMapping(k *keyBuf, m Mapping) {
	if c.nMappings >= maxMappingEntries {
		c.mappings = make(map[uint64][]mappingEntry)
		c.nMappings = 0
	}
	h := k.hash()
	key := append([]byte(nil), k.b...) // k is reused; entries own their bytes
	c.mappings[h] = append(c.mappings[h], mappingEntry{key: key, m: m})
	c.nMappings++
}

func (c *cache) plan(k *keyBuf) (*paramPlan, bool) {
	sameFleet := c.havePlanDev && c.lastPlanDev == k.devHash()
	c.lastPlanDev, c.havePlanDev = k.devHash(), true
	h := k.hash()
	for _, e := range c.plans[h] {
		if bytes.Equal(e.key, k.b) {
			c.stats.PlanHits++
			return e.pp, true
		}
	}
	c.stats.PlanMisses++
	if sameFleet {
		c.stats.PlanShiftMisses++
	}
	return nil, false
}

func (c *cache) storePlan(k *keyBuf, pp *paramPlan) {
	if c.nPlans >= maxPlanEntries {
		c.plans = make(map[uint64][]planEntry)
		c.nPlans = 0
	}
	h := k.hash()
	key := append([]byte(nil), k.b...) // k is reused; entries own their bytes
	c.plans[h] = append(c.plans[h], planEntry{key: key, pp: pp})
	c.nPlans++
}
