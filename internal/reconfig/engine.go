// Package reconfig is SpotServe's reconfiguration engine: the complete
// optimize→map→plan pipeline a serving system runs when the fleet or the
// workload changes. It hosts the parallelization controller (§3.2,
// Algorithm 1), the device mapper (§3.3, Kuhn–Munkres matching) and the
// migration planner (§3.4, Algorithm 2) behind one explicit pipeline
//
//	Request → Proposal → Mapping → Plan
//
// so that every serving system — SpotServe's server and both comparison
// baselines — prices reconfigurations through exactly the same machinery.
//
// The Engine makes successive reconfigurations *incremental*: under
// preemption pressure the same sub-problems recur (the fleet signature a
// proposal depends on, the instance×block sub-matchings of the hierarchical
// device mapper, the parameter-migration plan between estimate and
// execution), and a per-server Cache memoizes each stage by an exact
// canonical key. Because every memoized function is pure and reuse requires
// the full key to match bit-for-bit, results with the cache enabled are
// byte-identical to the cold-path recompute — enforced by the equivalence
// tests over the scenario grid — and Options.DisableCache forces the cold
// path outright (mirroring the engine's fast-forward opt-out).
package reconfig

import (
	"spotserve/internal/config"
	"spotserve/internal/cost"
	"spotserve/internal/km"
	"spotserve/internal/model"
)

// Options configures an Engine for one serving system.
type Options struct {
	Spec model.Spec
	Est  *cost.Estimator
	// Limits bounds the configuration search space.
	Limits config.Limits
	// GPUsPerInstance / MaxInstances mirror the optimizer's fleet bounds.
	GPUsPerInstance int
	MaxInstances    int
	// SeqIn / SeqOut / MaxTokens are the workload's sequence parameters.
	SeqIn, SeqOut int
	MaxTokens     int
	// NaiveBuffer selects the naive migration-buffer memory model (§6.2
	// ablation).
	NaiveBuffer bool
	// SLOLatency switches the optimizer objective (0 = latency
	// minimization).
	SLOLatency float64
	// UseKM / Hierarchical tune the device mapper.
	UseKM        bool
	Hierarchical bool
	// Progressive / MemOpt / UmaxBytes / MigrateCache tune the migration
	// planner.
	Progressive  bool
	MemOpt       bool
	UmaxBytes    float64
	MigrateCache bool
	// DisableCache forces every pipeline stage down the cold recompute
	// path. Results are byte-identical either way; the flag exists for the
	// equivalence tests and for debugging.
	DisableCache bool
}

// Request is one reconfiguration demand: everything a proposal depends on
// beyond the engine's static options. GPUsAvail, MaxGPUs, SpeedFloor and
// MemFloor together form the canonical fleet signature — instance types
// influence Algorithm 1 only through these four quantities — and Alpha is
// the workload rate; the proposal memo is keyed by exactly this tuple.
type Request struct {
	// Alpha is the required serving rate α_t.
	Alpha float64
	// GPUsAvail is the usable device count N_t (in GPUs).
	GPUsAvail int
	// MaxGPUs bounds the devices the chosen configuration may occupy
	// (allocation capacity; equals GPUsAvail in spot-only mode).
	MaxGPUs int
	// SpeedFloor is the slowest usable GPU's speed multiplier (1 = homog).
	SpeedFloor float64
	// MemFloor is the smallest usable instance's memory multiplier
	// (1 = homog); feasibility is checked against the scaled memory.
	MemFloor float64
	// ReservePool is the candidate-pool size to plan with.
	ReservePool int
}

// Engine runs the reconfiguration pipeline for one serving system. It is
// not safe for concurrent use (each simulated server owns one).
type Engine struct {
	opts  Options
	optz  *Optimizer
	cache *cache
	km    *km.Cache
	// kb is the reusable canonical-key builder for the mapping and plan
	// memos; safe because the engine is single-owner and the memos copy
	// the key bytes they retain.
	kb keyBuf
}

// NewEngine builds an engine; the cache is armed unless opts.DisableCache.
func NewEngine(opts Options) *Engine {
	optz := NewOptimizer(opts.Est)
	optz.Limits = opts.Limits
	if opts.GPUsPerInstance > 0 {
		optz.GPUsPerInstance = opts.GPUsPerInstance
	}
	if opts.MaxInstances > 0 {
		optz.MaxInstances = opts.MaxInstances
	}
	if opts.SeqIn > 0 {
		optz.SeqIn = opts.SeqIn
	}
	if opts.SeqOut > 0 {
		optz.SeqOut = opts.SeqOut
	}
	if opts.MaxTokens > 0 {
		optz.MaxTokens = opts.MaxTokens
	}
	optz.NaiveBuffer = opts.NaiveBuffer
	optz.SLOLatency = opts.SLOLatency
	e := &Engine{opts: opts, optz: optz}
	if !opts.DisableCache {
		e.cache = newCache()
		e.km = km.NewCache(0)
	}
	return e
}

// Optimizer exposes the engine's controller (tests, throughput queries).
func (e *Engine) Optimizer() *Optimizer { return e.optz }

// Phi returns the serving throughput φ(C) under the engine's current
// speed-floor state (set by the most recent Propose, exactly like the
// historical server-owned optimizer).
func (e *Engine) Phi(c config.Config) float64 { return e.optz.phi(c) }

// Propose runs Algorithm 1 for the request, memoized on the canonical
// fleet signature × workload rate.
func (e *Engine) Propose(req Request) Proposal {
	e.optz.SpeedFloor = req.SpeedFloor
	e.optz.MemFloor = req.MemFloor
	if req.ReservePool > 0 {
		e.optz.ReservePool = req.ReservePool
	}
	if e.cache == nil {
		return e.optz.ProposeForGPUs(req.GPUsAvail, req.Alpha, req.MaxGPUs)
	}
	key := proposalKey(req, e.optz.ReservePool)
	if p, ok := e.cache.proposal(key); ok {
		return p
	}
	p := e.optz.ProposeForGPUs(req.GPUsAvail, req.Alpha, req.MaxGPUs)
	e.cache.storeProposal(key, p)
	return p
}

// Map runs the device mapper for the target configuration over the given
// device contexts, memoized on the canonical device/context/target
// signature. The returned Mapping may be shared with earlier calls and
// must be treated as read-only.
func (e *Engine) Map(devs []DeviceContext, target config.Config, inherit map[int]int) (Mapping, error) {
	opt := MapperOptions{
		UseKM:        e.opts.UseKM,
		Hierarchical: e.opts.Hierarchical,
		Inherit:      inherit,
		KM:           e.km,
	}
	if e.cache == nil {
		return MapDevices(e.opts.Spec, devs, target, opt)
	}
	mappingKey(&e.kb, devs, target, opt)
	if m, ok := e.cache.mapping(&e.kb); ok {
		// The memo key drops target.B (the assignment is B-independent),
		// so a hit may carry the batch size of an earlier target; re-stamp
		// the caller's target on the returned value copy.
		m.Target = target
		return m, nil
	}
	m, err := MapDevices(e.opts.Spec, devs, target, opt)
	if err != nil {
		return m, err
	}
	e.cache.storeMapping(&e.kb, m)
	return m, nil
}

// Plan builds the migration plan realizing mapping from the devices'
// current contexts. The expensive parameter-transfer portion (per-layer
// transfers, source selection and Algorithm 2's layer ordering) depends
// only on the devices' *model* contexts, so it is memoized on that
// signature and survives decode progress — KV caches keep growing between
// the estimate at preemption notice and the execution after the JIT drain,
// but the parameter plan is reused as long as the mapping and the model
// contexts are unchanged. Cache-context transfers are recomputed fresh on
// every call. The returned Plan shares the memoized parameter structures;
// callers must treat it as read-only.
func (e *Engine) Plan(devs []DeviceContext, mapping Mapping, inherit map[int]int) (*Plan, error) {
	opt := PlanOptions{
		Progressive:  e.opts.Progressive,
		MemOpt:       e.opts.MemOpt,
		UmaxBytes:    e.opts.UmaxBytes,
		MigrateCache: e.opts.MigrateCache,
		Inherit:      inherit,
	}
	if e.cache == nil {
		return PlanMigration(e.opts.Spec, e.opts.Est, devs, mapping, opt)
	}
	if err := mapping.Target.Validate(); err != nil {
		return nil, err
	}
	planKey(&e.kb, devs, mapping, opt)
	pp, ok := e.cache.plan(&e.kb)
	if !ok {
		var err error
		pp, err = buildParamPlan(e.opts.Spec, devs, mapping, opt)
		if err != nil {
			return nil, err
		}
		e.cache.storePlan(&e.kb, pp)
	}
	return assemblePlan(e.opts.Spec, pp, devs, mapping, opt), nil
}

// PlanOptions returns the planner options the engine runs with (the server
// logs/uses them for standalone planning paths).
func (e *Engine) PlanOptions(inherit map[int]int) PlanOptions {
	return PlanOptions{
		Progressive:  e.opts.Progressive,
		MemOpt:       e.opts.MemOpt,
		UmaxBytes:    e.opts.UmaxBytes,
		MigrateCache: e.opts.MigrateCache,
		Inherit:      inherit,
	}
}

// CacheStats summarizes the engine's memo effectiveness. All counters are
// zero when the cache is disabled.
type CacheStats struct {
	ProposalHits, ProposalMisses int
	MappingHits, MappingMisses   int
	PlanHits, PlanMisses         int
	KMHits, KMMisses             int
	// MappingShiftMisses / PlanShiftMisses classify the misses above by
	// reason: a shift miss saw the same device fleet as the immediately
	// preceding lookup but a moved target or options — the drain-window
	// signature (the target config shifted between the estimate at
	// preemption notice and the execution after the JIT drain). The
	// remainder are cold misses (the fleet itself changed). Diagnostic
	// only; never fingerprinted.
	MappingShiftMisses int
	PlanShiftMisses    int
}

// ShiftMisses is the total number of drain-window shift misses.
func (s CacheStats) ShiftMisses() int { return s.MappingShiftMisses + s.PlanShiftMisses }

// Lookups is the total number of memo consultations.
func (s CacheStats) Lookups() int {
	return s.ProposalHits + s.ProposalMisses + s.MappingHits + s.MappingMisses +
		s.PlanHits + s.PlanMisses + s.KMHits + s.KMMisses
}

// Hits is the total number of memo hits.
func (s CacheStats) Hits() int {
	return s.ProposalHits + s.MappingHits + s.PlanHits + s.KMHits
}

// HitRate is Hits/Lookups, or 0 before any lookup.
func (s CacheStats) HitRate() float64 {
	if l := s.Lookups(); l > 0 {
		return float64(s.Hits()) / float64(l)
	}
	return 0
}

// CacheStats returns the engine's memo counters.
func (e *Engine) CacheStats() CacheStats {
	var s CacheStats
	if e.cache != nil {
		s = e.cache.stats
	}
	if e.km != nil {
		s.KMHits, s.KMMisses = e.km.Stats()
	}
	return s
}
