package reconfig

import (
	"testing"

	"spotserve/internal/config"
	"spotserve/internal/cost"
	"spotserve/internal/model"
)

func testEngine(spec model.Spec, disable bool) *Engine {
	return NewEngine(Options{
		Spec:         spec,
		Est:          cost.NewEstimator(cost.DefaultParams(), spec),
		Limits:       config.DefaultLimits(),
		MaxInstances: 12,
		UseKM:        true,
		Hierarchical: true,
		Progressive:  true,
		MemOpt:       true,
		UmaxBytes:    cost.DefaultParams().BufMaxBytes,
		MigrateCache: true,
		DisableCache: disable,
	})
}

// TestEnginePipelineEquivalence drives the full Request→Proposal→Mapping→
// Plan pipeline through a cached and an uncached engine and requires
// identical outputs at every stage, twice (the second pass hits the memo).
func TestEnginePipelineEquivalence(t *testing.T) {
	spec := model.GPT20B
	old := config.Config{D: 1, P: 2, M: 8, B: 1}
	gpus := mkGPUs(4, 4)
	devs := devicesFor(spec, gpus, old)

	warm := testEngine(spec, false)
	cold := testEngine(spec, true)
	req := Request{Alpha: 0.35, GPUsAvail: 16, MaxGPUs: 16, SpeedFloor: 1, MemFloor: 1}

	for round := 0; round < 2; round++ {
		pw, pc := warm.Propose(req), cold.Propose(req)
		if pw != pc {
			t.Fatalf("round %d: proposal %+v != cold %+v", round, pw, pc)
		}
		target := pw.Config
		mw, err := warm.Map(devs, target, nil)
		if err != nil {
			t.Fatal(err)
		}
		mc, err := cold.Map(devs, target, nil)
		if err != nil {
			t.Fatal(err)
		}
		for pos, g := range mc.Assign {
			if mw.Assign[pos] != g {
				t.Fatalf("round %d: position %v → %d, cold %d", round, pos, mw.Assign[pos].ID, g.ID)
			}
		}
		plw, err := warm.Plan(devs, mw, nil)
		if err != nil {
			t.Fatal(err)
		}
		plc, err := cold.Plan(devs, mc, nil)
		if err != nil {
			t.Fatal(err)
		}
		if plw.TotalBytes != plc.TotalBytes || plw.StorageBytes != plc.StorageBytes {
			t.Fatalf("round %d: bytes %v/%v, cold %v/%v",
				round, plw.TotalBytes, plw.StorageBytes, plc.TotalBytes, plc.StorageBytes)
		}
		if len(plw.LayerOrder) != len(plc.LayerOrder) {
			t.Fatalf("round %d: order lengths differ", round)
		}
		for i := range plw.LayerOrder {
			if plw.LayerOrder[i] != plc.LayerOrder[i] {
				t.Fatalf("round %d: layer order differs at %d", round, i)
			}
		}
	}
	cs := warm.CacheStats()
	if cs.ProposalHits == 0 || cs.MappingHits == 0 || cs.PlanHits == 0 {
		t.Fatalf("second round did not hit the memo: %+v", cs)
	}
	if got := cold.CacheStats(); got.Lookups() != 0 {
		t.Fatalf("disabled cache recorded lookups: %+v", got)
	}
	if cs.HitRate() <= 0 || cs.HitRate() > 1 {
		t.Fatalf("hit rate %v out of range", cs.HitRate())
	}
}

// TestCacheEviction pins the memo bounds: none of the per-server memos may
// grow past its configured cap, no matter how many distinct keys a long
// trace produces — wholesale reset keeps memory bounded.
func TestCacheEviction(t *testing.T) {
	c := newCache()
	for i := 0; i < 3*maxProposalEntries; i++ {
		c.storeProposal(propKey{gpusAvail: i}, Proposal{})
		if len(c.proposals) > maxProposalEntries {
			t.Fatalf("proposal memo grew to %d entries (cap %d)", len(c.proposals), maxProposalEntries)
		}
	}
	for i := 0; i < 3*maxMappingEntries; i++ {
		var k keyBuf
		k.i(i)
		c.storeMapping(&k, Mapping{})
		if c.nMappings > maxMappingEntries {
			t.Fatalf("mapping memo grew to %d entries (cap %d)", c.nMappings, maxMappingEntries)
		}
	}
	for i := 0; i < 3*maxPlanEntries; i++ {
		var k keyBuf
		k.i(i)
		c.storePlan(&k, &paramPlan{})
		if c.nPlans > maxPlanEntries {
			t.Fatalf("plan memo grew to %d entries (cap %d)", c.nPlans, maxPlanEntries)
		}
	}
	// Entries stored after a reset stay retrievable.
	var k keyBuf
	k.i(12345)
	c.storePlan(&k, &paramPlan{totalBytes: 7})
	if pp, ok := c.plan(&k); !ok || pp.totalBytes != 7 {
		t.Fatal("store after eviction reset lost the entry")
	}
}

// TestProposalKeyDistinguishesFleetSignature checks the canonical key
// separates every axis a proposal depends on.
func TestProposalKeyDistinguishesFleetSignature(t *testing.T) {
	base := Request{Alpha: 0.5, GPUsAvail: 16, MaxGPUs: 48, SpeedFloor: 1, MemFloor: 1}
	keys := map[propKey]string{proposalKey(base, 2): "base"}
	for name, req := range map[string]Request{
		"alpha":   {Alpha: 0.6, GPUsAvail: 16, MaxGPUs: 48, SpeedFloor: 1, MemFloor: 1},
		"gpus":    {Alpha: 0.5, GPUsAvail: 20, MaxGPUs: 48, SpeedFloor: 1, MemFloor: 1},
		"maxgpus": {Alpha: 0.5, GPUsAvail: 16, MaxGPUs: 44, SpeedFloor: 1, MemFloor: 1},
		"speed":   {Alpha: 0.5, GPUsAvail: 16, MaxGPUs: 48, SpeedFloor: 0.8, MemFloor: 1},
		"mem":     {Alpha: 0.5, GPUsAvail: 16, MaxGPUs: 48, SpeedFloor: 1, MemFloor: 0.5},
	} {
		k := proposalKey(req, 2)
		if prev, dup := keys[k]; dup {
			t.Fatalf("request %q collides with %q", name, prev)
		}
		keys[k] = name
	}
	if _, dup := keys[proposalKey(base, 3)]; dup {
		t.Fatal("reserve-pool change did not alter the key")
	}
}
