package reconfig

import (
	"testing"

	"spotserve/internal/config"
	"spotserve/internal/cost"
	"spotserve/internal/model"
)

func opt(spec model.Spec) *Optimizer {
	return NewOptimizer(cost.NewEstimator(cost.DefaultParams(), spec))
}

func TestProposeMeetsArrivalRate(t *testing.T) {
	// Spot-only mode: the configuration must live within the 10
	// available instances.
	o := opt(model.GPT20B)
	p := o.ProposeBounded(10, 0.35)
	if p.Saturated {
		t.Fatal("10 instances should satisfy 0.35 req/s")
	}
	phi := o.phi(p.Config)
	if phi < 0.35 {
		t.Fatalf("chosen %v has phi %v < 0.35", p.Config, phi)
	}
	if p.Config.GPUs() > 40 {
		t.Fatalf("chosen %v exceeds 10 instances", p.Config)
	}
	if p.WantInstances < (p.Config.GPUs()+3)/4 {
		t.Fatalf("WantInstances %d below config needs", p.WantInstances)
	}
}

func TestProposeSaturatesWhenScarce(t *testing.T) {
	// 4 instances = 16 GPUs on GPT-20B at a hopeless arrival rate: the
	// optimizer must fall to the line-5 max-throughput path.
	o := opt(model.GPT20B)
	o.MaxInstances = 4
	p := o.Propose(4, 50.0)
	if !p.Saturated {
		t.Fatal("expected saturation")
	}
	if p.Config.IsZero() {
		t.Fatal("saturated proposal is empty")
	}
	if p.Config.GPUs() > 16 {
		t.Fatalf("saturated config %v exceeds 4 instances", p.Config)
	}
	// It should be the throughput-maximal config within 16 GPUs.
	best := o.chooseMaxThroughput(o.candSetFor(16))
	if o.phi(p.Config) < o.phi(best)-1e-12 {
		t.Fatalf("saturated pick %v (phi=%v) below best %v (phi=%v)",
			p.Config, o.phi(p.Config), best, o.phi(best))
	}
}

func TestProposeLatencyObjective(t *testing.T) {
	// At a trivial arrival rate, the optimizer should pick a small,
	// latency-optimal configuration rather than a huge one.
	o := opt(model.OPT6B7)
	p := o.Propose(12, 0.01)
	if p.Config.D != 1 {
		t.Fatalf("tiny load should not replicate pipelines: %v", p.Config)
	}
	if p.Config.B != 1 {
		t.Fatalf("tiny load should use B=1 (batch-assembly wait dominates): %v", p.Config)
	}
	// (P=1,M=4) is OPT-6.7B's latency-optimal shape (Table 1) at small
	// GPU counts; allow M=8 in case communication model favors it.
	if p.Config.P != 1 {
		t.Fatalf("expected P=1 for OPT-6.7B, got %v", p.Config)
	}
}

func TestProposeUsesMoreInstancesUnderLoad(t *testing.T) {
	o := opt(model.OPT6B7)
	light := o.Propose(12, 0.2)
	heavy := o.Propose(12, 3.0)
	if o.phi(heavy.Config) < 3.0 {
		t.Fatalf("heavy pick %v phi=%v < 3.0", heavy.Config, o.phi(heavy.Config))
	}
	if heavy.Config.GPUs() <= light.Config.GPUs() {
		t.Fatalf("heavy load config %v not larger than light %v", heavy.Config, light.Config)
	}
}

func TestProposeTieBreakPrefersCheaper(t *testing.T) {
	// Among configs with (near-)minimal latency the optimizer keeps the
	// one with fewer GPUs. Indirect check: the chosen config's GPU count
	// is minimal among all feasible configs achieving its latency.
	o := opt(model.GPT20B)
	p := o.Propose(12, 0.35)
	l := o.lreq(p.Config, 0.35)
	for _, c := range o.candidates(o.MaxInstances * 4) {
		if o.phi(c) < 0.35 {
			continue
		}
		if o.lreq(c, 0.35) < l-1e-9 {
			t.Fatalf("config %v has lower l_req than chosen %v", c, p.Config)
		}
	}
}

func TestNaiveBufferShrinksSpace(t *testing.T) {
	// With the naive migration buffer, GPT-20B pipelines need 16 GPUs, so
	// 3 instances (12 GPUs) cannot host even one pipeline.
	o := opt(model.GPT20B)
	o.NaiveBuffer = true
	o.MaxInstances = 3
	p := o.Propose(3, 0.35)
	if !p.Config.IsZero() && p.Config.GPUs() <= 12 {
		t.Fatalf("naive buffer allowed %v on 12 GPUs", p.Config)
	}
	o2 := opt(model.GPT20B)
	o2.MaxInstances = 3
	p2 := o2.Propose(3, 0.35)
	if p2.Config.IsZero() {
		t.Fatal("memopt buffer should allow a 12-GPU config")
	}
}

func TestSLOObjective(t *testing.T) {
	o := opt(model.GPT20B)
	o.SLOLatency = 60
	p := o.Propose(10, 0.35)
	if o.lreq(p.Config, 0.35) > 60 {
		t.Fatalf("SLO pick %v violates 60 s SLO (l=%v)", p.Config, o.lreq(p.Config, 0.35))
	}
	// The SLO objective should never use more GPUs than the pure
	// latency objective.
	oLat := opt(model.GPT20B)
	pLat := oLat.Propose(10, 0.35)
	if p.Config.GPUs() > pLat.Config.GPUs() {
		t.Fatalf("SLO config %v larger than latency-optimal %v", p.Config, pLat.Config)
	}
}

func TestFitToInstances(t *testing.T) {
	c := config.Config{D: 3, P: 2, M: 8, B: 8}
	got := FitToInstances(c, 32) // room for 2 pipelines
	if got.D != 2 {
		t.Fatalf("FitToInstances D = %d, want 2", got.D)
	}
	if got := FitToInstances(c, 12); !got.IsZero() {
		t.Fatalf("too-small budget returned %v", got)
	}
	if got := FitToInstances(c, 200); got.D != 3 {
		t.Fatal("fit should never grow D")
	}
	if got := FitToInstances(config.Zero, 100); !got.IsZero() {
		t.Fatal("zero config should stay zero")
	}
}

func TestProposalDeterministic(t *testing.T) {
	o := opt(model.LLaMA30B)
	a := o.Propose(8, 0.2)
	b := o.Propose(8, 0.2)
	if a.Config != b.Config || a.WantInstances != b.WantInstances {
		t.Fatalf("nondeterministic proposal: %v vs %v", a, b)
	}
}
