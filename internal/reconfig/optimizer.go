package reconfig

import (
	"math"
	"sort"

	"spotserve/internal/config"
	"spotserve/internal/cost"
)

// Optimizer is the adaptive configuration optimizer of Algorithm 1: given
// the available instance count N_t and the observed arrival rate α_t it
// proposes the next parallel configuration C_{t+1}, balancing throughput,
// latency and monetary cost.
type Optimizer struct {
	Est    *cost.Estimator
	Limits config.Limits
	// GPUsPerInstance converts instance counts to GPU counts.
	GPUsPerInstance int
	// MaxInstances caps how many instances line 8 may request ("cloud
	// has enough instances for C").
	MaxInstances int
	// SeqIn / SeqOut are the workload's sequence lengths.
	SeqIn, SeqOut int
	// MaxTokens is the per-request KV budget for memory feasibility.
	MaxTokens int
	// NaiveBuffer selects the migration-buffer memory model (true when
	// the memory-optimized migration planner is ablated, shrinking the
	// feasible space — §6.2).
	NaiveBuffer bool
	// ReservePool is the number of extra instances kept as a candidate
	// pool for smoother substitution (two in the paper's experiments).
	ReservePool int
	// SLOLatency, when positive, switches the objective from latency
	// minimization to SLO attainment: any configuration with
	// l_req ≤ SLOLatency is acceptable and the cheapest one wins (§3.2
	// mentions this alternative target).
	SLOLatency float64
	// SpeedFloor is the heterogeneous-fleet speed correction: the slowest
	// usable GPU's speed multiplier. Latency estimates divide by it and
	// throughput estimates multiply by it, so proposals stay feasible on
	// the mesh's slowest device. Zero or one is the homogeneous baseline
	// and leaves estimates bit-identical.
	SpeedFloor float64
	// MemFloor is the heterogeneous-fleet memory correction: the smallest
	// usable instance type's memory multiplier. Shape feasibility is
	// checked against the scaled usable memory, so proposals fit on the
	// fleet's smallest-memory device. Zero or one is the homogeneous
	// baseline and leaves the feasible set bit-identical.
	MemFloor float64

	execMemo map[[3]int]float64
	// candMemo caches the sorted candidate table per (GPU budget, memory
	// floor, buffer model): Algorithm 1 re-enumerates the identical table
	// on every fleet event. Limits, sequence lengths and MaxTokens are
	// treated as fixed after first use (they are static per serving run).
	candMemo map[candKey]*candSet
}

// candKey identifies one candidate enumeration.
type candKey struct {
	gpus     int
	memFloor float64
	naive    bool
}

// candSet is a memoized candidate table: every feasible configuration
// within a GPU budget in lessConfig order, with the unslowed execution
// latency l_exe per entry so selection passes run without map lookups.
type candSet struct {
	cfgs []config.Config
	raw  []float64
}

// NewOptimizer builds an optimizer with the paper's defaults.
func NewOptimizer(est *cost.Estimator) *Optimizer {
	return &Optimizer{
		Est:             est,
		Limits:          config.DefaultLimits(),
		GPUsPerInstance: est.Params.GPUsPerInstance,
		MaxInstances:    12,
		SeqIn:           cost.DefaultSeqIn,
		SeqOut:          cost.DefaultSeqOut,
		MaxTokens:       cost.DefaultMaxTokens,
		ReservePool:     2,
	}
}

// Proposal is the optimizer's decision.
type Proposal struct {
	// Config is C_{t+1}.
	Config config.Config
	// WantInstances is #Instances(C_{t+1}) plus the reserve pool: the
	// fleet size the instance manager should target (Δ = WantInstances −
	// N_t, allocating on-demand+spot when positive, freeing on-demand
	// first when negative).
	WantInstances int
	// WantGPUs is the same target measured in devices — the quantity the
	// instance manager compares against on heterogeneous fleets, where
	// instance counts and GPU counts no longer convert by a constant. On
	// homogeneous fleets it is exactly WantInstances' GPU equivalent.
	WantGPUs int
	// Saturated is true when even the best configuration cannot reach
	// α_t (line 5 path: maximize throughput).
	Saturated bool
}

// candidate enumerates every feasible configuration using at most gpus
// devices, with D maximized per shape and every allowed batch size.
func (o *Optimizer) candidates(gpus int) []config.Config {
	var out []config.Config
	for _, b := range o.Limits.Bs {
		for _, s := range o.Est.FeasibleShapesScaled(o.Limits, b, o.MaxTokens, o.NaiveBuffer, o.memFloor()) {
			per := s.GPUsPerPipeline()
			for d := 1; d*per <= gpus; d++ {
				out = append(out, config.Config{D: d, P: s.P, M: s.M, B: b})
			}
		}
	}
	return out
}

// lreq estimates the end-to-end request latency of configuration c under
// arrival rate alpha: the model execution latency plus the expected
// batch-assembly wait (a request waits for up to B−1 peers arriving at
// rate α).
func (o *Optimizer) lreq(c config.Config, alpha float64) float64 {
	l := o.exec(c)
	if alpha > 1e-9 && c.B > 1 {
		l += float64(c.B-1) / (2 * alpha)
	}
	return l
}

// exec memoizes l_exe per (P, M, B) shape: the optimizer evaluates the same
// shape at many data-parallel degrees (the paper's latency estimation is
// likewise done offline in advance, §3.2).
func (o *Optimizer) exec(c config.Config) float64 {
	return o.slowed(o.execRaw(c))
}

// execRaw returns the memoized unslowed l_exe for shape (P, M, B).
func (o *Optimizer) execRaw(c config.Config) float64 {
	key := [3]int{c.P, c.M, c.B}
	if o.execMemo == nil {
		o.execMemo = make(map[[3]int]float64)
	}
	if v, ok := o.execMemo[key]; ok {
		return v
	}
	v := o.Est.Exec(c.P, c.M, c.B, o.SeqIn, o.SeqOut)
	o.execMemo[key] = v
	return v
}

// candSetFor returns (building on first use) the memoized candidate table
// for a GPU budget under the current memory floor and buffer model.
func (o *Optimizer) candSetFor(gpus int) *candSet {
	key := candKey{gpus: gpus, memFloor: o.memFloor(), naive: o.NaiveBuffer}
	if cs, ok := o.candMemo[key]; ok {
		return cs
	}
	cfgs := o.candidates(gpus)
	// Pre-sorting in the deterministic total order makes every filtered
	// subset come out sorted — selection below never re-sorts. All
	// configurations are distinct, so the order is unique and filtering
	// preserves exactly what sorting the subset would produce.
	sort.Slice(cfgs, func(i, j int) bool { return lessConfig(cfgs[i], cfgs[j]) })
	raw := make([]float64, len(cfgs))
	for i, c := range cfgs {
		raw[i] = o.execRaw(c)
	}
	cs := &candSet{cfgs: cfgs, raw: raw}
	if o.candMemo == nil {
		o.candMemo = make(map[candKey]*candSet)
	}
	o.candMemo[key] = cs
	return cs
}

// phiAt is φ(C) for table entry i under the current speed floor.
func (o *Optimizer) phiAt(cs *candSet, i int) float64 {
	l := o.slowed(cs.raw[i])
	if l <= 0 {
		return 0
	}
	c := cs.cfgs[i]
	return float64(c.D) * float64(c.B) / l
}

// lreqAt is l_req for table entry i under arrival rate alpha.
func (o *Optimizer) lreqAt(cs *candSet, i int, alpha float64) float64 {
	l := o.slowed(cs.raw[i])
	c := cs.cfgs[i]
	if alpha > 1e-9 && c.B > 1 {
		l += float64(c.B-1) / (2 * alpha)
	}
	return l
}

// slowed applies the heterogeneous speed floor to a latency estimate.
func (o *Optimizer) slowed(l float64) float64 {
	if o.SpeedFloor > 0 && o.SpeedFloor != 1 {
		return l / o.SpeedFloor
	}
	return l
}

// memFloor normalizes MemFloor (zero means the homogeneous baseline).
func (o *Optimizer) memFloor() float64 {
	if o.MemFloor > 0 {
		return o.MemFloor
	}
	return 1
}

// Phi exposes the serving-throughput estimate φ(C) under the optimizer's
// current speed floor.
func (o *Optimizer) Phi(c config.Config) float64 { return o.phi(c) }

// phi returns the serving throughput φ(C).
func (o *Optimizer) phi(c config.Config) float64 {
	l := o.exec(c)
	if c.IsZero() || l <= 0 {
		return 0
	}
	return float64(c.D) * float64(c.B) / l
}

// Propose implements Algorithm 1's ConfigOptimizer(N_t, C_t, α_t) when the
// fleet may grow to the provider's capacity (on-demand mixing allowed).
func (o *Optimizer) Propose(nInstances int, alpha float64) Proposal {
	return o.ProposeCapped(nInstances, alpha, o.MaxInstances)
}

// ProposeBounded restricts line 2's "cloud has enough instances for C" to
// the currently available fleet — the spot-only mode where the system
// cannot allocate on demand and must live within N_t.
func (o *Optimizer) ProposeBounded(nInstances int, alpha float64) Proposal {
	return o.ProposeCapped(nInstances, alpha, nInstances)
}

// ProposeCapped is the general form: capacity bounds how many instances the
// chosen configuration may occupy.
func (o *Optimizer) ProposeCapped(nInstances int, alpha float64, capacity int) Proposal {
	if capacity > o.MaxInstances {
		capacity = o.MaxInstances
	}
	return o.ProposeForGPUs(nInstances*o.GPUsPerInstance, alpha, capacity*o.GPUsPerInstance)
}

// ProposeForGPUs is ProposeCapped with the fleet measured in GPUs rather
// than instances — the heterogeneous-fleet entry point, where instances of
// different types contribute different device counts. gpusAvail is the
// currently usable device count; maxGPUs bounds what the chosen
// configuration may occupy (allocation capacity).
func (o *Optimizer) ProposeForGPUs(gpusAvail int, alpha float64, maxGPUs int) Proposal {
	if lim := o.MaxInstances * o.GPUsPerInstance; maxGPUs > lim {
		maxGPUs = lim
	}

	// Line 2: does any configuration the cloud can host reach α_t? The
	// candidate table is memoized and pre-sorted, so a proposal is pure
	// filter-and-select.
	cs := o.candSetFor(maxGPUs)
	anyMeet := false
	for i := range cs.cfgs {
		if o.phiAt(cs, i) >= alpha {
			anyMeet = true
			break
		}
	}

	var chosen config.Config
	saturated := false
	if anyMeet {
		// Line 3: minimize l_req subject to φ(C) ≥ α_t; among ties use
		// fewer instances (cheaper), then deterministic order. Under an
		// SLO objective, any config meeting the SLO qualifies and the
		// cheapest wins.
		if o.SLOLatency > 0 {
			chosen = o.chooseSLO(cs, alpha)
		} else {
			chosen = o.chooseMinLatency(cs, alpha)
		}
	} else {
		// Line 5: saturate — maximize throughput with what N_t offers.
		saturated = true
		chosen = o.chooseMaxThroughput(o.candSetFor(gpusAvail))
		if chosen.IsZero() {
			// Not even one pipeline fits; request the minimum viable
			// fleet and serve nothing meanwhile.
			_, shape := o.Est.MinGPUsScaled(o.Limits, o.MaxTokens, o.NaiveBuffer, o.memFloor())
			if !shape.IsZero() {
				shape.B = o.Limits.Bs[len(o.Limits.Bs)-1]
				chosen = shape
			}
		}
	}

	want, wantGPUs := 0, 0
	if !chosen.IsZero() {
		want = ceilDiv(chosen.GPUs(), o.GPUsPerInstance) + o.ReservePool
		if want > o.MaxInstances {
			want = o.MaxInstances
		}
		wantGPUs = chosen.GPUs() + o.ReservePool*o.GPUsPerInstance
		if lim := o.MaxInstances * o.GPUsPerInstance; wantGPUs > lim {
			wantGPUs = lim
		}
	}
	return Proposal{Config: chosen, WantInstances: want, WantGPUs: wantGPUs, Saturated: saturated}
}

// latencyTolerance is the window within which configurations count as
// achieving "similar minimum inference latency" (§3.2), letting the cheaper
// one win.
const latencyTolerance = 0.10

// chooseMinLatency selects among the table entries meeting α_t (the same
// filtered, sorted set the historical implementation materialized).
func (o *Optimizer) chooseMinLatency(cs *candSet, alpha float64) config.Config {
	minL := math.Inf(1)
	for i := range cs.cfgs {
		if o.phiAt(cs, i) < alpha {
			continue
		}
		if l := o.lreqAt(cs, i, alpha); l < minL {
			minL = l
		}
	}
	// Among configurations achieving similar minimum latency, pick the
	// one with the lowest monetary cost (fewest GPUs), then the lowest
	// latency, then deterministic order.
	var best config.Config
	bestL := math.Inf(1)
	found := false
	for i, c := range cs.cfgs {
		if o.phiAt(cs, i) < alpha {
			continue
		}
		l := o.lreqAt(cs, i, alpha)
		if l > minL*(1+latencyTolerance) {
			continue
		}
		switch {
		case !found,
			c.GPUs() < best.GPUs(),
			c.GPUs() == best.GPUs() && l < bestL-1e-9:
			best, bestL, found = c, l, true
		}
	}
	return best
}

func (o *Optimizer) chooseSLO(cs *candSet, alpha float64) config.Config {
	var best config.Config
	found := false
	for i, c := range cs.cfgs {
		if o.phiAt(cs, i) < alpha {
			continue
		}
		if o.lreqAt(cs, i, alpha) > o.SLOLatency {
			continue
		}
		if !found || c.GPUs() < best.GPUs() {
			best, found = c, true
		}
	}
	if !found {
		return o.chooseMinLatency(cs, alpha)
	}
	return best
}

func (o *Optimizer) chooseMaxThroughput(cs *candSet) config.Config {
	var best config.Config
	bestPhi := -1.0
	for i, c := range cs.cfgs {
		p := o.phiAt(cs, i)
		if p > bestPhi+1e-12 {
			best, bestPhi = c, p
		}
	}
	return best
}

// lessConfig is a deterministic total order on configurations.
func lessConfig(a, b config.Config) bool {
	if a.GPUs() != b.GPUs() {
		return a.GPUs() < b.GPUs()
	}
	if a.D != b.D {
		return a.D < b.D
	}
	if a.P != b.P {
		return a.P < b.P
	}
	if a.M != b.M {
		return a.M < b.M
	}
	return a.B < b.B
}

// FitToInstances shrinks a configuration's data-parallel degree to fit the
// available GPU budget, used when the controller is ablated (no shape
// switching) or by the Rerouting baseline (drop pipelines).
func FitToInstances(c config.Config, gpus int) config.Config {
	if c.IsZero() {
		return c
	}
	per := c.GPUsPerPipeline()
	d := gpus / per
	if d <= 0 {
		return config.Zero
	}
	if d < c.D {
		c.D = d
	}
	return c
}

func ceilDiv(a, b int) int { return (a + b - 1) / b }
