package market

import (
	"fmt"
	"math"
	"math/rand"
)

// typeRNG derives the independent RNG stream for one (seed, type index)
// pair. The large odd multiplier keeps adjacent seeds' streams apart, the
// same idiom the multizone availability model uses for its per-zone walks.
func typeRNG(seed int64, typeIndex int) *rand.Rand {
	return rand.New(rand.NewSource(seed + int64(typeIndex+1)*1_000_003))
}

// OU is a mean-reverting Ornstein–Uhlenbeck process on the log price:
//
//	dx = −Theta·x·dt + Sigma·dW,   price(t) = base · exp(x(t))
//
// discretized exactly at Step intervals (x_{k+1} = x_k·e^{−θΔ} + s·N(0,1)
// with the stationary-consistent step deviation s), so the sampled curve
// has the true OU autocorrelation regardless of Step. The log-space form
// keeps prices positive and makes Sigma a relative volatility: the
// stationary spread of price/base is exp(±Sigma/√(2·Theta)).
type OU struct {
	// Theta is the mean-reversion rate per second (half-life ln2/Theta).
	Theta float64
	// Sigma is the log-price volatility per √second.
	Sigma float64
	// Step is the sampling interval in seconds.
	Step float64
	// Floor clamps the price at Floor·base (a spot market never quotes 0).
	Floor float64
}

// DefaultOU reverts with a ~3-minute half-life and a ±15% stationary
// band, sampled every 15 s — calm-market drift around the base price.
func DefaultOU() OU {
	return OU{
		Theta: math.Ln2 / 180,
		Sigma: 0.013,
		Step:  15,
		Floor: 0.25,
	}
}

// Name implements Process.
func (OU) Name() string { return "ou" }

// Generate implements Process.
func (p OU) Generate(seed int64, horizon float64, types []TypeSpec) Market {
	m := Market{Process: p.Name(), Seed: seed, Curves: make(map[string]Curve, len(types))}
	for i, t := range types {
		rng := typeRNG(seed, i)
		m.Curves[t.Name] = p.curve(rng, horizon, t, nil)
	}
	return m
}

// curve samples one type's OU path. regime, when non-nil, multiplies each
// step's price — the hook the squeeze process layers its regime factor
// through, sharing one exact OU core.
func (p OU) curve(rng *rand.Rand, horizon float64, t TypeSpec, regime func() float64) Curve {
	decay := math.Exp(-p.Theta * p.Step)
	// Exact per-step deviation: Var[x_{k+1}|x_k] = σ²(1−e^{−2θΔ})/(2θ).
	stepSD := p.Sigma * math.Sqrt((1-decay*decay)/(2*p.Theta))
	c := Curve{Type: t.Name, Horizon: horizon}
	x := 0.0
	for at := 0.0; at < horizon; at += p.Step {
		mult := 1.0
		if regime != nil {
			mult = regime()
		}
		price := t.USDPerHour * math.Exp(x) * mult
		if floor := t.USDPerHour * p.Floor; price < floor {
			price = floor
		}
		c.Samples = append(c.Samples, Sample{At: at, USDPerHour: price})
		x = x*decay + stepSD*rng.NormFloat64()
	}
	if err := c.Validate(); err != nil {
		// Processes are total over their parameter space; an invalid curve
		// is a programming error, not an input error.
		panic(fmt.Sprintf("market: generated invalid curve: %v", err))
	}
	return c
}

// Squeeze is a regime-switching process: the OU calm-market drift,
// overlaid with a two-state (calm/squeeze) Markov regime. In a squeeze the
// price ramps toward Mult× its calm level and relaxes back on exit — the
// capacity-crunch spike pattern that preempts whole bid ladders at once
// and makes cost-aware policies earn their keep.
type Squeeze struct {
	// Calm is the between-squeeze dynamics.
	Calm OU
	// MeanCalm / MeanSqueeze are the regimes' mean dwell times in seconds
	// (geometric at the sampling step).
	MeanCalm, MeanSqueeze float64
	// Mult is the squeeze price multiplier the regime ramps toward.
	Mult float64
	// Ramp is the per-step fraction of the remaining gap closed while
	// ramping in or out (0 < Ramp ≤ 1; 1 = instant jumps).
	Ramp float64
}

// DefaultSqueeze squeezes roughly twice per 20-minute run: ~7 minutes of
// calm between ~2.5-minute squeezes at 3× the calm price, ramping over a
// few samples.
func DefaultSqueeze() Squeeze {
	return Squeeze{
		Calm:        DefaultOU(),
		MeanCalm:    420,
		MeanSqueeze: 150,
		Mult:        3.0,
		Ramp:        0.5,
	}
}

// Name implements Process.
func (Squeeze) Name() string { return "squeeze" }

// Generate implements Process.
func (p Squeeze) Generate(seed int64, horizon float64, types []TypeSpec) Market {
	m := Market{Process: p.Name(), Seed: seed, Curves: make(map[string]Curve, len(types))}
	for i, t := range types {
		rng := typeRNG(seed, i)
		squeezed := false
		mult := 1.0
		regime := func() float64 {
			// Flip the regime with the geometric per-step hazard, then ramp
			// the multiplier toward its regime target.
			if squeezed {
				if rng.Float64() < p.Calm.Step/p.MeanSqueeze {
					squeezed = false
				}
			} else if rng.Float64() < p.Calm.Step/p.MeanCalm {
				squeezed = true
			}
			target := 1.0
			if squeezed {
				target = p.Mult
			}
			mult += (target - mult) * p.Ramp
			return mult
		}
		m.Curves[t.Name] = p.Calm.curve(rng, horizon, t, regime)
	}
	return m
}

func init() {
	Register(DefaultOU())
	Register(DefaultSqueeze())
}
