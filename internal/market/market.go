// Package market simulates spot-price processes per instance type: seeded,
// deterministic price curves that drive both time-varying billing
// (cloud.Meter integrates the curve piecewise) and price-signal
// availability (internal/scenario preempts spot capacity when the price
// crosses a bid). Processes are registered by name, like the scenario
// library's other axes, so markets fan into sweep grids and fingerprints.
//
// A Curve is a piecewise-constant step function over virtual time, exactly
// like internal/trace's availability step functions: the price holds from
// one sample until the next, and beyond the last sample the final price
// persists (billing continues through drain windows). The same curve a
// scenario bills against is the one its availability model preempts
// against — both regenerate from the replica seed, so preemption waves and
// price spikes are two views of one market.
package market

import (
	"fmt"
	"sort"
)

// Sample is one step of a price curve: from time At the price is USDPerHour.
type Sample struct {
	At         float64
	USDPerHour float64
}

// Curve is a named piecewise-constant price process over [0, ∞): the price
// at t is the last sample at or before t, and the final sample's price
// extends beyond the last step (and beyond Horizon, so drain windows bill
// at the closing price).
type Curve struct {
	// Type is the instance-type name the curve prices.
	Type string
	// Horizon is the generation window in seconds (samples stop there).
	Horizon float64
	Samples []Sample
}

// Validate checks the step-function invariants: at least one sample,
// starting at t=0, strictly increasing times, non-negative prices.
func (c Curve) Validate() error {
	if len(c.Samples) == 0 || c.Samples[0].At != 0 {
		return fmt.Errorf("market: curve %q must start with a sample at t=0", c.Type)
	}
	prev := -1.0
	for i, s := range c.Samples {
		if s.At <= prev {
			return fmt.Errorf("market: curve %q: sample %d at %v not after %v", c.Type, i, s.At, prev)
		}
		if s.USDPerHour < 0 {
			return fmt.Errorf("market: curve %q: negative price at %v", c.Type, s.At)
		}
		prev = s.At
	}
	return nil
}

// PriceAt returns the price in effect at time t (the first sample's price
// for t before the curve starts).
func (c Curve) PriceAt(t float64) float64 {
	if len(c.Samples) == 0 {
		return 0
	}
	// Binary search: first sample strictly after t, then step back.
	i := sort.Search(len(c.Samples), func(i int) bool { return c.Samples[i].At > t })
	if i == 0 {
		return c.Samples[0].USDPerHour
	}
	return c.Samples[i-1].USDPerHour
}

// Integrate returns the accrued cost in USD of holding one instance over
// [t0, t1] at the curve's price: the piecewise integral Σ price·dt / 3600.
// The last sample's price extends indefinitely. t1 < t0 integrates to 0.
func (c Curve) Integrate(t0, t1 float64) float64 {
	if t1 <= t0 || len(c.Samples) == 0 {
		return 0
	}
	usd := 0.0
	for i, s := range c.Samples {
		segStart := s.At
		segEnd := t1
		if i+1 < len(c.Samples) && c.Samples[i+1].At < t1 {
			segEnd = c.Samples[i+1].At
		}
		if segStart < t0 {
			segStart = t0
		}
		if segEnd > segStart {
			usd += (segEnd - segStart) / 3600 * s.USDPerHour
		}
	}
	return usd
}

// MeanPrice returns the time-weighted average price over [t0, t1], or the
// first price when the interval is empty.
func (c Curve) MeanPrice(t0, t1 float64) float64 {
	if t1 <= t0 {
		return c.PriceAt(t0)
	}
	return c.Integrate(t0, t1) * 3600 / (t1 - t0)
}

// MaxPrice returns the largest sampled price.
func (c Curve) MaxPrice() float64 {
	m := 0.0
	for _, s := range c.Samples {
		if s.USDPerHour > m {
			m = s.USDPerHour
		}
	}
	return m
}

// TypeSpec names one instance type and its long-run base spot price — the
// level a mean-reverting process reverts to. The market package needs
// nothing else about a type, so cloud.InstanceType does not leak in here.
type TypeSpec struct {
	Name       string
	USDPerHour float64
}

// Market is one run's generated price curves, keyed by instance-type name.
type Market struct {
	// Process is the generating process's registry name (fingerprinted by
	// the sweep harness).
	Process string
	// Seed is the replica seed the curves were generated from.
	Seed int64
	// Curves maps instance-type name → price curve.
	Curves map[string]Curve
}

// CurveFor returns the curve priced for an instance type.
func (m Market) CurveFor(typeName string) (Curve, bool) {
	c, ok := m.Curves[typeName]
	return c, ok
}

// Process generates a deterministic market from a seed: one price curve per
// instance type, each driven by an independent per-type RNG stream derived
// from the seed and the type's index (so adding a type never perturbs the
// curves of the others).
type Process interface {
	// Name identifies the process in registries, flags and fingerprints.
	Name() string
	// Generate builds the market for one run. It must be deterministic in
	// (seed, horizon, types).
	Generate(seed int64, horizon float64, types []TypeSpec) Market
}

// processes is the registry of price processes, keyed by Name.
var processes = map[string]Process{}

// processOrder preserves registration order for catalogs.
var processOrder []string

// Register adds a price process to the registry. It panics on duplicate
// names (registration happens at init time from static tables).
func Register(p Process) {
	if _, dup := processes[p.Name()]; dup {
		panic(fmt.Sprintf("market: duplicate process %q", p.Name()))
	}
	processes[p.Name()] = p
	processOrder = append(processOrder, p.Name())
}

// Processes lists the registered process names in registration order.
func Processes() []string { return append([]string(nil), processOrder...) }

// ByName returns a registered price process.
func ByName(name string) (Process, bool) {
	p, ok := processes[name]
	return p, ok
}
