package market

import (
	"math"
	"reflect"
	"testing"
)

func testTypes() []TypeSpec {
	return []TypeSpec{{Name: "g4dn", USDPerHour: 1.9}, {Name: "g5-fast", USDPerHour: 3.0}}
}

// TestProcessesDeterministicAndValid locks the process contract: same seed
// → identical market, different seeds → different curves, every curve
// satisfies the step-function invariants, and prices stay positive.
func TestProcessesDeterministicAndValid(t *testing.T) {
	for _, name := range Processes() {
		p, ok := ByName(name)
		if !ok {
			t.Fatalf("registered process %q not resolvable", name)
		}
		var distinct bool
		prev := p.Generate(0, 1200, testTypes())
		for seed := int64(1); seed <= 10; seed++ {
			a := p.Generate(seed, 1200, testTypes())
			b := p.Generate(seed, 1200, testTypes())
			if !reflect.DeepEqual(a, b) {
				t.Fatalf("%s: seed %d not deterministic", name, seed)
			}
			for typ, c := range a.Curves {
				if err := c.Validate(); err != nil {
					t.Fatalf("%s: seed %d: %v", name, seed, err)
				}
				if c.Samples[0].USDPerHour <= 0 {
					t.Fatalf("%s/%s: non-positive opening price", name, typ)
				}
			}
			if !reflect.DeepEqual(a.Curves, prev.Curves) {
				distinct = true
			}
			prev = a
		}
		if !distinct {
			t.Errorf("%s: seeds 0..10 all produced the same market — the seed is ignored", name)
		}
	}
}

// TestTypeStreamsIndependent asserts the per-type RNG derivation: adding a
// type to the table must not perturb the curves of existing types (the
// same guarantee multizone gives its per-zone walks).
func TestTypeStreamsIndependent(t *testing.T) {
	one := DefaultSqueeze().Generate(7, 1200, testTypes()[:1])
	two := DefaultSqueeze().Generate(7, 1200, testTypes())
	if !reflect.DeepEqual(one.Curves["g4dn"], two.Curves["g4dn"]) {
		t.Error("adding a second type changed the first type's curve")
	}
	if reflect.DeepEqual(two.Curves["g4dn"].Samples, two.Curves["g5-fast"].Samples) {
		t.Error("two types share one RNG stream — curves are identical")
	}
}

// TestCurveIntegrateClosedForm pins the piecewise integral against a
// hand-computed staircase: Integrate must equal the exact sum of
// price·duration/3600 over the overlapped segments, including partial
// first/last segments and the extension beyond the final sample.
func TestCurveIntegrateClosedForm(t *testing.T) {
	c := Curve{Type: "t", Horizon: 400, Samples: []Sample{
		{At: 0, USDPerHour: 1.0},
		{At: 100, USDPerHour: 3.0},
		{At: 200, USDPerHour: 0.5},
	}}
	cases := []struct {
		t0, t1, want float64
	}{
		{0, 100, 100.0 / 3600 * 1.0},
		{0, 200, (100*1.0 + 100*3.0) / 3600},
		{50, 150, (50*1.0 + 50*3.0) / 3600},
		{150, 250, (50*3.0 + 50*0.5) / 3600},
		{200, 1000, 800 * 0.5 / 3600}, // final price extends past the horizon
		{-50, 50, 50.0 / 3600 * 1.0},  // nothing bills before the curve starts
		{300, 300, 0},
		{300, 200, 0}, // inverted interval
	}
	for _, tc := range cases {
		if got := c.Integrate(tc.t0, tc.t1); math.Abs(got-tc.want) > 1e-12 {
			t.Errorf("Integrate(%v,%v) = %v, want %v", tc.t0, tc.t1, got, tc.want)
		}
	}
	// Additivity: ∫[a,c] = ∫[a,b] + ∫[b,c] for any split point.
	for _, b := range []float64{0, 33.3, 100, 177, 200, 350} {
		sum := c.Integrate(0, b) + c.Integrate(b, 400)
		if whole := c.Integrate(0, 400); math.Abs(sum-whole) > 1e-12 {
			t.Errorf("split at %v: %v + rest != %v", b, sum, whole)
		}
	}
}

// TestCurvePriceAt pins step semantics at and between sample times.
func TestCurvePriceAt(t *testing.T) {
	c := Curve{Type: "t", Horizon: 300, Samples: []Sample{
		{At: 0, USDPerHour: 2}, {At: 100, USDPerHour: 5},
	}}
	for _, tc := range []struct{ at, want float64 }{
		{-1, 2}, {0, 2}, {99.9, 2}, {100, 5}, {1e6, 5},
	} {
		if got := c.PriceAt(tc.at); got != tc.want {
			t.Errorf("PriceAt(%v) = %v, want %v", tc.at, got, tc.want)
		}
	}
	if got := c.MeanPrice(0, 200); got != 3.5 {
		t.Errorf("MeanPrice = %v, want 3.5", got)
	}
	if got := c.MaxPrice(); got != 5 {
		t.Errorf("MaxPrice = %v, want 5", got)
	}
}

// TestSqueezeSpikes checks the regime actually fires: over a spread of
// seeds the squeeze process must visit prices well above the calm band
// (OU alone stays within a few stationary deviations of base).
func TestSqueezeSpikes(t *testing.T) {
	spiked := 0
	for seed := int64(1); seed <= 20; seed++ {
		m := DefaultSqueeze().Generate(seed, 1200, testTypes()[:1])
		if m.Curves["g4dn"].MaxPrice() > 1.9*1.8 {
			spiked++
		}
	}
	if spiked < 10 {
		t.Errorf("only %d/20 seeds squeezed above 1.8×base — regime switching too rare", spiked)
	}
	// And the OU calm process must NOT routinely reach squeeze levels.
	for seed := int64(1); seed <= 20; seed++ {
		m := DefaultOU().Generate(seed, 1200, testTypes()[:1])
		if m.Curves["g4dn"].MaxPrice() > 1.9*1.8 {
			t.Errorf("seed %d: plain OU reached %.2f — volatility miscalibrated", seed, m.Curves["g4dn"].MaxPrice())
		}
	}
}

// TestCurveValidate covers the invariant checks.
func TestCurveValidate(t *testing.T) {
	bad := []Curve{
		{Type: "empty"},
		{Type: "late", Samples: []Sample{{At: 5, USDPerHour: 1}}},
		{Type: "order", Samples: []Sample{{At: 0, USDPerHour: 1}, {At: 0, USDPerHour: 2}}},
		{Type: "neg", Samples: []Sample{{At: 0, USDPerHour: -1}}},
	}
	for _, c := range bad {
		if c.Validate() == nil {
			t.Errorf("curve %q validated", c.Type)
		}
	}
}

// TestRegistry guards lookups and listing order.
func TestRegistry(t *testing.T) {
	if got := Processes(); len(got) < 2 || got[0] != "ou" || got[1] != "squeeze" {
		t.Errorf("Processes() = %v, want [ou squeeze ...]", got)
	}
	if _, ok := ByName("nope"); ok {
		t.Error("unknown process resolved")
	}
}
