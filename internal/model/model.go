// Package model describes the large language models being served: their
// transformer architecture, parameter and KV-cache byte accounting, and the
// layer/shard partition math used by every parallel configuration.
//
// Only sizes and shapes matter to a serving control plane — no weights are
// stored. The three models evaluated in the paper (Table 1) are provided as
// built-in specs; arbitrary models can be constructed directly.
package model

import "fmt"

const (
	// GB is 10⁹ bytes, matching the paper's units.
	GB = 1e9

	// BytesPerValue is the storage width of an activation / KV element
	// (fp16) as used by the runtime engine for cache and communication.
	BytesPerValue = 2
)

// Spec describes one generative LLM.
type Spec struct {
	// Name identifies the model, e.g. "GPT-20B".
	Name string
	// Layers is the number of stacked transformer layers.
	Layers int
	// Hidden is the model (embedding) dimension.
	Hidden int
	// Heads is the number of attention heads. Tensor-model parallelism
	// degree M must divide Heads.
	Heads int
	// ParamBytes is the total serialized parameter size in bytes, as
	// reported in Table 1 of the paper (includes embeddings and
	// framework overhead).
	ParamBytes float64
}

// Validate reports whether the spec is internally consistent.
func (s Spec) Validate() error {
	switch {
	case s.Name == "":
		return fmt.Errorf("model: empty name")
	case s.Layers <= 0:
		return fmt.Errorf("model %s: layers = %d", s.Name, s.Layers)
	case s.Hidden <= 0:
		return fmt.Errorf("model %s: hidden = %d", s.Name, s.Hidden)
	case s.Heads <= 0 || s.Hidden%s.Heads != 0:
		return fmt.Errorf("model %s: heads = %d does not divide hidden %d", s.Name, s.Heads, s.Hidden)
	case s.ParamBytes <= 0:
		return fmt.Errorf("model %s: param bytes = %v", s.Name, s.ParamBytes)
	}
	return nil
}

// LayerParamBytes returns the parameter bytes attributed to one transformer
// layer. Embedding and head parameters are folded uniformly into the layers,
// which keeps migration-plan accounting simple without changing totals.
func (s Spec) LayerParamBytes() float64 {
	return s.ParamBytes / float64(s.Layers)
}

// KVBytesPerTokenLayer returns the KV-cache bytes one token occupies in one
// layer: keys and values, each Hidden wide, BytesPerValue bytes per element.
func (s Spec) KVBytesPerTokenLayer() float64 {
	return 2 * float64(s.Hidden) * BytesPerValue
}

// KVBytesPerToken returns the KV-cache bytes one token occupies across all
// layers of the model.
func (s Spec) KVBytesPerToken() float64 {
	return s.KVBytesPerTokenLayer() * float64(s.Layers)
}

// Built-in specs for the models evaluated in the paper. Sizes come from
// Table 1. Two architectural liberties are taken so that the paper's own
// parallel configurations are expressible (documented in DESIGN.md):
// GPT-20B uses 48 layers (the paper runs P=3 pipeline stages) and LLaMA-30B
// uses 64 attention heads (the paper runs M=8 tensor shards).
var (
	OPT6B7 = Spec{
		Name:       "OPT-6.7B",
		Layers:     32,
		Hidden:     4096,
		Heads:      32,
		ParamBytes: 25.0 * GB,
	}

	GPT20B = Spec{
		Name:       "GPT-20B",
		Layers:     48,
		Hidden:     6144,
		Heads:      48,
		ParamBytes: 74.5 * GB,
	}

	LLaMA30B = Spec{
		Name:       "LLaMA-30B",
		Layers:     60,
		Hidden:     6656,
		Heads:      64,
		ParamBytes: 111.8 * GB,
	}
)

// All returns the three paper models in Table 1 order.
func All() []Spec {
	return []Spec{OPT6B7, GPT20B, LLaMA30B}
}

// ByName looks up a built-in spec.
func ByName(name string) (Spec, bool) {
	for _, s := range All() {
		if s.Name == name {
			return s, true
		}
	}
	return Spec{}, false
}
