package model

import "fmt"

// StageRange returns the half-open layer interval [lo, hi) assigned to
// pipeline stage p (0-based) when l layers are split into P balanced stages.
// The first l%P stages receive one extra layer, so stage sizes differ by at
// most one.
func StageRange(l, P, p int) (lo, hi int) {
	if P <= 0 || p < 0 || p >= P {
		panic(fmt.Sprintf("model: StageRange(l=%d, P=%d, p=%d)", l, P, p))
	}
	q, r := l/P, l%P
	lo = p*q + min(p, r)
	size := q
	if p < r {
		size++
	}
	return lo, lo + size
}

// MaxStageLayers returns the largest stage size for l layers over P stages.
func MaxStageLayers(l, P int) int {
	if P <= 0 {
		panic(fmt.Sprintf("model: MaxStageLayers(l=%d, P=%d)", l, P))
	}
	q, r := l/P, l%P
	if r > 0 {
		return q + 1
	}
	return q
}

// StageOf returns which stage owns layer index layer under P stages.
func StageOf(l, P, layer int) int {
	if layer < 0 || layer >= l {
		panic(fmt.Sprintf("model: StageOf layer %d out of [0,%d)", layer, l))
	}
	for p := 0; p < P; p++ {
		lo, hi := StageRange(l, P, p)
		if layer >= lo && layer < hi {
			return p
		}
	}
	panic("model: unreachable")
}

// ShardFrac returns the tensor-shard fraction interval [fracLo, fracHi)
// owned by shard m of M tensor-parallel shards.
func ShardFrac(M, m int) (fracLo, fracHi float64) {
	if M <= 0 || m < 0 || m >= M {
		panic(fmt.Sprintf("model: ShardFrac(M=%d, m=%d)", M, m))
	}
	return float64(m) / float64(M), float64(m+1) / float64(M)
}

// Rect is a rectangle of model context: a contiguous run of transformer
// layers crossed with a tensor-shard fraction interval. The model context
// held by a GPU at pipeline-stage-shard position (p, m) of a (P, M)
// partition is exactly one Rect.
type Rect struct {
	LayerLo, LayerHi int     // half-open layer interval
	FracLo, FracHi   float64 // half-open shard-fraction interval
}

// PositionRect returns the model-context rectangle owned by position (p, m)
// of a (P, M) partition of spec.
func PositionRect(spec Spec, P, M, p, m int) Rect {
	lo, hi := StageRange(spec.Layers, P, p)
	flo, fhi := ShardFrac(M, m)
	return Rect{LayerLo: lo, LayerHi: hi, FracLo: flo, FracHi: fhi}
}

// Empty reports whether the rectangle covers no context.
func (r Rect) Empty() bool {
	return r.LayerHi <= r.LayerLo || r.FracHi <= r.FracLo
}

// Layers returns the number of layers covered.
func (r Rect) Layers() int {
	if r.LayerHi <= r.LayerLo {
		return 0
	}
	return r.LayerHi - r.LayerLo
}

// FracWidth returns the width of the shard-fraction interval.
func (r Rect) FracWidth() float64 {
	if r.FracHi <= r.FracLo {
		return 0
	}
	return r.FracHi - r.FracLo
}

// ParamBytes returns the parameter bytes the rectangle covers for spec.
func (r Rect) ParamBytes(spec Spec) float64 {
	return float64(r.Layers()) * r.FracWidth() * spec.LayerParamBytes()
}

// Intersect returns the rectangle common to r and o (possibly empty).
func (r Rect) Intersect(o Rect) Rect {
	out := Rect{
		LayerLo: max(r.LayerLo, o.LayerLo),
		LayerHi: min(r.LayerHi, o.LayerHi),
		FracLo:  maxf(r.FracLo, o.FracLo),
		FracHi:  minf(r.FracHi, o.FracHi),
	}
	if out.Empty() {
		return Rect{}
	}
	return out
}

// OverlapParamBytes returns the parameter bytes shared between r and o.
func (r Rect) OverlapParamBytes(spec Spec, o Rect) float64 {
	return r.Intersect(o).ParamBytes(spec)
}

// LayerRect returns the sub-rectangle of r restricted to a single layer, or
// an empty Rect when the layer is outside r.
func (r Rect) LayerRect(layer int) Rect {
	if layer < r.LayerLo || layer >= r.LayerHi {
		return Rect{}
	}
	return Rect{LayerLo: layer, LayerHi: layer + 1, FracLo: r.FracLo, FracHi: r.FracHi}
}

func maxf(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}

func minf(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}
