package model

import (
	"math"
	"testing"
	"testing/quick"
)

func TestBuiltinSpecsValidate(t *testing.T) {
	for _, s := range All() {
		if err := s.Validate(); err != nil {
			t.Errorf("%s: %v", s.Name, err)
		}
	}
}

func TestValidateRejectsBadSpecs(t *testing.T) {
	cases := []Spec{
		{},
		{Name: "x", Layers: 0, Hidden: 4, Heads: 2, ParamBytes: 1},
		{Name: "x", Layers: 2, Hidden: 0, Heads: 2, ParamBytes: 1},
		{Name: "x", Layers: 2, Hidden: 5, Heads: 2, ParamBytes: 1}, // heads ∤ hidden
		{Name: "x", Layers: 2, Hidden: 4, Heads: 2, ParamBytes: 0},
	}
	for i, s := range cases {
		if err := s.Validate(); err == nil {
			t.Errorf("case %d: invalid spec accepted: %+v", i, s)
		}
	}
}

func TestByName(t *testing.T) {
	s, ok := ByName("GPT-20B")
	if !ok || s.Layers != GPT20B.Layers {
		t.Fatalf("ByName(GPT-20B) = %+v, %v", s, ok)
	}
	if _, ok := ByName("nope"); ok {
		t.Fatal("ByName(nope) found something")
	}
}

func TestTable1Sizes(t *testing.T) {
	want := map[string]float64{
		"OPT-6.7B":  25.0 * GB,
		"GPT-20B":   74.5 * GB,
		"LLaMA-30B": 111.8 * GB,
	}
	for name, bytes := range want {
		s, ok := ByName(name)
		if !ok {
			t.Fatalf("missing %s", name)
		}
		if s.ParamBytes != bytes {
			t.Errorf("%s: ParamBytes = %v, want %v", name, s.ParamBytes, bytes)
		}
	}
}

func TestKVBytes(t *testing.T) {
	// §2.1 cites ~1.7 GB per sequence on LLaMA-13B (2×5120×2×40×2048).
	// The same accounting gives a 640-token LLaMA-30B sequence
	// 2×6656×2×60×640 ≈ 1.02 GB — consistent order of magnitude.
	got := LLaMA30B.KVBytesPerToken() * 640
	if got < 0.9*GB || got > 1.2*GB {
		t.Fatalf("LLaMA-30B 640-token KV = %v GB, want ≈1.02 GB", got/GB)
	}
	if LLaMA30B.KVBytesPerTokenLayer()*float64(LLaMA30B.Layers) != LLaMA30B.KVBytesPerToken() {
		t.Fatal("per-layer × layers != per-token total")
	}
}

func TestStageRangeBalanced(t *testing.T) {
	// 48 layers over 3 stages: 16 each.
	for p, want := range [][2]int{{0, 16}, {16, 32}, {32, 48}} {
		lo, hi := StageRange(48, 3, p)
		if lo != want[0] || hi != want[1] {
			t.Errorf("StageRange(48,3,%d) = [%d,%d), want %v", p, lo, hi, want)
		}
	}
	// 44 layers over 3 stages: 15,15,14.
	sizes := []int{}
	for p := 0; p < 3; p++ {
		lo, hi := StageRange(44, 3, p)
		sizes = append(sizes, hi-lo)
	}
	if sizes[0] != 15 || sizes[1] != 15 || sizes[2] != 14 {
		t.Errorf("StageRange(44,3) sizes = %v", sizes)
	}
	if MaxStageLayers(44, 3) != 15 {
		t.Errorf("MaxStageLayers(44,3) = %d", MaxStageLayers(44, 3))
	}
	if MaxStageLayers(48, 3) != 16 {
		t.Errorf("MaxStageLayers(48,3) = %d", MaxStageLayers(48, 3))
	}
}

// Property: stage ranges tile [0, L) exactly, in order, for any L ≥ P ≥ 1.
func TestQuickStageRangesTile(t *testing.T) {
	f := func(lRaw, pRaw uint8) bool {
		L := int(lRaw%200) + 1
		P := int(pRaw%12) + 1
		if P > L {
			P = L
		}
		next := 0
		for p := 0; p < P; p++ {
			lo, hi := StageRange(L, P, p)
			if lo != next || hi < lo {
				return false
			}
			if hi-lo > MaxStageLayers(L, P) {
				return false
			}
			next = hi
		}
		return next == L
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestStageOf(t *testing.T) {
	for layer := 0; layer < 48; layer++ {
		p := StageOf(48, 3, layer)
		lo, hi := StageRange(48, 3, p)
		if layer < lo || layer >= hi {
			t.Fatalf("StageOf(48,3,%d) = %d with range [%d,%d)", layer, p, lo, hi)
		}
	}
}

func TestShardFrac(t *testing.T) {
	lo, hi := ShardFrac(4, 2)
	if lo != 0.5 || hi != 0.75 {
		t.Fatalf("ShardFrac(4,2) = [%v,%v)", lo, hi)
	}
}

func TestPositionRectBytesSumToTotal(t *testing.T) {
	// Summing the bytes of every position of a partition must recover the
	// total model size exactly.
	for _, spec := range All() {
		for _, pm := range [][2]int{{1, 1}, {2, 4}, {3, 4}, {2, 8}, {4, 2}} {
			P, M := pm[0], pm[1]
			total := 0.0
			for p := 0; p < P; p++ {
				for m := 0; m < M; m++ {
					total += PositionRect(spec, P, M, p, m).ParamBytes(spec)
				}
			}
			if math.Abs(total-spec.ParamBytes) > 1 { // 1 byte tolerance
				t.Errorf("%s (P=%d,M=%d): sum %v != total %v", spec.Name, P, M, total, spec.ParamBytes)
			}
		}
	}
}

func TestRectIntersect(t *testing.T) {
	a := Rect{LayerLo: 0, LayerHi: 16, FracLo: 0, FracHi: 0.5}
	b := Rect{LayerLo: 8, LayerHi: 24, FracLo: 0.25, FracHi: 1}
	got := a.Intersect(b)
	want := Rect{LayerLo: 8, LayerHi: 16, FracLo: 0.25, FracHi: 0.5}
	if got != want {
		t.Fatalf("Intersect = %+v, want %+v", got, want)
	}
	if !a.Intersect(Rect{LayerLo: 20, LayerHi: 30, FracLo: 0, FracHi: 1}).Empty() {
		t.Fatal("disjoint layers should produce empty intersection")
	}
	if !a.Intersect(Rect{LayerLo: 0, LayerHi: 16, FracLo: 0.5, FracHi: 1}).Empty() {
		t.Fatal("disjoint fractions should produce empty intersection")
	}
}

// Property: overlap is symmetric and bounded by either rectangle's bytes.
func TestQuickOverlapSymmetricBounded(t *testing.T) {
	spec := GPT20B
	f := func(a0, a1, b0, b1 uint8, fa, fb uint16) bool {
		mk := func(l0, l1 uint8, f uint16) Rect {
			lo, hi := int(l0%48), int(l1%48)+1
			if lo > hi {
				lo, hi = hi, lo
			}
			flo := float64(f%100) / 100
			fhi := flo + float64(f%50+1)/100
			if fhi > 1 {
				fhi = 1
			}
			return Rect{LayerLo: lo, LayerHi: hi, FracLo: flo, FracHi: fhi}
		}
		a, b := mk(a0, a1, fa), mk(b0, b1, fb)
		ab := a.OverlapParamBytes(spec, b)
		ba := b.OverlapParamBytes(spec, a)
		if math.Abs(ab-ba) > 1e-6 {
			return false
		}
		return ab <= a.ParamBytes(spec)+1e-6 && ab <= b.ParamBytes(spec)+1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestLayerRect(t *testing.T) {
	r := Rect{LayerLo: 4, LayerHi: 8, FracLo: 0.25, FracHi: 0.5}
	lr := r.LayerRect(5)
	if lr.Layers() != 1 || lr.LayerLo != 5 || lr.FracLo != 0.25 {
		t.Fatalf("LayerRect(5) = %+v", lr)
	}
	if !r.LayerRect(8).Empty() || !r.LayerRect(3).Empty() {
		t.Fatal("out-of-range layer should be empty")
	}
}
