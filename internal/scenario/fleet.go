package scenario

import (
	"fmt"

	"spotserve/internal/cloud"
)

// FleetPreset is a named provider configuration: the instance-type table a
// scenario's fleet draws from.
type FleetPreset struct {
	// Name identifies the preset in registries and fingerprints.
	Name string
	// Params is the provider configuration (Seed is overwritten per run).
	Params cloud.Params
	// Note is a one-line description for catalogs.
	Note string
}

// fleetPresets is the registry of fleet presets, keyed by name.
var fleetPresets = map[string]FleetPreset{}

// fleetOrder preserves registration order for catalogs.
var fleetOrder []string

// RegisterFleet adds a fleet preset. It panics on duplicate names or
// invalid parameters.
func RegisterFleet(p FleetPreset) {
	if _, dup := fleetPresets[p.Name]; dup {
		panic(fmt.Sprintf("scenario: duplicate fleet preset %q", p.Name))
	}
	if err := p.Params.Validate(); err != nil {
		panic(fmt.Sprintf("scenario: fleet preset %q: %v", p.Name, err))
	}
	fleetPresets[p.Name] = p
	fleetOrder = append(fleetOrder, p.Name)
}

// Fleets lists the registered fleet-preset names in registration order.
func Fleets() []string { return append([]string(nil), fleetOrder...) }

// FleetByName returns the preset registered under name.
func FleetByName(name string) (FleetPreset, bool) {
	p, ok := fleetPresets[name]
	return p, ok
}

func init() {
	// The paper's testbed: identical g4dn.12xlarge instances (4× T4).
	RegisterFleet(FleetPreset{
		Name:   "homog",
		Params: cloud.DefaultParams(),
		Note:   "homogeneous g4dn baseline: 4 GPUs, speed 1.0, 1.9/3.9 USD/h",
	})

	// Speed-heterogeneous: half the spot pool is a faster, pricier
	// generation. Pipelines decode at their slowest member's pace, the
	// optimizer plans at the fleet's speed floor, and the device mapper
	// prefers the fast devices when context reuse ties.
	fast := cloud.DefaultParams()
	fast.Types = []cloud.InstanceType{
		{Name: "g4dn", GPUs: 4, Speed: 1.0, MemScale: 1.0,
			SpotUSDPerHour: 1.9, OnDemandUSDPerHour: 3.9},
		{Name: "g5-fast", GPUs: 4, Speed: 1.6, MemScale: 1.5,
			SpotUSDPerHour: 3.0, OnDemandUSDPerHour: 6.1},
	}
	RegisterFleet(FleetPreset{
		Name:   "hetero-speed",
		Params: fast,
		Note:   "g4dn (speed 1.0) interleaved with g5 (speed 1.6, mem ×1.5)",
	})

	// Count-heterogeneous: small 2-GPU instances mixed in, so instance
	// counts no longer convert to GPU counts by a constant and the
	// GPU-denominated optimizer path is exercised.
	small := cloud.DefaultParams()
	small.Types = []cloud.InstanceType{
		{Name: "g4dn", GPUs: 4, Speed: 1.0, MemScale: 1.0,
			SpotUSDPerHour: 1.9, OnDemandUSDPerHour: 3.9},
		{Name: "g4dn-half", GPUs: 2, Speed: 1.0, MemScale: 1.0,
			SpotUSDPerHour: 1.0, OnDemandUSDPerHour: 2.0},
	}
	RegisterFleet(FleetPreset{
		Name:   "hetero-small",
		Params: small,
		Note:   "4-GPU instances interleaved with cheap 2-GPU instances",
	})

	// Memory-heterogeneous: an older small-memory generation mixed in.
	// The optimizer's per-type memory feasibility plans against the
	// fleet's memory floor, so shapes that would overflow the small
	// devices are excluded while any low-memory instance is usable.
	lowmem := cloud.DefaultParams()
	lowmem.Types = []cloud.InstanceType{
		{Name: "g4dn", GPUs: 4, Speed: 1.0, MemScale: 1.0,
			SpotUSDPerHour: 1.9, OnDemandUSDPerHour: 3.9},
		{Name: "g4-lowmem", GPUs: 4, Speed: 0.9, MemScale: 0.8,
			SpotUSDPerHour: 1.2, OnDemandUSDPerHour: 2.6},
	}
	RegisterFleet(FleetPreset{
		Name:   "hetero-lowmem",
		Params: lowmem,
		Note:   "g4dn interleaved with a cheaper mem ×0.8 generation; feasibility uses the memory floor",
	})
}
