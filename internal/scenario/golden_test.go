package scenario

import (
	"flag"
	"os"
	"path/filepath"
	"testing"

	"spotserve/internal/experiments"
	"spotserve/internal/metrics"
)

// update rewrites golden files with the current render output:
//
//	go test ./internal/scenario/ -run Golden -update
//
// Goldens pin rendering byte-for-byte; regenerate them only when a render
// change is deliberate, and say why in the commit message.
var update = flag.Bool("update", false, "rewrite golden files with current output")

// checkGolden compares got against the named golden file, rewriting it
// under -update.
func checkGolden(t *testing.T, name, got string) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *update {
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("golden file unreadable (run with -update to create): %v", err)
	}
	if got != string(want) {
		t.Fatalf("render diverged from golden %s (rerun with -update if deliberate):\ngot:\n%s\nwant:\n%s", path, got, want)
	}
}

// aggOf folds values into an Agg for synthetic rows.
func aggOf(vals ...float64) metrics.Agg {
	var a metrics.Agg
	for _, v := range vals {
		a.Add(v)
	}
	return a
}

// TestGoldenRenderGridErrorFooter pins RenderGrid byte-for-byte on
// synthetic rows exercising every layout branch at once: a replicated row
// with bands and a market footer, a healthy unreplicated row, and two
// fault-isolated failures rendering n/a plus the error footer.
func TestGoldenRenderGridErrorFooter(t *testing.T) {
	healthy := GridRow{
		Avail: "diurnal", Policy: "fixed", Fleet: "homog", Market: "ou",
		System:  experiments.SpotServe,
		Summary: metrics.Summary{Count: 528, Avg: 47.6, P95: 80.1, P99: 94.4},
		CostUSD: 19.83, OnDemand: 14, SLO: 120,
		Reps: experiments.Replication{
			Seeds: []int64{1, 2, 3},
			Avg:   aggOf(47.6, 48.1, 46.9),
			P95:   aggOf(80.1, 81.0, 79.2),
			P99:   aggOf(94.4, 96.0, 92.1),
			Cost:  aggOf(19.83, 20.01, 19.65),
		},
		CostPer1kTok: aggOf(0.298, 0.301, 0.295),
		SLOPct:       aggOf(100, 99.5, 100),
		CacheHitRate: aggOf(0.84, 0.86, 0.85),
	}
	single := GridRow{
		Avail: "bursty", Policy: "slo-latency", Fleet: "homog",
		System:  experiments.Reroute,
		Summary: metrics.Summary{Count: 400, Avg: 52.0, P95: 88.5, P99: 101.2},
		CostUSD: 17.40, OnDemand: 9, SLO: 120,
		Reps: experiments.Replication{
			Seeds: []int64{1},
			Avg:   aggOf(52.0), P95: aggOf(88.5), P99: aggOf(101.2), Cost: aggOf(17.40),
		},
		CostPer1kTok: aggOf(0.264),
		SLOPct:       aggOf(97.3),
		CacheHitRate: aggOf(0.80),
	}
	failed1 := GridRow{
		Avail: "crunch", Policy: "cost-cap", Fleet: "homog",
		System: experiments.SpotServe, SLO: 120,
		Err: "seed 2: simulated worker panic: chaos fault", Retries: 1,
	}
	failed2 := GridRow{
		Avail: "multizone", Policy: "predictive", Fleet: "g4dn-half",
		System: experiments.Reparallel, SLO: 120,
		Err: "seed 1: injected cache corruption",
	}

	rows := []GridRow{healthy, single, failed1, failed2}
	checkGolden(t, "rendergrid_error_footer.golden", RenderGrid(rows))

	// The same rows without any replication pin the band-free layout (no
	// band columns, no bands footer).
	noBands := []GridRow{single, failed2}
	checkGolden(t, "rendergrid_nobands.golden", RenderGrid(noBands))
}
