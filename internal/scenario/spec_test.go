package scenario

import (
	"strings"
	"testing"

	"spotserve/internal/experiments"
)

func TestParseJobSpecDefaults(t *testing.T) {
	s, err := ParseJobSpec([]byte(`{}`))
	if err != nil {
		t.Fatalf("empty spec: %v", err)
	}
	g, err := s.Grid()
	if err != nil {
		t.Fatal(err)
	}
	cells, err := g.Cells()
	if err != nil {
		t.Fatal(err)
	}
	def, _ := DefaultGrid().Cells()
	if len(cells) != len(def) {
		t.Fatalf("empty spec expands to %d cells, want the default grid's %d", len(cells), len(def))
	}
	sw := s.Sweep()
	if len(sw.Seeds) != 1 || sw.Seeds[0] != 1 {
		t.Fatalf("default sweep seeds = %v, want [1]", sw.Seeds)
	}
}

func TestParseJobSpecFull(t *testing.T) {
	body := `{
		"avail": ["diurnal", "bursty"],
		"policies": ["fixed"],
		"fleets": ["homog"],
		"systems": ["SpotServe", "reroute"],
		"market": "ou",
		"model": "OPT-6.7B",
		"slo": 90,
		"seed": 7,
		"seeds": 3
	}`
	s, err := ParseJobSpec([]byte(body))
	if err != nil {
		t.Fatal(err)
	}
	g, err := s.Grid()
	if err != nil {
		t.Fatal(err)
	}
	if g.Model.Name != "OPT-6.7B" || g.SLO != 90 || g.Market != "ou" {
		t.Fatalf("grid = %+v", g)
	}
	if len(g.Systems) != 2 || g.Systems[0] != experiments.SpotServe || g.Systems[1] != experiments.Reroute {
		t.Fatalf("systems = %v", g.Systems)
	}
	cells, err := g.Cells()
	if err != nil {
		t.Fatal(err)
	}
	// 2 avail × 1 policy × 1 fleet × 2 systems (fixed policy keeps the
	// baseline rows).
	if len(cells) != 4 {
		t.Fatalf("%d cells, want 4", len(cells))
	}
	sw := s.Sweep()
	if want := []int64{7, 8, 9}; len(sw.Seeds) != 3 || sw.Seeds[0] != 7 || sw.Seeds[2] != 9 {
		t.Fatalf("sweep seeds = %v, want %v", sw.Seeds, want)
	}
}

func TestParseJobSpecRejects(t *testing.T) {
	cases := []struct {
		name, body, wantErr string
	}{
		{"unknown field", `{"avial": ["diurnal"]}`, "unknown field"},
		{"bad json", `{"avail": [`, "bad job spec"},
		{"trailing data", `{} {}`, "trailing"},
		{"unknown avail", `{"avail": ["sunny"]}`, "unknown availability model"},
		{"unknown policy", `{"policies": ["yolo"]}`, "unknown policy"},
		{"unknown fleet", `{"fleets": ["armada"]}`, "unknown fleet"},
		{"unknown system", `{"systems": ["vllm"]}`, "unknown system"},
		{"unknown market", `{"market": "nyse"}`, "unknown market process"},
		{"unknown model", `{"model": "GPT-5"}`, "unknown model"},
		{"negative seeds", `{"seeds": -1}`, "seeds must be"},
		{"negative slo", `{"slo": -5}`, "slo must be"},
	}
	for _, c := range cases {
		_, err := ParseJobSpec([]byte(c.body))
		if err == nil {
			t.Errorf("%s: accepted", c.name)
			continue
		}
		if !strings.Contains(err.Error(), c.wantErr) {
			t.Errorf("%s: error %q does not mention %q", c.name, err, c.wantErr)
		}
	}
}

func TestSystemByNameAliases(t *testing.T) {
	for name, want := range map[string]experiments.System{
		"spotserve":         experiments.SpotServe,
		"SpotServe":         experiments.SpotServe,
		"reparallel":        experiments.Reparallel,
		"Reparallelization": experiments.Reparallel,
		"reroute":           experiments.Reroute,
		"rerouting":         experiments.Reroute,
	} {
		got, err := SystemByName(name)
		if err != nil || got != want {
			t.Errorf("SystemByName(%q) = %v, %v; want %v", name, got, err, want)
		}
	}
}
