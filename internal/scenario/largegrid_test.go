package scenario

import (
	"testing"

	"spotserve/internal/experiments"
)

// TestLadderNameRoundTrip pins the parameter-encoded ladder-variant scheme:
// names resolve to models carrying the encoded parameters and identity, and
// malformed or non-canonical spellings are rejected rather than aliased.
func TestLadderNameRoundTrip(t *testing.T) {
	name := LadderName(2.2, 0.9)
	if name != "price-signal/2.2x0.9" {
		t.Fatalf("LadderName = %q", name)
	}
	m, ok := ModelByName(name)
	if !ok {
		t.Fatalf("ModelByName(%q) not resolved", name)
	}
	ps, ok := m.(PriceSignal)
	if !ok || ps.Bid != 2.2 || ps.Spread != 0.9 || m.Name() != name {
		t.Fatalf("resolved %+v name=%q", ps, m.Name())
	}
	// Non-variant parameters inherit the default model.
	def := DefaultPriceSignal()
	if ps.Pool != def.Pool || ps.Min != def.Min || ps.Process != def.Process {
		t.Fatalf("variant did not inherit defaults: %+v", ps)
	}
	for _, bad := range []string{
		"price-signal/2.2",       // no spread
		"price-signal/2.2x",      // empty spread
		"price-signal/x0.9",      // empty bid
		"price-signal/0x0.9",     // non-positive bid
		"price-signal/2.2x-1",    // non-positive spread
		"price-signal/2.20x0.9",  // non-canonical float spelling
		"price-signal/1e0x0.9",   // non-canonical float spelling
		"price-signal/2.2x0.9x1", // trailing junk
		"ladder/2.2x0.9",         // wrong family
	} {
		if _, ok := ModelByName(bad); ok {
			t.Errorf("ModelByName(%q) resolved, want rejection", bad)
		}
	}
	// The variant space must stay out of the registry: DefaultGrid mirrors
	// Models(), and its cell set is pinned by goldens.
	for _, n := range Models() {
		if _, ok := ParseLadder(n); ok {
			t.Errorf("registered model %q parses as a ladder variant", n)
		}
	}
}

// TestLadderVariantsTraceDistinct checks variants actually differ: a tight
// ladder and a wide ladder must preempt differently on the same price curve.
func TestLadderVariantsTraceDistinct(t *testing.T) {
	a, _ := ModelByName(LadderName(2.0, 0.3))
	b, _ := ModelByName(LadderName(2.4, 1.2))
	ta, tb := a.Trace(7), b.Trace(7)
	if len(ta.Events) == len(tb.Events) {
		same := true
		for i := range ta.Events {
			if ta.Events[i] != tb.Events[i] {
				same = false
				break
			}
		}
		if same {
			t.Fatal("distinct ladder variants generated identical traces")
		}
	}
}

// TestFullGridScale pins the scale-out cross: 1000+ cells spanning every
// axis, expanding without error.
func TestFullGridScale(t *testing.T) {
	g := FullGrid()
	cells, err := g.Cells()
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) < 1000 {
		t.Fatalf("FullGrid expands to %d cells, want 1000+", len(cells))
	}
	markets := map[string]bool{}
	avails := map[string]bool{}
	for _, c := range cells {
		markets[c.Market] = true
		avails[c.AvailModel] = true
	}
	// Ladder cells default their market to the driving process, so the
	// "flat" market slot renders as squeeze there; the axis still spans
	// every registered process plus flat billing on the scripted models.
	if len(markets) < 3 {
		t.Fatalf("full grid spans %d markets, want flat + every process", len(markets))
	}
	if len(avails) != len(g.Avail) {
		t.Fatalf("full grid spans %d availability models, want %d", len(avails), len(g.Avail))
	}
}

// TestLargeGridStreamingSweep runs the full 1000+-cell grid through the
// streaming sweep serially and in parallel and asserts (a) every parallel
// row fingerprint-matches its serial twin — the determinism contract at
// grid scale — and (b) aggregation is memory-bounded: raw replica Results
// live only while their cell is in flight, so the peak number of
// unreleased cells stays proportional to the worker pool, not the grid.
func TestLargeGridStreamingSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("1000+-cell sweep; skipped under -short")
	}
	if raceEnabled {
		t.Skip("1000+-cell sweep; skipped under -race (the focused race gates cover the same pool on small grids)")
	}
	g := FullGrid()
	cells, err := g.Cells()
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) < 1000 {
		t.Fatalf("grid has %d cells, want 1000+", len(cells))
	}

	run := func(workers int) ([]GridRow, int) {
		sw := experiments.Sweep{Parallel: workers, Seeds: []int64{1, 2}}
		// Memory-bounded accounting: a cell is "live" from its first
		// replica landing until its row folds (the moment GridSweepStream
		// releases the cell's Results). Both hooks run under the sweep's
		// callback mutex — the caller-installed OnResult fires before the
		// grid's bookkeeping, onRow after it — so live/peak are exact.
		perCell := len(sw.Seeds)
		seen := make([]bool, len(cells))
		live, peak := 0, 0
		sw.OnResult = func(i int, _ experiments.Result, _ bool) {
			if cell := i / perCell; !seen[cell] {
				seen[cell] = true
				if live++; live > peak {
					peak = live
				}
			}
		}
		rows, err := GridSweepStream(g, sw, func(cell int, _ GridRow) { live-- })
		if err != nil {
			t.Fatal(err)
		}
		return rows, peak
	}

	serialRows, serialPeak := run(1)
	parRows, parPeak := run(8)

	if len(parRows) != len(serialRows) {
		t.Fatalf("row counts differ: %d parallel vs %d serial", len(parRows), len(serialRows))
	}
	for i := range serialRows {
		sf, pf := serialRows[i].Fingerprints, parRows[i].Fingerprints
		if len(sf) != len(pf) {
			t.Fatalf("cell %d: fingerprint counts differ", i)
		}
		for j := range sf {
			if sf[j] != pf[j] {
				t.Fatalf("cell %d seed %d: parallel fingerprint differs from serial\nserial: %s\nparallel: %s",
					i, j, sf[j], pf[j])
			}
		}
	}
	// Serially a cell completes before the next starts: exactly one live.
	if serialPeak != 1 {
		t.Errorf("serial peak live cells = %d, want 1", serialPeak)
	}
	// In parallel a cell stays live while any worker holds one of its
	// replicas; with 8 workers that is a few dozen cells at the very worst,
	// never hundreds — the O(grid) retention this bound would catch.
	if parPeak > len(cells)/8 {
		t.Errorf("parallel peak live cells = %d of %d — aggregation is not memory-bounded", parPeak, len(cells))
	}
	t.Logf("peak live cells: serial=%d parallel=%d of %d", serialPeak, parPeak, len(cells))
}

// BenchmarkLargeGridSweep measures the streaming sweep at full-grid scale
// (single seed, all cores). Deliberately outside the bench-check gate
// (TIER1_BENCH): it benchmarks throughput of thousands of simulations, not
// the decode hot path.
func BenchmarkLargeGridSweep(b *testing.B) {
	g := FullGrid()
	for i := 0; i < b.N; i++ {
		if _, err := GridSweepStream(g, experiments.Sweep{Seeds: []int64{1}}, nil); err != nil {
			b.Fatal(err)
		}
	}
}
