package scenario

import (
	"reflect"
	"strings"
	"testing"

	"spotserve/internal/cloud"
	"spotserve/internal/experiments"
)

// TestGeneratorsDeterministicAndValid locks the availability-model
// contract: same seed → identical trace, different seeds → different
// traces, and every generated trace satisfies the trace format invariants.
func TestGeneratorsDeterministicAndValid(t *testing.T) {
	for _, name := range Models() {
		m, ok := ModelByName(name)
		if !ok {
			t.Fatalf("registered model %q not resolvable", name)
		}
		var distinct bool
		prev := m.Trace(0)
		for seed := int64(1); seed <= 10; seed++ {
			a := m.Trace(seed)
			b := m.Trace(seed)
			if !reflect.DeepEqual(a, b) {
				t.Fatalf("%s: seed %d not deterministic", name, seed)
			}
			if err := a.Validate(); err != nil {
				t.Fatalf("%s: seed %d: invalid trace: %v", name, seed, err)
			}
			if a.MaxCount() <= 0 {
				t.Fatalf("%s: seed %d: trace never offers capacity", name, seed)
			}
			if !reflect.DeepEqual(a.Events, prev.Events) {
				distinct = true
			}
			prev = a
		}
		if !distinct {
			t.Errorf("%s: seeds 0..10 all produced the same trace — the seed is ignored", name)
		}
	}
}

// TestCrunchLargeJitterKeepsFullRamp guards the out-of-order-jitter fix: a
// jitter larger than the step spacing must not silently drop ramp steps —
// the trace still reaches the floor and recovers, at every seed.
func TestCrunchLargeJitterKeepsFullRamp(t *testing.T) {
	c := DefaultCrunch()
	c.JitterS = 60 // well above the ~40 s recovery step spacing
	for seed := int64(0); seed < 50; seed++ {
		tr := c.Trace(seed)
		if err := tr.Validate(); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if tr.MinCount() != c.Floor {
			t.Errorf("seed %d: min count %d, want the full ramp to floor %d", seed, tr.MinCount(), c.Floor)
		}
		if got := tr.Events[len(tr.Events)-1].Count; got != c.RecoverTo {
			t.Errorf("seed %d: final count %d, want recovery to %d", seed, got, c.RecoverTo)
		}
	}
}

// TestGridParallelMatchesSerial is the acceptance determinism gate: the
// full default grid (4 availability models × 3 policies × homogeneous and
// heterogeneous fleets) produces byte-identical fingerprints under the
// parallel sweep and the serial path.
func TestGridParallelMatchesSerial(t *testing.T) {
	cells, err := DefaultGrid().Cells()
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) < 3*2*2 {
		t.Fatalf("grid too small for the acceptance criterion: %d cells", len(cells))
	}
	serial := experiments.RunAll(cells, 1)
	par := experiments.RunAll(cells, 8)
	for i := range serial {
		sf, pf := serial[i].Fingerprint(), par[i].Fingerprint()
		if sf != pf {
			sc := cells[i]
			t.Errorf("cell %d (%s/%s/%s): parallel fingerprint differs from serial",
				i, sc.AvailModel, sc.Policy, sc.Fleet)
		}
	}
}

// TestGridSweepReplicates checks multi-seed bands: every cell runs at each
// sweep seed, bands carry spread, and the renderer switches into band
// mode.
func TestGridSweepReplicates(t *testing.T) {
	g := Grid{
		Avail:    []string{"crunch"},
		Policies: []string{"fixed", "reactive-queue"},
		Fleets:   []string{"homog", "hetero-speed"},
	}
	rows, err := GridSweep(g, experiments.Sweep{Seeds: []int64{1, 2, 3}})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("rows = %d, want 4", len(rows))
	}
	for i, r := range rows {
		if r.Reps.Avg.N != 3 || !r.Reps.Replicated() {
			t.Errorf("row %d: replication N = %d, want 3", i, r.Reps.Avg.N)
		}
		if r.Summary.Avg <= 0 {
			t.Errorf("row %d: no latency recorded", i)
		}
	}
	out := RenderGrid(rows)
	if !strings.Contains(out, "±") || !strings.Contains(out, "over 3 seeds") {
		t.Errorf("RenderGrid did not render bands:\n%s", out)
	}
}

// TestTraceFnVariesPerSeed asserts replication regenerates the spot market
// per seed: replicas of an availability-model cell observe different
// traces, not one frozen base-seed trace.
func TestTraceFnVariesPerSeed(t *testing.T) {
	cell, err := Scenario{Avail: "bursty", Policy: "fixed", Fleet: "homog"}.Cell()
	if err != nil {
		t.Fatal(err)
	}
	reps := experiments.Sweep{Seeds: []int64{4, 5}}.RunCells([]experiments.Scenario{cell})
	a, b := reps[0][0].Scenario.Trace, reps[0][1].Scenario.Trace
	if reflect.DeepEqual(a.Events, b.Events) {
		t.Error("two replica seeds ran the identical trace — TraceFn is not regenerating")
	}
}

// TestScenarioAxesFingerprinted checks the new axes are part of result
// identity: cells differing only in the policy axis fingerprint
// differently even if their serving stats coincide.
func TestScenarioAxesFingerprinted(t *testing.T) {
	a, err := Scenario{Avail: "diurnal", Policy: "fixed", Fleet: "homog"}.Cell()
	if err != nil {
		t.Fatal(err)
	}
	b := a
	b.Policy = "predictive"
	pf, _ := PolicyByName("predictive")
	b.NewAutoscaler = pf
	ra, rb := experiments.Run(a), experiments.Run(b)
	if ra.Fingerprint() == rb.Fingerprint() {
		t.Error("policy axis not reflected in result fingerprints")
	}
}

// TestHeteroFleetServes runs the count-heterogeneous preset end to end:
// mixed 2-GPU/4-GPU fleets must bootstrap, serve and complete requests.
func TestHeteroFleetServes(t *testing.T) {
	cell, err := Scenario{Avail: "diurnal", Policy: "fixed", Fleet: "hetero-small"}.Cell()
	if err != nil {
		t.Fatal(err)
	}
	res := experiments.Run(cell)
	if res.Stats.Completed == 0 {
		t.Fatal("heterogeneous fleet served nothing")
	}
	if res.Stats.Completed < res.Stats.Submitted/2 {
		t.Errorf("heterogeneous fleet served only %d/%d", res.Stats.Completed, res.Stats.Submitted)
	}
}

// TestCellUnknownNames checks each axis rejects unregistered names with a
// helpful error.
func TestCellUnknownNames(t *testing.T) {
	cases := []Scenario{
		{Avail: "nope", Policy: "fixed", Fleet: "homog"},
		{Avail: "diurnal", Policy: "nope", Fleet: "homog"},
		{Avail: "diurnal", Policy: "fixed", Fleet: "nope"},
	}
	for i, c := range cases {
		if _, err := c.Cell(); err == nil {
			t.Errorf("case %d: unknown name accepted", i)
		}
	}
}

// TestPolicyTargets pins the policy arithmetic against hand-computed
// FleetViews.
func TestPolicyTargets(t *testing.T) {
	v := cloud.FleetView{Want: 6, QueueDepth: 17, Dying: 2, RecentPreemptions: 4}
	if got := (FixedTarget{}).Target(v); got != 6 {
		t.Errorf("fixed: %d, want 6", got)
	}
	// ceil(17/8) = 3 extra.
	if got := DefaultReactiveQueue().Target(v); got != 9 {
		t.Errorf("reactive-queue: %d, want 9", got)
	}
	// dying 2 + floor(0.5*4) = 4 extra.
	if got := DefaultPredictive().Target(v); got != 10 {
		t.Errorf("predictive: %d, want 10", got)
	}
	// Caps engage.
	big := cloud.FleetView{Want: 6, QueueDepth: 1000, Dying: 9, RecentPreemptions: 40}
	if got := DefaultReactiveQueue().Target(big); got != 6+4 {
		t.Errorf("reactive-queue cap: %d, want 10", got)
	}
	if got := DefaultPredictive().Target(big); got != 6+5 {
		t.Errorf("predictive cap: %d, want 11", got)
	}
}

// TestRegistriesNonEmpty guards the registration tables the docs catalog
// and CLI flags are built from.
func TestRegistriesNonEmpty(t *testing.T) {
	if len(Models()) < 4 {
		t.Errorf("availability models = %v, want ≥ 4", Models())
	}
	if len(Policies()) < 3 {
		t.Errorf("policies = %v, want ≥ 3", Policies())
	}
	if len(Fleets()) < 3 {
		t.Errorf("fleet presets = %v, want ≥ 3", Fleets())
	}
}
