package scenario

import (
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"spotserve/internal/experiments"
	"spotserve/internal/faults"
)

// tolerantGrid is the small grid the fault-tolerance tests sweep: 4 cells.
func tolerantGrid() Grid {
	return Grid{
		Avail:    []string{"diurnal", "bursty"},
		Policies: []string{"fixed"},
		Fleets:   []string{"homog", "hetero-small"},
		Seed:     1,
	}
}

// A fault-free tolerant sweep must be byte-identical to the classic sweep —
// rows and render — even with a generous retry policy configured.
func TestGridSweepTolerantMatchesClassicFaultFree(t *testing.T) {
	g := tolerantGrid()
	sw := experiments.Sweep{Parallel: 4, Seeds: experiments.SeedRange(1, 2)}
	classic, err := GridSweep(g, sw)
	if err != nil {
		t.Fatal(err)
	}
	tolSw := sw
	tolSw.Retry = experiments.RetryPolicy{MaxAttempts: 4, Backoff: time.Second,
		Sleep: func(time.Duration) { t.Error("fault-free sweep slept a backoff") }}
	var mu sync.Mutex
	streamed := map[int]GridRow{}
	tolerant, err := GridSweepTolerant(g, tolSw, func(cell int, row GridRow) {
		mu.Lock()
		streamed[cell] = row
		mu.Unlock()
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(tolerant) != len(classic) {
		t.Fatalf("%d tolerant rows, %d classic", len(tolerant), len(classic))
	}
	for i := range classic {
		if fmt.Sprintf("%+v", tolerant[i]) != fmt.Sprintf("%+v", classic[i]) {
			t.Errorf("cell %d: tolerant row differs from classic row", i)
		}
		if fmt.Sprintf("%+v", streamed[i]) != fmt.Sprintf("%+v", classic[i]) {
			t.Errorf("cell %d: streamed tolerant row differs from classic row", i)
		}
	}
	if RenderGrid(tolerant) != RenderGrid(classic) {
		t.Fatal("fault-free tolerant render differs from classic render")
	}
}

// Transient faults healed by retries must leave every row byte-identical to
// the fault-free run — retries recover, never perturb.
func TestGridSweepTolerantTransientHeals(t *testing.T) {
	g := tolerantGrid()
	sw := experiments.Sweep{Parallel: 2, Seeds: experiments.SeedRange(1, 2)}
	clean, err := GridSweepTolerant(g, sw, nil)
	if err != nil {
		t.Fatal(err)
	}
	plan := faults.Plan{Kind: faults.TransientError, Seed: 1, Rate: 0.5, SucceedAfter: 2}
	faulted := sw
	faulted.Retry = experiments.RetryPolicy{MaxAttempts: 3, Sleep: func(time.Duration) {}}
	faulted.Inject = plan.Hook()
	rows, err := GridSweepTolerant(g, faulted, nil)
	if err != nil {
		t.Fatal(err)
	}
	totalRetries := 0
	for i := range rows {
		if rows[i].Err != "" {
			t.Fatalf("cell %d failed despite retries: %s", i, rows[i].Err)
		}
		totalRetries += rows[i].Retries
		// Compare everything except the retry counter, fingerprints first.
		a, b := rows[i], clean[i]
		a.Retries = 0
		if fmt.Sprintf("%+v", a) != fmt.Sprintf("%+v", b) {
			t.Errorf("cell %d: healed row differs from fault-free row", i)
		}
	}
	if want := len(plan.AfflictedCells(8)); totalRetries != want {
		t.Fatalf("retries = %d, want %d (one per afflicted replica)", totalRetries, want)
	}
}

// A persistently panicking cell degrades to an error row; every other cell
// is untouched, and the render marks the failure as n/a with a footer.
func TestGridSweepTolerantPanicDegrades(t *testing.T) {
	g := tolerantGrid()
	sw := experiments.Sweep{Parallel: 4, Seeds: experiments.SeedRange(1, 2)}
	clean, err := GridSweepTolerant(g, sw, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Afflict flat jobs 2 and 3 = both replicas of cell 1 (2 seeds/cell).
	plan := faults.Plan{Kind: faults.CellPanic, Seed: 1, Cells: []int{2, 3}}
	faulted := sw
	faulted.Inject = plan.Hook()
	rows, err := GridSweepTolerant(g, faulted, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := range rows {
		if i == 1 {
			if rows[i].Err == "" || !strings.Contains(rows[i].Err, "injected panic") {
				t.Fatalf("cell 1 err = %q, want the captured injected panic", rows[i].Err)
			}
			if rows[i].Avail == "" || rows[i].Policy == "" || rows[i].Fleet == "" {
				t.Fatalf("error row lost its axes: %+v", rows[i])
			}
			if len(rows[i].Fingerprints) != 0 {
				t.Fatal("failed cell carries fingerprints")
			}
			continue
		}
		if fmt.Sprintf("%+v", rows[i]) != fmt.Sprintf("%+v", clean[i]) {
			t.Errorf("cell %d perturbed by cell 1's panic", i)
		}
	}
	render := RenderGrid(rows)
	if !strings.Contains(render, "n/a") {
		t.Fatal("render lacks n/a for the failed cell")
	}
	if !strings.Contains(render, "1 cell(s) failed") || !strings.Contains(render, "injected panic") {
		t.Fatalf("render lacks the error footer:\n%s", render)
	}
	// Line discipline: every data line in both renders must be present and
	// the non-failed lines byte-identical.
	cleanRender := RenderGrid(clean)
	cleanLines, faultLines := strings.Split(cleanRender, "\n"), strings.Split(render, "\n")
	for i := 0; i < 2; i++ { // header lines
		if cleanLines[i] != faultLines[i] {
			t.Fatalf("header line %d differs under faults", i)
		}
	}
	for _, cell := range []int{0, 2, 3} {
		if cleanLines[2+cell] != faultLines[2+cell] {
			t.Errorf("render line for healthy cell %d differs under faults", cell)
		}
	}
}

// Error rows round-trip the spec → grid path too: a spec with a deadline
// parses, and a negative deadline is rejected at validation.
func TestJobSpecDeadline(t *testing.T) {
	s, err := ParseJobSpec([]byte(`{"avail":["diurnal"],"policies":["fixed"],"fleets":["homog"],"deadline_ms":1500}`))
	if err != nil {
		t.Fatal(err)
	}
	if s.DeadlineMS != 1500 {
		t.Fatalf("DeadlineMS = %d", s.DeadlineMS)
	}
	if _, err := ParseJobSpec([]byte(`{"deadline_ms":-1}`)); err == nil {
		t.Fatal("negative deadline accepted")
	}
}
