package scenario

import (
	"fmt"
	"math"

	"spotserve/internal/cloud"
)

// PolicyFactory builds a fresh autoscaling-policy instance for one run.
// Policies may be stateful, so every replica gets its own instance; the
// seed makes any internal randomness explicit and deterministic (the
// built-in policies are deterministic functions of the FleetView and
// ignore it).
type PolicyFactory func(seed int64) cloud.Autoscaler

// FixedTarget is the paper's baseline policy: the fleet target is exactly
// Algorithm 1's #Instances(C_{t+1}) plus the reserve pool, i.e. whatever
// the configuration optimizer asked for.
type FixedTarget struct{}

// Name implements cloud.Autoscaler.
func (FixedTarget) Name() string { return "fixed" }

// Target implements cloud.Autoscaler.
func (FixedTarget) Target(v cloud.FleetView) int { return v.Want }

// ReactiveQueue scales on request backlog: every QueuePer queued requests
// justify one instance beyond the optimizer's target, up to MaxExtra. It
// reacts after pressure materializes — cheap in calm markets, slower to
// absorb bursts than Predictive.
type ReactiveQueue struct {
	// QueuePer is the backlog depth that justifies one extra instance.
	QueuePer int
	// MaxExtra caps the reactive surplus.
	MaxExtra int
}

// DefaultReactiveQueue adds one instance per 8 queued requests, at most 4.
func DefaultReactiveQueue() ReactiveQueue { return ReactiveQueue{QueuePer: 8, MaxExtra: 4} }

// Name implements cloud.Autoscaler.
func (ReactiveQueue) Name() string { return "reactive-queue" }

// defaultMaxExtra resolves a policy's surplus cap: zero-value policies get
// their registered default instead of a cap of 0, which would silently
// clamp every surplus away and turn the policy into fixed-target.
func defaultMaxExtra(maxExtra, def int) int {
	if maxExtra <= 0 {
		return def
	}
	return maxExtra
}

// Target implements cloud.Autoscaler.
func (p ReactiveQueue) Target(v cloud.FleetView) int {
	per := p.QueuePer
	if per <= 0 {
		per = 8
	}
	extra := (v.QueueDepth + per - 1) / per
	if lim := defaultMaxExtra(p.MaxExtra, 4); extra > lim {
		extra = lim
	}
	return v.Want + extra
}

// Predictive over-provisions ahead of modeled preemption waves: it
// replaces every instance already under notice and adds PerPreemption
// instances for each preemption seen in the recent look-back window, up to
// MaxExtra — buying replacement capacity while the doomed instances are
// still serving in their grace periods.
type Predictive struct {
	// PerPreemption is the extra-instance weight per recent preemption.
	PerPreemption float64
	// MaxExtra caps the predictive surplus (dying replacements included).
	MaxExtra int
}

// DefaultPredictive replaces dying instances 1:1 and adds half an instance
// per recent preemption, at most 5 extra.
func DefaultPredictive() Predictive { return Predictive{PerPreemption: 0.5, MaxExtra: 5} }

// Name implements cloud.Autoscaler.
func (Predictive) Name() string { return "predictive" }

// Target implements cloud.Autoscaler.
func (p Predictive) Target(v cloud.FleetView) int {
	extra := v.Dying + int(p.PerPreemption*float64(v.RecentPreemptions))
	if lim := defaultMaxExtra(p.MaxExtra, 5); extra > lim {
		extra = lim
	}
	return v.Want + extra
}

// SLOLatency scales to hold a tail-latency target, combining feedforward
// and feedback control: the optimizer's throughput estimate φ(C) says how
// many instances close the capacity gap before latency degrades
// (Alpha·Headroom vs Phi, converted at PhiPerInstance), and the observed
// p99 over the look-back window corrects proportionally when the target is
// already violated. Surplus is capped at MaxExtra; with latency well under
// target it returns Want, letting the fleet shed back to the optimizer's
// own ask.
type SLOLatency struct {
	// TargetP99 is the p99 end-to-end latency objective in seconds.
	TargetP99 float64
	// Headroom is the capacity margin the feedforward term maintains:
	// capacity is grown until φ(C) ≥ Alpha·Headroom.
	Headroom float64
	// MaxExtra caps the SLO surplus.
	MaxExtra int
}

// DefaultSLOLatency holds a 120 s p99 with 25% capacity headroom, at most
// 4 extra instances.
func DefaultSLOLatency() SLOLatency {
	return SLOLatency{TargetP99: DefaultSLO, Headroom: 1.25, MaxExtra: 4}
}

// Name implements cloud.Autoscaler.
func (SLOLatency) Name() string { return "slo-latency" }

// ConsumesSignals implements cloud.SignalConsumer: the server must compute
// Alpha/Phi/RecentP99 for this policy.
func (SLOLatency) ConsumesSignals() {}

// Target implements cloud.Autoscaler.
func (p SLOLatency) Target(v cloud.FleetView) int {
	target := p.TargetP99
	if target <= 0 {
		target = DefaultSLO
	}
	headroom := p.Headroom
	if headroom <= 0 {
		headroom = 1.25
	}
	extra := 0
	// Feedforward: buy the instances that close the throughput gap.
	if need := v.Alpha * headroom; v.PhiPerInstance > 0 && need > v.Phi {
		extra = int(math.Ceil((need - v.Phi) / v.PhiPerInstance))
	}
	// Feedback: a violated p99 scales the fleet proportionally to the
	// overshoot even when the throughput model claims capacity suffices.
	if v.RecentP99 > target {
		fb := int(math.Ceil(float64(v.Want) * (v.RecentP99/target - 1)))
		if fb > extra {
			extra = fb
		}
	}
	if lim := defaultMaxExtra(p.MaxExtra, 4); extra > lim {
		extra = lim
	}
	return v.Want + extra
}

// CostCap spends up to a $/hour budget: while the fleet's instantaneous
// billing rate (market-aware when a spot-price market is configured) fits
// the budget, it defers to the optimizer's target; when prices spike past
// it, it sheds down to the largest fleet the budget affords at the current
// average unit price. The instance manager frees on-demand surplus first,
// so the shed releases the expensive capacity.
type CostCap struct {
	// BudgetUSDPerHour is the spend ceiling; <= 0 disables the cap.
	BudgetUSDPerHour float64
}

// DefaultCostCap budgets 25 $/h — comfortably above the 12-instance spot
// fleet's calm-market rate (~23 $/h) but far below a squeeze's.
func DefaultCostCap() CostCap { return CostCap{BudgetUSDPerHour: 25} }

// Name implements cloud.Autoscaler.
func (CostCap) Name() string { return "cost-cap" }

// ConsumesSignals implements cloud.SignalConsumer: the server must compute
// SpendUSDPerHour for this policy.
func (CostCap) ConsumesSignals() {}

// Target implements cloud.Autoscaler.
func (p CostCap) Target(v cloud.FleetView) int {
	if p.BudgetUSDPerHour <= 0 || v.SpendUSDPerHour <= p.BudgetUSDPerHour {
		return v.Want
	}
	billing := v.SpotRunning + v.OnDemandRunning // pending instances don't bill yet
	if billing <= 0 {
		return v.Want
	}
	unit := v.SpendUSDPerHour / float64(billing)
	afford := int(p.BudgetUSDPerHour / unit)
	if afford < v.Want {
		return afford
	}
	return v.Want
}

// policyFactories is the registry of autoscaling policies, keyed by name.
var policyFactories = map[string]PolicyFactory{}

// policyOrder preserves registration order for catalogs.
var policyOrder []string

// RegisterPolicy adds a policy factory under name. It panics on duplicate
// names.
func RegisterPolicy(name string, f PolicyFactory) {
	if _, dup := policyFactories[name]; dup {
		panic(fmt.Sprintf("scenario: duplicate policy %q", name))
	}
	policyFactories[name] = f
	policyOrder = append(policyOrder, name)
}

// Policies lists the registered policy names in registration order.
func Policies() []string { return append([]string(nil), policyOrder...) }

// PolicyByName returns the factory registered under name.
func PolicyByName(name string) (PolicyFactory, bool) {
	f, ok := policyFactories[name]
	return f, ok
}

func init() {
	RegisterPolicy("fixed", func(int64) cloud.Autoscaler { return FixedTarget{} })
	RegisterPolicy("reactive-queue", func(int64) cloud.Autoscaler { return DefaultReactiveQueue() })
	RegisterPolicy("predictive", func(int64) cloud.Autoscaler { return DefaultPredictive() })
	RegisterPolicy("slo-latency", func(int64) cloud.Autoscaler { return DefaultSLOLatency() })
	RegisterPolicy("cost-cap", func(int64) cloud.Autoscaler { return DefaultCostCap() })
}
