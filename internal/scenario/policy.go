package scenario

import (
	"fmt"

	"spotserve/internal/cloud"
)

// PolicyFactory builds a fresh autoscaling-policy instance for one run.
// Policies may be stateful, so every replica gets its own instance; the
// seed makes any internal randomness explicit and deterministic (the
// built-in policies are deterministic functions of the FleetView and
// ignore it).
type PolicyFactory func(seed int64) cloud.Autoscaler

// FixedTarget is the paper's baseline policy: the fleet target is exactly
// Algorithm 1's #Instances(C_{t+1}) plus the reserve pool, i.e. whatever
// the configuration optimizer asked for.
type FixedTarget struct{}

// Name implements cloud.Autoscaler.
func (FixedTarget) Name() string { return "fixed" }

// Target implements cloud.Autoscaler.
func (FixedTarget) Target(v cloud.FleetView) int { return v.Want }

// ReactiveQueue scales on request backlog: every QueuePer queued requests
// justify one instance beyond the optimizer's target, up to MaxExtra. It
// reacts after pressure materializes — cheap in calm markets, slower to
// absorb bursts than Predictive.
type ReactiveQueue struct {
	// QueuePer is the backlog depth that justifies one extra instance.
	QueuePer int
	// MaxExtra caps the reactive surplus.
	MaxExtra int
}

// DefaultReactiveQueue adds one instance per 8 queued requests, at most 4.
func DefaultReactiveQueue() ReactiveQueue { return ReactiveQueue{QueuePer: 8, MaxExtra: 4} }

// Name implements cloud.Autoscaler.
func (ReactiveQueue) Name() string { return "reactive-queue" }

// Target implements cloud.Autoscaler.
func (p ReactiveQueue) Target(v cloud.FleetView) int {
	per := p.QueuePer
	if per <= 0 {
		per = 8
	}
	extra := (v.QueueDepth + per - 1) / per
	if extra > p.MaxExtra {
		extra = p.MaxExtra
	}
	return v.Want + extra
}

// Predictive over-provisions ahead of modeled preemption waves: it
// replaces every instance already under notice and adds PerPreemption
// instances for each preemption seen in the recent look-back window, up to
// MaxExtra — buying replacement capacity while the doomed instances are
// still serving in their grace periods.
type Predictive struct {
	// PerPreemption is the extra-instance weight per recent preemption.
	PerPreemption float64
	// MaxExtra caps the predictive surplus (dying replacements included).
	MaxExtra int
}

// DefaultPredictive replaces dying instances 1:1 and adds half an instance
// per recent preemption, at most 5 extra.
func DefaultPredictive() Predictive { return Predictive{PerPreemption: 0.5, MaxExtra: 5} }

// Name implements cloud.Autoscaler.
func (Predictive) Name() string { return "predictive" }

// Target implements cloud.Autoscaler.
func (p Predictive) Target(v cloud.FleetView) int {
	extra := v.Dying + int(p.PerPreemption*float64(v.RecentPreemptions))
	if extra > p.MaxExtra {
		extra = p.MaxExtra
	}
	return v.Want + extra
}

// policyFactories is the registry of autoscaling policies, keyed by name.
var policyFactories = map[string]PolicyFactory{}

// policyOrder preserves registration order for catalogs.
var policyOrder []string

// RegisterPolicy adds a policy factory under name. It panics on duplicate
// names.
func RegisterPolicy(name string, f PolicyFactory) {
	if _, dup := policyFactories[name]; dup {
		panic(fmt.Sprintf("scenario: duplicate policy %q", name))
	}
	policyFactories[name] = f
	policyOrder = append(policyOrder, name)
}

// Policies lists the registered policy names in registration order.
func Policies() []string { return append([]string(nil), policyOrder...) }

// PolicyByName returns the factory registered under name.
func PolicyByName(name string) (PolicyFactory, bool) {
	f, ok := policyFactories[name]
	return f, ok
}

func init() {
	RegisterPolicy("fixed", func(int64) cloud.Autoscaler { return FixedTarget{} })
	RegisterPolicy("reactive-queue", func(int64) cloud.Autoscaler { return DefaultReactiveQueue() })
	RegisterPolicy("predictive", func(int64) cloud.Autoscaler { return DefaultPredictive() })
}
