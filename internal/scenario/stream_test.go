package scenario

import (
	"fmt"
	"sync"
	"testing"

	"spotserve/internal/experiments"
)

// Streamed rows must be byte-identical to the rows the finished sweep
// returns at the same cell index, for serial and parallel pools — the
// daemon streams exactly what the CLI would print.
func TestGridSweepStreamMatchesReturn(t *testing.T) {
	g := Grid{
		Avail:    []string{"diurnal", "bursty"},
		Policies: []string{"fixed"},
		Fleets:   []string{"homog"},
		Seed:     1,
	}
	for _, workers := range []int{1, 4} {
		sw := experiments.Sweep{Parallel: workers, Seeds: experiments.SeedRange(1, 2)}
		var mu sync.Mutex
		streamed := map[int]GridRow{}
		rows, err := GridSweepStream(g, sw, func(cell int, row GridRow) {
			mu.Lock()
			if _, dup := streamed[cell]; dup {
				t.Errorf("workers=%d: cell %d streamed twice", workers, cell)
			}
			streamed[cell] = row
			mu.Unlock()
		})
		if err != nil {
			t.Fatal(err)
		}
		if len(streamed) != len(rows) {
			t.Fatalf("workers=%d: %d rows streamed, %d returned", workers, len(streamed), len(rows))
		}
		for cell, row := range streamed {
			if fmt.Sprintf("%+v", row) != fmt.Sprintf("%+v", rows[cell]) {
				t.Errorf("workers=%d: streamed cell %d differs from returned row", workers, cell)
			}
		}
		for _, row := range rows {
			if len(row.Fingerprints) != len(sw.Seeds) {
				t.Fatalf("row carries %d fingerprints, want one per seed (%d)",
					len(row.Fingerprints), len(sw.Seeds))
			}
		}
	}
}

// GridSweep (no callback) and GridSweepStream produce identical rows — the
// streaming hook must not perturb results.
func TestGridSweepStreamEquivalentToGridSweep(t *testing.T) {
	g := Grid{
		Avail:    []string{"crunch"},
		Policies: []string{"fixed", "reactive-queue"},
		Fleets:   []string{"homog"},
		Seed:     2,
	}
	sw := experiments.Sweep{Parallel: 2, Seeds: experiments.SeedRange(2, 2)}
	plain, err := GridSweep(g, sw)
	if err != nil {
		t.Fatal(err)
	}
	streamed, err := GridSweepStream(g, sw, func(int, GridRow) {})
	if err != nil {
		t.Fatal(err)
	}
	if RenderGrid(plain) != RenderGrid(streamed) {
		t.Fatal("streaming changed the rendered grid")
	}
	for i := range plain {
		if fmt.Sprint(plain[i].Fingerprints) != fmt.Sprint(streamed[i].Fingerprints) {
			t.Fatalf("cell %d: fingerprints differ between GridSweep and GridSweepStream", i)
		}
	}
}
