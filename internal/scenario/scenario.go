// Package scenario is the simulation-condition library: it turns "a spot
// market, an autoscaling policy and a fleet composition" into first-class,
// composable values spanning three orthogonal axes —
//
//   - availability models: seeded synthetic spot-trace generators
//     (diurnal sinusoid, bursty correlated preemption, capacity-crunch
//     ramp, multi-zone independent pools) emitting the same event-stream
//     format internal/trace parses, so synthetic and real traces are
//     interchangeable;
//   - autoscaling policies: cloud.Autoscaler implementations consulted by
//     the serving system on preemption/ready events (fixed-target as in
//     the paper, reactive queue-depth, predictive over-provisioning);
//   - fleet presets: homogeneous and heterogeneous instance-type tables
//     (per-type GPU count, speed and memory multipliers) threaded through
//     the mapper, planner and optimizer cost decisions.
//
// Every axis value is registered by name, and a Grid fans the cross
// product into experiments.Sweep cells, so any combination parallelizes
// and replicates (multi-seed bands) through the existing harness. All
// generators and policies take explicit seeds; the determinism tests pin
// parallel==serial fingerprints across the new axes.
//
// docs/SCENARIOS.md catalogs every registered name; a test fails when a
// registered axis value is missing from the catalog.
package scenario

import (
	"fmt"
	"sort"
	"strings"

	"spotserve/internal/cloud"
	"spotserve/internal/experiments"
	"spotserve/internal/market"
	"spotserve/internal/metrics"
	"spotserve/internal/model"
	"spotserve/internal/trace"
)

// Scenario names one point in the scenario space: an availability model,
// an autoscaling policy and a fleet preset (each by registry name), plus
// the serving system and model under test.
type Scenario struct {
	// Avail / Policy / Fleet are registry names for the three axes.
	Avail, Policy, Fleet string
	// Market names the spot-price process (internal/market registry)
	// billing the cell's spot capacity with time-varying prices. Empty
	// means flat prices — except under the price-signal availability
	// model, which defaults the market to its own driving process so
	// billing and preemption read the same curve.
	Market string
	// System is the serving system to run (default SpotServe).
	System experiments.System
	// Model is the served LLM (default GPT-20B).
	Model model.Spec
	// Seed is the base replication seed.
	Seed int64
}

// Cell resolves the named axes into one experiments.Scenario ready for the
// sweep harness. On-demand mixing is enabled: the autoscaling-policy axis
// acts through on-demand allocation, exactly like the paper's +O traces.
// Only SpotServe consults the policy; the baseline systems keep their own
// fleet logic (Grid.Cells skips baseline×non-fixed-policy combinations).
func (s Scenario) Cell() (experiments.Scenario, error) {
	am, ok := ModelByName(s.Avail)
	if !ok {
		return experiments.Scenario{}, fmt.Errorf("scenario: unknown availability model %q (have %s)",
			s.Avail, strings.Join(Models(), ", "))
	}
	pf, ok := PolicyByName(s.Policy)
	if !ok {
		return experiments.Scenario{}, fmt.Errorf("scenario: unknown policy %q (have %s)",
			s.Policy, strings.Join(Policies(), ", "))
	}
	fp, ok := FleetByName(s.Fleet)
	if !ok {
		return experiments.Scenario{}, fmt.Errorf("scenario: unknown fleet preset %q (have %s)",
			s.Fleet, strings.Join(Fleets(), ", "))
	}
	sys := s.System
	if sys == "" {
		sys = experiments.SpotServe
	}
	spec := s.Model
	if spec.Name == "" {
		spec = model.GPT20B
	}
	seed := s.Seed
	if seed == 0 {
		seed = 1
	}
	// The trace itself is generated per replica seed inside experiments.Run
	// (TraceFn below); the cell carries only the model.
	sc := experiments.DefaultScenario(sys, spec, trace.Trace{}, seed)
	sc.AllowOnDemand = true
	sc.AvailModel = am.Name()
	sc.TraceFn = am.Trace
	sc.Fleet = fp.Name
	params := fp.Params
	sc.CloudParams = &params
	sc.Policy = s.Policy
	sc.NewAutoscaler = pf

	// The market axis: price-signal availability implies its own driving
	// process unless overridden, so the curve billing integrates is the
	// curve that caused the preemptions (per-type streams derive from the
	// table index — the fleet's primary type replays the model's curve
	// bit-identically).
	mname := s.Market
	if mname == "" {
		if ps, ok := am.(PriceSignal); ok {
			mname = ps.Process
		}
	}
	if mname != "" {
		proc, ok := market.ByName(mname)
		if !ok {
			return experiments.Scenario{}, fmt.Errorf("scenario: unknown market process %q (have %s)",
				mname, strings.Join(market.Processes(), ", "))
		}
		types := marketTypes(fp.Params)
		horizon := scenarioHorizon
		sc.Market = mname
		sc.MarketFn = func(seed int64) market.Market {
			return proc.Generate(seed, horizon, types)
		}
	}
	return sc, nil
}

// scenarioHorizon is the generation window shared by the library's
// availability models and market processes (the paper's 20-minute scale).
const scenarioHorizon = 1200.0

// marketTypes projects a fleet's instance-type table into the market
// package's vocabulary: type name plus the base spot price its process
// reverts to.
func marketTypes(p cloud.Params) []market.TypeSpec {
	var out []market.TypeSpec
	for _, t := range p.TypeList() {
		out = append(out, market.TypeSpec{Name: t.Name, USDPerHour: t.SpotUSDPerHour})
	}
	return out
}

// Grid is a cross product over the three scenario axes (×systems): the
// scenario-diversity engine's input. Zero-value fields fall back to
// DefaultGrid's choices for that axis.
type Grid struct {
	// Avail / Policies / Fleets are registry names per axis.
	Avail, Policies, Fleets []string
	// Market names a spot-price process applied to every cell ("" = flat
	// billing, except price-signal cells, which bill their own process).
	Market string
	// Markets promotes the spot-price process to a full grid axis: every
	// combination runs once per entry, with "" meaning flat billing as
	// above. Empty falls back to the single Market value, so existing
	// grids keep their exact cell sets.
	Markets []string
	// SLO is the end-to-end latency objective in seconds behind the SLO%
	// column (<= 0 = DefaultSLO). It only scores results; the slo-latency
	// policy carries its own target.
	SLO float64
	// Systems lists the serving systems to run each combination under.
	Systems []experiments.System
	// Model is the served LLM for every cell.
	Model model.Spec
	// Seed is the base seed (the sweep's Seeds override per-replica).
	Seed int64
}

// DefaultSLO is the latency objective scored by the grid's SLO% column and
// targeted by the default slo-latency policy, in seconds.
const DefaultSLO = 120.0

// DefaultGrid covers every registered availability model and policy on the
// homogeneous and speed-heterogeneous fleets with SpotServe — 50 cells
// (5 availability models × 5 policies × 2 fleets).
func DefaultGrid() Grid {
	return Grid{
		Avail:    Models(),
		Policies: Policies(),
		Fleets:   []string{"homog", "hetero-speed"},
		Systems:  []experiments.System{experiments.SpotServe},
		Model:    model.GPT20B,
		Seed:     1,
	}
}

// Cells expands the grid into sweep-ready experiments cells in
// deterministic axis-major order (avail, policy, fleet, market, system).
func (g Grid) Cells() ([]experiments.Scenario, error) {
	def := DefaultGrid()
	if len(g.Avail) == 0 {
		g.Avail = def.Avail
	}
	if len(g.Policies) == 0 {
		g.Policies = def.Policies
	}
	if len(g.Fleets) == 0 {
		g.Fleets = def.Fleets
	}
	if len(g.Systems) == 0 {
		g.Systems = def.Systems
	}
	if g.Model.Name == "" {
		g.Model = def.Model
	}
	if g.Seed == 0 {
		g.Seed = def.Seed
	}
	markets := g.Markets
	if len(markets) == 0 {
		markets = []string{g.Market}
	}
	var out []experiments.Scenario
	for _, av := range g.Avail {
		for _, po := range g.Policies {
			for _, fl := range g.Fleets {
				for _, mk := range markets {
					for _, sys := range g.Systems {
						// The baselines do not consult autoscaling policies
						// (their fleet logic is part of what they baseline);
						// skip those combinations rather than rendering rows
						// whose policy label would be a no-op.
						if sys != experiments.SpotServe && po != "fixed" {
							continue
						}
						sc, err := Scenario{
							Avail: av, Policy: po, Fleet: fl, Market: mk,
							System: sys, Model: g.Model, Seed: g.Seed,
						}.Cell()
						if err != nil {
							return nil, err
						}
						out = append(out, sc)
					}
				}
			}
		}
	}
	return out, nil
}

// FullGrid is the scale-out cross: every registered availability model
// plus a 12-variant bid ladder (LadderNames), every policy, every fleet
// preset, and flat billing plus every market process — 17×5×4×3 = 1020
// cells under SpotServe. The grid sweeps stream rows with peak memory
// proportional to in-flight cells, not the grid, so this scale runs in a
// bounded footprint.
func FullGrid() Grid {
	g := DefaultGrid()
	g.Avail = append(Models(), LadderNames(
		[]float64{2.0, 2.2, 2.4},
		[]float64{0.3, 0.6, 0.9, 1.2})...)
	g.Fleets = Fleets()
	g.Markets = append([]string{""}, market.Processes()...)
	return g
}

// GridRow is one grid cell's outcome: the first-seed replica's headline
// stats plus cross-seed bands when the sweep replicates.
type GridRow struct {
	Avail, Policy, Fleet string
	// Market is the cell's spot-price process ("" = flat billing).
	Market string
	System experiments.System
	// Summary / CostUSD / OnDemand are the first-seed replica.
	Summary  metrics.Summary
	CostUSD  float64
	OnDemand int
	Reps     experiments.Replication
	// CostPer1kTok aggregates USD per 1000 generated tokens across the
	// cell's seed replicas — the economics headline a spot market moves.
	CostPer1kTok metrics.Agg
	// SLOPct aggregates the percentage of requests completing within the
	// grid's SLO latency across seed replicas; SLO records the objective
	// it was scored against.
	SLOPct metrics.Agg
	SLO    float64
	// CacheHitRate aggregates the reconfiguration engine's memo hit rate
	// across the cell's seed replicas (a diagnostic — hit rates never
	// change results, so they are not fingerprinted).
	CacheHitRate metrics.Agg
	// CacheShiftRate aggregates the share of memo lookups that missed
	// because the target shifted during a drain window (same fleet,
	// moved target — reconfig.CacheStats.ShiftMisses) rather than from a
	// cold fleet change. Diagnostic like CacheHitRate; never fingerprinted.
	CacheShiftRate metrics.Agg
	// Fingerprints are the per-seed replica digests in sweep-seed order —
	// the determinism contract a served row is checked against (a daemon
	// job's rows must fingerprint-match the equivalent CLI run).
	Fingerprints []string
	// Err is the cell's failure under fault-isolated sweeps ("" on
	// success): the first failed replica's error, in seed order. A failed
	// cell renders as an n/a row with an error footer instead of aborting
	// the sweep; its stats fields and Fingerprints are left zero.
	Err string `json:"error,omitempty"`
	// Retries counts extra simulation attempts across the cell's replicas
	// (attempts beyond the first, summed). Always 0 when no fault fired,
	// so fault-free rows stay byte-identical to the classic sweep's.
	Retries int `json:"retries,omitempty"`
}

// CostPer1kTok converts one replica's accrued USD into $ per 1000
// generated tokens (0 when nothing completed). Exported as the single
// definition of the grid's economics column — internal/calibrate scores
// observed traces against the exact same quantity.
func CostPer1kTok(r experiments.Result) float64 {
	tokens := r.GeneratedTokens()
	if tokens <= 0 {
		return 0
	}
	return r.Stats.CostUSD / tokens * 1000
}

// SLOPct returns the percentage of one replica's completed requests whose
// end-to-end latency met the objective. Exported for the same reason as
// CostPer1kTok: calibration reports must mean what the grid's SLO% column
// means.
func SLOPct(r experiments.Result, slo float64) float64 {
	if r.Stats.Latencies == nil || r.Stats.Latencies.Count() == 0 {
		return 0
	}
	vals := r.Stats.Latencies.Values()
	met := 0
	for _, v := range vals {
		if v <= slo {
			met++
		}
	}
	return float64(met) / float64(len(vals)) * 100
}

// buildRow folds one cell's seed replicas into its grid row. It is pure in
// its inputs, so a row streamed mid-sweep is byte-identical to the row the
// finished sweep assembles.
func buildRow(rs []experiments.Result, slo float64) GridRow {
	first := rs[0]
	row := GridRow{
		Avail:    first.Scenario.AvailModel,
		Policy:   first.Scenario.Policy,
		Fleet:    first.Scenario.Fleet,
		Market:   first.Scenario.Market,
		System:   first.Scenario.System,
		Summary:  first.Stats.Latency,
		CostUSD:  first.Stats.CostUSD,
		OnDemand: first.Stats.OnDemandAllocated,
		Reps:     experiments.NewReplication(rs),
		SLO:      slo,
	}
	for _, r := range rs {
		row.CostPer1kTok.Add(CostPer1kTok(r))
		row.SLOPct.Add(SLOPct(r, slo))
		cs := r.Stats.ReconfigCache
		row.CacheHitRate.Add(cs.HitRate())
		if l := cs.Lookups(); l > 0 {
			row.CacheShiftRate.Add(float64(cs.ShiftMisses()) / float64(l))
		} else {
			row.CacheShiftRate.Add(0)
		}
		row.Fingerprints = append(row.Fingerprints, r.Fingerprint())
	}
	return row
}

// BuildRow folds one cell's seed replicas into its grid row — the exported
// form of buildRow for callers outside the grid sweeps (the calibration
// replay streams its single cell through this, so a daemon calibrate job's
// row is shaped exactly like a grid job's).
func BuildRow(rs []experiments.Result, slo float64) GridRow {
	return buildRow(rs, slo)
}

// buildRowFT folds one cell's fault-isolated replicas into its grid row.
// With every replica successful it defers to buildRow (plus the retry
// count), so a fault-free tolerant sweep produces rows byte-identical to
// the classic path. Any failed replica degrades the whole cell to an
// error row — mixing bands over a partial seed set would silently change
// what the row means — carrying the axes from the cell scenario (the
// failed replicas have no Result to read them from).
func buildRowFT(cell experiments.Scenario, crs []experiments.CellResult, slo float64) GridRow {
	var ok []experiments.Result
	retries := 0
	errMsg := ""
	for _, cr := range crs {
		if cr.Attempts > 1 {
			retries += cr.Attempts - 1
		}
		if cr.Err != nil {
			if errMsg == "" {
				errMsg = cr.Err.Error()
			}
			continue
		}
		ok = append(ok, cr.Result)
	}
	if errMsg == "" {
		row := buildRow(ok, slo)
		row.Retries = retries
		return row
	}
	return GridRow{
		Avail:   cell.AvailModel,
		Policy:  cell.Policy,
		Fleet:   cell.Fleet,
		Market:  cell.Market,
		System:  cell.System,
		SLO:     slo,
		Err:     errMsg,
		Retries: retries,
	}
}

// GridSweep runs the grid through the parallel sweep harness, replicating
// every cell at each sweep seed (default: the grid's base seed once).
// Results are byte-identical to a serial run at any worker count.
func GridSweep(g Grid, sw experiments.Sweep) ([]GridRow, error) {
	return GridSweepStream(g, sw, nil)
}

// resolve expands the grid and defaults the sweep seeds and SLO — the
// shared preamble of the classic and fault-tolerant grid sweeps.
func (g Grid) resolve(sw experiments.Sweep) ([]experiments.Scenario, experiments.Sweep, float64, error) {
	cells, err := g.Cells()
	if err != nil {
		return nil, sw, 0, err
	}
	if len(sw.Seeds) == 0 {
		seed := g.Seed
		if seed == 0 {
			seed = 1
		}
		sw.Seeds = []int64{seed}
	}
	slo := g.SLO
	if slo <= 0 {
		slo = DefaultSLO
	}
	return cells, sw, slo, nil
}

// GridSweepTolerant runs the grid with per-cell fault isolation: a
// panicking, erroring or injected-fault cell degrades to an error row
// (rendered n/a) instead of aborting the sweep, failed replicas retry
// under the sweep's RetryPolicy, and the sweep's Context cancels the run
// cooperatively. onRow, when non-nil, streams each cell's row as its last
// replica lands, exactly like GridSweepStream. With no faults firing the
// returned rows — and the render built from them — are byte-identical to
// GridSweep's, whatever retry policy is configured; the determinism-under-
// faults tests pin this.
func GridSweepTolerant(g Grid, sw experiments.Sweep, onRow func(cell int, row GridRow)) ([]GridRow, error) {
	cells, sw, slo, err := g.resolve(sw)
	if err != nil {
		return nil, err
	}
	perCell := len(sw.Seeds)
	pending := make([][]experiments.CellResult, len(cells))
	remaining := make([]int, len(cells))
	for i := range cells {
		pending[i] = make([]experiments.CellResult, perCell)
		remaining[i] = perCell
	}
	if onRow != nil {
		sw.OnCell = func(i int, cr experiments.CellResult, _ bool) {
			cell := i / perCell
			pending[cell][i%perCell] = cr
			if remaining[cell]--; remaining[cell] == 0 {
				onRow(cell, buildRowFT(cells[cell], pending[cell], slo))
				pending[cell] = nil // released; the final rows fold the pool's own copies
			}
		}
	}
	crs := sw.RunCellsIsolated(cells)
	rows := make([]GridRow, len(cells))
	for i, cr := range crs {
		rows[i] = buildRowFT(cells[i], cr, slo)
	}
	return rows, nil
}

// GridSweepStream is GridSweep with a per-cell callback: when onRow is
// non-nil it is invoked as each cell's last seed replica finishes (from
// sweep worker goroutines, serialized by the sweep's callback mutex) with
// the cell index and the assembled row. Cells complete in nondeterministic
// order under parallelism, but each streamed row is byte-identical to the
// row at the same index in the returned slice — the serving daemon streams
// partial grid results through this hook.
//
// Aggregation is streaming and memory-bounded: raw replica Results are held
// only while their cell is in flight and released the moment the cell's row
// folds, so peak memory is O(active cells × seeds), not O(grid × seeds) —
// a 1000+-cell grid keeps the footprint of the handful of cells the worker
// pool is actually running. A caller-installed sw.OnResult still fires,
// before the grid's own bookkeeping, for every replica.
func GridSweepStream(g Grid, sw experiments.Sweep, onRow func(cell int, row GridRow)) ([]GridRow, error) {
	cells, sw, slo, err := g.resolve(sw)
	if err != nil {
		return nil, err
	}
	// The pool flattens jobs cell-major: flat index i is cell i/perCell,
	// replica i%perCell. Pending buffers are allocated on a cell's first
	// replica and dropped with its last; the pool serializes OnResult, so
	// the bookkeeping needs no extra locking.
	perCell := len(sw.Seeds)
	rows := make([]GridRow, len(cells))
	pending := make([][]experiments.Result, len(cells))
	remaining := make([]int, len(cells))
	for i := range cells {
		remaining[i] = perCell
	}
	prev := sw.OnResult
	sw.OnResult = func(i int, r experiments.Result, fromCache bool) {
		if prev != nil {
			prev(i, r, fromCache)
		}
		cell := i / perCell
		if pending[cell] == nil {
			pending[cell] = make([]experiments.Result, perCell)
		}
		pending[cell][i%perCell] = r
		if remaining[cell]--; remaining[cell] == 0 {
			rows[cell] = buildRow(pending[cell], slo)
			pending[cell] = nil // release: the row keeps aggregates, not Results
			if onRow != nil {
				onRow(cell, rows[cell])
			}
		}
	}
	sw.RunCellsStream(cells)
	return rows, nil
}

// RenderGrid formats grid rows as a text table, with mean ±stderr
// [min,max] bands across seeds when the sweep replicated.
func RenderGrid(rows []GridRow) string {
	var b strings.Builder
	bands := false
	for _, r := range rows {
		if r.Reps.Replicated() {
			bands = true
			break
		}
	}
	fmt.Fprintf(&b, "Scenario grid: availability × policy × fleet\n")
	fmt.Fprintf(&b, "%-20s %-15s %-13s %-18s %8s %8s %9s %8s %6s %4s %8s",
		"Avail", "Policy", "Fleet", "System", "Avg", "P99", "Cost", "$/1ktok", "SLO%", "OD", "Cache%")
	if bands {
		fmt.Fprintf(&b, "  %-30s %-30s %-30s", "P99 band", "Cost band", "$/1ktok band")
	}
	b.WriteString("\n")
	markets := map[string]bool{}
	var failed []GridRow
	for _, r := range rows {
		if r.Err != "" {
			// A fault-isolated failure: the axes identify the cell, every
			// stat is unknowable, and the error footer below explains why.
			fmt.Fprintf(&b, "%-20s %-15s %-13s %-18s %8s %8s %9s %8s %6s %4s %8s",
				r.Avail, r.Policy, r.Fleet, r.System,
				"n/a", "n/a", "n/a", "n/a", "n/a", "n/a", "n/a")
			if bands {
				fmt.Fprintf(&b, "  %-30s %-30s %-30s", "n/a", "n/a", "n/a")
			}
			b.WriteString("\n")
			failed = append(failed, r)
			continue
		}
		// Cache% breaks the memo diagnostic into hit rate / drain-window
		// shift-miss share: "93/2%" reads "93% hits, 2% of lookups missed
		// only because the target shifted mid-drain".
		fmt.Fprintf(&b, "%-20s %-15s %-13s %-18s %7.1fs %7.1fs %8.2f$ %8.4f %5.1f%% %4d %8s",
			r.Avail, r.Policy, r.Fleet, r.System,
			r.Summary.Avg, r.Summary.P99, r.CostUSD,
			r.CostPer1kTok.Mean(), r.SLOPct.Mean(), r.OnDemand,
			fmt.Sprintf("%.0f/%.0f%%", r.CacheHitRate.Mean()*100, r.CacheShiftRate.Mean()*100))
		if bands {
			fmt.Fprintf(&b, "  %-30s %-30s %-30s",
				r.Reps.P99.Band(), r.Reps.Cost.Band(), r.CostPer1kTok.Band())
		}
		b.WriteString("\n")
		if r.Market != "" {
			markets[r.Market] = true
		}
	}
	if len(failed) > 0 {
		fmt.Fprintf(&b, "(%d cell(s) failed and render n/a; fault-isolated errors:)\n", len(failed))
		for _, r := range failed {
			fmt.Fprintf(&b, "(  %s/%s/%s/%s: %s)\n", r.Avail, r.Policy, r.Fleet, r.System, r.Err)
		}
	}
	if bands && len(rows) > 0 {
		// Report the max replication across rows, not row 0's: with mixed
		// replication the footer must describe the widest band printed.
		maxN := 0
		for _, r := range rows {
			if r.Reps.Avg.N > maxN {
				maxN = r.Reps.Avg.N
			}
		}
		fmt.Fprintf(&b, "(bands: mean ±stderr [min,max] over %d seeds)\n", maxN)
	}
	slo := DefaultSLO
	if len(rows) > 0 && rows[0].SLO > 0 {
		slo = rows[0].SLO
	}
	fmt.Fprintf(&b, "($/1ktok, SLO%%: mean across seeds; SLO%% = requests within the %.0f s objective)\n", slo)
	if len(markets) > 0 {
		names := make([]string, 0, len(markets))
		for n := range markets {
			names = append(names, n)
		}
		sort.Strings(names)
		fmt.Fprintf(&b, "(market: spot billing integrates the %s price process(es); flat-price rows unmarked)\n",
			strings.Join(names, ", "))
	}
	fmt.Fprintf(&b, "(Cache%%: mean reconfiguration-memo hit rate / drain-window shift-miss share across seeds; diagnostic only, never affects results)\n")
	return b.String()
}
