package scenario

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"spotserve/internal/trace"
)

// AvailabilityModel generates spot availability traces from an explicit
// seed. Models emit the exact event-stream format internal/trace parses,
// so synthetic markets and real captured segments are interchangeable
// everywhere a trace.Trace is accepted.
type AvailabilityModel interface {
	// Name identifies the model in registries, fingerprints and catalogs.
	Name() string
	// Trace deterministically generates the availability trace for seed.
	Trace(seed int64) trace.Trace
}

// traceBuilder accumulates (time, count) steps into a valid trace:
// duplicate timestamps overwrite, unchanged counts are elided, and counts
// are clamped non-negative.
type traceBuilder struct {
	name    string
	horizon float64
	events  []trace.Event
}

func (b *traceBuilder) add(t float64, count int) {
	if count < 0 {
		count = 0
	}
	if t < 0 || t >= b.horizon {
		return
	}
	if n := len(b.events); n > 0 {
		last := &b.events[n-1]
		if t <= last.At {
			last.Count = count
			if n > 1 && b.events[n-2].Count == count {
				b.events = b.events[:n-1]
			}
			return
		}
		if last.Count == count {
			return
		}
	}
	b.events = append(b.events, trace.Event{At: t, Count: count})
}

func (b *traceBuilder) trace() trace.Trace {
	tr := trace.Trace{Name: b.name, Horizon: b.horizon, Events: b.events}
	if err := tr.Validate(); err != nil {
		// Generators are total over their parameter space; a validation
		// failure is a programming error, not an input error.
		panic(fmt.Sprintf("scenario: generated invalid trace: %v", err))
	}
	return tr
}

// Diurnal is a sinusoidal availability model: capacity follows a
// day-night-style cycle around a midpoint, with seeded per-sample jitter.
// It reproduces the slow tidal pattern of spot pools that drain during
// regional business hours and refill overnight.
type Diurnal struct {
	// Horizon is the trace length in seconds.
	Horizon float64
	// Mid and Amp set the sinusoid: count ≈ Mid + Amp·sin(2πt/Period).
	Mid, Amp float64
	// Period is the cycle length in seconds.
	Period float64
	// Sample is the sampling interval for emitting steps.
	Sample float64
	// Jitter is the probability a sample is displaced by ±1 instance.
	Jitter float64
	// Min and Max clamp the emitted counts.
	Min, Max int
}

// DefaultDiurnal mirrors the paper's 12-instance scale: a 20-minute window
// covering one full cycle between 4 and 12 instances.
func DefaultDiurnal() Diurnal {
	return Diurnal{
		Horizon: 1200,
		Mid:     8, Amp: 4,
		Period: 1200,
		Sample: 60,
		Jitter: 0.25,
		Min:    2, Max: 12,
	}
}

// Name implements AvailabilityModel.
func (d Diurnal) Name() string { return "diurnal" }

// Trace implements AvailabilityModel.
func (d Diurnal) Trace(seed int64) trace.Trace {
	rng := rand.New(rand.NewSource(seed))
	b := &traceBuilder{name: fmt.Sprintf("diurnal/%d", seed), horizon: d.Horizon}
	for t := 0.0; t < d.Horizon; t += d.Sample {
		v := d.Mid + d.Amp*math.Sin(2*math.Pi*t/d.Period)
		n := int(math.Round(v))
		if rng.Float64() < d.Jitter {
			if rng.Intn(2) == 0 {
				n--
			} else {
				n++
			}
		}
		if n < d.Min {
			n = d.Min
		}
		if n > d.Max {
			n = d.Max
		}
		b.add(t, n)
	}
	return b.trace()
}

// Bursty models correlated preemption storms: long quiet stretches at a
// base capacity, punctuated by storms that reclaim several instances in
// quick succession (the correlated-failure mode that defeats per-instance
// independence assumptions), followed by gradual individual
// re-acquisitions.
type Bursty struct {
	Horizon float64
	// Base is the quiet-period capacity.
	Base int
	// MeanStormGap is the mean time between storm arrivals (exponential).
	MeanStormGap float64
	// StormKillMin/Max bound how many instances one storm reclaims.
	StormKillMin, StormKillMax int
	// StormSpread is the window over which a storm's kills land.
	StormSpread float64
	// MeanRecover is the mean per-instance re-acquisition interval after a
	// storm.
	MeanRecover float64
	// Min clamps the post-storm floor.
	Min int
}

// DefaultBursty storms every ~5 minutes, reclaiming 2–5 instances within
// 45 s and recovering one instance per ~40 s afterwards.
func DefaultBursty() Bursty {
	return Bursty{
		Horizon:      1200,
		Base:         10,
		MeanStormGap: 300,
		StormKillMin: 2, StormKillMax: 5,
		StormSpread: 45,
		MeanRecover: 40,
		Min:         1,
	}
}

// Name implements AvailabilityModel.
func (m Bursty) Name() string { return "bursty" }

// Trace implements AvailabilityModel.
func (m Bursty) Trace(seed int64) trace.Trace {
	rng := rand.New(rand.NewSource(seed))
	b := &traceBuilder{name: fmt.Sprintf("bursty/%d", seed), horizon: m.Horizon}
	cur := m.Base
	b.add(0, cur)
	t := 0.0
	for {
		t += rng.ExpFloat64() * m.MeanStormGap
		if t >= m.Horizon {
			break
		}
		// Storm: several correlated kills inside the spread window.
		kills := m.StormKillMin
		if m.StormKillMax > m.StormKillMin {
			kills += rng.Intn(m.StormKillMax - m.StormKillMin + 1)
		}
		st := t
		for k := 0; k < kills && cur > m.Min; k++ {
			cur--
			b.add(st, cur)
			st += rng.Float64() * m.StormSpread / float64(kills)
		}
		// Recovery: individual re-acquisitions drift capacity back up.
		rt := st
		for cur < m.Base {
			rt += rng.ExpFloat64() * m.MeanRecover
			if rt >= m.Horizon {
				break
			}
			cur++
			b.add(rt, cur)
		}
		if rt > t {
			t = rt
		}
	}
	return b.trace()
}

// Crunch models a capacity crunch: a stable plateau, then a sustained ramp
// down to a scarce floor as the region sells out, a hold at the bottom,
// and a partial recovery near the end — the regime where on-demand mixing
// and autoscaling policies earn their keep.
type Crunch struct {
	Horizon float64
	// Plateau is the initial capacity; Floor the crunch bottom.
	Plateau, Floor int
	// RampStart / RampEnd bound the decline window.
	RampStart, RampEnd float64
	// RecoverAt is when capacity starts returning; RecoverTo where it
	// settles.
	RecoverAt float64
	RecoverTo int
	// JitterS randomizes each step time by up to ±JitterS seconds.
	JitterS float64
}

// DefaultCrunch declines 12 → 3 over minutes 5–13, holds, then recovers
// to 8 in the final stretch.
func DefaultCrunch() Crunch {
	return Crunch{
		Horizon: 1200,
		Plateau: 12, Floor: 3,
		RampStart: 300, RampEnd: 780,
		RecoverAt: 960, RecoverTo: 8,
		JitterS: 20,
	}
}

// Name implements AvailabilityModel.
func (c Crunch) Name() string { return "crunch" }

// Trace implements AvailabilityModel.
func (c Crunch) Trace(seed int64) trace.Trace {
	rng := rand.New(rand.NewSource(seed))
	b := &traceBuilder{name: fmt.Sprintf("crunch/%d", seed), horizon: c.Horizon}
	b.add(0, c.Plateau)
	// Jitter each segment's nominal step times, then clamp into the trace
	// window and sort within the segment: a jitter larger than the step
	// spacing must not reorder steps (the builder would merge
	// out-of-order steps away and lose part of the ramp), and must not
	// push a step past the horizon (which would drop it and leave the
	// crunch unfinished). With jitter below the spacing both are no-ops,
	// so small-jitter traces are unchanged.
	jittered := func(n int, at func(i int) float64) []float64 {
		out := make([]float64, n)
		for i := range out {
			v := at(i) + (rng.Float64()*2-1)*c.JitterS
			if v >= c.Horizon {
				v = c.Horizon - 1e-6
			}
			if v <= 0 {
				v = 1e-6
			}
			out[i] = v
		}
		sort.Float64s(out)
		return out
	}
	steps := c.Plateau - c.Floor
	if steps > 0 {
		dt := (c.RampEnd - c.RampStart) / float64(steps)
		ts := jittered(steps, func(i int) float64 { return c.RampStart + float64(i+1)*dt })
		for i, t := range ts {
			b.add(t, c.Plateau-i-1)
		}
	}
	if up := c.RecoverTo - c.Floor; up > 0 {
		span := (c.Horizon - c.RecoverAt) / float64(up+1)
		ts := jittered(up, func(i int) float64 { return c.RecoverAt + float64(i+1)*span })
		for i, t := range ts {
			b.add(t, c.Floor+i+1)
		}
	}
	return b.trace()
}

// MultiZone sums several independent spot pools, one per availability
// zone: each zone runs its own seeded random walk, and the offered
// capacity is the zones' total. Independent pools rarely crash together,
// so the aggregate is smoother than any single zone — the
// diversification effect multi-zone deployments buy.
type MultiZone struct {
	Horizon float64
	// Zones is the number of independent pools.
	Zones int
	// PerZoneStart / PerZoneMax bound each zone's walk; the walk floor is
	// zero (a zone can empty entirely).
	PerZoneStart, PerZoneMax int
	// MeanDwell is each zone's mean time between changes.
	MeanDwell float64
	// DownBias is each zone's preemption probability per change.
	DownBias float64
}

// DefaultMultiZone spreads the fleet over 3 zones of up to 5 instances.
func DefaultMultiZone() MultiZone {
	return MultiZone{
		Horizon:      1200,
		Zones:        3,
		PerZoneStart: 3, PerZoneMax: 5,
		MeanDwell: 120,
		DownBias:  0.55,
	}
}

// Name implements AvailabilityModel.
func (m MultiZone) Name() string { return "multizone" }

// Trace implements AvailabilityModel.
func (m MultiZone) Trace(seed int64) trace.Trace {
	type step struct {
		at    float64
		zone  int
		count int
	}
	var steps []step
	for z := 0; z < m.Zones; z++ {
		rng := rand.New(rand.NewSource(seed + int64(z)*1_000_003))
		cur := m.PerZoneStart
		steps = append(steps, step{0, z, cur})
		t := 0.0
		for {
			t += rng.ExpFloat64() * m.MeanDwell
			if t >= m.Horizon {
				break
			}
			next := cur + 1
			if rng.Float64() < m.DownBias {
				next = cur - 1
			}
			if next < 0 || next > m.PerZoneMax {
				continue
			}
			cur = next
			steps = append(steps, step{t, z, cur})
		}
	}
	sort.Slice(steps, func(i, j int) bool {
		if steps[i].at != steps[j].at {
			return steps[i].at < steps[j].at
		}
		return steps[i].zone < steps[j].zone
	})
	b := &traceBuilder{name: fmt.Sprintf("multizone/%d", seed), horizon: m.Horizon}
	zone := make([]int, m.Zones)
	for _, s := range steps {
		zone[s.zone] = s.count
		total := 0
		for _, n := range zone {
			total += n
		}
		b.add(s.at, total)
	}
	return b.trace()
}

// availModels is the registry of availability models, keyed by Name.
var availModels = map[string]AvailabilityModel{}

// availOrder preserves registration order for catalogs.
var availOrder []string

// RegisterModel adds an availability model to the registry. It panics on
// duplicate names (registration happens at init time from static tables).
func RegisterModel(m AvailabilityModel) {
	if _, dup := availModels[m.Name()]; dup {
		panic(fmt.Sprintf("scenario: duplicate availability model %q", m.Name()))
	}
	availModels[m.Name()] = m
	availOrder = append(availOrder, m.Name())
}

// Models lists the registered availability-model names in registration
// order.
func Models() []string { return append([]string(nil), availOrder...) }

// ModelByName returns a registered availability model. Parameter-encoded
// ladder-variant names ("price-signal/<bid>x<spread>", see LadderName)
// resolve without registration: the parameters are the identity, so the
// variant space stays out of Models() — and out of DefaultGrid, whose cell
// set mirrors the registry.
func ModelByName(name string) (AvailabilityModel, bool) {
	if m, ok := availModels[name]; ok {
		return m, ok
	}
	if p, ok := ParseLadder(name); ok {
		return p, true
	}
	return nil, false
}

func init() {
	RegisterModel(DefaultDiurnal())
	RegisterModel(DefaultBursty())
	RegisterModel(DefaultCrunch())
	RegisterModel(DefaultMultiZone())
}
