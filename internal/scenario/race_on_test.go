//go:build race

package scenario

// raceEnabled reports whether the race detector is compiled in; the
// 1000+-cell sweep skips under it (4-6× slower with no extra coverage —
// the focused race gates exercise the same pool on small grids).
const raceEnabled = true
