package scenario

import (
	"bytes"
	"encoding/json"
	"fmt"
	"strings"

	"spotserve/internal/experiments"
	"spotserve/internal/market"
	"spotserve/internal/model"
)

// JobSpec is the wire form of one grid job: the JSON body a client submits
// to the spotserved daemon (and the shape cmd/experiments' -exp scenarios
// flags map onto). Zero-valued axes fall back to DefaultGrid exactly like
// the CLI, so an empty spec runs the full default grid.
//
//	{
//	  "avail":    ["diurnal", "bursty"],      // availability models
//	  "policies": ["fixed", "slo-latency"],   // autoscaling policies
//	  "fleets":   ["homog"],                  // fleet presets
//	  "systems":  ["spotserve"],              // serving systems
//	  "market":   "ou",                        // spot-price process
//	  "model":    "GPT-20B",                   // served LLM
//	  "slo":      120,                         // SLO% objective, seconds
//	  "seed":     1,                           // base seed
//	  "seeds":    3                            // replication seed count
//	}
type JobSpec struct {
	Avail    []string `json:"avail,omitempty"`
	Policies []string `json:"policies,omitempty"`
	Fleets   []string `json:"fleets,omitempty"`
	Systems  []string `json:"systems,omitempty"`
	Market   string   `json:"market,omitempty"`
	Model    string   `json:"model,omitempty"`
	SLO      float64  `json:"slo,omitempty"`
	Seed     int64    `json:"seed,omitempty"`
	Seeds    int      `json:"seeds,omitempty"`
	// DeadlineMS bounds the job's execution time in milliseconds, counted
	// from the moment the job starts running (queue wait is backpressure,
	// not work, so it is not charged against the deadline). 0 means no
	// deadline. A job over deadline keeps its completed rows and finishes
	// in the daemon's "deadline" terminal state. The deadline is job
	// control, not scenario identity: it never reaches the grid, the cache
	// key or the fingerprints.
	DeadlineMS int64 `json:"deadline_ms,omitempty"`
}

// ParseJobSpec decodes and validates a JSON job spec. Unknown fields are
// rejected — a misspelled axis must fail the submit, not silently run the
// default grid — and every named axis value is checked against its registry
// so the error surfaces at submission time rather than inside a worker.
func ParseJobSpec(data []byte) (JobSpec, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var s JobSpec
	if err := dec.Decode(&s); err != nil {
		return JobSpec{}, fmt.Errorf("scenario: bad job spec: %w", err)
	}
	if dec.More() {
		return JobSpec{}, fmt.Errorf("scenario: bad job spec: trailing data after JSON object")
	}
	if err := s.Validate(); err != nil {
		return JobSpec{}, err
	}
	return s, nil
}

// Validate checks every named axis value against its registry and the
// numeric fields against their domains.
func (s JobSpec) Validate() error {
	if _, err := s.Grid(); err != nil {
		return err
	}
	if s.Seeds < 0 {
		return fmt.Errorf("scenario: job spec: seeds must be >= 0, got %d", s.Seeds)
	}
	if s.SLO < 0 {
		return fmt.Errorf("scenario: job spec: slo must be >= 0, got %g", s.SLO)
	}
	if s.DeadlineMS < 0 {
		return fmt.Errorf("scenario: job spec: deadline_ms must be >= 0, got %d", s.DeadlineMS)
	}
	return nil
}

// Grid resolves the spec into a sweep-ready Grid, validating axis names
// against the catalog registries (availability models, policies, fleets,
// market processes), the model table and the system names.
func (s JobSpec) Grid() (Grid, error) {
	g := Grid{
		Avail:    s.Avail,
		Policies: s.Policies,
		Fleets:   s.Fleets,
		Market:   s.Market,
		SLO:      s.SLO,
		Seed:     s.Seed,
	}
	for _, name := range s.Systems {
		sys, err := SystemByName(name)
		if err != nil {
			return Grid{}, err
		}
		g.Systems = append(g.Systems, sys)
	}
	if s.Model != "" {
		spec, ok := model.ByName(s.Model)
		if !ok {
			names := make([]string, 0, len(model.All()))
			for _, m := range model.All() {
				names = append(names, m.Name)
			}
			return Grid{}, fmt.Errorf("scenario: job spec: unknown model %q (have %s)",
				s.Model, strings.Join(names, ", "))
		}
		g.Model = spec
	}
	if s.Market != "" {
		if _, ok := market.ByName(s.Market); !ok {
			return Grid{}, fmt.Errorf("scenario: job spec: unknown market process %q (have %s)",
				s.Market, strings.Join(market.Processes(), ", "))
		}
	}
	// Grid.Cells validates the avail/policy/fleet names per cell; running it
	// here surfaces a bad name at parse time with the same error text.
	if _, err := g.Cells(); err != nil {
		return Grid{}, err
	}
	return g, nil
}

// Sweep resolves the spec's replication into a sweep: seeds seed..seed+K-1
// (K = max(Seeds, 1)), matching cmd/experiments' -seed/-seeds flags. The
// worker pool size is the runner's choice, not the spec's, so Parallel is
// left zero (all cores).
func (s JobSpec) Sweep() experiments.Sweep {
	seed := s.Seed
	if seed == 0 {
		seed = 1
	}
	return experiments.Sweep{Seeds: experiments.SeedRange(seed, s.Seeds)}
}

// SystemByName maps a wire-format system name (case-insensitive, with the
// CLI's short aliases) to the serving system.
func SystemByName(name string) (experiments.System, error) {
	switch strings.ToLower(strings.TrimSpace(name)) {
	case "spotserve":
		return experiments.SpotServe, nil
	case "reparallel", "reparallelization":
		return experiments.Reparallel, nil
	case "reroute", "rerouting":
		return experiments.Reroute, nil
	default:
		return "", fmt.Errorf("scenario: job spec: unknown system %q (want spotserve, reparallelization or rerouting)", name)
	}
}
