package scenario

import (
	"fmt"
	"strconv"
	"strings"

	"spotserve/internal/market"
	"spotserve/internal/trace"
)

// PriceSignal is the market-driven availability model: instead of scripting
// preemption waves, it derives them from a spot-price process. The offered
// pool is a bid ladder — rung i bids Bid·(1 + Spread·i/(Pool−1)) — and the
// capacity at any moment is the number of rungs at or above the current
// price, floored at Min (deep-pocketed bidders that survive any spike). A
// price crossing above the lowest bids preempts those instances; reversion
// restores them — so preemption waves are *caused* by the market, and a
// scenario billing against the same process (see Scenario.Market) sees
// spikes and preemptions as two views of one curve.
type PriceSignal struct {
	// Horizon is the trace length in seconds.
	Horizon float64
	// Process names the market price process (registry of internal/market).
	Process string
	// Type is the instance type the ladder bids on: its name and the base
	// spot price the process reverts to. Curves derive from the seed and
	// the type's table index, so the billing market's primary-type curve
	// (index 0) is bit-identical to the one this model preempts against.
	Type market.TypeSpec
	// Bid is the ladder's lowest bid in $/h; capacity is full at or below
	// it.
	Bid float64
	// Spread is the ladder's relative width: the top rung bids
	// Bid·(1+Spread).
	Spread float64
	// Pool is the capacity offered when the price is at or below Bid.
	Pool int
	// Min is the floor that survives any spike.
	Min int
	// variant, when non-empty, is the parameter-encoded registry name a
	// ladder variant answers to (see LadderName); the default model keeps
	// the plain "price-signal" name.
	variant string
}

// DefaultPriceSignal drives the paper-scale 12-instance pool from the
// regime-switching squeeze process on the g4dn base price (1.9 $/h): the
// ladder starts just above base at 2.1 $/h and spans to ~3.4 $/h, so calm
// OU drift nibbles the lowest rungs while a 3× squeeze clears the ladder
// down to the floor.
func DefaultPriceSignal() PriceSignal {
	return PriceSignal{
		Horizon: 1200,
		Process: "squeeze",
		Type:    market.TypeSpec{Name: "default", USDPerHour: 1.9},
		Bid:     2.1,
		Spread:  0.6,
		Pool:    12,
		Min:     1,
	}
}

// Name implements AvailabilityModel.
func (p PriceSignal) Name() string {
	if p.variant != "" {
		return p.variant
	}
	return "price-signal"
}

// ladderPrefix starts every parameter-encoded ladder-variant name.
const ladderPrefix = "price-signal/"

// LadderName encodes a bid-ladder variant of the price-signal model as a
// registry-style name: "price-signal/<bid>x<spread>". Variant names resolve
// through ModelByName without registration — the parameters ARE the name —
// so a grid can fan out over whole bid ladders without touching the global
// registry (or DefaultGrid, which mirrors it).
func LadderName(bid, spread float64) string {
	return ladderPrefix +
		strconv.FormatFloat(bid, 'g', -1, 64) + "x" +
		strconv.FormatFloat(spread, 'g', -1, 64)
}

// LadderNames encodes the full bids×spreads cross — the grid axis a ladder
// sweep fans out over.
func LadderNames(bids, spreads []float64) []string {
	out := make([]string, 0, len(bids)*len(spreads))
	for _, b := range bids {
		for _, s := range spreads {
			out = append(out, LadderName(b, s))
		}
	}
	return out
}

// ParseLadder decodes a ladder-variant name into its PriceSignal: the
// default model with the encoded bid and spread, answering Name() with the
// encoded name (so fingerprints, cache keys and rendered rows all carry the
// variant identity). Returns false for anything that is not a well-formed
// variant name with positive parameters.
func ParseLadder(name string) (PriceSignal, bool) {
	rest, ok := strings.CutPrefix(name, ladderPrefix)
	if !ok {
		return PriceSignal{}, false
	}
	bs, ss, ok := strings.Cut(rest, "x")
	if !ok {
		return PriceSignal{}, false
	}
	bid, err := strconv.ParseFloat(bs, 64)
	if err != nil || bid <= 0 {
		return PriceSignal{}, false
	}
	spread, err := strconv.ParseFloat(ss, 64)
	if err != nil || spread <= 0 {
		return PriceSignal{}, false
	}
	// Round-trip exactness: the name is the identity, so a name that does
	// not re-encode to itself (1e0, 2.10, +2.1) is rejected rather than
	// silently aliasing another variant's cache entries.
	p := DefaultPriceSignal()
	p.Bid, p.Spread = bid, spread
	p.variant = LadderName(bid, spread)
	if p.variant != name {
		return PriceSignal{}, false
	}
	return p, true
}

// CountAt returns the ladder capacity at a price: the rungs bidding at or
// above it, clamped to [Min, Pool].
func (p PriceSignal) CountAt(price float64) int {
	if price <= p.Bid {
		return p.Pool
	}
	n := 0
	for i := 0; i < p.Pool; i++ {
		if p.rungBid(i) >= price {
			n++
		}
	}
	if n < p.Min {
		n = p.Min
	}
	return n
}

// rungBid is rung i's bid: rungs spread evenly over [Bid, Bid·(1+Spread)],
// highest bids first (rung 0 is the most committed bidder).
func (p PriceSignal) rungBid(i int) float64 {
	if p.Pool <= 1 {
		return p.Bid
	}
	return p.Bid * (1 + p.Spread*float64(p.Pool-1-i)/float64(p.Pool-1))
}

// Trace implements AvailabilityModel: generate the price curve, walk its
// steps, and emit the ladder capacity at each price change.
func (p PriceSignal) Trace(seed int64) trace.Trace {
	proc, ok := market.ByName(p.Process)
	if !ok {
		panic(fmt.Sprintf("scenario: price-signal model references unknown market process %q", p.Process))
	}
	curve, ok := proc.Generate(seed, p.Horizon, []market.TypeSpec{p.Type}).CurveFor(p.Type.Name)
	if !ok {
		panic(fmt.Sprintf("scenario: market process %q generated no curve for %q", p.Process, p.Type.Name))
	}
	return p.TraceFromCurve(fmt.Sprintf("price-signal/%s/%d", p.Process, seed), curve)
}

// TraceFromCurve walks an already-generated price curve through the ladder
// and emits the availability trace — the seam callers with their own price
// process use (the calibration fitter drives candidate OU curves through
// here), guaranteed to preempt exactly like Trace would on the same curve.
func (p PriceSignal) TraceFromCurve(name string, curve market.Curve) trace.Trace {
	b := &traceBuilder{name: name, horizon: p.Horizon}
	for _, s := range curve.Samples {
		b.add(s.At, p.CountAt(s.USDPerHour))
	}
	return b.trace()
}

func init() {
	RegisterModel(DefaultPriceSignal())
}
