package scenario

import (
	"fmt"

	"spotserve/internal/market"
	"spotserve/internal/trace"
)

// PriceSignal is the market-driven availability model: instead of scripting
// preemption waves, it derives them from a spot-price process. The offered
// pool is a bid ladder — rung i bids Bid·(1 + Spread·i/(Pool−1)) — and the
// capacity at any moment is the number of rungs at or above the current
// price, floored at Min (deep-pocketed bidders that survive any spike). A
// price crossing above the lowest bids preempts those instances; reversion
// restores them — so preemption waves are *caused* by the market, and a
// scenario billing against the same process (see Scenario.Market) sees
// spikes and preemptions as two views of one curve.
type PriceSignal struct {
	// Horizon is the trace length in seconds.
	Horizon float64
	// Process names the market price process (registry of internal/market).
	Process string
	// Type is the instance type the ladder bids on: its name and the base
	// spot price the process reverts to. Curves derive from the seed and
	// the type's table index, so the billing market's primary-type curve
	// (index 0) is bit-identical to the one this model preempts against.
	Type market.TypeSpec
	// Bid is the ladder's lowest bid in $/h; capacity is full at or below
	// it.
	Bid float64
	// Spread is the ladder's relative width: the top rung bids
	// Bid·(1+Spread).
	Spread float64
	// Pool is the capacity offered when the price is at or below Bid.
	Pool int
	// Min is the floor that survives any spike.
	Min int
}

// DefaultPriceSignal drives the paper-scale 12-instance pool from the
// regime-switching squeeze process on the g4dn base price (1.9 $/h): the
// ladder starts just above base at 2.1 $/h and spans to ~3.4 $/h, so calm
// OU drift nibbles the lowest rungs while a 3× squeeze clears the ladder
// down to the floor.
func DefaultPriceSignal() PriceSignal {
	return PriceSignal{
		Horizon: 1200,
		Process: "squeeze",
		Type:    market.TypeSpec{Name: "default", USDPerHour: 1.9},
		Bid:     2.1,
		Spread:  0.6,
		Pool:    12,
		Min:     1,
	}
}

// Name implements AvailabilityModel.
func (PriceSignal) Name() string { return "price-signal" }

// CountAt returns the ladder capacity at a price: the rungs bidding at or
// above it, clamped to [Min, Pool].
func (p PriceSignal) CountAt(price float64) int {
	if price <= p.Bid {
		return p.Pool
	}
	n := 0
	for i := 0; i < p.Pool; i++ {
		if p.rungBid(i) >= price {
			n++
		}
	}
	if n < p.Min {
		n = p.Min
	}
	return n
}

// rungBid is rung i's bid: rungs spread evenly over [Bid, Bid·(1+Spread)],
// highest bids first (rung 0 is the most committed bidder).
func (p PriceSignal) rungBid(i int) float64 {
	if p.Pool <= 1 {
		return p.Bid
	}
	return p.Bid * (1 + p.Spread*float64(p.Pool-1-i)/float64(p.Pool-1))
}

// Trace implements AvailabilityModel: generate the price curve, walk its
// steps, and emit the ladder capacity at each price change.
func (p PriceSignal) Trace(seed int64) trace.Trace {
	proc, ok := market.ByName(p.Process)
	if !ok {
		panic(fmt.Sprintf("scenario: price-signal model references unknown market process %q", p.Process))
	}
	curve, ok := proc.Generate(seed, p.Horizon, []market.TypeSpec{p.Type}).CurveFor(p.Type.Name)
	if !ok {
		panic(fmt.Sprintf("scenario: market process %q generated no curve for %q", p.Process, p.Type.Name))
	}
	return p.TraceFromCurve(fmt.Sprintf("price-signal/%s/%d", p.Process, seed), curve)
}

// TraceFromCurve walks an already-generated price curve through the ladder
// and emits the availability trace — the seam callers with their own price
// process use (the calibration fitter drives candidate OU curves through
// here), guaranteed to preempt exactly like Trace would on the same curve.
func (p PriceSignal) TraceFromCurve(name string, curve market.Curve) trace.Trace {
	b := &traceBuilder{name: name, horizon: p.Horizon}
	for _, s := range curve.Samples {
		b.add(s.At, p.CountAt(s.USDPerHour))
	}
	return b.trace()
}

func init() {
	RegisterModel(DefaultPriceSignal())
}
