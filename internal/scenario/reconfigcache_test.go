package scenario

import (
	"testing"

	"spotserve/internal/experiments"
)

// gridCells expands the default 50-cell scenario grid (availability models
// × policies on the homogeneous and speed-heterogeneous fleets).
func gridCells(t *testing.T) []experiments.Scenario {
	t.Helper()
	cells, err := DefaultGrid().Cells()
	if err != nil {
		t.Fatal(err)
	}
	// 5 availability models (incl. price-signal) × 5 policies (incl.
	// slo-latency, cost-cap) × 2 fleets.
	if len(cells) != 50 {
		t.Fatalf("default grid = %d cells, want 50", len(cells))
	}
	return cells
}

// TestGridReconfigCacheEquivalence runs the full default scenario
// grid twice — reconfiguration cache enabled and disabled — and requires
// byte-identical fingerprints cell by cell. The grid spans every
// availability model, every autoscaling policy and both fleet presets, so
// this pins the cache's exactness across heterogeneous fleets, policy-
// driven fleet churn and correlated preemption storms at once.
func TestGridReconfigCacheEquivalence(t *testing.T) {
	cells := gridCells(t)
	warm := experiments.RunAll(cells, 0)
	cold := make([]experiments.Scenario, len(cells))
	copy(cold, cells)
	for i := range cold {
		cold[i].DisableReconfigCache = true
	}
	coldRes := experiments.RunAll(cold, 0)
	for i := range cells {
		coldRes[i].Scenario.DisableReconfigCache = false
		if got, want := warm[i].Fingerprint(), coldRes[i].Fingerprint(); got != want {
			t.Errorf("cell %d (%s/%s/%s): cached fingerprint %s != cold %s",
				i, cells[i].AvailModel, cells[i].Policy, cells[i].Fleet, got, want)
		}
	}
}

// TestGridReconfigCacheParallelDeterminism pins parallel == serial with
// the cache armed: each worker owns per-server memos, so worker count and
// scheduling order must not leak into results.
func TestGridReconfigCacheParallelDeterminism(t *testing.T) {
	cells := gridCells(t)
	serial := experiments.RunAll(cells, 1)
	parallel := experiments.RunAll(cells, 0)
	for i := range cells {
		if got, want := parallel[i].Fingerprint(), serial[i].Fingerprint(); got != want {
			t.Errorf("cell %d (%s/%s/%s): parallel fingerprint %s != serial %s",
				i, cells[i].AvailModel, cells[i].Policy, cells[i].Fleet, got, want)
		}
	}
}
