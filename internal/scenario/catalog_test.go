package scenario

import (
	"os"
	"strings"
	"testing"

	"spotserve/internal/market"
)

// TestCatalogCoversRegistries fails when a registered scenario-axis value
// is missing from docs/SCENARIOS.md: adding a model, policy or fleet
// preset requires cataloging it (name in backticks) in the same change.
func TestCatalogCoversRegistries(t *testing.T) {
	data, err := os.ReadFile("../../docs/SCENARIOS.md")
	if err != nil {
		t.Fatalf("docs/SCENARIOS.md unreadable: %v — every registered scenario axis must be cataloged there", err)
	}
	doc := string(data)
	groups := []struct {
		kind  string
		names []string
	}{
		{"availability model", Models()},
		{"autoscaling policy", Policies()},
		{"fleet preset", Fleets()},
		{"market process", market.Processes()},
	}
	for _, g := range groups {
		for _, name := range g.names {
			if !strings.Contains(doc, "`"+name+"`") {
				t.Errorf("docs/SCENARIOS.md does not catalog %s `%s`", g.kind, name)
			}
		}
	}
}
