package scenario

import (
	"testing"

	"spotserve/internal/cloud"
)

// TestZeroValuePoliciesScale is the regression gate for the silent-no-scale
// bug: a zero-value ReactiveQueue or Predictive used to clamp every surplus
// to MaxExtra=0, turning the policy into fixed-target. Zero-value policies
// must fall back to their registered defaults on every field.
func TestZeroValuePoliciesScale(t *testing.T) {
	v := cloud.FleetView{Want: 6, QueueDepth: 17, Dying: 2, RecentPreemptions: 4}
	if got := (ReactiveQueue{}).Target(v); got != DefaultReactiveQueue().Target(v) {
		t.Errorf("zero-value ReactiveQueue target %d != default %d",
			got, DefaultReactiveQueue().Target(v))
	}
	if got := (ReactiveQueue{}).Target(v); got <= v.Want {
		t.Errorf("zero-value ReactiveQueue never scales: target %d with 17 queued", got)
	}
	if got := (Predictive{PerPreemption: 0.5}).Target(v); got != DefaultPredictive().Target(v) {
		t.Errorf("zero-MaxExtra Predictive target %d != default %d",
			got, DefaultPredictive().Target(v))
	}
	if got := (Predictive{PerPreemption: 0.5}).Target(v); got <= v.Want {
		t.Errorf("zero-MaxExtra Predictive never scales: target %d with 2 dying", got)
	}
	// The caps still engage at their defaults.
	big := cloud.FleetView{Want: 6, QueueDepth: 1000, Dying: 9, RecentPreemptions: 40}
	if got := (ReactiveQueue{}).Target(big); got != 6+4 {
		t.Errorf("zero-value ReactiveQueue cap: %d, want 10", got)
	}
	if got := (Predictive{PerPreemption: 0.5}).Target(big); got != 6+5 {
		t.Errorf("zero-MaxExtra Predictive cap: %d, want 11", got)
	}
}

// TestSLOLatencyTargets pins the slo-latency policy arithmetic: the
// feedforward term buys the instances closing the throughput gap, the
// feedback term reacts to an observed p99 violation, and the larger of the
// two wins (capped at MaxExtra).
func TestSLOLatencyTargets(t *testing.T) {
	p := DefaultSLOLatency()
	// Comfortable: capacity above demand, p99 under target → exactly Want.
	calm := cloud.FleetView{Want: 5, Alpha: 0.3, Phi: 0.5, PhiPerInstance: 0.1, RecentP99: 60}
	if got := p.Target(calm); got != 5 {
		t.Errorf("calm target %d, want 5", got)
	}
	// Feedforward: α·1.25 = 0.5 vs φ = 0.3 → gap 0.2 at 0.1/inst → +2.
	gap := cloud.FleetView{Want: 5, Alpha: 0.4, Phi: 0.3, PhiPerInstance: 0.1}
	if got := p.Target(gap); got != 7 {
		t.Errorf("feedforward target %d, want 7", got)
	}
	// Feedback: p99 80% over target → ceil(5·0.8) = +4 (> feedforward's +2).
	slow := gap
	slow.RecentP99 = p.TargetP99 * 1.8
	if got := p.Target(slow); got != 9 {
		t.Errorf("feedback target %d, want 9", got)
	}
	// Cap: a 10× violation is clamped to MaxExtra.
	worst := gap
	worst.RecentP99 = p.TargetP99 * 10
	if got := p.Target(worst); got != 5+p.MaxExtra {
		t.Errorf("capped target %d, want %d", got, 5+p.MaxExtra)
	}
	// Zero-value: defaults engage instead of a 0 cap / 0 target.
	if got := (SLOLatency{}).Target(slow); got <= 5 {
		t.Errorf("zero-value SLOLatency never scales: %d", got)
	}
}

// TestCostCapTargets pins the cost-cap policy: under budget it defers to
// the optimizer, over budget it sheds to what the budget affords at the
// current average unit price, and a zero budget disables the cap.
func TestCostCapTargets(t *testing.T) {
	p := CostCap{BudgetUSDPerHour: 20}
	under := cloud.FleetView{Want: 8, SpotRunning: 8, SpendUSDPerHour: 16}
	if got := p.Target(under); got != 8 {
		t.Errorf("under-budget target %d, want 8", got)
	}
	// Price spike: 8 instances now bill 40 $/h (5 $/h each) → afford 4.
	spike := cloud.FleetView{Want: 8, SpotRunning: 8, SpendUSDPerHour: 40}
	if got := p.Target(spike); got != 4 {
		t.Errorf("spike target %d, want 4", got)
	}
	// Mixed fleet counts both markets' running instances.
	mixed := cloud.FleetView{Want: 10, SpotRunning: 6, OnDemandRunning: 4, SpendUSDPerHour: 50}
	if got := p.Target(mixed); got != 4 { // unit 5 $/h → afford 4
		t.Errorf("mixed target %d, want 4", got)
	}
	// Disabled cap and empty fleet defer to Want.
	if got := (CostCap{}).Target(spike); got != 8 {
		t.Errorf("zero-budget target %d, want 8", got)
	}
	if got := p.Target(cloud.FleetView{Want: 3, SpendUSDPerHour: 99}); got != 3 {
		t.Errorf("empty-fleet target %d, want 3", got)
	}
}
