package scenario

import (
	"reflect"
	"testing"

	"spotserve/internal/trace"
)

// TestTraceBuilderAdd is the table test for the builder invariants every
// availability model leans on: duplicate timestamps overwrite in place,
// unchanged counts are elided, negative counts clamp to zero, and
// out-of-window steps are dropped — always yielding a valid trace.
func TestTraceBuilderAdd(t *testing.T) {
	type step struct {
		at    float64
		count int
	}
	cases := []struct {
		name  string
		steps []step
		want  []trace.Event
	}{
		{
			name:  "duplicate timestamp overwrites",
			steps: []step{{0, 5}, {10, 3}, {10, 7}},
			want:  []trace.Event{{At: 0, Count: 5}, {At: 10, Count: 7}},
		},
		{
			name:  "duplicate collapsing back to previous count merges away",
			steps: []step{{0, 5}, {10, 3}, {10, 5}},
			want:  []trace.Event{{At: 0, Count: 5}},
		},
		{
			name:  "out-of-order step lands on the last event",
			steps: []step{{0, 5}, {20, 3}, {10, 8}},
			want:  []trace.Event{{At: 0, Count: 5}, {At: 20, Count: 8}},
		},
		{
			name:  "unchanged counts elided",
			steps: []step{{0, 4}, {10, 4}, {20, 4}, {30, 6}},
			want:  []trace.Event{{At: 0, Count: 4}, {At: 30, Count: 6}},
		},
		{
			name:  "negative counts clamp to zero",
			steps: []step{{0, 2}, {10, -3}},
			want:  []trace.Event{{At: 0, Count: 2}, {At: 10, Count: 0}},
		},
		{
			name:  "steps outside the window dropped",
			steps: []step{{0, 3}, {-5, 9}, {100, 9}, {50, 7}},
			want:  []trace.Event{{At: 0, Count: 3}, {At: 50, Count: 7}},
		},
		{
			name:  "repeated duplicates at one timestamp keep the last",
			steps: []step{{0, 1}, {30, 4}, {30, 2}, {30, 9}, {30, 6}},
			want:  []trace.Event{{At: 0, Count: 1}, {At: 30, Count: 6}},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			b := &traceBuilder{name: tc.name, horizon: 100}
			for _, s := range tc.steps {
				b.add(s.at, s.count)
			}
			tr := b.trace()
			if err := tr.Validate(); err != nil {
				t.Fatalf("built invalid trace: %v", err)
			}
			if !reflect.DeepEqual(tr.Events, tc.want) {
				t.Errorf("events = %+v, want %+v", tr.Events, tc.want)
			}
		})
	}
}
