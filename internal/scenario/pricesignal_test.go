package scenario

import (
	"testing"

	"spotserve/internal/experiments"
	"spotserve/internal/market"
)

// TestPriceSignalLadder pins the bid-ladder capacity function: full pool at
// or below the bid, rungs dropping one by one as the price climbs, the
// floor surviving any spike.
func TestPriceSignalLadder(t *testing.T) {
	p := DefaultPriceSignal() // bid 2.1, spread 0.6 → top rung 3.36, pool 12, min 1
	cases := []struct {
		price float64
		want  int
	}{
		{1.0, 12},
		{2.1, 12},  // at the bid, every rung holds
		{2.15, 11}, // just above the lowest rung
		{2.8, 5}, // rungs 2.1·(1+0.6k/11) ≥ 2.8 ⇔ k ≥ 6.11 → 5 rungs
		{3.36, 1}, // only the top rung bids this high
		{10.0, 1}, // floor survives any squeeze
		{100.0, 1},
	}
	for _, tc := range cases {
		if got := p.CountAt(tc.price); got != tc.want {
			t.Errorf("CountAt(%v) = %d, want %d", tc.price, got, tc.want)
		}
	}
}

// TestPriceSignalWavesAreCaused checks preemption waves trace back to the
// market: wherever the generated trace loses capacity, the driving curve's
// price must exceed the bid at that moment — availability is an effect of
// price, never scripted independently of it.
func TestPriceSignalWavesAreCaused(t *testing.T) {
	p := DefaultPriceSignal()
	proc, _ := market.ByName(p.Process)
	totalDrops := 0
	for seed := int64(1); seed <= 10; seed++ {
		tr := p.Trace(seed)
		curve, _ := proc.Generate(seed, p.Horizon, []market.TypeSpec{p.Type}).CurveFor(p.Type.Name)
		prev := p.Pool
		for _, ev := range tr.Events {
			if ev.Count < prev {
				totalDrops++
				if price := curve.PriceAt(ev.At); price <= p.Bid {
					t.Errorf("seed %d: capacity dropped to %d at t=%v with price %.3f ≤ bid %.3f",
						seed, ev.Count, ev.At, price, p.Bid)
				}
			}
			prev = ev.Count
		}
	}
	// An individual all-calm seed is legal, but ten consecutive waveless
	// seeds would make the property above vacuous — the squeeze defaults
	// must actually cause preemption somewhere.
	if totalDrops == 0 {
		t.Error("no seed in 1..10 produced a single preemption wave — the market never crossed the bid")
	}
}

// TestPriceSignalCellBillsItsOwnMarket is the coherence gate: a
// price-signal grid cell must carry a MarketFn whose primary-type curve is
// bit-identical to the curve the availability model preempted against —
// billing spikes and preemption waves are two views of one process.
func TestPriceSignalCellBillsItsOwnMarket(t *testing.T) {
	cell, err := Scenario{Avail: "price-signal", Policy: "fixed", Fleet: "homog"}.Cell()
	if err != nil {
		t.Fatal(err)
	}
	if cell.Market != DefaultPriceSignal().Process {
		t.Fatalf("cell market %q, want the model's own process %q", cell.Market, DefaultPriceSignal().Process)
	}
	if cell.MarketFn == nil {
		t.Fatal("price-signal cell has no MarketFn — spot billing would stay flat")
	}
	ps := DefaultPriceSignal()
	proc, _ := market.ByName(ps.Process)
	for _, seed := range []int64{1, 7} {
		bill := cell.MarketFn(seed)
		billCurve, ok := bill.CurveFor("default") // the homog fleet's primary type
		if !ok {
			t.Fatalf("seed %d: billing market has no curve for the primary type", seed)
		}
		availCurve, _ := proc.Generate(seed, ps.Horizon, []market.TypeSpec{ps.Type}).CurveFor(ps.Type.Name)
		if len(billCurve.Samples) != len(availCurve.Samples) {
			t.Fatalf("seed %d: billing curve has %d samples, availability curve %d",
				seed, len(billCurve.Samples), len(availCurve.Samples))
		}
		for i := range billCurve.Samples {
			if billCurve.Samples[i] != availCurve.Samples[i] {
				t.Fatalf("seed %d: curves diverge at sample %d: %+v vs %+v",
					seed, i, billCurve.Samples[i], availCurve.Samples[i])
			}
		}
	}
	// And a priced run actually serves with market billing end to end.
	res := experiments.Run(cell)
	if res.Stats.Completed == 0 {
		t.Fatal("price-signal cell served nothing")
	}
	if res.Stats.CostUSD <= 0 {
		t.Fatal("price-signal cell accrued no cost")
	}
}

// TestMarketAxisFingerprinted asserts cells differing only in the market
// axis produce different result fingerprints (billing is observable).
func TestMarketAxisFingerprinted(t *testing.T) {
	flat, err := Scenario{Avail: "bursty", Policy: "fixed", Fleet: "homog"}.Cell()
	if err != nil {
		t.Fatal(err)
	}
	priced, err := Scenario{Avail: "bursty", Policy: "fixed", Fleet: "homog", Market: "ou"}.Cell()
	if err != nil {
		t.Fatal(err)
	}
	rf, rp := experiments.Run(flat), experiments.Run(priced)
	if rf.Fingerprint() == rp.Fingerprint() {
		t.Error("market axis not reflected in result fingerprints")
	}
	if rf.Stats.CostUSD == rp.Stats.CostUSD {
		t.Error("ou market billed exactly the flat price — curve path not engaged")
	}
}

// TestUnknownMarketRejected checks the axis validates its registry name.
func TestUnknownMarketRejected(t *testing.T) {
	if _, err := (Scenario{Avail: "diurnal", Policy: "fixed", Fleet: "homog", Market: "nope"}).Cell(); err == nil {
		t.Error("unknown market process accepted")
	}
}
