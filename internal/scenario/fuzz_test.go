package scenario

import (
	"encoding/json"
	"testing"
)

// FuzzParseJobSpec hammers the JSON job-spec format accepted by the
// spotserved daemon's POST /jobs and cmd/experiments' scenario flags:
// arbitrary input must either yield a spec whose Grid resolves and that
// survives a marshal→parse round trip, or return an error — never panic
// and never hand back a spec a worker would later reject.
func FuzzParseJobSpec(f *testing.F) {
	f.Add([]byte(`{}`))
	f.Add([]byte(`{"avail":["diurnal","bursty"],"policies":["fixed"],"fleets":["homog"],"systems":["spotserve"],"market":"ou","model":"GPT-20B","slo":120,"seed":1,"seeds":3}`))
	f.Add([]byte(`{"avail":["no-such-model"]}`))
	f.Add([]byte(`{"systems":["no-such-system"]}`))
	f.Add([]byte(`{"market":"no-such-process"}`))
	f.Add([]byte(`{"model":"GPT-999T"}`))
	f.Add([]byte(`{"seeds":-1}`))
	f.Add([]byte(`{"slo":-5}`))
	f.Add([]byte(`{"deadline_ms":-1}`))
	f.Add([]byte(`{"unknown_field":1}`))
	f.Add([]byte(`{} trailing`))
	f.Add([]byte(`[1,2,3]`))
	f.Add([]byte(`not json`))

	f.Fuzz(func(t *testing.T, data []byte) {
		spec, err := ParseJobSpec(data)
		if err != nil {
			return
		}
		// Anything accepted must resolve into a runnable grid.
		g, err := spec.Grid()
		if err != nil {
			t.Fatalf("accepted spec fails Grid(): %v\ninput: %q", err, data)
		}
		cells, err := g.Cells()
		if err != nil {
			t.Fatalf("accepted spec fails Cells(): %v\ninput: %q", err, data)
		}
		if len(cells) == 0 {
			t.Fatalf("accepted spec resolves to zero cells\ninput: %q", data)
		}
		if n := len(spec.Sweep().Seeds); n < 1 {
			t.Fatalf("accepted spec resolves to %d seeds\ninput: %q", n, data)
		}
		// The accepted spec must round-trip.
		out, err := json.Marshal(spec)
		if err != nil {
			t.Fatalf("re-marshal of accepted spec failed: %v", err)
		}
		if _, err := ParseJobSpec(out); err != nil {
			t.Fatalf("round trip rejected: %v\njson: %s", err, out)
		}
	})
}
