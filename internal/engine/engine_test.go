package engine

import (
	"math"
	"testing"

	"spotserve/internal/cloud"
	"spotserve/internal/config"
	"spotserve/internal/cost"
	"spotserve/internal/model"
	"spotserve/internal/sim"
	"spotserve/internal/trace"
	"spotserve/internal/workload"
)

// testHooks is a configurable Hooks implementation.
type testHooks struct {
	iterDone   func(*Pipeline) bool
	reqDone    []*RequestState
	batchDone  int
	paused     []*Batch
	pausedPipe []*Pipeline
}

func (h *testHooks) IterationDone(p *Pipeline) bool {
	if h.iterDone != nil {
		return h.iterDone(p)
	}
	return true
}
func (h *testHooks) RequestDone(p *Pipeline, r *RequestState) { h.reqDone = append(h.reqDone, r) }
func (h *testHooks) BatchDone(p *Pipeline)                    { h.batchDone++ }
func (h *testHooks) BatchPaused(p *Pipeline, b *Batch) {
	h.paused = append(h.paused, b)
	h.pausedPipe = append(h.pausedPipe, p)
}

type fixture struct {
	sim   *sim.Simulator
	eng   *Engine
	hooks *testHooks
	gpus  []*cloud.GPU
}

type nopListener struct{}

func (nopListener) InstanceReady(*cloud.Instance)             {}
func (nopListener) PreemptionNotice(*cloud.Instance, float64) {}
func (nopListener) InstanceTerminated(*cloud.Instance)        {}

// newFixture builds an engine over nInst 4-GPU instances for spec.
func newFixture(t *testing.T, spec model.Spec, nInst int) *fixture {
	t.Helper()
	s := sim.New()
	cl := cloud.New(s, cloud.DefaultParams(), nopListener{})
	tr := trace.Trace{Name: "t", Horizon: 1e6, Events: []trace.Event{{At: 0, Count: nInst}}}
	if err := cl.ReplayTrace(tr); err != nil {
		t.Fatal(err)
	}
	s.Run(0)
	h := &testHooks{}
	e := New(s, cost.NewEstimator(cost.DefaultParams(), spec), h)
	return &fixture{sim: s, eng: e, hooks: h, gpus: cl.UsableGPUs()}
}

// bind creates the position→GPU map for pipeline id of cfg using GPUs in order.
func (f *fixture) bind(id int, cfg config.Config) map[config.Position]*cloud.GPU {
	out := make(map[config.Position]*cloud.GPU)
	i := 0
	for p := 0; p < cfg.P; p++ {
		for m := 0; m < cfg.M; m++ {
			out[config.Position{D: id, P: p, M: m}] = f.gpus[i]
			i++
		}
	}
	return out
}

func mkBatch(n, seqIn, seqOut int) *Batch {
	b := &Batch{}
	for i := 0; i < n; i++ {
		b.Requests = append(b.Requests, &RequestState{
			Req: workload.Request{ID: int64(i), SeqIn: seqIn, SeqOut: seqOut},
		})
	}
	return b
}

func TestPipelineRunsBatchToCompletion(t *testing.T) {
	f := newFixture(t, model.OPT6B7, 1)
	cfg := config.Config{D: 1, P: 1, M: 4, B: 4}
	p, err := f.eng.NewPipeline(0, cfg, f.bind(0, cfg))
	if err != nil {
		t.Fatal(err)
	}
	b := mkBatch(2, 512, 16)
	f.sim.At(0, func() { p.Start(b) })
	f.sim.RunAll()
	if f.hooks.batchDone != 1 {
		t.Fatalf("batchDone = %d", f.hooks.batchDone)
	}
	if len(f.hooks.reqDone) != 2 {
		t.Fatalf("reqDone = %d", len(f.hooks.reqDone))
	}
	for _, r := range b.Requests {
		if !r.Done() || r.Committed != 16 {
			t.Fatalf("request not fully decoded: %+v", r)
		}
	}
	if p.Busy() {
		t.Fatal("pipeline still busy")
	}
	// 16 output tokens = init phase (commits token 1) + 15 decode slots.
	if p.Iterations() != 16 {
		t.Fatalf("iterations = %d, want 16", p.Iterations())
	}
}

func TestExecutionTimeMatchesCostModel(t *testing.T) {
	f := newFixture(t, model.OPT6B7, 1)
	cfg := config.Config{D: 1, P: 1, M: 4, B: 1}
	p, _ := f.eng.NewPipeline(0, cfg, f.bind(0, cfg))
	b := mkBatch(1, 512, 128)
	f.sim.At(0, func() { p.Start(b) })
	end := f.sim.RunAll()
	est := f.eng.Est
	want := est.InitPhase(1, 4, 1, 512)
	for i := 1; i < 128; i++ {
		// Iteration i decodes token i+1 at current length 512+i.
		want += est.DecodeIter(1, 4, 1, 512+i)
	}
	if math.Abs(end-want) > 1e-6 {
		t.Fatalf("end = %v, want %v", end, want)
	}
	// Sanity: close to the Table-1 l_exe for OPT-6.7B.
	if end < 4.5 || end > 6.5 {
		t.Fatalf("end-to-end %v s not in OPT-6.7B ballpark", end)
	}
}

func TestRequestStopPausesAtBoundary(t *testing.T) {
	f := newFixture(t, model.OPT6B7, 1)
	cfg := config.Config{D: 1, P: 1, M: 4, B: 1}
	p, _ := f.eng.NewPipeline(0, cfg, f.bind(0, cfg))
	b := mkBatch(1, 512, 128)
	f.sim.At(0, func() { p.Start(b) })
	f.sim.At(1.0, func() { p.RequestStop() })
	f.sim.RunAll()
	if len(f.hooks.paused) != 1 {
		t.Fatalf("paused = %d", len(f.hooks.paused))
	}
	got := f.hooks.paused[0]
	if got.Progress() == 0 || got.Progress() >= 128 {
		t.Fatalf("paused progress = %d", got.Progress())
	}
	if p.Busy() {
		t.Fatal("pipeline busy after pause")
	}
}

func TestHookCanPauseViaReturnValue(t *testing.T) {
	f := newFixture(t, model.OPT6B7, 1)
	cfg := config.Config{D: 1, P: 1, M: 4, B: 1}
	p, _ := f.eng.NewPipeline(0, cfg, f.bind(0, cfg))
	iters := 0
	f.hooks.iterDone = func(*Pipeline) bool {
		iters++
		return iters < 5
	}
	b := mkBatch(1, 512, 128)
	f.sim.At(0, func() { p.Start(b) })
	f.sim.RunAll()
	if len(f.hooks.paused) != 1 {
		t.Fatalf("paused = %d", len(f.hooks.paused))
	}
	if got := f.hooks.paused[0].Progress(); got != 5 {
		t.Fatalf("progress at pause = %d, want 5", got)
	}
}

func TestResumeFromCommittedProgress(t *testing.T) {
	f := newFixture(t, model.OPT6B7, 1)
	cfg := config.Config{D: 1, P: 1, M: 4, B: 1}
	p, _ := f.eng.NewPipeline(0, cfg, f.bind(0, cfg))
	b := mkBatch(1, 512, 32)
	b.Requests[0].Committed = 30 // recovered with 30 tokens done
	f.sim.At(0, func() { p.Start(b) })
	end := f.sim.RunAll()
	if b.Requests[0].Committed != 32 {
		t.Fatalf("committed = %d", b.Requests[0].Committed)
	}
	// Only two decode iterations — no initial phase (stateful recovery).
	// Generating token k+1 attends over 512+k tokens.
	est := f.eng.Est
	want := est.DecodeIter(1, 4, 1, 512+30) + est.DecodeIter(1, 4, 1, 512+31)
	if math.Abs(end-want) > 1e-6 {
		t.Fatalf("resume took %v, want %v (no recompute)", end, want)
	}
}

func TestAbortLosesOnlyUncommittedWork(t *testing.T) {
	f := newFixture(t, model.OPT6B7, 1)
	cfg := config.Config{D: 1, P: 1, M: 4, B: 1}
	p, _ := f.eng.NewPipeline(0, cfg, f.bind(0, cfg))
	b := mkBatch(1, 512, 128)
	f.sim.At(0, func() { p.Start(b) })
	var aborted *Batch
	f.sim.At(2.0, func() { aborted = p.Abort() })
	f.sim.Run(10)
	if aborted == nil {
		t.Fatal("no batch returned from Abort")
	}
	prog := aborted.Progress()
	if prog == 0 {
		t.Fatal("no committed progress survived abort")
	}
	// Nothing further executes.
	before := prog
	f.sim.RunAll()
	if aborted.Progress() != before {
		t.Fatal("progress advanced after abort")
	}
	if p.Busy() {
		t.Fatal("pipeline busy after abort")
	}
}

func TestStageGatingDelaysExecution(t *testing.T) {
	f := newFixture(t, model.GPT20B, 3)
	cfg := config.Config{D: 1, P: 3, M: 4, B: 1}
	run := func(readyAt float64) float64 {
		s := sim.New()
		h := &testHooks{}
		e := New(s, f.eng.Est, h)
		p, err := e.NewPipeline(0, cfg, f.bind(0, cfg))
		if err != nil {
			t.Fatal(err)
		}
		p.SetStageReady(2, readyAt) // last stage still migrating
		b := mkBatch(1, 512, 4)
		s.At(0, func() { p.Start(b) })
		return s.RunAll()
	}
	base := run(0)
	delayed := run(5)
	if delayed <= base {
		t.Fatalf("gated run (%v) not slower than base (%v)", delayed, base)
	}
	// The gate only delays the wavefront reaching stage 2, not 5 s per
	// iteration: total slowdown must be below 5 s.
	if delayed-base >= 5 {
		t.Fatalf("gating cost %v, want < 5 (progressive overlap)", delayed-base)
	}
}

func TestCacheDaemonsTrackProgress(t *testing.T) {
	f := newFixture(t, model.OPT6B7, 1)
	cfg := config.Config{D: 1, P: 1, M: 4, B: 2}
	p, _ := f.eng.NewPipeline(0, cfg, f.bind(0, cfg))
	b := mkBatch(2, 512, 64)
	f.sim.At(0, func() { p.Start(b) })
	f.sim.At(3, func() { p.RequestStop() })
	f.sim.RunAll()
	prog := b.Progress()
	if prog == 0 {
		t.Fatal("no progress before checking daemons")
	}
	for pos, gpu := range p.GPUs {
		d := f.eng.Daemon(gpu)
		if d.CachePipeline != 0 {
			t.Fatalf("daemon cache pipeline = %d", d.CachePipeline)
		}
		if d.CacheTokens != b.TotalTokens() {
			t.Fatalf("daemon tokens = %d, want %d", d.CacheTokens, b.TotalTokens())
		}
		want := model.PositionRect(f.eng.Est.Spec, cfg.P, cfg.M, pos.P, pos.M)
		if d.CacheRect != want {
			t.Fatalf("daemon rect = %+v, want %+v", d.CacheRect, want)
		}
		if d.CacheBytes(f.eng.Est.Spec) <= 0 {
			t.Fatal("zero cache bytes")
		}
	}
}

func TestCacheDroppedOnBatchDone(t *testing.T) {
	f := newFixture(t, model.OPT6B7, 1)
	cfg := config.Config{D: 1, P: 1, M: 4, B: 1}
	p, _ := f.eng.NewPipeline(0, cfg, f.bind(0, cfg))
	b := mkBatch(1, 512, 4)
	f.sim.At(0, func() { p.Start(b) })
	f.sim.RunAll()
	for _, gpu := range p.GPUs {
		if f.eng.Daemon(gpu).CachePipeline != -1 {
			t.Fatal("cache not dropped after completion")
		}
	}
}

func TestMixedFreshAndRecoveredBatch(t *testing.T) {
	f := newFixture(t, model.OPT6B7, 1)
	cfg := config.Config{D: 1, P: 1, M: 4, B: 2}
	p, _ := f.eng.NewPipeline(0, cfg, f.bind(0, cfg))
	b := mkBatch(2, 512, 32)
	b.Requests[0].Committed = 20
	f.sim.At(0, func() { p.Start(b) })
	f.sim.RunAll()
	for i, r := range b.Requests {
		if !r.Done() {
			t.Fatalf("request %d not done: %+v", i, r)
		}
	}
	// Recovered request finishes before the fresh one.
	if !(b.Requests[0].DoneAt < b.Requests[1].DoneAt) {
		t.Fatalf("recovered DoneAt %v should precede fresh %v",
			b.Requests[0].DoneAt, b.Requests[1].DoneAt)
	}
}

func TestStartEmptyBatchIsNoop(t *testing.T) {
	f := newFixture(t, model.OPT6B7, 1)
	cfg := config.Config{D: 1, P: 1, M: 4, B: 1}
	p, _ := f.eng.NewPipeline(0, cfg, f.bind(0, cfg))
	p.Start(&Batch{})
	p.Start(nil)
	if p.Busy() {
		t.Fatal("pipeline busy after empty start")
	}
}

func TestStartWhileBusyPanics(t *testing.T) {
	f := newFixture(t, model.OPT6B7, 1)
	cfg := config.Config{D: 1, P: 1, M: 4, B: 1}
	p, _ := f.eng.NewPipeline(0, cfg, f.bind(0, cfg))
	f.sim.At(0, func() { p.Start(mkBatch(1, 512, 8)) })
	f.sim.At(0.1, func() {
		defer func() {
			if recover() == nil {
				t.Error("double start did not panic")
			}
		}()
		p.Start(mkBatch(1, 512, 8))
	})
	f.sim.RunAll()
}

func TestNewPipelineRejectsIncompleteBinding(t *testing.T) {
	f := newFixture(t, model.OPT6B7, 1)
	cfg := config.Config{D: 1, P: 1, M: 4, B: 1}
	binding := f.bind(0, cfg)
	delete(binding, config.Position{D: 0, P: 0, M: 3})
	if _, err := f.eng.NewPipeline(0, cfg, binding); err == nil {
		t.Fatal("incomplete binding accepted")
	}
	if _, err := f.eng.NewPipeline(0, config.Config{}, nil); err == nil {
		t.Fatal("zero config accepted")
	}
}

func TestBatchAccounting(t *testing.T) {
	b := mkBatch(3, 512, 128)
	b.Requests[0].Committed = 10
	b.Requests[1].Committed = 128
	if b.Size() != 2 {
		t.Fatalf("Size = %d, want 2 active", b.Size())
	}
	if b.MaxSeqLen() != 512+128 {
		t.Fatalf("MaxSeqLen = %d", b.MaxSeqLen())
	}
	if b.MinCommitted() != 0 {
		t.Fatalf("MinCommitted = %d", b.MinCommitted())
	}
	if b.TotalTokens() != 3*512+10+128 {
		t.Fatalf("TotalTokens = %d", b.TotalTokens())
	}
	if b.Progress() != 138 {
		t.Fatalf("Progress = %d", b.Progress())
	}
	if b.Requests[0].Remaining() != 118 || b.Requests[1].Remaining() != 0 {
		t.Fatal("Remaining wrong")
	}
}

func TestDaemonLifecycle(t *testing.T) {
	f := newFixture(t, model.OPT6B7, 1)
	d := f.eng.Daemon(f.gpus[0])
	if d != f.eng.Daemon(f.gpus[0]) {
		t.Fatal("Daemon not memoized")
	}
	if len(f.eng.Daemons()) != 1 {
		t.Fatalf("Daemons = %d", len(f.eng.Daemons()))
	}
	f.eng.DropDaemon(f.gpus[0].ID)
	if len(f.eng.Daemons()) != 0 {
		t.Fatal("daemon not dropped")
	}
	// CacheBytes on empty daemon.
	d2 := f.eng.Daemon(f.gpus[1])
	if d2.CacheBytes(f.eng.Est.Spec) != 0 {
		t.Fatal("empty daemon has cache bytes")
	}
}
