package engine

import (
	"fmt"
	"testing"

	"spotserve/internal/config"
	"spotserve/internal/model"
)

// ffHooks wraps testHooks with the FastForwarder opt-in and an event trace
// so fast-forward and per-iteration runs can be compared step for step.
type ffHooks struct {
	testHooks
	allow func(*Pipeline) bool
	trace []string
	sim   interface{ Now() float64 }
}

func (h *ffHooks) AllowFastForward(p *Pipeline) bool {
	if h.allow != nil {
		return h.allow(p)
	}
	return true
}

func (h *ffHooks) log(format string, args ...any) {
	h.trace = append(h.trace, fmt.Sprintf("%.17g ", h.sim.Now())+fmt.Sprintf(format, args...))
}

func (h *ffHooks) RequestDone(p *Pipeline, r *RequestState) {
	h.log("reqDone id=%d doneAt=%.17g restarts=%d", r.Req.ID, r.DoneAt, r.Restarts)
	h.testHooks.RequestDone(p, r)
}

func (h *ffHooks) BatchDone(p *Pipeline) {
	h.log("batchDone pipe=%d iters=%d", p.ID, p.Iterations())
	h.testHooks.BatchDone(p)
}

func (h *ffHooks) BatchPaused(p *Pipeline, b *Batch) {
	h.log("batchPaused pipe=%d prog=%d", p.ID, b.Progress())
	h.testHooks.BatchPaused(p, b)
}

// ffFixture builds an engine whose hooks opt into fast-forward; noFF forces
// the reference per-iteration mode.
func ffFixture(t *testing.T, spec model.Spec, nInst int, noFF bool) (*fixture, *ffHooks) {
	t.Helper()
	f := newFixture(t, spec, nInst)
	h := &ffHooks{sim: f.sim}
	f.eng.Hooks = h
	f.eng.NoFastForward = noFF
	return f, h
}

// runBoth executes the same driver against a fast-forward and a
// per-iteration engine and returns both hook traces plus the two fixtures.
func runBoth(t *testing.T, drive func(f *fixture, h *ffHooks)) (fast, slow *ffHooks) {
	t.Helper()
	ff, fh := ffFixture(t, model.OPT6B7, 1, false)
	drive(ff, fh)
	pi, ph := ffFixture(t, model.OPT6B7, 1, true)
	drive(pi, ph)
	if len(fh.trace) != len(ph.trace) {
		t.Fatalf("trace lengths differ: fast %d vs per-iteration %d\nfast: %v\nslow: %v",
			len(fh.trace), len(ph.trace), fh.trace, ph.trace)
	}
	for i := range fh.trace {
		if fh.trace[i] != ph.trace[i] {
			t.Fatalf("trace[%d] differs:\nfast: %s\nslow: %s", i, fh.trace[i], ph.trace[i])
		}
	}
	return fh, ph
}

// TestFastForwardBatchTraceIdentical proves a plain batch run emits the
// same hook trace — request completion times to the last bit — in one event
// per run as in one event per iteration.
func TestFastForwardBatchTraceIdentical(t *testing.T) {
	fast, _ := runBoth(t, func(f *fixture, h *ffHooks) {
		cfg := config.Config{D: 1, P: 1, M: 4, B: 4}
		p, err := f.eng.NewPipeline(0, cfg, f.bind(0, cfg))
		if err != nil {
			t.Fatal(err)
		}
		b := mkBatch(3, 512, 40)
		b.Requests[1].Committed = 25 // staggered completions inside the run
		b.Requests[2].Committed = 10
		f.sim.At(0, func() { p.Start(b) })
		f.sim.RunAll()
	})
	if len(fast.reqDone) != 3 || fast.batchDone != 1 {
		t.Fatalf("reqDone=%d batchDone=%d", len(fast.reqDone), fast.batchDone)
	}
}

// TestFastForwardUsesFewerEvents pins the mechanism itself: the same batch
// must execute in far fewer simulator events when fast-forwarding.
func TestFastForwardUsesFewerEvents(t *testing.T) {
	run := func(noFF bool) uint64 {
		f, _ := ffFixture(t, model.OPT6B7, 1, noFF)
		cfg := config.Config{D: 1, P: 1, M: 4, B: 1}
		p, _ := f.eng.NewPipeline(0, cfg, f.bind(0, cfg))
		f.sim.At(0, func() { p.Start(mkBatch(1, 512, 128)) })
		f.sim.RunAll()
		return f.sim.Steps()
	}
	fast, slow := run(false), run(true)
	if slow < 128 {
		t.Fatalf("per-iteration steps = %d, want ≥ 128", slow)
	}
	if fast > 8 {
		t.Fatalf("fast-forward steps = %d, want single-digit (one event per run)", fast)
	}
}

// TestFastForwardMidRunStop interrupts a fast-forward run with RequestStop
// partway through: the pause must land on the next iteration boundary with
// exactly the progress per-iteration stepping would have committed.
func TestFastForwardMidRunStop(t *testing.T) {
	runBoth(t, func(f *fixture, h *ffHooks) {
		cfg := config.Config{D: 1, P: 1, M: 4, B: 1}
		p, _ := f.eng.NewPipeline(0, cfg, f.bind(0, cfg))
		b := mkBatch(1, 512, 128)
		f.sim.At(0, func() { p.Start(b) })
		f.sim.At(1.0, func() { p.RequestStop() })
		f.sim.RunAll()
		h.log("final prog=%d busy=%v", b.Progress(), p.Busy())
	})
}

// TestFastForwardMidRunAbort aborts mid-run: boundaries already passed on
// the virtual clock must be committed (at most one iteration of work lost),
// exactly as when stepping.
func TestFastForwardMidRunAbort(t *testing.T) {
	runBoth(t, func(f *fixture, h *ffHooks) {
		cfg := config.Config{D: 1, P: 1, M: 4, B: 1}
		p, _ := f.eng.NewPipeline(0, cfg, f.bind(0, cfg))
		b := mkBatch(1, 512, 128)
		f.sim.At(0, func() { p.Start(b) })
		f.sim.At(2.0, func() {
			ab := p.Abort()
			h.log("aborted prog=%d iters=%d", ab.Progress(), p.Iterations())
		})
		f.sim.RunAll()
	})
}

// TestFastForwardDaemonReadsSync reads daemon cache state in the middle of
// a fast-forward run: Engine.Daemon must first commit the boundaries the
// clock has passed, so external observers see per-iteration state.
func TestFastForwardDaemonReadsSync(t *testing.T) {
	runBoth(t, func(f *fixture, h *ffHooks) {
		cfg := config.Config{D: 1, P: 1, M: 4, B: 2}
		p, _ := f.eng.NewPipeline(0, cfg, f.bind(0, cfg))
		b := mkBatch(2, 512, 128)
		f.sim.At(0, func() { p.Start(b) })
		for _, at := range []float64{0.7, 1.9, 3.3} {
			at := at
			f.sim.At(at, func() {
				d := f.eng.Daemon(f.gpus[0])
				h.log("daemon tokens=%d prog=%d iters=%d",
					d.CacheTokens, p.Batch().Progress(), p.Iterations())
			})
		}
		f.sim.RunAll()
	})
}

// TestFastForwardInterruptDemotesToStepping flips the AllowFastForward
// promise mid-run (as a reconfiguration does), interrupts, and verifies the
// hook-driven pause lands on the same boundary as per-iteration stepping.
func TestFastForwardInterruptDemotesToStepping(t *testing.T) {
	runBoth(t, func(f *fixture, h *ffHooks) {
		cfg := config.Config{D: 1, P: 1, M: 4, B: 1}
		p, _ := f.eng.NewPipeline(0, cfg, f.bind(0, cfg))
		stopping := false
		h.allow = func(*Pipeline) bool { return !stopping }
		remaining := 3
		h.iterDone = func(*Pipeline) bool {
			if !stopping {
				return true
			}
			remaining--
			return remaining > 0
		}
		b := mkBatch(1, 512, 128)
		f.sim.At(0, func() { p.Start(b) })
		f.sim.At(1.5, func() {
			// The promise expires: per-iteration decisions from here on,
			// allowing exactly 3 more iterations.
			stopping = true
			p.Interrupt()
		})
		f.sim.RunAll()
		h.log("final prog=%d", b.Progress())
	})
}

// TestFastForwardRespectsStageGates keeps fast-forward off while stage
// gates lie in the future and verifies the gated timeline is unchanged.
func TestFastForwardRespectsStageGates(t *testing.T) {
	run := func(noFF bool) float64 {
		f, _ := ffFixture(t, model.GPT20B, 3, noFF)
		cfg := config.Config{D: 1, P: 3, M: 4, B: 1}
		p, err := f.eng.NewPipeline(0, cfg, f.bind(0, cfg))
		if err != nil {
			t.Fatal(err)
		}
		p.SetStageReady(2, 5)
		f.sim.At(0, func() { p.Start(mkBatch(1, 512, 16)) })
		return f.sim.RunAll()
	}
	fast, slow := run(false), run(true)
	if fast != slow {
		t.Fatalf("gated completion differs: fast %v vs per-iteration %v", fast, slow)
	}
}

// TestFastForwardRestartAfterPause pauses a fast-forward run, restarts the
// batch, and checks the resumed run (no initial phase) still matches.
func TestFastForwardRestartAfterPause(t *testing.T) {
	runBoth(t, func(f *fixture, h *ffHooks) {
		cfg := config.Config{D: 1, P: 1, M: 4, B: 1}
		p, _ := f.eng.NewPipeline(0, cfg, f.bind(0, cfg))
		b := mkBatch(1, 512, 64)
		f.sim.At(0, func() { p.Start(b) })
		f.sim.At(1.0, func() { p.RequestStop() })
		f.sim.At(4.0, func() {
			if !p.Busy() && !b.Requests[0].Done() {
				p.Start(b)
			}
		})
		f.sim.RunAll()
		h.log("final committed=%d", b.Requests[0].Committed)
	})
}
