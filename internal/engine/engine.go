// Package engine simulates SpotServe's distributed inference engine (§5):
// pipelines of GPUs bound to pipeline-stage-shard positions execute
// incremental decoding iteration by iteration on the virtual clock, and a
// context daemon per GPU tracks the model context (parameter shard) and
// cache context (KV cache) resident on the device.
//
// The engine is deliberately policy-free: it executes batches and commits
// progress at token granularity; all decisions — when to stop decoding,
// what to migrate, where requests resume — are made by the control plane in
// internal/core through the Hooks interface and the pipeline control
// methods, mirroring the paper's engine/server split.
package engine

import (
	"fmt"
	"sort"

	"spotserve/internal/cloud"
	"spotserve/internal/config"
	"spotserve/internal/cost"
	"spotserve/internal/model"
	"spotserve/internal/sim"
	"spotserve/internal/workload"
)

// RequestState tracks one request's inference progress. Progress is only
// ever advanced at iteration boundaries — the token-level commit that makes
// stateful recovery possible (§4).
type RequestState struct {
	Req workload.Request
	// Committed is the number of output tokens decoded and committed.
	// The initial phase commits the first token (eq. 1).
	Committed int
	// Restarts counts how many times decoding was restarted from scratch
	// (cache lost); for reporting.
	Restarts int
	// DoneAt is the completion time (valid once Done).
	DoneAt float64
}

// Done reports whether all output tokens are committed.
func (r *RequestState) Done() bool { return r.Committed >= r.Req.SeqOut }

// Remaining returns output tokens still to decode.
func (r *RequestState) Remaining() int {
	n := r.Req.SeqOut - r.Committed
	if n < 0 {
		return 0
	}
	return n
}

// Batch is a set of requests decoded together by one pipeline. A batch may
// mix fresh requests with recovered ones that already hold progress.
type Batch struct {
	Requests []*RequestState
}

// Size returns the number of not-yet-done requests.
func (b *Batch) Size() int {
	n := 0
	for _, r := range b.Requests {
		if !r.Done() {
			n++
		}
	}
	return n
}

// MaxSeqLen returns the largest current sequence length in the batch, which
// bounds the KV read cost of the next iteration.
func (b *Batch) MaxSeqLen() int {
	m := 0
	for _, r := range b.Requests {
		if l := r.Req.SeqIn + r.Committed; l > m {
			m = l
		}
	}
	return m
}

// MinCommitted returns the smallest committed count among active requests.
func (b *Batch) MinCommitted() int {
	first := true
	m := 0
	for _, r := range b.Requests {
		if r.Done() {
			continue
		}
		if first || r.Committed < m {
			m = r.Committed
			first = false
		}
	}
	return m
}

// TotalTokens returns Σ (SeqIn + Committed) over all requests: the token
// count whose KV cache is resident for this batch.
func (b *Batch) TotalTokens() int {
	t := 0
	for _, r := range b.Requests {
		t += r.Req.SeqIn + r.Committed
	}
	return t
}

// Progress returns Σ Committed — the decoding progress that would be lost
// without stateful recovery.
func (b *Batch) Progress() int {
	t := 0
	for _, r := range b.Requests {
		t += r.Committed
	}
	return t
}

// Daemon is the context daemon of one GPU (§3.1): it outlives engine
// restarts and tracks what context is resident on the device.
type Daemon struct {
	GPU *cloud.GPU
	// ModelCtx is the resident parameter shard (empty when none).
	ModelCtx model.Rect
	// CachePipeline identifies whose KV cache is resident (-1 when none):
	// the pipeline index d of the batch the cache belongs to.
	CachePipeline int
	// CacheRect is the (layers × shard fraction) rectangle of the
	// resident cache.
	CacheRect model.Rect
	// CacheTokens is Σ tokens of the cached batch.
	CacheTokens int
}

// CacheBytes returns the resident KV-cache bytes.
func (d *Daemon) CacheBytes(spec model.Spec) float64 {
	if d.CachePipeline < 0 || d.CacheRect.Empty() {
		return 0
	}
	return float64(d.CacheTokens) * spec.KVBytesPerTokenLayer() *
		float64(d.CacheRect.Layers()) * d.CacheRect.FracWidth()
}

// DropCache clears the cache context.
func (d *Daemon) DropCache() {
	d.CachePipeline = -1
	d.CacheRect = model.Rect{}
	d.CacheTokens = 0
}

// Hooks lets the control plane observe execution. All callbacks run inside
// simulator events.
type Hooks interface {
	// IterationDone fires after each committed iteration, before the next
	// iteration is scheduled. Returning false pauses the pipeline with
	// its batch intact (JIT interruption arrangement).
	IterationDone(p *Pipeline) bool
	// RequestDone fires when a request commits its last token.
	RequestDone(p *Pipeline, r *RequestState)
	// BatchDone fires when every request of the running batch completed.
	BatchDone(p *Pipeline)
	// BatchPaused fires when IterationDone returned false and the batch
	// was handed back with committed progress.
	BatchPaused(p *Pipeline, b *Batch)
}

// FastForwarder optionally extends Hooks with the fast-forward opt-in.
//
// When AllowFastForward(p) returns true at an iteration boundary, the
// engine may commit the run of iterations up to the next semantic boundary
// (the earliest request completion) as ONE simulator event instead of one
// event per iteration; IterationDone is not called at the elided interior
// boundaries. Returning true is therefore a promise that, until the run's
// final boundary, IterationDone would have returned true with no observable
// side effects. A control plane whose promise expires mid-run (e.g. a
// reconfiguration starts and the JIT arranger now needs per-iteration
// decisions) must call Pipeline.Interrupt — or RequestStop / Abort, which
// imply it — to demote the run back to per-iteration stepping from the next
// boundary on.
//
// Fast-forward is an execution-strategy change only: boundary times are
// accumulated with exactly the per-iteration floating-point operations, and
// every externally observable read (RequestStop, Abort, Batch, Iterations,
// Engine.Daemon/Daemons) first commits the boundaries that have already
// passed on the virtual clock, so traces are byte-identical with and
// without it.
type FastForwarder interface {
	AllowFastForward(p *Pipeline) bool
}

// Engine owns daemons and pipelines for one serving deployment.
type Engine struct {
	Sim   *sim.Simulator
	Est   *cost.Estimator
	Hooks Hooks

	// NoFastForward forces one-event-per-iteration execution even when
	// Hooks implements FastForwarder (the reference mode equivalence tests
	// compare against).
	NoFastForward bool

	daemons map[int64]*Daemon
	// ffPipes are the pipelines currently executing a fast-forward run, in
	// deterministic (run-start) order; daemon reads sync them first.
	ffPipes []*Pipeline
	// spanScratch holds per-pipeline-ID span workspaces so the buffers a
	// pipeline plans its fast-forward spans in survive reconfigurations
	// (every reconfiguration rebuilds the pipeline set with the same small
	// ID range). Ownership is handed over in scratchFor.
	spanScratch []*spanScratch
}

// spanScratch is the reusable workspace a pipeline plans fast-forward spans
// in: the boundary-time table and segment index of the current plan, plus
// the per-request remaining/length vectors used during planning.
type spanScratch struct {
	times  []float64
	segs   []ffSeg
	rem    []int
	lens   []int
	holder *Pipeline
}

// scratchFor returns the span workspace for pipeline id, transferring
// ownership to p. A still-running predecessor keeps its buffers (p gets
// private ones); an idle predecessor is detached onto private buffers and
// its plan invalidated, so even an out-of-contract restart stays correct.
func (e *Engine) scratchFor(id int, p *Pipeline) *spanScratch {
	for id >= len(e.spanScratch) {
		e.spanScratch = append(e.spanScratch, &spanScratch{})
	}
	sc := e.spanScratch[id]
	if old := sc.holder; old != nil && old != p {
		if old.busy {
			sc = &spanScratch{}
			e.spanScratch[id] = sc
		} else {
			old.sc = &spanScratch{holder: old}
			old.invalidateSpan()
		}
	}
	sc.holder = p
	return sc
}

// New builds an engine. Hooks must be installed before any pipeline runs.
func New(s *sim.Simulator, est *cost.Estimator, hooks Hooks) *Engine {
	return &Engine{Sim: s, Est: est, Hooks: hooks, daemons: make(map[int64]*Daemon)}
}

// syncAll commits the already-passed boundaries of every in-flight
// fast-forward run, bringing request progress and daemon contexts up to the
// current virtual time before an external read.
func (e *Engine) syncAll() {
	for _, p := range e.ffPipes {
		p.sync()
	}
}

// Daemon returns (creating on first use) the context daemon of gpu.
func (e *Engine) Daemon(gpu *cloud.GPU) *Daemon {
	e.syncAll()
	return e.daemon(gpu)
}

// daemon is Daemon without the fast-forward sync — the engine's own commit
// path uses it to avoid re-entering sync.
func (e *Engine) daemon(gpu *cloud.GPU) *Daemon {
	d, ok := e.daemons[gpu.ID]
	if !ok {
		d = &Daemon{GPU: gpu, CachePipeline: -1}
		e.daemons[gpu.ID] = d
	}
	return d
}

// Daemons returns all daemons in GPU-ID order.
func (e *Engine) Daemons() []*Daemon {
	e.syncAll()
	out := make([]*Daemon, 0, len(e.daemons))
	for _, d := range e.daemons {
		out = append(out, d)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].GPU.ID < out[j].GPU.ID })
	return out
}

// DropDaemon forgets the daemon of a terminated GPU.
func (e *Engine) DropDaemon(gpuID int64) { delete(e.daemons, gpuID) }

// Pipeline is one inference pipeline: P×M GPUs serving batches under a
// parallel configuration.
type Pipeline struct {
	eng *Engine
	// ID is the pipeline index d within the current configuration.
	ID int
	// Cfg is the configuration the pipeline serves under.
	Cfg config.Config
	// GPUs maps each (p, m) position (with D=ID) to its device.
	GPUs map[config.Position]*cloud.GPU

	// StageReadyAt gates execution per stage: stage p may not compute
	// before StageReadyAt[p] (progressive migration overlap, §3.4).
	StageReadyAt []float64

	batch     *Batch
	busy      bool
	iterEv    sim.Handle
	iterEnd   float64
	stopASAP  bool
	iterCount int64

	// slowdown scales iteration durations for heterogeneous fleets: a
	// pipeline runs at the speed of its slowest member GPU, so the control
	// plane sets slowdown = 1/minSpeed. Zero or one leaves homogeneous
	// timings bit-identical to the untyped baseline.
	slowdown float64

	// Fast-forward span state. A span is the whole remaining life of the
	// batch, planned once: sc.times holds every future iteration-boundary
	// time, sc.segs partitions them into segments (the runs between
	// consecutive request completions). ffCur is the current segment,
	// ffDone the global index of the first uncommitted boundary, ffActive
	// marks a segment event in flight, and ffPlanned/ffBatch guard reuse:
	// a plan is only trusted after its current segment's live signature and
	// start time validate exactly (beginFastForward), so any unplanned
	// state change simply forces a cheap replan, never a wrong commit.
	sc        *spanScratch
	ffCur     int
	ffDone    int
	ffActive  bool
	ffPlanned bool
	ffBatch   *Batch

	// completeFn / ffCompleteFn are the pipeline's event callbacks, bound
	// once at construction so scheduling an iteration allocates nothing.
	completeFn   func()
	ffCompleteFn func()

	// cacheRefs precomputes, per position, the device and cache rectangle a
	// commit refreshes — the per-iteration daemon refresh then walks a
	// slice instead of iterating the position map and recomputing rects.
	cacheRefs []cacheRef
}

// ffSeg is one segment of a planned fast-forward span: the run of
// iterations ending at the next request completion. end is one past the
// segment's last boundary index in sc.times; bsz/n/la/ld are the live-batch
// signature the segment was planned from (batch size, iterations, max
// active length, max done length) and start its planned start time —
// re-validated against the live batch before the segment is armed.
type ffSeg struct {
	end   int
	bsz   int
	n     int
	la    int
	ld    int
	start float64
}

// cacheRef pairs a pipeline GPU with its precomputed cache rectangle.
type cacheRef struct {
	gpu  *cloud.GPU
	rect model.Rect
}

// NewPipeline constructs a pipeline over the given position→GPU binding.
// The binding must cover every (p, m) position of the configuration.
func (e *Engine) NewPipeline(id int, cfg config.Config, gpus map[config.Position]*cloud.GPU) (*Pipeline, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	for p := 0; p < cfg.P; p++ {
		for m := 0; m < cfg.M; m++ {
			pos := config.Position{D: id, P: p, M: m}
			if gpus[pos] == nil {
				return nil, fmt.Errorf("engine: pipeline %d missing GPU for %v", id, pos)
			}
		}
	}
	p := &Pipeline{
		eng:          e,
		ID:           id,
		Cfg:          cfg,
		GPUs:         gpus,
		StageReadyAt: make([]float64, cfg.P),
		cacheRefs:    make([]cacheRef, 0, cfg.P*cfg.M),
	}
	for sp := 0; sp < cfg.P; sp++ {
		for m := 0; m < cfg.M; m++ {
			pos := config.Position{D: id, P: sp, M: m}
			p.cacheRefs = append(p.cacheRefs, cacheRef{
				gpu:  gpus[pos],
				rect: model.PositionRect(e.Est.Spec, cfg.P, cfg.M, sp, m),
			})
		}
	}
	p.completeFn = p.completeIteration
	p.ffCompleteFn = p.ffComplete
	p.sc = e.scratchFor(id, p)
	return p, nil
}

// Busy reports whether a batch is executing.
func (p *Pipeline) Busy() bool { return p.busy }

// Batch returns the running (or last paused) batch, with any already-passed
// fast-forward boundaries committed so its progress is current.
func (p *Pipeline) Batch() *Batch {
	p.sync()
	return p.batch
}

// Iterations returns the number of committed iterations this pipeline ran.
func (p *Pipeline) Iterations() int64 {
	p.sync()
	return p.iterCount
}

// SetStageReady marks stage p usable from time t.
func (p *Pipeline) SetStageReady(stage int, t float64) {
	p.StageReadyAt[stage] = t
}

// SetSlowdown scales this pipeline's iteration durations by f — the
// heterogeneous-fleet hook: the control plane passes 1/minSpeed over the
// pipeline's GPUs so a mixed mesh decodes at its slowest device's pace.
// f ≤ 0 or f == 1 keeps the baseline timings untouched. Must be set before
// the pipeline starts a batch.
func (p *Pipeline) SetSlowdown(f float64) { p.slowdown = f }

// scaled applies the pipeline's slowdown to one iteration duration.
func (p *Pipeline) scaled(d float64) float64 {
	if p.slowdown > 0 && p.slowdown != 1 {
		return d * p.slowdown
	}
	return d
}

// gateDelay returns how long the next iteration must additionally wait for
// trailing stages still migrating: stage s contributes its readiness minus
// the pipeline time already spent reaching it.
func (p *Pipeline) gateDelay(iterTime float64) float64 {
	now := p.eng.Sim.Now()
	delay := 0.0
	perStage := iterTime / float64(p.Cfg.P)
	for s, ready := range p.StageReadyAt {
		// The wavefront reaches stage s after s×perStage.
		d := ready - now - float64(s)*perStage
		if d > delay {
			delay = d
		}
	}
	return delay
}

// Start begins (or resumes) executing a batch. Requests that already hold
// committed progress continue from their committed token — stateful
// inference recovery. Starting a busy pipeline panics: the control plane
// must pause or abort first.
func (p *Pipeline) Start(b *Batch) {
	if p.busy {
		panic(fmt.Sprintf("engine: pipeline %d started while busy", p.ID))
	}
	if b == nil || b.Size() == 0 {
		return
	}
	p.batch = b
	p.busy = true
	p.stopASAP = false
	p.scheduleNext(true)
}

// scheduleNext schedules the completion of the next iteration. The first
// iteration after Start may include the initial phase for fresh requests.
// Steady-state iterations fast-forward when the control plane allows it:
// all iterations up to the next semantic boundary (the earliest request
// completion) are precomputed and committed by a single simulator event.
func (p *Pipeline) scheduleNext(first bool) {
	b := p.batch
	bsz := b.Size()
	if bsz == 0 {
		p.finish()
		return
	}
	if !first && p.canFastForward() {
		p.beginFastForward()
		return
	}
	// An iteration outside the planned span desynchronizes its boundary
	// times; drop the plan rather than rely on validation alone.
	p.invalidateSpan()
	dur := 0.0
	if first {
		// Fresh requests (Committed == 0) pay the initial phase; the
		// phase also commits their first output token. Recovered
		// requests just re-enter decoding.
		fresh := 0
		for _, r := range b.Requests {
			if !r.Done() && r.Committed == 0 {
				fresh++
			}
		}
		if fresh > 0 {
			dur += p.eng.Est.InitPhase(p.Cfg.P, p.Cfg.M, fresh, maxSeqIn(b))
		} else {
			dur += p.eng.Est.DecodeIter(p.Cfg.P, p.Cfg.M, bsz, b.MaxSeqLen())
		}
	} else {
		dur += p.eng.Est.DecodeIter(p.Cfg.P, p.Cfg.M, bsz, b.MaxSeqLen())
	}
	dur = p.scaled(dur)
	dur += p.gateDelay(dur)
	p.iterEnd = p.eng.Sim.Now() + dur
	p.iterEv = p.eng.Sim.After(dur, p.completeFn)
}

// canFastForward reports whether the next run of iterations may be
// committed in one event: the engine allows it, the control plane opts in,
// the pipeline has not been asked to stop, and every stage gate lies in the
// past (so per-iteration gate delays would all be zero).
func (p *Pipeline) canFastForward() bool {
	if p.eng.NoFastForward || p.stopASAP {
		return false
	}
	ff, ok := p.eng.Hooks.(FastForwarder)
	if !ok || !ff.AllowFastForward(p) {
		return false
	}
	now := p.eng.Sim.Now()
	for _, ready := range p.StageReadyAt {
		if ready > now {
			return false
		}
	}
	return true
}

// beginFastForward arms the next fast-forward segment: the run of
// iterations up to the next request completion, executed as ONE simulator
// event at the segment's final boundary.
//
// Segments come from a span plan covering the batch's whole remaining life
// (buildSpan). The plan is reused across segments as long as it stays
// valid: the current segment's planned signature (batch size, iteration
// count, sequence-length extrema) and start time must match the live batch
// exactly, otherwise the span is replanned from the live state. Validation
// is float-exact — this event fires at the stored boundary time, so a
// matching start plus a matching signature implies the planned boundary
// times are bit-identical to what per-iteration stepping would produce.
func (p *Pipeline) beginFastForward() {
	b := p.batch
	// Live signature in one scan: active count, iterations to the next
	// completion, and the sequence-length extrema that drive iteration
	// durations (active requests grow one token per iteration; completed
	// ones stay fixed).
	bsz, n, la, ld := 0, 0, 0, 0
	firstN := true
	for _, r := range b.Requests {
		l := r.Req.SeqIn + r.Committed
		if r.Done() {
			if l > ld {
				ld = l
			}
			continue
		}
		bsz++
		if rem := r.Remaining(); firstN || rem < n {
			n = rem
			firstN = false
		}
		if l > la {
			la = l
		}
	}
	now := p.eng.Sim.Now()
	if !p.ffPlanned || p.ffBatch != b || p.ffCur >= len(p.sc.segs) {
		p.buildSpan()
	} else if s := &p.sc.segs[p.ffCur]; s.bsz != bsz || s.n != n || s.la != la || s.ld != ld || s.start != now {
		p.buildSpan()
	}
	seg := p.sc.segs[p.ffCur]
	p.ffActive = true
	p.eng.ffPipes = append(p.eng.ffPipes, p)
	p.iterEnd = p.sc.times[seg.end-1]
	p.iterEv = p.eng.Sim.At(p.iterEnd, p.ffCompleteFn)
}

// buildSpan plans the batch's entire remaining life from the live state:
// every future iteration-boundary time, partitioned into segments at
// request completions. Boundary times accumulate with exactly the
// floating-point operations of per-iteration scheduling (t_k = t_{k-1} +
// DecodeIter at the batch's length after k commits), and each segment's
// per-boundary durations are one bulk DecodeRange read — the identical
// memo entries DecodeIter would return one by one — so the planned
// timeline is bit-identical to stepping.
func (p *Pipeline) buildSpan() {
	b := p.batch
	rem := p.sc.rem[:0]
	lens := p.sc.lens[:0]
	ld := 0
	for _, r := range b.Requests {
		l := r.Req.SeqIn + r.Committed
		if r.Done() {
			if l > ld {
				ld = l
			}
			continue
		}
		rem = append(rem, r.Remaining())
		lens = append(lens, l)
	}
	times := p.sc.times[:0]
	segs := p.sc.segs[:0]
	cur := p.eng.Sim.Now()
	for {
		bsz, n, la := 0, 0, 0
		firstN := true
		for i, rm := range rem {
			if rm <= 0 {
				continue
			}
			bsz++
			if firstN || rm < n {
				n = rm
				firstN = false
			}
			if lens[i] > la {
				la = lens[i]
			}
		}
		if bsz == 0 {
			break
		}
		seg := ffSeg{bsz: bsz, n: n, la: la, ld: ld, start: cur}
		lo := la
		if ld > lo {
			lo = ld
		}
		hi := la + n - 1
		if ld > hi {
			hi = ld
		}
		iters := p.eng.Est.DecodeRange(p.Cfg.P, p.Cfg.M, bsz, lo, hi)
		for k := 0; k < n; k++ {
			curLen := la + k
			if ld > curLen {
				curLen = ld
			}
			cur += p.scaled(iters[curLen-lo])
			times = append(times, cur)
		}
		seg.end = len(times)
		segs = append(segs, seg)
		for i := range rem {
			if rem[i] <= 0 {
				continue
			}
			rem[i] -= n
			lens[i] += n
			if rem[i] <= 0 && lens[i] > ld {
				ld = lens[i]
			}
		}
	}
	p.sc.rem, p.sc.lens = rem, lens
	p.sc.times, p.sc.segs = times, segs
	p.ffCur = 0
	p.ffDone = 0
	p.ffBatch = b
	p.ffPlanned = true
}

// invalidateSpan drops the span plan (the buffers stay for reuse).
func (p *Pipeline) invalidateSpan() {
	p.ffPlanned = false
	p.ffBatch = nil
}

// sync commits the boundaries of the in-flight fast-forward segment that
// the virtual clock has already passed, so external readers observe exactly
// the state per-iteration stepping would have produced by now. The
// segment's final boundary is never committed here — its event owns the
// request completions and hook calls.
func (p *Pipeline) sync() {
	if !p.ffActive {
		return
	}
	now := p.eng.Sim.Now()
	k := p.ffDone
	last := p.sc.segs[p.ffCur].end - 1 // final boundary stays with its event
	for k < last && p.sc.times[k] <= now {
		k++
	}
	if k == p.ffDone {
		return
	}
	p.commitThrough(k)
}

// commitThrough applies boundaries ffDone..k-1: one committed token per
// active request each, then one daemon refresh (equal to the state after
// the last per-iteration refresh). Interior boundaries complete no request,
// so no hooks fire.
func (p *Pipeline) commitThrough(k int) {
	iters := k - p.ffDone
	if iters <= 0 {
		return
	}
	p.iterCount += int64(iters)
	for _, r := range p.batch.Requests {
		if !r.Done() {
			r.Committed += iters
		}
	}
	p.ffDone = k
	p.refreshCacheDaemons()
}

// endFastForward drops the run bookkeeping (the scheduled event is the
// caller's to cancel or consume).
func (p *Pipeline) endFastForward() {
	if !p.ffActive {
		return
	}
	p.ffActive = false
	pipes := p.eng.ffPipes
	for i, q := range pipes {
		if q == p {
			p.eng.ffPipes = append(pipes[:i], pipes[i+1:]...)
			break
		}
	}
}

// ffComplete fires at the segment's final boundary: interior boundaries
// commit silently, then the final boundary goes through the standard
// completion path (request completions, daemon refresh, hooks, next
// schedule). Advancing ffCur/ffDone first lets the re-schedule inside
// completeIteration validate and arm the span's next segment directly.
func (p *Pipeline) ffComplete() {
	end := p.sc.segs[p.ffCur].end
	p.commitThrough(end - 1)
	p.endFastForward()
	p.ffDone = end
	p.ffCur++
	p.completeIteration()
}

// Interrupt demotes an in-flight fast-forward run to per-iteration
// stepping: boundaries already passed are committed, and the next boundary
// is rescheduled as an ordinary iteration event so IterationDone fires
// there. Control planes call this when their AllowFastForward promise
// expires (a reconfiguration starts). No-op unless fast-forwarding.
func (p *Pipeline) Interrupt() {
	if !p.ffActive {
		return
	}
	p.sync()
	next := p.ffDone
	if next >= p.sc.segs[p.ffCur].end-1 {
		// Only the segment's final boundary remains and its event is
		// already scheduled at the correct time; completeIteration will
		// consult the hooks there.
		return
	}
	p.iterEv.Cancel()
	t := p.sc.times[next]
	p.endFastForward()
	p.invalidateSpan()
	p.iterEnd = t
	p.iterEv = p.eng.Sim.At(t, p.completeFn)
}

func maxSeqIn(b *Batch) int {
	m := 0
	for _, r := range b.Requests {
		if !r.Done() && r.Req.SeqIn > m {
			m = r.Req.SeqIn
		}
	}
	return m
}

// completeIteration commits one token per active request and consults the
// control plane about continuing.
func (p *Pipeline) completeIteration() {
	b := p.batch
	p.iterCount++
	for _, r := range b.Requests {
		if r.Done() {
			continue
		}
		r.Committed++
		if r.Done() {
			r.DoneAt = p.eng.Sim.Now()
			p.eng.Hooks.RequestDone(p, r)
		}
	}
	p.refreshCacheDaemons()
	if b.Size() == 0 {
		p.finish()
		return
	}
	cont := p.eng.Hooks.IterationDone(p)
	if !cont || p.stopASAP {
		p.pause()
		return
	}
	p.scheduleNext(false)
}

// refreshCacheDaemons records the batch's KV cache on this pipeline's
// context daemons after a commit, walking the precomputed position refs.
func (p *Pipeline) refreshCacheDaemons() {
	tokens := p.batch.TotalTokens()
	for _, ref := range p.cacheRefs {
		d := p.eng.daemon(ref.gpu)
		d.CachePipeline = p.ID
		d.CacheRect = ref.rect
		d.CacheTokens = tokens
	}
}

func (p *Pipeline) finish() {
	p.busy = false
	p.batch = nil
	p.invalidateSpan()
	// The completed batch's cache is dead weight; daemons drop it.
	//detlint:allow maprange — DropCache touches only the one daemon owned by each distinct GPU; the per-daemon effects are disjoint and commute
	for _, gpu := range p.GPUs {
		p.eng.daemon(gpu).DropCache()
	}
	p.eng.Hooks.BatchDone(p)
}

func (p *Pipeline) pause() {
	p.busy = false
	b := p.batch
	p.batch = nil
	p.invalidateSpan()
	p.eng.Hooks.BatchPaused(p, b)
}

// RequestStop asks the pipeline to pause at the next iteration boundary
// (token-level commit). An in-flight fast-forward run is demoted to
// per-iteration stepping so the stop lands on that very boundary. No-op
// when idle.
func (p *Pipeline) RequestStop() {
	p.stopASAP = true
	p.Interrupt()
}

// Abort cancels the in-flight iteration immediately. Progress since the
// last commit is lost (that is the point of committing at token level: at
// most one iteration of work can ever be lost); boundaries a fast-forward
// run has already passed count as committed first. The batch, with
// committed progress, is returned; the pipeline becomes idle.
func (p *Pipeline) Abort() *Batch {
	p.sync()
	p.endFastForward()
	p.invalidateSpan()
	p.iterEv.Cancel()
	p.busy = false
	b := p.batch
	p.batch = nil
	return b
}
