package engine

import (
	"math/rand"
	"testing"

	"spotserve/internal/config"
	"spotserve/internal/model"
	"spotserve/internal/sim"
)

// TestQuickInterruptionNeverLosesCommittedWork drives a pipeline with
// random interruptions (stop requests and aborts at random times) and
// checks the core stateful-recovery invariant: committed progress is
// monotone — no interruption pattern can ever reduce it — and resuming
// always completes the batch.
func TestQuickInterruptionNeverLosesCommittedWork(t *testing.T) {
	f := newFixture(t, model.OPT6B7, 1)
	cfg := config.Config{D: 1, P: 1, M: 4, B: 2}
	rng := rand.New(rand.NewSource(77))
	for iter := 0; iter < 40; iter++ {
		s := sim.New()
		h := &testHooks{}
		e := New(s, f.eng.Est, h)
		p, err := e.NewPipeline(0, cfg, f.bind(0, cfg))
		if err != nil {
			t.Fatal(err)
		}
		b := mkBatch(2, 512, 32)
		s.At(0, func() { p.Start(b) })

		lastProgress := 0
		check := func() {
			if got := b.Progress(); got < lastProgress {
				t.Fatalf("iter %d: progress regressed %d → %d", iter, lastProgress, got)
			} else {
				lastProgress = got
			}
		}
		// Random interruptions, each followed by a resume.
		at := 0.0
		for k := 0; k < 3; k++ {
			at += 0.2 + rng.Float64()*1.5
			abort := rng.Intn(2) == 0
			s.At(at, func() {
				if !p.Busy() {
					return
				}
				if abort {
					p.Abort()
				} else {
					p.RequestStop()
				}
			})
			// Resume shortly after (stateful recovery).
			resumeAt := at + 0.3
			s.At(resumeAt, func() {
				check()
				if !p.Busy() && b.Size() > 0 {
					p.Start(b)
				}
			})
		}
		s.RunAll()
		check()
		for _, r := range b.Requests {
			if !r.Done() {
				t.Fatalf("iter %d: request unfinished after resumes: %+v", iter, r)
			}
		}
	}
}

// TestQuickPipelineTimingDeterministic replays identical schedules and
// asserts bit-identical completion times.
func TestQuickPipelineTimingDeterministic(t *testing.T) {
	f := newFixture(t, model.GPT20B, 3)
	cfg := config.Config{D: 1, P: 3, M: 4, B: 4}
	run := func() float64 {
		s := sim.New()
		h := &testHooks{}
		e := New(s, f.eng.Est, h)
		p, err := e.NewPipeline(0, cfg, f.bind(0, cfg))
		if err != nil {
			t.Fatal(err)
		}
		s.At(0, func() { p.Start(mkBatch(4, 512, 32)) })
		return s.RunAll()
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("nondeterministic pipeline timing: %v vs %v", a, b)
	}
}

// TestLargerBatchHigherThroughputLowerPerRequest checks the engine agrees
// with the cost model's batching economics: a B=8 batch takes longer than
// a B=1 request, but less than 8× as long.
func TestLargerBatchHigherThroughputLowerPerRequest(t *testing.T) {
	f := newFixture(t, model.OPT6B7, 1)
	cfg1 := config.Config{D: 1, P: 1, M: 4, B: 1}
	cfg8 := config.Config{D: 1, P: 1, M: 4, B: 8}
	run := func(cfg config.Config, n int) float64 {
		s := sim.New()
		h := &testHooks{}
		e := New(s, f.eng.Est, h)
		p, err := e.NewPipeline(0, cfg, f.bind(0, cfg))
		if err != nil {
			t.Fatal(err)
		}
		s.At(0, func() { p.Start(mkBatch(n, 512, 64)) })
		return s.RunAll()
	}
	t1 := run(cfg1, 1)
	t8 := run(cfg8, 8)
	if t8 <= t1 {
		t.Fatalf("B=8 (%v) not slower than B=1 (%v)", t8, t1)
	}
	if t8 >= 8*t1 {
		t.Fatalf("B=8 (%v) shows no batching benefit over 8×B=1 (%v)", t8, 8*t1)
	}
}

// TestStageReadinessMonotoneCost checks that later stage-readiness times
// never make the pipeline finish earlier.
func TestStageReadinessMonotoneCost(t *testing.T) {
	f := newFixture(t, model.GPT20B, 3)
	cfg := config.Config{D: 1, P: 3, M: 4, B: 1}
	run := func(r0, r1, r2 float64) float64 {
		s := sim.New()
		h := &testHooks{}
		e := New(s, f.eng.Est, h)
		p, err := e.NewPipeline(0, cfg, f.bind(0, cfg))
		if err != nil {
			t.Fatal(err)
		}
		p.SetStageReady(0, r0)
		p.SetStageReady(1, r1)
		p.SetStageReady(2, r2)
		s.At(0, func() { p.Start(mkBatch(1, 512, 8)) })
		return s.RunAll()
	}
	base := run(0, 0, 0)
	prog := run(0, 1, 2)
	blk := run(2, 2, 2)
	if prog < base {
		t.Fatalf("gated run faster than ungated: %v < %v", prog, base)
	}
	if blk < prog {
		t.Fatalf("blocking readiness (%v) beat progressive (%v)", blk, prog)
	}
}
