package engine

import (
	"fmt"
	"testing"

	"spotserve/internal/config"
	"spotserve/internal/model"
)

// Span-level regression tests. A batch with staggered completions produces a
// multi-segment span plan (one segment per run up to the next request
// completion); these tests pin byte-identity to per-iteration stepping for
// control actions that land beyond the first segment — the cases the
// single-request fast-forward tests cannot reach.

// staggeredBatch returns a batch whose requests finish at three distinct
// times, so the span plan holds three segments.
func staggeredBatch() *Batch {
	b := mkBatch(3, 512, 40)
	b.Requests[1].Committed = 25
	b.Requests[2].Committed = 10
	return b
}

// TestSpanInterruptAcrossSegments interrupts the staggered batch at times
// landing in each of the span's segments (and exactly on boundaries): the
// demotion to stepping must land on the same boundary with the same
// committed progress as per-iteration stepping, wherever it hits.
func TestSpanInterruptAcrossSegments(t *testing.T) {
	for _, at := range []float64{0.3, 0.9, 1.5, 2.2, 3.0} {
		at := at
		t.Run(fmt.Sprintf("at=%v", at), func(t *testing.T) {
			runBoth(t, func(f *fixture, h *ffHooks) {
				cfg := config.Config{D: 1, P: 1, M: 4, B: 4}
				p, _ := f.eng.NewPipeline(0, cfg, f.bind(0, cfg))
				b := staggeredBatch()
				stopping := false
				h.allow = func(*Pipeline) bool { return !stopping }
				remaining := 2
				h.iterDone = func(*Pipeline) bool {
					if !stopping {
						return true
					}
					remaining--
					return remaining > 0
				}
				f.sim.At(0, func() { p.Start(b) })
				f.sim.At(at, func() {
					stopping = true
					p.Interrupt()
				})
				f.sim.RunAll()
				h.log("final prog=%d busy=%v", b.Progress(), p.Busy())
			})
		})
	}
}

// TestSpanAbortAfterCommittedSegments aborts the staggered batch at times in
// later segments: every boundary the clock has passed — including whole
// earlier segments and their request completions — must be committed exactly
// as stepping would have, with at most the in-flight iteration lost.
func TestSpanAbortAfterCommittedSegments(t *testing.T) {
	for _, at := range []float64{0.5, 1.2, 2.0, 2.8} {
		at := at
		t.Run(fmt.Sprintf("at=%v", at), func(t *testing.T) {
			runBoth(t, func(f *fixture, h *ffHooks) {
				cfg := config.Config{D: 1, P: 1, M: 4, B: 4}
				p, _ := f.eng.NewPipeline(0, cfg, f.bind(0, cfg))
				b := staggeredBatch()
				f.sim.At(0, func() { p.Start(b) })
				f.sim.At(at, func() {
					if ab := p.Abort(); ab != nil {
						h.log("aborted prog=%d iters=%d size=%d", ab.Progress(), p.Iterations(), ab.Size())
					} else {
						h.log("nothing to abort prog=%d iters=%d", b.Progress(), p.Iterations())
					}
				})
				f.sim.RunAll()
			})
		})
	}
}

// TestSpanSyncOnReadLaterSegments reads daemon cache state at instants
// spread across all three segments: sync-on-read must commit exactly the
// boundaries passed on the virtual clock no matter which segment is armed.
func TestSpanSyncOnReadLaterSegments(t *testing.T) {
	runBoth(t, func(f *fixture, h *ffHooks) {
		cfg := config.Config{D: 1, P: 1, M: 4, B: 4}
		p, _ := f.eng.NewPipeline(0, cfg, f.bind(0, cfg))
		b := staggeredBatch()
		f.sim.At(0, func() { p.Start(b) })
		for _, at := range []float64{0.2, 0.6, 1.1, 1.7, 2.4, 3.1} {
			at := at
			f.sim.At(at, func() {
				d := f.eng.Daemon(f.gpus[0])
				h.log("daemon tokens=%d prog=%d iters=%d",
					d.CacheTokens, b.Progress(), p.Iterations())
			})
		}
		f.sim.RunAll()
	})
}

// TestSpanStopRestartReplans pauses the staggered batch mid-span and
// restarts it: the restarted run must replan from the committed state (the
// finished-request length extremum and per-request progress differ from the
// original plan) and still match per-iteration stepping to the last bit.
func TestSpanStopRestartReplans(t *testing.T) {
	runBoth(t, func(f *fixture, h *ffHooks) {
		cfg := config.Config{D: 1, P: 1, M: 4, B: 4}
		p, _ := f.eng.NewPipeline(0, cfg, f.bind(0, cfg))
		b := staggeredBatch()
		f.sim.At(0, func() { p.Start(b) })
		f.sim.At(1.0, func() { p.RequestStop() })
		f.sim.At(4.0, func() {
			if !p.Busy() && b.Size() > 0 {
				p.Start(b)
			}
		})
		f.sim.RunAll()
		for i, r := range b.Requests {
			h.log("req %d committed=%d restarts=%d", i, r.Committed, r.Restarts)
		}
	})
}

// TestSpanScratchReusedAcrossPipelines retires a pipeline and creates a new
// one under the same ID: the engine hands the span scratch to the successor,
// and the successor's runs must still be byte-identical to stepping.
func TestSpanScratchReusedAcrossPipelines(t *testing.T) {
	runBoth(t, func(f *fixture, h *ffHooks) {
		cfg := config.Config{D: 1, P: 1, M: 4, B: 4}
		p, _ := f.eng.NewPipeline(0, cfg, f.bind(0, cfg))
		f.sim.At(0, func() { p.Start(staggeredBatch()) })
		f.sim.RunAll()

		p2, _ := f.eng.NewPipeline(0, cfg, f.bind(0, cfg))
		b2 := mkBatch(2, 512, 30)
		b2.Requests[1].Committed = 12
		f.sim.At(f.sim.Now(), func() { p2.Start(b2) })
		f.sim.RunAll()
		h.log("second run prog=%d", b2.Progress())
	})
}

// TestSpanOneEventPerSegment pins the mechanism: the three-completion batch
// must run in one simulator event per segment (plus the start event), not
// one per iteration.
func TestSpanOneEventPerSegment(t *testing.T) {
	f, _ := ffFixture(t, model.OPT6B7, 1, false)
	cfg := config.Config{D: 1, P: 1, M: 4, B: 4}
	p, _ := f.eng.NewPipeline(0, cfg, f.bind(0, cfg))
	f.sim.At(0, func() { p.Start(staggeredBatch()) })
	f.sim.RunAll()
	if s := f.sim.Steps(); s > 8 {
		t.Fatalf("steps = %d, want a handful (one event per completion segment)", s)
	}
}
