// Fixture: globalrand scopes to internal/ only; cmd/ binaries may use
// the global source (no `want` expectations here).
package main

import "math/rand"

func pickPort() int { return 20000 + rand.Intn(1000) }
