// Fixture: globalrand applies to ALL of internal/, not just the kernel
// packages — this import path (spotserve/internal/traceio) is outside the
// kernel list and is still policed.
package traceio

import (
	"math/rand"
	"time"
)

func unseededDraw() float64 {
	return rand.Float64() // want `use of global math/rand\.Float64`
}

func unseededShuffle(xs []int) {
	rand.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] }) // want `use of global math/rand\.Shuffle`
}

func reseedsGlobal(seed int64) {
	rand.Seed(seed) // want `use of global math/rand\.Seed`
}

// storedReference: passing the global draw as a value is flagged too.
var draw = rand.Int63 // want `use of global math/rand\.Int63`

// seededSource is the sanctioned pattern: an explicit source built from a
// scenario seed, drawn via methods. Constructors are allowed; method
// calls on a *rand.Rand are not package-level functions.
func seededSource(seed int64) float64 {
	r := rand.New(rand.NewSource(seed))
	return r.Float64()
}

func clockSeeded() *rand.Rand {
	// Both the outer New and the inner NewSource see the wall clock in
	// their argument trees, so the line carries two findings.
	return rand.New(rand.NewSource(time.Now().UnixNano())) // want `wall-clock-seeded RNG \(math/rand\.New seeded` `wall-clock-seeded RNG \(math/rand\.NewSource seeded`
}

// annotated carries a written reason and is suppressed.
func annotated() float64 {
	//detlint:allow globalrand — fixture: jitter for a log-rotation ticker, never touches sim state
	return rand.Float64()
}

// annotatedEmptyReason suppresses nothing.
func annotatedEmptyReason() float64 {
	//detlint:allow globalrand // want `missing its reason`
	return rand.Float64() // want `use of global math/rand\.Float64`
}
