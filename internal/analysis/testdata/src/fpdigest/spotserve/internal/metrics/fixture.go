// Fixture: fpdigest in a kernel package.
package metrics

import (
	"crypto/sha256"
	"fmt"
	"strconv"
)

type summary struct {
	Count int
	Mean  float64
}

// Fingerprint is a digest sink by name: non-canonical float formatting
// inside it is flagged.
func Fingerprint(x float64, s summary) string {
	a := fmt.Sprintf("x=%v", x)         // want `float value formatted with %v into a digest sink`
	b := fmt.Sprintf("mean=%g", s.Mean) // want `float value formatted with %g into a digest sink`
	c := fmt.Sprintf("x=%.6f", x)       // want `float value formatted with %f into a digest sink`
	d := fmt.Sprintf("s=%+v", s)        // want `float value formatted with %v into a digest sink`
	return a + b + c + d
}

// FingerprintCanonical uses only bit-exact encodings and passes.
func FingerprintCanonical(x float64, s summary) string {
	a := fmt.Sprintf("x=%x", x)
	b := fmt.Sprintf("x=%b", x)
	c := fmt.Sprintf("count=%d name=%s", s.Count, "lat")
	d := fmt.Sprintf("pre=%s", strconv.FormatFloat(x, 'x', -1, 64))
	return a + b + c + d
}

// digestHeader exercises the Sprint family: every operand renders with
// %v, so a float-bearing operand is a finding.
func digestHeader(x float64, n int) string {
	return fmt.Sprint("x=", x, " n=", n) // want `float value formatted with %v into a digest sink`
}

// hashKey exercises a non-constant format string: verbs are unprovable,
// so float-bearing operands are flagged.
func hashKey(format string, x float64) string {
	return fmt.Sprintf(format, x) // want `float value formatted with a non-constant format into a digest sink`
}

// stamped has a String method: fmt delegates to it, so rendering one
// with %v is the type's own (stable) formatting, not raw float bytes.
type stamped struct{ v float64 }

func (s stamped) String() string { return strconv.FormatFloat(s.v, 'x', -1, 64) }

func digestStamped(s stamped) string {
	return fmt.Sprintf("s=%v", s)
}

// render is NOT a digest sink by name and writes to no hash: float
// formatting here is fingerprint-irrelevant display output.
func render(x float64) string {
	return fmt.Sprintf("mean=%.2f ms", x)
}

// accumulate writes into a hash.Hash: a digest sink wherever it appears,
// regardless of the enclosing function's name.
func accumulate(x float64) [32]byte {
	h := sha256.New()
	fmt.Fprintf(h, "x=%v", x) // want `float value formatted with %v into a digest sink`
	fmt.Fprintf(h, "x=%x", x)
	var out [32]byte
	copy(out[:], h.Sum(nil))
	return out
}

// annotated carries a written reason and is suppressed.
func annotatedDigest(x float64) string {
	//detlint:allow fpdigest — fixture: x is a scenario input constant, bytes pinned by goldens
	return fmt.Sprintf("x=%g", x)
}

// annotatedEmptyReason suppresses nothing.
func annotatedEmptyReasonDigest(x float64) string {
	//detlint:allow fpdigest // want `missing its reason`
	return fmt.Sprintf("x=%g", x) // want `float value formatted with %g into a digest sink`
}
