// Fixture: fpdigest does not apply outside the kernel packages — the
// daemon may format floats into its own response digests however it
// likes (no `want` expectations here).
package serve

import "fmt"

func responseFingerprint(x float64) string {
	return fmt.Sprintf("x=%v", x)
}
