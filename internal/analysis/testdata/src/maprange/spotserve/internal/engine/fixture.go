// Fixture: maprange in a kernel package (import path simulates
// spotserve/internal/engine, so the strict analyzers apply).
package engine

import "sort"

// orderSensitiveAppend leaks map order into a slice.
func orderSensitiveAppend(m map[string]int) []int {
	var out []int
	for _, v := range m { // want `range over map map\[string\]int`
		out = append(out, v)
	}
	return out
}

// floatSum is NOT whitelisted: float addition does not associate, so the
// sum's bits depend on visit order.
func floatSum(m map[string]float64) float64 {
	var total float64
	for _, v := range m { // want `range over map map\[string\]float64`
		total += v
	}
	return total
}

// lastWriterWins picks whichever key the iterator visits last.
func lastWriterWins(m map[string]int) (best string) {
	for k := range m { // want `range over map`
		best = k
	}
	return best
}

// intCount is whitelisted: counting into an integer accumulator commutes.
func intCount(m map[string]int) (n int) {
	for range m {
		n++
	}
	return n
}

// intSum is whitelisted: integer addition is associative and commutative.
func intSum(m map[string]int) (total int) {
	for _, v := range m {
		if v > 0 {
			total += v
		}
	}
	return total
}

// boolFold is whitelisted: x = x || e is an order-free any().
func boolFold(m map[string]int) bool {
	found := false
	for _, v := range m {
		found = found || v < 0
	}
	return found
}

// setBuild is whitelisted: set[k] = true produces the same map under
// every visit order.
func setBuild(m map[string]int) map[string]bool {
	set := map[string]bool{}
	for k := range m {
		set[k] = true
	}
	return set
}

// extractThenSort is the canonical fix shape and passes without
// annotation: keys land in a slice that is sorted before use.
func extractThenSort(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// extractWithoutSort looks like the idiom but never sorts — flagged.
func extractWithoutSort(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m { // want `range over map`
		keys = append(keys, k)
	}
	return keys
}

// annotated carries a written reason and is suppressed.
func annotated(m map[string]int) []int {
	var out []int
	//detlint:allow maprange — fixture: consumer treats out as an unordered multiset
	for _, v := range m {
		out = append(out, v)
	}
	return out
}

// annotatedTrailing suppresses via a same-line trailing annotation.
func annotatedTrailing(m map[string]int) []int {
	var out []int
	for _, v := range m { //detlint:allow maprange — fixture: trailing form, consumer is order-free
		out = append(out, v)
	}
	return out
}

// annotatedEmptyReason suppresses nothing and is itself a finding.
func annotatedEmptyReason(m map[string]int) []int {
	var out []int
	//detlint:allow maprange // want `missing its reason`
	for _, v := range m { // want `range over map`
		out = append(out, v)
	}
	return out
}

// annotatedWrongAnalyzer names a different analyzer; the maprange
// finding still fires.
func annotatedWrongAnalyzer(m map[string]int) []int {
	var out []int
	//detlint:allow wallclock — fixture: names the wrong analyzer
	for _, v := range m { // want `range over map`
		out = append(out, v)
	}
	return out
}
