// Fixture: maprange does not apply outside the kernel packages — the
// daemon layer may iterate maps freely (no `want` expectations here, so
// the test fails if anything is reported).
package serve

func routeTable(m map[string]int) []int {
	var out []int
	for _, v := range m {
		out = append(out, v)
	}
	return out
}
