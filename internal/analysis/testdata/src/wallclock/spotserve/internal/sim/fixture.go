// Fixture: wallclock in a kernel package.
package sim

import (
	"os"
	"time"
)

func readsClock() time.Time {
	return time.Now() // want `wall-clock read time\.Now in kernel package`
}

func measures(start time.Time) time.Duration {
	return time.Since(start) // want `wall-clock read time\.Since in kernel package`
}

func naps() {
	time.Sleep(time.Millisecond) // want `wall-clock read time\.Sleep in kernel package`
}

func readsEnv() string {
	return os.Getenv("SPOTSERVE_MODE") // want `environment read os\.Getenv in kernel package`
}

// storedReference: referencing the function without calling it is the
// same leak one step removed and is flagged too.
var clock = time.Now // want `wall-clock read time\.Now in kernel package`

// durationMath uses only time's deterministic types and constants — the
// time package itself is not forbidden, only the wall-clock entry points.
func durationMath(d time.Duration) time.Duration {
	return d * 2 * time.Second
}

// localMethod: a method named Now on a local type is not time.Now.
type fakeClock struct{ t time.Time }

func (c fakeClock) Now() time.Time { return c.t }

func usesFake(c fakeClock) time.Time { return c.Now() }

// annotated carries a written reason and is suppressed.
func annotated() time.Time {
	//detlint:allow wallclock — fixture: host-side watchdog, never feeds sim state
	return time.Now()
}

// annotatedEmptyReason suppresses nothing; both the malformed annotation
// and the underlying read are findings.
func annotatedEmptyReason() time.Time {
	//detlint:allow wallclock // want `missing its reason`
	return time.Now() // want `wall-clock read time\.Now in kernel package`
}
