// Fixture: the daemon layer is exempt from wallclock — real time and
// environment reads are its job (no `want` expectations here).
package serve

import (
	"os"
	"time"
)

func uptimeSince() time.Time { return time.Now() }

func listenAddr() string { return os.Getenv("SPOTSERVE_ADDR") }
