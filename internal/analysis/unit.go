// The `go vet -vettool` side of the driver. go vet drives an external
// tool with a three-verb command-line protocol (see the vendored
// x/tools unitchecker, whose JSON config schema this mirrors):
//
//	detlint -flags      describe supported flags as JSON
//	detlint -V=full     describe the executable for build caching
//	detlint unit.cfg    analyze one compilation unit
//
// Per unit, the build system hands us a JSON config naming the package's
// files and the export-data file of every dependency it already
// compiled, so unit mode needs no `go list` at all.
package analysis

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"strings"
)

// UnitConfig is the JSON compilation-unit description `go vet` writes
// (a subset of the unitchecker Config schema — unknown fields are
// ignored by encoding/json).
type UnitConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoFiles                   []string
	ImportMap                 map[string]string // source import path -> canonical package path
	PackageFile               map[string]string // canonical package path -> export data file
	VetxOutput                string            // fact file go vet expects us to write
	SucceedOnTypecheckFailure bool
}

// RunUnit analyzes the single compilation unit described by the cfg file
// and returns its findings. Test files are excluded so `go vet
// -vettool=detlint` reports exactly what the standalone driver reports:
// the determinism contract binds shipped kernel code; tests prove it at
// runtime instead. The (empty) fact file go vet expects is always
// written, even for units we skip, so caching works.
func RunUnit(cfgPath string, analyzers []*Analyzer) ([]Diagnostic, error) {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		return nil, err
	}
	cfg := new(UnitConfig)
	if err := json.Unmarshal(data, cfg); err != nil {
		return nil, fmt.Errorf("decoding vet config %s: %v", cfgPath, err)
	}
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, nil, 0o666); err != nil {
			return nil, err
		}
	}
	if cfg.Compiler != "" && cfg.Compiler != "gc" {
		return nil, fmt.Errorf("unsupported compiler %q (detlint reads gc export data)", cfg.Compiler)
	}

	var goFiles []string
	for _, f := range cfg.GoFiles {
		if strings.HasSuffix(f, "_test.go") {
			continue
		}
		goFiles = append(goFiles, f)
	}
	if len(goFiles) == 0 {
		return nil, nil // external test package: all files are tests
	}

	lookup := func(path string) (io.ReadCloser, error) {
		if canonical, ok := cfg.ImportMap[path]; ok {
			path = canonical
		}
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	}
	pkg, err := typecheck(cfg.ImportPath, cfg.Dir, goFiles, lookup)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return nil, nil // the compiler will report it better
		}
		return nil, err
	}
	return RunAnalyzers(pkg, analyzers), nil
}
