package analysis_test

import (
	"bytes"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"strings"
	"testing"

	"spotserve/internal/analysis"
)

// badEngineSource deliberately violates all four invariants inside a
// kernel package: an order-sensitive map range feeding a digest, a %v
// float in a fingerprint, a wall-clock read, and a global-source draw.
const badEngineSource = `package engine

import (
	"fmt"
	"math/rand"
	"time"
)

func Fingerprint(m map[string]float64) string {
	var s string
	for k, v := range m {
		s += fmt.Sprintf("%s=%v;", k, v)
	}
	return s
}

func Jitter() float64 { return rand.Float64() }

func Stamp() time.Time { return time.Now() }
`

// writeSeededModule builds a throwaway module named spotserve whose
// internal/engine package is badEngineSource, so the kernel scoping
// rules apply exactly as in the real tree.
func writeSeededModule(t *testing.T) string {
	t.Helper()
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "go.mod"), []byte("module spotserve\n\ngo 1.21\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	pkgDir := filepath.Join(dir, "internal", "engine")
	if err := os.MkdirAll(pkgDir, 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(pkgDir, "bad.go"), []byte(badEngineSource), 0o644); err != nil {
		t.Fatal(err)
	}
	return dir
}

// TestSeededViolations is the acceptance check for the suite: deliberate
// violations of each invariant must surface under the analyzer with the
// expected name.
func TestSeededViolations(t *testing.T) {
	dir := writeSeededModule(t)
	pkgs, err := analysis.Load(dir, "./...")
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) != 1 || pkgs[0].Path != "spotserve/internal/engine" {
		t.Fatalf("loaded %d packages, want exactly spotserve/internal/engine", len(pkgs))
	}
	diags := analysis.RunAnalyzers(pkgs[0], analysis.All())
	byAnalyzer := map[string]int{}
	for _, d := range diags {
		byAnalyzer[d.Analyzer]++
	}
	for _, name := range []string{"maprange", "wallclock", "globalrand", "fpdigest"} {
		if byAnalyzer[name] == 0 {
			t.Errorf("seeded violation of %s was not reported; findings: %v", name, diags)
		}
	}
}

// buildDetlint compiles cmd/detlint into a temp binary for driver tests.
func buildDetlint(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "detlint")
	if runtime.GOOS == "windows" {
		bin += ".exe"
	}
	cmd := exec.Command("go", "build", "-o", bin, "spotserve/cmd/detlint")
	cmd.Dir = repoRoot(t)
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("building detlint: %v\n%s", err, out)
	}
	return bin
}

// repoRoot locates the module root from the test's working directory
// (internal/analysis → two levels up).
func repoRoot(t *testing.T) string {
	t.Helper()
	wd, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	return filepath.Dir(filepath.Dir(wd))
}

// TestDetlintStandalone runs the built binary over the seeded module and
// checks the exit code and the file:line: analyzer: message output shape.
func TestDetlintStandalone(t *testing.T) {
	bin := buildDetlint(t)
	dir := writeSeededModule(t)
	cmd := exec.Command(bin, "./...")
	cmd.Dir = dir
	var stdout, stderr bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	err := cmd.Run()
	ee, ok := err.(*exec.ExitError)
	if !ok || ee.ExitCode() != 1 {
		t.Fatalf("detlint ./... err = %v (stderr: %s), want exit code 1", err, stderr.String())
	}
	out := stdout.String()
	for _, name := range []string{"maprange", "wallclock", "globalrand", "fpdigest"} {
		if !strings.Contains(out, ": "+name+": ") {
			t.Errorf("standalone output missing %s finding:\n%s", name, out)
		}
	}
	first := strings.SplitN(out, "\n", 2)[0]
	if !strings.HasPrefix(first, filepath.Join("internal", "engine", "bad.go")+":") {
		t.Errorf("findings not dir-relative file:line-prefixed: %q", first)
	}
}

// TestDetlintCleanTree pins the tree-is-clean property the lint gate
// relies on: the real repository must produce zero findings.
func TestDetlintCleanTree(t *testing.T) {
	bin := buildDetlint(t)
	cmd := exec.Command(bin, "./...")
	cmd.Dir = repoRoot(t)
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("detlint over the repo found problems (the tree must stay lint-clean):\n%s", out)
	}
}

// TestDetlintUnknownAnalyzer: a typo'd -run filter must fail loudly, not
// silently run nothing.
func TestDetlintUnknownAnalyzer(t *testing.T) {
	bin := buildDetlint(t)
	cmd := exec.Command(bin, "-run", "nosuch", "./...")
	cmd.Dir = repoRoot(t)
	out, err := cmd.CombinedOutput()
	ee, ok := err.(*exec.ExitError)
	if !ok || ee.ExitCode() != 2 {
		t.Fatalf("detlint -run nosuch err = %v, want exit code 2\n%s", err, out)
	}
	if !strings.Contains(string(out), "unknown analyzer") {
		t.Errorf("error output does not name the problem:\n%s", out)
	}
}

// TestVettool runs detlint through the real `go vet -vettool` protocol
// over the seeded module: -V=full handshake, -flags probe, unit.cfg
// analysis, diagnostics on stderr, nonzero exit.
func TestVettool(t *testing.T) {
	bin := buildDetlint(t)
	dir := writeSeededModule(t)
	cmd := exec.Command("go", "vet", "-vettool="+bin, "./...")
	cmd.Dir = dir
	out, err := cmd.CombinedOutput()
	ee, ok := err.(*exec.ExitError)
	if !ok || ee.ExitCode() == 0 {
		t.Fatalf("go vet -vettool err = %v, want nonzero exit\n%s", err, out)
	}
	text := string(out)
	for _, name := range []string{"maprange", "wallclock", "globalrand", "fpdigest"} {
		if !strings.Contains(text, ": "+name+": ") {
			t.Errorf("vettool output missing %s finding:\n%s", name, text)
		}
	}
}

// TestVettoolCleanTree: the protocol path must agree with the standalone
// driver that the real tree is clean (test files are excluded in both).
func TestVettoolCleanTree(t *testing.T) {
	if testing.Short() {
		t.Skip("vetting the whole repository is not short")
	}
	bin := buildDetlint(t)
	cmd := exec.Command("go", "vet", "-vettool="+bin, "./...")
	cmd.Dir = repoRoot(t)
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("go vet -vettool over the repo found problems:\n%s", out)
	}
}
