package analysis_test

import (
	"strings"
	"testing"

	"spotserve/internal/analysis"
	"spotserve/internal/analysis/analysistest"
)

func TestMapRange(t *testing.T)   { analysistest.Run(t, analysis.MapRange) }
func TestWallClock(t *testing.T)  { analysistest.Run(t, analysis.WallClock) }
func TestGlobalRand(t *testing.T) { analysistest.Run(t, analysis.GlobalRand) }
func TestFPDigest(t *testing.T)   { analysistest.Run(t, analysis.FPDigest) }

func TestByName(t *testing.T) {
	all, err := analysis.ByName("")
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != 4 {
		t.Fatalf("suite has %d analyzers, want 4", len(all))
	}
	sub, err := analysis.ByName("fpdigest, maprange")
	if err != nil {
		t.Fatal(err)
	}
	// Suite order is preserved regardless of the -run list's order.
	if len(sub) != 2 || sub[0].Name != "maprange" || sub[1].Name != "fpdigest" {
		t.Fatalf("ByName(fpdigest, maprange) = %v", names(sub))
	}
	if _, err := analysis.ByName("maprange,nosuch"); err == nil || !strings.Contains(err.Error(), "nosuch") {
		t.Fatalf("unknown analyzer error = %v, want mention of nosuch", err)
	}
}

func names(as []*analysis.Analyzer) []string {
	var out []string
	for _, a := range as {
		out = append(out, a.Name)
	}
	return out
}

func TestKernelPackages(t *testing.T) {
	for _, p := range []string{
		"spotserve/internal/engine", "spotserve/internal/sim", "spotserve/internal/core",
		"spotserve/internal/reconfig", "spotserve/internal/km", "spotserve/internal/cost",
		"spotserve/internal/market", "spotserve/internal/scenario", "spotserve/internal/metrics",
		"spotserve/internal/experiments",
	} {
		if !analysis.IsKernelPackage(p) {
			t.Errorf("IsKernelPackage(%s) = false", p)
		}
	}
	for _, p := range []string{"spotserve/internal/serve", "spotserve/cmd/spotserve", "spotserve/internal/trace"} {
		if analysis.IsKernelPackage(p) {
			t.Errorf("IsKernelPackage(%s) = true", p)
		}
	}
	if !analysis.IsInternalPackage("spotserve/internal/serve") {
		t.Error("IsInternalPackage(spotserve/internal/serve) = false")
	}
	if analysis.IsInternalPackage("spotserve/cmd/spotserve") {
		t.Error("IsInternalPackage(spotserve/cmd/spotserve) = true")
	}
	ks := analysis.KernelPackages()
	if len(ks) != 10 {
		t.Fatalf("KernelPackages() has %d entries, want 10", len(ks))
	}
	for i := 1; i < len(ks); i++ {
		if ks[i-1] >= ks[i] {
			t.Fatalf("KernelPackages() not sorted: %v", ks)
		}
	}
}
