package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// MapRange flags `for range` over a map inside the deterministic kernel
// packages. Go randomizes map iteration order per run, so any map range
// whose body is order-sensitive is a direct byte-identity violation —
// exactly the class of bug the parallel==serial fingerprint tests catch
// only on exercised paths. A loop survives the lint when it is
// order-insensitive under a deliberately conservative whitelist (pure
// counting/summing into integer accumulators, boolean any/all folds), or
// when it carries a written justification:
//
//	//detlint:allow maprange — <reason>
var MapRange = &Analyzer{
	Name: "maprange",
	Doc: "flag map iteration in kernel packages: map order is randomized per run, " +
		"so any order-sensitive body (appends, float accumulation, last-writer-wins " +
		"assignments) breaks byte-identical determinism. Extract and sort the keys, " +
		"or annotate a provably order-insensitive loop with a reason.",
	Run: runMapRange,
}

func runMapRange(pass *Pass) {
	if !IsKernelPackage(pass.Path) {
		return
	}
	for _, f := range pass.Files {
		bodies := functionBodies(f)
		ast.Inspect(f, func(n ast.Node) bool {
			rs, ok := n.(*ast.RangeStmt)
			if !ok {
				return true
			}
			t := pass.TypeOf(rs.X)
			if t == nil {
				return true
			}
			if _, isMap := t.Underlying().(*types.Map); !isMap {
				return true
			}
			if orderInsensitiveBody(pass, rs.Body) {
				return true
			}
			if extractThenSort(pass, rs, innermostBody(bodies, rs.Pos())) {
				return true
			}
			pass.Reportf(rs.Pos(),
				"range over map %s: iteration order is randomized per run; extract+sort the keys, or annotate `//detlint:allow maprange — <reason>` if provably order-insensitive",
				types.TypeString(t, types.RelativeTo(pass.Pkg)))
			return true
		})
	}
}

// functionBodies collects every function body in the file (declarations
// and literals) so a range statement can be resolved to its innermost
// enclosing function.
func functionBodies(f *ast.File) []*ast.BlockStmt {
	var out []*ast.BlockStmt
	ast.Inspect(f, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncDecl:
			if n.Body != nil {
				out = append(out, n.Body)
			}
		case *ast.FuncLit:
			out = append(out, n.Body)
		}
		return true
	})
	return out
}

// innermostBody returns the smallest body containing pos.
func innermostBody(bodies []*ast.BlockStmt, pos token.Pos) *ast.BlockStmt {
	var best *ast.BlockStmt
	for _, b := range bodies {
		if b.Pos() <= pos && pos < b.End() {
			if best == nil || b.Pos() > best.Pos() {
				best = b
			}
		}
	}
	return best
}

// sortFuncs lists the sorting entry points that discharge the
// extract-then-sort idiom.
var sortFuncs = map[string]map[string]bool{
	"sort":   {"Ints": true, "Strings": true, "Float64s": true, "Slice": true, "SliceStable": true, "Sort": true, "Stable": true},
	"slices": {"Sort": true, "SortFunc": true, "SortStableFunc": true},
}

// extractThenSort recognizes the canonical fix for a map range — extract
// the keys (or key/value pairs) into a slice, then sort it:
//
//	ids := make([]int, 0, len(m))
//	for id := range m {
//		ids = append(ids, id)
//	}
//	sort.Ints(ids)
//
// The loop body must consist solely of `x = append(x, <pure args>)`
// statements, and every appended-to slice must be passed to a sort.* /
// slices.Sort* call later in the same function. The slice's order is
// nondeterministic between the loop and the sort, which is why the sort
// must follow the loop; uses in between are not modeled — the idiom is a
// convenience for the overwhelmingly common fix shape, and anything
// cleverer should carry an annotation instead.
func extractThenSort(pass *Pass, rs *ast.RangeStmt, fnBody *ast.BlockStmt) bool {
	if fnBody == nil || rs.Body == nil || len(rs.Body.List) == 0 {
		return false
	}
	// Collect the append targets; every statement must be one.
	targets := map[types.Object]bool{}
	for _, s := range rs.Body.List {
		as, ok := s.(*ast.AssignStmt)
		if !ok || as.Tok != token.ASSIGN || len(as.Lhs) != 1 || len(as.Rhs) != 1 {
			return false
		}
		lhs, ok := as.Lhs[0].(*ast.Ident)
		if !ok {
			return false
		}
		call, ok := as.Rhs[0].(*ast.CallExpr)
		if !ok || len(call.Args) < 2 {
			return false
		}
		fun, ok := call.Fun.(*ast.Ident)
		if !ok {
			return false
		}
		if b, ok := pass.Info.Uses[fun].(*types.Builtin); !ok || b.Name() != "append" {
			return false
		}
		dst, ok := call.Args[0].(*ast.Ident)
		if !ok || dst.Name != lhs.Name {
			return false
		}
		for _, arg := range call.Args[1:] {
			if !pureExpr(pass, arg) {
				return false
			}
		}
		obj := pass.Info.Uses[lhs]
		if obj == nil {
			obj = pass.Info.Defs[lhs]
		}
		if obj == nil {
			return false
		}
		targets[obj] = true
	}
	if len(targets) == 0 {
		return false
	}
	// Every target must reach a sort call after the loop.
	sorted := map[types.Object]bool{}
	ast.Inspect(fnBody, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < rs.End() {
			return true
		}
		fn := calledPackageFunc(pass, call)
		if fn == nil {
			return true
		}
		set := sortFuncs[fn.Pkg().Path()]
		if set == nil || !set[fn.Name()] {
			return true
		}
		for _, arg := range call.Args {
			ast.Inspect(arg, func(an ast.Node) bool {
				if id, ok := an.(*ast.Ident); ok {
					if obj := pass.Info.Uses[id]; obj != nil && targets[obj] {
						sorted[obj] = true
					}
				}
				return true
			})
		}
		return true
	})
	for obj := range targets {
		if !sorted[obj] {
			return false
		}
	}
	return true
}

// orderInsensitiveBody reports whether every statement in the loop body
// is on the commutative-accumulator whitelist. The whitelist is
// deliberately narrow — when in doubt the loop is flagged:
//
//   - x++ / x-- on an integer accumulator (counting)
//   - x += e / x |= e / x &= e / x ^= e with an integer x and a pure e
//     (integer addition and bitwise folds are associative+commutative;
//     float += is NOT whitelisted — float addition does not associate,
//     so a float sum over map order drifts bytes)
//   - x = x || e and x = x && e with pure e (boolean any/all folds)
//   - set[k] = <constant> with pure k (set building: every visit order
//     produces the identical final map)
//   - if <pure cond> { <whitelisted> } [else <whitelisted>]
//   - continue, empty statements and nested blocks of the above
//
// "Pure" expressions contain no calls (except the len/cap builtins), no
// function literals, and no channel operations.
func orderInsensitiveBody(pass *Pass, body *ast.BlockStmt) bool {
	if body == nil {
		return true
	}
	for _, s := range body.List {
		if !orderInsensitiveStmt(pass, s) {
			return false
		}
	}
	return true
}

func orderInsensitiveStmt(pass *Pass, s ast.Stmt) bool {
	switch s := s.(type) {
	case nil, *ast.EmptyStmt:
		return true
	case *ast.BranchStmt:
		return s.Tok == token.CONTINUE && s.Label == nil
	case *ast.BlockStmt:
		return orderInsensitiveBody(pass, s)
	case *ast.IfStmt:
		if s.Init != nil || !pureExpr(pass, s.Cond) {
			return false
		}
		if !orderInsensitiveBody(pass, s.Body) {
			return false
		}
		return s.Else == nil || orderInsensitiveStmt(pass, s.Else)
	case *ast.IncDecStmt:
		return isIntegerExpr(pass, s.X)
	case *ast.AssignStmt:
		if len(s.Lhs) != 1 || len(s.Rhs) != 1 {
			return false
		}
		lhs, rhs := s.Lhs[0], s.Rhs[0]
		switch s.Tok {
		case token.ADD_ASSIGN, token.OR_ASSIGN, token.AND_ASSIGN, token.XOR_ASSIGN:
			return isIntegerExpr(pass, lhs) && pureExpr(pass, rhs)
		case token.ASSIGN:
			// set[k] = <constant>: set-building writes commute — each key
			// ends at the same constant no matter the visit order.
			if ix, ok := lhs.(*ast.IndexExpr); ok {
				if t := pass.TypeOf(ix.X); t != nil {
					if _, isMap := t.Underlying().(*types.Map); isMap {
						tv := pass.Info.Types[rhs]
						return tv.Value != nil && pureExpr(pass, ix.X) && pureExpr(pass, ix.Index)
					}
				}
				return false
			}
			// x = x || e / x = x && e: commutative, associative,
			// idempotent boolean folds.
			bin, ok := rhs.(*ast.BinaryExpr)
			if !ok || (bin.Op != token.LOR && bin.Op != token.LAND) {
				return false
			}
			return sameSimpleExpr(lhs, bin.X) && pureExpr(pass, bin.Y)
		}
		return false
	}
	return false
}

// isIntegerExpr reports whether e has integer type (signed or unsigned).
func isIntegerExpr(pass *Pass, e ast.Expr) bool {
	t := pass.TypeOf(e)
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsInteger != 0
}

// pureExpr reports whether e is free of side effects and nondeterminism
// sources: no calls (len/cap excepted), no function literals, no channel
// receives.
func pureExpr(pass *Pass, e ast.Expr) bool {
	pure := true
	ast.Inspect(e, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			id, ok := n.Fun.(*ast.Ident)
			if !ok {
				pure = false
				return false
			}
			if b, ok := pass.Info.Uses[id].(*types.Builtin); !ok || (b.Name() != "len" && b.Name() != "cap") {
				pure = false
				return false
			}
		case *ast.FuncLit:
			pure = false
			return false
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				pure = false
				return false
			}
		}
		return pure
	})
	return pure
}

// sameSimpleExpr reports whether two expressions are the same plain
// identifier or selector chain (x, x.y, x.y.z) — enough to recognize the
// `x = x || e` fold without full expression equivalence.
func sameSimpleExpr(a, b ast.Expr) bool {
	switch a := a.(type) {
	case *ast.Ident:
		b, ok := b.(*ast.Ident)
		return ok && a.Name == b.Name
	case *ast.SelectorExpr:
		b, ok := b.(*ast.SelectorExpr)
		return ok && a.Sel.Name == b.Sel.Name && sameSimpleExpr(a.X, b.X)
	}
	return false
}
