// Package loading for the standalone driver: `go list -deps -export`
// enumerates the requested packages plus the full dependency graph and
// compiles export data for every dependency into the build cache; the
// loader then parses the root packages from source and type-checks them
// with a gc-export-data importer, exactly as the compiler itself would.
// No code outside the standard library is involved, and no network: the
// module is dependency-free and export data for std comes from the local
// toolchain.
package analysis

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

// A Package is one parsed and type-checked package ready for analysis.
type Package struct {
	Path  string
	Dir   string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// listPackage is the subset of `go list -json` output the loader needs.
type listPackage struct {
	ImportPath string
	Dir        string
	GoFiles    []string
	Export     string
	Standard   bool
	DepOnly    bool
	Incomplete bool
	Error      *struct{ Err string }
}

// Load runs `go list` in dir over patterns (default `./...`), then
// parses and type-checks every non-dependency, non-standard package with
// at least one non-test Go file. Results are sorted by import path.
func Load(dir string, patterns ...string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	args := append([]string{
		"list", "-e", "-deps", "-export",
		"-json=ImportPath,Dir,GoFiles,Export,Standard,DepOnly,Incomplete,Error",
	}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list %s: %v\n%s", strings.Join(patterns, " "), err, stderr.String())
	}

	index := map[string]*listPackage{}
	var roots []*listPackage
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		p := new(listPackage)
		if err := dec.Decode(p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list: decoding output: %v", err)
		}
		index[p.ImportPath] = p
		if !p.DepOnly && !p.Standard {
			roots = append(roots, p)
		}
	}
	sort.Slice(roots, func(i, j int) bool { return roots[i].ImportPath < roots[j].ImportPath })

	var pkgs []*Package
	for _, root := range roots {
		if len(root.GoFiles) == 0 {
			// e.g. the module root, which holds only _test.go files;
			// nothing to analyze and nothing imports it.
			continue
		}
		if root.Error != nil {
			return nil, fmt.Errorf("go list: %s: %s", root.ImportPath, root.Error.Err)
		}
		pkg, err := typecheck(root.ImportPath, root.Dir, root.GoFiles, exportLookup(index))
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}

// exportLookup resolves an import path to its compiled export data via
// the `go list -export` index.
func exportLookup(index map[string]*listPackage) func(path string) (io.ReadCloser, error) {
	return func(path string) (io.ReadCloser, error) {
		p := index[path]
		if p == nil || p.Export == "" {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(p.Export)
	}
}

// stdExportCache memoizes `go list -export` lookups of standard-library
// export data for fixture loading, shared across every LoadFixture call
// in a test process.
var stdExportCache = struct {
	sync.Mutex
	files map[string]string // import path -> export data file ("" = unresolvable)
}{files: map[string]string{}}

// stdExports resolves the given standard-library import paths to export
// data files, invoking `go list -export` once for the uncached ones.
func stdExports(paths []string) (map[string]string, error) {
	stdExportCache.Lock()
	defer stdExportCache.Unlock()
	var missing []string
	for _, p := range paths {
		if _, ok := stdExportCache.files[p]; !ok {
			missing = append(missing, p)
		}
	}
	if len(missing) > 0 {
		sort.Strings(missing)
		args := append([]string{"list", "-e", "-export", "-json=ImportPath,Export"}, missing...)
		cmd := exec.Command("go", args...)
		var stderr bytes.Buffer
		cmd.Stderr = &stderr
		out, err := cmd.Output()
		if err != nil {
			return nil, fmt.Errorf("go list -export %s: %v\n%s", strings.Join(missing, " "), err, stderr.String())
		}
		dec := json.NewDecoder(bytes.NewReader(out))
		for {
			p := new(listPackage)
			if err := dec.Decode(p); err == io.EOF {
				break
			} else if err != nil {
				return nil, err
			}
			stdExportCache.files[p.ImportPath] = p.Export
		}
		for _, p := range missing {
			if _, ok := stdExportCache.files[p]; !ok {
				stdExportCache.files[p] = ""
			}
		}
	}
	out := make(map[string]string, len(paths))
	for _, p := range paths {
		out[p] = stdExportCache.files[p]
	}
	return out, nil
}

// LoadFixture parses and type-checks a single directory of Go files as
// importPath, resolving imports — standard library only, by design:
// fixture packages simulate kernel import paths but may only depend on
// std — through `go list -export`. It backs the analysistest runner.
func LoadFixture(importPath, dir string) (*Package, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var goFiles []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
			goFiles = append(goFiles, e.Name())
		}
	}
	sort.Strings(goFiles)
	if len(goFiles) == 0 {
		return nil, fmt.Errorf("no Go files in %s", dir)
	}
	// Pre-resolve the import set so one `go list` serves the package.
	fset := token.NewFileSet()
	imports := map[string]bool{}
	for _, name := range goFiles {
		f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.ImportsOnly)
		if err != nil {
			return nil, err
		}
		for _, imp := range f.Imports {
			path := strings.Trim(imp.Path.Value, `"`)
			imports[path] = true
		}
	}
	var paths []string
	for p := range imports {
		paths = append(paths, p)
	}
	sort.Strings(paths)
	exports, err := stdExports(paths)
	if err != nil {
		return nil, err
	}
	lookup := func(path string) (io.ReadCloser, error) {
		file := exports[path]
		if file == "" {
			return nil, fmt.Errorf("fixture import %q is not resolvable (fixtures may import only the standard library)", path)
		}
		return os.Open(file)
	}
	return typecheck(importPath, dir, goFiles, lookup)
}

// typecheck parses the named files (which may be absolute or relative to
// dir) and type-checks them as importPath, resolving imports through
// lookup. It is shared by the standalone loader, the vettool unit mode
// and the fixture runner.
func typecheck(importPath, dir string, goFiles []string, lookup func(string) (io.ReadCloser, error)) (*Package, error) {
	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range goFiles {
		if !filepath.IsAbs(name) {
			name = filepath.Join(dir, name)
		}
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Implicits:  map[ast.Node]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	var softErrs []error
	conf := types.Config{
		Importer: importer.ForCompiler(fset, "gc", lookup),
		Error:    func(err error) { softErrs = append(softErrs, err) },
	}
	tpkg, err := conf.Check(importPath, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("typecheck %s: %w", importPath, errors.Join(softErrs...))
	}
	return &Package{
		Path:  importPath,
		Dir:   dir,
		Fset:  fset,
		Files: files,
		Types: tpkg,
		Info:  info,
	}, nil
}
