package analysis

import (
	"reflect"
	"testing"
)

func TestParseAllow(t *testing.T) {
	cases := []struct {
		text      string
		analyzers []string
		reason    string
		ok        bool
	}{
		{"detlint:allow maprange — keys feed an unordered set", []string{"maprange"}, "keys feed an unordered set", true},
		{"detlint:allow maprange -- ascii separator works too", []string{"maprange"}, "ascii separator works too", true},
		{"detlint:allow maprange,wallclock — two analyzers, one reason", []string{"maprange", "wallclock"}, "two analyzers, one reason", true},
		{"detlint:allow maprange, wallclock — comma+space split", []string{"maprange", "wallclock"}, "comma+space split", true},
		{"detlint:allow maprange", []string{"maprange"}, "", true},
		{"detlint:allow maprange —", []string{"maprange"}, "", true},
		{"detlint:allow maprange —   ", []string{"maprange"}, "", true},
		{"detlint:allow", nil, "", true},
		{"detlint:allowance — not our directive", nil, "", false},
		{" detlint:allow maprange — leading space is not a directive", nil, "", false},
		{"nolint:maprange", nil, "", false},
		{"just a comment", nil, "", false},
	}
	for _, c := range cases {
		analyzers, reason, ok := parseAllow(c.text)
		if ok != c.ok || reason != c.reason || !reflect.DeepEqual(analyzers, c.analyzers) {
			t.Errorf("parseAllow(%q) = (%v, %q, %v), want (%v, %q, %v)",
				c.text, analyzers, reason, ok, c.analyzers, c.reason, c.ok)
		}
	}
}
