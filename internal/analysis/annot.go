// Annotation grammar: a finding may be suppressed with a written reason
// by placing, on the offending line or the line directly above it,
//
//	//detlint:allow <analyzer>[,<analyzer>...] — <reason>
//
// The separator is an em dash or `--`; the reason is mandatory. An
// annotation with an empty reason suppresses nothing and is itself
// reported by each analyzer it names. Annotations naming analyzers that
// are not part of the run are ignored (they suppress nothing, so a typo
// can never hide a real finding — the finding still fires).
package analysis

import (
	"go/ast"
	"go/token"
	"strings"
)

// An allowAnnot is one parsed //detlint:allow directive.
type allowAnnot struct {
	pos       token.Position
	analyzers []string
	reason    string
}

// annotIndex indexes a package's allow annotations by file and line.
type annotIndex struct {
	// byLine maps filename -> line of the annotation comment.
	byLine map[string]map[int]*allowAnnot
	all    []*allowAnnot
}

// parseAllow parses the text of a single comment (with the leading `//`
// already stripped). It returns nil when the comment is not a detlint
// directive at all.
func parseAllow(text string) (analyzers []string, reason string, ok bool) {
	const prefix = "detlint:allow"
	if !strings.HasPrefix(text, prefix) {
		return nil, "", false
	}
	rest := text[len(prefix):]
	if rest != "" && rest[0] != ' ' && rest[0] != '\t' {
		return nil, "", false // e.g. detlint:allowance — not ours
	}
	// Split names from reason at the first em dash or `--`.
	names := rest
	if i := strings.Index(rest, "—"); i >= 0 {
		names, reason = rest[:i], rest[i+len("—"):]
	} else if i := strings.Index(rest, "--"); i >= 0 {
		names, reason = rest[:i], rest[i+2:]
	}
	for _, f := range strings.FieldsFunc(names, func(r rune) bool { return r == ',' || r == ' ' || r == '\t' }) {
		analyzers = append(analyzers, f)
	}
	return analyzers, strings.TrimSpace(reason), true
}

// collectAnnotations scans every comment in the package's files.
func collectAnnotations(fset *token.FileSet, files []*ast.File) *annotIndex {
	idx := &annotIndex{byLine: map[string]map[int]*allowAnnot{}}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text, isLine := strings.CutPrefix(c.Text, "//")
				if !isLine {
					continue // /* ... */ comments are not directives
				}
				names, reason, ok := parseAllow(text)
				if !ok || len(names) == 0 {
					continue
				}
				pos := fset.Position(c.Pos())
				a := &allowAnnot{pos: pos, analyzers: names, reason: reason}
				idx.all = append(idx.all, a)
				lines := idx.byLine[pos.Filename]
				if lines == nil {
					lines = map[int]*allowAnnot{}
					idx.byLine[pos.Filename] = lines
				}
				lines[pos.Line] = a
			}
		}
	}
	return idx
}

// allows reports whether a finding of the named analyzer at pos is
// suppressed: an annotation naming it, with a non-empty reason, sits on
// the finding's line (trailing comment) or the line directly above.
func (idx *annotIndex) allows(analyzer string, pos token.Position) bool {
	lines := idx.byLine[pos.Filename]
	if lines == nil {
		return false
	}
	for _, line := range [2]int{pos.Line, pos.Line - 1} {
		a := lines[line]
		if a == nil || a.reason == "" {
			continue
		}
		for _, name := range a.analyzers {
			if name == analyzer {
				return true
			}
		}
	}
	return false
}

// missingReason returns the positions of annotations that name analyzer
// but carry no reason, in file order.
func (idx *annotIndex) missingReason(analyzer string) []token.Position {
	var out []token.Position
	for _, a := range idx.all {
		if a.reason != "" {
			continue
		}
		for _, name := range a.analyzers {
			if name == analyzer {
				out = append(out, a.pos)
				break
			}
		}
	}
	return out
}
