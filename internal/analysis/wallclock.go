package analysis

import (
	"go/ast"
	"go/types"
)

// WallClock forbids wall-clock and environment reads in the kernel
// packages: simulated time must flow exclusively from the event clock,
// and configuration must be explicit parameters, or two runs of the same
// scenario can observe different worlds. The daemon and CLI layers
// (internal/serve, cmd/...) legitimately read real time and environment
// and are exempt by not being kernel packages.
var WallClock = &Analyzer{
	Name: "wallclock",
	Doc: "forbid time.Now/Since/Sleep-style wall-clock reads and os.Getenv-style " +
		"environment reads in kernel packages; sim time comes from the event clock " +
		"and configuration from explicit parameters.",
	Run: runWallClock,
}

// wallClockFuncs maps package path -> forbidden package-level functions.
// Any reference counts, not just calls: storing time.Now in a variable is
// the same leak one step removed.
var wallClockFuncs = map[string]map[string]bool{
	"time": {
		"Now": true, "Since": true, "Until": true, "Sleep": true,
		"After": true, "AfterFunc": true, "Tick": true,
		"NewTimer": true, "NewTicker": true,
	},
	"os": {
		"Getenv": true, "LookupEnv": true, "Environ": true,
	},
}

func runWallClock(pass *Pass) {
	if !IsKernelPackage(pass.Path) {
		return
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			id, ok := n.(*ast.Ident)
			if !ok {
				return true
			}
			fn, ok := pass.Info.Uses[id].(*types.Func)
			if !ok || fn.Pkg() == nil {
				return true
			}
			set := wallClockFuncs[fn.Pkg().Path()]
			if set == nil || !set[fn.Name()] {
				return true
			}
			if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
				return true // a method that happens to share the name
			}
			kind := "wall-clock read"
			if fn.Pkg().Path() == "os" {
				kind = "environment read"
			}
			pass.Reportf(id.Pos(),
				"%s %s.%s in kernel package: sim time must flow through the event clock and configuration through explicit parameters (`//detlint:allow wallclock — <reason>` to suppress)",
				kind, fn.Pkg().Path(), fn.Name())
			return true
		})
	}
}
