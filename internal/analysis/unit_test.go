package analysis_test

import (
	"bytes"
	"encoding/json"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"

	"spotserve/internal/analysis"
)

// stdExportFiles resolves std import paths to export-data files the way
// go vet's build system would, via `go list -export`.
func stdExportFiles(t *testing.T, dir string, paths ...string) map[string]string {
	t.Helper()
	args := append([]string{"list", "-e", "-export", "-json=ImportPath,Export"}, paths...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	out, err := cmd.Output()
	if err != nil {
		t.Fatalf("go list -export: %v", err)
	}
	files := map[string]string{}
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p struct{ ImportPath, Export string }
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			t.Fatal(err)
		}
		if p.Export == "" {
			t.Fatalf("no export data for %s", p.ImportPath)
		}
		files[p.ImportPath] = p.Export
	}
	return files
}

// writeUnitCfg marshals a UnitConfig for the seeded module's engine
// package, mimicking the JSON go vet hands a vettool.
func writeUnitCfg(t *testing.T, dir string, cfg analysis.UnitConfig) string {
	t.Helper()
	data, err := json.Marshal(cfg)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "unit.cfg")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestRunUnit drives the vet-protocol unit analysis in-process with a
// hand-built config: findings surface, test files are excluded, and the
// fact file go vet expects is written.
func TestRunUnit(t *testing.T) {
	dir := writeSeededModule(t)
	pkgDir := filepath.Join(dir, "internal", "engine")
	// A test file that would violate wallclock if unit mode forgot to
	// exclude _test.go (the standalone driver never sees test files, and
	// the two modes must agree).
	testFile := filepath.Join(pkgDir, "bad_test.go")
	if err := os.WriteFile(testFile, []byte("package engine\n\nimport \"time\"\n\nvar testClock = time.Now\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	vetx := filepath.Join(t.TempDir(), "unit.vetx")
	cfgPath := writeUnitCfg(t, dir, analysis.UnitConfig{
		ID:          "spotserve/internal/engine",
		Compiler:    "gc",
		Dir:         pkgDir,
		ImportPath:  "spotserve/internal/engine",
		GoFiles:     []string{filepath.Join(pkgDir, "bad.go"), testFile},
		ImportMap:   map[string]string{"fmt": "fmt", "math/rand": "math/rand", "time": "time"},
		PackageFile: stdExportFiles(t, dir, "fmt", "math/rand", "time"),
		VetxOutput:  vetx,
	})
	diags, err := analysis.RunUnit(cfgPath, analysis.All())
	if err != nil {
		t.Fatal(err)
	}
	byAnalyzer := map[string]int{}
	for _, d := range diags {
		byAnalyzer[d.Analyzer]++
		if strings.HasSuffix(d.Pos.Filename, "_test.go") {
			t.Errorf("unit mode reported a finding in a test file: %s", d)
		}
	}
	for _, name := range []string{"maprange", "wallclock", "globalrand", "fpdigest"} {
		if byAnalyzer[name] == 0 {
			t.Errorf("unit mode missed the seeded %s violation; findings: %v", name, diags)
		}
	}
	if _, err := os.Stat(vetx); err != nil {
		t.Errorf("fact file was not written: %v", err)
	}
}

// TestRunUnitEdgeCases covers the protocol's degenerate units.
func TestRunUnitEdgeCases(t *testing.T) {
	dir := writeSeededModule(t)
	pkgDir := filepath.Join(dir, "internal", "engine")

	t.Run("all-test-files", func(t *testing.T) {
		vetx := filepath.Join(t.TempDir(), "u.vetx")
		cfgPath := writeUnitCfg(t, dir, analysis.UnitConfig{
			ImportPath: "spotserve/internal/engine_test",
			Dir:        pkgDir,
			GoFiles:    []string{filepath.Join(pkgDir, "x_test.go")},
			VetxOutput: vetx,
		})
		diags, err := analysis.RunUnit(cfgPath, analysis.All())
		if err != nil || len(diags) != 0 {
			t.Fatalf("external test unit: diags=%v err=%v, want none", diags, err)
		}
		if _, err := os.Stat(vetx); err != nil {
			t.Errorf("fact file must be written even for skipped units: %v", err)
		}
	})

	t.Run("non-gc-compiler", func(t *testing.T) {
		cfgPath := writeUnitCfg(t, dir, analysis.UnitConfig{
			Compiler:   "gccgo",
			ImportPath: "spotserve/internal/engine",
			Dir:        pkgDir,
			GoFiles:    []string{filepath.Join(pkgDir, "bad.go")},
		})
		if _, err := analysis.RunUnit(cfgPath, analysis.All()); err == nil {
			t.Fatal("gccgo unit accepted; detlint reads gc export data only")
		}
	})

	t.Run("typecheck-failure-tolerated", func(t *testing.T) {
		// No PackageFile entries: imports cannot resolve. With
		// SucceedOnTypecheckFailure the unit is skipped silently — the
		// compiler proper owns the error.
		cfgPath := writeUnitCfg(t, dir, analysis.UnitConfig{
			ImportPath:                "spotserve/internal/engine",
			Dir:                       pkgDir,
			GoFiles:                   []string{filepath.Join(pkgDir, "bad.go")},
			SucceedOnTypecheckFailure: true,
		})
		diags, err := analysis.RunUnit(cfgPath, analysis.All())
		if err != nil || len(diags) != 0 {
			t.Fatalf("tolerated unit: diags=%v err=%v, want none", diags, err)
		}
	})

	t.Run("typecheck-failure-reported", func(t *testing.T) {
		cfgPath := writeUnitCfg(t, dir, analysis.UnitConfig{
			ImportPath: "spotserve/internal/engine",
			Dir:        pkgDir,
			GoFiles:    []string{filepath.Join(pkgDir, "bad.go")},
		})
		if _, err := analysis.RunUnit(cfgPath, analysis.All()); err == nil {
			t.Fatal("unresolvable imports accepted without SucceedOnTypecheckFailure")
		}
	})

	t.Run("missing-cfg", func(t *testing.T) {
		if _, err := analysis.RunUnit(filepath.Join(t.TempDir(), "nope.cfg"), analysis.All()); err == nil {
			t.Fatal("missing cfg file accepted")
		}
	})

	t.Run("malformed-cfg", func(t *testing.T) {
		path := filepath.Join(t.TempDir(), "bad.cfg")
		if err := os.WriteFile(path, []byte("{not json"), 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := analysis.RunUnit(path, analysis.All()); err == nil {
			t.Fatal("malformed cfg accepted")
		}
	})
}

// TestRunStandaloneInProcess pins the driver's output contract: one
// `file:line:col: analyzer: message` line per finding, dir-relative.
func TestRunStandaloneInProcess(t *testing.T) {
	dir := writeSeededModule(t)
	var buf bytes.Buffer
	n, err := analysis.RunStandalone(dir, []string{"./..."}, analysis.All(), &buf)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	if n == 0 || len(lines) != n {
		t.Fatalf("RunStandalone: n=%d but %d output lines", n, len(lines))
	}
	rel := filepath.Join("internal", "engine", "bad.go")
	for _, line := range lines {
		if !strings.HasPrefix(line, rel+":") {
			t.Errorf("finding not dir-relative: %q", line)
		}
		parts := strings.SplitN(line, ": ", 3)
		if len(parts) != 3 {
			t.Errorf("finding not file:line:col: analyzer: message shaped: %q", line)
		}
	}
}

func TestDiagnosticString(t *testing.T) {
	dir := writeSeededModule(t)
	pkgs, err := analysis.Load(dir, "./...")
	if err != nil {
		t.Fatal(err)
	}
	diags := analysis.RunAnalyzers(pkgs[0], analysis.All())
	if len(diags) == 0 {
		t.Fatal("no findings")
	}
	s := diags[0].String()
	if !strings.Contains(s, "bad.go:") || !strings.Contains(s, ": ") {
		t.Errorf("Diagnostic.String() = %q, want file:pos: analyzer: message", s)
	}
}
