package analysis

import (
	"fmt"
	"io"
	"path/filepath"
)

// RunStandalone loads the packages matched by patterns (relative to dir),
// runs the analyzers over each, and writes findings to w as
// `file:line:col: analyzer: message` — one line per finding, sorted by
// package then position, with paths relative to dir when possible so
// terminal output is clickable from the module root. It returns the
// number of findings.
func RunStandalone(dir string, patterns []string, analyzers []*Analyzer, w io.Writer) (int, error) {
	pkgs, err := Load(dir, patterns...)
	if err != nil {
		return 0, err
	}
	findings := 0
	for _, pkg := range pkgs {
		for _, d := range RunAnalyzers(pkg, analyzers) {
			file := d.Pos.Filename
			if rel, err := filepath.Rel(dir, file); err == nil && !filepath.IsAbs(rel) && rel != "" && rel[0] != '.' {
				file = rel
			}
			fmt.Fprintf(w, "%s:%d:%d: %s: %s\n", file, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
			findings++
		}
	}
	return findings, nil
}
