// Package analysistest runs detlint analyzers over fixture packages and
// checks their findings against `// want` expectations, mirroring the
// x/tools package of the same name on a standard-library-only footing.
//
// Fixtures live under internal/analysis/testdata/src/<analyzer>/; each
// directory below that root containing Go files is loaded as one package
// whose import path is its path relative to the root, so a fixture at
// testdata/src/maprange/spotserve/internal/engine/ type-checks as the
// kernel package spotserve/internal/engine and exercises the analyzer's
// package scoping exactly as production code would.
//
// An expectation is a comment of the form
//
//	// want "regexp" "another regexp"
//
// attached to the line it appears on: every regexp must match a distinct
// finding reported on that line, every finding must be matched by some
// expectation, and both directions are errors.
package analysistest

import (
	"fmt"
	"io/fs"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"testing"

	"spotserve/internal/analysis"
)

// Run loads every fixture package under testdata/src/<a.Name> (relative
// to the test's working directory) and checks a's findings against the
// fixtures' want expectations.
func Run(t *testing.T, a *analysis.Analyzer) {
	t.Helper()
	root := filepath.Join("testdata", "src", a.Name)
	dirs := fixtureDirs(t, root)
	if len(dirs) == 0 {
		t.Fatalf("no fixture packages under %s", root)
	}
	for _, dir := range dirs {
		rel, err := filepath.Rel(root, dir)
		if err != nil {
			t.Fatal(err)
		}
		importPath := filepath.ToSlash(rel)
		t.Run(importPath, func(t *testing.T) {
			pkg, err := analysis.LoadFixture(importPath, dir)
			if err != nil {
				t.Fatalf("loading fixture %s: %v", dir, err)
			}
			check(t, pkg, analysis.RunAnalyzers(pkg, []*analysis.Analyzer{a}))
		})
	}
}

// fixtureDirs returns every directory under root holding Go files.
func fixtureDirs(t *testing.T, root string) []string {
	t.Helper()
	seen := map[string]bool{}
	var dirs []string
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() && strings.HasSuffix(path, ".go") {
			dir := filepath.Dir(path)
			if !seen[dir] {
				seen[dir] = true
				dirs = append(dirs, dir)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatalf("walking %s: %v", root, err)
	}
	sort.Strings(dirs)
	return dirs
}

// expectation is one want regexp at a file line.
type expectation struct {
	file string
	line int
	re   *regexp.Regexp
	raw  string
}

// check compares findings against want comments.
func check(t *testing.T, pkg *analysis.Package, diags []analysis.Diagnostic) {
	t.Helper()
	wants := collectWants(t, pkg)

	matched := make([]bool, len(wants))
	for _, d := range diags {
		ok := false
		for i, w := range wants {
			if matched[i] || w.file != d.Pos.Filename || w.line != d.Pos.Line {
				continue
			}
			if w.re.MatchString(d.Message) {
				matched[i] = true
				ok = true
				break
			}
		}
		if !ok {
			t.Errorf("%s: unexpected finding: %s: %s", d.Pos, d.Analyzer, d.Message)
		}
	}
	for i, w := range wants {
		if !matched[i] {
			t.Errorf("%s:%d: no finding matched want %q", w.file, w.line, w.raw)
		}
	}
}

// collectWants parses every `// want ...` comment in the package.
func collectWants(t *testing.T, pkg *analysis.Package) []expectation {
	t.Helper()
	var wants []expectation
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text, ok := strings.CutPrefix(c.Text, "//")
				if !ok {
					continue
				}
				rest, ok := strings.CutPrefix(strings.TrimSpace(text), "want ")
				if !ok {
					// A want may trail another directive in the same line
					// comment (e.g. after a //detlint:allow under test),
					// since a line comment runs to end of line.
					if i := strings.Index(text, "// want "); i >= 0 {
						rest = text[i+len("// want "):]
					} else {
						continue
					}
				}
				pos := pkg.Fset.Position(c.Pos())
				patterns, err := parseWantPatterns(rest)
				if err != nil {
					t.Fatalf("%s: malformed want comment: %v", pos, err)
				}
				for _, p := range patterns {
					re, err := regexp.Compile(p)
					if err != nil {
						t.Fatalf("%s: bad want regexp %q: %v", pos, p, err)
					}
					wants = append(wants, expectation{file: pos.Filename, line: pos.Line, re: re, raw: p})
				}
			}
		}
	}
	return wants
}

// parseWantPatterns reads a sequence of Go string literals (quoted or
// backquoted) from a want comment's payload.
func parseWantPatterns(s string) ([]string, error) {
	var out []string
	for {
		s = strings.TrimSpace(s)
		if s == "" {
			return out, nil
		}
		switch s[0] {
		case '"':
			end := -1
			for i := 1; i < len(s); i++ {
				if s[i] == '\\' {
					i++
					continue
				}
				if s[i] == '"' {
					end = i
					break
				}
			}
			if end < 0 {
				return nil, fmt.Errorf("unterminated string in %q", s)
			}
			lit, err := strconv.Unquote(s[:end+1])
			if err != nil {
				return nil, err
			}
			out = append(out, lit)
			s = s[end+1:]
		case '`':
			end := strings.IndexByte(s[1:], '`')
			if end < 0 {
				return nil, fmt.Errorf("unterminated raw string in %q", s)
			}
			out = append(out, s[1:end+1])
			s = s[end+2:]
		default:
			return nil, fmt.Errorf("expected string literal at %q", s)
		}
	}
}
