// Package analysis is detlint's determinism-linter suite: a set of
// static analyzers that enforce, at compile time, the byte-identity
// contract the runtime equivalence tests pin (parallel==serial,
// cache-on==cache-off, fault-injected==fault-free fingerprints).
//
// The framework deliberately mirrors the shape of golang.org/x/tools
// go/analysis (Analyzer / Pass / Diagnostic, testdata fixtures with
// `// want` expectations, a multichecker driver in cmd/detlint that also
// speaks the `go vet -vettool` protocol) but is built entirely on the
// standard library — go/ast, go/types and `go list -export` export data —
// so the module stays dependency-free. See docs/ANALYSIS.md for the
// invariant catalog and the `//detlint:allow` annotation grammar.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// An Analyzer describes one determinism invariant and the function that
// checks it over a single type-checked package.
type Analyzer struct {
	// Name identifies the analyzer in findings, `-run` filters and
	// `//detlint:allow <name> — <reason>` annotations.
	Name string
	// Doc is a one-paragraph description of the invariant, shown by
	// `detlint help`.
	Doc string
	// Run reports findings on pass via pass.Reportf. Suppression by
	// annotation is applied by the framework after Run returns, so
	// analyzers report unconditionally.
	Run func(pass *Pass)
}

// A Pass carries one type-checked package through one analyzer.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	Path     string // import path of the package under analysis
	Pkg      *types.Package
	Info     *types.Info

	diags *[]Diagnostic
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Pos:      p.Fset.Position(pos),
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// TypeOf returns the type of e, or nil when the type checker recorded
// none (analyzers treat nil conservatively: unknown types are not
// flagged, matching go/analysis convention for robustness).
func (p *Pass) TypeOf(e ast.Expr) types.Type {
	return p.Info.TypeOf(e)
}

// A Diagnostic is one finding, already resolved to a file position so it
// renders as the clickable `file:line:col: analyzer: message` form.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s: %s", d.Pos, d.Analyzer, d.Message)
}

// kernelPackages are the deterministic simulation kernel: every line in
// these packages feeds, directly or transitively, the fingerprints the
// equivalence tests compare, so the strict analyzers (maprange,
// wallclock, fpdigest) apply. The daemon/CLI layers (serve, cmd/...) and
// the ingest/support packages are exempt from the strict set but still
// covered by globalrand, which applies to all of internal/.
var kernelPackages = map[string]bool{
	"spotserve/internal/engine":      true,
	"spotserve/internal/sim":         true,
	"spotserve/internal/core":        true,
	"spotserve/internal/reconfig":    true,
	"spotserve/internal/km":          true,
	"spotserve/internal/cost":        true,
	"spotserve/internal/market":      true,
	"spotserve/internal/scenario":    true,
	"spotserve/internal/metrics":     true,
	"spotserve/internal/experiments": true,
}

// IsKernelPackage reports whether path is one of the deterministic
// kernel packages the strict analyzers police.
func IsKernelPackage(path string) bool { return kernelPackages[path] }

// KernelPackages returns the sorted kernel package list (for docs and
// the driver's help output).
func KernelPackages() []string {
	out := make([]string, 0, len(kernelPackages))
	for p := range kernelPackages {
		out = append(out, p)
	}
	sort.Strings(out)
	return out
}

// IsInternalPackage reports whether path lies in this module's internal/
// tree, the scope of the globalrand analyzer.
func IsInternalPackage(path string) bool {
	return strings.HasPrefix(path, "spotserve/internal/")
}

// All returns the full analyzer suite in stable order.
func All() []*Analyzer {
	return []*Analyzer{MapRange, WallClock, GlobalRand, FPDigest}
}

// ByName resolves a comma-separated `-run` list against All, preserving
// suite order. Unknown names are an error, not a silent no-op: a typo'd
// filter must not pass CI by running nothing.
func ByName(list string) ([]*Analyzer, error) {
	if list == "" {
		return All(), nil
	}
	want := map[string]bool{}
	for _, name := range strings.Split(list, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		want[name] = true
	}
	var out []*Analyzer
	for _, a := range All() {
		if want[a.Name] {
			out = append(out, a)
			delete(want, a.Name)
		}
	}
	if len(want) > 0 {
		var unknown []string
		for name := range want {
			unknown = append(unknown, name)
		}
		sort.Strings(unknown)
		return nil, fmt.Errorf("unknown analyzer(s): %s", strings.Join(unknown, ", "))
	}
	return out, nil
}

// RunAnalyzers runs the given analyzers over one loaded package and
// returns the surviving findings sorted by position. Suppression
// semantics live here, in one place, rather than in each analyzer:
// a finding is dropped when an in-scope `//detlint:allow` annotation
// names its analyzer and carries a non-empty reason; an annotation that
// names an analyzer but omits the reason is itself a finding of that
// analyzer ("allow annotations must explain themselves").
func RunAnalyzers(pkg *Package, analyzers []*Analyzer) []Diagnostic {
	annots := collectAnnotations(pkg.Fset, pkg.Files)
	var out []Diagnostic
	for _, a := range analyzers {
		var raw []Diagnostic
		pass := &Pass{
			Analyzer: a,
			Fset:     pkg.Fset,
			Files:    pkg.Files,
			Path:     pkg.Path,
			Pkg:      pkg.Types,
			Info:     pkg.Info,
			diags:    &raw,
		}
		a.Run(pass)
		for _, d := range raw {
			if annots.allows(a.Name, d.Pos) {
				continue
			}
			out = append(out, d)
		}
		// Malformed annotations are findings even when nothing was
		// suppressed: an empty reason silently rots into "nobody knows
		// why this is exempt".
		for _, bad := range annots.missingReason(a.Name) {
			out = append(out, Diagnostic{
				Pos:      bad,
				Analyzer: a.Name,
				Message:  "//detlint:allow " + a.Name + " annotation is missing its reason (write `//detlint:allow " + a.Name + " — <why this is order-insensitive/safe>`)",
			})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return out
}
