package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// GlobalRand forbids the process-global math/rand source everywhere under
// internal/: the global source is shared mutable state seeded outside the
// scenario, so any draw from it is unreproducible by construction and —
// worse — racy under the parallel sweep pool. Every random draw in this
// module must come from an explicitly seeded *rand.Rand threaded down
// from the scenario/replica seed. Seeding any source from the wall clock
// (rand.NewSource(time.Now().UnixNano()) and friends) is flagged for the
// same reason.
var GlobalRand = &Analyzer{
	Name: "globalrand",
	Doc: "forbid top-level math/rand functions (rand.Int, rand.Float64, rand.Shuffle, ...) " +
		"and wall-clock-seeded sources anywhere in internal/; randomness must come from " +
		"an explicitly seeded *rand.Rand threaded from the scenario/replica seed.",
	Run: runGlobalRand,
}

// globalRandFuncs lists the package-level draws on the implicit global
// source, per rand package flavor. Constructors (New, NewSource, NewPCG,
// NewZipf) are allowed — they are how seeded randomness is built.
var globalRandFuncs = map[string]map[string]bool{
	"math/rand": {
		"Int": true, "Intn": true, "Int31": true, "Int31n": true,
		"Int63": true, "Int63n": true, "Uint32": true, "Uint64": true,
		"Float32": true, "Float64": true, "Perm": true, "Shuffle": true,
		"Read": true, "Seed": true, "ExpFloat64": true, "NormFloat64": true,
	},
	"math/rand/v2": {
		"Int": true, "IntN": true, "Int32": true, "Int32N": true,
		"Int64": true, "Int64N": true, "Uint": true, "UintN": true,
		"Uint32": true, "Uint32N": true, "Uint64": true, "Uint64N": true,
		"Float32": true, "Float64": true, "Perm": true, "Shuffle": true,
		"N": true, "ExpFloat64": true, "NormFloat64": true,
	},
}

// randConstructors are the seeded-source constructors whose arguments
// must not involve the wall clock.
var randConstructors = map[string]map[string]bool{
	"math/rand":    {"New": true, "NewSource": true},
	"math/rand/v2": {"New": true, "NewPCG": true},
}

func runGlobalRand(pass *Pass) {
	if !IsInternalPackage(pass.Path) {
		return
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.Ident:
				fn := usedPackageFunc(pass, n)
				if fn == nil {
					return true
				}
				set := globalRandFuncs[fn.Pkg().Path()]
				if set == nil || !set[fn.Name()] {
					return true
				}
				pass.Reportf(n.Pos(),
					"use of global %s.%s: draws from the process-global source are unseeded and racy under the sweep pool; thread an explicitly seeded *rand.Rand from the scenario/replica seed",
					fn.Pkg().Path(), fn.Name())
			case *ast.CallExpr:
				fn := calledPackageFunc(pass, n)
				if fn == nil {
					return true
				}
				set := randConstructors[fn.Pkg().Path()]
				if set == nil || !set[fn.Name()] {
					return true
				}
				if pos, found := findWallClockUse(pass, n.Args); found {
					pass.Reportf(pos,
						"wall-clock-seeded RNG (%s.%s seeded from time.Now): seeds must derive from the scenario/replica seed so runs are reproducible",
						fn.Pkg().Path(), fn.Name())
				}
			}
			return true
		})
	}
}

// usedPackageFunc resolves an identifier use to a package-level function
// object (methods excluded), or nil.
func usedPackageFunc(pass *Pass, id *ast.Ident) *types.Func {
	fn, ok := pass.Info.Uses[id].(*types.Func)
	if !ok || fn.Pkg() == nil {
		return nil
	}
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		return nil
	}
	return fn
}

// unparen strips any number of enclosing parentheses.
func unparen(e ast.Expr) ast.Expr {
	for {
		p, ok := e.(*ast.ParenExpr)
		if !ok {
			return e
		}
		e = p.X
	}
}

// calledPackageFunc resolves a call's callee to a package-level function
// object, looking through parens and qualified identifiers.
func calledPackageFunc(pass *Pass, call *ast.CallExpr) *types.Func {
	switch fun := unparen(call.Fun).(type) {
	case *ast.Ident:
		return usedPackageFunc(pass, fun)
	case *ast.SelectorExpr:
		return usedPackageFunc(pass, fun.Sel)
	}
	return nil
}

// findWallClockUse scans the argument expressions for any reference to
// time.Now (directly or via time.Since etc.).
func findWallClockUse(pass *Pass, args []ast.Expr) (pos token.Pos, found bool) {
	for _, arg := range args {
		ast.Inspect(arg, func(n ast.Node) bool {
			id, ok := n.(*ast.Ident)
			if !ok {
				return true
			}
			fn := usedPackageFunc(pass, id)
			if fn != nil && fn.Pkg().Path() == "time" && wallClockFuncs["time"][fn.Name()] {
				pos = id.Pos()
				found = true
				return false
			}
			return !found
		})
		if found {
			break
		}
	}
	return pos, found
}
