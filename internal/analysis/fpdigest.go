package analysis

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"regexp"
	"strings"
)

// FPDigest guards the fingerprint byte contract at its most fragile
// point: floating-point values formatted into digest material. Shortest
// `%v`/`%g` float formatting is the classic silent-fingerprint-drift bug —
// a 1-ulp change in an intermediate flips "0.3" to "0.30000000000000004",
// the digest changes, and nothing says why. Inside kernel-package digest
// sinks (functions whose name contains fingerprint/digest/hash, or fmt
// writes whose writer is a hash.Hash), every float-bearing argument must
// go through a canonical bit-exact formatter: the `%x`/`%X`/`%b` hex/binary
// float verbs, or strconv.FormatFloat/AppendFloat before the value
// reaches fmt.
var FPDigest = &Analyzer{
	Name: "fpdigest",
	Doc: "flag float64/float32 values formatted with %v/%g/%f into fingerprint/digest " +
		"sinks in kernel packages; digests must use bit-exact float encodings " +
		"(%x, %b, strconv.FormatFloat) so fingerprints cannot silently drift.",
	Run: runFPDigest,
}

// digestFuncName marks a function as digest-building by name.
var digestFuncName = regexp.MustCompile(`(?i)(fingerprint|digest|hash)`)

// fmtFormatFuncs maps fmt function name -> index of its format-string
// argument (after any writer). fmtPrintFuncs are the verb-less variants
// that format every operand with %v.
var fmtFormatFuncs = map[string]int{
	"Sprintf": 0, "Fprintf": 1, "Appendf": 1, "Printf": 0, "Errorf": 0,
}
var fmtPrintFuncs = map[string]int{
	"Sprint": 0, "Sprintln": 0, "Fprint": 1, "Fprintln": 1,
	"Append": 1, "Appendln": 1, "Print": 0, "Println": 0,
}

func runFPDigest(pass *Pass) {
	if !IsKernelPackage(pass.Path) {
		return
	}
	for _, f := range pass.Files {
		// Digest context by enclosing function name.
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			inDigestFunc := digestFuncName.MatchString(fd.Name.Name)
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				checkFmtCall(pass, call, inDigestFunc)
				return true
			})
		}
	}
}

// checkFmtCall flags non-canonical float formatting when the call is a
// digest sink: either it sits inside a fingerprint/digest/hash function,
// or its writer argument is a hash.Hash.
func checkFmtCall(pass *Pass, call *ast.CallExpr, inDigestFunc bool) {
	fn := calledPackageFunc(pass, call)
	if fn == nil || fn.Pkg().Path() != "fmt" {
		return
	}
	formatIdx, formatted := fmtFormatFuncs[fn.Name()]
	operandIdx, printed := fmtPrintFuncs[fn.Name()]
	if !formatted && !printed {
		return
	}
	sink := inDigestFunc
	if !sink {
		// fmt.Fprintf(h, ...) where h is a hash.Hash is a digest sink
		// wherever it appears.
		idx := formatIdx
		if printed {
			idx = operandIdx
		}
		if idx == 1 && len(call.Args) > 0 && isHashWriter(pass.TypeOf(call.Args[0])) {
			sink = true
		}
	}
	if !sink {
		return
	}

	if printed {
		// Sprint-style: every operand (past any writer) renders with %v.
		for _, arg := range call.Args[operandIdx:] {
			if t := pass.TypeOf(arg); t != nil && containsFloat(t, nil) {
				reportFloat(pass, arg.Pos(), "%v")
			}
		}
		return
	}

	if formatIdx >= len(call.Args) {
		return
	}
	format, ok := constantString(pass, call.Args[formatIdx])
	args := call.Args[formatIdx+1:]
	if !ok {
		// Non-constant format string: we cannot prove the verbs are
		// canonical, so any float-bearing operand is flagged.
		for _, arg := range args {
			if t := pass.TypeOf(arg); t != nil && containsFloat(t, nil) {
				reportFloat(pass, arg.Pos(), "a non-constant format")
			}
		}
		return
	}
	for _, v := range parseVerbs(format) {
		if v.arg >= len(args) {
			break // malformed call; go vet's printf check owns this
		}
		if canonicalFloatVerb(v.verb) {
			continue
		}
		arg := args[v.arg]
		if t := pass.TypeOf(arg); t != nil && containsFloat(t, nil) {
			reportFloat(pass, arg.Pos(), "%"+string(v.verb))
		}
	}
}

func reportFloat(pass *Pass, pos token.Pos, verb string) {
	pass.Reportf(pos,
		"float value formatted with %s into a digest sink: shortest float formatting drifts silently; use the bit-exact %%x verb or strconv.FormatFloat (`//detlint:allow fpdigest — <reason>` to suppress)",
		verb)
}

// canonicalFloatVerb reports whether the verb renders floats bit-exactly:
// %x/%X (hex float) and %b (binary exponent) are injective encodings of
// the float bits.
func canonicalFloatVerb(verb byte) bool {
	return verb == 'x' || verb == 'X' || verb == 'b'
}

// A fmtVerb is one %-directive in a format string, resolved to the
// operand index it consumes.
type fmtVerb struct {
	verb byte
	arg  int
}

// parseVerbs walks a printf format string, tracking `*` width/precision
// operands, and returns each formatting verb with its operand index.
func parseVerbs(format string) []fmtVerb {
	var out []fmtVerb
	arg := 0
	for i := 0; i < len(format); i++ {
		if format[i] != '%' {
			continue
		}
		i++
		// flags, width, precision — `*` consumes an operand.
		for i < len(format) {
			c := format[i]
			if c == '*' {
				arg++
				i++
				continue
			}
			if strings.IndexByte("+-# 0123456789.", c) >= 0 {
				i++
				continue
			}
			break
		}
		if i >= len(format) {
			break
		}
		verb := format[i]
		if verb == '%' {
			continue
		}
		out = append(out, fmtVerb{verb: verb, arg: arg})
		arg++
	}
	return out
}

// constantString extracts e's compile-time string value.
func constantString(pass *Pass, e ast.Expr) (string, bool) {
	tv, ok := pass.Info.Types[e]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
		return "", false
	}
	return constant.StringVal(tv.Value), true
}

// isHashWriter reports whether t satisfies the hash.Hash method set
// (Write, Sum, Reset, Size, BlockSize), checked structurally so the
// analyzer does not need the hash package's type object.
func isHashWriter(t types.Type) bool {
	if t == nil {
		return false
	}
	need := map[string]bool{"Write": true, "Sum": true, "Reset": true, "Size": true, "BlockSize": true}
	ms := types.NewMethodSet(t)
	for i := 0; i < ms.Len(); i++ {
		delete(need, ms.At(i).Obj().Name())
	}
	return len(need) == 0
}

// containsFloat reports whether a value of type t carries float32/64 or
// complex components that fmt would render with float formatting.
// Recursion covers named types, struct fields, arrays/slices, map keys
// and elements, and pointers; interfaces are unknowable statically and
// not flagged. Types implementing fmt.Stringer or error format through
// their own method, not raw float rendering, and are skipped.
func containsFloat(t types.Type, seen map[types.Type]bool) bool {
	if t == nil {
		return false
	}
	if seen[t] {
		return false
	}
	if seen == nil {
		seen = map[types.Type]bool{}
	}
	seen[t] = true
	if hasStringMethod(t) {
		return false
	}
	switch u := t.Underlying().(type) {
	case *types.Basic:
		return u.Info()&(types.IsFloat|types.IsComplex) != 0
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if containsFloat(u.Field(i).Type(), seen) {
				return true
			}
		}
	case *types.Slice:
		return containsFloat(u.Elem(), seen)
	case *types.Array:
		return containsFloat(u.Elem(), seen)
	case *types.Map:
		return containsFloat(u.Key(), seen) || containsFloat(u.Elem(), seen)
	case *types.Pointer:
		return containsFloat(u.Elem(), seen)
	}
	return false
}

// hasStringMethod reports whether t (or *t) has a String() string or
// Error() string method, meaning fmt delegates formatting to it.
func hasStringMethod(t types.Type) bool {
	for _, name := range [2]string{"String", "Error"} {
		for _, tt := range [2]types.Type{t, types.NewPointer(t)} {
			ms := types.NewMethodSet(tt)
			for i := 0; i < ms.Len(); i++ {
				m := ms.At(i).Obj()
				if m.Name() != name {
					continue
				}
				sig, ok := m.Type().(*types.Signature)
				if ok && sig.Params().Len() == 0 && sig.Results().Len() == 1 {
					if b, ok := sig.Results().At(0).Type().Underlying().(*types.Basic); ok && b.Kind() == types.String {
						return true
					}
				}
			}
		}
	}
	return false
}
