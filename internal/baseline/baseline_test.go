package baseline

import (
	"testing"

	"spotserve/internal/cloud"
	"spotserve/internal/core"
	"spotserve/internal/model"
	"spotserve/internal/sim"
	"spotserve/internal/trace"
	"spotserve/internal/workload"
)

type system interface {
	Install()
	LoadWorkload(reqs []workload.Request, horizon float64)
	Stats() core.Stats
}

func run(t *testing.T, build func(*sim.Simulator, *cloud.Cloud, core.Options) system,
	spec model.Spec, tr trace.Trace, rate float64, seed int64) core.Stats {
	t.Helper()
	s := sim.New()
	cp := cloud.DefaultParams()
	cp.Seed = seed
	cl := cloud.New(s, cp, nil)
	opts := core.DefaultOptions(spec)
	opts.BaseRate = rate
	sys := build(s, cl, opts)
	sys.Install()
	if err := cl.ReplayTrace(tr); err != nil {
		t.Fatal(err)
	}
	reqs, err := workload.Generate(workload.Options{
		Horizon: tr.Horizon, Rate: workload.ConstantRate(rate), CV: 6,
		SeqIn: opts.SeqIn, SeqOut: opts.SeqOut, Seed: seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	sys.LoadWorkload(reqs, tr.Horizon)
	s.Run(tr.Horizon + 900)
	return sys.Stats()
}

func buildReparallel(s *sim.Simulator, cl *cloud.Cloud, o core.Options) system {
	return NewReparallel(s, cl, o)
}

func buildReroute(s *sim.Simulator, cl *cloud.Cloud, o core.Options) system {
	return NewReroute(s, cl, o)
}

func steady(n int, horizon float64) trace.Trace {
	return trace.Trace{Name: "steady", Horizon: horizon,
		Events: []trace.Event{{At: 0, Count: n}}}
}

func TestReparallelSteadyState(t *testing.T) {
	st := run(t, buildReparallel, model.OPT6B7, steady(6, 600), 1.0, 1)
	if st.Completed != st.Submitted {
		t.Fatalf("completed %d of %d", st.Completed, st.Submitted)
	}
	if st.Reloads != 0 {
		t.Fatalf("steady trace caused %d restarts", st.Reloads)
	}
}

func TestRerouteSteadyState(t *testing.T) {
	st := run(t, buildReroute, model.OPT6B7, steady(6, 600), 1.0, 1)
	if st.Completed != st.Submitted {
		t.Fatalf("completed %d of %d", st.Completed, st.Submitted)
	}
}

func TestReparallelRestartsOnPreemption(t *testing.T) {
	st := run(t, buildReparallel, model.GPT20B, trace.AS(), 0.35, 2)
	if st.Reloads == 0 {
		t.Fatal("no restarts on a preemption trace")
	}
	if st.Completed < st.Submitted/2 {
		t.Fatalf("completed only %d of %d", st.Completed, st.Submitted)
	}
	if st.TokensRecovered != 0 {
		t.Fatal("baseline must not recover tokens statefully")
	}
}

func TestRerouteDropsPipelines(t *testing.T) {
	st := run(t, buildReroute, model.GPT20B, trace.AS(), 0.35, 2)
	if st.Completed < st.Submitted/2 {
		t.Fatalf("completed only %d of %d", st.Completed, st.Submitted)
	}
	// Pipeline re-initializations appear as reloads.
	if st.Reloads == 0 {
		t.Fatal("no pipeline re-initializations on a dynamic trace")
	}
}

// TestSpotServeBeatsBaselines is the headline Figure-6 property: on a
// preemption trace, SpotServe's P99 must beat Reparallelization, which in
// turn should generally beat or match Rerouting under overload.
func TestSpotServeBeatsBaselines(t *testing.T) {
	spot := func(s *sim.Simulator, cl *cloud.Cloud, o core.Options) system {
		srv := core.NewServer(s, cl, o)
		return spotAdapter{srv}
	}
	ss := run(t, spot, model.GPT20B, trace.BS(), 0.35, 3)
	rp := run(t, buildReparallel, model.GPT20B, trace.BS(), 0.35, 3)
	rr := run(t, buildReroute, model.GPT20B, trace.BS(), 0.35, 3)
	t.Logf("P99: SpotServe=%.1f Reparallel=%.1f Reroute=%.1f", ss.Latency.P99, rp.Latency.P99, rr.Latency.P99)
	t.Logf("Avg: SpotServe=%.1f Reparallel=%.1f Reroute=%.1f", ss.Latency.Avg, rp.Latency.Avg, rr.Latency.Avg)
	if ss.Latency.P99 >= rp.Latency.P99 {
		t.Errorf("SpotServe P99 %.1f not below Reparallelization %.1f", ss.Latency.P99, rp.Latency.P99)
	}
	if ss.Latency.P99 >= rr.Latency.P99 {
		t.Errorf("SpotServe P99 %.1f not below Rerouting %.1f", ss.Latency.P99, rr.Latency.P99)
	}
	if ss.Latency.Avg >= rp.Latency.Avg {
		t.Errorf("SpotServe Avg %.1f not below Reparallelization %.1f", ss.Latency.Avg, rp.Latency.Avg)
	}
}

type spotAdapter struct{ srv *core.Server }

func (a spotAdapter) Install() { a.srv.Install() }
func (a spotAdapter) LoadWorkload(reqs []workload.Request, horizon float64) {
	a.srv.LoadWorkload(reqs, horizon)
}
func (a spotAdapter) Stats() core.Stats { return a.srv.Stats() }

func TestBaselinesDeterministic(t *testing.T) {
	a := run(t, buildReparallel, model.GPT20B, trace.BS(), 0.35, 4)
	b := run(t, buildReparallel, model.GPT20B, trace.BS(), 0.35, 4)
	if a.Latency.P99 != b.Latency.P99 || a.Completed != b.Completed {
		t.Fatal("Reparallelization not deterministic")
	}
	c := run(t, buildReroute, model.GPT20B, trace.BS(), 0.35, 4)
	d := run(t, buildReroute, model.GPT20B, trace.BS(), 0.35, 4)
	if c.Latency.P99 != d.Latency.P99 || c.Completed != d.Completed {
		t.Fatal("Rerouting not deterministic")
	}
}

func TestRerouteFixedShape(t *testing.T) {
	s := sim.New()
	cl := cloud.New(s, cloud.DefaultParams(), nil)
	opts := core.DefaultOptions(model.GPT20B)
	r := NewReroute(s, cl, opts)
	r.Install()
	if err := cl.ReplayTrace(trace.AS()); err != nil {
		t.Fatal(err)
	}
	reqs, _ := workload.Generate(workload.Options{
		Horizon: 1200, Rate: workload.ConstantRate(0.35), CV: 6,
		SeqIn: 512, SeqOut: 128, Seed: 5,
	})
	r.LoadWorkload(reqs, 1200)
	s.Run(1500)
	if r.Shape().IsZero() {
		t.Fatal("no shape chosen")
	}
	st := r.Stats()
	// Exactly one configuration entry: the shape never changes.
	if len(st.ConfigLog) != 1 {
		t.Fatalf("rerouting changed configuration: %v", st.ConfigLog)
	}
}
