package baseline

import (
	"sort"

	"spotserve/internal/cloud"
	"spotserve/internal/config"
	"spotserve/internal/core"
	"spotserve/internal/cost"
	"spotserve/internal/engine"
	"spotserve/internal/metrics"
	"spotserve/internal/reconfig"
	"spotserve/internal/sim"
	"spotserve/internal/workload"
)

// Reroute is the request-rerouting baseline: a fixed pre-defined optimal
// model-parallel shape whose pipelines are independent. Preempting an
// instance kills the pipelines it hosts; their requests are rerouted to
// surviving pipelines and restarted from scratch. New instances spawn new
// pipelines after a full parameter load.
type Reroute struct {
	sim   *sim.Simulator
	cloud *cloud.Cloud
	est   *cost.Estimator
	eng   *engine.Engine
	rc    *reconfig.Engine
	opts  core.Options

	// shape is the fixed (P, M, B); D floats with availability.
	shape config.Config

	nextPipe int
	pipes    map[int]*reroutePipe
	queue    []*engine.RequestState
	// used marks GPUs consumed by live or initializing pipelines.
	used map[int64]bool

	stats core.Stats
}

type reroutePipe struct {
	id   int
	pipe *engine.Pipeline
	gpus []*cloud.GPU
	// initializing pipelines hold GPUs but serve nothing yet.
	initializing bool
}

// NewReroute builds the baseline.
func NewReroute(s *sim.Simulator, cl *cloud.Cloud, opts core.Options) *Reroute {
	est := cost.Shared(opts.CostParams, opts.Spec)
	r := &Reroute{
		sim:   s,
		cloud: cl,
		est:   est,
		rc:    baselineEngine(est, opts),
		opts:  opts,
		pipes: map[int]*reroutePipe{},
		used:  map[int64]bool{},
	}
	r.eng = engine.New(s, est, (*rerouteHooks)(r))
	r.eng.NoFastForward = opts.DisableFastForward
	return r
}

// Install registers the server as the cloud's listener.
func (r *Reroute) Install() { r.cloud.SetListener((*rerouteEvents)(r)) }

// Stats returns the serving outcome.
func (r *Reroute) Stats() core.Stats {
	st := r.stats
	st.CostUSD = r.cloud.CostUSD()
	if st.Latencies != nil {
		st.Latency = st.Latencies.Summarize()
	}
	st.ReconfigCache = r.rc.CacheStats()
	return st
}

// Shape returns the fixed parallel shape.
func (r *Reroute) Shape() config.Config { return r.shape }

// LoadWorkload schedules arrivals; the fixed shape is chosen at bootstrap
// exactly as SpotServe would for the initial fleet (fair comparison).
func (r *Reroute) LoadWorkload(reqs []workload.Request, horizon float64) {
	if r.stats.Latencies == nil {
		r.stats.Latencies = &metrics.Latencies{}
	}
	for _, q := range reqs {
		q := q
		r.stats.Submitted++
		r.sim.At(q.At, func() {
			r.queue = append(r.queue, &engine.RequestState{Req: q})
			r.dispatch()
		})
	}
	r.sim.At(0, func() { r.bootstrap() })
}

func (r *Reroute) bootstrap() {
	// GPU-denominated fleet measure + speed/memory floors: mixed fleets
	// must not make the baseline plan for devices that do not exist.
	var gpus []*cloud.GPU
	for _, inst := range r.cloud.Alive() {
		if inst.State == cloud.Running {
			gpus = append(gpus, inst.GPUs...)
		}
	}
	prop := r.rc.Propose(reconfig.Request{
		Alpha:      r.opts.BaseRate,
		GPUsAvail:  len(gpus),
		MaxGPUs:    len(gpus),
		SpeedFloor: speedFloor(gpus),
		MemFloor:   memFloor(gpus),
	})
	if prop.Config.IsZero() {
		return
	}
	r.shape = config.Config{D: 1, P: prop.Config.P, M: prop.Config.M, B: prop.Config.B}
	r.stats.ConfigLog = append(r.stats.ConfigLog, core.ConfigChange{
		At: 0, Config: prop.Config, Reason: "bootstrap",
	})
	// Initial pipelines come up instantly (pre-deployed system).
	for r.spawnPipeline(true) {
	}
	r.dispatch()
}

// freeGPUs lists running-instance GPUs not used by any pipeline.
func (r *Reroute) freeGPUs() []*cloud.GPU {
	var out []*cloud.GPU
	for _, inst := range r.cloud.Alive() {
		if inst.State != cloud.Running {
			continue
		}
		for _, g := range inst.GPUs {
			if !r.used[g.ID] {
				out = append(out, g)
			}
		}
	}
	return out
}

// spawnPipeline builds one new pipeline from free GPUs. Instant pipelines
// (bootstrap) serve immediately; otherwise the pipeline pays the full
// parameter-load initialization before serving. Returns false when there
// are not enough free GPUs.
func (r *Reroute) spawnPipeline(instant bool) bool {
	if r.shape.IsZero() {
		return false
	}
	need := r.shape.GPUsPerPipeline()
	free := r.freeGPUs()
	if len(free) < need {
		return false
	}
	gpus := free[:need]
	id := r.nextPipe
	r.nextPipe++
	bind := map[config.Position]*cloud.GPU{}
	i := 0
	for p := 0; p < r.shape.P; p++ {
		for m := 0; m < r.shape.M; m++ {
			bind[config.Position{D: id, P: p, M: m}] = gpus[i]
			i++
		}
	}
	cfg := r.shape
	cfg.D = 1
	pipe, err := r.eng.NewPipeline(id, cfg, bind)
	if err != nil {
		panic(err)
	}
	if slow := core.PipelineSlowdown(bind); slow != 1 {
		pipe.SetSlowdown(slow)
	}
	rp := &reroutePipe{id: id, pipe: pipe, gpus: gpus, initializing: !instant}
	r.pipes[id] = rp
	for _, g := range gpus {
		r.used[g.ID] = true
	}
	if !instant {
		r.stats.Reloads++
		delay := r.est.ReloadTime(r.shape.P, r.shape.M)
		r.sim.After(delay, func() {
			if r.pipes[id] != rp {
				return // killed while initializing
			}
			rp.initializing = false
			r.dispatch()
		})
	}
	return true
}

// killPipelinesOn destroys pipelines touching the instance, rerouting and
// restarting their requests.
func (r *Reroute) killPipelinesOn(inst *cloud.Instance) {
	var requeue []*engine.RequestState
	ids := make([]int, 0, len(r.pipes))
	for id := range r.pipes {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	for _, id := range ids {
		rp := r.pipes[id]
		hit := false
		for _, g := range rp.gpus {
			if g.Inst.ID == inst.ID {
				hit = true
				break
			}
		}
		if !hit {
			continue
		}
		if rp.pipe.Busy() {
			b := rp.pipe.Abort()
			for _, q := range b.Requests {
				if q.Done() {
					continue
				}
				q.Committed = 0
				q.Restarts++
				requeue = append(requeue, q)
			}
		}
		for _, g := range rp.gpus {
			delete(r.used, g.ID)
		}
		delete(r.pipes, id)
	}
	// Rerouted requests go to the queue front (they arrived earliest).
	r.queue = append(requeue, r.queue...)
	r.dispatch()
}

func (r *Reroute) dispatch() {
	ids := make([]int, 0, len(r.pipes))
	for id := range r.pipes {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	for _, id := range ids {
		rp := r.pipes[id]
		if rp.initializing || rp.pipe.Busy() || len(r.queue) == 0 {
			continue
		}
		n := r.shape.B
		if n > len(r.queue) {
			n = len(r.queue)
		}
		b := &engine.Batch{Requests: r.queue[:n]}
		r.queue = append([]*engine.RequestState(nil), r.queue[n:]...)
		rp.pipe.Start(b)
	}
}

type rerouteEvents Reroute

func (e *rerouteEvents) InstanceReady(inst *cloud.Instance) {
	r := (*Reroute)(e)
	if r.stats.Latencies == nil {
		return
	}
	if r.shape.IsZero() {
		if r.sim.Now() > 0 {
			r.bootstrap()
		}
		return
	}
	for r.spawnPipeline(false) {
	}
}

func (e *rerouteEvents) PreemptionNotice(inst *cloud.Instance, deadline float64) {
	// Reactive baseline: the grace period is unused; pipelines run until
	// the instance actually disappears and then lose everything.
}

func (e *rerouteEvents) InstanceTerminated(inst *cloud.Instance) {
	r := (*Reroute)(e)
	for _, g := range inst.GPUs {
		r.eng.DropDaemon(g.ID)
	}
	if r.stats.Latencies == nil {
		return
	}
	r.killPipelinesOn(inst)
	// Freed partial instances may combine into a new pipeline.
	for r.spawnPipeline(false) {
	}
}

type rerouteHooks Reroute

// AllowFastForward implements engine.FastForwarder: rerouting never pauses
// through IterationDone (dead pipelines are aborted), so every run may
// batch its iteration commits.
func (h *rerouteHooks) AllowFastForward(p *engine.Pipeline) bool { return true }

func (h *rerouteHooks) IterationDone(p *engine.Pipeline) bool { return true }

func (h *rerouteHooks) RequestDone(p *engine.Pipeline, q *engine.RequestState) {
	r := (*Reroute)(h)
	r.stats.Completed++
	r.stats.Latencies.Add(q.DoneAt - q.Req.At)
	r.stats.PerRequest.Add(q.Req.At, q.DoneAt-q.Req.At)
}

func (h *rerouteHooks) BatchDone(p *engine.Pipeline) {
	(*Reroute)(h).dispatch()
}

func (h *rerouteHooks) BatchPaused(p *engine.Pipeline, b *engine.Batch) {}
