// Package baseline implements the two comparison systems of §6.1, built on
// the same inference engine and cloud substrate as SpotServe:
//
//   - Reparallelization (Varuna-style): adapts the parallel configuration
//     like SpotServe's controller, but realizes every change by restarting
//     all engines — parameters reload from storage and interrupted requests
//     recompute from scratch.
//   - Rerouting (MArk-style): a fixed model-parallel shape; whole inference
//     pipelines are dropped on preemption and re-initialized on
//     acquisition, with interrupted requests rerouted to surviving
//     pipelines and restarted.
package baseline

import (
	"sort"

	"spotserve/internal/cloud"
	"spotserve/internal/config"
	"spotserve/internal/core"
	"spotserve/internal/cost"
	"spotserve/internal/engine"
	"spotserve/internal/metrics"
	"spotserve/internal/reconfig"
	"spotserve/internal/sim"
	"spotserve/internal/workload"
)

// Reparallel is the Reparallelization baseline server.
type Reparallel struct {
	sim   *sim.Simulator
	cloud *cloud.Cloud
	est   *cost.Estimator
	eng   *engine.Engine
	rc    *reconfig.Engine
	opts  core.Options

	cfg        config.Config
	pipes      map[int]*engine.Pipeline
	queue      []*engine.RequestState
	restarting bool
	epoch      int
	dying      map[int64]bool

	stats core.Stats
}

// NewReparallel builds the baseline on a simulator and cloud.
func NewReparallel(s *sim.Simulator, cl *cloud.Cloud, opts core.Options) *Reparallel {
	est := cost.Shared(opts.CostParams, opts.Spec)
	r := &Reparallel{
		sim:   s,
		cloud: cl,
		est:   est,
		rc:    baselineEngine(est, opts),
		opts:  opts,
		pipes: map[int]*engine.Pipeline{},
		dying: map[int64]bool{},
	}
	r.eng = engine.New(s, est, (*reparallelHooks)(r))
	r.eng.NoFastForward = opts.DisableFastForward
	return r
}

// Install registers the server as the cloud's listener.
func (r *Reparallel) Install() { r.cloud.SetListener((*reparallelEvents)(r)) }

// Stats returns the serving outcome.
func (r *Reparallel) Stats() core.Stats {
	st := r.stats
	st.CostUSD = r.cloud.CostUSD()
	if st.Latencies != nil {
		st.Latency = st.Latencies.Summarize()
	}
	st.ReconfigCache = r.rc.CacheStats()
	return st
}

// Config returns the current configuration.
func (r *Reparallel) Config() config.Config { return r.cfg }

// LoadWorkload schedules arrivals and monitoring.
func (r *Reparallel) LoadWorkload(reqs []workload.Request, horizon float64) {
	if r.stats.Latencies == nil {
		r.stats.Latencies = &metrics.Latencies{}
	}
	for _, q := range reqs {
		q := q
		r.stats.Submitted++
		r.sim.At(q.At, func() {
			r.queue = append(r.queue, &engine.RequestState{Req: q})
			r.dispatch()
		})
	}
	for t := r.opts.CheckInterval; t < horizon; t += r.opts.CheckInterval {
		t := t
		r.sim.At(t, func() { r.workloadCheck() })
	}
	r.sim.At(0, func() { r.bootstrap() })
}

func (r *Reparallel) usableGPUs() []*cloud.GPU {
	var out []*cloud.GPU
	for _, inst := range r.cloud.Alive() {
		if r.dying[inst.ID] || inst.State != cloud.Running {
			continue
		}
		out = append(out, inst.GPUs...)
	}
	return out
}

func (r *Reparallel) propose() reconfig.Proposal {
	gpus := r.usableGPUs()
	// Same required-rate estimate as SpotServe's controller: base rate
	// plus backlog pressure (fair comparison — only the reconfiguration
	// mechanism differs). Like the server, the fleet is measured in GPUs
	// and the request carries the slowest/smallest usable device floors,
	// so mixed fleets are planned with the same arithmetic — and the same
	// memoized pipeline — as SpotServe.
	alpha := r.opts.BaseRate + float64(len(r.queue))/120.0
	req := reconfig.Request{
		Alpha:      alpha,
		GPUsAvail:  len(gpus),
		MaxGPUs:    len(gpus),
		SpeedFloor: speedFloor(gpus),
		MemFloor:   memFloor(gpus),
	}
	if r.opts.Features.AllowOnDemand {
		req.MaxGPUs = r.opts.MaxInstances * r.opts.CostParams.GPUsPerInstance
	}
	return r.rc.Propose(req)
}

// speedFloor returns the slowest GPU's speed multiplier (1.0 when empty or
// homogeneous) — the conservative correction mixed fleets plan with.
func speedFloor(gpus []*cloud.GPU) float64 {
	floor, first := 1.0, true
	for _, g := range gpus {
		if sp := g.Inst.GPUSpeed(); first || sp < floor {
			floor, first = sp, false
		}
	}
	return floor
}

// memFloor returns the smallest usable instance's memory multiplier (1.0
// when empty or homogeneous) — feasibility is checked against it.
func memFloor(gpus []*cloud.GPU) float64 {
	floor, first := 1.0, true
	for _, g := range gpus {
		if ms := g.Inst.MemScale(); first || ms < floor {
			floor, first = ms, false
		}
	}
	return floor
}

// baselineEngine builds a baseline's reconfiguration pipeline with the
// same optimizer bounds as SpotServe's server — both comparison systems
// price configurations through the identical (and identically memoized)
// machinery, so only the reconfiguration *mechanism* differs.
func baselineEngine(est *cost.Estimator, opts core.Options) *reconfig.Engine {
	return reconfig.NewEngine(reconfig.Options{
		Spec:            opts.Spec,
		Est:             est,
		Limits:          opts.Limits,
		GPUsPerInstance: opts.CostParams.GPUsPerInstance,
		MaxInstances:    opts.MaxInstances,
		SeqIn:           opts.SeqIn,
		SeqOut:          opts.SeqOut,
		DisableCache:    opts.DisableReconfigCache,
	})
}

func (r *Reparallel) bootstrap() {
	prop := r.propose()
	r.manageFleet(prop)
	target := prop.Config
	gpus := r.usableGPUs()
	if target.GPUs() > len(gpus) {
		target = r.rc.Propose(reconfig.Request{
			Alpha:      r.opts.BaseRate,
			GPUsAvail:  len(gpus),
			MaxGPUs:    len(gpus),
			SpeedFloor: speedFloor(gpus),
			MemFloor:   memFloor(gpus),
		}).Config
	}
	if target.IsZero() || target.GPUs() > len(gpus) {
		return
	}
	r.install(target, "bootstrap")
	r.dispatch()
}

func (r *Reparallel) manageFleet(prop reconfig.Proposal) {
	if !r.opts.Features.AllowOnDemand {
		return
	}
	haveGPUs := r.cloud.GPUCount(func(id int64) bool { return r.dying[id] })
	if prop.WantGPUs > haveGPUs {
		r.stats.OnDemandAllocated += len(r.cloud.AllocOnDemandGPUs(prop.WantGPUs - haveGPUs))
	}
}

// install binds the configuration over the usable GPUs in ID order (no
// device mapping — contexts are rebuilt from storage anyway).
func (r *Reparallel) install(cfg config.Config, reason string) {
	gpus := r.usableGPUs()
	r.cfg = cfg
	r.pipes = map[int]*engine.Pipeline{}
	i := 0
	for d := 0; d < cfg.D; d++ {
		bind := map[config.Position]*cloud.GPU{}
		for p := 0; p < cfg.P; p++ {
			for m := 0; m < cfg.M; m++ {
				bind[config.Position{D: d, P: p, M: m}] = gpus[i]
				i++
			}
		}
		pipe, err := r.eng.NewPipeline(d, cfg, bind)
		if err != nil {
			panic(err)
		}
		if slow := core.PipelineSlowdown(bind); slow != 1 {
			pipe.SetSlowdown(slow)
		}
		r.pipes[d] = pipe
	}
	r.stats.ConfigLog = append(r.stats.ConfigLog, core.ConfigChange{
		At: r.sim.Now(), Config: cfg, Reason: reason,
	})
}

// restart aborts everything and re-initializes the whole deployment: the
// defining cost of this baseline. Interrupted requests lose all progress.
func (r *Reparallel) restart(reason string) {
	r.epoch++
	epoch := r.epoch
	var requeue []*engine.RequestState
	ids := make([]int, 0, len(r.pipes))
	for id := range r.pipes {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	for _, id := range ids {
		pipe := r.pipes[id]
		if !pipe.Busy() {
			continue
		}
		b := pipe.Abort()
		for _, q := range b.Requests {
			if q.Done() {
				continue
			}
			q.Committed = 0
			q.Restarts++
			requeue = append(requeue, q)
		}
	}
	r.queue = append(requeue, r.queue...)
	r.pipes = map[int]*engine.Pipeline{}
	r.cfg = config.Zero
	r.restarting = true

	prop := r.propose()
	r.manageFleet(prop)
	target := prop.Config
	gpus := r.usableGPUs()
	if target.GPUs() > len(gpus) {
		target = reconfig.FitToInstances(target, len(gpus))
	}
	if target.IsZero() {
		r.restarting = false
		return
	}
	r.stats.Reloads++
	delay := r.est.ReloadTime(target.P, target.M)
	r.sim.After(delay, func() {
		if epoch != r.epoch {
			return
		}
		r.restarting = false
		gpus := r.usableGPUs()
		tgt := target
		if tgt.GPUs() > len(gpus) {
			tgt = reconfig.FitToInstances(tgt, len(gpus))
		}
		if tgt.IsZero() {
			return
		}
		r.install(tgt, reason)
		r.dispatch()
	})
}

func (r *Reparallel) dispatch() {
	if r.restarting || r.cfg.IsZero() {
		return
	}
	ids := make([]int, 0, len(r.pipes))
	for id := range r.pipes {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	for _, id := range ids {
		pipe := r.pipes[id]
		if pipe.Busy() || len(r.queue) == 0 {
			continue
		}
		n := r.cfg.B
		if n > len(r.queue) {
			n = len(r.queue)
		}
		b := &engine.Batch{Requests: r.queue[:n]}
		r.queue = append([]*engine.RequestState(nil), r.queue[n:]...)
		pipe.Start(b)
	}
}

func (r *Reparallel) workloadCheck() {
	if r.restarting || r.cfg.IsZero() {
		return
	}
	alpha := r.opts.BaseRate
	phi := r.est.Throughput(r.cfg, r.opts.SeqIn, r.opts.SeqOut)
	if phi >= alpha*0.98 {
		return
	}
	prop := r.propose()
	if prop.Config.IsZero() || prop.Config == r.cfg {
		return
	}
	r.restart("workload")
}

type reparallelEvents Reparallel

func (e *reparallelEvents) InstanceReady(inst *cloud.Instance) {
	r := (*Reparallel)(e)
	if r.stats.Latencies == nil || r.restarting {
		return
	}
	if r.cfg.IsZero() {
		if r.sim.Now() == 0 {
			return // bootstrap event handles the initial fleet
		}
		r.restart("recovery")
		return
	}
	prop := r.propose()
	if prop.Config == r.cfg || prop.Config.IsZero() {
		return
	}
	if prop.Config.GPUs() > len(r.usableGPUs()) {
		return
	}
	r.restart("acquisition")
}

func (e *reparallelEvents) PreemptionNotice(inst *cloud.Instance, deadline float64) {
	r := (*Reparallel)(e)
	r.dying[inst.ID] = true
	if r.stats.Latencies == nil {
		return
	}
	inUse := false
	for _, pipe := range r.pipes {
		for _, g := range pipe.GPUs {
			if g.Inst.ID == inst.ID {
				inUse = true
			}
		}
	}
	if !inUse && !r.cfg.IsZero() {
		return
	}
	r.restart("preemption")
}

func (e *reparallelEvents) InstanceTerminated(inst *cloud.Instance) {
	r := (*Reparallel)(e)
	delete(r.dying, inst.ID)
	for _, g := range inst.GPUs {
		r.eng.DropDaemon(g.ID)
	}
}

type reparallelHooks Reparallel

// AllowFastForward implements engine.FastForwarder: this baseline never
// pauses through IterationDone (it aborts pipelines outright on restart),
// so every run may batch its iteration commits.
func (h *reparallelHooks) AllowFastForward(p *engine.Pipeline) bool { return true }

func (h *reparallelHooks) IterationDone(p *engine.Pipeline) bool { return true }

func (h *reparallelHooks) RequestDone(p *engine.Pipeline, q *engine.RequestState) {
	r := (*Reparallel)(h)
	r.stats.Completed++
	r.stats.Latencies.Add(q.DoneAt - q.Req.At)
	r.stats.PerRequest.Add(q.Req.At, q.DoneAt-q.Req.At)
}

func (h *reparallelHooks) BatchDone(p *engine.Pipeline) {
	(*Reparallel)(h).dispatch()
}

func (h *reparallelHooks) BatchPaused(p *engine.Pipeline, b *engine.Batch) {}
