package metrics

import (
	"fmt"
	"math"
)

// Agg is a mergeable scalar aggregate: count, sum, sum of squares and
// min/max. Observations can be folded in one at a time with Add or combined
// across partial aggregates with Merge; both orders yield the same moments,
// which is what lets the parallel sweep harness aggregate per-seed replicas
// concurrency-safely and still report deterministic bands.
type Agg struct {
	N          int
	Sum, SumSq float64
	MinV, MaxV float64
}

// Add folds one observation into the aggregate. Non-finite observations
// (NaN, ±Inf) are dropped: a single poisoned sample would otherwise turn
// every derived moment into NaN and propagate through merged partials into
// rendered bands and calibration reports, where NaN also breaks JSON
// encoding. Dropping keeps the aggregate a faithful summary of the finite
// samples; the property tests pin this.
func (a *Agg) Add(v float64) {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return
	}
	if a.N == 0 || v < a.MinV {
		a.MinV = v
	}
	if a.N == 0 || v > a.MaxV {
		a.MaxV = v
	}
	a.N++
	a.Sum += v
	a.SumSq += v * v
}

// Merge folds another aggregate into this one.
func (a *Agg) Merge(b Agg) {
	if b.N == 0 {
		return
	}
	if a.N == 0 || b.MinV < a.MinV {
		a.MinV = b.MinV
	}
	if a.N == 0 || b.MaxV > a.MaxV {
		a.MaxV = b.MaxV
	}
	a.N += b.N
	a.Sum += b.Sum
	a.SumSq += b.SumSq
}

// Mean returns the average observation, or 0 when empty.
func (a Agg) Mean() float64 {
	if a.N == 0 {
		return 0
	}
	return a.Sum / float64(a.N)
}

// Min returns the smallest observation, or 0 when empty.
func (a Agg) Min() float64 { return a.MinV }

// Max returns the largest observation, or 0 when empty.
func (a Agg) Max() float64 { return a.MaxV }

// Variance returns the sample variance (n−1 denominator), or 0 with fewer
// than two observations. Negative rounding residue is clamped to zero.
func (a Agg) Variance() float64 {
	if a.N < 2 {
		return 0
	}
	m := a.Mean()
	v := (a.SumSq - float64(a.N)*m*m) / float64(a.N-1)
	if v < 0 {
		v = 0
	}
	return v
}

// Stderr returns the standard error of the mean, or 0 with fewer than two
// observations.
func (a Agg) Stderr() float64 {
	if a.N < 2 {
		return 0
	}
	return math.Sqrt(a.Variance() / float64(a.N))
}

// Band summarizes the aggregate as a replication band for rendering.
type Band struct {
	N                      int
	Mean, Min, Max, Stderr float64
}

// Band converts the aggregate to its rendering form.
func (a Agg) Band() Band {
	return Band{N: a.N, Mean: a.Mean(), Min: a.Min(), Max: a.Max(), Stderr: a.Stderr()}
}

// fmtAdaptive renders a band value without destroying small magnitudes:
// values that %.1f would round to a bare "0.0" or "0.1" (sub-0.1 stderrs
// on tight bands, $/1k-token costs) switch to three significant digits,
// everything else keeps the compact one-decimal form. Exact zero stays
// "0.0" — it is a real zero, not a rounding casualty.
func fmtAdaptive(v float64) string {
	if a := math.Abs(v); a != 0 && a < 0.1 {
		return fmt.Sprintf("%.3g", v)
	}
	return fmt.Sprintf("%.1f", v)
}

// String renders "mean ±stderr [min,max] n=N" (or just the mean for a
// single observation), with adaptive precision so sub-0.1 units survive
// rendering and the replication count is always visible.
func (b Band) String() string {
	if b.N < 2 {
		return fmtAdaptive(b.Mean)
	}
	return fmt.Sprintf("%s ±%s [%s,%s] n=%d",
		fmtAdaptive(b.Mean), fmtAdaptive(b.Stderr), fmtAdaptive(b.Min), fmtAdaptive(b.Max), b.N)
}
