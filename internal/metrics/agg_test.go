package metrics

import (
	"math"
	"testing"
)

func TestAggMoments(t *testing.T) {
	var a Agg
	for _, v := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		a.Add(v)
	}
	if a.N != 8 {
		t.Fatalf("N = %d", a.N)
	}
	if a.Mean() != 5 {
		t.Errorf("mean = %v, want 5", a.Mean())
	}
	if a.Min() != 2 || a.Max() != 9 {
		t.Errorf("min,max = %v,%v, want 2,9", a.Min(), a.Max())
	}
	// Sample variance of the classic dataset is 32/7.
	if got, want := a.Variance(), 32.0/7; math.Abs(got-want) > 1e-9 {
		t.Errorf("variance = %v, want %v", got, want)
	}
	if got, want := a.Stderr(), math.Sqrt(32.0/7/8); math.Abs(got-want) > 1e-9 {
		t.Errorf("stderr = %v, want %v", got, want)
	}
}

// TestAggMergeEquivalence is the property the parallel sweep relies on:
// folding observations through any partition of Merges equals folding them
// serially through Add.
func TestAggMergeEquivalence(t *testing.T) {
	vals := []float64{3.5, -1, 0, 12, 7.25, 7.25, 100, -4.5, 2}
	var serial Agg
	for _, v := range vals {
		serial.Add(v)
	}
	for split := 0; split <= len(vals); split++ {
		var left, right Agg
		for _, v := range vals[:split] {
			left.Add(v)
		}
		for _, v := range vals[split:] {
			right.Add(v)
		}
		merged := left
		merged.Merge(right)
		if merged != serial {
			t.Errorf("split %d: merged %+v != serial %+v", split, merged, serial)
		}
	}
}

func TestAggMergeEmpty(t *testing.T) {
	var a, empty Agg
	a.Add(5)
	before := a
	a.Merge(empty)
	if a != before {
		t.Errorf("merging empty changed aggregate: %+v", a)
	}
	empty.Merge(a)
	if empty != a {
		t.Errorf("merge into empty: %+v != %+v", empty, a)
	}
}

func TestAggEmptyAndSingle(t *testing.T) {
	var a Agg
	if a.Mean() != 0 || a.Variance() != 0 || a.Stderr() != 0 {
		t.Errorf("empty aggregate not all-zero: %+v", a)
	}
	a.Add(3)
	if a.Variance() != 0 || a.Stderr() != 0 {
		t.Errorf("single observation should have zero spread: %+v", a)
	}
	b := a.Band()
	if b.N != 1 || b.Mean != 3 || b.Min != 3 || b.Max != 3 {
		t.Errorf("band = %+v", b)
	}
	if s := b.String(); s != "3.0" {
		t.Errorf("single-point band renders %q, want \"3.0\"", s)
	}
}

func TestBandString(t *testing.T) {
	var a Agg
	a.Add(10)
	a.Add(14)
	got := a.Band().String()
	want := "12.0 ±2.0 [10.0,14.0]"
	if got != want {
		t.Errorf("band = %q, want %q", got, want)
	}
}
