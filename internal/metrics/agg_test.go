package metrics

import (
	"math"
	"math/rand"
	"sort"
	"testing"
)

func TestAggMoments(t *testing.T) {
	var a Agg
	for _, v := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		a.Add(v)
	}
	if a.N != 8 {
		t.Fatalf("N = %d", a.N)
	}
	if a.Mean() != 5 {
		t.Errorf("mean = %v, want 5", a.Mean())
	}
	if a.Min() != 2 || a.Max() != 9 {
		t.Errorf("min,max = %v,%v, want 2,9", a.Min(), a.Max())
	}
	// Sample variance of the classic dataset is 32/7.
	if got, want := a.Variance(), 32.0/7; math.Abs(got-want) > 1e-9 {
		t.Errorf("variance = %v, want %v", got, want)
	}
	if got, want := a.Stderr(), math.Sqrt(32.0/7/8); math.Abs(got-want) > 1e-9 {
		t.Errorf("stderr = %v, want %v", got, want)
	}
}

// TestAggMergeEquivalence is the property the parallel sweep relies on:
// folding observations through any partition of Merges equals folding them
// serially through Add.
func TestAggMergeEquivalence(t *testing.T) {
	vals := []float64{3.5, -1, 0, 12, 7.25, 7.25, 100, -4.5, 2}
	var serial Agg
	for _, v := range vals {
		serial.Add(v)
	}
	for split := 0; split <= len(vals); split++ {
		var left, right Agg
		for _, v := range vals[:split] {
			left.Add(v)
		}
		for _, v := range vals[split:] {
			right.Add(v)
		}
		merged := left
		merged.Merge(right)
		if merged != serial {
			t.Errorf("split %d: merged %+v != serial %+v", split, merged, serial)
		}
	}
}

// TestAggMergePropertyArbitrarySplits is the stronger property the sweep
// harness relies on: for random value sets partitioned into arbitrarily
// many chunks (empty chunks included) and merged in arbitrary orders, the
// result — every moment and min/max — must equal serial Add-of-all. Agg is
// plain additions over a fixed fold order, so the equality is exact, not
// approximate.
func TestAggMergePropertyArbitrarySplits(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 200; trial++ {
		n := rng.Intn(40)
		vals := make([]float64, n)
		for i := range vals {
			vals[i] = (rng.Float64() - 0.5) * math.Pow(10, float64(rng.Intn(7)-3))
		}
		var serial Agg
		for _, v := range vals {
			serial.Add(v)
		}
		// Partition into k chunks at sorted random cut points (some empty).
		k := 1 + rng.Intn(6)
		cuts := make([]int, k-1)
		for i := range cuts {
			cuts[i] = rng.Intn(n + 1)
		}
		sort.Ints(cuts)
		bounds := append(append([]int{0}, cuts...), n)
		parts := make([]Agg, k)
		for i := 0; i < k; i++ {
			for _, v := range vals[bounds[i]:bounds[i+1]] {
				parts[i].Add(v)
			}
		}
		// Merge the partials in a shuffled order.
		rng.Shuffle(len(parts), func(i, j int) { parts[i], parts[j] = parts[j], parts[i] })
		var merged Agg
		for _, p := range parts {
			merged.Merge(p)
		}
		// Moments are sums folded in a possibly different order; compare
		// exactly where the arithmetic is order-free (N, min, max) and to
		// within an ulp-scale tolerance for the float sums.
		if merged.N != serial.N || merged.MinV != serial.MinV || merged.MaxV != serial.MaxV {
			t.Fatalf("trial %d: N/min/max diverge: merged %+v serial %+v", trial, merged, serial)
		}
		if !closeULP(merged.Sum, serial.Sum) || !closeULP(merged.SumSq, serial.SumSq) {
			t.Fatalf("trial %d: moments diverge: merged %+v serial %+v", trial, merged, serial)
		}
	}
}

// closeULP compares float sums folded in different orders.
func closeULP(a, b float64) bool {
	if a == b {
		return true
	}
	scale := math.Max(math.Abs(a), math.Abs(b))
	return math.Abs(a-b) <= 1e-12*scale
}

func TestAggMergeEmpty(t *testing.T) {
	var a, empty Agg
	a.Add(5)
	before := a
	a.Merge(empty)
	if a != before {
		t.Errorf("merging empty changed aggregate: %+v", a)
	}
	empty.Merge(a)
	if empty != a {
		t.Errorf("merge into empty: %+v != %+v", empty, a)
	}
}

func TestAggEmptyAndSingle(t *testing.T) {
	var a Agg
	if a.Mean() != 0 || a.Variance() != 0 || a.Stderr() != 0 {
		t.Errorf("empty aggregate not all-zero: %+v", a)
	}
	a.Add(3)
	if a.Variance() != 0 || a.Stderr() != 0 {
		t.Errorf("single observation should have zero spread: %+v", a)
	}
	b := a.Band()
	if b.N != 1 || b.Mean != 3 || b.Min != 3 || b.Max != 3 {
		t.Errorf("band = %+v", b)
	}
	if s := b.String(); s != "3.0" {
		t.Errorf("single-point band renders %q, want \"3.0\"", s)
	}
}

func TestBandString(t *testing.T) {
	var a Agg
	a.Add(10)
	a.Add(14)
	got := a.Band().String()
	want := "12.0 ±2.0 [10.0,14.0] n=2"
	if got != want {
		t.Errorf("band = %q, want %q", got, want)
	}
}

// TestBandStringAdaptivePrecision is the regression gate for the
// unit-destroying rendering bug: sub-0.1 values (tight-band stderrs, $/1k
// token costs) used to print as "0.0 ±0.0". Adaptive precision must keep
// their leading significant digits, while ≥ 0.1 values keep the compact
// one-decimal form and exact zeros stay "0.0".
func TestBandStringAdaptivePrecision(t *testing.T) {
	var a Agg
	a.Add(0.064)
	a.Add(0.072)
	got := a.Band().String()
	want := "0.068 ±0.004 [0.064,0.072] n=2"
	if got != want {
		t.Errorf("small band = %q, want %q", got, want)
	}
	// A single small observation keeps its digits too.
	var s Agg
	s.Add(0.0123)
	if got := s.Band().String(); got != "0.0123" {
		t.Errorf("single small = %q, want \"0.0123\"", got)
	}
	// Mixed magnitudes: big mean in one-decimal form, tiny stderr adaptive.
	var m Agg
	m.Add(99.999)
	m.Add(100.001)
	if got := m.Band().String(); got != "100.0 ±0.001 [100.0,100.0] n=2" {
		t.Errorf("mixed band = %q", got)
	}
	// Exact zeros are real zeros, not rounding casualties.
	var z Agg
	z.Add(0)
	z.Add(0)
	if got := z.Band().String(); got != "0.0 ±0.0 [0.0,0.0] n=2" {
		t.Errorf("zero band = %q", got)
	}
	// Negative small values keep their sign and digits.
	var n Agg
	n.Add(-0.031)
	if got := n.Band().String(); got != "-0.031" {
		t.Errorf("negative small = %q", got)
	}
}

// TestAggNonFiniteGuard pins Add's non-finite drop: NaN and ±Inf
// observations must leave the aggregate untouched, so a single poisoned
// sample can never NaN-poison the moments, the rendered band, or a JSON
// encoding downstream.
func TestAggNonFiniteGuard(t *testing.T) {
	var a Agg
	for _, v := range []float64{math.NaN(), math.Inf(1), math.Inf(-1)} {
		a.Add(v)
	}
	if a != (Agg{}) {
		t.Fatalf("non-finite Adds changed an empty aggregate: %+v", a)
	}
	a.Add(5)
	before := a
	a.Add(math.NaN())
	a.Add(math.Inf(1))
	a.Add(math.Inf(-1))
	if a != before {
		t.Fatalf("non-finite Adds changed a populated aggregate: %+v vs %+v", a, before)
	}
	if s := a.Band().String(); s != "5.0" {
		t.Errorf("band after poisoned Adds renders %q, want \"5.0\"", s)
	}
}

// TestAggNonFinitePropertyInterleaved is the property form of the guard:
// finite samples interleaved with arbitrary NaN/Inf noise, split across
// partial aggregates (some shards all-noise and therefore zero-count),
// must merge to exactly the finite-only serial fold.
func TestAggNonFinitePropertyInterleaved(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	noise := []float64{math.NaN(), math.Inf(1), math.Inf(-1)}
	for trial := 0; trial < 200; trial++ {
		n := rng.Intn(30)
		finite := make([]float64, n)
		for i := range finite {
			finite[i] = (rng.Float64() - 0.5) * math.Pow(10, float64(rng.Intn(6)-2))
		}
		var serial Agg
		for _, v := range finite {
			serial.Add(v)
		}
		// Shard the finite values plus injected noise; one shard is kept
		// all-noise so a zero-count partial participates in every merge.
		k := 2 + rng.Intn(4)
		parts := make([]Agg, k)
		for _, v := range finite {
			parts[1+rng.Intn(k-1)].Add(v)
		}
		for i := range parts {
			for j := 0; j < rng.Intn(4); j++ {
				parts[i].Add(noise[rng.Intn(len(noise))])
			}
		}
		var merged Agg
		for _, p := range parts {
			merged.Merge(p)
		}
		if merged.N != serial.N || merged.MinV != serial.MinV || merged.MaxV != serial.MaxV {
			t.Fatalf("trial %d: N/min/max diverge under noise: merged %+v serial %+v", trial, merged, serial)
		}
		if !closeULP(merged.Sum, serial.Sum) || !closeULP(merged.SumSq, serial.SumSq) {
			t.Fatalf("trial %d: moments diverge under noise: merged %+v serial %+v", trial, merged, serial)
		}
		for _, v := range []float64{merged.Mean(), merged.Variance(), merged.Stderr()} {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				t.Fatalf("trial %d: non-finite derived moment %v from %+v", trial, v, merged)
			}
		}
	}
}
