package metrics

import (
	"math"
	"math/rand"
	"sort"
	"sync"
	"testing"
	"testing/quick"
)

func TestEmptyLatencies(t *testing.T) {
	var l Latencies
	if l.Mean() != 0 || l.Percentile(99) != 0 || l.Count() != 0 {
		t.Fatal("empty recorder should return zeros")
	}
}

func TestMeanAndPercentiles(t *testing.T) {
	var l Latencies
	for i := 1; i <= 100; i++ {
		l.Add(float64(i))
	}
	if l.Mean() != 50.5 {
		t.Fatalf("Mean = %v, want 50.5", l.Mean())
	}
	if got := l.Percentile(99); got != 99 {
		t.Fatalf("P99 = %v, want 99", got)
	}
	if got := l.Percentile(50); got != 50 {
		t.Fatalf("P50 = %v, want 50", got)
	}
	if got := l.Max(); got != 100 {
		t.Fatalf("Max = %v, want 100", got)
	}
	if got := l.Percentile(0); got != 1 {
		t.Fatalf("P0 = %v, want 1", got)
	}
}

func TestAddAfterPercentile(t *testing.T) {
	var l Latencies
	l.Add(5)
	_ = l.Percentile(50)
	l.Add(1) // must re-sort lazily
	if got := l.Percentile(1); got != 1 {
		t.Fatalf("P1 after late add = %v, want 1", got)
	}
}

func TestSummarizeMonotone(t *testing.T) {
	var l Latencies
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 1000; i++ {
		l.Add(rng.ExpFloat64() * 10)
	}
	s := l.Summarize()
	series := s.Series()
	for i := 2; i < len(series); i++ { // skip Avg at index 0
		if series[i] < series[i-1] {
			t.Fatalf("percentiles not monotone: %v", series)
		}
	}
	if s.Count != 1000 {
		t.Fatalf("Count = %d", s.Count)
	}
	if len(s.Labels()) != len(series) {
		t.Fatal("labels/series length mismatch")
	}
}

// Property: percentile of any p is a value from the data set and bounded by
// min/max.
func TestQuickPercentileWithinRange(t *testing.T) {
	f := func(raw []uint16, pRaw uint8) bool {
		if len(raw) == 0 {
			return true
		}
		var l Latencies
		for _, r := range raw {
			l.Add(float64(r))
		}
		p := float64(pRaw%100) + 1
		v := l.Percentile(p)
		vals := l.Values()
		if v < vals[0] || v > vals[len(vals)-1] {
			return false
		}
		i := sort.SearchFloat64s(vals, v)
		return i < len(vals) && vals[i] == v
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestCostMeter(t *testing.T) {
	now := 0.0
	c := NewCostMeter(func() float64 { return now })
	c.Start(1, 3.6) // 3.6 USD/h = 0.001 USD/s
	now = 1000
	if got := c.TotalUSD(); math.Abs(got-1.0) > 1e-9 {
		t.Fatalf("open bill total = %v, want 1.0", got)
	}
	c.Stop(1)
	now = 2000
	if got := c.TotalUSD(); math.Abs(got-1.0) > 1e-9 {
		t.Fatalf("closed bill total = %v, want 1.0", got)
	}
	if c.OpenCount() != 0 {
		t.Fatal("bill still open after Stop")
	}
	// Re-Start at a new rate re-bills from the restart instant; double Stop
	// stays idempotent.
	c.Start(2, 3.6)
	c.Start(2, 7.2) // closes the 0-second-old 3.6/h bill, reopens at 7.2/h
	now = 3000
	c.Stop(2)
	c.Stop(2)
	if got := c.TotalUSD(); math.Abs(got-3.0) > 1e-9 {
		t.Fatalf("total = %v, want 3.0 (1.0 closed + 1000s at 7.2/h)", got)
	}
}

// A relaunched instance reusing an id must bill the relaunch price from the
// relaunch instant — the old bill closes at its old rate, it does not keep
// accruing the stale rate (or stale price curve) forever.
func TestCostMeterRestartRebills(t *testing.T) {
	now := 0.0
	c := NewCostMeter(func() float64 { return now })

	c.Start(1, 3.6) // 0.001 USD/s
	now = 1000      // 1.0 USD accrued at the old rate
	c.Start(1, 36)  // relaunch at 0.01 USD/s
	now = 1500      // +5.0 USD at the new rate
	c.Stop(1)
	if got := c.TotalUSD(); math.Abs(got-6.0) > 1e-9 {
		t.Fatalf("flat restart total = %v, want 6.0 (1.0 old-rate + 5.0 new-rate)", got)
	}
	if c.OpenCount() != 0 {
		t.Fatal("bill still open after Stop")
	}

	// Variable-price bills restart the same way: the stale integrator stops
	// at the restart instant and the new curve takes over.
	c2 := NewCostMeter(func() float64 { return now })
	now = 0
	c2.StartVariable(7, func(t0, t1 float64) float64 { return (t1 - t0) * 0.001 })
	now = 1000
	c2.StartVariable(7, func(t0, t1 float64) float64 { return (t1 - t0) * 0.01 })
	now = 1200
	c2.Stop(7)
	if got := c2.TotalUSD(); math.Abs(got-3.0) > 1e-9 {
		t.Fatalf("variable restart total = %v, want 3.0 (1.0 old curve + 2.0 new)", got)
	}
	// Mixed: a flat bill restarted as variable must drop the flat rate.
	c3 := NewCostMeter(func() float64 { return now })
	now = 0
	c3.Start(9, 3.6)
	now = 100
	c3.StartVariable(9, func(t0, t1 float64) float64 { return (t1 - t0) * 0.01 })
	now = 200
	c3.Stop(9)
	if got := c3.TotalUSD(); math.Abs(got-1.1) > 1e-9 {
		t.Fatalf("flat→variable restart total = %v, want 1.1", got)
	}
}

// Concurrent readers of a finished Latencies (the serving daemon hands one
// result to many clients) must not race: Percentile historically sorted the
// shared observation slice in place. Run under -race.
func TestConcurrentSummarize(t *testing.T) {
	var l Latencies
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 2000; i++ {
		l.Add(rng.ExpFloat64() * 10)
	}
	want := l.Summarize()
	// Invalidate the sorted cache so the readers rebuild it concurrently.
	l.Add(want.P99)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				s := l.Summarize()
				if s.P99 < s.P90 {
					t.Error("percentiles not monotone under concurrency")
					return
				}
				vals := l.Values()
				if !sort.Float64sAreSorted(vals) {
					t.Error("Values not sorted under concurrency")
					return
				}
				_ = l.Mean()
				_ = l.Count()
			}
		}()
	}
	wg.Wait()
}

func TestSeries(t *testing.T) {
	var s Series
	s.Add(0, 10)
	s.Add(5, 20)
	s.Add(9, 15)
	if s.MaxValue() != 20 {
		t.Fatalf("MaxValue = %v", s.MaxValue())
	}
	if got := s.ValueAt(4.9, -1); got != 10 {
		t.Fatalf("ValueAt(4.9) = %v, want 10", got)
	}
	if got := s.ValueAt(5, -1); got != 20 {
		t.Fatalf("ValueAt(5) = %v, want 20", got)
	}
	if got := s.ValueAt(-1, -1); got != -1 {
		t.Fatalf("ValueAt(-1) = %v, want default", got)
	}
	if got := s.ValueAt(100, -1); got != 15 {
		t.Fatalf("ValueAt(100) = %v, want 15", got)
	}
}
