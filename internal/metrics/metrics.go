// Package metrics provides latency statistics (the average and tail
// percentiles reported in Figures 6, 8 and 9), monetary cost accounting
// (Figure 7), and time-series sampling for per-request latency plots.
package metrics

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
)

// Latencies collects per-request end-to-end latencies. Writes (Add) happen
// on the single simulation goroutine; reads (Mean/Percentile/Summarize/
// Values) may come from many goroutines at once — a serving daemon hands
// the same finished core.Stats to every client — so the read path never
// mutates the observation slice. Percentiles are served from a cached
// sorted copy built under a mutex, keeping concurrent Summarize calls
// race-free without changing any computed value.
type Latencies struct {
	mu     sync.Mutex
	values []float64
	// sorted is a cached ascending copy of values, nil when stale.
	sorted []float64
}

// Add records one latency observation (seconds).
func (l *Latencies) Add(v float64) {
	l.mu.Lock()
	l.values = append(l.values, v)
	l.sorted = nil
	l.mu.Unlock()
}

// Count returns the number of observations.
func (l *Latencies) Count() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.values)
}

// Mean returns the average latency, or 0 with no observations.
func (l *Latencies) Mean() float64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	if len(l.values) == 0 {
		return 0
	}
	s := 0.0
	for _, v := range l.values {
		s += v
	}
	return s / float64(len(l.values))
}

// sortedLocked returns the cached ascending copy, building it if stale.
// Callers must hold l.mu.
func (l *Latencies) sortedLocked() []float64 {
	if l.sorted == nil {
		l.sorted = append([]float64(nil), l.values...)
		sort.Float64s(l.sorted)
	}
	return l.sorted
}

// Percentile returns the p-th percentile (0 < p ≤ 100) using the
// nearest-rank method, or 0 with no observations.
func (l *Latencies) Percentile(p float64) float64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	if len(l.values) == 0 {
		return 0
	}
	vals := l.sortedLocked()
	if p <= 0 {
		return vals[0]
	}
	rank := int(math.Ceil(p / 100 * float64(len(vals))))
	if rank < 1 {
		rank = 1
	}
	if rank > len(vals) {
		rank = len(vals)
	}
	return vals[rank-1]
}

// Max returns the largest observation.
func (l *Latencies) Max() float64 { return l.Percentile(100) }

// Values returns a copy of the observations in insertion-independent
// (sorted) order.
func (l *Latencies) Values() []float64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return append([]float64(nil), l.sortedLocked()...)
}

// Summary is the row shape of Figures 6/8/9: average plus tail percentiles.
type Summary struct {
	Count                        int
	Avg                          float64
	P90, P95, P96, P97, P98, P99 float64
}

// Summarize computes the standard figure row.
func (l *Latencies) Summarize() Summary {
	return Summary{
		Count: l.Count(),
		Avg:   l.Mean(),
		P90:   l.Percentile(90),
		P95:   l.Percentile(95),
		P96:   l.Percentile(96),
		P97:   l.Percentile(97),
		P98:   l.Percentile(98),
		P99:   l.Percentile(99),
	}
}

// Labels returns the x-axis labels of Figure 6 in order.
func (s Summary) Labels() []string {
	return []string{"Avg", "P90", "P95", "P96", "P97", "P98", "P99"}
}

// Series returns the values matching Labels.
func (s Summary) Series() []float64 {
	return []float64{s.Avg, s.P90, s.P95, s.P96, s.P97, s.P98, s.P99}
}

func (s Summary) String() string {
	var b strings.Builder
	labels, vals := s.Labels(), s.Series()
	for i := range labels {
		if i > 0 {
			b.WriteString("  ")
		}
		fmt.Fprintf(&b, "%s=%.2fs", labels[i], vals[i])
	}
	fmt.Fprintf(&b, "  (n=%d)", s.Count)
	return b.String()
}

// CostMeter integrates monetary cost over instance-time.
type CostMeter struct {
	totalUSD float64
	open     map[int64]openBill
	nowFn    func() float64
}

type openBill struct {
	since      float64
	usdPerHour float64
	// integrate, when non-nil, prices the bill from a time-varying curve:
	// integrate(t0, t1) returns the accrued USD of [t0, t1]. The flat
	// usdPerHour path is untouched when it is nil, so meters without a
	// price curve stay bit-identical to the historical arithmetic.
	integrate func(t0, t1 float64) float64
}

// accrue prices the bill over [b.since, now].
func (b openBill) accrue(now float64) float64 {
	if b.integrate != nil {
		return b.integrate(b.since, now)
	}
	return (now - b.since) / 3600 * b.usdPerHour
}

// NewCostMeter builds a meter reading virtual time from nowFn.
func NewCostMeter(nowFn func() float64) *CostMeter {
	return &CostMeter{open: make(map[int64]openBill), nowFn: nowFn}
}

// Start begins billing entity id at usdPerHour. Re-starting an id that is
// already billing closes the old bill at its old rate (accruing it into the
// total) and opens a fresh one at the new rate — a relaunched instance that
// reuses an id must bill the relaunch price, not silently keep the stale
// rate it was first opened at.
func (c *CostMeter) Start(id int64, usdPerHour float64) {
	c.Stop(id)
	c.open[id] = openBill{since: c.nowFn(), usdPerHour: usdPerHour}
}

// StartVariable begins billing entity id against a time-varying price:
// integrate(t0, t1) must return the accrued USD over [t0, t1] (for a
// piecewise-constant spot-price curve, its exact piecewise integral — see
// market.Curve.Integrate). Like Start, it closes any bill already open for
// the id so a relaunch never keeps integrating a stale curve.
func (c *CostMeter) StartVariable(id int64, integrate func(t0, t1 float64) float64) {
	c.Stop(id)
	c.open[id] = openBill{since: c.nowFn(), integrate: integrate}
}

// Stop ends billing entity id, folding its accrued cost into the total.
func (c *CostMeter) Stop(id int64) {
	b, ok := c.open[id]
	if !ok {
		return
	}
	delete(c.open, id)
	c.totalUSD += b.accrue(c.nowFn())
}

// TotalUSD returns accrued cost including still-open bills priced to now.
// Open bills are summed in key order so the float result is deterministic.
func (c *CostMeter) TotalUSD() float64 {
	t := c.totalUSD
	now := c.nowFn()
	ids := make([]int64, 0, len(c.open))
	for id := range c.open {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		t += c.open[id].accrue(now)
	}
	return t
}

// OpenCount returns the number of entities currently billing.
func (c *CostMeter) OpenCount() int { return len(c.open) }

// Sample is one (time, value) pair of a time series.
type Sample struct {
	At    float64
	Value float64
}

// Series is an append-only time series (per-request latency over time,
// instance counts over time, configuration changes, ...).
type Series struct {
	Name    string
	Samples []Sample
}

// Add appends a sample.
func (s *Series) Add(at, v float64) {
	s.Samples = append(s.Samples, Sample{At: at, Value: v})
}

// MaxValue returns the largest sample value, or 0 when empty.
func (s Series) MaxValue() float64 {
	m := 0.0
	for _, x := range s.Samples {
		if x.Value > m {
			m = x.Value
		}
	}
	return m
}

// ValueAt returns the most recent value at or before t (step semantics), or
// def when no sample qualifies.
func (s Series) ValueAt(t, def float64) float64 {
	v := def
	for _, x := range s.Samples {
		if x.At > t {
			break
		}
		v = x.Value
	}
	return v
}
