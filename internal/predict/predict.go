// Package predict implements a lightweight spot-availability predictor —
// the §8 future-work direction ("combination with ... instance
// availability prediction [Snape]"). It observes preemption and
// acquisition events online and estimates near-term preemption risk, which
// the serving system uses to size its candidate pool of standby instances
// adaptively instead of the fixed two of §3.2.
package predict

import (
	"fmt"
	"math"
)

// Options tunes the predictor.
type Options struct {
	// HalfLife is the exponential-decay half-life (seconds) for the
	// event-rate estimates: recent churn dominates.
	HalfLife float64
	// Horizon is the look-ahead window the risk estimate targets.
	Horizon float64
	// MaxPool bounds the recommended candidate pool.
	MaxPool int
}

// DefaultOptions returns a predictor matched to 20-minute spot traces.
func DefaultOptions() Options {
	return Options{HalfLife: 180, Horizon: 120, MaxPool: 4}
}

// Predictor estimates near-term preemption pressure from observed events.
// It is deliberately simple (exponentially-decayed event rates): the point
// is the control-plane hook, not the forecasting model.
type Predictor struct {
	opts Options

	lastUpdate float64
	// preemptRate / acquireRate are exponentially decayed events/second.
	preemptRate float64
	acquireRate float64
	// observations counts total events seen.
	observations int
}

// New builds a predictor.
func New(opts Options) (*Predictor, error) {
	if opts.HalfLife <= 0 || opts.Horizon <= 0 || opts.MaxPool < 0 {
		return nil, fmt.Errorf("predict: invalid options %+v", opts)
	}
	return &Predictor{opts: opts}, nil
}

// decayTo ages the rate estimates to time now.
func (p *Predictor) decayTo(now float64) {
	if now <= p.lastUpdate {
		return
	}
	dt := now - p.lastUpdate
	f := math.Pow(0.5, dt/p.opts.HalfLife)
	p.preemptRate *= f
	p.acquireRate *= f
	p.lastUpdate = now
}

// impulse is the rate contribution of a single event: it integrates to one
// event over the half-life.
func (p *Predictor) impulse() float64 {
	return math.Ln2 / p.opts.HalfLife
}

// ObservePreemption records a preemption notice at time now.
func (p *Predictor) ObservePreemption(now float64, instances int) {
	p.decayTo(now)
	p.preemptRate += float64(instances) * p.impulse()
	p.observations += instances
}

// ObserveAcquisition records new capacity arriving at time now.
func (p *Predictor) ObserveAcquisition(now float64, instances int) {
	p.decayTo(now)
	p.acquireRate += float64(instances) * p.impulse()
	p.observations += instances
}

// ExpectedPreemptions estimates how many instances will be preempted within
// the look-ahead horizon starting at now.
func (p *Predictor) ExpectedPreemptions(now float64) float64 {
	p.decayTo(now)
	return p.preemptRate * p.opts.Horizon
}

// Risk returns a [0, 1] score of near-term preemption pressure: 0 with no
// recent churn, saturating as expected preemptions approach the pool cap.
func (p *Predictor) Risk(now float64) float64 {
	exp := p.ExpectedPreemptions(now)
	if p.opts.MaxPool == 0 {
		return clamp01(exp)
	}
	return clamp01(exp / float64(p.opts.MaxPool))
}

// RecommendedPool sizes the candidate pool: the fixed base plus the
// expected near-term preemptions, capped at MaxPool.
func (p *Predictor) RecommendedPool(now float64, base int) int {
	extra := int(math.Ceil(p.ExpectedPreemptions(now)))
	pool := base + extra
	if pool > p.opts.MaxPool+base {
		pool = p.opts.MaxPool + base
	}
	if pool < base {
		pool = base
	}
	return pool
}

// Observations returns the total events seen.
func (p *Predictor) Observations() int { return p.observations }

func clamp01(x float64) float64 {
	if x < 0 {
		return 0
	}
	if x > 1 {
		return 1
	}
	return x
}
