package predict

import (
	"math"
	"testing"
	"testing/quick"

	"spotserve/internal/trace"
)

func newP(t *testing.T) *Predictor {
	t.Helper()
	p, err := New(DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestNewRejectsBadOptions(t *testing.T) {
	bad := []Options{
		{},
		{HalfLife: 0, Horizon: 10, MaxPool: 1},
		{HalfLife: 10, Horizon: 0, MaxPool: 1},
		{HalfLife: 10, Horizon: 10, MaxPool: -1},
	}
	for i, o := range bad {
		if _, err := New(o); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}

func TestColdPredictorIsCalm(t *testing.T) {
	p := newP(t)
	if p.Risk(100) != 0 {
		t.Fatalf("cold risk = %v", p.Risk(100))
	}
	if p.RecommendedPool(100, 2) != 2 {
		t.Fatalf("cold pool = %d, want base 2", p.RecommendedPool(100, 2))
	}
}

func TestChurnRaisesRisk(t *testing.T) {
	p := newP(t)
	for i := 0; i < 5; i++ {
		p.ObservePreemption(float64(i*20), 1)
	}
	risk := p.Risk(100)
	if risk <= 0 {
		t.Fatalf("risk after churn = %v", risk)
	}
	if p.RecommendedPool(100, 2) <= 2 {
		t.Fatalf("pool did not grow: %d", p.RecommendedPool(100, 2))
	}
	if p.Observations() != 5 {
		t.Fatalf("observations = %d", p.Observations())
	}
}

func TestRiskDecays(t *testing.T) {
	p := newP(t)
	p.ObservePreemption(0, 3)
	early := p.Risk(1)
	late := p.Risk(2000) // > 10 half-lives later
	if late >= early {
		t.Fatalf("risk did not decay: %v → %v", early, late)
	}
	if late > 0.01 {
		t.Fatalf("risk after 10 half-lives = %v", late)
	}
}

func TestHalfLifeSemantics(t *testing.T) {
	o := DefaultOptions()
	p, _ := New(o)
	p.ObservePreemption(0, 4)
	r0 := p.ExpectedPreemptions(0)
	r1 := p.ExpectedPreemptions(o.HalfLife)
	if math.Abs(r1-r0/2) > 1e-9 {
		t.Fatalf("after one half-life: %v, want %v", r1, r0/2)
	}
}

func TestPoolCapped(t *testing.T) {
	p := newP(t)
	for i := 0; i < 100; i++ {
		p.ObservePreemption(float64(i), 2)
	}
	pool := p.RecommendedPool(100, 2)
	if pool > DefaultOptions().MaxPool+2 {
		t.Fatalf("pool %d exceeds cap", pool)
	}
	if p.Risk(100) != 1 {
		t.Fatalf("risk under extreme churn = %v, want saturated 1", p.Risk(100))
	}
}

// Property: risk is always in [0,1] and the pool never drops below base,
// for any event pattern.
func TestQuickInvariants(t *testing.T) {
	f := func(events []uint8) bool {
		p, err := New(DefaultOptions())
		if err != nil {
			return false
		}
		now := 0.0
		for _, e := range events {
			now += float64(e%60) + 1
			if e%2 == 0 {
				p.ObservePreemption(now, int(e%3)+1)
			} else {
				p.ObserveAcquisition(now, int(e%3)+1)
			}
			r := p.Risk(now)
			if r < 0 || r > 1 {
				return false
			}
			if p.RecommendedPool(now, 2) < 2 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestTracksTraceChurn replays an availability trace through the predictor
// and checks it reports higher risk on the volatile trace B_S than on the
// calmer decline A_S.
func TestTracksTraceChurn(t *testing.T) {
	riskOf := func(tr trace.Trace) float64 {
		p := newP(t)
		prev := tr.Events[0].Count
		total := 0.0
		n := 0
		for _, e := range tr.Events[1:] {
			d := e.Count - prev
			prev = e.Count
			if d < 0 {
				p.ObservePreemption(e.At, -d)
			} else {
				p.ObserveAcquisition(e.At, d)
			}
			total += p.Risk(e.At)
			n++
		}
		return total / float64(n)
	}
	a, b := riskOf(trace.AS()), riskOf(trace.BS())
	if b <= a {
		t.Fatalf("B_S mean risk %v not above A_S %v", b, a)
	}
}
