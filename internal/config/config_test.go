package config

import (
	"testing"
	"testing/quick"
)

func TestGPUs(t *testing.T) {
	c := Config{D: 2, P: 3, M: 4, B: 8}
	if c.GPUs() != 24 {
		t.Fatalf("GPUs = %d, want 24", c.GPUs())
	}
	if c.GPUsPerPipeline() != 12 {
		t.Fatalf("GPUsPerPipeline = %d, want 12", c.GPUsPerPipeline())
	}
	if c.ConcurrentRequests() != 16 {
		t.Fatalf("ConcurrentRequests = %d, want 16", c.ConcurrentRequests())
	}
}

func TestValidate(t *testing.T) {
	if err := (Config{D: 1, P: 1, M: 1, B: 1}).Validate(); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	for _, c := range []Config{{}, {D: 1, P: 1, M: 1}, {D: -1, P: 1, M: 1, B: 1}} {
		if err := c.Validate(); err == nil {
			t.Errorf("invalid config accepted: %v", c)
		}
	}
}

func TestString(t *testing.T) {
	got := Config{D: 2, P: 3, M: 4, B: 8}.String()
	if got != "(D=2,P=3,M=4,B=8)" {
		t.Fatalf("String = %q", got)
	}
}

func TestPositionsOrderAndIndex(t *testing.T) {
	c := Config{D: 2, P: 2, M: 2, B: 1}
	ps := c.Positions()
	if len(ps) != 8 {
		t.Fatalf("len(Positions) = %d, want 8", len(ps))
	}
	// d-major order.
	want := []Position{
		{0, 0, 0}, {0, 0, 1}, {0, 1, 0}, {0, 1, 1},
		{1, 0, 0}, {1, 0, 1}, {1, 1, 0}, {1, 1, 1},
	}
	for i := range want {
		if ps[i] != want[i] {
			t.Fatalf("Positions[%d] = %v, want %v", i, ps[i], want[i])
		}
		if c.Index(ps[i]) != i {
			t.Fatalf("Index(%v) = %d, want %d", ps[i], c.Index(ps[i]), i)
		}
	}
}

// Property: Index is the inverse of Positions for arbitrary shapes.
func TestQuickIndexRoundTrip(t *testing.T) {
	f := func(d, p, m uint8) bool {
		c := Config{D: int(d%4) + 1, P: int(p%4) + 1, M: int(m%4) + 1, B: 1}
		for i, pos := range c.Positions() {
			if c.Index(pos) != i {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestEnumerateShapes(t *testing.T) {
	l := DefaultLimits()
	shapes := l.EnumerateShapes(48, 48)
	// M=8 allowed (48%8==0)? 48 % 8 = 0 → yes.
	seen := map[Config]bool{}
	for _, s := range shapes {
		if s.P > 12 || s.P < 1 {
			t.Fatalf("shape %v exceeds MaxP", s)
		}
		if 48%s.M != 0 {
			t.Fatalf("shape %v has M not dividing heads", s)
		}
		seen[s] = true
	}
	if !seen[(Config{D: 1, P: 3, M: 4})] {
		t.Fatal("expected (P=3,M=4) in GPT-20B shapes")
	}
	// Heads=52 (real LLaMA-30B) would exclude M=8.
	for _, s := range l.EnumerateShapes(60, 52) {
		if s.M == 8 {
			t.Fatal("M=8 allowed with 52 heads")
		}
	}
}

func TestSame(t *testing.T) {
	a := Config{D: 2, P: 2, M: 8, B: 4}
	b := Config{D: 2, P: 2, M: 8, B: 8}
	if !a.Same(b) {
		t.Fatal("Same should ignore batch size")
	}
	if a.Same(Config{D: 1, P: 2, M: 8, B: 4}) {
		t.Fatal("Same should compare degrees")
	}
}
