// Package config defines the parallel-configuration vocabulary shared by the
// whole system: C = (D, P, M, B) per §3.2 of the paper, where D is the data
// (pipeline replication) degree, P the pipeline-model degree, M the
// tensor-model degree, and B the maximum mini-batch size per pipeline, plus
// the pipeline-stage-shard topology positions (d, p, m) that GPUs bind to.
package config

import "fmt"

// Config is a parallel configuration C = (D, P, M, B).
type Config struct {
	// D is the data-parallel degree: the number of independent inference
	// pipelines.
	D int
	// P is the pipeline-model-parallel degree: stages per pipeline.
	P int
	// M is the tensor-model-parallel degree: shards per stage.
	M int
	// B is the maximum mini-batch size served by one pipeline at a time.
	B int
}

// Zero is the empty configuration (no pipelines), used when no instances are
// available.
var Zero = Config{}

// GPUs returns the number of GPUs the configuration occupies.
func (c Config) GPUs() int { return c.D * c.P * c.M }

// GPUsPerPipeline returns P×M.
func (c Config) GPUsPerPipeline() int { return c.P * c.M }

// ConcurrentRequests returns D×B, the number of requests the configuration
// serves simultaneously (footnote 2 of the paper).
func (c Config) ConcurrentRequests() int { return c.D * c.B }

// IsZero reports whether the configuration serves nothing.
func (c Config) IsZero() bool { return c.D == 0 || c.P == 0 || c.M == 0 }

// Validate checks structural sanity (positivity); model- and memory-level
// feasibility lives in the cost package.
func (c Config) Validate() error {
	if c.D <= 0 || c.P <= 0 || c.M <= 0 || c.B <= 0 {
		return fmt.Errorf("config: non-positive degree in %v", c)
	}
	return nil
}

// String renders the configuration like the paper: (D=2, P=3, M=4, B=8).
func (c Config) String() string {
	return fmt.Sprintf("(D=%d,P=%d,M=%d,B=%d)", c.D, c.P, c.M, c.B)
}

// Same reports whether two configurations have identical parallel degrees
// (ignoring batch size).
func (c Config) Same(o Config) bool {
	return c.D == o.D && c.P == o.P && c.M == o.M
}

// Position is a pipeline-stage-shard topology position (d, p, m): the m-th
// tensor shard of the p-th pipeline stage in the d-th pipeline. All indices
// are 0-based (the paper uses 1-based).
type Position struct {
	D, P, M int
}

func (p Position) String() string {
	return fmt.Sprintf("(d=%d,p=%d,m=%d)", p.D, p.P, p.M)
}

// Positions enumerates every topology position of c in deterministic
// d-major, then stage, then shard order.
func (c Config) Positions() []Position {
	out := make([]Position, 0, c.GPUs())
	for d := 0; d < c.D; d++ {
		for p := 0; p < c.P; p++ {
			for m := 0; m < c.M; m++ {
				out = append(out, Position{D: d, P: p, M: m})
			}
		}
	}
	return out
}

// Index returns the rank of position pos in the Positions() ordering.
func (c Config) Index(pos Position) int {
	return pos.D*c.P*c.M + pos.P*c.M + pos.M
}

// Limits bounds the configuration search space.
type Limits struct {
	// MaxP caps the pipeline degree (the paper explores small P; deep
	// pipelines add latency without memory benefit at this scale).
	MaxP int
	// Ms is the set of allowed tensor-parallel degrees.
	Ms []int
	// Bs is the set of allowed batch sizes ("B is selected from
	// {1,2,4,8}" per §6.1).
	Bs []int
}

// DefaultLimits mirrors the paper's search space.
func DefaultLimits() Limits {
	return Limits{
		MaxP: 12,
		Ms:   []int{1, 2, 4, 8},
		Bs:   []int{1, 2, 4, 8},
	}
}

// EnumerateShapes lists all (P, M) shapes allowed by the limits for a model
// with the given layer and head counts: M must divide heads, P must divide
// the layer count (pipeline stages hold whole layers and the engine requires
// even stages), and P may not exceed MaxP.
func (l Limits) EnumerateShapes(layers, heads int) []Config {
	var out []Config
	for p := 1; p <= l.MaxP && p <= layers; p++ {
		if layers%p != 0 {
			continue
		}
		for _, m := range l.Ms {
			if heads%m != 0 {
				continue
			}
			out = append(out, Config{D: 1, P: p, M: m})
		}
	}
	return out
}
