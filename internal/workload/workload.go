// Package workload generates inference request arrivals: stable Gamma
// arrival processes with a configurable coefficient of variance (the paper
// uses CV=6 to model burstiness, §6.1), and fluctuating-rate workloads
// replaying a rescaled MAF-style production trace (§6.3).
package workload

import (
	"fmt"
	"math"
	"math/rand"
)

// Request is one inference request to be served.
type Request struct {
	// ID is unique and dense, assigned in arrival order.
	ID int64
	// At is the arrival time in virtual seconds.
	At float64
	// SeqIn is the number of input (prompt) tokens.
	SeqIn int
	// SeqOut is the number of output tokens to generate.
	SeqOut int
}

// RateFn gives the instantaneous arrival rate (requests/second) at time t.
type RateFn func(t float64) float64

// ConstantRate returns a stable arrival-rate function.
func ConstantRate(r float64) RateFn {
	return func(float64) float64 { return r }
}

// RateStep is one step of a piecewise-constant rate profile.
type RateStep struct {
	At   float64
	Rate float64
}

// StepRate builds a piecewise-constant rate function from steps (sorted by
// time; the rate before the first step is the first step's rate).
func StepRate(steps []RateStep) RateFn {
	return func(t float64) float64 {
		if len(steps) == 0 {
			return 0
		}
		r := steps[0].Rate
		for _, s := range steps {
			if s.At > t {
				break
			}
			r = s.Rate
		}
		return r
	}
}

// MAFSteps is the rescaled fluctuating workload used for the §6.3
// experiments, reproducing the burst structure of Figures 8a/8b around a
// base rate: a ramp past the serving capacity at t≈270 s, a sustained
// plateau, and a decay detected after t≈600 s. Rates are scaled so that
// `base` corresponds to the model's default stable rate.
func MAFSteps(base float64) []RateStep {
	scale := func(f float64) float64 { return base * f }
	return []RateStep{
		{0, scale(0.85)},
		{120, scale(0.95)},
		{240, scale(1.30)},
		{270, scale(1.70)},
		{330, scale(1.90)},
		{450, scale(1.80)},
		{570, scale(1.40)},
		{630, scale(1.00)},
		{720, scale(0.85)},
		{900, scale(0.95)},
	}
}

// Options configures arrival generation.
type Options struct {
	// Horizon is the generation window [0, Horizon).
	Horizon float64
	// Rate is the arrival-rate profile.
	Rate RateFn
	// CV is the coefficient of variance of interarrival times: 1 gives a
	// Poisson process, the paper's bursty setting is 6.
	CV float64
	// SeqIn / SeqOut are token counts stamped on every request (the
	// evaluation fixes S_in=512, S_out=128).
	SeqIn, SeqOut int
	// Seed makes generation deterministic.
	Seed int64
}

// Validate checks the options.
func (o Options) Validate() error {
	switch {
	case o.Horizon <= 0:
		return fmt.Errorf("workload: horizon %v", o.Horizon)
	case o.Rate == nil:
		return fmt.Errorf("workload: nil rate function")
	case o.CV <= 0:
		return fmt.Errorf("workload: CV %v", o.CV)
	case o.SeqIn <= 0 || o.SeqOut <= 0:
		return fmt.Errorf("workload: sequence lengths %d/%d", o.SeqIn, o.SeqOut)
	}
	return nil
}

// Generate produces the arrival sequence for the options. Interarrival
// times are Gamma distributed with shape k = 1/CV² and mean 1/λ(t), giving
// exactly the requested burstiness; λ is re-read at each arrival.
func Generate(o Options) ([]Request, error) {
	if err := o.Validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(o.Seed))
	shape := 1 / (o.CV * o.CV)
	var out []Request
	t := 0.0
	var id int64
	for {
		rate := o.Rate(t)
		if rate <= 1e-12 {
			// No arrivals while the rate is zero; probe forward.
			t += 1.0
			if t >= o.Horizon {
				break
			}
			continue
		}
		mean := 1 / rate
		t += gammaSample(rng, shape, mean/shape)
		if t >= o.Horizon {
			break
		}
		out = append(out, Request{ID: id, At: t, SeqIn: o.SeqIn, SeqOut: o.SeqOut})
		id++
	}
	return out, nil
}

// gammaSample draws from Gamma(shape k, scale θ) using Marsaglia–Tsang,
// with the standard k<1 boost.
func gammaSample(rng *rand.Rand, k, theta float64) float64 {
	if k < 1 {
		u := rng.Float64()
		for u == 0 {
			u = rng.Float64()
		}
		return gammaSample(rng, k+1, theta) * math.Pow(u, 1/k)
	}
	d := k - 1.0/3.0
	c := 1 / math.Sqrt(9*d)
	for {
		x := rng.NormFloat64()
		v := 1 + c*x
		if v <= 0 {
			continue
		}
		v = v * v * v
		u := rng.Float64()
		if u < 1-0.0331*x*x*x*x {
			return d * v * theta
		}
		if math.Log(u) < 0.5*x*x+d-d*v+d*math.Log(v) {
			return d * v * theta
		}
	}
}

// DefaultRates returns the paper's per-model stable arrival rates (§6.1):
// 1.5 req/s for OPT-6.7B, 0.35 for GPT-20B, 0.2 for LLaMA-30B.
func DefaultRates() map[string]float64 {
	return map[string]float64{
		"OPT-6.7B":  1.5,
		"GPT-20B":   0.35,
		"LLaMA-30B": 0.2,
	}
}
