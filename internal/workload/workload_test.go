package workload

import (
	"math"
	"math/rand"
	"sort"
	"testing"
)

func TestGenerateDeterministic(t *testing.T) {
	o := Options{Horizon: 600, Rate: ConstantRate(1), CV: 6, SeqIn: 512, SeqOut: 128, Seed: 11}
	a, err := Generate(o)
	if err != nil {
		t.Fatal(err)
	}
	b, _ := Generate(o)
	if len(a) != len(b) {
		t.Fatal("same seed, different arrival counts")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed, different arrivals")
		}
	}
}

func TestArrivalsSortedAndStamped(t *testing.T) {
	o := Options{Horizon: 300, Rate: ConstantRate(2), CV: 1, SeqIn: 512, SeqOut: 128, Seed: 3}
	reqs, err := Generate(o)
	if err != nil {
		t.Fatal(err)
	}
	if !sort.SliceIsSorted(reqs, func(i, j int) bool { return reqs[i].At < reqs[j].At }) {
		t.Fatal("arrivals out of order")
	}
	for i, r := range reqs {
		if r.ID != int64(i) {
			t.Fatalf("IDs not dense: %d at index %d", r.ID, i)
		}
		if r.SeqIn != 512 || r.SeqOut != 128 {
			t.Fatalf("sequence lengths not stamped: %+v", r)
		}
		if r.At < 0 || r.At >= 300 {
			t.Fatalf("arrival %v outside horizon", r.At)
		}
	}
}

func TestPoissonMeanRate(t *testing.T) {
	// CV=1 is a Poisson process: count over the horizon ≈ λ·H.
	o := Options{Horizon: 20000, Rate: ConstantRate(0.5), CV: 1, SeqIn: 1, SeqOut: 1, Seed: 5}
	reqs, err := Generate(o)
	if err != nil {
		t.Fatal(err)
	}
	want := 0.5 * 20000
	got := float64(len(reqs))
	if math.Abs(got-want)/want > 0.05 {
		t.Fatalf("arrivals = %v, want ≈%v", got, want)
	}
}

func TestGammaCVMatchesTarget(t *testing.T) {
	// The empirical CV of interarrivals should track the requested CV.
	for _, cv := range []float64{1, 3, 6} {
		o := Options{Horizon: 200000, Rate: ConstantRate(1), CV: cv, SeqIn: 1, SeqOut: 1, Seed: 17}
		reqs, err := Generate(o)
		if err != nil {
			t.Fatal(err)
		}
		if len(reqs) < 1000 {
			t.Fatalf("cv=%v: only %d arrivals", cv, len(reqs))
		}
		var gaps []float64
		prev := 0.0
		for _, r := range reqs {
			gaps = append(gaps, r.At-prev)
			prev = r.At
		}
		mean, sd := meanStd(gaps)
		got := sd / mean
		if math.Abs(got-cv)/cv > 0.15 {
			t.Errorf("cv=%v: empirical %v", cv, got)
		}
	}
}

func meanStd(xs []float64) (mean, sd float64) {
	for _, x := range xs {
		mean += x
	}
	mean /= float64(len(xs))
	for _, x := range xs {
		sd += (x - mean) * (x - mean)
	}
	sd = math.Sqrt(sd / float64(len(xs)))
	return mean, sd
}

func TestBurstyIsBurstier(t *testing.T) {
	// With the same horizon and rate, CV=6 should produce a larger
	// maximum burst (arrivals within any 10 s window) than CV=1.
	count := func(cv float64) int {
		o := Options{Horizon: 10000, Rate: ConstantRate(1), CV: cv, SeqIn: 1, SeqOut: 1, Seed: 23}
		reqs, _ := Generate(o)
		best := 0
		j := 0
		for i := range reqs {
			for reqs[i].At-reqs[j].At > 10 {
				j++
			}
			if i-j+1 > best {
				best = i - j + 1
			}
		}
		return best
	}
	if count(6) <= count(1) {
		t.Fatalf("CV=6 max burst %d not above CV=1 %d", count(6), count(1))
	}
}

func TestStepRate(t *testing.T) {
	r := StepRate([]RateStep{{0, 1}, {10, 5}, {20, 2}})
	cases := map[float64]float64{-1: 1, 0: 1, 9.9: 1, 10: 5, 19: 5, 25: 2}
	for at, want := range cases {
		if got := r(at); got != want {
			t.Errorf("rate(%v) = %v, want %v", at, got, want)
		}
	}
	if StepRate(nil)(5) != 0 {
		t.Error("empty steps should give zero rate")
	}
}

// TestStepRateBoundaries pins the exact step-transition semantics: a step
// takes effect at its own timestamp (closed on the left, open on the
// right), times before the first step use the first step's rate, and
// adjacent/duplicate steps resolve to the latest one at the instant.
func TestStepRateBoundaries(t *testing.T) {
	eps := math.Nextafter(10, 0)    // largest float64 below 10
	after := math.Nextafter(10, 20) // smallest float64 above 10
	r := StepRate([]RateStep{{0, 1}, {10, 5}})
	boundary := map[float64]float64{
		eps:   1, // still the old rate one ulp before the step
		10:    5, // the step's own instant already uses the new rate
		after: 5,
	}
	for at, want := range boundary {
		if got := r(at); got != want {
			t.Errorf("rate(%v) = %v, want %v", at, got, want)
		}
	}

	// A first step later than t=0: earlier times inherit its rate (the
	// documented before-first-step behavior).
	late := StepRate([]RateStep{{100, 3}, {200, 7}})
	if got := late(0); got != 3 {
		t.Errorf("before first step: rate(0) = %v, want 3", got)
	}
	if got := late(99.999); got != 3 {
		t.Errorf("before first step: rate(99.999) = %v, want 3", got)
	}

	// Duplicate timestamps: the last step at an instant wins from that
	// instant on.
	dup := StepRate([]RateStep{{0, 1}, {10, 5}, {10, 9}})
	if got := dup(10); got != 9 {
		t.Errorf("duplicate step time: rate(10) = %v, want 9 (last wins)", got)
	}
	if got := dup(9); got != 1 {
		t.Errorf("duplicate step time: rate(9) = %v, want 1", got)
	}

	// A zero-rate step suspends arrivals entirely until the next step.
	gap := StepRate([]RateStep{{0, 2}, {10, 0}, {20, 4}})
	if got := gap(15); got != 0 {
		t.Errorf("zero-rate plateau: rate(15) = %v, want 0", got)
	}
	if got := gap(20); got != 4 {
		t.Errorf("after zero-rate plateau: rate(20) = %v, want 4", got)
	}
}

func TestMAFStepsShape(t *testing.T) {
	steps := MAFSteps(0.35)
	r := StepRate(steps)
	// Overload narrative of §6.3: the plateau after t=330 exceeds the
	// base capacity region, the tail decays back to it.
	if r(0) >= 0.35 {
		t.Errorf("initial rate %v should be below base", r(0))
	}
	if r(400) < 0.35*1.5 {
		t.Errorf("plateau rate %v should be a strong overload", r(400))
	}
	if r(1000) > 0.35 {
		t.Errorf("tail rate %v should return below base", r(1000))
	}
	if !sort.SliceIsSorted(steps, func(i, j int) bool { return steps[i].At < steps[j].At }) {
		t.Error("steps not sorted")
	}
}

func TestFluctuatingGeneration(t *testing.T) {
	// CV=1 here: at CV=6 a single 18-minute window is dominated by burst
	// noise, so the rate-tracking property is only visible at low CV.
	o := Options{Horizon: 1080, Rate: StepRate(MAFSteps(0.35)), CV: 1,
		SeqIn: 512, SeqOut: 128, Seed: 9}
	reqs, err := Generate(o)
	if err != nil {
		t.Fatal(err)
	}
	if len(reqs) == 0 {
		t.Fatal("no arrivals generated")
	}
	// The overload window should contain disproportionately many arrivals.
	in, out := 0, 0
	for _, r := range reqs {
		if r.At >= 270 && r.At < 630 {
			in++
		} else {
			out++
		}
	}
	inRate := float64(in) / 360
	outRate := float64(out) / (1080 - 360)
	if inRate <= outRate {
		t.Fatalf("overload window rate %v not above baseline %v", inRate, outRate)
	}
}

func TestValidateRejects(t *testing.T) {
	good := Options{Horizon: 10, Rate: ConstantRate(1), CV: 1, SeqIn: 1, SeqOut: 1}
	bad := []func(*Options){
		func(o *Options) { o.Horizon = 0 },
		func(o *Options) { o.Rate = nil },
		func(o *Options) { o.CV = 0 },
		func(o *Options) { o.SeqIn = 0 },
		func(o *Options) { o.SeqOut = 0 },
	}
	for i, mut := range bad {
		o := good
		mut(&o)
		if _, err := Generate(o); err == nil {
			t.Errorf("case %d: invalid options accepted", i)
		}
	}
}

func TestZeroRateTerminates(t *testing.T) {
	o := Options{Horizon: 50, Rate: ConstantRate(0), CV: 1, SeqIn: 1, SeqOut: 1}
	reqs, err := Generate(o)
	if err != nil {
		t.Fatal(err)
	}
	if len(reqs) != 0 {
		t.Fatalf("zero rate produced %d arrivals", len(reqs))
	}
}

func TestGammaSampleMoments(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for _, k := range []float64{0.25, 1, 4} {
		theta := 2.0
		n := 200000
		var sum, sq float64
		for i := 0; i < n; i++ {
			x := gammaSample(rng, k, theta)
			if x < 0 {
				t.Fatalf("negative gamma sample %v", x)
			}
			sum += x
			sq += x * x
		}
		mean := sum / float64(n)
		variance := sq/float64(n) - mean*mean
		if math.Abs(mean-k*theta)/(k*theta) > 0.05 {
			t.Errorf("k=%v: mean %v, want %v", k, mean, k*theta)
		}
		if math.Abs(variance-k*theta*theta)/(k*theta*theta) > 0.1 {
			t.Errorf("k=%v: var %v, want %v", k, variance, k*theta*theta)
		}
	}
}

func TestDefaultRates(t *testing.T) {
	r := DefaultRates()
	if r["OPT-6.7B"] != 1.5 || r["GPT-20B"] != 0.35 || r["LLaMA-30B"] != 0.2 {
		t.Fatalf("default rates = %v", r)
	}
}
