package experiments

import (
	"testing"

	"spotserve/internal/model"
	"spotserve/internal/trace"
)

// TestReconfigCacheEquivalence proves the reconfiguration cache is a
// computation-strategy change only: full serving simulations — SpotServe
// with all features and both baselines — produce byte-identical result
// fingerprints whether the pipeline memoizes proposals/mappings/plans or
// recomputes everything cold. This is the reconfig analogue of the
// fast-forward equivalence test.
func TestReconfigCacheEquivalence(t *testing.T) {
	cells := []Scenario{
		DefaultScenario(SpotServe, model.GPT20B, trace.BS(), 42),
		DefaultScenario(SpotServe, model.OPT6B7, trace.AS(), 1),
		DefaultScenario(Reparallel, model.GPT20B, trace.AS(), 7),
		DefaultScenario(Reroute, model.GPT20B, trace.BS(), 7),
	}
	// On-demand mixing exercises acquisition-driven reconfigurations.
	cells[1].AllowOnDemand = true

	for _, sc := range cells {
		sc := sc
		name := string(sc.System) + "/" + sc.Spec.Name + "/" + sc.Trace.Name
		t.Run(name, func(t *testing.T) {
			warm := Run(sc)
			ref := sc
			ref.DisableReconfigCache = true
			cold := Run(ref)
			// The reference result is fingerprinted with the flag cleared
			// so the scenario identity matches exactly (the flag itself is
			// not fingerprinted, but keep the comparison airtight).
			cold.Scenario.DisableReconfigCache = false
			if got, want := warm.Fingerprint(), cold.Fingerprint(); got != want {
				t.Errorf("cached fingerprint %s != cold %s", got, want)
			}
			if warm.Stats.Completed != cold.Stats.Completed {
				t.Errorf("completed: cached %d, cold %d",
					warm.Stats.Completed, cold.Stats.Completed)
			}
			if warm.Stats.ReconfigCache.Lookups() == 0 {
				t.Error("cached run recorded no memo lookups")
			}
			if cold.Stats.ReconfigCache.Lookups() != 0 {
				t.Errorf("cold run recorded %d memo lookups with the cache disabled",
					cold.Stats.ReconfigCache.Lookups())
			}
		})
	}
}

// TestReconfigCacheHitsOnPreemptionHeavyTrace checks the memo actually
// fires where it matters: the volatile B_S trace drives repeated
// reconfigurations whose KM sub-matchings and parameter plans recur.
func TestReconfigCacheHitsOnPreemptionHeavyTrace(t *testing.T) {
	res := Run(DefaultScenario(SpotServe, model.GPT20B, trace.BS(), 1))
	cs := res.Stats.ReconfigCache
	if cs.KMHits == 0 {
		t.Error("no KM sub-matching reuse on a preemption-heavy trace")
	}
	if cs.PlanHits == 0 {
		t.Error("no parameter-plan reuse between estimate and execution")
	}
	if cs.HitRate() <= 0 {
		t.Errorf("hit rate %v, want > 0", cs.HitRate())
	}
}
