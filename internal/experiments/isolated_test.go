package experiments

import (
	"context"
	"fmt"
	"reflect"
	"strings"
	"testing"
	"time"

	"spotserve/internal/model"
	"spotserve/internal/trace"
)

// TestIsolatedMatchesRunAll pins the fault-free equivalence: with no faults
// injected, RunAllIsolated produces byte-identical results to RunAll, for
// serial and parallel pools — isolation costs nothing when nothing fails.
func TestIsolatedMatchesRunAll(t *testing.T) {
	scs := sweepScenarios(7)
	want := RunAll(scs, 1)
	for _, workers := range []int{1, 4} {
		got := Sweep{Parallel: workers}.RunAllIsolated(scs)
		if len(got) != len(want) {
			t.Fatalf("workers=%d: %d results, want %d", workers, len(got), len(want))
		}
		for i := range got {
			if got[i].Err != nil {
				t.Fatalf("workers=%d job %d: unexpected error %v", workers, i, got[i].Err)
			}
			if got[i].Attempts != 1 {
				t.Errorf("workers=%d job %d: %d attempts, want 1", workers, i, got[i].Attempts)
			}
			if gf, wf := got[i].Result.Fingerprint(), want[i].Fingerprint(); gf != wf {
				t.Errorf("workers=%d job %d: isolated fingerprint %s != RunAll %s", workers, i, gf, wf)
			}
		}
	}
}

// TestIsolatedCapturesPanic asserts one panicking job costs one job: the
// sweep completes, the failed cell carries the panic as its error, and every
// other cell is byte-identical to a healthy run.
func TestIsolatedCapturesPanic(t *testing.T) {
	scs := []Scenario{
		DefaultScenario(SpotServe, model.OPT6B7, trace.AS(), 1),
		{System: System("bogus"), Spec: model.OPT6B7, Trace: trace.AS(), Rate: 1, Seed: 1},
		DefaultScenario(Reroute, model.OPT6B7, trace.AS(), 1),
	}
	healthy := []Result{Run(scs[0]), {}, Run(scs[2])}
	for _, workers := range []int{1, 3} {
		out := Sweep{Parallel: workers}.RunAllIsolated(scs)
		if out[1].Err == nil || !strings.Contains(out[1].Err.Error(), "panicked") {
			t.Fatalf("workers=%d: bogus cell err = %v, want captured panic", workers, out[1].Err)
		}
		for _, i := range []int{0, 2} {
			if out[i].Err != nil {
				t.Fatalf("workers=%d job %d: collateral error %v", workers, i, out[i].Err)
			}
			if out[i].Result.Fingerprint() != healthy[i].Fingerprint() {
				t.Errorf("workers=%d job %d: result perturbed by neighbor's panic", workers, i)
			}
		}
	}
}

// TestIsolatedRetryRecovers drives a transient fault (fails attempts 1..2,
// succeeds on 3) through the retry policy and asserts the recovery, the
// recorded backoff schedule, and that the recovered result is byte-identical
// to a never-faulted run.
func TestIsolatedRetryRecovers(t *testing.T) {
	sc := DefaultScenario(SpotServe, model.OPT6B7, trace.AS(), 1)
	want := Run(sc).Fingerprint()

	var slept []time.Duration
	sw := Sweep{
		Parallel: 1,
		Retry: RetryPolicy{
			MaxAttempts: 4,
			Backoff:     10 * time.Millisecond,
			Sleep:       func(d time.Duration) { slept = append(slept, d) },
		},
		Inject: func(job, attempt int) error {
			if attempt < 3 {
				return fmt.Errorf("transient %d/%d", job, attempt)
			}
			return nil
		},
	}
	out := sw.RunAllIsolated([]Scenario{sc})
	if out[0].Err != nil {
		t.Fatalf("retry did not recover: %v", out[0].Err)
	}
	if out[0].Attempts != 3 {
		t.Fatalf("attempts = %d, want 3", out[0].Attempts)
	}
	if got := out[0].Result.Fingerprint(); got != want {
		t.Fatal("recovered result differs from a never-faulted run")
	}
	wantSlept := []time.Duration{sw.Retry.Delay(2), sw.Retry.Delay(3)}
	if !reflect.DeepEqual(slept, wantSlept) {
		t.Fatalf("backoff schedule %v, want %v", slept, wantSlept)
	}
}

// TestIsolatedRetryExhaustsBudget: a persistent fault fails after exactly
// MaxAttempts tries and reports the final error.
func TestIsolatedRetryExhaustsBudget(t *testing.T) {
	calls := 0
	sw := Sweep{
		Parallel: 1,
		Retry:    RetryPolicy{MaxAttempts: 3},
		Inject: func(job, attempt int) error {
			calls++
			return fmt.Errorf("persistent (attempt %d)", attempt)
		},
	}
	out := sw.RunAllIsolated([]Scenario{DefaultScenario(SpotServe, model.OPT6B7, trace.AS(), 1)})
	if calls != 3 {
		t.Fatalf("inject called %d times, want 3", calls)
	}
	if out[0].Attempts != 3 || out[0].Err == nil {
		t.Fatalf("CellResult = {Attempts: %d, Err: %v}, want 3 attempts and the final error",
			out[0].Attempts, out[0].Err)
	}
	if !strings.Contains(out[0].Err.Error(), "attempt 3") {
		t.Fatalf("final error %v is not the last attempt's", out[0].Err)
	}
}

// TestRetriesDoNotPerturb: a generous retry policy with no fault firing must
// leave results byte-identical and never sleep — retries are inert until a
// failure happens.
func TestRetriesDoNotPerturb(t *testing.T) {
	scs := sweepScenarios(5)[:4]
	want := RunAll(scs, 1)
	var slept []time.Duration
	sw := Sweep{
		Parallel: 2,
		Retry: RetryPolicy{
			MaxAttempts: 5,
			Backoff:     time.Second,
			Sleep:       func(d time.Duration) { slept = append(slept, d) },
		},
	}
	out := sw.RunAllIsolated(scs)
	for i := range out {
		if out[i].Err != nil || out[i].Attempts != 1 {
			t.Fatalf("job %d: {Attempts: %d, Err: %v}, want one clean attempt", i, out[i].Attempts, out[i].Err)
		}
		if out[i].Result.Fingerprint() != want[i].Fingerprint() {
			t.Errorf("job %d: retry policy perturbed a fault-free result", i)
		}
	}
	if len(slept) != 0 {
		t.Fatalf("fault-free run slept %v", slept)
	}
}

// TestIsolatedCancellation: a cancelled context short-circuits jobs that
// have not started (Attempts 0, Err = ctx.Err()) and stops retries between
// attempts.
func TestIsolatedCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // cancelled before the sweep starts: nothing should run
	sw := Sweep{Parallel: 2, Context: ctx}
	ran := 0
	sw.Inject = func(job, attempt int) error { ran++; return nil }
	out := sw.RunAllIsolated(sweepScenarios(3)[:3])
	if ran != 0 {
		t.Fatalf("%d attempts ran under a pre-cancelled context", ran)
	}
	for i, cr := range out {
		if cr.Err != context.Canceled || cr.Attempts != 0 {
			t.Fatalf("job %d: {Attempts: %d, Err: %v}, want short-circuit to context.Canceled",
				i, cr.Attempts, cr.Err)
		}
	}

	// Cancel between attempts: the first attempt fails, the context is
	// cancelled during backoff, and the retry never runs.
	ctx2, cancel2 := context.WithCancel(context.Background())
	attempts := 0
	sw2 := Sweep{
		Parallel: 1,
		Context:  ctx2,
		Retry: RetryPolicy{
			MaxAttempts: 3,
			Backoff:     time.Millisecond,
			Sleep:       func(time.Duration) { cancel2() },
		},
		Inject: func(job, attempt int) error {
			attempts++
			return fmt.Errorf("fail attempt %d", attempt)
		},
	}
	out2 := sw2.RunAllIsolated([]Scenario{DefaultScenario(SpotServe, model.OPT6B7, trace.AS(), 1)})
	if attempts != 1 {
		t.Fatalf("%d attempts ran, want 1 (cancelled during backoff)", attempts)
	}
	if out2[0].Err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled to supersede the attempt error", out2[0].Err)
	}
}

// TestIsolatedOnCell: the callback fires once per job with the final
// CellResult, for successes and failures alike.
func TestIsolatedOnCell(t *testing.T) {
	scs := sweepScenarios(9)[:3]
	seen := map[int]CellResult{}
	sw := Sweep{Parallel: 3}
	sw.Inject = func(job, attempt int) error {
		if job == 1 {
			return fmt.Errorf("job 1 down")
		}
		return nil
	}
	sw.OnCell = func(i int, cr CellResult, fromCache bool) {
		if _, dup := seen[i]; dup {
			t.Errorf("OnCell fired twice for job %d", i)
		}
		seen[i] = cr
	}
	out := sw.RunAllIsolated(scs)
	if len(seen) != len(scs) {
		t.Fatalf("OnCell fired %d times, want %d", len(seen), len(scs))
	}
	for i := range scs {
		if (seen[i].Err == nil) != (out[i].Err == nil) {
			t.Errorf("job %d: callback and return disagree on failure", i)
		}
	}
	if seen[1].Err == nil {
		t.Fatal("job 1's injected failure not delivered to OnCell")
	}
}

// TestRunCellsIsolatedShape: replica grouping matches RunCells, and the
// flat job index Inject observes is cell×seeds+replica.
func TestRunCellsIsolatedShape(t *testing.T) {
	cells := []Scenario{
		DefaultScenario(SpotServe, model.OPT6B7, trace.AS(), 0),
		DefaultScenario(Reroute, model.OPT6B7, trace.BS(), 0),
	}
	seeds := SeedRange(1, 3)
	var injected []int
	sw := Sweep{Parallel: 1, Seeds: seeds}
	sw.Inject = func(job, attempt int) error {
		injected = append(injected, job)
		if job == 4 { // cell 1, replica 1
			return fmt.Errorf("flat job 4 down")
		}
		return nil
	}
	out := sw.RunCellsIsolated(cells)
	if len(out) != 2 || len(out[0]) != 3 || len(out[1]) != 3 {
		t.Fatalf("shape = %dx{%d,%d}, want 2x3", len(out), len(out[0]), len(out[1]))
	}
	if len(injected) != 6 {
		t.Fatalf("inject saw %d jobs, want 6", len(injected))
	}
	if out[1][1].Err == nil {
		t.Fatal("flat job 4 should map to cell 1 replica 1")
	}
	for i := range out {
		for j, cr := range out[i] {
			if i == 1 && j == 1 {
				continue
			}
			if cr.Err != nil {
				t.Errorf("cell %d replica %d: unexpected error %v", i, j, cr.Err)
			}
			if cr.Result.Scenario.Seed != seeds[j] {
				t.Errorf("cell %d replica %d: seed %d, want %d", i, j, cr.Result.Scenario.Seed, seeds[j])
			}
		}
	}
}

// TestRetryDelay pins the deterministic backoff schedule: doubling from
// Backoff, capped at MaxBackoff (DefaultMaxBackoff when unset).
func TestRetryDelay(t *testing.T) {
	cases := []struct {
		name    string
		policy  RetryPolicy
		attempt int
		want    time.Duration
	}{
		{"no-backoff", RetryPolicy{MaxAttempts: 3}, 2, 0},
		{"first-attempt", RetryPolicy{Backoff: time.Second}, 1, 0},
		{"base", RetryPolicy{Backoff: time.Second}, 2, time.Second},
		{"doubled", RetryPolicy{Backoff: time.Second}, 3, 2 * time.Second},
		{"doubled-twice", RetryPolicy{Backoff: time.Second}, 4, 4 * time.Second},
		{"capped", RetryPolicy{Backoff: time.Second, MaxBackoff: 3 * time.Second}, 4, 3 * time.Second},
		{"default-cap", RetryPolicy{Backoff: 20 * time.Second}, 3, DefaultMaxBackoff},
		{"cap-floor", RetryPolicy{Backoff: 5 * time.Second, MaxBackoff: time.Second}, 2, time.Second},
	}
	for _, tc := range cases {
		if got := tc.policy.Delay(tc.attempt); got != tc.want {
			t.Errorf("%s: Delay(%d) = %v, want %v", tc.name, tc.attempt, got, tc.want)
		}
	}
	if n := (RetryPolicy{}).attempts(); n != 1 {
		t.Errorf("zero policy attempts = %d, want 1", n)
	}
}
