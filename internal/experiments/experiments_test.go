package experiments

import (
	"testing"

	"spotserve/internal/model"
	"spotserve/internal/trace"
)

func TestTable1MatchesPaper(t *testing.T) {
	rows := Table1()
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.MinGPUs != r.PaperMinGPUs {
			t.Errorf("%s: min GPUs %d, paper %d", r.Model, r.MinGPUs, r.PaperMinGPUs)
		}
		rel := (r.LexeB1 - r.PaperLexe) / r.PaperLexe
		if rel < -0.15 || rel > 0.15 {
			t.Errorf("%s: lexe %v vs paper %v (%.0f%%)", r.Model, r.LexeB1, r.PaperLexe, rel*100)
		}
	}
}

func TestFigure5TracesAndMixes(t *testing.T) {
	rows := Figure5(1)
	if len(rows) != 4 {
		t.Fatalf("rows = %d, want 4 (AS, AS+O, BS, BS+O)", len(rows))
	}
	byName := map[string]Figure5Row{}
	for _, r := range rows {
		byName[r.Name] = r
	}
	for _, name := range []string{"AS", "BS", "AS+O", "BS+O"} {
		if _, ok := byName[name]; !ok {
			t.Fatalf("missing trace %s", name)
		}
	}
	// The +O mixes never offer less capacity than the raw spot trace's
	// deepest dip (on-demand fills in).
	if byName["BS+O"].MinTotal < byName["BS"].MinTotal {
		t.Errorf("BS+O min %d below BS min %d", byName["BS+O"].MinTotal, byName["BS"].MinTotal)
	}
	// The mixed traces actually contain on-demand instances at some point.
	if byName["BS+O"].OnDemand.MaxValue() == 0 {
		t.Error("BS+O never used on-demand instances")
	}
}

func TestFigure6ShapeHolds(t *testing.T) {
	if testing.Short() {
		t.Skip("full Figure 6 sweep is long")
	}
	cells := Figure6(1)
	if len(cells) != 3*4*3 {
		t.Fatalf("cells = %d, want 36", len(cells))
	}
	// Headline property: SpotServe's P99 beats both baselines for every
	// model on every trace (the paper reports 1.3–9.1× gaps). Allow two
	// violations across the grid for burst noise.
	type key struct{ model, trace string }
	p99 := map[key]map[System]float64{}
	for _, c := range cells {
		k := key{c.Model, c.Trace}
		if p99[k] == nil {
			p99[k] = map[System]float64{}
		}
		p99[k][c.System] = c.Summary.P99
	}
	violations := 0
	for k, m := range p99 {
		if m[SpotServe] >= m[Reparallel] || m[SpotServe] >= m[Reroute] {
			violations++
			t.Logf("violation at %v: spot=%.0f reparallel=%.0f reroute=%.0f",
				k, m[SpotServe], m[Reparallel], m[Reroute])
		}
	}
	if violations > 2 {
		t.Fatalf("%d of 12 grid points violate the headline ordering", violations)
	}
}

func TestFigure7CostAdvantage(t *testing.T) {
	if testing.Short() {
		t.Skip("cost sweep is long")
	}
	rows := Figure7(1)
	// Find SpotServe's best (cheapest) spot point and the on-demand
	// sweep: the paper's claim is up to 54% cost savings versus
	// on-demand serving at comparable latency.
	var spotCost, odCost float64
	for _, r := range rows {
		if r.System == SpotServe && (spotCost == 0 || r.CostPerToken < spotCost) && r.CostPerToken > 0 {
			spotCost = r.CostPerToken
		}
		if r.System == OnDemandOnly && r.CostPerToken > 0 {
			if odCost == 0 || r.CostPerToken < odCost {
				odCost = r.CostPerToken
			}
		}
	}
	if spotCost == 0 || odCost == 0 {
		t.Fatalf("missing cost points: spot=%v od=%v", spotCost, odCost)
	}
	saving := 1 - spotCost/odCost
	t.Logf("cheapest spot %.3f vs cheapest on-demand %.3f → saving %.0f%%", spotCost, odCost, saving*100)
	if saving < 0.25 {
		t.Fatalf("spot saving only %.0f%%, want substantial (paper: 54%%)", saving*100)
	}
}

func TestFigure8AdaptsConfiguration(t *testing.T) {
	rows := Figure8(1)
	if len(rows) != 6 {
		t.Fatalf("rows = %d, want 6", len(rows))
	}
	for _, r := range rows {
		if r.System != SpotServe {
			continue
		}
		if len(r.ConfigLog) < 2 {
			t.Errorf("%s on %s: SpotServe never adapted (%d entries)",
				r.System, r.Trace, len(r.ConfigLog))
		}
	}
	// SpotServe beats Reparallelization on P99 for each trace.
	p99 := map[string]map[System]float64{}
	for _, r := range rows {
		if p99[r.Trace] == nil {
			p99[r.Trace] = map[System]float64{}
		}
		p99[r.Trace][r.System] = r.Summary.P99
	}
	for tr, m := range p99 {
		if m[SpotServe] >= m[Reparallel] {
			t.Errorf("%s: SpotServe P99 %.0f not below Reparallelization %.0f",
				tr, m[SpotServe], m[Reparallel])
		}
	}
}

func TestFigure9AblationOrdering(t *testing.T) {
	if testing.Short() {
		t.Skip("ablation sweep is long")
	}
	rows := Figure9(1)
	if len(rows) != 10 {
		t.Fatalf("rows = %d, want 10", len(rows))
	}
	// Per trace: the fully ablated variant must be clearly worse than
	// full SpotServe (the paper reports 1.61× on A_S and 3.41× on B_S).
	byTrace := map[string][]Figure9Row{}
	for _, r := range rows {
		byTrace[r.Trace] = append(byTrace[r.Trace], r)
	}
	for tr, vs := range byTrace {
		full := vs[0]
		last := vs[len(vs)-1]
		if full.Variant != "SpotServe" || last.Variant != "-DeviceMapper" {
			t.Fatalf("%s: unexpected variant order %v", tr, vs)
		}
		if last.Summary.P99 <= full.Summary.P99 {
			t.Errorf("%s: ablated P99 %.0f not above full %.0f",
				tr, last.Summary.P99, full.Summary.P99)
		}
	}
}

func TestMinMemAblation(t *testing.T) {
	rows := MinMem()
	for _, r := range rows {
		if r.Model == "GPT-20B" {
			if r.MemOptMinGPUs != 12 || r.NaiveMinGPUs != 16 {
				t.Errorf("GPT-20B min GPUs: memopt %d naive %d, want 12/16",
					r.MemOptMinGPUs, r.NaiveMinGPUs)
			}
		}
		if r.NaiveMinGPUs < r.MemOptMinGPUs {
			t.Errorf("%s: naive min %d below memopt %d", r.Model, r.NaiveMinGPUs, r.MemOptMinGPUs)
		}
	}
}

func TestRunOnDemandOnly(t *testing.T) {
	sc := DefaultScenario(OnDemandOnly, model.OPT6B7, trace.Trace{Name: "od", Horizon: 600,
		Events: []trace.Event{{At: 0, Count: 0}}}, 1)
	sc.OnDemandN = 4
	sc.Rate = 0.5
	res := Run(sc)
	if res.Stats.Completed == 0 {
		t.Fatal("on-demand-only run served nothing")
	}
	if res.Stats.CostUSD <= 0 {
		t.Fatal("on-demand-only accrued no cost")
	}
}

func TestRunDeterministic(t *testing.T) {
	sc := DefaultScenario(SpotServe, model.GPT20B, trace.AS(), 7)
	a, b := Run(sc), Run(sc)
	if a.Stats.Latency.P99 != b.Stats.Latency.P99 || a.Stats.CostUSD != b.Stats.CostUSD {
		t.Fatal("Run not deterministic")
	}
}
