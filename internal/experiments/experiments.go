// Package experiments regenerates every table and figure of the paper's
// evaluation (§6). Each experiment has one entry point returning structured
// rows; cmd/experiments renders them as text tables, and the repository's
// benchmarks wrap them so `go test -bench` replays the full evaluation.
//
// Experiment index (see DESIGN.md):
//
//	Table 1  — model overview: min #GPUs, (P,M), l_exe(B=1)
//	Figure 5 — availability traces A_S, B_S and the +O mixes
//	Figure 6 — end-to-end latency, 3 models × 4 traces × 3 systems
//	Figure 7 — monetary cost vs latency on GPT-20B
//	Figure 8 — fluctuating (MAF) workload study
//	Figure 9 — ablation of SpotServe's components
package experiments

import (
	"fmt"

	"spotserve/internal/cloud"
	"spotserve/internal/config"
	"spotserve/internal/core"
	"spotserve/internal/cost"
	"spotserve/internal/market"
	"spotserve/internal/metrics"
	"spotserve/internal/model"
	"spotserve/internal/trace"
	"spotserve/internal/workload"
)

// System identifies which serving system a scenario runs.
type System string

const (
	SpotServe    System = "SpotServe"
	Reparallel   System = "Reparallelization"
	Reroute      System = "Rerouting"
	OnDemandOnly System = "OnDemand"
)

// Systems lists the comparison order used in the figures.
func Systems() []System { return []System{Reroute, Reparallel, SpotServe} }

// Scenario describes one serving run.
type Scenario struct {
	System System
	Spec   model.Spec
	// Trace is the spot availability trace (ignored for OnDemandOnly).
	Trace trace.Trace
	// OnDemandN is the fixed fleet size for OnDemandOnly.
	OnDemandN int
	// Rate is the stable arrival rate; RateFn (optional) overrides it
	// with a fluctuating profile.
	Rate   float64
	RateFn workload.RateFn
	// CV is the arrival burstiness (paper: 6).
	CV float64
	// AllowOnDemand enables Algorithm-1 on-demand mixing (+O traces).
	AllowOnDemand bool
	// Features overrides SpotServe's feature set when non-nil (ablation).
	Features *core.Features
	// Drain extends the run past the trace horizon so queued requests
	// finish.
	Drain float64
	// SampleFleet records instance counts every 10 s (Figure 5).
	SampleFleet bool
	Seed        int64

	// --- scenario-library axes (zero values = the paper's fixed setup) ---

	// AvailModel names the availability model that produced the trace
	// (fingerprinted; "" = a fixed/embedded trace).
	AvailModel string
	// TraceFn, when non-nil, regenerates the availability trace from the
	// replica seed, so multi-seed replication varies the spot market along
	// with the workload. It must be deterministic in the seed.
	TraceFn func(seed int64) trace.Trace
	// Fleet names the fleet preset (fingerprinted; "" = homogeneous
	// default) and CloudParams carries its resolved provider
	// configuration (nil = cloud.DefaultParams()).
	Fleet       string
	CloudParams *cloud.Params
	// Policy names the autoscaling policy (fingerprinted; "" =
	// fixed-target) and NewAutoscaler builds a fresh policy instance for
	// one run from the replica seed (policies may be stateful).
	Policy        string
	NewAutoscaler func(seed int64) cloud.Autoscaler
	// Market names the spot-price process driving time-varying spot
	// billing (fingerprinted; "" = flat prices), and MarketFn regenerates
	// the per-type price curves from the replica seed — so multi-seed
	// bands sample the price process along with the workload and trace.
	// It must be deterministic in the seed.
	Market   string
	MarketFn func(seed int64) market.Market

	// DisableReconfigCache runs the reconfiguration pipeline down its cold
	// recompute path — the reference mode the cache equivalence tests
	// compare against. Results are byte-identical either way (the memos
	// replay exact recurrences), so the flag is not fingerprinted.
	DisableReconfigCache bool

	// disableFastForward runs the engine one event per iteration — the
	// reference mode the fast-forward equivalence test compares against.
	// Results are byte-identical either way, so it is not part of the
	// public scenario surface (and not fingerprinted).
	disableFastForward bool
}

// Result bundles a scenario's outcome.
type Result struct {
	Scenario Scenario
	Stats    core.Stats
	// SpotCount / OnDemandCount sample the fleet over time when
	// SampleFleet was set.
	SpotCount     metrics.Series
	OnDemandCount metrics.Series
	// FinalConfig is the configuration at the end of the run.
	FinalConfig config.Config
	// Steps counts simulator events executed — a diagnostic for the
	// fast-forward kernel (not part of the result fingerprint: fast-forward
	// changes the event count, never the results).
	Steps uint64
}

// DefaultScenario fills the paper's defaults for a model/system/trace.
func DefaultScenario(sys System, spec model.Spec, tr trace.Trace, seed int64) Scenario {
	return Scenario{
		System: sys,
		Spec:   spec,
		Trace:  tr,
		Rate:   workload.DefaultRates()[spec.Name],
		CV:     6,
		Drain:  900,
		Seed:   seed,
	}
}

// Table1Row is one row of Table 1.
type Table1Row struct {
	Model   string
	SizeGB  float64
	MinGPUs int
	P, M    int
	LexeB1  float64
	// PaperMinGPUs / PaperLexe are the published values for comparison.
	PaperMinGPUs int
	PaperLexe    float64
}

// Table1 regenerates Table 1 from the cost model.
func Table1() []Table1Row {
	paper := map[string]struct {
		min  int
		lexe float64
	}{
		"OPT-6.7B":  {4, 5.447},
		"GPT-20B":   {12, 14.373},
		"LLaMA-30B": {16, 17.540},
	}
	var rows []Table1Row
	for _, spec := range model.All() {
		est := cost.NewEstimator(cost.DefaultParams(), spec)
		min, shape := est.MinGPUs(config.DefaultLimits(), cost.DefaultMaxTokens, false)
		rows = append(rows, Table1Row{
			Model:        spec.Name,
			SizeGB:       spec.ParamBytes / model.GB,
			MinGPUs:      min,
			P:            shape.P,
			M:            shape.M,
			LexeB1:       est.Exec(shape.P, shape.M, 1, cost.DefaultSeqIn, cost.DefaultSeqOut),
			PaperMinGPUs: paper[spec.Name].min,
			PaperLexe:    paper[spec.Name].lexe,
		})
	}
	return rows
}

// Figure5Row summarizes one availability trace (real or generated +O).
type Figure5Row struct {
	Name          string
	Spot          metrics.Series
	OnDemand      metrics.Series
	MinTotal, Max int
}

// Figure5 regenerates the four availability traces: A_S and B_S replayed
// directly, and A_S+O / B_S+O produced by running Algorithm 1 with
// on-demand mixing over them (as the paper generates its +O traces).
func Figure5(seed int64) []Figure5Row { return Figure5Sweep(SingleSeed(seed)) }

// Figure5Sweep is Figure5 on the parallel harness. The trace plots are a
// single-seed visualization, so only the sweep's first seed (or 1) is
// simulated; the two +O replays still share the worker pool.
func Figure5Sweep(sw Sweep) []Figure5Row {
	seed := int64(1)
	if len(sw.Seeds) > 0 {
		seed = sw.Seeds[0]
	}
	bases := []trace.Trace{trace.AS(), trace.BS()}
	var mixes []Scenario
	for _, base := range bases {
		sc := DefaultScenario(SpotServe, model.GPT20B, base, seed)
		sc.AllowOnDemand = true
		sc.SampleFleet = true
		mixes = append(mixes, sc)
	}
	mixed := Sweep{Parallel: sw.Parallel}.runAll(mixes)
	var rows []Figure5Row
	for i, base := range bases {
		// Raw spot trace.
		var spot metrics.Series
		for t := 0.0; t < base.Horizon; t += 10 {
			spot.Add(t, float64(base.CountAt(t)))
		}
		rows = append(rows, Figure5Row{
			Name: base.Name, Spot: spot,
			MinTotal: base.MinCount(), Max: base.MaxCount(),
		})
		// +O mix: replay with the GPT-20B serving stack allowed to
		// allocate on-demand instances.
		res := mixed[i]
		minTotal, maxTotal := fleetExtremes(res)
		rows = append(rows, Figure5Row{
			Name:     base.Name + "+O",
			Spot:     res.SpotCount,
			OnDemand: res.OnDemandCount,
			MinTotal: minTotal,
			Max:      maxTotal,
		})
	}
	return rows
}

func fleetExtremes(res Result) (min, max int) {
	min = 1 << 30
	for i := range res.SpotCount.Samples {
		tot := int(res.SpotCount.Samples[i].Value)
		if i < len(res.OnDemandCount.Samples) {
			tot += int(res.OnDemandCount.Samples[i].Value)
		}
		if tot < min {
			min = tot
		}
		if tot > max {
			max = tot
		}
	}
	if min == 1<<30 {
		min = 0
	}
	return
}

// Figure6Cell is one (model, trace, system) latency row. Summary is the
// first-seed replica (identical to the historical serial output); Reps
// carries the cross-seed bands when the sweep replicates.
type Figure6Cell struct {
	Model   string
	Trace   string
	System  System
	Summary metrics.Summary
	Reps    Replication
}

// Figure6 regenerates the end-to-end latency comparison: every model on
// A_S, B_S (spot only) and A_S+O, B_S+O (on-demand mixing), under all
// three systems.
func Figure6(seed int64) []Figure6Cell { return Figure6Sweep(SingleSeed(seed)) }

// Figure6Sweep runs the 36-cell latency grid through the parallel harness,
// replicating each cell at every sweep seed.
func Figure6Sweep(sw Sweep) []Figure6Cell {
	var out []Figure6Cell
	var cells []Scenario
	for _, spec := range model.All() {
		for _, tr := range []trace.Trace{trace.AS(), trace.BS()} {
			for _, mix := range []bool{false, true} {
				name := tr.Name
				if mix {
					name += "+O"
				}
				for _, sys := range Systems() {
					sc := DefaultScenario(sys, spec, tr, 1)
					sc.AllowOnDemand = mix
					cells = append(cells, sc)
					out = append(out, Figure6Cell{
						Model:  spec.Name,
						Trace:  name,
						System: sys,
					})
				}
			}
		}
	}
	reps := sw.seeded().RunCells(cells)
	for i := range out {
		out[i].Reps = NewReplication(reps[i])
		out[i].Summary = out[i].Reps.First
	}
	return out
}

// Figure7Row is one point of the cost/latency plot. The scalar fields are
// the first-seed replica; CostBand aggregates cost/token across seeds.
type Figure7Row struct {
	System System
	Trace  string
	// CostPerToken is USD per generated token ×1e-5 (the paper's axis).
	CostPerToken float64
	AvgLatency   float64
	P99Latency   float64
	Reps         Replication
	CostBand     metrics.Agg
}

// Figure7 regenerates the monetary-cost study on GPT-20B: the three
// systems on all four traces, plus the on-demand-only sweep.
func Figure7(seed int64) []Figure7Row { return Figure7Sweep(SingleSeed(seed)) }

// Figure7Sweep runs the cost study through the parallel harness.
func Figure7Sweep(sw Sweep) []Figure7Row {
	var out []Figure7Row
	var cells []Scenario
	spec := model.GPT20B
	for _, tr := range []trace.Trace{trace.AS(), trace.BS()} {
		for _, mix := range []bool{false, true} {
			name := tr.Name
			if mix {
				name += "+O"
			}
			for _, sys := range Systems() {
				sc := DefaultScenario(sys, spec, tr, 1)
				sc.AllowOnDemand = mix
				cells = append(cells, sc)
				out = append(out, Figure7Row{System: sys, Trace: name})
			}
		}
	}
	// On-demand only: a sweep over fixed fleet sizes (the dashed line).
	for _, n := range []int{4, 6, 8, 10} {
		sc := DefaultScenario(OnDemandOnly, spec, trace.Trace{}, 1)
		sc.OnDemandN = n
		sc.Trace = trace.Trace{Name: fmt.Sprintf("OD-%d", n), Horizon: 1200,
			Events: []trace.Event{{At: 0, Count: 0}}}
		cells = append(cells, sc)
		out = append(out, Figure7Row{System: OnDemandOnly, Trace: sc.Trace.Name})
	}
	reps := sw.seeded().RunCells(cells)
	for i := range out {
		out[i].Reps = NewReplication(reps[i])
		first := reps[i][0]
		out[i].CostPerToken = costPerToken(first)
		out[i].AvgLatency = first.Stats.Latency.Avg
		out[i].P99Latency = first.Stats.Latency.P99
		for _, r := range reps[i] {
			out[i].CostBand.Add(costPerToken(r))
		}
	}
	return out
}

// GeneratedTokens returns the tokens a run generated: completed requests
// times the workload's decode length. The single source for every
// cost-per-token conversion (Figure 7's axis, the scenario grid's
// $/1k-token column), so token accounting can only change in one place.
func (r Result) GeneratedTokens() float64 {
	return float64(r.Stats.Completed * cost.DefaultSeqOut)
}

// costPerToken converts a replica's accrued USD to the paper's cost axis
// (×1e-5 USD per generated token).
func costPerToken(res Result) float64 {
	tokens := res.GeneratedTokens()
	if tokens <= 0 {
		return 0
	}
	return res.Stats.CostUSD / tokens * 1e5
}

// Figure8Row is one system's outcome on the fluctuating workload. Summary,
// PerRequest and ConfigLog are the first-seed replica; Reps carries the
// cross-seed bands.
type Figure8Row struct {
	System     System
	Trace      string
	Summary    metrics.Summary
	PerRequest metrics.Series
	ConfigLog  []core.ConfigChange
	Reps       Replication
}

// Figure8 regenerates the fluctuating-workload study: the rescaled
// MAF-style arrival profile over the A'_S / B'_S traces with on-demand
// mixing, for all three systems.
func Figure8(seed int64) []Figure8Row { return Figure8Sweep(SingleSeed(seed)) }

// Figure8Sweep runs the fluctuating-workload study through the parallel
// harness.
func Figure8Sweep(sw Sweep) []Figure8Row {
	var out []Figure8Row
	var cells []Scenario
	spec := model.GPT20B
	base := workload.DefaultRates()[spec.Name]
	for _, tr := range []trace.Trace{trace.APrimeS(), trace.BPrimeS()} {
		for _, sys := range Systems() {
			sc := DefaultScenario(sys, spec, tr, 1)
			sc.AllowOnDemand = true
			sc.RateFn = workload.StepRate(workload.MAFSteps(base))
			cells = append(cells, sc)
			out = append(out, Figure8Row{System: sys, Trace: tr.Name + "+O"})
		}
	}
	reps := sw.seeded().RunCells(cells)
	for i := range out {
		out[i].Reps = NewReplication(reps[i])
		first := reps[i][0]
		out[i].Summary = first.Stats.Latency
		out[i].PerRequest = first.Stats.PerRequest
		out[i].ConfigLog = first.Stats.ConfigLog
	}
	return out
}

// Figure9Row is one ablation variant's outcome.
type Figure9Row struct {
	Variant string
	Trace   string
	Summary metrics.Summary
	Reps    Replication
}

// Figure9 regenerates the ablation study on GPT-20B over A_S and B_S:
// starting from full SpotServe, components are removed cumulatively —
// parallelization controller, migration planner, interruption arranger,
// device mapper (matching the paper's order).
func Figure9(seed int64) []Figure9Row { return Figure9Sweep(SingleSeed(seed)) }

// Figure9Sweep runs the ablation study through the parallel harness.
func Figure9Sweep(sw Sweep) []Figure9Row {
	variants := []struct {
		name string
		mut  func(*core.Features)
	}{
		{"SpotServe", func(f *core.Features) {}},
		{"-Controller", func(f *core.Features) { f.Controller = false }},
		{"-MigrationPlanner", func(f *core.Features) { f.MigrationPlanner = false }},
		{"-InterruptionArranger", func(f *core.Features) { f.Arranger = false }},
		{"-DeviceMapper", func(f *core.Features) { f.DeviceMapper = false; f.Hierarchical = false }},
	}
	var out []Figure9Row
	var cells []Scenario
	for _, tr := range []trace.Trace{trace.AS(), trace.BS()} {
		feat := core.AllFeatures()
		for _, v := range variants {
			v.mut(&feat)
			f := feat
			sc := DefaultScenario(SpotServe, model.GPT20B, tr, 1)
			sc.Features = &f
			cells = append(cells, sc)
			out = append(out, Figure9Row{Variant: v.name, Trace: tr.Name})
		}
	}
	reps := sw.seeded().RunCells(cells)
	for i := range out {
		out[i].Reps = NewReplication(reps[i])
		out[i].Summary = out[i].Reps.First
	}
	return out
}

// MinMemRow reports the migration-buffer ablation on configuration space.
type MinMemRow struct {
	Model         string
	MemOptMinGPUs int
	NaiveMinGPUs  int
}

// MinMem regenerates the §6.2 observation that the memory-optimized
// migration planner enlarges the configuration space (GPT-20B: 16→12).
func MinMem() []MinMemRow {
	var out []MinMemRow
	for _, spec := range model.All() {
		est := cost.NewEstimator(cost.DefaultParams(), spec)
		mo, _ := est.MinGPUs(config.DefaultLimits(), cost.DefaultMaxTokens, false)
		na, _ := est.MinGPUs(config.DefaultLimits(), cost.DefaultMaxTokens, true)
		out = append(out, MinMemRow{Model: spec.Name, MemOptMinGPUs: mo, NaiveMinGPUs: na})
	}
	return out
}
