package experiments

import (
	"testing"

	"spotserve/internal/model"
	"spotserve/internal/trace"
)

// TestFastForwardEquivalence proves the engine's fast-forward execution is
// an execution-strategy change only: full serving simulations — SpotServe
// with all features (JIT arrangement, migrations, preemptions) and both
// baselines — produce byte-identical result fingerprints whether the
// engine commits one iteration per event or batches runs of iterations
// into single events.
func TestFastForwardEquivalence(t *testing.T) {
	cells := []Scenario{
		DefaultScenario(SpotServe, model.GPT20B, trace.BS(), 42),
		DefaultScenario(SpotServe, model.OPT6B7, trace.AS(), 1),
		DefaultScenario(Reparallel, model.GPT20B, trace.AS(), 7),
		DefaultScenario(Reroute, model.GPT20B, trace.BS(), 7),
	}
	// On-demand mixing exercises acquisition-driven reconfigurations.
	cells[1].AllowOnDemand = true

	for _, sc := range cells {
		sc := sc
		name := string(sc.System) + "/" + sc.Spec.Name + "/" + sc.Trace.Name
		t.Run(name, func(t *testing.T) {
			fast := Run(sc)
			ref := sc
			ref.disableFastForward = true
			slow := Run(ref)
			// The reference runs with the flag cleared again so the
			// fingerprinted scenario fields match exactly.
			slowRes := slow
			slowRes.Scenario.disableFastForward = false
			if got, want := fast.Fingerprint(), slowRes.Fingerprint(); got != want {
				t.Errorf("fast-forward fingerprint %s != per-iteration %s", got, want)
			}
			if fast.Stats.Completed != slow.Stats.Completed {
				t.Errorf("completed: fast %d, per-iteration %d",
					fast.Stats.Completed, slow.Stats.Completed)
			}
		})
	}
}

// TestFastForwardFewerEvents checks fast-forward actually collapses events:
// the speedup comes from committing runs of decode iterations in single
// simulator events, so the fast path must execute far fewer of them.
func TestFastForwardFewerEvents(t *testing.T) {
	sc := DefaultScenario(SpotServe, model.GPT20B, trace.BS(), 42)
	fast := Run(sc)
	sc.disableFastForward = true
	slow := Run(sc)
	if fast.Steps == 0 || slow.Steps == 0 {
		t.Fatalf("steps not recorded: fast %d, slow %d", fast.Steps, slow.Steps)
	}
	if fast.Steps*2 > slow.Steps {
		t.Errorf("fast-forward executed %d events vs %d per-iteration — expected under half",
			fast.Steps, slow.Steps)
	}
}
