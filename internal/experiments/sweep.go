package experiments

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"spotserve/internal/metrics"
)

// Sweep configures the parallel scenario harness. The zero value runs every
// scenario once, at its own seed, on all available cores.
type Sweep struct {
	// Parallel bounds the worker pool; <= 0 means runtime.GOMAXPROCS(0).
	Parallel int
	// Seeds are the replication seeds: every cell runs once per seed and
	// the per-cell results are folded into mean/min/max/stderr bands.
	// Empty means each scenario keeps its own seed and runs once.
	Seeds []int64
	// Cache, when non-nil, is consulted before each scenario runs and
	// updated after: a hit skips the simulation entirely and replays the
	// stored Result. Only scenarios whose identity is fully captured by
	// CacheKey participate; everything else always runs. Because every
	// simulation is deterministic in its key, cache-on and cache-off
	// sweeps are byte-identical — the serving daemon's equivalence tests
	// pin this. Implementations must be safe for concurrent use.
	Cache ResultCache
	// OnResult, when non-nil, is invoked as each scenario finishes (from
	// worker goroutines, serialized by an internal mutex) with the job's
	// input index, its Result, and whether it was served from Cache.
	// Completion order is nondeterministic; the indexed results are not.
	OnResult func(i int, r Result, fromCache bool)

	// --- fault-tolerant (isolated) mode ---
	//
	// The fields below act only on the RunAllIsolated/RunCellsIsolated
	// entry points. The classic entry points keep the historical contract
	// — any worker panic aborts the whole sweep — so every golden stays
	// byte-identical; isolation is always an explicit opt-in.

	// Context, when non-nil, cancels an isolated run cooperatively: jobs
	// not yet started (and retries not yet attempted) short-circuit to
	// CellResult{Err: ctx.Err()} once it is done. Jobs already simulating
	// run to completion — the kernel itself is never interrupted, so every
	// completed cell stays byte-identical to an uncancelled run.
	Context context.Context
	// Retry is the per-cell retry policy for isolated runs; the zero value
	// runs each job exactly once.
	Retry RetryPolicy
	// Inject, when non-nil, is called at the start of every attempt with
	// the flat job index (cell×seeds+replica under RunCellsIsolated) and
	// the 1-based attempt number — the fault-injection seam internal/faults
	// plugs into. Returning an error fails the attempt; a panic inside it
	// is captured exactly like a worker panic. It must be deterministic in
	// (job, attempt) so chaos runs are reproducible. Injection happens
	// before the simulation runs, so a fault can never corrupt a result —
	// only replace it with an error.
	Inject func(job, attempt int) error
	// OnCell mirrors OnResult for isolated runs: invoked with the job's
	// input index and its CellResult (success or final failure) after the
	// last attempt, serialized by the same internal mutex.
	OnCell func(i int, cr CellResult, fromCache bool)
}

// CellResult is one job's fault-isolated outcome: the Result when any
// attempt succeeded, the final error otherwise, and how many attempts ran
// (0 only when the job was cancelled before it ever started). The isolated
// entry points degrade failures to per-cell errors — one panicking cell of
// a thousand costs one cell, never the sweep.
type CellResult struct {
	Result   Result
	Err      error
	Attempts int
}

// RetryPolicy bounds per-cell retries with deterministic capped exponential
// backoff. No jitter, by design: retry timing must never introduce
// nondeterminism, and the simulations it guards are seeded and
// reproducible, so synchronized retries cost nothing.
type RetryPolicy struct {
	// MaxAttempts is the attempt budget per cell; <= 1 means no retries.
	MaxAttempts int
	// Backoff is the delay before the second attempt; each further attempt
	// doubles it, capped at MaxBackoff. Zero means retry immediately.
	Backoff time.Duration
	// MaxBackoff caps the doubling (<= 0 means DefaultMaxBackoff).
	MaxBackoff time.Duration
	// Sleep overrides how the pool waits out a backoff (default: a timer
	// that also wakes on Context cancellation). Tests substitute a
	// recorder so retry schedules are asserted, not slept.
	Sleep func(d time.Duration)
}

// DefaultMaxBackoff caps exponential retry backoff when the policy leaves
// MaxBackoff zero.
const DefaultMaxBackoff = 30 * time.Second

// attempts resolves the effective attempt budget.
func (p RetryPolicy) attempts() int {
	if p.MaxAttempts < 1 {
		return 1
	}
	return p.MaxAttempts
}

// Delay returns the deterministic backoff slept before the given attempt
// (attempt >= 2): Backoff doubled per extra attempt, capped at MaxBackoff.
func (p RetryPolicy) Delay(attempt int) time.Duration {
	if p.Backoff <= 0 || attempt <= 1 {
		return 0
	}
	ceil := p.MaxBackoff
	if ceil <= 0 {
		ceil = DefaultMaxBackoff
	}
	d := p.Backoff
	for i := 2; i < attempt; i++ {
		d *= 2
		if d >= ceil {
			return ceil
		}
	}
	if d > ceil {
		return ceil
	}
	return d
}

// ResultCache stores completed Results keyed by CacheKey — the hook behind
// the serving daemon's fingerprint-equivalent cell cache. Get and Put may
// be called concurrently from sweep workers.
type ResultCache interface {
	Get(key string) (Result, bool)
	Put(key string, r Result)
}

// CacheKey returns a stable identity string for the scenario — the same
// scenario fields the Fingerprint digests — and whether the scenario is
// cacheable at all. A scenario is cacheable only when every behavior-
// carrying closure is named by a registry axis (TraceFn by AvailModel,
// NewAutoscaler by Policy, MarketFn by Market, CloudParams by Fleet) and
// the trace/rate inputs are named values: two scenarios with equal keys
// must simulate byte-identically, so anonymous functions and unnamed
// traces opt out rather than risk serving a stale look-alike.
func (sc Scenario) CacheKey() (string, bool) {
	if sc.RateFn != nil {
		return "", false
	}
	if sc.TraceFn != nil && sc.AvailModel == "" {
		return "", false
	}
	if sc.TraceFn == nil && sc.Trace.Name == "" && sc.System != OnDemandOnly {
		return "", false
	}
	if sc.NewAutoscaler != nil && sc.Policy == "" {
		return "", false
	}
	if sc.MarketFn != nil && sc.Market == "" {
		return "", false
	}
	if sc.CloudParams != nil && sc.Fleet == "" {
		return "", false
	}
	var b strings.Builder
	fmt.Fprintf(&b, "sys=%s spec=%s trace=%s odn=%d rate=%g cv=%g mix=%v drain=%g fleetsample=%v seed=%d\n",
		sc.System, sc.Spec.Name, sc.Trace.Name, sc.OnDemandN, sc.Rate, sc.CV,
		sc.AllowOnDemand, sc.Drain, sc.SampleFleet, sc.Seed)
	if sc.Features != nil {
		fmt.Fprintf(&b, "features=%+v\n", *sc.Features)
	}
	fmt.Fprintf(&b, "avail=%s fleet=%s policy=%s market=%s\n",
		sc.AvailModel, sc.Fleet, sc.Policy, sc.Market)
	return b.String(), true
}

// SingleSeed is the sweep used by the single-seed figure entry points:
// serial-equivalent replication at exactly one seed, parallel workers.
func SingleSeed(seed int64) Sweep { return Sweep{Seeds: []int64{seed}} }

// seeded returns the sweep with Seeds defaulted to {1}. The figure sweeps
// pin their grid to the sweep seeds, so an empty seed list there means
// "seed 1 once" rather than RunCells's keep-own-seed mode.
func (sw Sweep) seeded() Sweep {
	if len(sw.Seeds) == 0 {
		sw.Seeds = []int64{1}
	}
	return sw
}

// SeedRange returns n consecutive seeds starting at base, the expansion
// behind the -seeds N command-line flag.
func SeedRange(base int64, n int) []int64 {
	if n < 1 {
		n = 1
	}
	out := make([]int64, n)
	for i := range out {
		out[i] = base + int64(i)
	}
	return out
}

// workers resolves the effective pool size for n jobs.
func (sw Sweep) workers(n int) int {
	w := sw.Parallel
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w > n {
		w = n
	}
	if w < 1 {
		w = 1
	}
	return w
}

// RunAll executes the scenarios on a bounded worker pool and returns their
// results in input order. Each scenario simulates in its own kernel with its
// own RNGs, so results are byte-identical to running the same slice through
// Run serially, regardless of worker count or scheduling order. A panic in
// any worker (malformed scenario) is re-raised on the caller's goroutine.
func RunAll(scs []Scenario, parallel int) []Result {
	return Sweep{Parallel: parallel}.runAll(scs)
}

func (sw Sweep) runAll(scs []Scenario) []Result {
	return sw.runPool(scs, true)
}

// runPool is the worker pool behind runAll and the streaming entry points.
// With retain=false no Result outlives its OnResult callback — the pool's
// footprint is the in-flight jobs, whatever the job count.
func (sw Sweep) runPool(scs []Scenario, retain bool) []Result {
	var results []Result
	if retain {
		results = make([]Result, len(scs))
	}
	if len(scs) == 0 {
		return results
	}
	// notifyMu serializes OnResult so callback bookkeeping (streaming rows,
	// per-cell completion counts) needs no locking of its own.
	var notifyMu sync.Mutex
	runOne := func(i int) {
		r, fromCache := sw.runCached(scs[i])
		if retain {
			results[i] = r
		}
		if sw.OnResult != nil {
			notifyMu.Lock()
			sw.OnResult(i, r, fromCache)
			notifyMu.Unlock()
		}
	}
	workers := sw.workers(len(scs))
	if workers == 1 {
		for i := range scs {
			runOne(i)
		}
		return results
	}
	var next atomic.Int64
	next.Store(-1)
	// Panic values are wrapped in a single concrete type: atomic.Value
	// itself panics when two workers store inconsistently typed values.
	type capturedPanic struct{ val any }
	var panicked atomic.Value
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					panicked.CompareAndSwap(nil, capturedPanic{val: r})
				}
			}()
			for {
				i := int(next.Add(1))
				if i >= len(scs) || panicked.Load() != nil {
					return
				}
				runOne(i)
			}
		}()
	}
	wg.Wait()
	if r := panicked.Load(); r != nil {
		panic(r.(capturedPanic).val)
	}
	return results
}

// cacheKeyFor resolves the scenario's cache key when a cache is configured
// and the scenario is cacheable.
func cacheKeyFor(sc Scenario, cache ResultCache) (string, bool) {
	if cache == nil {
		return "", false
	}
	return sc.CacheKey()
}

// runCached simulates one scenario through the optional result cache and
// reports whether the result was replayed from it — the single run path
// shared by the classic and isolated pools, so cache semantics cannot
// drift between them.
func (sw Sweep) runCached(sc Scenario) (Result, bool) {
	if key, ok := cacheKeyFor(sc, sw.Cache); ok {
		if hit, found := sw.Cache.Get(key); found {
			return hit, true
		}
		r := Run(sc)
		sw.Cache.Put(key, r)
		return r, false
	}
	return Run(sc), false
}

// RunAllIsolated executes the scenarios on the bounded worker pool with
// per-cell fault isolation: a worker panic or an injected fault is captured
// into that job's CellResult instead of aborting the sweep, failed attempts
// retry under the sweep's RetryPolicy, and Context cancellation
// short-circuits jobs that have not started. Results are in input order.
// When nothing fails, every CellResult.Result is byte-identical to the
// corresponding RunAll result — the determinism-under-faults tests pin it.
func (sw Sweep) RunAllIsolated(scs []Scenario) []CellResult {
	out := make([]CellResult, len(scs))
	if len(scs) == 0 {
		return out
	}
	ctx := sw.Context
	if ctx == nil {
		ctx = context.Background()
	}
	var notifyMu sync.Mutex
	runOne := func(i int) CellResult {
		var cr CellResult
		fromCache := false
		budget := sw.Retry.attempts()
		for attempt := 1; attempt <= budget; attempt++ {
			if err := ctx.Err(); err != nil {
				// Cancelled between attempts (or before the first): the
				// cancellation reason supersedes any earlier fault.
				cr.Err = err
				break
			}
			cr.Attempts = attempt
			r, fc, err := sw.attemptOne(i, attempt, scs[i])
			if err == nil {
				cr.Result, cr.Err, fromCache = r, nil, fc
				break
			}
			cr.Err = err
			if attempt < budget {
				sw.backoff(ctx, sw.Retry.Delay(attempt+1))
			}
		}
		if sw.OnCell != nil {
			notifyMu.Lock()
			sw.OnCell(i, cr, fromCache)
			notifyMu.Unlock()
		}
		return cr
	}
	workers := sw.workers(len(scs))
	if workers == 1 {
		for i := range scs {
			out[i] = runOne(i)
		}
		return out
	}
	var next atomic.Int64
	next.Store(-1)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1))
				if i >= len(scs) {
					return
				}
				out[i] = runOne(i)
			}
		}()
	}
	wg.Wait()
	return out
}

// attemptOne runs one attempt of one job: fault injection first, then the
// (cache-aware) simulation, with any panic from either captured as the
// attempt's error. Injection precedes the run, so a fault replaces a
// result; it can never alter one.
func (sw Sweep) attemptOne(i, attempt int, sc Scenario) (r Result, fromCache bool, err error) {
	defer func() {
		if p := recover(); p != nil {
			err = fmt.Errorf("cell %d attempt %d panicked: %v", i, attempt, p)
		}
	}()
	if sw.Inject != nil {
		if ferr := sw.Inject(i, attempt); ferr != nil {
			return Result{}, false, ferr
		}
	}
	r, fromCache = sw.runCached(sc)
	return r, fromCache, nil
}

// backoff waits out a retry delay, waking early on cancellation. A custom
// RetryPolicy.Sleep (tests) is invoked as-is.
func (sw Sweep) backoff(ctx context.Context, d time.Duration) {
	if d <= 0 {
		return
	}
	if sw.Retry.Sleep != nil {
		sw.Retry.Sleep(d)
		return
	}
	t := time.NewTimer(d) //detlint:allow wallclock — retry backoff paces the host-side worker pool between attempts; simulated results never observe it (TestIsolatedMatchesRunAll pins identity under retries)
	defer t.Stop()
	select {
	case <-t.C:
	case <-ctx.Done():
	}
}

// RunCells runs every cell scenario once per sweep seed and returns the
// replicas grouped by cell: out[i][j] is cells[i] simulated at Seeds[j].
// With no sweep seeds each cell runs once at its own seed. Cell×seed jobs
// are flattened into one pool so replication parallelizes as well as the
// grid does.
func (sw Sweep) RunCells(cells []Scenario) [][]Result {
	jobs, perCell := sw.cellJobs(cells)
	flat := sw.runAll(jobs)
	out := make([][]Result, len(cells))
	for i := range cells {
		out[i] = flat[i*perCell : (i+1)*perCell]
	}
	return out
}

// RunCellsStream runs every cell×seed job through the same pool as
// RunCells — same flattening, same determinism, same callback ordering —
// but retains nothing: each Result is observable only through OnResult and
// is garbage the moment the callback returns. Peak memory is proportional
// to the in-flight jobs rather than cells×seeds, which is what lets a
// 1000+-cell grid stream through a bounded footprint.
func (sw Sweep) RunCellsStream(cells []Scenario) {
	jobs, _ := sw.cellJobs(cells)
	sw.runPool(jobs, false)
}

// RunCellsIsolated is RunCells with per-cell fault isolation: every
// replica's outcome (success or captured failure) is returned, grouped by
// cell, and a failing replica never aborts the sweep. Flat job index
// cell×perCell+replica is what Sweep.Inject and OnCell observe.
func (sw Sweep) RunCellsIsolated(cells []Scenario) [][]CellResult {
	jobs, perCell := sw.cellJobs(cells)
	flat := sw.RunAllIsolated(jobs)
	out := make([][]CellResult, len(cells))
	for i := range cells {
		out[i] = flat[i*perCell : (i+1)*perCell]
	}
	return out
}

// cellJobs flattens cells×seeds into one job list (cell-major) — the shared
// expansion behind RunCells and RunCellsIsolated.
func (sw Sweep) cellJobs(cells []Scenario) ([]Scenario, int) {
	seeds := sw.Seeds
	perCell := len(seeds)
	if perCell == 0 {
		perCell = 1
	}
	jobs := make([]Scenario, 0, len(cells)*perCell)
	for _, c := range cells {
		if len(seeds) == 0 {
			jobs = append(jobs, c)
			continue
		}
		for _, seed := range seeds {
			r := c
			r.Seed = seed
			jobs = append(jobs, r)
		}
	}
	return jobs, perCell
}

// Replication folds one cell's per-seed replicas into mergeable aggregates:
// mean latency, tail percentiles and monetary cost, each with min/max and
// stderr bands across seeds.
type Replication struct {
	Seeds               []int64
	Avg, P95, P99, Cost metrics.Agg
	// First is the replica at the first seed, preserved so single-seed
	// sweeps stay bit-compatible with the historical serial entry points.
	First metrics.Summary
}

// NewReplication aggregates a cell's replicas (as returned by RunCells).
func NewReplication(rs []Result) Replication {
	var rep Replication
	for i, r := range rs {
		if i == 0 {
			rep.First = r.Stats.Latency
		}
		rep.Seeds = append(rep.Seeds, r.Scenario.Seed)
		rep.Avg.Add(r.Stats.Latency.Avg)
		rep.P95.Add(r.Stats.Latency.P95)
		rep.P99.Add(r.Stats.Latency.P99)
		rep.Cost.Add(r.Stats.CostUSD)
	}
	return rep
}

// Replicated reports whether the cell ran at more than one seed, i.e.
// whether the bands carry information beyond the point estimate.
func (r Replication) Replicated() bool { return r.Avg.N > 1 }

// Fingerprint returns a stable hex digest of everything observable in the
// result: scenario identity, latency distribution, cost, counters, sampled
// series and the configuration log. Two runs are byte-identical iff their
// fingerprints match, which is how the determinism tests compare the
// parallel sweep against the serial path.
func (r Result) Fingerprint() string {
	var b strings.Builder
	sc := r.Scenario
	fmt.Fprintf(&b, "sys=%s spec=%s trace=%s odn=%d rate=%g cv=%g mix=%v drain=%g seed=%d\n",
		sc.System, sc.Spec.Name, sc.Trace.Name, sc.OnDemandN, sc.Rate, sc.CV, //detlint:allow fpdigest — Rate/CV are scenario INPUTS, never computed, so shortest-%g cannot drift; the bytes are pinned by the committed goldens
		sc.AllowOnDemand, sc.Drain, sc.Seed) //detlint:allow fpdigest — Drain is a scenario input constant; %g bytes are golden-pinned
	if sc.Features != nil {
		fmt.Fprintf(&b, "features=%+v\n", *sc.Features)
	}
	// Scenario-library axes are fingerprinted only when set, keeping the
	// historical digests of the fixed paper scenarios byte-identical.
	if sc.AvailModel != "" || sc.Fleet != "" || sc.Policy != "" || sc.Market != "" {
		fmt.Fprintf(&b, "avail=%s fleet=%s policy=%s market=%s\n",
			sc.AvailModel, sc.Fleet, sc.Policy, sc.Market)
	}
	st := r.Stats
	fmt.Fprintf(&b, "sub=%d done=%d cost=%x lat=%+v mig=%d rel=%d give=%d rec=%d od=%d\n",
		st.Submitted, st.Completed, st.CostUSD, st.Latency,
		st.Migrations, st.Reloads, st.CacheGiveUps, st.TokensRecovered, st.OnDemandAllocated)
	if st.Latencies != nil {
		for _, v := range st.Latencies.Values() {
			fmt.Fprintf(&b, "%x ", v)
		}
		b.WriteString("\n")
	}
	for _, s := range st.PerRequest.Samples {
		fmt.Fprintf(&b, "pr %x %x\n", s.At, s.Value)
	}
	for _, c := range st.ConfigLog {
		fmt.Fprintf(&b, "cfg %x %v %s\n", c.At, c.Config, c.Reason)
	}
	for _, s := range r.SpotCount.Samples {
		fmt.Fprintf(&b, "spot %x %x\n", s.At, s.Value)
	}
	for _, s := range r.OnDemandCount.Samples {
		fmt.Fprintf(&b, "od %x %x\n", s.At, s.Value)
	}
	fmt.Fprintf(&b, "final=%v\n", r.FinalConfig)
	sum := sha256.Sum256([]byte(b.String()))
	return hex.EncodeToString(sum[:])
}
