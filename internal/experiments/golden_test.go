package experiments

import (
	"math"
	"testing"

	"spotserve/internal/model"
	"spotserve/internal/trace"
)

// The golden values below pin the paper's reproduced numbers at fixed
// inputs. They are exact outputs of the current planner/mapper/engine
// stack: a diff here means a refactor changed the simulated physics, not
// just the code — update the goldens only with a justification in the
// commit message.

// TestGoldenTable1 pins Table 1 exactly (the cost model is closed-form, so
// full float precision is stable across platforms).
func TestGoldenTable1(t *testing.T) {
	want := []Table1Row{
		{Model: "OPT-6.7B", SizeGB: 25, MinGPUs: 4, P: 1, M: 4,
			LexeB1: 5.601637292729671, PaperMinGPUs: 4, PaperLexe: 5.447},
		{Model: "GPT-20B", SizeGB: 74.5, MinGPUs: 12, P: 3, M: 4,
			LexeB1: 15.873804396260805, PaperMinGPUs: 12, PaperLexe: 14.373},
		{Model: "LLaMA-30B", SizeGB: 111.8, MinGPUs: 16, P: 2, M: 8,
			LexeB1: 17.755876809192014, PaperMinGPUs: 16, PaperLexe: 17.540},
	}
	got := Table1()
	if len(got) != len(want) {
		t.Fatalf("rows = %d, want %d", len(got), len(want))
	}
	for i, w := range want {
		g := got[i]
		if g.Model != w.Model || g.SizeGB != w.SizeGB || g.MinGPUs != w.MinGPUs ||
			g.P != w.P || g.M != w.M ||
			g.PaperMinGPUs != w.PaperMinGPUs || g.PaperLexe != w.PaperLexe {
			t.Errorf("row %d: %+v, want %+v", i, g, w)
		}
		if math.Abs(g.LexeB1-w.LexeB1) > 1e-12 {
			t.Errorf("%s: lexe %v, want golden %v", g.Model, g.LexeB1, w.LexeB1)
		}
	}
}

// TestGoldenFigure6Cell pins one full end-to-end simulation — SpotServe
// serving GPT-20B on trace B_S at seed 42 — down to its result
// fingerprint, so refactors of the planner, mapper or engine cannot
// silently shift the reproduced figures.
func TestGoldenFigure6Cell(t *testing.T) {
	sc := DefaultScenario(SpotServe, model.GPT20B, trace.BS(), 42)
	res := Run(sc)
	s := res.Stats.Latency

	if res.Stats.Submitted != 349 || res.Stats.Completed != 349 {
		t.Errorf("requests = %d/%d, want 349/349", res.Stats.Completed, res.Stats.Submitted)
	}
	checks := []struct {
		name      string
		got, want float64
	}{
		{"avg", s.Avg, 112.63390625800362},
		{"p90", s.P90, 220.89634896344853},
		{"p95", s.P95, 235.4528080911166},
		{"p98", s.P98, 242.87151726058596},
		{"p99", s.P99, 243.11806914117574},
		{"costUSD", res.Stats.CostUSD, 6.064166666666667},
	}
	for _, c := range checks {
		if math.Abs(c.got-c.want) > 1e-9 {
			t.Errorf("%s = %v, want golden %v", c.name, c.got, c.want)
		}
	}
	const goldenFP = "331a3221e335d60394908415b1612d05389e8109584eb012ba99efaa11a323fc"
	if fp := res.Fingerprint(); fp != goldenFP {
		t.Errorf("fingerprint %s, want golden %s", fp, goldenFP)
	}
}
