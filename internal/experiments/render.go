package experiments

import (
	"fmt"
	"sort"
	"strings"

	"spotserve/internal/metrics"
)

// RenderTable1 formats Table 1 next to the paper's published values.
func RenderTable1(rows []Table1Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table 1: Overview of LLMs evaluated (measured vs paper)\n")
	fmt.Fprintf(&b, "%-11s %8s %8s %7s  %-12s %12s %10s\n",
		"Model", "Size", "minGPUs", "(P,M)", "lexe(B=1)", "paper minGPU", "paper lexe")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-11s %6.1fGB %8d  (%d,%d)  %9.3fs %12d %9.3fs\n",
			r.Model, r.SizeGB, r.MinGPUs, r.P, r.M, r.LexeB1, r.PaperMinGPUs, r.PaperLexe)
	}
	return b.String()
}

// RenderFigure5 draws the availability traces as ASCII step plots.
func RenderFigure5(rows []Figure5Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 5: spot availability traces (4 GPUs per instance)\n")
	for _, r := range rows {
		fmt.Fprintf(&b, "\n%s  (min total %d, max %d)\n", r.Name, r.MinTotal, r.Max)
		b.WriteString(sparkline("spot     ", r.Spot, 12))
		if len(r.OnDemand.Samples) > 0 && r.OnDemand.MaxValue() > 0 {
			b.WriteString(sparkline("on-demand", r.OnDemand, 12))
		}
	}
	return b.String()
}

// sparkline renders a series as a coarse one-line plot.
func sparkline(label string, s metrics.Series, maxV float64) string {
	if len(s.Samples) == 0 {
		return fmt.Sprintf("%s (empty)\n", label)
	}
	glyphs := []rune(" ▁▂▃▄▅▆▇█")
	// Downsample to at most 60 columns.
	step := len(s.Samples) / 60
	if step < 1 {
		step = 1
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s |", label)
	for i := 0; i < len(s.Samples); i += step {
		v := s.Samples[i].Value
		idx := int(v / maxV * float64(len(glyphs)-1))
		if idx < 0 {
			idx = 0
		}
		if idx >= len(glyphs) {
			idx = len(glyphs) - 1
		}
		sb.WriteRune(glyphs[idx])
	}
	sb.WriteString("|\n")
	return sb.String()
}

// RenderFigure6 formats the latency grid.
func RenderFigure6(cells []Figure6Cell) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 6: end-to-end serving latency (seconds)\n")
	fmt.Fprintf(&b, "%-11s %-6s %-18s %8s %8s %8s %8s %8s\n",
		"Model", "Trace", "System", "Avg", "P90", "P95", "P98", "P99")
	for _, c := range cells {
		s := c.Summary
		fmt.Fprintf(&b, "%-11s %-6s %-18s %8.1f %8.1f %8.1f %8.1f %8.1f\n",
			c.Model, c.Trace, c.System, s.Avg, s.P90, s.P95, s.P98, s.P99)
	}
	b.WriteString("\n")
	b.WriteString(renderFigure6Speedups(cells))
	return b.String()
}

// renderFigure6Speedups reports SpotServe's P99 improvement factors, the
// paper's headline metric (2.4–9.1×).
func renderFigure6Speedups(cells []Figure6Cell) string {
	type key struct{ model, trace string }
	p99 := map[key]map[System]float64{}
	var keys []key
	for _, c := range cells {
		k := key{c.Model, c.Trace}
		if p99[k] == nil {
			p99[k] = map[System]float64{}
			keys = append(keys, k)
		}
		p99[k][c.System] = c.Summary.P99
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].model != keys[j].model {
			return keys[i].model < keys[j].model
		}
		return keys[i].trace < keys[j].trace
	})
	var b strings.Builder
	fmt.Fprintf(&b, "SpotServe P99 speedup:  vs Reparallelization   vs Rerouting\n")
	for _, k := range keys {
		m := p99[k]
		if m[SpotServe] <= 0 {
			continue
		}
		fmt.Fprintf(&b, "%-11s %-6s %12.2fx %20.2fx\n",
			k.model, k.trace, m[Reparallel]/m[SpotServe], m[Reroute]/m[SpotServe])
	}
	return b.String()
}

// RenderFigure7 formats the cost/latency study.
func RenderFigure7(rows []Figure7Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 7: monetary cost on GPT-20B (cost ×1e-5 USD/token)\n")
	fmt.Fprintf(&b, "%-18s %-6s %12s %10s %10s\n", "System", "Trace", "Cost/token", "Avg lat", "P99 lat")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-18s %-6s %12.3f %9.1fs %9.1fs\n",
			r.System, r.Trace, r.CostPerToken, r.AvgLatency, r.P99Latency)
	}
	return b.String()
}

// RenderFigure8 formats the fluctuating-workload study with the
// configuration timeline (Figures 8e–8h).
func RenderFigure8(rows []Figure8Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 8: fluctuating (MAF) workload on GPT-20B\n")
	fmt.Fprintf(&b, "%-18s %-8s %8s %8s %8s\n", "System", "Trace", "Avg", "P98", "P99")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-18s %-8s %8.1f %8.1f %8.1f\n",
			r.System, r.Trace, r.Summary.Avg, r.Summary.P98, r.Summary.P99)
	}
	for _, r := range rows {
		if r.System != SpotServe || len(r.ConfigLog) == 0 {
			continue
		}
		fmt.Fprintf(&b, "\nSpotServe configuration timeline on %s:\n", r.Trace)
		for _, c := range r.ConfigLog {
			fmt.Fprintf(&b, "  t=%6.0fs  %-22v %s\n", c.At, c.Config, c.Reason)
		}
	}
	return b.String()
}

// RenderFigure9 formats the ablation with degradation factors relative to
// the full system (the paper's 1.61×/3.41× stack-up).
func RenderFigure9(rows []Figure9Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 9: ablation study on GPT-20B\n")
	fmt.Fprintf(&b, "%-22s %-6s %10s %10s %10s %10s\n",
		"Variant", "Trace", "Avg", "P99", "Avg×", "P99×")
	base := map[string]metrics.Summary{}
	for _, r := range rows {
		if r.Variant == "SpotServe" {
			base[r.Trace] = r.Summary
		}
	}
	for _, r := range rows {
		bf, pf := 1.0, 1.0
		if bs, ok := base[r.Trace]; ok && bs.Avg > 0 && bs.P99 > 0 {
			bf = r.Summary.Avg / bs.Avg
			pf = r.Summary.P99 / bs.P99
		}
		fmt.Fprintf(&b, "%-22s %-6s %9.1fs %9.1fs %9.2fx %9.2fx\n",
			r.Variant, r.Trace, r.Summary.Avg, r.Summary.P99, bf, pf)
	}
	return b.String()
}

// RenderMinMem formats the migration-buffer ablation.
func RenderMinMem(rows []MinMemRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Minimum GPUs per pipeline (memory-optimized vs naive migration buffer)\n")
	fmt.Fprintf(&b, "%-11s %10s %8s\n", "Model", "memopt", "naive")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-11s %10d %8d\n", r.Model, r.MemOptMinGPUs, r.NaiveMinGPUs)
	}
	return b.String()
}
