package experiments

import (
	"fmt"
	"sort"
	"strings"

	"spotserve/internal/metrics"
)

// RenderTable1 formats Table 1 next to the paper's published values.
func RenderTable1(rows []Table1Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table 1: Overview of LLMs evaluated (measured vs paper)\n")
	fmt.Fprintf(&b, "%-11s %8s %8s %7s  %-12s %12s %10s\n",
		"Model", "Size", "minGPUs", "(P,M)", "lexe(B=1)", "paper minGPU", "paper lexe")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-11s %6.1fGB %8d  (%d,%d)  %9.3fs %12d %9.3fs\n",
			r.Model, r.SizeGB, r.MinGPUs, r.P, r.M, r.LexeB1, r.PaperMinGPUs, r.PaperLexe)
	}
	return b.String()
}

// RenderFigure5 draws the availability traces as ASCII step plots.
func RenderFigure5(rows []Figure5Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 5: spot availability traces (4 GPUs per instance)\n")
	for _, r := range rows {
		fmt.Fprintf(&b, "\n%s  (min total %d, max %d)\n", r.Name, r.MinTotal, r.Max)
		b.WriteString(sparkline("spot     ", r.Spot, 12))
		if len(r.OnDemand.Samples) > 0 && r.OnDemand.MaxValue() > 0 {
			b.WriteString(sparkline("on-demand", r.OnDemand, 12))
		}
	}
	return b.String()
}

// sparkline renders a series as a coarse one-line plot.
func sparkline(label string, s metrics.Series, maxV float64) string {
	if len(s.Samples) == 0 {
		return fmt.Sprintf("%s (empty)\n", label)
	}
	glyphs := []rune(" ▁▂▃▄▅▆▇█")
	// Downsample to at most 60 columns: the stride must round up, or any
	// sample count in (60, 120] floors to step 1–2 and overflows the row
	// (150 samples / floored step 2 = 75 columns).
	step := (len(s.Samples) + 59) / 60
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s |", label)
	for i := 0; i < len(s.Samples); i += step {
		v := s.Samples[i].Value
		idx := int(v / maxV * float64(len(glyphs)-1))
		if idx < 0 {
			idx = 0
		}
		if idx >= len(glyphs) {
			idx = len(glyphs) - 1
		}
		sb.WriteRune(glyphs[idx])
	}
	sb.WriteString("|\n")
	return sb.String()
}

// RenderFigure6 formats the latency grid. When the cells carry multi-seed
// replication, two band columns (mean ±stderr [min,max] across seeds) are
// appended for Avg and P99.
func RenderFigure6(cells []Figure6Cell) string {
	bands := anyReplicated(cells, func(c Figure6Cell) Replication { return c.Reps })
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 6: end-to-end serving latency (seconds)\n")
	fmt.Fprintf(&b, "%-11s %-6s %-18s %8s %8s %8s %8s %8s",
		"Model", "Trace", "System", "Avg", "P90", "P95", "P98", "P99")
	if bands {
		fmt.Fprintf(&b, "  %-30s %-30s", "Avg band", "P99 band")
	}
	b.WriteString("\n")
	for _, c := range cells {
		s := c.Summary
		fmt.Fprintf(&b, "%-11s %-6s %-18s %8.1f %8.1f %8.1f %8.1f %8.1f",
			c.Model, c.Trace, c.System, s.Avg, s.P90, s.P95, s.P98, s.P99)
		if bands {
			fmt.Fprintf(&b, "  %-30s %-30s",
				c.Reps.Avg.Band(), c.Reps.P99.Band())
		}
		b.WriteString("\n")
	}
	if bands {
		fmt.Fprintf(&b, "(bands: mean ±stderr [min,max] over %d seeds)\n",
			maxReplication(cells, func(c Figure6Cell) Replication { return c.Reps }))
	}
	b.WriteString("\n")
	b.WriteString(renderFigure6Speedups(cells))
	return b.String()
}

// maxReplication returns the largest per-row seed count — the footer's
// honest claim when replication is uneven (reading row 0 alone prints
// "over 1 seeds" whenever only later rows replicated).
func maxReplication[T any](rows []T, rep func(T) Replication) int {
	n := 0
	for _, r := range rows {
		if k := rep(r).Avg.N; k > n {
			n = k
		}
	}
	return n
}

// anyReplicated reports whether any row carries multi-seed bands, which is
// what switches the renderers into band-column mode.
func anyReplicated[T any](rows []T, rep func(T) Replication) bool {
	for _, r := range rows {
		if rep(r).Replicated() {
			return true
		}
	}
	return false
}

// renderFigure6Speedups reports SpotServe's P99 improvement factors, the
// paper's headline metric (2.4–9.1×).
func renderFigure6Speedups(cells []Figure6Cell) string {
	type key struct{ model, trace string }
	p99 := map[key]map[System]float64{}
	var keys []key
	for _, c := range cells {
		k := key{c.Model, c.Trace}
		if p99[k] == nil {
			p99[k] = map[System]float64{}
			keys = append(keys, k)
		}
		p99[k][c.System] = c.Summary.P99
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].model != keys[j].model {
			return keys[i].model < keys[j].model
		}
		return keys[i].trace < keys[j].trace
	})
	var b strings.Builder
	fmt.Fprintf(&b, "SpotServe P99 speedup:  vs Reparallelization   vs Rerouting\n")
	for _, k := range keys {
		m := p99[k]
		if m[SpotServe] <= 0 {
			continue
		}
		// A missing or zero baseline P99 (the baseline wasn't run for this
		// model×trace, or served nothing) has no meaningful ratio — mark it
		// rather than printing +Inf or a bogus 0.00x.
		fmt.Fprintf(&b, "%-11s %-6s %12s %20s\n",
			k.model, k.trace, speedupCell(m[Reparallel], m[SpotServe]), speedupCell(m[Reroute], m[SpotServe]))
	}
	return b.String()
}

// speedupCell formats one baseline/SpotServe P99 ratio, or "n/a" when the
// baseline P99 is zero (absent row or empty run).
func speedupCell(baseline, spotserve float64) string {
	if baseline <= 0 {
		return "n/a"
	}
	return fmt.Sprintf("%.2fx", baseline/spotserve)
}

// RenderFigure7 formats the cost/latency study, with cost and P99 bands
// across seeds when the rows were replicated.
func RenderFigure7(rows []Figure7Row) string {
	bands := anyReplicated(rows, func(r Figure7Row) Replication { return r.Reps })
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 7: monetary cost on GPT-20B (cost ×1e-5 USD/token)\n")
	fmt.Fprintf(&b, "%-18s %-6s %12s %10s %10s", "System", "Trace", "Cost/token", "Avg lat", "P99 lat")
	if bands {
		fmt.Fprintf(&b, "  %-30s %-30s", "Cost band", "P99 band")
	}
	b.WriteString("\n")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-18s %-6s %12.3f %9.1fs %9.1fs",
			r.System, r.Trace, r.CostPerToken, r.AvgLatency, r.P99Latency)
		if bands {
			cb := r.CostBand.Band()
			fmt.Fprintf(&b, "  %-30s %-30s",
				fmt.Sprintf("%.3f ±%.3f", cb.Mean, cb.Stderr), r.Reps.P99.Band())
		}
		b.WriteString("\n")
	}
	return b.String()
}

// RenderFigure8 formats the fluctuating-workload study with the
// configuration timeline (Figures 8e–8h).
func RenderFigure8(rows []Figure8Row) string {
	var b strings.Builder
	bands := anyReplicated(rows, func(r Figure8Row) Replication { return r.Reps })
	fmt.Fprintf(&b, "Figure 8: fluctuating (MAF) workload on GPT-20B\n")
	fmt.Fprintf(&b, "%-18s %-8s %8s %8s %8s", "System", "Trace", "Avg", "P98", "P99")
	if bands {
		fmt.Fprintf(&b, "  %-30s", "P99 band")
	}
	b.WriteString("\n")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-18s %-8s %8.1f %8.1f %8.1f",
			r.System, r.Trace, r.Summary.Avg, r.Summary.P98, r.Summary.P99)
		if bands {
			fmt.Fprintf(&b, "  %-30s", r.Reps.P99.Band())
		}
		b.WriteString("\n")
	}
	for _, r := range rows {
		if r.System != SpotServe || len(r.ConfigLog) == 0 {
			continue
		}
		fmt.Fprintf(&b, "\nSpotServe configuration timeline on %s:\n", r.Trace)
		for _, c := range r.ConfigLog {
			fmt.Fprintf(&b, "  t=%6.0fs  %-22v %s\n", c.At, c.Config, c.Reason)
		}
	}
	return b.String()
}

// RenderFigure9 formats the ablation with degradation factors relative to
// the full system (the paper's 1.61×/3.41× stack-up).
func RenderFigure9(rows []Figure9Row) string {
	var b strings.Builder
	bands := anyReplicated(rows, func(r Figure9Row) Replication { return r.Reps })
	fmt.Fprintf(&b, "Figure 9: ablation study on GPT-20B\n")
	fmt.Fprintf(&b, "%-22s %-6s %10s %10s %10s %10s",
		"Variant", "Trace", "Avg", "P99", "Avg×", "P99×")
	if bands {
		fmt.Fprintf(&b, "  %-30s", "P99 band")
	}
	b.WriteString("\n")
	base := map[string]metrics.Summary{}
	for _, r := range rows {
		if r.Variant == "SpotServe" {
			base[r.Trace] = r.Summary
		}
	}
	for _, r := range rows {
		bf, pf := 1.0, 1.0
		if bs, ok := base[r.Trace]; ok && bs.Avg > 0 && bs.P99 > 0 {
			bf = r.Summary.Avg / bs.Avg
			pf = r.Summary.P99 / bs.P99
		}
		fmt.Fprintf(&b, "%-22s %-6s %9.1fs %9.1fs %9.2fx %9.2fx",
			r.Variant, r.Trace, r.Summary.Avg, r.Summary.P99, bf, pf)
		if bands {
			fmt.Fprintf(&b, "  %-30s", r.Reps.P99.Band())
		}
		b.WriteString("\n")
	}
	return b.String()
}

// RenderMinMem formats the migration-buffer ablation.
func RenderMinMem(rows []MinMemRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Minimum GPUs per pipeline (memory-optimized vs naive migration buffer)\n")
	fmt.Fprintf(&b, "%-11s %10s %8s\n", "Model", "memopt", "naive")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-11s %10d %8d\n", r.Model, r.MemOptMinGPUs, r.NaiveMinGPUs)
	}
	return b.String()
}
