package experiments

import (
	"testing"

	"spotserve/internal/model"
	"spotserve/internal/trace"
)

// TestDebugLLaMAAS is a diagnostic; run with -v to inspect behavior.
func TestDebugLLaMAAS(t *testing.T) {
	for _, sys := range []System{SpotServe, Reparallel} {
		sc := DefaultScenario(sys, model.LLaMA30B, trace.AS(), 1)
		res := Run(sc)
		st := res.Stats
		t.Logf("%s: submitted=%d completed=%d migrations=%d reloads=%d giveups=%d tokensRec=%d",
			sys, st.Submitted, st.Completed, st.Migrations, st.Reloads, st.CacheGiveUps, st.TokensRecovered)
		t.Logf("  latency: %v", st.Latency)
		for _, c := range st.ConfigLog {
			t.Logf("  t=%6.0f cfg=%v reason=%s", c.At, c.Config, c.Reason)
		}
		// Latency of requests arriving in each 200 s window.
		for w := 0.0; w < 1200; w += 200 {
			var n int
			var sum float64
			for _, s := range st.PerRequest.Samples {
				if s.At >= w && s.At < w+200 {
					n++
					sum += s.Value
				}
			}
			if n > 0 {
				t.Logf("  window %4.0f-%4.0f: n=%3d avg=%6.1f", w, w+200, n, sum/float64(n))
			}
		}
	}
}
