package experiments

import (
	"strings"
	"testing"

	"spotserve/internal/core"
	"spotserve/internal/metrics"
)

func TestRenderTable1(t *testing.T) {
	s := RenderTable1(Table1())
	for _, want := range []string{"OPT-6.7B", "GPT-20B", "LLaMA-30B", "paper", "minGPUs"} {
		if !strings.Contains(s, want) {
			t.Errorf("missing %q in:\n%s", want, s)
		}
	}
}

func TestRenderMinMem(t *testing.T) {
	s := RenderMinMem(MinMem())
	if !strings.Contains(s, "memopt") || !strings.Contains(s, "naive") {
		t.Fatalf("bad render:\n%s", s)
	}
}

func TestRenderFigure6WithSpeedups(t *testing.T) {
	cells := []Figure6Cell{
		{Model: "GPT-20B", Trace: "AS", System: SpotServe, Summary: metrics.Summary{Avg: 10, P99: 100}},
		{Model: "GPT-20B", Trace: "AS", System: Reparallel, Summary: metrics.Summary{Avg: 20, P99: 200}},
		{Model: "GPT-20B", Trace: "AS", System: Reroute, Summary: metrics.Summary{Avg: 30, P99: 500}},
	}
	s := RenderFigure6(cells)
	if !strings.Contains(s, "2.00x") || !strings.Contains(s, "5.00x") {
		t.Fatalf("speedups missing:\n%s", s)
	}
}

func TestRenderFigure7(t *testing.T) {
	rows := []Figure7Row{
		{System: SpotServe, Trace: "BS", CostPerToken: 10.1, AvgLatency: 200, P99Latency: 400},
		{System: OnDemandOnly, Trace: "OD-4", CostPerToken: 15.2, AvgLatency: 180, P99Latency: 390},
	}
	s := RenderFigure7(rows)
	if !strings.Contains(s, "10.100") || !strings.Contains(s, "OD-4") {
		t.Fatalf("bad render:\n%s", s)
	}
}

func TestRenderFigure8Timeline(t *testing.T) {
	rows := []Figure8Row{
		{System: SpotServe, Trace: "A'S+O",
			Summary:   metrics.Summary{Avg: 70, P98: 140, P99: 150},
			ConfigLog: []core.ConfigChange{{At: 30, Reason: "workload"}}},
	}
	s := RenderFigure8(rows)
	if !strings.Contains(s, "configuration timeline") || !strings.Contains(s, "workload") {
		t.Fatalf("timeline missing:\n%s", s)
	}
}

func TestRenderFigure9Factors(t *testing.T) {
	rows := []Figure9Row{
		{Variant: "SpotServe", Trace: "AS", Summary: metrics.Summary{Avg: 10, P99: 100}},
		{Variant: "-Controller", Trace: "AS", Summary: metrics.Summary{Avg: 30, P99: 250}},
	}
	s := RenderFigure9(rows)
	if !strings.Contains(s, "2.50x") || !strings.Contains(s, "3.00x") {
		t.Fatalf("factors missing:\n%s", s)
	}
}

func TestRenderFigure5Sparkline(t *testing.T) {
	var spot metrics.Series
	for i := 0; i < 100; i++ {
		spot.Add(float64(i*10), float64(i%12))
	}
	rows := []Figure5Row{{Name: "X", Spot: spot, MinTotal: 0, Max: 11}}
	s := RenderFigure5(rows)
	if !strings.Contains(s, "X  (min total 0, max 11)") {
		t.Fatalf("header missing:\n%s", s)
	}
	if !strings.Contains(s, "|") {
		t.Fatal("sparkline missing")
	}
	// Empty series degrade gracefully.
	if !strings.Contains(sparkline("e", metrics.Series{}, 1), "empty") {
		t.Fatal("empty sparkline not handled")
	}
}
