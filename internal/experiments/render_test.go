package experiments

import (
	"strings"
	"testing"

	"spotserve/internal/core"
	"spotserve/internal/metrics"
)

func TestRenderTable1(t *testing.T) {
	s := RenderTable1(Table1())
	for _, want := range []string{"OPT-6.7B", "GPT-20B", "LLaMA-30B", "paper", "minGPUs"} {
		if !strings.Contains(s, want) {
			t.Errorf("missing %q in:\n%s", want, s)
		}
	}
}

func TestRenderMinMem(t *testing.T) {
	s := RenderMinMem(MinMem())
	if !strings.Contains(s, "memopt") || !strings.Contains(s, "naive") {
		t.Fatalf("bad render:\n%s", s)
	}
}

func TestRenderFigure6WithSpeedups(t *testing.T) {
	cells := []Figure6Cell{
		{Model: "GPT-20B", Trace: "AS", System: SpotServe, Summary: metrics.Summary{Avg: 10, P99: 100}},
		{Model: "GPT-20B", Trace: "AS", System: Reparallel, Summary: metrics.Summary{Avg: 20, P99: 200}},
		{Model: "GPT-20B", Trace: "AS", System: Reroute, Summary: metrics.Summary{Avg: 30, P99: 500}},
	}
	s := RenderFigure6(cells)
	if !strings.Contains(s, "2.00x") || !strings.Contains(s, "5.00x") {
		t.Fatalf("speedups missing:\n%s", s)
	}
}

func TestRenderFigure7(t *testing.T) {
	rows := []Figure7Row{
		{System: SpotServe, Trace: "BS", CostPerToken: 10.1, AvgLatency: 200, P99Latency: 400},
		{System: OnDemandOnly, Trace: "OD-4", CostPerToken: 15.2, AvgLatency: 180, P99Latency: 390},
	}
	s := RenderFigure7(rows)
	if !strings.Contains(s, "10.100") || !strings.Contains(s, "OD-4") {
		t.Fatalf("bad render:\n%s", s)
	}
}

func TestRenderFigure8Timeline(t *testing.T) {
	rows := []Figure8Row{
		{System: SpotServe, Trace: "A'S+O",
			Summary:   metrics.Summary{Avg: 70, P98: 140, P99: 150},
			ConfigLog: []core.ConfigChange{{At: 30, Reason: "workload"}}},
	}
	s := RenderFigure8(rows)
	if !strings.Contains(s, "configuration timeline") || !strings.Contains(s, "workload") {
		t.Fatalf("timeline missing:\n%s", s)
	}
}

func TestRenderFigure9Factors(t *testing.T) {
	rows := []Figure9Row{
		{Variant: "SpotServe", Trace: "AS", Summary: metrics.Summary{Avg: 10, P99: 100}},
		{Variant: "-Controller", Trace: "AS", Summary: metrics.Summary{Avg: 30, P99: 250}},
	}
	s := RenderFigure9(rows)
	if !strings.Contains(s, "2.50x") || !strings.Contains(s, "3.00x") {
		t.Fatalf("factors missing:\n%s", s)
	}
}

// sparklineColumns counts the plot glyphs between the pipes of one
// rendered sparkline row.
func sparklineColumns(t *testing.T, line string) int {
	t.Helper()
	open := strings.IndexRune(line, '|')
	close := strings.LastIndex(line, "|")
	if open < 0 || close <= open {
		t.Fatalf("no |plot| in %q", line)
	}
	return len([]rune(line[open+1 : close]))
}

// The sparkline contract is "at most 60 columns"; flooring the stride broke
// it for every sample count in (60, 120] (150 samples rendered 75 columns).
func TestSparklineWidthContract(t *testing.T) {
	cases := []struct {
		samples, want int
	}{
		{59, 59},  // below the cap: one column per sample
		{60, 60},  // exactly the cap
		{61, 31},  // just above: stride 2, not 61 columns
		{150, 50}, // the floored-stride overflow case: stride 3, was 75
	}
	for _, c := range cases {
		var s metrics.Series
		for i := 0; i < c.samples; i++ {
			s.Add(float64(i), float64(i%7))
		}
		line := sparkline("x", s, 7)
		got := sparklineColumns(t, line)
		if got != c.want {
			t.Errorf("%d samples: %d columns, want %d", c.samples, got, c.want)
		}
		if got > 60 {
			t.Errorf("%d samples: %d columns exceeds the 60-column contract", c.samples, got)
		}
	}
}

// The band footer must report the replication actually present: with mixed
// replication (only later cells replicated), reading cells[0] printed
// "over 1 seeds" under bands that plainly aggregate 3.
func TestRenderFigure6MixedReplicationFooter(t *testing.T) {
	var rep Replication
	for _, v := range []float64{10, 11, 12} {
		rep.Avg.Add(v)
		rep.P99.Add(v * 10)
	}
	cells := []Figure6Cell{
		{Model: "GPT-20B", Trace: "AS", System: SpotServe, Summary: metrics.Summary{Avg: 10, P99: 100}},
		{Model: "GPT-20B", Trace: "BS", System: SpotServe, Summary: metrics.Summary{Avg: 11, P99: 110}, Reps: rep},
	}
	s := RenderFigure6(cells)
	if !strings.Contains(s, "over 3 seeds") {
		t.Fatalf("footer does not report the max replication:\n%s", s)
	}
	if strings.Contains(s, "over 1 seeds") {
		t.Fatalf("footer still reads cells[0]:\n%s", s)
	}
}

// A zero baseline P99 (baseline absent or served nothing) must render as
// n/a, not +Inf or 0.00x.
func TestRenderFigure6SpeedupZeroBaseline(t *testing.T) {
	cells := []Figure6Cell{
		{Model: "GPT-20B", Trace: "AS", System: SpotServe, Summary: metrics.Summary{Avg: 10, P99: 100}},
		{Model: "GPT-20B", Trace: "AS", System: Reparallel, Summary: metrics.Summary{Avg: 20, P99: 200}},
		// Reroute missing entirely: its map entry is the zero value.
	}
	s := renderFigure6Speedups(cells)
	if !strings.Contains(s, "2.00x") {
		t.Fatalf("present baseline ratio missing:\n%s", s)
	}
	if !strings.Contains(s, "n/a") {
		t.Fatalf("zero baseline not marked n/a:\n%s", s)
	}
	if strings.Contains(s, "Inf") || strings.Contains(s, "0.00x") {
		t.Fatalf("zero baseline rendered as a bogus ratio:\n%s", s)
	}
}

func TestRenderFigure5Sparkline(t *testing.T) {
	var spot metrics.Series
	for i := 0; i < 100; i++ {
		spot.Add(float64(i*10), float64(i%12))
	}
	rows := []Figure5Row{{Name: "X", Spot: spot, MinTotal: 0, Max: 11}}
	s := RenderFigure5(rows)
	if !strings.Contains(s, "X  (min total 0, max 11)") {
		t.Fatalf("header missing:\n%s", s)
	}
	if !strings.Contains(s, "|") {
		t.Fatal("sparkline missing")
	}
	// Empty series degrade gracefully.
	if !strings.Contains(sparkline("e", metrics.Series{}, 1), "empty") {
		t.Fatal("empty sparkline not handled")
	}
}
