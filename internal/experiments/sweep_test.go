package experiments

import (
	"reflect"
	"sync"
	"testing"

	"spotserve/internal/core"
	"spotserve/internal/model"
	"spotserve/internal/trace"
	"spotserve/internal/workload"
)

// sweepScenarios builds a deliberately diverse scenario list: every system,
// several models and traces, on-demand mixing, a fluctuating workload, an
// ablated feature set, and fleet sampling — so the determinism comparison
// covers every code path the figures exercise.
func sweepScenarios(seed int64) []Scenario {
	var scs []Scenario
	for _, sys := range Systems() {
		scs = append(scs, DefaultScenario(sys, model.OPT6B7, trace.AS(), seed))
	}
	mix := DefaultScenario(SpotServe, model.GPT20B, trace.BS(), seed)
	mix.AllowOnDemand = true
	mix.SampleFleet = true
	scs = append(scs, mix)

	fluct := DefaultScenario(Reparallel, model.GPT20B, trace.APrimeS(), seed)
	fluct.AllowOnDemand = true
	fluct.RateFn = workload.StepRate(workload.MAFSteps(fluct.Rate))
	scs = append(scs, fluct)

	feat := core.AllFeatures()
	feat.MigrationPlanner = false
	abl := DefaultScenario(SpotServe, model.LLaMA30B, trace.BS(), seed)
	abl.Features = &feat
	scs = append(scs, abl)

	od := DefaultScenario(OnDemandOnly, model.OPT6B7, trace.Trace{
		Name: "OD", Horizon: 600, Events: []trace.Event{{At: 0, Count: 0}},
	}, seed)
	od.OnDemandN = 4
	scs = append(scs, od)
	return scs
}

// TestParallelMatchesSerial locks in the harness's core guarantee: the
// parallel sweep produces byte-identical results to the serial path at the
// same seeds, for every worker count.
func TestParallelMatchesSerial(t *testing.T) {
	scs := sweepScenarios(7)
	serial := RunAll(scs, 1)
	for _, workers := range []int{2, 4, 8} {
		par := RunAll(scs, workers)
		for i := range serial {
			if sf, pf := serial[i].Fingerprint(), par[i].Fingerprint(); sf != pf {
				t.Errorf("workers=%d scenario %d (%s/%s/%s): parallel fingerprint %s != serial %s",
					workers, i, scs[i].System, scs[i].Spec.Name, scs[i].Trace.Name, pf, sf)
			}
			// Structural equality too (RateFn is a func value, which
			// reflect.DeepEqual only matches when nil — drop it).
			a, b := serial[i], par[i]
			a.Scenario.RateFn, b.Scenario.RateFn = nil, nil
			if !reflect.DeepEqual(a, b) {
				t.Errorf("workers=%d scenario %d: results differ structurally", workers, i)
			}
		}
	}
}

// TestSerialRerunsAgree asserts two serial runs of the same Scenario are
// identical — the sim kernel's stable FIFO tie-break guarantee.
func TestSerialRerunsAgree(t *testing.T) {
	for _, sc := range sweepScenarios(11)[:4] {
		a, b := Run(sc), Run(sc)
		if a.Fingerprint() != b.Fingerprint() {
			t.Errorf("%s/%s/%s: two serial runs of the same scenario disagree",
				sc.System, sc.Spec.Name, sc.Trace.Name)
		}
	}
}

// TestRunCellsReplication checks the seed expansion: every cell runs once
// per sweep seed, replicas land grouped and ordered, and the folded
// aggregates match the per-replica stats.
func TestRunCellsReplication(t *testing.T) {
	seeds := SeedRange(3, 4)
	sw := Sweep{Parallel: 4, Seeds: seeds}
	cells := []Scenario{
		DefaultScenario(SpotServe, model.OPT6B7, trace.AS(), 0),
		DefaultScenario(Reroute, model.OPT6B7, trace.BS(), 0),
	}
	reps := sw.RunCells(cells)
	if len(reps) != len(cells) {
		t.Fatalf("cells out = %d, want %d", len(reps), len(cells))
	}
	for i, rs := range reps {
		if len(rs) != len(seeds) {
			t.Fatalf("cell %d: %d replicas, want %d", i, len(rs), len(seeds))
		}
		for j, r := range rs {
			if r.Scenario.Seed != seeds[j] {
				t.Errorf("cell %d replica %d: seed %d, want %d", i, j, r.Scenario.Seed, seeds[j])
			}
			if r.Scenario.System != cells[i].System {
				t.Errorf("cell %d replica %d: system %s, want %s", i, j, r.Scenario.System, cells[i].System)
			}
		}
		rep := NewReplication(rs)
		if rep.Avg.N != len(seeds) || !rep.Replicated() {
			t.Fatalf("cell %d: replication N = %d, want %d", i, rep.Avg.N, len(seeds))
		}
		if rep.First != rs[0].Stats.Latency {
			t.Errorf("cell %d: First summary is not the first replica's", i)
		}
		if rep.Avg.Min() > rep.Avg.Mean() || rep.Avg.Mean() > rep.Avg.Max() {
			t.Errorf("cell %d: band out of order: min %v mean %v max %v",
				i, rep.Avg.Min(), rep.Avg.Mean(), rep.Avg.Max())
		}
		// Different seeds should actually vary the workload: with 4
		// seeds, at least one latency statistic must spread.
		if rep.Avg.Min() == rep.Avg.Max() && rep.Cost.Min() == rep.Cost.Max() {
			t.Errorf("cell %d: 4 seeds produced zero spread — replication is not replicating", i)
		}
	}
}

// TestRunCellsWithoutSeedsKeepsOwn verifies that an empty seed list leaves
// each scenario's own seed untouched (the RunAll-compatible mode).
func TestRunCellsWithoutSeedsKeepsOwn(t *testing.T) {
	a := DefaultScenario(SpotServe, model.OPT6B7, trace.AS(), 21)
	b := DefaultScenario(SpotServe, model.OPT6B7, trace.AS(), 22)
	reps := Sweep{Parallel: 2}.RunCells([]Scenario{a, b})
	if len(reps) != 2 || len(reps[0]) != 1 || len(reps[1]) != 1 {
		t.Fatalf("shape = %v, want 2 cells × 1 replica", [2]int{len(reps[0]), len(reps[1])})
	}
	if reps[0][0].Scenario.Seed != 21 || reps[1][0].Scenario.Seed != 22 {
		t.Errorf("seeds = %d,%d, want 21,22", reps[0][0].Scenario.Seed, reps[1][0].Scenario.Seed)
	}
}

// TestFigureSweepsMatchSerialEntryPoints pins the compatibility contract:
// FigureN(seed) and FigureNSweep(SingleSeed(seed)) under any worker count
// agree with each other.
func TestFigureSweepsMatchSerialEntryPoints(t *testing.T) {
	serial := Figure9Sweep(Sweep{Parallel: 1, Seeds: []int64{5}})
	par := Figure9Sweep(Sweep{Parallel: 8, Seeds: []int64{5}})
	if !reflect.DeepEqual(serial, par) {
		t.Fatal("Figure9 parallel sweep differs from serial sweep at the same seed")
	}
	entry := Figure9(5)
	if !reflect.DeepEqual(serial, entry) {
		t.Fatal("Figure9(seed) differs from Figure9Sweep(SingleSeed(seed))")
	}
}

// TestRunAllPanicPropagates asserts a worker panic (malformed scenario)
// surfaces on the caller's goroutine instead of crashing the process.
func TestRunAllPanicPropagates(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic from unknown system to propagate")
		}
	}()
	scs := []Scenario{
		DefaultScenario(SpotServe, model.OPT6B7, trace.AS(), 1),
		{System: System("bogus"), Spec: model.OPT6B7, Trace: trace.AS(), Rate: 1, Seed: 1},
		// A second panicking scenario: concurrent worker panics must not
		// crash the process either.
		{System: System("bogus2"), Spec: model.OPT6B7, Trace: trace.AS(), Rate: 1, Seed: 1},
		DefaultScenario(Reroute, model.OPT6B7, trace.AS(), 1),
	}
	RunAll(scs, 4)
}

func TestSeedRange(t *testing.T) {
	got := SeedRange(10, 3)
	want := []int64{10, 11, 12}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("SeedRange(10,3) = %v, want %v", got, want)
	}
	if one := SeedRange(4, 0); len(one) != 1 || one[0] != 4 {
		t.Errorf("SeedRange(4,0) = %v, want [4]", one)
	}
}

func TestRunAllEmpty(t *testing.T) {
	if out := RunAll(nil, 8); len(out) != 0 {
		t.Fatalf("RunAll(nil) = %d results", len(out))
	}
}

// mapCache is a minimal ResultCache for the hook tests.
type mapCache struct {
	mu   sync.Mutex
	m    map[string]Result
	hits int
}

func newMapCache() *mapCache { return &mapCache{m: map[string]Result{}} }

func (c *mapCache) Get(key string) (Result, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	r, ok := c.m[key]
	if ok {
		c.hits++
	}
	return r, ok
}

func (c *mapCache) Put(key string, r Result) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.m[key] = r
}

// TestCacheKeyRules pins which scenarios may enter the result cache: every
// behavior-carrying closure must be named by a registry axis, and equal
// identities produce equal keys while any identity field changes the key.
func TestCacheKeyRules(t *testing.T) {
	base := DefaultScenario(SpotServe, model.OPT6B7, trace.AS(), 3)
	key1, ok := base.CacheKey()
	if !ok || key1 == "" {
		t.Fatal("named-trace scenario should be cacheable")
	}
	if key2, _ := base.CacheKey(); key2 != key1 {
		t.Fatal("CacheKey not stable")
	}
	seeded := base
	seeded.Seed = 4
	if k, _ := seeded.CacheKey(); k == key1 {
		t.Fatal("seed change must change the key")
	}

	anonTrace := base
	anonTrace.TraceFn = func(seed int64) trace.Trace { return trace.AS() }
	if _, ok := anonTrace.CacheKey(); ok {
		t.Fatal("anonymous TraceFn without AvailModel must not be cacheable")
	}
	anonTrace.AvailModel = "diurnal"
	if _, ok := anonTrace.CacheKey(); !ok {
		t.Fatal("named availability model should restore cacheability")
	}

	ratefn := base
	ratefn.RateFn = workload.StepRate(workload.MAFSteps(ratefn.Rate))
	if _, ok := ratefn.CacheKey(); ok {
		t.Fatal("RateFn scenarios must not be cacheable")
	}

	unnamed := base
	unnamed.Trace = trace.Trace{}
	if _, ok := unnamed.CacheKey(); ok {
		t.Fatal("unnamed trace must not be cacheable")
	}
}

// TestSweepCacheEquivalence is the harness-level half of the daemon's
// determinism bar: a cached sweep replays byte-identical results, and the
// second pass is served entirely from the cache.
func TestSweepCacheEquivalence(t *testing.T) {
	cells := []Scenario{
		DefaultScenario(SpotServe, model.OPT6B7, trace.AS(), 0),
		DefaultScenario(Reroute, model.OPT6B7, trace.BS(), 0),
	}
	sw := Sweep{Parallel: 4, Seeds: SeedRange(1, 2)}
	plain := sw.RunCells(cells)

	cache := newMapCache()
	cached := sw
	cached.Cache = cache
	first := cached.RunCells(cells)
	if cache.hits != 0 {
		t.Fatalf("cold cache hit %d times", cache.hits)
	}
	second := cached.RunCells(cells)
	if want := len(cells) * len(sw.Seeds); cache.hits != want {
		t.Fatalf("warm pass hit %d, want %d (fully cached)", cache.hits, want)
	}
	for i := range plain {
		for j := range plain[i] {
			pf := plain[i][j].Fingerprint()
			if f := first[i][j].Fingerprint(); f != pf {
				t.Errorf("cell %d seed %d: cache-on (cold) fingerprint differs", i, j)
			}
			if f := second[i][j].Fingerprint(); f != pf {
				t.Errorf("cell %d seed %d: cache-on (warm) fingerprint differs", i, j)
			}
		}
	}
}

// TestOnResultCoversEveryJob asserts the callback fires exactly once per
// flattened job with the right index, under serial and parallel pools, and
// reports cache provenance.
func TestOnResultCoversEveryJob(t *testing.T) {
	cells := []Scenario{
		DefaultScenario(SpotServe, model.OPT6B7, trace.AS(), 0),
		DefaultScenario(Reroute, model.OPT6B7, trace.BS(), 0),
	}
	for _, workers := range []int{1, 4} {
		cache := newMapCache()
		for pass := 0; pass < 2; pass++ {
			seen := map[int]bool{}
			var cachedCount int
			sw := Sweep{Parallel: workers, Seeds: SeedRange(1, 3), Cache: cache}
			sw.OnResult = func(i int, r Result, fromCache bool) {
				if seen[i] {
					t.Errorf("workers=%d pass=%d: index %d delivered twice", workers, pass, i)
				}
				seen[i] = true
				if fromCache {
					cachedCount++
				}
				if want := sw.Seeds[i%len(sw.Seeds)]; r.Scenario.Seed != want {
					t.Errorf("index %d carries seed %d, want %d", i, r.Scenario.Seed, want)
				}
			}
			out := sw.RunCells(cells)
			if len(seen) != len(cells)*len(sw.Seeds) {
				t.Fatalf("workers=%d pass=%d: callback fired %d times, want %d",
					workers, pass, len(seen), len(cells)*len(sw.Seeds))
			}
			wantCached := 0
			if pass == 1 {
				wantCached = len(cells) * len(sw.Seeds)
			}
			if cachedCount != wantCached {
				t.Fatalf("workers=%d pass=%d: %d cached deliveries, want %d",
					workers, pass, cachedCount, wantCached)
			}
			_ = out
		}
	}
}
