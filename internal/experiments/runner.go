package experiments

import (
	"fmt"

	"spotserve/internal/cloud"
	"spotserve/internal/core"
	"spotserve/internal/sim"
	"spotserve/internal/workload"

	"spotserve/internal/baseline"
)

// runnable is the common surface of the three serving systems.
type runnable interface {
	Install()
	LoadWorkload(reqs []workload.Request, horizon float64)
	Stats() core.Stats
}

type spotAdapter struct{ srv *core.Server }

func (a spotAdapter) Install() { a.srv.Install() }
func (a spotAdapter) LoadWorkload(reqs []workload.Request, horizon float64) {
	a.srv.LoadWorkload(reqs, horizon)
}
func (a spotAdapter) Stats() core.Stats { return a.srv.Stats() }

// Run executes one scenario to completion and collects its result.
func Run(sc Scenario) Result {
	s := sim.New()
	cp := cloud.DefaultParams()
	if sc.CloudParams != nil {
		cp = *sc.CloudParams
	}
	cp.Seed = sc.Seed + 1000
	// A configured spot-price market regenerates its curves per replica,
	// exactly like TraceFn below; spot billing then integrates the curves
	// piecewise instead of freezing flat prices at readiness.
	if sc.MarketFn != nil {
		m := sc.MarketFn(sc.Seed)
		cp.Market = &m
	}
	cl := cloud.New(s, cp, nil)

	// Seeded availability models regenerate their trace per replica so
	// multi-seed bands sample the spot market, not just the workload.
	if sc.TraceFn != nil {
		sc.Trace = sc.TraceFn(sc.Seed)
	}

	opts := core.DefaultOptions(sc.Spec)
	opts.BaseRate = sc.Rate
	opts.DisableFastForward = sc.disableFastForward
	opts.DisableReconfigCache = sc.DisableReconfigCache
	if sc.Features != nil {
		opts.Features = *sc.Features
	}
	opts.Features.AllowOnDemand = sc.AllowOnDemand
	if sc.NewAutoscaler != nil {
		opts.Autoscaler = sc.NewAutoscaler(sc.Seed)
	}

	var sys runnable
	switch sc.System {
	case SpotServe, OnDemandOnly:
		sys = spotAdapter{core.NewServer(s, cl, opts)}
	case Reparallel:
		sys = baseline.NewReparallel(s, cl, opts)
	case Reroute:
		sys = baseline.NewReroute(s, cl, opts)
	default:
		panic(fmt.Sprintf("experiments: unknown system %q", sc.System))
	}
	sys.Install()

	horizon := sc.Trace.Horizon
	if sc.System == OnDemandOnly {
		if horizon <= 0 {
			horizon = 1200
		}
		cl.Prealloc(sc.OnDemandN, cloud.OnDemand)
	} else {
		if err := cl.ReplayTrace(sc.Trace); err != nil {
			panic(fmt.Sprintf("experiments: trace %s: %v", sc.Trace.Name, err))
		}
	}

	rate := sc.RateFn
	if rate == nil {
		rate = workload.ConstantRate(sc.Rate)
	}
	cv := sc.CV
	if cv <= 0 {
		cv = 6
	}
	reqs, err := workload.Generate(workload.Options{
		Horizon: horizon,
		Rate:    rate,
		CV:      cv,
		SeqIn:   opts.SeqIn,
		SeqOut:  opts.SeqOut,
		Seed:    sc.Seed,
	})
	if err != nil {
		panic(fmt.Sprintf("experiments: workload: %v", err))
	}
	sys.LoadWorkload(reqs, horizon)

	res := Result{Scenario: sc}
	if sc.SampleFleet {
		for t := 0.0; t < horizon; t += 10 {
			t := t
			s.At(t, func() {
				spot, od := cl.AliveCount()
				res.SpotCount.Add(t, float64(spot))
				res.OnDemandCount.Add(t, float64(od))
			})
		}
	}

	drain := sc.Drain
	if drain <= 0 {
		drain = 900
	}
	s.Run(horizon + drain)

	res.Stats = sys.Stats()
	res.Steps = s.Steps()
	if srv, ok := sys.(spotAdapter); ok {
		res.FinalConfig = srv.srv.Config()
	}
	return res
}
