package km

import "testing"

// TestCacheReplaysExactAssignments pins the warm-start contract: a matrix
// recurring bit-for-bit returns the identical assignment the cold solver
// produced, and only exact recurrences count as hits.
func TestCacheReplaysExactAssignments(t *testing.T) {
	c := NewCache(0)
	m := Matrix{
		{4, 1, 3},
		{2, 0, 5},
		{3, 2, 2},
	}
	var cold Solver
	want, err := cold.Solve(m)
	if err != nil {
		t.Fatal(err)
	}
	for round := 0; round < 3; round++ {
		got, err := c.Solve(m)
		if err != nil {
			t.Fatal(err)
		}
		if got.Weight != want.Weight {
			t.Fatalf("round %d: weight %v, want %v", round, got.Weight, want.Weight)
		}
		for i := range want.Left {
			if got.Left[i] != want.Left[i] {
				t.Fatalf("round %d: Left[%d] = %d, want %d", round, i, got.Left[i], want.Left[i])
			}
		}
	}
	hits, misses := c.Stats()
	if hits != 2 || misses != 1 {
		t.Fatalf("hits/misses = %d/%d, want 2/1", hits, misses)
	}
	// A single changed weight must miss (and solve fresh).
	m2 := Matrix{
		{4, 1, 3},
		{2, 0, 5},
		{3, 2, 2.5},
	}
	if _, err := c.Solve(m2); err != nil {
		t.Fatal(err)
	}
	if h, mi := c.Stats(); h != 2 || mi != 2 {
		t.Fatalf("after perturbation hits/misses = %d/%d, want 2/2", h, mi)
	}
}

// TestCacheEvictionBound pins the retained-solve cap: the memo resets
// rather than growing without bound across a long trace.
func TestCacheEvictionBound(t *testing.T) {
	c := NewCache(8)
	for i := 0; i < 50; i++ {
		m := Matrix{{float64(i), 1}, {2, float64(i) + 0.5}}
		if _, err := c.Solve(m); err != nil {
			t.Fatal(err)
		}
		if c.Len() > 8 {
			t.Fatalf("cache grew to %d entries (cap 8)", c.Len())
		}
	}
}

// TestCacheAgainstBruteForce cross-checks cached solutions on small random
// matrices against exhaustive search.
func TestCacheAgainstBruteForce(t *testing.T) {
	c := NewCache(0)
	seed := uint64(1)
	next := func() float64 {
		seed = seed*6364136223846793005 + 1442695040888963407
		return float64(seed>>40) / float64(1<<24)
	}
	for trial := 0; trial < 20; trial++ {
		m := NewMatrix(4, 3)
		for i := range m {
			for j := range m[i] {
				m[i][j] = next()
			}
		}
		got, err := c.Solve(m)
		if err != nil {
			t.Fatal(err)
		}
		want := BruteForce(m)
		if diff := got.Weight - want.Weight; diff > 1e-9 || diff < -1e-9 {
			t.Fatalf("trial %d: weight %v, brute force %v", trial, got.Weight, want.Weight)
		}
	}
}
