package km

import (
	"math"
	"math/rand"
	"testing"
)

// randMatrix builds a random r×c matrix with small-integer-ish weights
// (ties included, exercising tie-breaking determinism).
func randMatrix(rng *rand.Rand, r, c int) Matrix {
	m := NewMatrix(r, c)
	for i := 0; i < r; i++ {
		for j := 0; j < c; j++ {
			m[i][j] = float64(rng.Intn(20)) * 0.5
		}
	}
	return m
}

// assignmentsEqual compares two assignments field for field.
func assignmentsEqual(a, b Assignment) bool {
	if len(a.Left) != len(b.Left) || len(a.Right) != len(b.Right) || a.Weight != b.Weight {
		return false
	}
	for i := range a.Left {
		if a.Left[i] != b.Left[i] {
			return false
		}
	}
	for j := range a.Right {
		if a.Right[j] != b.Right[j] {
			return false
		}
	}
	return true
}

// TestSolverReuseMatchesFreshSolve is the workspace-reuse property test:
// one Solver handling a long randomized stream of rectangular instances
// must return, call after call, exactly what a fresh Solve returns — i.e.
// no state may leak from one solve into the next — and the optimal weight
// must match BruteForce on instances small enough to enumerate.
func TestSolverReuseMatchesFreshSolve(t *testing.T) {
	rng := rand.New(rand.NewSource(1234))
	sv := NewSolver()
	for iter := 0; iter < 300; iter++ {
		r := 1 + rng.Intn(6)
		c := 1 + rng.Intn(6)
		m := randMatrix(rng, r, c)

		reused, err := sv.Solve(m)
		if err != nil {
			t.Fatalf("iter %d: reused solver: %v", iter, err)
		}
		fresh, err := Solve(m)
		if err != nil {
			t.Fatalf("iter %d: fresh solve: %v", iter, err)
		}
		if !assignmentsEqual(reused, fresh) {
			t.Fatalf("iter %d (%dx%d): reused %+v != fresh %+v", iter, r, c, reused, fresh)
		}
		bf := BruteForce(m)
		if math.Abs(reused.Weight-bf.Weight) > 1e-9 {
			t.Fatalf("iter %d (%dx%d): solver weight %v != brute-force %v\n%v",
				iter, r, c, reused.Weight, bf.Weight, m)
		}
	}
}

// TestSolverShrinkAfterLarge drives the workspace through a large instance
// followed by tiny ones: stale entries beyond the active region must not
// influence later solves.
func TestSolverShrinkAfterLarge(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	sv := NewSolver()
	if _, err := sv.Solve(randMatrix(rng, 40, 40)); err != nil {
		t.Fatal(err)
	}
	for iter := 0; iter < 50; iter++ {
		m := randMatrix(rng, 1+rng.Intn(4), 1+rng.Intn(4))
		got, err := sv.Solve(m)
		if err != nil {
			t.Fatal(err)
		}
		bf := BruteForce(m)
		if math.Abs(got.Weight-bf.Weight) > 1e-9 {
			t.Fatalf("iter %d: weight %v != brute-force %v after large solve", iter, got.Weight, bf.Weight)
		}
	}
}

// TestSolverRepeatedSameMatrix checks a reused solver is deterministic on
// repeated identical inputs (same assignment, not just same weight).
func TestSolverRepeatedSameMatrix(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	sv := NewSolver()
	m := randMatrix(rng, 5, 7)
	first, err := sv.Solve(m)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		again, err := sv.Solve(m)
		if err != nil {
			t.Fatal(err)
		}
		if !assignmentsEqual(first, again) {
			t.Fatalf("call %d: %+v != first %+v", i, again, first)
		}
	}
}

// BenchmarkSolverReuse32 measures the reused-workspace hot path the device
// mapper rides during reconfigurations.
func BenchmarkSolverReuse32(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	m := randMatrix(rng, 32, 32)
	sv := NewSolver()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sv.Solve(m); err != nil {
			b.Fatal(err)
		}
	}
}
