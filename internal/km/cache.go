package km

import "math"

// Cache is a memoizing wrapper around a Solver: it reuses the previous
// assignment whenever a weight matrix recurs bit-for-bit. This is the
// determinism-safe form of warm-starting the Kuhn–Munkres solver — the
// Hungarian optimum is not unique (device mapping has many zero-weight
// ties), so seeding potentials from a previous solve could legally return a
// *different* optimal assignment and break byte-identical replay. Exact
// reuse returns the identical assignment by construction.
//
// The device mapper's hierarchical decomposition makes this reuse
// fine-grained: one reconfiguration solves one sub-matching per
// instance×block pair, so after a preemption only the pairs whose devices
// or contexts actually changed produce new matrices — untouched
// rows/columns of the overall matching hit the cache and skip the O(n³)
// solve entirely.
//
// A Cache is not safe for concurrent use (one lives inside each serving
// system's reconfiguration engine).
type Cache struct {
	solver  Solver
	max     int
	entries map[uint64][]cacheEntry
	n       int
	hits    int
	misses  int
}

type cacheEntry struct {
	r, c int
	w    []float64 // row-major copy of the solved matrix
	asg  Assignment
}

// DefaultCacheSize bounds the number of retained solves; beyond it the
// cache resets (the memo is a performance device, never a correctness one,
// so wholesale eviction is safe and keeps memory bounded on long traces).
const DefaultCacheSize = 512

// NewCache returns a Cache retaining up to max solves (<= 0 uses
// DefaultCacheSize).
func NewCache(max int) *Cache {
	if max <= 0 {
		max = DefaultCacheSize
	}
	return &Cache{max: max, entries: make(map[uint64][]cacheEntry)}
}

// Stats returns how many Solve calls hit and missed the memo.
func (c *Cache) Stats() (hits, misses int) { return c.hits, c.misses }

// Len returns the number of retained solves (tests the eviction bound).
func (c *Cache) Len() int { return c.n }

// Solve returns the same assignment as Solver.Solve. The returned
// Assignment may be shared with earlier calls; callers must treat its
// slices as read-only.
func (c *Cache) Solve(m Matrix) (Assignment, error) {
	r := len(m)
	cols := 0
	if r > 0 {
		cols = len(m[0])
	}
	// Word-wise FNV-style fold over dimensions and weight bits.
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	mix := func(v uint64) {
		h = (h ^ v) * prime64
	}
	mix(uint64(r))
	mix(uint64(cols))
	for i := 0; i < r; i++ {
		row := m[i]
		if len(row) != cols {
			break // ragged: let the solver report the error
		}
		for j := 0; j < cols; j++ {
			mix(math.Float64bits(row[j]))
		}
	}
	for _, e := range c.entries[h] {
		if e.r != r || e.c != cols {
			continue
		}
		same := true
		for i := 0; i < r && same; i++ {
			row := m[i]
			for j := 0; j < cols; j++ {
				if row[j] != e.w[i*cols+j] {
					same = false
					break
				}
			}
		}
		if same {
			c.hits++
			return e.asg, nil
		}
	}
	asg, err := c.solver.Solve(m)
	if err != nil {
		return asg, err
	}
	c.misses++
	if c.n >= c.max {
		c.entries = make(map[uint64][]cacheEntry)
		c.n = 0
	}
	w := make([]float64, r*cols)
	for i := 0; i < r; i++ {
		copy(w[i*cols:(i+1)*cols], m[i])
	}
	c.entries[h] = append(c.entries[h], cacheEntry{r: r, c: cols, w: w, asg: asg})
	c.n++
	return asg, nil
}
