// Package km implements the Kuhn–Munkres (Hungarian) algorithm for
// maximum-weight bipartite matching.
//
// SpotServe formalizes device mapping as a bipartite matching problem between
// available GPU devices and pipeline-stage-shard positions of the target
// parallel configuration (§3.3 of the paper); the edge weight is the number
// of reusable context bytes. This package provides the O(n³) solver used by
// the device mapper.
package km

import (
	"fmt"
	"math"
)

// Matrix is a dense rectangular weight matrix: Matrix[i][j] is the weight of
// matching left node i to right node j. Weights may be any finite float64;
// the solver maximizes total weight of a perfect matching on the padded
// square matrix (missing cells behave as weight 0).
type Matrix [][]float64

// NewMatrix allocates an r×c matrix of zeros.
func NewMatrix(r, c int) Matrix {
	m := make(Matrix, r)
	cells := make([]float64, r*c)
	for i := range m {
		m[i], cells = cells[:c:c], cells[c:]
	}
	return m
}

// Validate checks that the matrix is rectangular and finite.
func (m Matrix) Validate() error {
	if len(m) == 0 {
		return nil
	}
	c := len(m[0])
	for i, row := range m {
		if len(row) != c {
			return fmt.Errorf("km: ragged matrix: row %d has %d cols, want %d", i, len(row), c)
		}
		for j, w := range row {
			if math.IsNaN(w) || math.IsInf(w, 0) {
				return fmt.Errorf("km: non-finite weight at (%d,%d): %v", i, j, w)
			}
		}
	}
	return nil
}

// Assignment is the result of a matching. Left[i] is the right node matched
// to left node i, or -1 when left node i is matched to a padding column
// (meaning "unassigned"). Right is the inverse view.
type Assignment struct {
	Left   []int
	Right  []int
	Weight float64
}

// Solve computes a maximum-weight matching. Rectangular inputs are padded
// with zero-weight cells to a square matrix, so the matching always assigns
// min(r, c) real pairs; real pairs with weight 0 may be reported as matched —
// that is fine for device mapping, where a zero edge means "no reusable
// context but still a valid placement".
//
// Solve allocates a fresh workspace per call; callers solving many matrices
// (the device mapper runs one sub-matching per instance×block pair of a
// reconfiguration) should reuse a Solver instead.
func Solve(m Matrix) (Assignment, error) {
	var s Solver
	return s.Solve(m)
}

// Solver runs the Kuhn–Munkres algorithm with a reusable workspace: the
// padded cost matrix is a single flat row-major slice and the potential /
// augmenting-path arrays are preallocated once and recycled across calls,
// so repeated Solve calls are allocation-free apart from the returned
// Assignment. A Solver is not safe for concurrent use; its zero value is
// ready to go.
type Solver struct {
	cost   []float64 // flat n×n padded minimization matrix
	u, v   []float64 // row / column potentials (1-indexed)
	minv   []float64
	p, way []int
	used   []bool
}

// NewSolver returns an empty Solver. The workspace grows on first use and
// is retained for subsequent calls.
func NewSolver() *Solver { return &Solver{} }

// grow sizes the workspace for a padded n×n problem.
func (s *Solver) grow(n int) {
	if cap(s.cost) < n*n {
		s.cost = make([]float64, n*n)
	}
	s.cost = s.cost[:n*n]
	if cap(s.u) < n+1 {
		s.u = make([]float64, n+1)
		s.v = make([]float64, n+1)
		s.minv = make([]float64, n+1)
		s.p = make([]int, n+1)
		s.way = make([]int, n+1)
		s.used = make([]bool, n+1)
	}
	s.u = s.u[:n+1]
	s.v = s.v[:n+1]
	s.minv = s.minv[:n+1]
	s.p = s.p[:n+1]
	s.way = s.way[:n+1]
	s.used = s.used[:n+1]
	for j := 0; j <= n; j++ {
		s.u[j], s.v[j] = 0, 0
		s.p[j], s.way[j] = 0, 0
	}
}

// Solve computes the same maximum-weight matching as the package-level
// Solve, reusing the Solver's workspace.
func (s *Solver) Solve(m Matrix) (Assignment, error) {
	if err := m.Validate(); err != nil {
		return Assignment{}, err
	}
	r := len(m)
	c := 0
	if r > 0 {
		c = len(m[0])
	}
	n := r
	if c > n {
		n = c
	}
	if n == 0 {
		return Assignment{Left: []int{}, Right: []int{}}, nil
	}

	// The classic Hungarian algorithm minimizes cost. Convert to a
	// minimization problem: cost = maxW - w, padded cells cost maxW. The
	// padded matrix is materialized row-major so the innermost loop below
	// walks memory linearly instead of chasing row pointers or a closure.
	maxW := 0.0
	for i := 0; i < r; i++ {
		for j := 0; j < c; j++ {
			if m[i][j] > maxW {
				maxW = m[i][j]
			}
		}
	}
	s.grow(n)
	for i := 0; i < n; i++ {
		row := s.cost[i*n : (i+1)*n]
		if i < r {
			for j := 0; j < c; j++ {
				row[j] = maxW - m[i][j]
			}
			for j := c; j < n; j++ {
				row[j] = maxW
			}
		} else {
			for j := 0; j < n; j++ {
				row[j] = maxW
			}
		}
	}

	// Jonker-style O(n³) implementation with potentials. Arrays are
	// 1-indexed as in the standard formulation.
	const inf = math.MaxFloat64
	u, v, minv, p, way, used := s.u, s.v, s.minv, s.p, s.way, s.used

	for i := 1; i <= n; i++ {
		p[0] = i
		j0 := 0
		for j := 0; j <= n; j++ {
			minv[j] = inf
			used[j] = false
		}
		for {
			used[j0] = true
			i0 := p[j0]
			delta := inf
			j1 := -1
			costRow := s.cost[(i0-1)*n : i0*n]
			ui0 := u[i0]
			for j := 1; j <= n; j++ {
				if used[j] {
					continue
				}
				cur := costRow[j-1] - ui0 - v[j]
				if cur < minv[j] {
					minv[j] = cur
					way[j] = j0
				}
				if minv[j] < delta {
					delta = minv[j]
					j1 = j
				}
			}
			for j := 0; j <= n; j++ {
				if used[j] {
					u[p[j]] += delta
					v[j] -= delta
				} else {
					minv[j] -= delta
				}
			}
			j0 = j1
			if p[j0] == 0 {
				break
			}
		}
		for {
			j1 := way[j0]
			p[j0] = p[j1]
			j0 = j1
			if j0 == 0 {
				break
			}
		}
	}

	out := Assignment{
		Left:  make([]int, r),
		Right: make([]int, c),
	}
	for i := range out.Left {
		out.Left[i] = -1
	}
	for j := range out.Right {
		out.Right[j] = -1
	}
	for j := 1; j <= n; j++ {
		i := p[j] - 1
		jj := j - 1
		if i < r && jj < c {
			out.Left[i] = jj
			out.Right[jj] = i
			out.Weight += m[i][jj]
		}
	}
	return out, nil
}

// BruteForce exhaustively finds the maximum-weight matching. Exponential —
// only for testing small instances against Solve.
func BruteForce(m Matrix) Assignment {
	r := len(m)
	c := 0
	if r > 0 {
		c = len(m[0])
	}
	best := Assignment{Weight: math.Inf(-1)}
	assign := make([]int, r)
	usedCol := make([]bool, c)
	var rec func(i int, w float64)
	rec = func(i int, w float64) {
		if i == r {
			if w > best.Weight {
				best.Weight = w
				best.Left = append([]int(nil), assign...)
			}
			return
		}
		// Leave row i unassigned (only allowed if rows exceed cols).
		if r > c {
			assign[i] = -1
			rec(i+1, w)
		}
		for j := 0; j < c; j++ {
			if usedCol[j] {
				continue
			}
			usedCol[j] = true
			assign[i] = j
			rec(i+1, w+m[i][j])
			usedCol[j] = false
		}
	}
	rec(0, 0)
	if best.Left == nil {
		best.Left = make([]int, r)
		for i := range best.Left {
			best.Left[i] = -1
		}
		best.Weight = 0
	}
	best.Right = make([]int, c)
	for j := range best.Right {
		best.Right[j] = -1
	}
	for i, j := range best.Left {
		if j >= 0 {
			best.Right[j] = i
		}
	}
	return best
}
