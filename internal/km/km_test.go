package km

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func solveOK(t *testing.T, m Matrix) Assignment {
	t.Helper()
	a, err := Solve(m)
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	return a
}

func TestEmpty(t *testing.T) {
	a := solveOK(t, Matrix{})
	if a.Weight != 0 || len(a.Left) != 0 {
		t.Fatalf("empty matrix: %+v", a)
	}
}

func TestSingle(t *testing.T) {
	a := solveOK(t, Matrix{{7}})
	if a.Left[0] != 0 || a.Weight != 7 {
		t.Fatalf("1x1: %+v", a)
	}
}

func TestIdentityDominant(t *testing.T) {
	m := Matrix{
		{10, 1, 1},
		{1, 10, 1},
		{1, 1, 10},
	}
	a := solveOK(t, m)
	if a.Weight != 30 {
		t.Fatalf("weight = %v, want 30", a.Weight)
	}
	for i := range a.Left {
		if a.Left[i] != i {
			t.Fatalf("Left = %v, want identity", a.Left)
		}
	}
}

func TestAntiDiagonal(t *testing.T) {
	m := Matrix{
		{0, 0, 5},
		{0, 5, 0},
		{5, 0, 0},
	}
	a := solveOK(t, m)
	if a.Weight != 15 {
		t.Fatalf("weight = %v, want 15", a.Weight)
	}
}

func TestRectangularWide(t *testing.T) {
	// 2 rows, 4 cols: only 2 assignments possible.
	m := Matrix{
		{1, 9, 2, 3},
		{9, 1, 2, 3},
	}
	a := solveOK(t, m)
	if a.Weight != 18 {
		t.Fatalf("weight = %v, want 18", a.Weight)
	}
	if a.Left[0] != 1 || a.Left[1] != 0 {
		t.Fatalf("Left = %v", a.Left)
	}
	unmatched := 0
	for _, i := range a.Right {
		if i == -1 {
			unmatched++
		}
	}
	if unmatched != 2 {
		t.Fatalf("unmatched cols = %d, want 2", unmatched)
	}
}

func TestRectangularTall(t *testing.T) {
	// 4 rows, 2 cols: 2 rows stay unassigned.
	m := Matrix{
		{1, 2},
		{8, 1},
		{1, 9},
		{2, 2},
	}
	a := solveOK(t, m)
	if a.Weight != 17 {
		t.Fatalf("weight = %v, want 17", a.Weight)
	}
	if a.Left[1] != 0 || a.Left[2] != 1 {
		t.Fatalf("Left = %v", a.Left)
	}
}

func TestRaggedRejected(t *testing.T) {
	_, err := Solve(Matrix{{1, 2}, {1}})
	if err == nil {
		t.Fatal("ragged matrix accepted")
	}
}

func TestNaNRejected(t *testing.T) {
	_, err := Solve(Matrix{{math.NaN()}})
	if err == nil {
		t.Fatal("NaN weight accepted")
	}
}

func TestLeftRightConsistency(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for iter := 0; iter < 50; iter++ {
		r, c := 1+rng.Intn(8), 1+rng.Intn(8)
		m := NewMatrix(r, c)
		for i := 0; i < r; i++ {
			for j := 0; j < c; j++ {
				m[i][j] = rng.Float64() * 100
			}
		}
		a := solveOK(t, m)
		for i, j := range a.Left {
			if j >= 0 && a.Right[j] != i {
				t.Fatalf("inconsistent: Left[%d]=%d but Right[%d]=%d", i, j, j, a.Right[j])
			}
		}
		matched := 0
		for _, j := range a.Left {
			if j >= 0 {
				matched++
			}
		}
		want := r
		if c < r {
			want = c
		}
		if matched != want {
			t.Fatalf("matched %d pairs, want %d", matched, want)
		}
	}
}

// Property: Solve matches BruteForce's optimal weight on small random
// instances, including rectangular ones.
func TestQuickOptimalVsBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for iter := 0; iter < 300; iter++ {
		r, c := 1+rng.Intn(5), 1+rng.Intn(5)
		m := NewMatrix(r, c)
		for i := 0; i < r; i++ {
			for j := 0; j < c; j++ {
				// Integer weights avoid float-compare issues.
				m[i][j] = float64(rng.Intn(50))
			}
		}
		got := solveOK(t, m)
		want := BruteForce(m)
		if math.Abs(got.Weight-want.Weight) > 1e-9 {
			t.Fatalf("iter %d (%dx%d): Solve weight %v, brute force %v\n%v",
				iter, r, c, got.Weight, want.Weight, m)
		}
	}
}

// Property: the reported Weight equals the sum of matched edge weights.
func TestQuickWeightConsistent(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		r, c := 1+rng.Intn(10), 1+rng.Intn(10)
		m := NewMatrix(r, c)
		for i := 0; i < r; i++ {
			for j := 0; j < c; j++ {
				m[i][j] = rng.Float64() * 1e6
			}
		}
		a, err := Solve(m)
		if err != nil {
			return false
		}
		sum := 0.0
		for i, j := range a.Left {
			if j >= 0 {
				sum += m[i][j]
			}
		}
		return math.Abs(sum-a.Weight) < 1e-6*math.Max(1, sum)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

// Property: permuting rows permutes the assignment but preserves weight.
func TestQuickPermutationInvariance(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for iter := 0; iter < 50; iter++ {
		n := 2 + rng.Intn(6)
		m := NewMatrix(n, n)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				m[i][j] = float64(rng.Intn(30))
			}
		}
		perm := rng.Perm(n)
		pm := NewMatrix(n, n)
		for i := 0; i < n; i++ {
			copy(pm[perm[i]], m[i])
		}
		a := solveOK(t, m)
		b := solveOK(t, pm)
		if math.Abs(a.Weight-b.Weight) > 1e-9 {
			t.Fatalf("permutation changed weight: %v vs %v", a.Weight, b.Weight)
		}
	}
}

func BenchmarkSolve32(b *testing.B)  { benchSolve(b, 32) }
func BenchmarkSolve128(b *testing.B) { benchSolve(b, 128) }

func benchSolve(b *testing.B, n int) {
	rng := rand.New(rand.NewSource(1))
	m := NewMatrix(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			m[i][j] = rng.Float64() * 1e9
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Solve(m); err != nil {
			b.Fatal(err)
		}
	}
}
