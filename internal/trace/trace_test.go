package trace

import (
	"testing"
	"testing/quick"
)

func TestEmbeddedTracesValid(t *testing.T) {
	for _, tr := range []Trace{AS(), BS(), APrimeS(), BPrimeS()} {
		if err := tr.Validate(); err != nil {
			t.Errorf("%s: %v", tr.Name, err)
		}
	}
}

func TestEmbeddedTraceShape(t *testing.T) {
	as, bs := AS(), BS()
	// Figure 5 character: A_S declines from 12 to 4; B_S is volatile and
	// dips to 3. 20-minute segments.
	if as.Horizon != 1200 || bs.Horizon != 1200 {
		t.Fatal("embedded traces must be 20 minutes")
	}
	if as.CountAt(0) != 12 || as.CountAt(1199) != 4 {
		t.Fatalf("A_S endpoints: %d → %d", as.CountAt(0), as.CountAt(1199))
	}
	if bs.MinCount() != 3 {
		t.Fatalf("B_S min = %d, want 3", bs.MinCount())
	}
	if as.MaxCount() != 12 || bs.MaxCount() != 10 {
		t.Fatalf("max counts: %d, %d", as.MaxCount(), bs.MaxCount())
	}
}

func TestCountAtSteps(t *testing.T) {
	tr := Trace{Name: "x", Horizon: 100, Events: []Event{{0, 5}, {10, 3}, {20, 7}}}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	cases := map[float64]int{0: 5, 9.99: 5, 10: 3, 19: 3, 20: 7, 99: 7}
	for at, want := range cases {
		if got := tr.CountAt(at); got != want {
			t.Errorf("CountAt(%v) = %d, want %d", at, got, want)
		}
	}
}

func TestValidateRejects(t *testing.T) {
	bad := []Trace{
		{Name: "no-horizon", Events: []Event{{0, 1}}},
		{Name: "no-zero", Horizon: 10, Events: []Event{{1, 1}}},
		{Name: "unsorted", Horizon: 10, Events: []Event{{0, 1}, {5, 2}, {3, 1}}},
		{Name: "dup", Horizon: 10, Events: []Event{{0, 1}, {0, 2}}},
		{Name: "negative", Horizon: 10, Events: []Event{{0, -1}}},
		{Name: "beyond", Horizon: 10, Events: []Event{{0, 1}, {10, 2}}},
		{Name: "empty", Horizon: 10},
	}
	for _, tr := range bad {
		if err := tr.Validate(); err == nil {
			t.Errorf("%s: invalid trace accepted", tr.Name)
		}
	}
}

func TestJSONRoundTrip(t *testing.T) {
	orig := BS()
	data, err := orig.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	got, err := Unmarshal(data)
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != orig.Name || len(got.Events) != len(orig.Events) {
		t.Fatalf("round trip mismatch: %+v", got)
	}
	for i := range got.Events {
		if got.Events[i] != orig.Events[i] {
			t.Fatalf("event %d: %v != %v", i, got.Events[i], orig.Events[i])
		}
	}
	if _, err := Unmarshal([]byte("{")); err == nil {
		t.Fatal("bad JSON accepted")
	}
	if _, err := Unmarshal([]byte(`{"name":"x","horizon":0,"events":[]}`)); err == nil {
		t.Fatal("invalid trace accepted after parse")
	}
}

func TestByName(t *testing.T) {
	if tr, ok := ByName("AS"); !ok || tr.Name != "AS" {
		t.Fatal("ByName(AS) failed")
	}
	if _, ok := ByName("nope"); ok {
		t.Fatal("ByName(nope) succeeded")
	}
}

func TestGenerateDeterministic(t *testing.T) {
	o := GenOptions{Name: "g", Horizon: 1200, Start: 8, Min: 2, Max: 12,
		MeanDwell: 60, DownBias: 0.55, MaxStep: 2, Seed: 7}
	a, err := Generate(o)
	if err != nil {
		t.Fatal(err)
	}
	b, _ := Generate(o)
	if len(a.Events) != len(b.Events) {
		t.Fatal("same seed produced different traces")
	}
	for i := range a.Events {
		if a.Events[i] != b.Events[i] {
			t.Fatal("same seed produced different events")
		}
	}
	o.Seed = 8
	c, _ := Generate(o)
	same := len(a.Events) == len(c.Events)
	if same {
		for i := range a.Events {
			if a.Events[i] != c.Events[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Fatal("different seeds produced identical traces")
	}
}

func TestGenerateRejectsBadOptions(t *testing.T) {
	bad := []GenOptions{
		{},
		{Horizon: 100, Start: 5, Min: 6, Max: 10, MeanDwell: 10, MaxStep: 1},
		{Horizon: 100, Start: 5, Min: 0, Max: 4, MeanDwell: 10, MaxStep: 1},
		{Horizon: 100, Start: 5, Min: 0, Max: 10, MeanDwell: 0, MaxStep: 1},
		{Horizon: 100, Start: 5, Min: 0, Max: 10, MeanDwell: 10, MaxStep: 0},
		{Horizon: 100, Start: 5, Min: 0, Max: 10, MeanDwell: 10, MaxStep: 1, DownBias: 1.5},
	}
	for i, o := range bad {
		if _, err := Generate(o); err == nil {
			t.Errorf("case %d: bad options accepted", i)
		}
	}
}

// Property: generated traces are always valid and within bounds.
func TestQuickGenerateValidBounded(t *testing.T) {
	f := func(seed int64, startRaw, maxRaw uint8) bool {
		maxN := int(maxRaw%14) + 2
		start := int(startRaw) % (maxN + 1)
		o := GenOptions{Name: "q", Horizon: 600, Start: start, Min: 0, Max: maxN,
			MeanDwell: 30, DownBias: 0.5, MaxStep: 3, Seed: seed}
		tr, err := Generate(o)
		if err != nil {
			return false
		}
		if tr.Validate() != nil {
			return false
		}
		for _, e := range tr.Events {
			if e.Count < o.Min || e.Count > o.Max {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
