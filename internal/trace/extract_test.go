package trace

import (
	"testing"
	"testing/quick"
)

func TestExtractWindow(t *testing.T) {
	tr := Trace{Name: "long", Horizon: 1000, Events: []Event{
		{0, 5}, {100, 7}, {300, 4}, {700, 9},
	}}
	got, err := Extract(tr, 200, 300)
	if err != nil {
		t.Fatal(err)
	}
	if got.Horizon != 300 {
		t.Fatalf("horizon = %v", got.Horizon)
	}
	// Inherits count 7 at window start, then the 300 s event at offset 100.
	if got.CountAt(0) != 7 {
		t.Fatalf("CountAt(0) = %d, want 7", got.CountAt(0))
	}
	if got.CountAt(100) != 4 {
		t.Fatalf("CountAt(100) = %d, want 4", got.CountAt(100))
	}
	if got.CountAt(299) != 4 {
		t.Fatalf("CountAt(299) = %d", got.CountAt(299))
	}
}

func TestExtractRejectsOutOfRange(t *testing.T) {
	tr := Trace{Name: "x", Horizon: 100, Events: []Event{{0, 1}}}
	cases := [][2]float64{{-1, 10}, {0, 0}, {50, 60}, {100, 1}}
	for _, c := range cases {
		if _, err := Extract(tr, c[0], c[1]); err == nil {
			t.Errorf("Extract(%v, %v) accepted", c[0], c[1])
		}
	}
}

// Property: extracting any valid window preserves the step function —
// CountAt(t) on the extract equals CountAt(start+t) on the source.
func TestQuickExtractPreservesCounts(t *testing.T) {
	src, err := TwelveHour(3)
	if err != nil {
		t.Fatal(err)
	}
	f := func(sRaw, dRaw uint16, probeRaw uint16) bool {
		start := float64(int(sRaw) % int(src.Horizon-1200))
		dur := 600 + float64(dRaw%600)
		got, err := Extract(src, start, dur)
		if err != nil {
			return false
		}
		probe := float64(probeRaw) / 65535 * (dur - 1)
		return got.CountAt(probe) == src.CountAt(start+probe)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestConcat(t *testing.T) {
	a := Trace{Name: "a", Horizon: 100, Events: []Event{{0, 3}, {50, 5}}}
	b := Trace{Name: "b", Horizon: 100, Events: []Event{{0, 5}, {30, 2}}}
	got, err := Concat("ab", a, b)
	if err != nil {
		t.Fatal(err)
	}
	if got.Horizon != 200 {
		t.Fatalf("horizon = %v", got.Horizon)
	}
	cases := map[float64]int{0: 3, 60: 5, 110: 5, 130: 2, 199: 2}
	for at, want := range cases {
		if got.CountAt(at) != want {
			t.Errorf("CountAt(%v) = %d, want %d", at, got.CountAt(at), want)
		}
	}
	if _, err := Concat("empty"); err == nil {
		t.Fatal("empty concat accepted")
	}
}

func TestTwelveHourSane(t *testing.T) {
	tr, err := TwelveHour(1)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Horizon != 12*3600 {
		t.Fatalf("horizon = %v", tr.Horizon)
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(tr.Events) < 100 {
		t.Fatalf("only %d events in 12 h (dwell ≈ 140 s)", len(tr.Events))
	}
	// A 20-minute segment extracted from it is a usable experiment trace.
	seg, err := Extract(tr, 3600, 1200)
	if err != nil {
		t.Fatal(err)
	}
	if seg.Horizon != 1200 || seg.Validate() != nil {
		t.Fatalf("bad segment: %+v", seg)
	}
}

// Regression: malformed recording options must surface as an error, not a
// panic — this path used to panic inside TwelveHour (library code).
func TestRecordingMalformedInput(t *testing.T) {
	for _, hours := range []float64{0, -3} {
		tr, err := Recording(hours, 1)
		if err == nil {
			t.Errorf("Recording(%g, 1) accepted: %+v", hours, tr)
		}
	}
	if _, err := TwelveHour(1); err != nil {
		t.Errorf("TwelveHour(1) = %v, want nil error", err)
	}
}
