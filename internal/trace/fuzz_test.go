package trace

import (
	"encoding/json"
	"testing"
)

// FuzzParseTrace hammers the JSON trace format accepted by
// `cmd/spotserve -trace <file>`: arbitrary input must either yield a trace
// that passes Validate and survives a marshal→unmarshal round trip, or
// return an error — never panic and never hand back an invalid trace.
func FuzzParseTrace(f *testing.F) {
	for _, tr := range []Trace{AS(), BS(), APrimeS(), BPrimeS()} {
		data, err := tr.Marshal()
		if err != nil {
			f.Fatal(err)
		}
		f.Add(data)
	}
	f.Add([]byte(`{}`))
	f.Add([]byte(`{"name":"x","horizon":0,"events":[]}`))
	f.Add([]byte(`{"name":"x","horizon":100,"events":[{"at":0,"count":-1}]}`))
	f.Add([]byte(`{"name":"x","horizon":100,"events":[{"at":5,"count":1},{"at":5,"count":2}]}`))
	f.Add([]byte(`{"name":"x","horizon":1e308,"events":[{"at":0,"count":1},{"at":1e309,"count":2}]}`))
	f.Add([]byte(`[1,2,3]`))
	f.Add([]byte(`not json`))

	f.Fuzz(func(t *testing.T, data []byte) {
		tr, err := Unmarshal(data)
		if err != nil {
			return
		}
		if verr := tr.Validate(); verr != nil {
			t.Fatalf("Unmarshal returned an invalid trace: %v\ninput: %q", verr, data)
		}
		// The accepted trace must round-trip.
		out, err := tr.Marshal()
		if err != nil {
			t.Fatalf("re-marshal of accepted trace failed: %v", err)
		}
		tr2, err := Unmarshal(out)
		if err != nil {
			t.Fatalf("round trip rejected: %v\njson: %s", err, out)
		}
		if tr.Name != tr2.Name || tr.Horizon != tr2.Horizon || len(tr.Events) != len(tr2.Events) {
			t.Fatalf("round trip changed the trace: %+v vs %+v", tr, tr2)
		}
		// Sanity: the step function is queryable across the horizon.
		_ = tr.CountAt(0)
		_ = tr.CountAt(tr.Horizon)
		_ = tr.MinCount()
		_ = tr.MaxCount()
	})
}

// FuzzParseTraceEvents fuzzes the structured dimensions directly so the
// validator's ordering and bound checks get dense coverage without relying
// on the mutator discovering JSON syntax.
func FuzzParseTraceEvents(f *testing.F) {
	f.Add(1200.0, 0.0, 12, 120.0, 11, 240.0, 10)
	f.Add(100.0, 0.0, 1, 0.0, 2, 50.0, 3)
	f.Add(-5.0, 0.0, 1, 10.0, 2, 20.0, 3)
	f.Add(100.0, 5.0, 1, 10.0, -2, 200.0, 3)

	f.Fuzz(func(t *testing.T, horizon, at0 float64, c0 int, at1 float64, c1 int, at2 float64, c2 int) {
		tr := Trace{Name: "fuzz", Horizon: horizon, Events: []Event{
			{At: at0, Count: c0}, {At: at1, Count: c1}, {At: at2, Count: c2},
		}}
		data, err := json.Marshal(tr)
		if err != nil {
			t.Skip()
		}
		parsed, err := Unmarshal(data)
		if err != nil {
			return
		}
		if parsed.Horizon <= 0 {
			t.Fatalf("accepted non-positive horizon %v", parsed.Horizon)
		}
		prev := -1.0
		for _, e := range parsed.Events {
			if e.At <= prev && prev >= 0 {
				t.Fatalf("accepted unordered events: %+v", parsed.Events)
			}
			if e.Count < 0 {
				t.Fatalf("accepted negative count: %+v", e)
			}
			if e.At >= parsed.Horizon {
				t.Fatalf("accepted event beyond horizon: %+v", e)
			}
			prev = e.At
		}
	})
}
