package trace

import "fmt"

// Extract cuts the window [start, start+duration) out of a longer trace
// and rebases it to t=0 — the operation the paper performs to obtain its
// 20-minute segments A_S and B_S from a 12-hour recording (§6.1).
func Extract(tr Trace, start, duration float64) (Trace, error) {
	if err := tr.Validate(); err != nil {
		return Trace{}, err
	}
	if start < 0 || duration <= 0 || start+duration > tr.Horizon {
		return Trace{}, fmt.Errorf("trace: extract [%v, %v+%v) outside horizon %v",
			start, start, duration, tr.Horizon)
	}
	out := Trace{
		Name:    fmt.Sprintf("%s[%.0f:%.0f]", tr.Name, start, start+duration),
		Horizon: duration,
	}
	// The window inherits the count in force at its start.
	out.Events = append(out.Events, Event{At: 0, Count: tr.CountAt(start)})
	for _, e := range tr.Events {
		if e.At <= start || e.At >= start+duration {
			continue
		}
		out.Events = append(out.Events, Event{At: e.At - start, Count: e.Count})
	}
	return out, out.Validate()
}

// Concat joins traces back to back, offsetting each segment's events by
// the cumulative horizon. Useful for composing long synthetic recordings.
func Concat(name string, parts ...Trace) (Trace, error) {
	if len(parts) == 0 {
		return Trace{}, fmt.Errorf("trace: concat of nothing")
	}
	out := Trace{Name: name}
	offset := 0.0
	last := -1
	for i, p := range parts {
		if err := p.Validate(); err != nil {
			return Trace{}, fmt.Errorf("trace: concat part %d: %w", i, err)
		}
		for _, e := range p.Events {
			at := e.At + offset
			if e.Count == last {
				continue // merge redundant steps across the seam
			}
			if at == 0 || e.At > 0 {
				out.Events = append(out.Events, Event{At: at, Count: e.Count})
				last = e.Count
			} else {
				// A part's t=0 event after the first part becomes a step
				// at the seam (only if it changes the count).
				out.Events = append(out.Events, Event{At: at, Count: e.Count})
				last = e.Count
			}
		}
		offset += p.Horizon
	}
	out.Horizon = offset
	return out, out.Validate()
}

// Recording synthesizes an hours-long spot availability recording in the
// style of the paper's collected g4dn trace, from which representative
// segments can be extracted. hours must be positive; malformed options are
// returned as errors, never panicked — this is library code and callers
// (the daemon among them) must be able to survive a bad request.
func Recording(hours float64, seed int64) (Trace, error) {
	return Generate(GenOptions{
		Name:      fmt.Sprintf("g4dn-%gh", hours),
		Horizon:   hours * 3600,
		Start:     10,
		Min:       2,
		Max:       12,
		MeanDwell: 140,
		DownBias:  0.5,
		MaxStep:   2,
		Seed:      seed,
	})
}

// TwelveHour synthesizes the paper's 12-hour recording (§6.1).
func TwelveHour(seed int64) (Trace, error) {
	return Recording(12, seed)
}
