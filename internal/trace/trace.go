// Package trace provides spot-instance availability traces: the embedded
// 20-minute segments A_S and B_S reproducing the dynamics of Figure 5, a
// seeded generator for synthetic traces, and JSON round-tripping so traces
// can be exported and replayed.
//
// A trace is a step function over virtual time giving the number of spot
// instances the cloud makes available. When the count decreases, the cloud
// issues preemption notices at the event time and reclaims the instances
// after the grace period; when it increases, fresh spot instances become
// available after the acquisition delay.
package trace

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"sort"
)

// Event is one step of the availability function: from time At the cloud
// offers Count spot instances.
type Event struct {
	At    float64 `json:"at"`
	Count int     `json:"count"`
}

// Trace is a named availability step function over [0, Horizon).
type Trace struct {
	Name    string  `json:"name"`
	Horizon float64 `json:"horizon"`
	Events  []Event `json:"events"`
}

// Validate checks ordering and non-negativity.
func (t Trace) Validate() error {
	if t.Horizon <= 0 {
		return fmt.Errorf("trace %q: horizon %v", t.Name, t.Horizon)
	}
	if len(t.Events) == 0 || t.Events[0].At != 0 {
		return fmt.Errorf("trace %q: must start with an event at t=0", t.Name)
	}
	prev := -1.0
	for i, e := range t.Events {
		if e.At <= prev {
			return fmt.Errorf("trace %q: event %d at %v not after %v", t.Name, i, e.At, prev)
		}
		if e.Count < 0 {
			return fmt.Errorf("trace %q: negative count at %v", t.Name, e.At)
		}
		if e.At >= t.Horizon {
			return fmt.Errorf("trace %q: event %d at %v beyond horizon %v", t.Name, i, e.At, t.Horizon)
		}
		prev = e.At
	}
	return nil
}

// CountAt returns the offered spot-instance count at time tm.
func (t Trace) CountAt(tm float64) int {
	n := 0
	for _, e := range t.Events {
		if e.At > tm {
			break
		}
		n = e.Count
	}
	return n
}

// MaxCount returns the largest offered count.
func (t Trace) MaxCount() int {
	m := 0
	for _, e := range t.Events {
		if e.Count > m {
			m = e.Count
		}
	}
	return m
}

// MinCount returns the smallest offered count.
func (t Trace) MinCount() int {
	if len(t.Events) == 0 {
		return 0
	}
	m := t.Events[0].Count
	for _, e := range t.Events {
		if e.Count < m {
			m = e.Count
		}
	}
	return m
}

// Marshal serializes the trace to JSON.
func (t Trace) Marshal() ([]byte, error) {
	return json.MarshalIndent(t, "", "  ")
}

// Unmarshal parses a JSON trace and validates it.
func Unmarshal(data []byte) (Trace, error) {
	var t Trace
	if err := json.Unmarshal(data, &t); err != nil {
		return Trace{}, fmt.Errorf("trace: %w", err)
	}
	if err := t.Validate(); err != nil {
		return Trace{}, err
	}
	return t, nil
}

// AS is the embedded availability segment A_S: a 20-minute window with a
// gradual capacity decline from 12 to 4 instances and occasional
// reacquisitions, matching the character of Figure 5 (each instance carries
// four GPUs).
func AS() Trace {
	return Trace{
		Name:    "AS",
		Horizon: 1200,
		Events: []Event{
			{0, 12}, {120, 11}, {240, 10}, {300, 11}, {420, 9},
			{540, 8}, {600, 10}, {720, 8}, {840, 7}, {900, 5},
			{1020, 6}, {1080, 5}, {1140, 4},
		},
	}
}

// BS is the embedded availability segment B_S: a more volatile 20-minute
// window with deep dips to 3 instances and fast swings.
func BS() Trace {
	return Trace{
		Name:    "BS",
		Horizon: 1200,
		Events: []Event{
			{0, 10}, {60, 8}, {150, 5}, {210, 7}, {330, 5},
			{390, 3}, {480, 6}, {570, 8}, {660, 4}, {750, 6},
			{870, 3}, {960, 6}, {1050, 8}, {1140, 6},
		},
	}
}

// APrimeS and BPrimeS are the fluctuating-workload variants used in §6.3
// (Figures 8c/8d base spot availability before on-demand mixing).
func APrimeS() Trace {
	return Trace{
		Name:    "A'S",
		Horizon: 1080,
		Events: []Event{
			{0, 10}, {120, 9}, {240, 8}, {360, 7}, {450, 9},
			{600, 10}, {720, 8}, {840, 7}, {960, 8},
		},
	}
}

func BPrimeS() Trace {
	return Trace{
		Name:    "B'S",
		Horizon: 1080,
		Events: []Event{
			{0, 10}, {120, 9}, {240, 8}, {330, 7}, {450, 8},
			{540, 9}, {660, 7}, {780, 6}, {900, 7}, {1020, 8},
		},
	}
}

// ByName returns an embedded trace.
func ByName(name string) (Trace, bool) {
	for _, t := range []Trace{AS(), BS(), APrimeS(), BPrimeS()} {
		if t.Name == name {
			return t, true
		}
	}
	return Trace{}, false
}

// GenOptions configures the synthetic trace generator.
type GenOptions struct {
	Name     string
	Horizon  float64 // seconds
	Start    int     // initial instance count
	Min, Max int     // bounds on the instance count
	// MeanDwell is the average time between availability changes.
	MeanDwell float64
	// DownBias ∈ [0,1] is the probability a change is a preemption
	// (0.5 = symmetric random walk).
	DownBias float64
	// MaxStep bounds the size of one change.
	MaxStep int
	Seed    int64
}

// Generate produces a random availability trace with the requested
// statistics. It is deterministic for a fixed seed.
func Generate(o GenOptions) (Trace, error) {
	if o.Horizon <= 0 || o.Start < o.Min || o.Start > o.Max || o.Min < 0 ||
		o.Max < o.Min || o.MeanDwell <= 0 || o.MaxStep < 1 ||
		o.DownBias < 0 || o.DownBias > 1 {
		return Trace{}, fmt.Errorf("trace: invalid generator options %+v", o)
	}
	rng := rand.New(rand.NewSource(o.Seed))
	tr := Trace{Name: o.Name, Horizon: o.Horizon}
	tr.Events = append(tr.Events, Event{At: 0, Count: o.Start})
	cur := o.Start
	t := 0.0
	for {
		t += rng.ExpFloat64() * o.MeanDwell
		if t >= o.Horizon {
			break
		}
		step := 1 + rng.Intn(o.MaxStep)
		if rng.Float64() < o.DownBias {
			step = -step
		}
		next := cur + step
		if next < o.Min {
			next = o.Min
		}
		if next > o.Max {
			next = o.Max
		}
		if next == cur {
			continue
		}
		cur = next
		tr.Events = append(tr.Events, Event{At: t, Count: cur})
	}
	sort.Slice(tr.Events, func(i, j int) bool { return tr.Events[i].At < tr.Events[j].At })
	return tr, tr.Validate()
}
