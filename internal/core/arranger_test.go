package core

import (
	"testing"

	"spotserve/internal/config"
	"spotserve/internal/cost"
	"spotserve/internal/model"
)

func TestArrangerPreemptionBudget(t *testing.T) {
	est := cost.NewEstimator(cost.DefaultParams(), model.GPT20B)
	a := &Arranger{Est: est, Enabled: true}
	budget := a.PreemptionBudget(100, 12)
	if budget != 88 {
		t.Fatalf("budget = %v, want 88", budget)
	}
	cfg := config.Config{D: 1, P: 3, M: 4, B: 8}
	// Plenty of time: may continue.
	if !a.MayContinue(0, cfg, 8, 600, budget) {
		t.Fatal("should continue with 88 s budget")
	}
	// At the brink: must stop.
	if a.MayContinue(87.99, cfg, 8, 600, budget) {
		t.Fatal("should stop when the next iteration cannot finish")
	}
}

func TestArrangerCacheWorth(t *testing.T) {
	est := cost.NewEstimator(cost.DefaultParams(), model.GPT20B)
	a := &Arranger{Est: est, Enabled: true}
	cfg := config.Config{D: 1, P: 3, M: 4, B: 8}
	// 100 committed tokens: recompute ≈ 10+ s; a 2 s cache move pays off.
	if !a.CacheWorthMigrating(cfg, 8, 512, 100, 2.0) {
		t.Fatal("cache migration should pay off at 100 tokens")
	}
	// 1 committed token: recompute ≈ init phase only; a 30 s move never
	// pays (simply rerouting is better, §4.1).
	if a.CacheWorthMigrating(cfg, 8, 512, 1, 30.0) {
		t.Fatal("cache migration should not pay off at 1 token")
	}
	if a.CacheWorthMigrating(cfg, 8, 512, 0, 0.001) {
		t.Fatal("no committed tokens → nothing to migrate")
	}
	a.Enabled = false
	if a.CacheWorthMigrating(cfg, 8, 512, 100, 0.001) {
		t.Fatal("disabled arranger must never migrate cache")
	}
}

func TestArrangerAcquisitionJoin(t *testing.T) {
	a := &Arranger{}
	if a.AcquisitionJoinTime(1234) != 1234 {
		t.Fatal("join time should equal instance readiness")
	}
}
