package core

import (
	"testing"

	"spotserve/internal/cloud"
	"spotserve/internal/model"
	"spotserve/internal/sim"
	"spotserve/internal/trace"
	"spotserve/internal/workload"
)

// runScenario builds a full stack and runs a trace + workload to the end.
func runScenario(t *testing.T, spec model.Spec, tr trace.Trace, rate float64, feat Features, seed int64) Stats {
	t.Helper()
	s := sim.New()
	cp := cloud.DefaultParams()
	cp.Seed = seed
	cl := cloud.New(s, cp, nil)
	opts := DefaultOptions(spec)
	opts.Features = feat
	opts.BaseRate = rate
	srv := NewServer(s, cl, opts)
	srv.Install()
	if err := cl.ReplayTrace(tr); err != nil {
		t.Fatal(err)
	}
	reqs, err := workload.Generate(workload.Options{
		Horizon: tr.Horizon, Rate: workload.ConstantRate(rate), CV: 6,
		SeqIn: opts.SeqIn, SeqOut: opts.SeqOut, Seed: seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	srv.LoadWorkload(reqs, tr.Horizon)
	// Run past the horizon to drain in-flight requests.
	s.Run(tr.Horizon + 600)
	return srv.Stats()
}

func steadyTrace(n int, horizon float64) trace.Trace {
	return trace.Trace{Name: "steady", Horizon: horizon,
		Events: []trace.Event{{At: 0, Count: n}}}
}

func TestServeSteadyStateCompletesAll(t *testing.T) {
	st := runScenario(t, model.OPT6B7, steadyTrace(6, 600), 1.0, AllFeatures(), 1)
	if st.Completed != st.Submitted {
		t.Fatalf("completed %d of %d", st.Completed, st.Submitted)
	}
	if st.Latency.Avg <= 0 {
		t.Fatal("no latency recorded")
	}
	// No preemptions → no migrations beyond possible workload reconfigs,
	// and certainly no reloads or cache give-ups.
	if st.Reloads != 0 {
		t.Fatalf("reloads = %d on a steady trace", st.Reloads)
	}
	if st.CacheGiveUps != 0 {
		t.Fatalf("cache give-ups = %d on a steady trace", st.CacheGiveUps)
	}
	if st.CostUSD <= 0 {
		t.Fatal("no cost accrued")
	}
}

func TestServeLatencyNearModelOptimum(t *testing.T) {
	// Queueing under CV=6 bursts puts the average well above l_exe even
	// on the paper's testbed (Figure 6 shows 20–40 s averages for
	// OPT-6.7B against a 5.4 s l_exe). Bound the average loosely and
	// make sure the floor (fastest request) is near the model optimum.
	st := runScenario(t, model.OPT6B7, steadyTrace(8, 600), 0.5, AllFeatures(), 2)
	if st.Completed == 0 {
		t.Fatal("nothing completed")
	}
	if st.Latency.Avg > 40 {
		t.Fatalf("avg latency %v s too high for light load", st.Latency.Avg)
	}
	if min := st.Latencies.Percentile(0); min < 4 || min > 12 {
		t.Fatalf("fastest request %v s, want near l_exe ≈ 5.4 s", min)
	}
}

func TestServeSurvivesPreemptions(t *testing.T) {
	st := runScenario(t, model.GPT20B, trace.AS(), 0.35, AllFeatures(), 3)
	if st.Completed < st.Submitted*9/10 {
		t.Fatalf("completed only %d of %d under trace AS", st.Completed, st.Submitted)
	}
	if st.Migrations == 0 {
		t.Fatal("no context migrations on a preemption trace")
	}
	if len(st.ConfigLog) < 2 {
		t.Fatalf("config log too short: %v", st.ConfigLog)
	}
}

func TestServeStatefulRecoveryCarriesTokens(t *testing.T) {
	st := runScenario(t, model.GPT20B, trace.BS(), 0.35, AllFeatures(), 4)
	if st.TokensRecovered == 0 {
		t.Fatal("stateful recovery never carried tokens across a migration")
	}
}

func TestServeArrangerAblationLosesProgress(t *testing.T) {
	full := runScenario(t, model.GPT20B, trace.BS(), 0.35, AllFeatures(), 5)
	noArr := AllFeatures()
	noArr.Arranger = false
	cut := runScenario(t, model.GPT20B, trace.BS(), 0.35, noArr, 5)
	if cut.TokensRecovered != 0 {
		t.Fatalf("ablated arranger still recovered %d tokens", cut.TokensRecovered)
	}
	if full.TokensRecovered == 0 {
		t.Fatal("full system recovered nothing")
	}
}

func TestServeP99DegradesWithAblations(t *testing.T) {
	// Cumulative ablation, Figure 9 style: each removal should not
	// improve the P99 tail (allowing small noise), and the fully
	// ablated system should be clearly worse than the full one.
	full := runScenario(t, model.GPT20B, trace.BS(), 0.35, AllFeatures(), 6)
	f := AllFeatures()
	f.Controller = false
	noCtl := runScenario(t, model.GPT20B, trace.BS(), 0.35, f, 6)
	f.MigrationPlanner = false
	noPlan := runScenario(t, model.GPT20B, trace.BS(), 0.35, f, 6)
	f.Arranger = false
	noArr := runScenario(t, model.GPT20B, trace.BS(), 0.35, f, 6)
	f.DeviceMapper = false
	f.Hierarchical = false
	noMap := runScenario(t, model.GPT20B, trace.BS(), 0.35, f, 6)

	t.Logf("P99: full=%.1f -ctl=%.1f -plan=%.1f -arr=%.1f -map=%.1f",
		full.Latency.P99, noCtl.Latency.P99, noPlan.Latency.P99,
		noArr.Latency.P99, noMap.Latency.P99)
	if noMap.Latency.P99 < full.Latency.P99 {
		t.Fatalf("fully ablated P99 %.1f better than full system %.1f",
			noMap.Latency.P99, full.Latency.P99)
	}
}

func TestServeOnDemandMixingAllocates(t *testing.T) {
	// A deep capacity dip with on-demand mixing enabled should trigger
	// on-demand allocation; without it the system must stay spot-only.
	dip := trace.Trace{Name: "dip", Horizon: 900, Events: []trace.Event{
		{At: 0, Count: 8}, {At: 200, Count: 2},
	}}
	f := AllFeatures()
	f.AllowOnDemand = true
	withOD := runScenario(t, model.GPT20B, dip, 0.35, f, 7)
	if withOD.OnDemandAllocated == 0 {
		t.Fatal("on-demand mixing never allocated")
	}
	spotOnly := runScenario(t, model.GPT20B, dip, 0.35, AllFeatures(), 7)
	if spotOnly.OnDemandAllocated != 0 {
		t.Fatal("spot-only run allocated on-demand")
	}
}

func TestServeTotalOutageRecovers(t *testing.T) {
	// Capacity collapses to zero, then returns: the system must park
	// requests, cold start from storage, and finish the work.
	tr := trace.Trace{Name: "outage", Horizon: 900, Events: []trace.Event{
		{At: 0, Count: 4}, {At: 120, Count: 0}, {At: 300, Count: 4},
	}}
	st := runScenario(t, model.OPT6B7, tr, 0.3, AllFeatures(), 8)
	if st.Completed == 0 {
		t.Fatal("nothing completed after outage recovery")
	}
	if st.Reloads == 0 {
		t.Fatal("cold start did not reload from storage")
	}
	if st.Completed < st.Submitted/2 {
		t.Fatalf("completed only %d of %d", st.Completed, st.Submitted)
	}
}

func TestServeDeterministic(t *testing.T) {
	a := runScenario(t, model.GPT20B, trace.AS(), 0.35, AllFeatures(), 9)
	b := runScenario(t, model.GPT20B, trace.AS(), 0.35, AllFeatures(), 9)
	if a.Completed != b.Completed || a.Latency.P99 != b.Latency.P99 ||
		a.Migrations != b.Migrations || a.CostUSD != b.CostUSD {
		t.Fatalf("nondeterministic runs: %+v vs %+v", a.Latency, b.Latency)
	}
}

func TestServeFluctuatingWorkloadScalesUp(t *testing.T) {
	// MAF-style overload: the controller should change configurations
	// (scale up during the plateau, back down after).
	tr := steadyTrace(10, 1080)
	s := sim.New()
	cl := cloud.New(s, cloud.DefaultParams(), nil)
	opts := DefaultOptions(model.GPT20B)
	opts.Features.AllowOnDemand = true
	srv := NewServer(s, cl, opts)
	srv.Install()
	if err := cl.ReplayTrace(tr); err != nil {
		t.Fatal(err)
	}
	reqs, err := workload.Generate(workload.Options{
		Horizon: 1080, Rate: workload.StepRate(workload.MAFSteps(0.35)), CV: 2,
		SeqIn: opts.SeqIn, SeqOut: opts.SeqOut, Seed: 10,
	})
	if err != nil {
		t.Fatal(err)
	}
	srv.LoadWorkload(reqs, 1080)
	s.Run(1080 + 600)
	st := srv.Stats()
	if len(st.ConfigLog) < 2 {
		t.Fatalf("controller never adapted to the workload: %v", st.ConfigLog)
	}
	if st.Completed < st.Submitted*8/10 {
		t.Fatalf("completed %d of %d under fluctuating load", st.Completed, st.Submitted)
	}
}
