package core

import (
	"testing"

	"spotserve/internal/cloud"
	"spotserve/internal/model"
	"spotserve/internal/sim"
	"spotserve/internal/trace"
	"spotserve/internal/workload"
)

// runWithCloudParams runs a scenario with custom cloud parameters —
// failure injection via hostile grace periods and acquisition delays.
func runWithCloudParams(t *testing.T, cp cloud.Params, tr trace.Trace, spec model.Spec, rate float64, seed int64) Stats {
	t.Helper()
	s := sim.New()
	cl := cloud.New(s, cp, nil)
	opts := DefaultOptions(spec)
	opts.CostParams.GracePeriod = cp.GracePeriod
	opts.CostParams.AcquireDelay = cp.AcquireDelay
	opts.BaseRate = rate
	srv := NewServer(s, cl, opts)
	srv.Install()
	if err := cl.ReplayTrace(tr); err != nil {
		t.Fatal(err)
	}
	reqs, err := workload.Generate(workload.Options{
		Horizon: tr.Horizon, Rate: workload.ConstantRate(rate), CV: 6,
		SeqIn: opts.SeqIn, SeqOut: opts.SeqOut, Seed: seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	srv.LoadWorkload(reqs, tr.Horizon)
	s.Run(tr.Horizon + 900)
	return srv.Stats()
}

// TestTinyGracePeriodSurvives injects a hostile 1-second grace period: no
// migration can finish in time, so instances crash out from under running
// pipelines. The system must take the §4.2 crash path (requests restart)
// and still drain the workload.
func TestTinyGracePeriodSurvives(t *testing.T) {
	cp := cloud.DefaultParams()
	cp.GracePeriod = 1
	st := runWithCloudParams(t, cp, trace.AS(), model.GPT20B, 0.35, 31)
	if st.Completed < st.Submitted*8/10 {
		t.Fatalf("completed only %d of %d with 1 s grace", st.Completed, st.Submitted)
	}
	// With no usable grace, some batches must have crashed.
	if st.CacheGiveUps == 0 {
		t.Fatal("no cache give-ups despite un-migratable grace period")
	}
}

// TestZeroGracePeriod is the extreme: termination coincides with notice.
func TestZeroGracePeriod(t *testing.T) {
	cp := cloud.DefaultParams()
	cp.GracePeriod = 0
	tr := trace.Trace{Name: "harsh", Horizon: 600, Events: []trace.Event{
		{At: 0, Count: 6}, {At: 120, Count: 4}, {At: 240, Count: 6}, {At: 360, Count: 3},
	}}
	st := runWithCloudParams(t, cp, tr, model.OPT6B7, 0.8, 32)
	if st.Completed < st.Submitted/2 {
		t.Fatalf("completed only %d of %d with zero grace", st.Completed, st.Submitted)
	}
}

// TestLongAcquisitionDelay makes new instances take five minutes to
// provision: the acquisition path must still fold them in eventually.
func TestLongAcquisitionDelay(t *testing.T) {
	cp := cloud.DefaultParams()
	cp.AcquireDelay = 300
	tr := trace.Trace{Name: "slow-grow", Horizon: 900, Events: []trace.Event{
		{At: 0, Count: 3}, {At: 100, Count: 8},
	}}
	st := runWithCloudParams(t, cp, tr, model.GPT20B, 0.35, 33)
	if st.Completed != st.Submitted {
		t.Fatalf("completed %d of %d", st.Completed, st.Submitted)
	}
	grown := false
	for _, c := range st.ConfigLog {
		if c.Reason == "acquisition" {
			grown = true
		}
	}
	if !grown {
		t.Fatal("acquired instances never joined")
	}
}

// TestRestartsAreCounted checks that requests that lose progress report
// their restarts, and that under the full system restarts stay rare
// compared to an arranger-less run.
func TestRestartsAreCounted(t *testing.T) {
	cp := cloud.DefaultParams()
	cp.GracePeriod = 1 // force crashes
	stCrash := runWithCloudParams(t, cp, trace.BS(), model.GPT20B, 0.35, 34)
	stNormal := runScenario(t, model.GPT20B, trace.BS(), 0.35, AllFeatures(), 34)
	if stCrash.CacheGiveUps <= stNormal.CacheGiveUps {
		t.Fatalf("crashy run give-ups %d not above normal %d",
			stCrash.CacheGiveUps, stNormal.CacheGiveUps)
	}
}

// TestOverlappingGraceWindows issues three preemption notices inside one
// grace window; the fold-in logic must produce a single consistent
// migration rather than corrupting state.
func TestOverlappingGraceWindows(t *testing.T) {
	tr := trace.Trace{Name: "overlap", Horizon: 600, Events: []trace.Event{
		{At: 0, Count: 10}, {At: 100, Count: 8}, {At: 110, Count: 6}, {At: 120, Count: 5},
	}}
	st := runScenario(t, model.GPT20B, tr, 0.35, AllFeatures(), 35)
	if st.Completed != st.Submitted {
		t.Fatalf("completed %d of %d", st.Completed, st.Submitted)
	}
	// Capacity settles at 5 instances = 20 GPUs; the final config fits.
	last := st.ConfigLog[len(st.ConfigLog)-1]
	if last.Config.GPUs() > 20 {
		t.Fatalf("final config %v exceeds surviving capacity", last.Config)
	}
}
