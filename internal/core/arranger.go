package core

import (
	"spotserve/internal/config"
	"spotserve/internal/cost"
)

// Arranger implements the interruption arranger (§4.1): the just-in-time
// decision of how many more decoding iterations a pipeline may run before
// it must hand over to context migration, and whether migrating the cache
// is worthwhile at all.
type Arranger struct {
	Est *cost.Estimator
	// Enabled gates JIT arrangement: when false (Figure 9 ablation) the
	// engine is suspended immediately on notice and no cache context is
	// migrated.
	Enabled bool
}

// PreemptionBudget returns the latest virtual time decoding may continue
// before migration must start, given the preemption deadline and the
// migration duration T_mig. This is the S_t = argmax formulation: run as
// many iterations as fit into T⁻ − T_mig.
func (a *Arranger) PreemptionBudget(deadline, tMig float64) float64 {
	return deadline - tMig
}

// MayContinue reports whether a pipeline should decode one more iteration:
// the iteration (estimated at the batch's current length) must finish
// before the migration-start budget. The engine consults this from its
// IterationDone hook — deciding before feeding a new batch into the
// engine, as the paper specifies.
func (a *Arranger) MayContinue(now float64, cfg config.Config, batchSize, curLen int, budget float64) bool {
	iter := a.Est.DecodeIter(cfg.P, cfg.M, batchSize, curLen)
	return now+iter <= budget
}

// CacheWorthMigrating decides reroute-vs-migrate (§4.1 last paragraph):
// migrating the cache only pays off when recomputing the committed tokens
// would cost more than moving them (T_mig < l_exe(S_t | C_t)). committed
// is the batch's minimum committed token count; cacheMigTime the marginal
// time to move the cache context.
func (a *Arranger) CacheWorthMigrating(cfg config.Config, batchSize, seqIn, committed int, cacheMigTime float64) bool {
	if !a.Enabled || committed <= 0 {
		return false
	}
	recompute := a.Est.InitPhase(cfg.P, cfg.M, batchSize, seqIn) +
		a.Est.ExecPartial(cfg.P, cfg.M, batchSize, seqIn, 0, committed)
	return cacheMigTime < recompute
}

// AcquisitionJoinTime returns when a newly acquired instance should join:
// decoding continues until the instance is actually ready (S_t = argmin
// {l_exe(S) ≥ T⁺}) — joining earlier would stall serving, later would
// waste the new capacity.
func (a *Arranger) AcquisitionJoinTime(readyAt float64) float64 {
	return readyAt
}
