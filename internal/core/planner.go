package core

import (
	"fmt"
	"math"
	"sort"

	"spotserve/internal/cloud"
	"spotserve/internal/config"
	"spotserve/internal/cost"
	"spotserve/internal/model"
)

// Transfer is one context-migration instruction: move Bytes of layer
// context (or KV cache when Layer < 0) to GPU To. From is nil when no live
// replica exists and the context must be fetched from cloud storage — the
// §4.2 fault-tolerance fallback.
type Transfer struct {
	// Layer is the transformer layer index, or CacheLayer for KV cache.
	Layer int
	To    *cloud.GPU
	From  *cloud.GPU
	Bytes float64
	// Inter marks a transfer crossing the instance network.
	Inter bool
}

// CacheLayer marks cache-context transfers in a Plan.
const CacheLayer = -1

// PlanOptions tunes the migration planner.
type PlanOptions struct {
	// Progressive enables the progressive migration schedule: front
	// pipeline stages start serving while later stages still migrate.
	Progressive bool
	// MemOpt enables the memory-optimized layer ordering of Algorithm 2.
	MemOpt bool
	// UmaxBytes is the per-instance migration-buffer cap U_max.
	UmaxBytes float64
	// MigrateCache prioritizes KV-cache context so interrupted requests
	// resume without recomputation (stateful recovery, §4).
	MigrateCache bool
	// Inherit maps new pipeline index → old pipeline index whose KV
	// cache must follow the batch (same map given to the mapper).
	Inherit map[int]int
}

// Plan is a complete context-migration plan for one configuration update.
type Plan struct {
	Target config.Config
	// Cache lists the prioritized cache-context transfers (§3.4: cache
	// first, for interruption fault tolerance).
	Cache []Transfer
	// LayerOrder is the layer migration order O from Algorithm 2.
	LayerOrder []int
	// ByLayer groups parameter transfers per layer.
	ByLayer map[int][]Transfer
	// StageOfLayer maps each layer to its pipeline stage in Target.
	StageOfLayer map[int]int
	// TotalBytes / StorageBytes / ReusedBytes summarize data movement.
	TotalBytes   float64
	StorageBytes float64
	// PeakBufferBytes is the highest in-flight buffer usage per instance
	// under the chosen order.
	PeakBufferBytes map[int64]float64
}

// PlanMigration builds the migration plan that realizes `mapping` starting
// from the devices' current contexts. devices must include every GPU in the
// mapping (sources may be any device in the list, including ones about to
// be preempted — they remain usable during the grace period).
func PlanMigration(spec model.Spec, est *cost.Estimator, devices []DeviceContext, mapping Mapping, opt PlanOptions) (*Plan, error) {
	target := mapping.Target
	if err := target.Validate(); err != nil {
		return nil, err
	}
	byGPU := make(map[int64]DeviceContext, len(devices))
	for _, d := range devices {
		byGPU[d.GPU.ID] = d
	}

	plan := &Plan{
		Target:          target,
		ByLayer:         make(map[int][]Transfer),
		StageOfLayer:    make(map[int]int),
		PeakBufferBytes: make(map[int64]float64),
	}
	for l := 0; l < spec.Layers; l++ {
		plan.StageOfLayer[l] = model.StageOf(spec.Layers, target.P, l)
	}

	// Deterministic position order.
	positions := target.Positions()

	// Parameter transfers: per (position, layer) compute missing bytes.
	for _, pos := range positions {
		gpu := mapping.Assign[pos]
		if gpu == nil {
			return nil, fmt.Errorf("core: plan missing GPU for %v", pos)
		}
		held := byGPU[gpu.ID].ModelCtx
		want := model.PositionRect(spec, target.P, target.M, pos.P, pos.M)
		for layer := want.LayerLo; layer < want.LayerHi; layer++ {
			lw := want.LayerRect(layer)
			missing := lw.ParamBytes(spec) - held.OverlapParamBytes(spec, lw)
			if missing <= 1 { // sub-byte float residue
				continue
			}
			src := findSource(byGPU, devices, gpu, lw)
			tr := Transfer{
				Layer: layer,
				To:    gpu,
				From:  src,
				Bytes: missing,
				Inter: src == nil || src.Inst.ID != gpu.Inst.ID,
			}
			if src == nil {
				plan.StorageBytes += missing
			}
			plan.ByLayer[layer] = append(plan.ByLayer[layer], tr)
			plan.TotalBytes += missing
		}
	}

	// Cache transfers (prioritized): every position of an inheriting
	// pipeline needs the cache slice of its (layers × frac) rectangle.
	if opt.MigrateCache {
		for _, pos := range positions {
			gpu := mapping.Assign[pos]
			dc := byGPU[gpu.ID]
			oldD, ok := opt.Inherit[pos.D]
			if !ok {
				continue
			}
			want := model.PositionRect(spec, target.P, target.M, pos.P, pos.M)
			tokens, src := cacheSource(devices, oldD, want)
			if tokens == 0 {
				continue
			}
			needBytes := float64(tokens) * spec.KVBytesPerTokenLayer() *
				float64(want.Layers()) * want.FracWidth()
			// Subtract cache the receiver already holds for this batch.
			if dc.CachePipeline == oldD {
				inter := dc.CacheRect.Intersect(want)
				if !inter.Empty() {
					needBytes -= float64(dc.CacheTokens) * spec.KVBytesPerTokenLayer() *
						float64(inter.Layers()) * inter.FracWidth()
				}
			}
			if needBytes <= 1 {
				continue
			}
			tr := Transfer{
				Layer: CacheLayer,
				To:    gpu,
				From:  src,
				Bytes: needBytes,
				Inter: src == nil || src.Inst.ID != gpu.Inst.ID,
			}
			plan.Cache = append(plan.Cache, tr)
			plan.TotalBytes += needBytes
		}
	}

	plan.LayerOrder = orderLayers(spec, plan, byGPU, mapping, opt)
	return plan, nil
}

// cacheSource finds a device holding cache of old pipeline d overlapping
// rect, returning its token count and GPU.
func cacheSource(devices []DeviceContext, oldD int, want model.Rect) (int, *cloud.GPU) {
	for _, dc := range devices {
		if dc.CachePipeline != oldD || dc.CacheTokens == 0 {
			continue
		}
		if !dc.CacheRect.Intersect(want).Empty() {
			return dc.CacheTokens, dc.GPU
		}
	}
	return 0, nil
}

// findSource locates a live device holding model context overlapping rect,
// preferring one on the receiver's own instance.
func findSource(byGPU map[int64]DeviceContext, devices []DeviceContext, to *cloud.GPU, want model.Rect) *cloud.GPU {
	var fallback *cloud.GPU
	for _, dc := range devices {
		if dc.GPU.ID == to.ID {
			continue
		}
		if dc.ModelCtx.Intersect(want).Empty() {
			continue
		}
		if dc.GPU.Inst.ID == to.Inst.ID {
			return dc.GPU
		}
		if fallback == nil {
			fallback = dc.GPU
		}
	}
	return fallback
}

// orderLayers implements Algorithm 2's MemOptMigPlanner. The memory model
// follows §3.4: migrating a layer's context makes every receiver's memory
// grow by the incoming bytes, while every holder of that layer's old
// context can release the part it does not keep once the layer's transfers
// complete ("the sender's memory can be released while the receivers'
// memory consumption will increase"). The net growth over the starting
// footprint is the migration buffer; layers whose migration would push any
// instance's buffer beyond U_max are deferred and then emitted in min-max
// order (line 19). The naive order (MemOpt=false) is plain layer order
// with unbounded buffer.
func orderLayers(spec model.Spec, plan *Plan, byGPU map[int64]DeviceContext, mapping Mapping, opt PlanOptions) []int {
	layers := make([]int, 0, len(plan.ByLayer))
	for l := range plan.ByLayer {
		layers = append(layers, l)
	}
	sort.Ints(layers)
	if len(layers) == 0 {
		return nil
	}

	// newRect[gpu] is the context each GPU keeps after migration.
	newRect := map[int64]model.Rect{}
	for pos, g := range mapping.Assign {
		newRect[g.ID] = model.PositionRect(spec, mapping.Target.P, mapping.Target.M, pos.P, pos.M)
	}

	// gpuIDs fixes an iteration order so float accumulation (and thus
	// the plan) is deterministic.
	gpuIDs := make([]int64, 0, len(byGPU))
	for id := range byGPU {
		gpuIDs = append(gpuIDs, id)
	}
	sort.Slice(gpuIDs, func(i, j int) bool { return gpuIDs[i] < gpuIDs[j] })

	// Instances get dense indices (assigned in deterministic first-touch
	// order) so the per-layer deltas and running usage live in flat slices
	// instead of maps — the deferred-layer selection below reads them
	// O(L²) times in the worst case. Each instance carries its own buffer
	// cap: U_max scaled by its type's memory multiplier, so small-memory
	// types defer layers earlier in mixed fleets.
	instIdx := map[int64]int{}
	instIDs := []int64{}
	instCap := []float64{}
	idxOf := func(inst *cloud.Instance) int {
		if i, ok := instIdx[inst.ID]; ok {
			return i
		}
		i := len(instIDs)
		instIdx[inst.ID] = i
		instIDs = append(instIDs, inst.ID)
		instCap = append(instCap, opt.UmaxBytes*inst.MemScale())
		return i
	}

	// instDelta is one instance's net memory change when a layer migrates:
	// incoming transfer bytes minus releasable old context.
	type instDelta struct {
		idx int
		by  float64
	}
	// deltas[li] are layer layers[li]'s per-instance changes, computed once
	// per layer — recomputing them inside every deferred-layer pass was
	// O(L²) work.
	deltas := make([][]instDelta, len(layers))
	layerPos := make(map[int]int, len(layers))
	var scratch []float64
	var touched []int
	for li, l := range layers {
		layerPos[l] = li
		touched = touched[:0]
		touch := func(idx int) {
			for len(scratch) <= idx {
				scratch = append(scratch, 0)
			}
			for _, t := range touched {
				if t == idx {
					return
				}
			}
			touched = append(touched, idx)
		}
		for _, tr := range plan.ByLayer[l] {
			idx := idxOf(tr.To.Inst)
			touch(idx)
			scratch[idx] += tr.Bytes
		}
		for _, id := range gpuIDs {
			dc := byGPU[id]
			oldL := dc.ModelCtx.LayerRect(l)
			if oldL.Empty() {
				continue
			}
			keep := oldL.OverlapParamBytes(spec, newRect[dc.GPU.ID])
			release := oldL.ParamBytes(spec) - keep
			if release > 0 {
				idx := idxOf(dc.GPU.Inst)
				touch(idx)
				scratch[idx] -= release
			}
		}
		d := make([]instDelta, len(touched))
		for i, idx := range touched {
			d[i] = instDelta{idx: idx, by: scratch[idx]}
			scratch[idx] = 0
		}
		deltas[li] = d
	}

	usage := make([]float64, len(instIDs))
	peaks := make([]float64, len(instIDs))
	apply := func(l int) {
		for _, d := range deltas[layerPos[l]] {
			usage[d.idx] += d.by
			if usage[d.idx] > peaks[d.idx] {
				peaks[d.idx] = usage[d.idx]
			}
		}
	}
	// heteroCap is set when instance types scale U_max differently; the
	// ordering score then becomes the worst per-instance cap excess instead
	// of the global peak, so small-memory instances defer layers first. The
	// homogeneous path keeps the exact historical computation (and thus the
	// golden plan orders).
	heteroCap := false
	for _, c := range instCap {
		if c != opt.UmaxBytes {
			heteroCap = true
			break
		}
	}
	// scoreAfter returns the ordering score of migrating layer l next: the
	// projected global buffer peak (homogeneous), or the worst projected
	// excess over any instance's own cap (heterogeneous). A layer is
	// admissible when the score is within scoreLimit.
	scoreLimit := opt.UmaxBytes
	if heteroCap {
		scoreLimit = 0
	}
	scoreAfter := func(l int) float64 {
		if heteroCap {
			worst := math.Inf(-1)
			for i, u := range usage {
				if v := u - instCap[i]; v > worst {
					worst = v
				}
			}
			for _, d := range deltas[layerPos[l]] {
				if v := usage[d.idx] + d.by - instCap[d.idx]; v > worst {
					worst = v
				}
			}
			return worst
		}
		peak := 0.0
		for _, u := range usage {
			if u > peak {
				peak = u
			}
		}
		for _, d := range deltas[layerPos[l]] {
			if u := usage[d.idx] + d.by; u > peak {
				peak = u
			}
		}
		return peak
	}
	// flushPeaks publishes the per-instance peaks; entries appear only for
	// instances whose buffer ever grew, matching the map-based original.
	flushPeaks := func() {
		for i, p := range peaks {
			if p > 0 {
				plan.PeakBufferBytes[instIDs[i]] = p
			}
		}
	}

	if !opt.MemOpt {
		for _, l := range layers {
			apply(l)
		}
		flushPeaks()
		return layers
	}

	order := make([]int, 0, len(layers))
	var deferred []int // kept sorted ascending; min-score ties pick the lowest layer
	for _, l := range layers {
		if scoreAfter(l) <= scoreLimit {
			apply(l)
			order = append(order, l)
		} else {
			deferred = append(deferred, l)
		}
	}
	for len(deferred) > 0 {
		bestI := -1
		bestV := 0.0
		for i, l := range deferred {
			v := scoreAfter(l)
			if bestI < 0 || v < bestV {
				bestI, bestV = i, v
			}
		}
		bestL := deferred[bestI]
		apply(bestL)
		order = append(order, bestL)
		deferred = append(deferred[:bestI], deferred[bestI+1:]...)
	}
	flushPeaks()
	return order
}

// Timeline is the realized schedule of a plan: when each stage of the new
// configuration can start serving, relative to migration start.
type Timeline struct {
	// CacheDone is when all cache context has arrived.
	CacheDone float64
	// StageReady[p] is when stage p's context is fully resident.
	StageReady []float64
	// Duration is when the entire migration completes.
	Duration float64
}

// Schedule simulates the plan's data movement: each receiving GPU processes
// its transfers serially (NIC-bound) in plan order — cache context first
// (§3.4), then layers in LayerOrder — while distinct receivers proceed in
// parallel. With Progressive disabled every stage becomes ready only at
// full completion.
func (pl *Plan) Schedule(est *cost.Estimator, progressive bool) Timeline {
	busy := map[int64]float64{} // per receiving GPU
	tl := Timeline{StageReady: make([]float64, pl.Target.P)}

	run := func(tr Transfer) float64 {
		d := est.TransferTime(tr.Bytes, tr.Inter)
		if tr.From == nil {
			// Storage fetch: bandwidth-limited cold load.
			d = tr.Bytes / est.Params.StorageBWPerGPU
		}
		busy[tr.To.ID] += d
		return busy[tr.To.ID]
	}

	for _, tr := range pl.Cache {
		end := run(tr)
		if end > tl.CacheDone {
			tl.CacheDone = end
		}
	}
	for _, l := range pl.LayerOrder {
		st := pl.StageOfLayer[l]
		for _, tr := range pl.ByLayer[l] {
			end := run(tr)
			if end > tl.StageReady[st] {
				tl.StageReady[st] = end
			}
		}
	}
	for _, t := range tl.StageReady {
		if t > tl.Duration {
			tl.Duration = t
		}
	}
	if tl.CacheDone > tl.Duration {
		tl.Duration = tl.CacheDone
	}
	if !progressive {
		for p := range tl.StageReady {
			tl.StageReady[p] = tl.Duration
		}
	}
	return tl
}
