// Package core implements SpotServe's control plane: the inference server
// (request manager, instance manager, meta-context manager — Figure 3), the
// interruption arranger with stateful inference recovery (§4), and the
// orchestration that drives the reconfiguration pipeline of
// internal/reconfig (optimizer §3.2, device mapper §3.3, migration planner
// §3.4) end to end.
package core

import (
	"fmt"
	"math"
	"sort"

	"spotserve/internal/cloud"
	"spotserve/internal/config"
	"spotserve/internal/cost"
	"spotserve/internal/engine"
	"spotserve/internal/metrics"
	"spotserve/internal/model"
	"spotserve/internal/predict"
	"spotserve/internal/reconfig"
	"spotserve/internal/sim"
	"spotserve/internal/workload"
)

// Features toggles SpotServe's optimizations, enabling the Figure 9
// ablation study. All-true is the full system.
type Features struct {
	// Controller enables the adaptive configuration optimizer
	// (Algorithm 1); disabled, the server keeps its initial shape and
	// only adjusts the data-parallel degree to fit the fleet.
	Controller bool
	// DeviceMapper enables KM matching; disabled, GPUs are bound to
	// positions in arbitrary order (model context still maintained).
	DeviceMapper bool
	// Hierarchical enables two-step intra-/inter-instance matching.
	Hierarchical bool
	// MigrationPlanner enables the progressive, memory-optimized plan of
	// Algorithm 2; disabled, migration is blocking with the naive order
	// and the naive (2× resident) buffer memory model.
	MigrationPlanner bool
	// Arranger enables JIT interruption arrangement and cache-context
	// migration (stateful inference recovery, §4); disabled, pipelines
	// stop immediately on notice and interrupted requests recompute.
	Arranger bool
	// AllowOnDemand lets Algorithm 1 allocate on-demand instances when
	// spot capacity is insufficient (the +O traces).
	AllowOnDemand bool
	// AdaptivePool sizes the candidate pool from an online availability
	// predictor instead of the fixed reserve of §3.2 — the §8
	// future-work direction (instance availability prediction).
	AdaptivePool bool
}

// AllFeatures returns the full SpotServe system.
func AllFeatures() Features {
	return Features{
		Controller:       true,
		DeviceMapper:     true,
		Hierarchical:     true,
		MigrationPlanner: true,
		Arranger:         true,
	}
}

// Options configures a Server.
type Options struct {
	Spec       model.Spec
	CostParams cost.Params
	Limits     config.Limits
	Features   Features
	// SeqIn/SeqOut are the workload sequence lengths.
	SeqIn, SeqOut int
	// AlphaWindow is the look-back window for estimating the arrival
	// rate α_t ("we estimate α_t by observing the request arrivals
	// within a short past duration (e.g., 30 s)").
	AlphaWindow float64
	// CheckInterval is how often the workload monitor re-evaluates the
	// configuration.
	CheckInterval float64
	// MaxInstances caps the fleet (provider capacity).
	MaxInstances int
	// BaseRate seeds the α estimate before enough arrivals are observed.
	BaseRate float64
	// SLOLatency forwards to the optimizer (0 = latency minimization).
	SLOLatency float64
	// Autoscaler, when non-nil, overrides the fixed fleet target of
	// Algorithm 1: it is consulted with a cloud.FleetView on preemption
	// and ready events and at each workload check, and its answer replaces
	// the optimizer's WantInstances (clamped to [0, MaxInstances]).
	Autoscaler cloud.Autoscaler
	// DisableFastForward forces the engine into one-event-per-iteration
	// execution (the reference mode; results are byte-identical either
	// way, fast-forward is just cheaper).
	DisableFastForward bool
	// DisableReconfigCache forces the reconfiguration pipeline down its
	// cold recompute path (the reference mode; results are byte-identical
	// either way, the cache is just cheaper — mirroring fast-forward).
	DisableReconfigCache bool
}

// DefaultOptions fills the paper's defaults for a model.
func DefaultOptions(spec model.Spec) Options {
	return Options{
		Spec:          spec,
		CostParams:    cost.DefaultParams(),
		Limits:        config.DefaultLimits(),
		Features:      AllFeatures(),
		SeqIn:         cost.DefaultSeqIn,
		SeqOut:        cost.DefaultSeqOut,
		AlphaWindow:   30,
		CheckInterval: 30,
		MaxInstances:  12,
		BaseRate:      workload.DefaultRates()[spec.Name],
	}
}

// ConfigChange records one reconfiguration for the Figure 8 timeline.
type ConfigChange struct {
	At     float64
	Config config.Config
	Reason string
}

// Stats is the serving outcome of one run.
type Stats struct {
	Submitted, Completed int
	Latency              metrics.Summary
	Latencies            *metrics.Latencies
	CostUSD              float64
	// PerRequest holds (arrival time, end-to-end latency) samples.
	PerRequest metrics.Series
	ConfigLog  []ConfigChange
	// Migrations counts context migrations; Reloads counts full restarts
	// from storage; CacheGiveUps counts fault-tolerance cache drops.
	Migrations, Reloads, CacheGiveUps int
	// TokensRecovered counts committed tokens carried across migrations
	// by stateful recovery.
	TokensRecovered int
	// OnDemandAllocated counts on-demand instance allocations.
	OnDemandAllocated int
	// ReconfigCache reports the reconfiguration engine's memo
	// effectiveness. Deliberately excluded from result fingerprints:
	// cache hits never change results, only how they are computed.
	ReconfigCache reconfig.CacheStats
}

// Server is SpotServe's inference server: request manager, instance
// manager and meta-context manager over one model deployment (Figure 3).
type Server struct {
	sim   *sim.Simulator
	cloud *cloud.Cloud
	est   *cost.Estimator
	eng   *engine.Engine
	rc    *reconfig.Engine
	arr   *Arranger
	opts  Options

	cfg    config.Config
	assign map[config.Position]*cloud.GPU
	pipes  map[int]*engine.Pipeline
	// initialShape remembers the boot configuration for the
	// controller-ablated mode.
	initialShape config.Config

	queue     []*engine.RequestState
	recovered map[int]*engine.Batch // new pipeline id → batch to resume

	arrivals []float64

	// Arrival chain: when the workload's arrival times are nondecreasing,
	// submissions run as one self-rescheduling event over the state slab
	// instead of one closure per request.
	arrivalStates []engine.RequestState
	nextArrival   int
	submitNextFn  func()

	// reconfiguration state
	pendingReconfig bool
	reconfigReason  string
	stopBudget      map[int]float64 // pipeline id → latest decode time
	migrating       bool
	epoch           int
	dying           map[int64]bool // instance IDs under preemption notice

	// pred forecasts preemption pressure for the adaptive pool.
	pred *predict.Predictor

	// noticeLog records preemption-notice times for the autoscaler's
	// look-back window.
	noticeLog []float64
	// latLog records (completion time, latency) for the autoscaler's
	// recent-p99 signal; like noticeLog it is only maintained when a
	// policy is configured to read it (wantSignals).
	latLog []metrics.Sample
	// wantSignals caches whether the configured policy implements
	// cloud.SignalConsumer — counters-only policies skip the signal
	// computation entirely.
	wantSignals bool

	stats   Stats
	horizon float64
}

// NewServer wires a server to a simulator and cloud. Call Install as the
// cloud's listener before running.
func NewServer(s *sim.Simulator, cl *cloud.Cloud, opts Options) *Server {
	est := cost.Shared(opts.CostParams, opts.Spec)
	rc := reconfig.NewEngine(reconfig.Options{
		Spec:            opts.Spec,
		Est:             est,
		Limits:          opts.Limits,
		GPUsPerInstance: opts.CostParams.GPUsPerInstance,
		MaxInstances:    opts.MaxInstances,
		SeqIn:           opts.SeqIn,
		SeqOut:          opts.SeqOut,
		NaiveBuffer:     !opts.Features.MigrationPlanner,
		SLOLatency:      opts.SLOLatency,
		UseKM:           opts.Features.DeviceMapper,
		Hierarchical:    opts.Features.Hierarchical,
		Progressive:     opts.Features.MigrationPlanner,
		MemOpt:          opts.Features.MigrationPlanner,
		UmaxBytes:       opts.CostParams.BufMaxBytes,
		MigrateCache:    opts.Features.Arranger,
		DisableCache:    opts.DisableReconfigCache,
	})
	srv := &Server{
		sim:        s,
		cloud:      cl,
		est:        est,
		rc:         rc,
		arr:        &Arranger{Est: est, Enabled: opts.Features.Arranger},
		opts:       opts,
		assign:     map[config.Position]*cloud.GPU{},
		pipes:      map[int]*engine.Pipeline{},
		recovered:  map[int]*engine.Batch{},
		stopBudget: map[int]float64{},
		dying:      map[int64]bool{},
	}
	_, srv.wantSignals = opts.Autoscaler.(cloud.SignalConsumer)
	srv.eng = engine.New(s, est, (*serverHooks)(srv))
	srv.eng.NoFastForward = opts.DisableFastForward
	if opts.Features.AdaptivePool {
		p, err := predict.New(predict.DefaultOptions())
		if err != nil {
			panic(err)
		}
		srv.pred = p
	}
	return srv
}

// Engine exposes the engine (tests, experiments).
func (s *Server) Engine() *engine.Engine { return s.eng }

// Config returns the current parallel configuration.
func (s *Server) Config() config.Config { return s.cfg }

// Stats returns a snapshot of the serving statistics.
func (s *Server) Stats() Stats {
	st := s.stats
	st.CostUSD = s.cloud.CostUSD()
	if st.Latencies != nil {
		st.Latency = st.Latencies.Summarize()
	}
	st.ReconfigCache = s.rc.CacheStats()
	return st
}

// Reconfig exposes the reconfiguration engine (tests, experiments).
func (s *Server) Reconfig() *reconfig.Engine { return s.rc }

// LoadWorkload schedules request arrivals and the workload monitor; horizon
// bounds the periodic checks.
func (s *Server) LoadWorkload(reqs []workload.Request, horizon float64) {
	s.horizon = horizon
	if s.stats.Latencies == nil {
		s.stats.Latencies = &metrics.Latencies{}
	}
	// One slab holds every request's state: per-arrival allocations in
	// submit would dominate the steady-state profile.
	states := make([]engine.RequestState, len(reqs))
	sorted := true
	for i, r := range reqs {
		states[i].Req = r
		s.stats.Submitted++
		if i > 0 && r.At < reqs[i-1].At {
			sorted = false
		}
	}
	if sorted && len(states) > 0 {
		// Nondecreasing arrivals (every generated trace): one
		// self-rescheduling event walks the slab, so loading n requests
		// costs O(1) closures instead of n.
		s.arrivalStates = states
		s.nextArrival = 0
		s.submitNextFn = s.submitNext
		s.sim.At(states[0].Req.At, s.submitNextFn)
	} else {
		for i := range states {
			st := &states[i]
			s.sim.At(st.Req.At, func() { s.submit(st) })
		}
	}
	// Workload monitor ticks, continuing through the drain window so a
	// poor configuration chosen near the horizon still gets corrected.
	for t := s.opts.CheckInterval; t < horizon+1800; t += s.opts.CheckInterval {
		t := t
		s.sim.At(t, func() { s.workloadCheck() })
	}
	// Bootstrap after the cloud's t=0 events.
	s.sim.At(0, func() { s.bootstrap() })
}

func (s *Server) submit(r *engine.RequestState) {
	s.arrivals = append(s.arrivals, r.Req.At)
	s.queue = append(s.queue, r)
	s.tryDispatch()
}

// submitNext submits the next slab request and schedules the one after it —
// the arrival chain's single event callback. The successor is scheduled
// before submission so same-time arrivals keep their FIFO order ahead of
// any events the submission itself schedules.
func (s *Server) submitNext() {
	st := &s.arrivalStates[s.nextArrival]
	s.nextArrival++
	if s.nextArrival < len(s.arrivalStates) {
		s.sim.At(s.arrivalStates[s.nextArrival].Req.At, s.submitNextFn)
	}
	s.submit(st)
}

// backlogDrainTarget is how quickly the optimizer should aim to drain a
// standing queue, in seconds. Queued requests translate into extra
// required throughput.
const backlogDrainTarget = 120.0

// alphaT estimates the required serving rate: the observed arrival rate
// over the look-back window, floored at the configured base rate (bursty
// CV=6 arrivals make short windows wildly noisy), plus backlog pressure so
// that a standing queue forces a higher-throughput configuration.
func (s *Server) alphaT() float64 {
	now := s.sim.Now()
	w := s.opts.AlphaWindow
	if now < w {
		w = now
	}
	observed := 0.0
	if w > 0 {
		n := 0
		for i := len(s.arrivals) - 1; i >= 0; i-- {
			if s.arrivals[i] < now-w {
				break
			}
			n++
		}
		observed = float64(n) / w
	}
	if observed < s.opts.BaseRate {
		observed = s.opts.BaseRate
	}
	return observed + float64(len(s.queue))/backlogDrainTarget
}

// usableGPUs returns GPUs of running, not-dying instances.
func (s *Server) usableGPUs() []*cloud.GPU {
	var out []*cloud.GPU
	for _, inst := range s.cloud.Alive() {
		if s.dying[inst.ID] || inst.State != cloud.Running {
			continue
		}
		out = append(out, inst.GPUs...)
	}
	return out
}

// usableGPUCount returns len(usableGPUs()) without building the slice (the
// periodic workload monitor only needs the count).
func (s *Server) usableGPUCount() int {
	n := 0
	for _, inst := range s.cloud.Alive() {
		if s.dying[inst.ID] || inst.State != cloud.Running {
			continue
		}
		n += len(inst.GPUs)
	}
	return n
}

// usableSpeedFloor returns the slowest usable GPU's speed multiplier — the
// conservative correction the optimizer plans with on mixed fleets (1.0 on
// homogeneous ones).
func (s *Server) usableSpeedFloor() float64 {
	floor := 1.0
	first := true
	for _, inst := range s.cloud.Alive() {
		if s.dying[inst.ID] || inst.State != cloud.Running {
			continue
		}
		if sp := inst.GPUSpeed(); first || sp < floor {
			floor = sp
			first = false
		}
	}
	return floor
}

// usableMemFloor returns the smallest usable instance's memory multiplier —
// shape feasibility is checked against it, so proposals fit the fleet's
// smallest-memory device (1.0 on homogeneous fleets).
func (s *Server) usableMemFloor() float64 {
	floor := 1.0
	first := true
	for _, inst := range s.cloud.Alive() {
		if s.dying[inst.ID] || inst.State != cloud.Running {
			continue
		}
		if ms := inst.MemScale(); first || ms < floor {
			floor = ms
			first = false
		}
	}
	return floor
}

// deviceContexts snapshots daemon contexts for the given GPUs.
func (s *Server) deviceContexts(gpus []*cloud.GPU) []reconfig.DeviceContext {
	out := make([]reconfig.DeviceContext, 0, len(gpus))
	for _, g := range gpus {
		d := s.eng.Daemon(g)
		out = append(out, reconfig.DeviceContext{
			GPU:           g,
			ModelCtx:      d.ModelCtx,
			CachePipeline: d.CachePipeline,
			CacheRect:     d.CacheRect,
			CacheTokens:   d.CacheTokens,
		})
	}
	return out
}

// bootstrap installs the initial deployment at t=0 with contexts already
// resident (the evaluation starts from an initialized system, §6.3).
func (s *Server) bootstrap() {
	if !s.cfg.IsZero() {
		return
	}
	gpus := s.usableGPUs()
	prop := s.propose(len(gpus))
	// Grow the fleet toward the unbounded proposal (on-demand mixing),
	// but deploy what fits right now.
	s.manageFleet(prop)
	target := prop.Config
	if target.GPUs() > len(gpus) {
		alpha := s.alphaT()
		if s.opts.Features.Controller {
			target = s.rc.Propose(s.request(alpha, len(gpus), len(gpus))).Config
		} else {
			target = reconfig.FitToInstances(target, len(gpus))
		}
	}
	if target.IsZero() || target.GPUs() > len(gpus) {
		return
	}
	s.initialShape = target
	s.installConfig(target, nil, "bootstrap")
	s.tryDispatch()
}

// request assembles the reconfiguration Request for the current fleet: the
// canonical fleet signature (device counts plus the speed and memory
// floors, so mixed fleets are planned for their slowest and
// smallest-memory usable device) and the workload rate.
func (s *Server) request(alpha float64, gpusAvail, maxGPUs int) reconfig.Request {
	req := reconfig.Request{
		Alpha:      alpha,
		GPUsAvail:  gpusAvail,
		MaxGPUs:    maxGPUs,
		SpeedFloor: s.usableSpeedFloor(),
		MemFloor:   s.usableMemFloor(),
	}
	if s.pred != nil {
		// Adaptive candidate pool: expected near-term preemptions
		// translate into extra standby instances.
		req.ReservePool = s.pred.RecommendedPool(s.sim.Now(), 2)
	}
	return req
}

// propose runs the configuration optimizer over the currently usable GPU
// count. Measuring the fleet in GPUs (not instances) keeps mixed fleets —
// where instance types carry different device counts — planned correctly;
// on homogeneous fleets the arithmetic is identical to the historical
// instance-denominated path.
func (s *Server) propose(gpus int) reconfig.Proposal {
	alpha := s.alphaT()
	gpi := s.opts.CostParams.GPUsPerInstance
	if !s.opts.Features.Controller && !s.initialShape.IsZero() {
		// No optimizer run, but the throughput monitor still reads φ(C)
		// through the engine — keep its fleet floors current.
		optz := s.rc.Optimizer()
		optz.SpeedFloor = s.usableSpeedFloor()
		optz.MemFloor = s.usableMemFloor()
		c := reconfig.FitToInstances(s.initialShape, gpus)
		return reconfig.Proposal{Config: c, WantInstances: gpus / gpi, WantGPUs: gpus}
	}
	if s.opts.Features.AllowOnDemand {
		return s.rc.Propose(s.request(alpha, gpus, s.opts.MaxInstances*gpi))
	}
	return s.rc.Propose(s.request(alpha, gpus, gpus))
}

// preemptionWindow is the look-back over which the autoscaler's
// RecentPreemptions signal counts notices.
const preemptionWindow = 120.0

// recentPreemptions counts preemption notices inside the look-back window,
// pruning expired entries.
func (s *Server) recentPreemptions() int {
	cutoff := s.sim.Now() - preemptionWindow
	i := 0
	for i < len(s.noticeLog) && s.noticeLog[i] < cutoff {
		i++
	}
	s.noticeLog = s.noticeLog[i:]
	return len(s.noticeLog)
}

// latencyWindow is the look-back over which the autoscaler's RecentP99
// signal summarizes completed requests.
const latencyWindow = 120.0

// recentP99 returns the p99 latency over completions inside the look-back
// window, pruning expired entries (nearest-rank, like metrics.Latencies).
func (s *Server) recentP99() float64 {
	cutoff := s.sim.Now() - latencyWindow
	i := 0
	for i < len(s.latLog) && s.latLog[i].At < cutoff {
		i++
	}
	s.latLog = s.latLog[i:]
	if len(s.latLog) == 0 {
		return 0
	}
	vals := make([]float64, len(s.latLog))
	for j, x := range s.latLog {
		vals[j] = x.Value
	}
	sort.Float64s(vals)
	rank := int(math.Ceil(0.99 * float64(len(vals))))
	if rank < 1 {
		rank = 1
	}
	return vals[rank-1]
}

// fleetTarget resolves the fleet-size target for a proposal: the
// optimizer's own WantInstances under the fixed-target policy, or the
// configured autoscaler's answer (clamped to provider capacity).
func (s *Server) fleetTarget(prop reconfig.Proposal, spot, pSpot, od, pOD int) int {
	if s.opts.Autoscaler == nil {
		return prop.WantInstances
	}
	v := cloud.FleetView{
		Now:               s.sim.Now(),
		SpotRunning:       spot,
		SpotPending:       pSpot,
		OnDemandRunning:   od,
		OnDemandPending:   pOD,
		Dying:             len(s.dying),
		QueueDepth:        len(s.queue),
		Want:              prop.WantInstances,
		RecentPreemptions: s.recentPreemptions(),
	}
	if s.wantSignals {
		if !s.cfg.IsZero() {
			v.Phi = s.rc.Phi(s.cfg)
			if gpi := s.opts.CostParams.GPUsPerInstance; gpi > 0 {
				if n := (s.cfg.GPUs() + gpi - 1) / gpi; n > 0 {
					v.PhiPerInstance = v.Phi / float64(n)
				}
			}
		}
		v.Alpha = s.alphaT()
		v.RecentP99 = s.recentP99()
		v.SpendUSDPerHour = s.cloud.SpendUSDPerHour()
	}
	want := s.opts.Autoscaler.Target(v)
	if want < 0 {
		want = 0
	}
	if want > s.opts.MaxInstances {
		want = s.opts.MaxInstances
	}
	return want
}

// fleetGPUs sums the GPUs of non-terminated, non-dying instances — the
// device-denominated counterpart of the instance counting above, exact on
// fleets whose instance types carry different GPU counts.
func (s *Server) fleetGPUs() int {
	return s.cloud.GPUCount(func(id int64) bool { return s.dying[id] })
}

// manageFleet allocates or releases instances toward the proposal
// (Algorithm 1 lines 6–10): allocate on-demand when allowed, free
// on-demand first, and keep the reserve pool. The comparison is
// GPU-denominated so mixed fleets grow to the devices the configuration
// actually needs; on homogeneous fleets the arithmetic reduces exactly to
// the historical instance counting. A configured autoscaling policy
// replaces the proposal's fixed target.
func (s *Server) manageFleet(prop reconfig.Proposal) {
	gpi := s.opts.CostParams.GPUsPerInstance
	haveGPUs := s.fleetGPUs()
	wantGPUs := prop.WantGPUs
	if s.opts.Autoscaler != nil {
		// Policies reason in instances (the FleetView vocabulary); their
		// answer is applied as a delta over the optimizer's own target,
		// converted at the primary type's GPU count. A policy that
		// returns Want unchanged (fixed-target) is therefore exactly the
		// no-policy baseline, on homogeneous and mixed fleets alike.
		spot, od := s.cloud.AliveCount()
		pSpot, pOD := s.cloud.PendingCount()
		extra := s.fleetTarget(prop, spot, pSpot, od, pOD) - prop.WantInstances
		wantGPUs += extra * gpi
		if wantGPUs < 0 {
			wantGPUs = 0
		}
		if lim := s.opts.MaxInstances * gpi; wantGPUs > lim {
			wantGPUs = lim
		}
	}
	switch {
	case wantGPUs > haveGPUs && s.opts.Features.AllowOnDemand:
		// Typed allocation covers the GPU deficit with non-primary-type
		// fallback for the tail (exactly ceil(deficit/gpi) primary
		// instances on homogeneous fleets).
		s.stats.OnDemandAllocated += len(s.cloud.AllocOnDemandGPUs(wantGPUs - haveGPUs))
	case wantGPUs < haveGPUs:
		// Free surplus on-demand instances (never spot: their
		// availability is the market's, and they are the cheap ones).
		for _, inst := range s.cloud.Alive() {
			if haveGPUs-len(inst.GPUs) < wantGPUs {
				break
			}
			if inst.Kind != cloud.OnDemand || s.dying[inst.ID] {
				continue
			}
			if s.instanceInUse(inst) {
				continue
			}
			s.cloud.Release(inst)
			haveGPUs -= len(inst.GPUs)
		}
	}
}

// instanceInUse reports whether any GPU of inst is in the current mesh.
func (s *Server) instanceInUse(inst *cloud.Instance) bool {
	//detlint:allow maprange — existential scan with pure reads: the answer is whether ANY assigned GPU belongs to inst, identical under every visit order
	for _, g := range s.assign {
		if g.Inst.ID == inst.ID {
			return true
		}
	}
	return false
}

// installConfig binds cfg over the current usable GPUs with the given
// stage-ready schedule (nil = ready now) and rebuilds pipelines. Contexts
// on the daemons are set to their new rectangles.
func (s *Server) installConfig(cfg config.Config, ready []float64, reason string) {
	gpus := s.usableGPUs()
	devs := s.deviceContexts(gpus)
	mapping, err := s.rc.Map(devs, cfg, nil)
	if err != nil {
		// Not enough GPUs — should have been prevented by the caller.
		panic(fmt.Sprintf("core: installConfig: %v", err))
	}
	s.applyMapping(cfg, mapping, ready, reason)
}

// applyMapping installs an already-computed mapping.
func (s *Server) applyMapping(cfg config.Config, mapping reconfig.Mapping, ready []float64, reason string) {
	s.cfg = cfg
	s.assign = mapping.Assign
	s.pipes = map[int]*engine.Pipeline{}
	now := s.sim.Now()
	for d := 0; d < cfg.D; d++ {
		bind := map[config.Position]*cloud.GPU{}
		for p := 0; p < cfg.P; p++ {
			for m := 0; m < cfg.M; m++ {
				pos := config.Position{D: d, P: p, M: m}
				bind[pos] = mapping.Assign[pos]
			}
		}
		pipe, err := s.eng.NewPipeline(d, cfg, bind)
		if err != nil {
			panic(fmt.Sprintf("core: applyMapping: %v", err))
		}
		if ready != nil {
			for p := 0; p < cfg.P; p++ {
				pipe.SetStageReady(p, ready[p])
			}
		}
		// Mixed fleets: the pipeline decodes at its slowest GPU's pace.
		if slow := PipelineSlowdown(bind); slow != 1 {
			pipe.SetSlowdown(slow)
		}
		s.pipes[d] = pipe
	}
	// Daemons now hold their new model context.
	//detlint:allow maprange — each Assign entry names a distinct GPU, so the per-daemon ModelCtx writes are disjoint; no order can change the final state
	for pos, g := range mapping.Assign {
		d := s.eng.Daemon(g)
		d.ModelCtx = model.PositionRect(s.opts.Spec, cfg.P, cfg.M, pos.P, pos.M)
	}
	s.stats.ConfigLog = append(s.stats.ConfigLog, ConfigChange{At: now, Config: cfg, Reason: reason})
}

// tryDispatch feeds idle pipelines: recovered batches first (they resume on
// their inheriting pipeline), then fresh batches from the queue.
func (s *Server) tryDispatch() {
	if s.pendingReconfig || s.migrating {
		return
	}
	// Pipeline ids are dense 0..D-1 (applyMapping), so index order is id
	// order without collecting and sorting keys.
	for id := 0; id < len(s.pipes); id++ {
		pipe := s.pipes[id]
		if pipe.Busy() {
			continue
		}
		if b, ok := s.recovered[id]; ok {
			delete(s.recovered, id)
			if b.Size() > 0 {
				pipe.Start(b)
				continue
			}
		}
		if len(s.queue) == 0 {
			continue
		}
		n := s.cfg.B
		if n > len(s.queue) {
			n = len(s.queue)
		}
		// The batch owns a copy of its n requests so queue appends can
		// never alias its backing array; the queue just advances.
		b := &engine.Batch{Requests: append(make([]*engine.RequestState, 0, n), s.queue[:n]...)}
		s.queue = s.queue[n:]
		pipe.Start(b)
	}
}

// workloadCheck is the periodic monitor. Per §3.2 the optimizer "mainly
// works when the current serving capability is not compatible with α_t":
// reconfiguration triggers on overload (φ(C) below the observed rate) or on
// clear over-provisioning, never on burst noise.
func (s *Server) workloadCheck() {
	if s.pendingReconfig || s.migrating || s.cfg.IsZero() {
		return
	}
	alpha := s.alphaT()
	phiCur := s.rc.Phi(s.cfg)
	overload := phiCur < alpha*0.98
	overProvisioned := alpha > 0 && phiCur > alpha*2.5
	if !overload && !overProvisioned {
		return
	}
	prop := s.propose(s.usableGPUCount())
	s.manageFleet(prop)
	if prop.Config.IsZero() || prop.Config == s.cfg {
		return
	}
	if overProvisioned && prop.Config.GPUs() >= s.cfg.GPUs() {
		return // shrinking was the point
	}
	if prop.Config.GPUs() > s.usableGPUCount() {
		// Growth waits for instance acquisition (InstanceReady).
		return
	}
	s.beginReconfig(prop.Config, "workload", 0)
}

// beginReconfig starts a configuration update: pipelines run until their
// JIT budgets, then context migration executes. deadline > 0 carries the
// earliest preemption deadline driving the budget.
func (s *Server) beginReconfig(target config.Config, reason string, deadline float64) {
	s.epoch++
	s.pendingReconfig = true
	s.reconfigReason = reason
	s.stopBudget = map[int]float64{}

	now := s.sim.Now()
	budget := now
	if deadline > 0 && s.opts.Features.Arranger {
		// Estimate T_mig to size the JIT budget: plan against the target
		// now. Only the preemption path pays for the estimate — other
		// reconfiguration reasons never read it — and the mapping/plan it
		// computes seed the cache the real migration reuses after the
		// drain.
		tMig := s.estimateMigration(target)
		budget = s.arr.PreemptionBudget(deadline, tMig)
		if budget < now {
			budget = now
		}
	}
	anyBusy := false
	// Id order (pipeline ids are dense 0..D-1): interrupting a
	// fast-forward run reschedules its boundary event, and event
	// scheduling order must be deterministic.
	for id := 0; id < len(s.pipes); id++ {
		pipe := s.pipes[id]
		if !pipe.Busy() {
			continue
		}
		anyBusy = true
		s.stopBudget[id] = budget
		if !s.opts.Features.Arranger || budget <= now {
			pipe.RequestStop()
		} else {
			// The JIT arranger now needs to see every iteration boundary;
			// demote any in-flight fast-forward run to stepping.
			pipe.Interrupt()
		}
	}
	if !anyBusy {
		s.executeMigration(target)
	}
	// Failsafe: if pipelines have not stopped by the budget (an
	// iteration misestimate), force the boundary stop.
	if anyBusy && budget > now {
		epoch := s.epoch
		s.sim.At(budget, func() {
			if epoch != s.epoch || !s.pendingReconfig {
				return
			}
			s.stopAllPipelines()
		})
	}
}

// estimateMigration predicts the migration duration for a target config
// from the current contexts (used to size JIT budgets).
func (s *Server) estimateMigration(target config.Config) float64 {
	gpus := s.usableGPUs()
	if target.IsZero() || target.GPUs() > len(gpus) {
		return 0
	}
	devs := s.deviceContexts(gpus)
	mapping, err := s.rc.Map(devs, target, nil)
	if err != nil {
		return 0
	}
	all := s.deviceContexts(s.cloud.UsableGPUs())
	plan, err := s.rc.Plan(all, mapping, nil)
	if err != nil {
		return 0
	}
	return plan.Schedule(s.est, s.opts.Features.MigrationPlanner).Duration
}

// stopAllPipelines requests a boundary stop on every busy pipeline in
// deterministic order (stops may reschedule fast-forward boundary events).
func (s *Server) stopAllPipelines() {
	for id := 0; id < len(s.pipes); id++ {
		if pipe := s.pipes[id]; pipe.Busy() {
			pipe.RequestStop()
		}
	}
}

// pipelinesIdle reports whether every pipeline stopped decoding.
func (s *Server) pipelinesIdle() bool {
	//detlint:allow maprange — existential scan: Busy() is a pure read and the loop only answers whether any pipeline still decodes
	for _, pipe := range s.pipes {
		if pipe.Busy() {
			return false
		}
	}
	return true
}

// executeMigration performs the context migration to `target` (recomputed
// against the live fleet), resuming recovered batches afterwards.
func (s *Server) executeMigration(target config.Config) {
	s.pendingReconfig = false
	gpus := s.usableGPUs()
	gpuBudget := len(gpus)
	if target.IsZero() || target.GPUs() > gpuBudget {
		// The fleet shrank since the proposal; re-propose.
		prop := s.propose(gpuBudget)
		target = prop.Config
		if target.IsZero() || target.GPUs() > gpuBudget {
			// Nothing can serve; park everything in the queue.
			s.parkAllBatches()
			s.cfg = config.Zero
			s.pipes = map[int]*engine.Pipeline{}
			s.assign = map[config.Position]*cloud.GPU{}
			return
		}
	}

	// 1. Collect interrupted batches and decide which keep their cache
	//    (§3.3 discard rule + §4.1 reroute-vs-migrate).
	kept, inherit := s.collectBatches(target)

	// 2. Device mapping (KM) over surviving GPUs.
	devs := s.deviceContexts(gpus)
	mapping, err := s.rc.Map(devs, target, inherit)
	if err != nil {
		panic(fmt.Sprintf("core: executeMigration: %v", err))
	}

	// 3. Migration plan: sources include grace-period instances.
	all := s.deviceContexts(s.cloud.UsableGPUs())
	plan, err := s.rc.Plan(all, mapping, inherit)
	if err != nil {
		panic(fmt.Sprintf("core: planMigration: %v", err))
	}
	tl := plan.Schedule(s.est, s.opts.Features.MigrationPlanner)
	if plan.StorageBytes > 0 {
		s.stats.Reloads++
		// Cold shards pay the engine init alongside the load.
		grow := s.opts.CostParams.EngineInitTime
		for i := range tl.StageReady {
			tl.StageReady[i] += grow
		}
		tl.Duration += grow
	} else {
		s.stats.Migrations++
	}

	// 4. Install the new configuration with progressive stage readiness.
	now := s.sim.Now()
	ready := make([]float64, target.P)
	for p := range ready {
		ready[p] = now + tl.StageReady[p]
	}
	s.migrating = true
	s.applyMapping(target, mapping, ready, s.reconfigReason)

	// 5. Recovered batches resume once their cache has arrived.
	s.recovered = kept
	epoch := s.epoch
	s.sim.At(now+tl.CacheDone, func() {
		if epoch != s.epoch {
			return
		}
		s.migrating = false
		s.tryDispatch()
	})
}

// collectBatches drains paused/idle batches from the old pipelines,
// deciding which batches keep their KV cache. It returns the batches keyed
// by their new pipeline index and the inheritance map.
func (s *Server) collectBatches(target config.Config) (map[int]*engine.Batch, map[int]int) {
	paused := map[int]*engine.Batch{}
	progress := map[int]int{}
	// Pipeline ids are dense 0..D-1 (see stopAllPipelines); iterate in id
	// order so aborts — which mutate engine state — happen in a fixed
	// sequence rather than map order.
	for id := 0; id < len(s.pipes); id++ {
		pipe := s.pipes[id]
		var b *engine.Batch
		if pipe.Busy() {
			b = pipe.Abort() // only sub-iteration work is lost
		} else if rb, ok := s.recovered[id]; ok {
			b = rb
		}
		if b == nil || b.Size() == 0 {
			continue
		}
		paused[id] = b
		progress[id] = b.Progress()
	}
	s.recovered = map[int]*engine.Batch{}

	keepIDs := reconfig.KeepBatches(progress, target.D)
	keepSet := map[int]bool{}
	for _, id := range keepIDs {
		keepSet[id] = true
	}

	kept := map[int]*engine.Batch{}
	inherit := map[int]int{}
	newD := 0
	for _, oldD := range keepIDs {
		b := paused[oldD]
		// Reroute-vs-migrate: small progress is cheaper to recompute.
		cacheMig := s.est.TransferTime(cacheBytesOf(s.opts.Spec, b), true)
		if !s.arr.CacheWorthMigrating(s.cfg, max(b.Size(), 1), s.opts.SeqIn, b.MinCommitted(), cacheMig) {
			keepSet[oldD] = false
			continue
		}
		kept[newD] = b
		inherit[newD] = oldD
		s.stats.TokensRecovered += b.Progress()
		newD++
	}
	// Discarded batches restart from scratch at the queue front.
	var requeue []*engine.RequestState
	ids := make([]int, 0, len(paused))
	for id := range paused {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	for _, id := range ids {
		if keepSet[id] {
			continue
		}
		b := paused[id]
		s.stats.CacheGiveUps++
		for _, r := range b.Requests {
			if r.Done() {
				continue
			}
			r.Committed = 0
			r.Restarts++
			requeue = append(requeue, r)
		}
	}
	s.queue = append(requeue, s.queue...)
	return kept, inherit
}

// PipelineSlowdown returns the iteration-duration multiplier for a
// pipeline binding: 1/minSpeed over its GPUs. Homogeneous baseline fleets
// (speed 1 everywhere) return exactly 1. The baselines share it so mixed
// fleets slow every system equally.
func PipelineSlowdown(bind map[config.Position]*cloud.GPU) float64 {
	minSpeed := 1.0
	first := true
	//detlint:allow maprange — min-fold over pure reads: the minimum of a set is the same value under every visit order (float comparison is exact)
	for _, g := range bind {
		if sp := g.Inst.GPUSpeed(); first || sp < minSpeed {
			minSpeed = sp
			first = false
		}
	}
	if minSpeed == 1 || minSpeed <= 0 {
		return 1
	}
	return 1 / minSpeed
}

// cacheBytesOf is the full KV footprint of a batch.
func cacheBytesOf(spec model.Spec, b *engine.Batch) float64 {
	return float64(b.TotalTokens()) * spec.KVBytesPerToken()
}

// parkAllBatches aborts everything and requeues requests (no capacity).
func (s *Server) parkAllBatches() {
	var requeue []*engine.RequestState
	for id := 0; id < len(s.pipes); id++ {
		pipe := s.pipes[id]
		var b *engine.Batch
		if pipe.Busy() {
			b = pipe.Abort()
		} else if rb, ok := s.recovered[id]; ok {
			b = rb
		}
		if b == nil {
			continue
		}
		for _, r := range b.Requests {
			if !r.Done() {
				requeue = append(requeue, r)
			}
		}
	}
	s.recovered = map[int]*engine.Batch{}
	s.queue = append(requeue, s.queue...)
}

// --- cloud.Listener ----------------------------------------------------

// Install registers the server as the cloud's listener.
func (s *Server) Install() { s.cloud.SetListener((*cloudEvents)(s)) }

type cloudEvents Server

func (c *cloudEvents) InstanceReady(inst *cloud.Instance) {
	s := (*Server)(c)
	if s.pred != nil && s.sim.Now() > 0 {
		s.pred.ObserveAcquisition(s.sim.Now(), 1)
	}
	if s.stats.Latencies == nil {
		return // not serving yet
	}
	if s.cfg.IsZero() {
		if s.sim.Now() == 0 {
			// The very first fleet: contexts are pre-deployed.
			s.bootstrap()
			s.tryDispatch()
			return
		}
		// Capacity returning after a total outage: a real cold start —
		// the reconfiguration will load parameters from storage.
		prop := s.propose(s.usableGPUCount())
		if !prop.Config.IsZero() && prop.Config.GPUs() <= s.usableGPUCount() {
			s.beginReconfig(prop.Config, "recovery", 0)
		}
		return
	}
	// Acquisition path: join at readiness (§4.1) — reconfigure now.
	if s.pendingReconfig || s.migrating {
		return // will be folded into the in-flight reconfiguration
	}
	prop := s.propose(s.usableGPUCount())
	if prop.Config.IsZero() || prop.Config.GPUs() > s.usableGPUCount() {
		return
	}
	if prop.Config == s.cfg {
		return // pool instance; keep as candidate
	}
	s.beginReconfig(prop.Config, "acquisition", 0)
}

func (c *cloudEvents) PreemptionNotice(inst *cloud.Instance, deadline float64) {
	s := (*Server)(c)
	s.dying[inst.ID] = true
	if s.opts.Autoscaler != nil {
		// Only autoscaling policies read the notice log; without one the
		// append would accumulate for the whole run unread.
		s.noticeLog = append(s.noticeLog, s.sim.Now())
	}
	if s.pred != nil {
		s.pred.ObservePreemption(s.sim.Now(), 1)
	}
	if s.stats.Latencies == nil {
		return
	}
	if !s.instanceInUse(inst) {
		// A pool instance died; nothing to migrate.
		return
	}
	prop := s.propose(s.usableGPUCount())
	s.manageFleet(prop)
	target := prop.Config
	if target.GPUs() > s.usableGPUCount() {
		target = reconfig.FitToInstances(target, s.usableGPUCount())
	}
	s.beginReconfig(target, "preemption", deadline)
}

func (c *cloudEvents) InstanceTerminated(inst *cloud.Instance) {
	s := (*Server)(c)
	delete(s.dying, inst.ID)
	for _, g := range inst.GPUs {
		s.eng.DropDaemon(g.ID)
	}
	if s.stats.Latencies == nil {
		return
	}
	// If the instance was still in the mesh (migration did not happen in
	// time — overlapping interruptions, §4.2), the affected pipelines
	// crash: caches are lost and requests restart.
	if !s.instanceInUse(inst) {
		return
	}
	dead := map[int]bool{}
	for pos, g := range s.assign {
		if g.Inst.ID == inst.ID {
			dead[pos.D] = true
		}
	}
	var requeue []*engine.RequestState
	ids := make([]int, 0, len(dead))
	for d := range dead {
		ids = append(ids, d)
	}
	sort.Ints(ids)
	for _, d := range ids {
		pipe := s.pipes[d]
		if pipe == nil {
			continue
		}
		var b *engine.Batch
		if pipe.Busy() {
			b = pipe.Abort()
		} else if rb, ok := s.recovered[d]; ok {
			delete(s.recovered, d)
			b = rb
		}
		if b == nil {
			continue
		}
		s.stats.CacheGiveUps++
		for _, r := range b.Requests {
			if r.Done() {
				continue
			}
			r.Committed = 0
			r.Restarts++
			requeue = append(requeue, r)
		}
	}
	s.queue = append(requeue, s.queue...)
	// Rebuild on the survivors.
	prop := s.propose(s.usableGPUCount())
	target := reconfig.FitToInstances(prop.Config, s.usableGPUCount())
	s.epoch++
	s.pendingReconfig = true
	s.reconfigReason = "crash"
	s.stopAllPipelines()
	if s.pipelinesIdle() {
		s.executeMigration(target)
		s.tryDispatch()
	}
}

// --- engine.Hooks -------------------------------------------------------

type serverHooks Server

// AllowFastForward implements engine.FastForwarder: outside a pending
// reconfiguration IterationDone is a side-effect-free "continue", so the
// engine may batch iteration commits. beginReconfig interrupts in-flight
// runs when this promise expires.
func (h *serverHooks) AllowFastForward(p *engine.Pipeline) bool {
	return !(*Server)(h).pendingReconfig
}

func (h *serverHooks) IterationDone(p *engine.Pipeline) bool {
	s := (*Server)(h)
	if !s.pendingReconfig {
		return true
	}
	budget, ok := s.stopBudget[p.ID]
	if !ok || !s.opts.Features.Arranger {
		return false
	}
	b := p.Batch()
	return s.arr.MayContinue(s.sim.Now(), s.cfg, b.Size(), b.MaxSeqLen(), budget)
}

func (h *serverHooks) RequestDone(p *engine.Pipeline, r *engine.RequestState) {
	s := (*Server)(h)
	lat := r.DoneAt - r.Req.At
	s.stats.Completed++
	s.stats.Latencies.Add(lat)
	s.stats.PerRequest.Add(r.Req.At, lat)
	if s.wantSignals {
		// Only signal-consuming policies read the latency window; for
		// anything else the append would accumulate for the whole run
		// unread.
		s.latLog = append(s.latLog, metrics.Sample{At: r.DoneAt, Value: lat})
	}
}

func (h *serverHooks) BatchDone(p *engine.Pipeline) {
	s := (*Server)(h)
	if s.pendingReconfig {
		if s.pipelinesIdle() {
			s.executeMigration(s.pendingTarget())
			s.tryDispatch()
		}
		return
	}
	s.tryDispatch()
}

func (h *serverHooks) BatchPaused(p *engine.Pipeline, b *engine.Batch) {
	s := (*Server)(h)
	// Hold the batch for recovery under its old pipeline id.
	if b != nil && b.Size() > 0 {
		s.recovered[p.ID] = b
	}
	if s.pendingReconfig && s.pipelinesIdle() {
		s.executeMigration(s.pendingTarget())
		s.tryDispatch()
	}
}

// pendingTarget recomputes the reconfiguration target at migration time
// (the fleet may have changed while pipelines drained).
func (s *Server) pendingTarget() config.Config {
	prop := s.propose(s.usableGPUCount())
	return reconfig.FitToInstances(prop.Config, s.usableGPUCount())
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
