package core

import (
	"testing"

	"spotserve/internal/cloud"
	"spotserve/internal/config"
	"spotserve/internal/model"
	"spotserve/internal/reconfig"
	"spotserve/internal/sim"
)

// heteroCloud builds a provider whose spot launches interleave 4-GPU and
// 2-GPU instance types.
func heteroCloud(s *sim.Simulator) *cloud.Cloud {
	p := cloud.DefaultParams()
	p.Types = []cloud.InstanceType{
		{Name: "big", GPUs: 4, Speed: 1, MemScale: 1, SpotUSDPerHour: 1.9, OnDemandUSDPerHour: 3.9},
		{Name: "small", GPUs: 2, Speed: 1, MemScale: 1, SpotUSDPerHour: 1.0, OnDemandUSDPerHour: 2.0},
	}
	return cloud.New(s, p, nil)
}

// TestManageFleetGPUDenominated pins the heterogeneous fleet-sizing fix:
// growth is computed from the GPU deficit, not from instance counts that
// assume every instance carries GPUsPerInstance devices.
func TestManageFleetGPUDenominated(t *testing.T) {
	s := sim.New()
	cl := heteroCloud(s)
	opts := DefaultOptions(model.GPT20B)
	srv := NewServer(s, cl, opts)
	srv.Install()
	// 3 spot instances of the cycling types: 4+2+4 = 10 GPUs.
	cl.Prealloc(3, cloud.Spot)

	prop := reconfig.Proposal{
		Config:        config.Config{D: 1, P: 3, M: 4, B: 8}, // needs 12 GPUs
		WantInstances: 5,                                     // ceil(12/4)+2 — the instance-count view
		WantGPUs:      12 + 2*4,                              // config + reserve pool in devices
	}
	srv.opts.Features.AllowOnDemand = true
	srv.manageFleet(prop)
	// Deficit is 20−10 = 10 GPUs → 3 on-demand instances of the 4-GPU
	// primary type. The instance-count view would have allocated only
	// want−have = 2 (8 GPUs), leaving the proposal starved.
	if srv.stats.OnDemandAllocated != 3 {
		t.Fatalf("on-demand allocated = %d, want 3 (GPU-denominated deficit)", srv.stats.OnDemandAllocated)
	}
}

// TestManageFleetReleaseMatchesInstanceCounting pins the homogeneous
// equivalence of the GPU-denominated shrink path: surplus on-demand
// instances are freed exactly as the historical instance arithmetic did.
func TestManageFleetReleaseMatchesInstanceCounting(t *testing.T) {
	s := sim.New()
	cl := cloud.New(s, cloud.DefaultParams(), nil)
	opts := DefaultOptions(model.GPT20B)
	srv := NewServer(s, cl, opts)
	srv.Install()
	cl.Prealloc(2, cloud.Spot)
	cl.Prealloc(4, cloud.OnDemand) // 6 instances, 24 GPUs total
	prop := reconfig.Proposal{
		Config:        config.Config{D: 1, P: 3, M: 4, B: 8},
		WantInstances: 4,        // ceil(12/4)+1
		WantGPUs:      12 + 1*4, // 16 GPUs
	}
	srv.manageFleet(prop)
	spot, od := cl.AliveCount()
	if spot != 2 || od != 2 {
		t.Fatalf("fleet after shrink = %d spot + %d on-demand, want 2+2 (release 6−4 surplus)", spot, od)
	}
}

// TestAutoscalerConsulted pins the policy hook: a configured autoscaler
// replaces the proposal's fixed target, observes the queue, and its answer
// is clamped to provider capacity.
func TestAutoscalerConsulted(t *testing.T) {
	s := sim.New()
	cl := cloud.New(s, cloud.DefaultParams(), nil)
	opts := DefaultOptions(model.GPT20B)
	var seen []cloud.FleetView
	opts.Autoscaler = fnAutoscaler(func(v cloud.FleetView) int {
		seen = append(seen, v)
		return v.Want + 1000 // absurd: must be clamped to MaxInstances
	})
	srv := NewServer(s, cl, opts)
	srv.Install()
	srv.opts.Features.AllowOnDemand = true
	cl.Prealloc(2, cloud.Spot)

	prop := reconfig.Proposal{Config: config.Config{D: 1, P: 3, M: 4, B: 8}, WantInstances: 5, WantGPUs: 20}
	srv.manageFleet(prop)
	if len(seen) != 1 {
		t.Fatalf("autoscaler consulted %d times, want 1", len(seen))
	}
	if seen[0].Want != 5 || seen[0].SpotRunning != 2 {
		t.Errorf("FleetView = %+v, want Want=5 SpotRunning=2", seen[0])
	}
	// Clamp: MaxInstances(12) − have(2) = 10 allocations, not 1000+.
	if srv.stats.OnDemandAllocated != 10 {
		t.Errorf("on-demand allocated = %d, want 10 (clamped to MaxInstances)", srv.stats.OnDemandAllocated)
	}
}

// fnAutoscaler adapts a function to cloud.Autoscaler for tests.
type fnAutoscaler func(cloud.FleetView) int

func (fnAutoscaler) Name() string                   { return "test" }
func (f fnAutoscaler) Target(v cloud.FleetView) int { return f(v) }
