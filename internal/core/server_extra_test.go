package core

import (
	"testing"

	"spotserve/internal/cloud"
	"spotserve/internal/model"
	"spotserve/internal/sim"
	"spotserve/internal/trace"
	"spotserve/internal/workload"
)

// runWith builds a stack with fully custom options.
func runWith(t *testing.T, tr trace.Trace, opts Options, rate float64, seed int64) Stats {
	t.Helper()
	s := sim.New()
	cp := cloud.DefaultParams()
	cp.Seed = seed
	cl := cloud.New(s, cp, nil)
	opts.BaseRate = rate
	srv := NewServer(s, cl, opts)
	srv.Install()
	if err := cl.ReplayTrace(tr); err != nil {
		t.Fatal(err)
	}
	reqs, err := workload.Generate(workload.Options{
		Horizon: tr.Horizon, Rate: workload.ConstantRate(rate), CV: 6,
		SeqIn: opts.SeqIn, SeqOut: opts.SeqOut, Seed: seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	srv.LoadWorkload(reqs, tr.Horizon)
	s.Run(tr.Horizon + 600)
	return srv.Stats()
}

func TestAdaptivePoolAllocatesUnderChurn(t *testing.T) {
	// Under a churny trace with on-demand mixing, the adaptive pool
	// should provision at least as many on-demand instances as the
	// fixed pool — it anticipates preemptions.
	churny := trace.BS()
	base := DefaultOptions(model.GPT20B)
	base.Features.AllowOnDemand = true
	fixed := runWith(t, churny, base, 0.35, 21)

	adaptive := DefaultOptions(model.GPT20B)
	adaptive.Features.AllowOnDemand = true
	adaptive.Features.AdaptivePool = true
	ad := runWith(t, churny, adaptive, 0.35, 21)

	if ad.OnDemandAllocated < fixed.OnDemandAllocated {
		t.Fatalf("adaptive pool allocated %d on-demand, fixed %d",
			ad.OnDemandAllocated, fixed.OnDemandAllocated)
	}
	if ad.Completed < ad.Submitted*9/10 {
		t.Fatalf("adaptive run completed only %d of %d", ad.Completed, ad.Submitted)
	}
}

func TestSLOObjectiveServesCheaper(t *testing.T) {
	// A generous SLO lets the optimizer pick smaller fleets, lowering
	// monetary cost versus pure latency minimization, while staying
	// functional.
	tr := steadyTrace(10, 900)
	latOpt := DefaultOptions(model.GPT20B)
	lat := runWith(t, tr, latOpt, 0.35, 22)

	sloOpt := DefaultOptions(model.GPT20B)
	sloOpt.SLOLatency = 120
	slo := runWith(t, tr, sloOpt, 0.35, 22)

	if slo.Completed < slo.Submitted*9/10 {
		t.Fatalf("SLO run completed only %d of %d", slo.Completed, slo.Submitted)
	}
	t.Logf("latency-objective cost=%.2f avg=%.1f; SLO cost=%.2f avg=%.1f",
		lat.CostUSD, lat.Latency.Avg, slo.CostUSD, slo.Latency.Avg)
	// On a steady all-spot trace cost is fleet-driven; the SLO objective
	// must not be more expensive.
	if slo.CostUSD > lat.CostUSD*1.05 {
		t.Fatalf("SLO objective cost %.2f above latency objective %.2f", slo.CostUSD, lat.CostUSD)
	}
}

func TestShrinkDiscardsLeastProgressedBatches(t *testing.T) {
	// Capacity collapse from 8 to 3 instances on OPT-6.7B: the new
	// configuration serves fewer concurrent requests, so some batches
	// must be discarded (cache give-ups) — and the system must still
	// finish everything.
	tr := trace.Trace{Name: "shrink", Horizon: 700, Events: []trace.Event{
		{At: 0, Count: 8}, {At: 200, Count: 3},
	}}
	st := runScenario(t, model.OPT6B7, tr, 1.2, AllFeatures(), 23)
	if st.Completed != st.Submitted {
		t.Fatalf("completed %d of %d after shrink", st.Completed, st.Submitted)
	}
	if st.Migrations == 0 {
		t.Fatal("no migration on shrink")
	}
}

func TestCandidatePoolInstanceNoticeIsCheap(t *testing.T) {
	// Preempting a pool instance (not in the mesh) must not force a
	// migration: the trace offers 12 instances, the workload needs few,
	// and one surplus instance dies.
	s := sim.New()
	cl := cloud.New(s, cloud.DefaultParams(), nil)
	opts := DefaultOptions(model.OPT6B7)
	opts.BaseRate = 0.2
	srv := NewServer(s, cl, opts)
	srv.Install()
	tr := trace.Trace{Name: "pool", Horizon: 600, Events: []trace.Event{
		{At: 0, Count: 12}, {At: 300, Count: 11},
	}}
	if err := cl.ReplayTrace(tr); err != nil {
		t.Fatal(err)
	}
	reqs, _ := workload.Generate(workload.Options{
		Horizon: 600, Rate: workload.ConstantRate(0.2), CV: 1,
		SeqIn: 512, SeqOut: 128, Seed: 24,
	})
	srv.LoadWorkload(reqs, 600)
	s.Run(250)
	migBefore := srv.Stats().Migrations
	cfgBefore := srv.Config()
	s.Run(1200)
	st := srv.Stats()
	if st.Completed != st.Submitted {
		t.Fatalf("completed %d of %d", st.Completed, st.Submitted)
	}
	// The mesh uses at most a few instances; whether the dying instance
	// was in the mesh depends on the cloud's random pick, but with 12
	// instances and a small mesh the usual case is a free pool kill. We
	// assert the cheap path when the config did not change.
	if srv.Config() == cfgBefore && st.Migrations > migBefore+1 {
		t.Fatalf("pool preemption caused %d extra migrations", st.Migrations-migBefore)
	}
}

func TestHierarchicalMapperInServer(t *testing.T) {
	// Hierarchical two-step matching enabled (default) vs disabled: both
	// must work end to end on a preemption trace; results may differ but
	// completion must hold.
	flat := AllFeatures()
	flat.Hierarchical = false
	a := runScenario(t, model.GPT20B, trace.AS(), 0.35, AllFeatures(), 25)
	b := runScenario(t, model.GPT20B, trace.AS(), 0.35, flat, 25)
	for i, st := range []Stats{a, b} {
		if st.Completed < st.Submitted*9/10 {
			t.Fatalf("variant %d completed %d of %d", i, st.Completed, st.Submitted)
		}
	}
}

func TestZeroArrivalRun(t *testing.T) {
	// No requests at all: the system idles gracefully and bills spot
	// time only.
	s := sim.New()
	cl := cloud.New(s, cloud.DefaultParams(), nil)
	opts := DefaultOptions(model.OPT6B7)
	opts.BaseRate = 0.1
	srv := NewServer(s, cl, opts)
	srv.Install()
	if err := cl.ReplayTrace(steadyTrace(4, 300)); err != nil {
		t.Fatal(err)
	}
	srv.LoadWorkload(nil, 300)
	s.Run(400)
	st := srv.Stats()
	if st.Completed != 0 || st.Submitted != 0 {
		t.Fatalf("phantom requests: %+v", st)
	}
	if st.CostUSD <= 0 {
		t.Fatal("idle fleet accrued no cost")
	}
}

func TestStatsSnapshotIndependent(t *testing.T) {
	st := runScenario(t, model.OPT6B7, steadyTrace(4, 300), 0.5, AllFeatures(), 26)
	if st.Latency.Avg <= 0 || st.Latencies == nil {
		t.Fatal("stats missing")
	}
	// Summary matches the recorder.
	if st.Latency.P99 != st.Latencies.Percentile(99) {
		t.Fatal("summary and recorder disagree")
	}
}

func TestConfigLogReasonsAreMeaningful(t *testing.T) {
	st := runScenario(t, model.GPT20B, trace.BS(), 0.35, AllFeatures(), 27)
	seen := map[string]bool{}
	for _, c := range st.ConfigLog {
		seen[c.Reason] = true
		if err := c.Config.Validate(); err != nil {
			t.Fatalf("invalid config in log: %v", err)
		}
	}
	if !seen["bootstrap"] {
		t.Fatal("no bootstrap entry")
	}
	if !seen["preemption"] {
		t.Fatal("no preemption entry on trace BS")
	}
}

func TestFitToInstancesUsedWhenControllerOff(t *testing.T) {
	f := AllFeatures()
	f.Controller = false
	st := runScenario(t, model.GPT20B, trace.AS(), 0.35, f, 28)
	// Shape must stay constant: only D changes across the log.
	var p0, m0 int
	for i, c := range st.ConfigLog {
		if i == 0 {
			p0, m0 = c.Config.P, c.Config.M
			continue
		}
		if c.Config.P != p0 || c.Config.M != m0 {
			t.Fatalf("shape changed with controller off: %v", st.ConfigLog)
		}
	}
	if len(st.ConfigLog) < 2 {
		t.Fatal("expected D adjustments in the log")
	}
}
