package cost

import (
	"fmt"
	"sort"
	"strings"

	"spotserve/internal/config"
)

// ProfileEntry is one row of the offline profile: the measured quantities
// for one (P, M, B) shape. The paper's implementation (§5) profiles these
// offline so that the online optimizer's decisions take well under a
// second; this emulates that table.
type ProfileEntry struct {
	P, M, B int
	// ExecLatency is l_exe(S_out | S_in) at the default sequence lengths.
	ExecLatency float64
	// InitLatency is the initial-phase latency.
	InitLatency float64
	// IterLatency is the steady per-token decode latency (at mid
	// sequence length).
	IterLatency float64
	// ThroughputPerPipeline is B / ExecLatency.
	ThroughputPerPipeline float64
	// PerGPUMemBytes is the peak per-GPU footprint (memopt buffer).
	PerGPUMemBytes float64
	// Feasible is the memory verdict at the default KV budget.
	Feasible bool
}

// Profile is the full offline table for one model.
type Profile struct {
	Model   string
	SeqIn   int
	SeqOut  int
	Entries []ProfileEntry
}

// BuildProfile enumerates every shape in the limits and evaluates the cost
// model — the offline profiling pass run once per model.
func (e *Estimator) BuildProfile(l config.Limits, seqIn, seqOut int) Profile {
	p := Profile{Model: e.Spec.Name, SeqIn: seqIn, SeqOut: seqOut}
	maxTokens := seqIn + seqOut
	for _, s := range l.EnumerateShapes(e.Spec.Layers, e.Spec.Heads) {
		for _, b := range l.Bs {
			c := config.Config{D: 1, P: s.P, M: s.M, B: b}
			exec := e.Exec(s.P, s.M, b, seqIn, seqOut)
			entry := ProfileEntry{
				P: s.P, M: s.M, B: b,
				ExecLatency:           exec,
				InitLatency:           e.InitPhase(s.P, s.M, b, seqIn),
				IterLatency:           e.DecodeIter(s.P, s.M, b, seqIn+seqOut/2),
				ThroughputPerPipeline: float64(b) / exec,
				PerGPUMemBytes:        e.PerGPUMemBytes(s.P, s.M, b, maxTokens, false),
				Feasible:              e.Feasible(c, maxTokens, false),
			}
			p.Entries = append(p.Entries, entry)
		}
	}
	sort.Slice(p.Entries, func(i, j int) bool {
		a, b := p.Entries[i], p.Entries[j]
		if a.P != b.P {
			return a.P < b.P
		}
		if a.M != b.M {
			return a.M < b.M
		}
		return a.B < b.B
	})
	return p
}

// Lookup finds the entry for a shape, if profiled.
func (p Profile) Lookup(P, M, B int) (ProfileEntry, bool) {
	for _, e := range p.Entries {
		if e.P == P && e.M == M && e.B == B {
			return e, true
		}
	}
	return ProfileEntry{}, false
}

// FeasibleCount returns how many profiled shapes fit in memory.
func (p Profile) FeasibleCount() int {
	n := 0
	for _, e := range p.Entries {
		if e.Feasible {
			n++
		}
	}
	return n
}

// String renders the profile as a table.
func (p Profile) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "offline profile: %s (S_in=%d, S_out=%d)\n", p.Model, p.SeqIn, p.SeqOut)
	fmt.Fprintf(&b, "%4s %4s %4s %10s %10s %10s %12s %10s %5s\n",
		"P", "M", "B", "l_exe", "l_init", "l_iter", "phi/pipe", "GB/GPU", "fits")
	for _, e := range p.Entries {
		fmt.Fprintf(&b, "%4d %4d %4d %9.3fs %9.3fs %9.4fs %9.3f/s %10.2f %5v\n",
			e.P, e.M, e.B, e.ExecLatency, e.InitLatency, e.IterLatency,
			e.ThroughputPerPipeline, e.PerGPUMemBytes/1e9, e.Feasible)
	}
	return b.String()
}
