package cost

import (
	"strings"
	"testing"

	"spotserve/internal/config"
	"spotserve/internal/model"
)

func TestBuildProfileCoversShapes(t *testing.T) {
	e := est(t, model.GPT20B)
	p := e.BuildProfile(config.DefaultLimits(), DefaultSeqIn, DefaultSeqOut)
	if p.Model != "GPT-20B" {
		t.Fatalf("model = %s", p.Model)
	}
	// Shapes × batch sizes: every (P|48, M∈{1,2,4,8}, B∈{1,2,4,8}).
	shapes := config.DefaultLimits().EnumerateShapes(48, 48)
	want := len(shapes) * 4
	if len(p.Entries) != want {
		t.Fatalf("entries = %d, want %d", len(p.Entries), want)
	}
	// Table-1 shape is present and feasible.
	entry, ok := p.Lookup(3, 4, 1)
	if !ok || !entry.Feasible {
		t.Fatalf("(3,4,1) entry: %+v ok=%v", entry, ok)
	}
	if entry.ExecLatency < 14 || entry.ExecLatency > 18 {
		t.Fatalf("profiled l_exe = %v", entry.ExecLatency)
	}
	if _, ok := p.Lookup(5, 4, 1); ok {
		t.Fatal("non-dividing P profiled")
	}
}

func TestProfileConsistentWithEstimator(t *testing.T) {
	e := est(t, model.OPT6B7)
	p := e.BuildProfile(config.DefaultLimits(), DefaultSeqIn, DefaultSeqOut)
	for _, entry := range p.Entries {
		want := e.Exec(entry.P, entry.M, entry.B, DefaultSeqIn, DefaultSeqOut)
		if entry.ExecLatency != want {
			t.Fatalf("(%d,%d,%d): profile %v != estimator %v",
				entry.P, entry.M, entry.B, entry.ExecLatency, want)
		}
		if entry.ThroughputPerPipeline <= 0 {
			t.Fatalf("non-positive throughput in %+v", entry)
		}
	}
}

func TestProfileFeasibleCountMatchesMemoryModel(t *testing.T) {
	for _, spec := range model.All() {
		e := est(t, spec)
		p := e.BuildProfile(config.DefaultLimits(), DefaultSeqIn, DefaultSeqOut)
		n := 0
		for _, entry := range p.Entries {
			c := config.Config{D: 1, P: entry.P, M: entry.M, B: entry.B}
			if e.Feasible(c, DefaultMaxTokens, false) {
				n++
			}
		}
		if p.FeasibleCount() != n {
			t.Errorf("%s: FeasibleCount %d != recount %d", spec.Name, p.FeasibleCount(), n)
		}
		if n == 0 {
			t.Errorf("%s: no feasible shapes at all", spec.Name)
		}
	}
}

func TestProfileString(t *testing.T) {
	e := est(t, model.OPT6B7)
	p := e.BuildProfile(config.DefaultLimits(), 512, 128)
	s := p.String()
	if !strings.Contains(s, "OPT-6.7B") || !strings.Contains(s, "l_exe") {
		t.Fatalf("render missing headers:\n%s", s)
	}
	if len(strings.Split(s, "\n")) < len(p.Entries) {
		t.Fatal("render shorter than entry count")
	}
}

func TestProfileSortedDeterministic(t *testing.T) {
	e := est(t, model.LLaMA30B)
	a := e.BuildProfile(config.DefaultLimits(), 512, 128)
	b := e.BuildProfile(config.DefaultLimits(), 512, 128)
	for i := range a.Entries {
		if a.Entries[i] != b.Entries[i] {
			t.Fatal("profile not deterministic")
		}
		if i > 0 {
			prev, cur := a.Entries[i-1], a.Entries[i]
			if cur.P < prev.P {
				t.Fatal("entries not sorted by P")
			}
		}
	}
}
