// Package cost is the analytical cost model standing in for the paper's
// offline profiler (§5). It estimates, for any model and parallel
// configuration: per-iteration decode latency, initial-phase latency,
// end-to-end execution latency l_exe, serving throughput φ(C), per-GPU
// memory footprints, context-migration transfer time, and full-restart
// (parameter reload) time.
//
// The constants in DefaultParams are calibrated so that l_exe(B=1) for the
// three paper models at their Table-1 configurations lands within tolerance
// of the published numbers, and so that the memory model reproduces the
// Table-1 minimum GPU counts (and the §6.2 ablation claim that the
// memory-optimized migration planner lowers GPT-20B's minimum from 16 to 12
// GPUs). Like the paper's profiler, the model deliberately penalizes
// resource under-utilization: small batches, over-sharded intra-op
// parallelism, and small communication volumes.
package cost

import (
	"fmt"
	"sync"

	"spotserve/internal/config"
	"spotserve/internal/model"
)

// Params holds the hardware and calibration constants of the simulated
// testbed (AWS g4dn.12xlarge: 4× NVIDIA T4 per instance).
type Params struct {
	// GPUsPerInstance is the number of GPUs per cloud instance.
	GPUsPerInstance int

	// GPUMemBytes is the physical device memory (T4: 16 GB).
	GPUMemBytes float64
	// UsableGPUMemBytes is what the serving runtime may occupy with
	// parameters, KV cache, activations and migration buffers after the
	// CUDA context and allocator overheads are paid.
	UsableGPUMemBytes float64
	// ActivationBytes is the per-GPU activation/workspace reservation.
	ActivationBytes float64
	// BufMaxBytes is U_max: the migration-buffer cap enforced by the
	// memory-optimized migration planner (Algorithm 2).
	BufMaxBytes float64

	// MemBWBytes is device memory bandwidth (T4: 320 GB/s); decode
	// iterations are bandwidth-bound.
	MemBWBytes float64
	// MemBWEff derates achievable bandwidth (kernel efficiency).
	MemBWEff float64
	// ShardPenalty models over-sharded intra-op parallelism: effective
	// bandwidth is scaled by 1/(1+ShardPenalty×(M−1)).
	ShardPenalty float64
	// BatchPenalty inflates per-iteration time by (1+BatchPenalty×(B−1)):
	// larger batches read more activations/KV and use less efficient
	// kernels on T4-class GPUs.
	BatchPenalty float64

	// FlopsFP16 is peak tensor throughput (T4: 65 TFLOPS) and ComputeEff
	// its achievable fraction; the initial phase is compute-bound.
	FlopsFP16  float64
	ComputeEff float64

	// KernelOverhead is fixed per-layer per-iteration launch overhead.
	KernelOverhead float64

	// IntraBWBytes / InterBWBytes are per-link bandwidths inside an
	// instance (PCIe/NVLink) and across instances (50 Gbit/s network).
	IntraBWBytes float64
	InterBWBytes float64
	// AlphaIntra / AlphaInter are per-message latencies.
	AlphaIntra float64
	AlphaInter float64

	// StorageBWPerGPU is the per-GPU bandwidth when (re)loading
	// parameters from persistent/cloud storage.
	StorageBWPerGPU float64
	// EngineInitTime is the fixed cost of launching and initializing a
	// distributed inference engine process group.
	EngineInitTime float64

	// GracePeriod is the cloud's preemption grace period (30 s on AWS).
	GracePeriod float64
	// AcquireDelay is the time from requesting a fresh instance to the
	// instance being ready to initialize ("2 minutes for launching and
	// initializing in our evaluations", §3.2).
	AcquireDelay float64
}

// DefaultParams returns the calibrated g4dn.12xlarge/T4 testbed constants.
func DefaultParams() Params {
	return Params{
		GPUsPerInstance: 4,

		GPUMemBytes:       16.0 * model.GB,
		UsableGPUMemBytes: 11.5 * model.GB,
		ActivationBytes:   1.5 * model.GB,
		BufMaxBytes:       1.0 * model.GB,

		MemBWBytes:   320.0 * model.GB,
		MemBWEff:     0.62,
		ShardPenalty: 0.08,
		BatchPenalty: 0.12,

		FlopsFP16:  65e12,
		ComputeEff: 0.35,

		KernelOverhead: 50e-6,

		IntraBWBytes: 30.0 * model.GB,
		InterBWBytes: 6.0 * model.GB,
		AlphaIntra:   30e-6,
		AlphaInter:   180e-6,

		StorageBWPerGPU: 0.4 * model.GB,
		EngineInitTime:  30.0,

		GracePeriod:  30.0,
		AcquireDelay: 120.0,
	}
}

// Validate checks the parameters are physically sensible.
func (p Params) Validate() error {
	if p.GPUsPerInstance <= 0 {
		return fmt.Errorf("cost: GPUsPerInstance = %d", p.GPUsPerInstance)
	}
	// A slice, not a map: with several invalid fields the error must name
	// the same one on every run (map order would pick one at random).
	for _, f := range []struct {
		name string
		v    float64
	}{
		{"GPUMemBytes", p.GPUMemBytes}, {"UsableGPUMemBytes", p.UsableGPUMemBytes},
		{"MemBWBytes", p.MemBWBytes}, {"MemBWEff", p.MemBWEff},
		{"FlopsFP16", p.FlopsFP16}, {"ComputeEff", p.ComputeEff},
		{"IntraBWBytes", p.IntraBWBytes}, {"InterBWBytes", p.InterBWBytes},
		{"StorageBWPerGPU", p.StorageBWPerGPU},
	} {
		name, v := f.name, f.v
		if v <= 0 {
			return fmt.Errorf("cost: %s = %v must be positive", name, v)
		}
	}
	if p.UsableGPUMemBytes > p.GPUMemBytes {
		return fmt.Errorf("cost: usable memory %v exceeds physical %v", p.UsableGPUMemBytes, p.GPUMemBytes)
	}
	return nil
}

// Estimator evaluates the cost model for one model spec.
type Estimator struct {
	Params Params
	Spec   model.Spec

	// memo caches the pure hot-path quantities (per-iteration decode
	// latency and the cumulative execution-latency tables behind Exec /
	// ExecPartial). It is nil for Estimators built as struct literals, in
	// which case every call recomputes from scratch.
	memo *estMemo
}

// estMemo holds the memoized cost tables. All tables store values produced
// by exactly the same floating-point operation sequence as the unmemoized
// paths, so memoized and fresh Estimators are bit-identical — the golden
// fingerprint tests depend on this.
type estMemo struct {
	mu     sync.Mutex
	decode map[shapeKey][]float64 // (P,M,B) → DecodeIter indexed by curLen (0 = unfilled)
	exec   map[execKey]*execTable
	// feasible caches FeasibleShapesScaled results (the shape table
	// Algorithm 1 re-enumerates on every fleet event). Values are shared
	// read-only slices.
	feasible map[feasKey][]config.Config
}

// feasKey identifies one feasibility enumeration.
type feasKey struct {
	limits   string
	b        int
	tokens   int
	naive    bool
	memScale float64
}

// limitsFingerprint canonically encodes a Limits value for memo keying.
func limitsFingerprint(l config.Limits) string {
	return fmt.Sprintf("%d|%v|%v", l.MaxP, l.Ms, l.Bs)
}

// shapeKey identifies a (P, M, B) execution shape.
type shapeKey struct{ p, m, b int }

// execKey identifies a (P, M, B, S_in) execution-latency table.
type execKey struct{ p, m, b, sin int }

// execTable holds the two cumulative latency recurrences for one
// (P, M, B, S_in):
//
//	cum[k]     = Exec(k):        cum[0] = InitPhase, cum[k] = cum[k-1] + DecodeIter(sin+k)
//	partial[k] = ExecPartial(0,k): partial[0] = 0,   partial[k] = partial[k-1] + DecodeIter(sin+k)
//
// Both are exactly the accumulation order of the original O(S_out) loops,
// so lookups reproduce the loop results bit for bit while answering any
// sout / to in O(1) after the first fill.
type execTable struct {
	cum     []float64
	partial []float64
}

// NewEstimator builds an estimator; it panics on invalid inputs because
// estimators are constructed from static configuration at startup.
func NewEstimator(p Params, spec model.Spec) *Estimator {
	if err := p.Validate(); err != nil {
		panic(err)
	}
	if err := spec.Validate(); err != nil {
		panic(err)
	}
	return &Estimator{Params: p, Spec: spec, memo: &estMemo{
		decode:   make(map[shapeKey][]float64),
		exec:     make(map[execKey]*execTable),
		feasible: make(map[feasKey][]config.Config),
	}}
}

// shared caches estimators per (Params, Spec). The cost model stands in
// for the paper's *offline* profiler (§5): its tables depend only on the
// hardware constants and the model, so every serving run over the same
// testbed shares one instance instead of re-deriving the profile.
// Estimators are concurrency-safe (the memo is mutex-guarded) and
// memoized values are bit-identical to fresh computation, so sharing
// never changes results — it only removes repeated table fills across
// runs and sweep cells.
var (
	sharedMu  sync.Mutex
	sharedEst = map[sharedKey]*Estimator{}
)

type sharedKey struct {
	p    Params
	spec model.Spec
}

// Shared returns the process-wide estimator for (p, spec) — the offline
// profile every serving run over the same testbed reuses.
func Shared(p Params, spec model.Spec) *Estimator {
	sharedMu.Lock()
	defer sharedMu.Unlock()
	key := sharedKey{p: p, spec: spec}
	if e, ok := sharedEst[key]; ok {
		return e
	}
	e := NewEstimator(p, spec)
	sharedEst[key] = e
	return e
}

// NumParams converts the Table-1 serialized size (fp32) to a parameter
// count for FLOP estimation.
func (e *Estimator) NumParams() float64 { return e.Spec.ParamBytes / 4 }

// StageParamBytesPerGPU returns the parameter bytes resident on one GPU for
// shape (P, M), using the largest stage.
func (e *Estimator) StageParamBytesPerGPU(P, M int) float64 {
	layers := model.MaxStageLayers(e.Spec.Layers, P)
	return float64(layers) * e.Spec.LayerParamBytes() / float64(M)
}

// effMemBW is the achievable per-GPU memory bandwidth at tensor degree M.
func (e *Estimator) effMemBW(M int) float64 {
	p := e.Params
	return p.MemBWBytes * p.MemBWEff / (1 + p.ShardPenalty*float64(M-1))
}

// linkFor returns (alpha, bandwidth) for a communicator spanning M ranks:
// intra-instance when the group fits in one instance, otherwise the
// inter-instance network dominates.
func (e *Estimator) linkFor(M int) (alpha, bw float64) {
	if M <= e.Params.GPUsPerInstance {
		return e.Params.AlphaIntra, e.Params.IntraBWBytes
	}
	return e.Params.AlphaInter, e.Params.InterBWBytes
}

// allReduceTime estimates a ring all-reduce of msgBytes across M ranks.
func (e *Estimator) allReduceTime(M int, msgBytes float64) float64 {
	if M <= 1 {
		return 0
	}
	alpha, bw := e.linkFor(M)
	return alpha + 2*float64(M-1)/float64(M)*msgBytes/bw
}

// p2pTime estimates a point-to-point activation transfer between stages.
func (e *Estimator) p2pTime(msgBytes float64) float64 {
	return e.Params.AlphaInter + msgBytes/e.Params.InterBWBytes
}

// DecodeIter returns the latency of one incremental decoding iteration
// (generate one token for each of B requests) at sequence length curLen.
// The iteration flows through all P stages sequentially; each stage is
// memory-bandwidth-bound reading its parameter shard plus the KV cache.
// Calls are memoized per (P, M, B, curLen), so the simulator's fast-forward
// loop and Algorithm 1's enumeration pay the full model exactly once per
// distinct point.
func (e *Estimator) DecodeIter(P, M, B, curLen int) float64 {
	if e.memo == nil {
		return e.decodeIterRaw(P, M, B, curLen)
	}
	e.memo.mu.Lock()
	v := e.decodeLocked(P, M, B, curLen)
	e.memo.mu.Unlock()
	return v
}

// decodeLocked reads (filling on miss) the memoized DecodeIter value.
// Caller holds memo.mu. DecodeIter is strictly positive, so 0 marks
// unfilled slots.
func (e *Estimator) decodeLocked(P, M, B, curLen int) float64 {
	key := shapeKey{P, M, B}
	tab := e.memo.decode[key]
	if curLen < len(tab) && tab[curLen] != 0 {
		return tab[curLen]
	}
	v := e.decodeIterRaw(P, M, B, curLen)
	if curLen >= len(tab) {
		if curLen < cap(tab) {
			tab = tab[:curLen+1]
		} else {
			grown := make([]float64, curLen+1, 2*curLen+16)
			copy(grown, tab)
			tab = grown
		}
		e.memo.decode[key] = tab
	}
	tab[curLen] = v
	return v
}

// DecodeRange returns a read-only slice s with s[i] = DecodeIter(P, M, B,
// lo+i) for lo+i ≤ hi — the bulk form the engine's fast-forward loop uses
// to price a whole run of iterations under one lock acquisition instead of
// one per token. Values are the same memoized entries DecodeIter returns;
// callers must not mutate the slice.
func (e *Estimator) DecodeRange(P, M, B, lo, hi int) []float64 {
	if e.memo == nil {
		out := make([]float64, hi-lo+1)
		for i := range out {
			out[i] = e.decodeIterRaw(P, M, B, lo+i)
		}
		return out
	}
	e.memo.mu.Lock()
	key := shapeKey{P, M, B}
	tab := e.memo.decode[key]
	if hi >= len(tab) {
		if hi < cap(tab) {
			tab = tab[:hi+1]
		} else {
			grown := make([]float64, hi+1, 2*hi+16)
			copy(grown, tab)
			tab = grown
		}
		e.memo.decode[key] = tab
	}
	for l := lo; l <= hi; l++ {
		if tab[l] == 0 {
			tab[l] = e.decodeIterRaw(P, M, B, l)
		}
	}
	out := tab[lo : hi+1 : hi+1]
	e.memo.mu.Unlock()
	return out
}

// decodeIterRaw is the closed-form model behind DecodeIter.
func (e *Estimator) decodeIterRaw(P, M, B, curLen int) float64 {
	p := e.Params
	stageLayers := model.MaxStageLayers(e.Spec.Layers, P)
	bw := e.effMemBW(M)

	paramRead := e.StageParamBytesPerGPU(P, M) / bw
	kvRead := float64(B) * float64(curLen) * e.Spec.KVBytesPerTokenLayer() *
		float64(stageLayers) / float64(M) / bw
	stageTime := (paramRead + kvRead) * (1 + p.BatchPenalty*float64(B-1))
	stageTime += float64(stageLayers) * p.KernelOverhead

	// Two all-reduces per transformer layer (attention out-proj and FFN
	// down-proj) when tensor-parallel.
	msg := float64(B) * float64(e.Spec.Hidden) * model.BytesPerValue
	ar := 2 * float64(e.Spec.Layers) * e.allReduceTime(M, msg)

	p2p := float64(P-1) * e.p2pTime(msg)

	return float64(P)*stageTime + ar + p2p
}

// InitPhase returns the latency of the initial phase: all S_in input tokens
// of each of B requests processed in parallel (compute-bound).
func (e *Estimator) InitPhase(P, M, B, sin int) float64 {
	p := e.Params
	gpus := float64(P * M)
	flops := 2 * e.NumParams() * float64(sin) * float64(B)
	compute := flops / (gpus * p.FlopsFP16 * p.ComputeEff)

	msg := float64(B) * float64(sin) * float64(e.Spec.Hidden) * model.BytesPerValue
	ar := 2 * float64(e.Spec.Layers) * e.allReduceTime(M, msg)
	p2p := float64(P-1) * e.p2pTime(msg)
	kernels := float64(model.MaxStageLayers(e.Spec.Layers, P)*P) * p.KernelOverhead
	return compute + ar + p2p + kernels
}

// Exec returns l_exe(S_out | S_in): initial phase plus S_out incremental
// decoding iterations (equation 1 of the paper). With a memoized Estimator
// the answer comes from a cumulative prefix table — O(1) per call after the
// first fill, which is what makes Algorithm 1's enumeration cheap.
func (e *Estimator) Exec(P, M, B, sin, sout int) float64 {
	if e.memo == nil {
		t := e.InitPhase(P, M, B, sin)
		for i := 1; i <= sout; i++ {
			t += e.decodeIterRaw(P, M, B, sin+i)
		}
		return t
	}
	e.memo.mu.Lock()
	t := e.execLocked(P, M, B, sin)
	for len(t.cum) <= sout {
		k := len(t.cum)
		if k == 0 {
			t.cum = append(t.cum, e.InitPhase(P, M, B, sin))
		} else {
			t.cum = append(t.cum, t.cum[k-1]+e.decodeLocked(P, M, B, sin+k))
		}
	}
	v := t.cum[sout]
	e.memo.mu.Unlock()
	return v
}

// ExecPartial returns the execution latency of decoding from token
// `from` (exclusive) to token `to` (inclusive) after the initial phase has
// already run — used by stateful recovery to price resumed requests. The
// from == 0 form (the arranger's reroute-vs-migrate query) is answered from
// a cumulative table in O(1).
func (e *Estimator) ExecPartial(P, M, B, sin, from, to int) float64 {
	if to <= from {
		return 0
	}
	if e.memo == nil {
		t := 0.0
		for i := from + 1; i <= to; i++ {
			t += e.decodeIterRaw(P, M, B, sin+i)
		}
		return t
	}
	e.memo.mu.Lock()
	defer e.memo.mu.Unlock()
	if from == 0 {
		t := e.execLocked(P, M, B, sin)
		for len(t.partial) <= to {
			k := len(t.partial)
			if k == 0 {
				t.partial = append(t.partial, 0)
			} else {
				t.partial = append(t.partial, t.partial[k-1]+e.decodeLocked(P, M, B, sin+k))
			}
		}
		return t.partial[to]
	}
	t := 0.0
	for i := from + 1; i <= to; i++ {
		t += e.decodeLocked(P, M, B, sin+i)
	}
	return t
}

// execLocked returns (creating on first use) the execution-latency table
// for one (P, M, B, S_in). Caller holds memo.mu.
func (e *Estimator) execLocked(P, M, B, sin int) *execTable {
	key := execKey{P, M, B, sin}
	t, ok := e.memo.exec[key]
	if !ok {
		t = &execTable{}
		e.memo.exec[key] = t
	}
	return t
}

// Throughput returns φ(C): steady-state serving rate in requests/second.
// Each pipeline serves batches of B requests taking l_exe each; D pipelines
// run independently.
func (e *Estimator) Throughput(c config.Config, sin, sout int) float64 {
	if c.IsZero() || c.B <= 0 {
		return 0
	}
	l := e.Exec(c.P, c.M, c.B, sin, sout)
	if l <= 0 {
		return 0
	}
	return float64(c.D) * float64(c.B) / l
}

// Latency returns the model-only end-to-end latency l_exe for configuration
// c at the default sequence lengths — the optimizer's l_req proxy before
// queueing is considered.
func (e *Estimator) Latency(c config.Config, sin, sout int) float64 {
	return e.Exec(c.P, c.M, c.B, sin, sout)
}
