package cost

import (
	"math"
	"sort"

	"spotserve/internal/config"
	"spotserve/internal/model"
)

// KVBytesPerGPU returns the KV-cache bytes resident on one GPU for shape
// (P, M) serving B concurrent requests of up to maxTokens tokens each.
func (e *Estimator) KVBytesPerGPU(P, M, B, maxTokens int) float64 {
	stageLayers := model.MaxStageLayers(e.Spec.Layers, P)
	return float64(B) * float64(maxTokens) * e.Spec.KVBytesPerTokenLayer() *
		float64(stageLayers) / float64(M)
}

// PerGPUMemBytes returns the peak per-GPU memory footprint of configuration
// shape (P, M, B) with sequences up to maxTokens. naiveBuffer selects the
// migration-buffer model: the naive migration plan stages an entire
// incoming context alongside the resident one (2× parameters), while the
// memory-optimized planner (Algorithm 2) caps the buffer at U_max. This is
// exactly the mechanism behind the §6.2 ablation observation that the
// memory-optimized planner lowers GPT-20B's minimum GPU count from 16 to 12.
func (e *Estimator) PerGPUMemBytes(P, M, B, maxTokens int, naiveBuffer bool) float64 {
	params := e.StageParamBytesPerGPU(P, M)
	kv := e.KVBytesPerGPU(P, M, B, maxTokens)
	buf := e.Params.BufMaxBytes
	if naiveBuffer {
		buf = params
	}
	return params + kv + e.Params.ActivationBytes + buf
}

// Feasible reports whether configuration c fits in GPU memory with
// sequences of up to maxTokens tokens.
func (e *Estimator) Feasible(c config.Config, maxTokens int, naiveBuffer bool) bool {
	return e.FeasibleScaled(c, maxTokens, naiveBuffer, 1)
}

// FeasibleScaled is Feasible against a device whose usable memory is the
// baseline scaled by memScale — the per-instance-type feasibility check for
// heterogeneous fleets (an instance type's MemScale multiplies its usable
// memory). memScale 1 is exactly the baseline check.
func (e *Estimator) FeasibleScaled(c config.Config, maxTokens int, naiveBuffer bool, memScale float64) bool {
	if err := c.Validate(); err != nil {
		return false
	}
	if c.M > e.Spec.Heads || e.Spec.Heads%c.M != 0 {
		return false
	}
	if c.P > e.Spec.Layers || e.Spec.Layers%c.P != 0 {
		return false
	}
	return e.PerGPUMemBytes(c.P, c.M, c.B, maxTokens, naiveBuffer) <= e.Params.UsableGPUMemBytes*memScale
}

// FeasibleShapes returns all (P, M) shapes within limits that fit in memory
// with batch size B, sorted by GPUs-per-pipeline then latency-optimal order
// (P ascending within equal GPU counts keeps enumeration deterministic).
func (e *Estimator) FeasibleShapes(l config.Limits, B, maxTokens int, naiveBuffer bool) []config.Config {
	return e.FeasibleShapesScaled(l, B, maxTokens, naiveBuffer, 1)
}

// FeasibleShapesScaled is FeasibleShapes with the usable GPU memory scaled
// by memScale (heterogeneous fleets plan against their smallest-memory
// usable type). Calls are memoized per (limits, B, maxTokens, buffer
// model, memScale) — Algorithm 1 re-enumerates the same shape table on
// every fleet event. The returned slice is shared; callers must not
// mutate it.
func (e *Estimator) FeasibleShapesScaled(l config.Limits, B, maxTokens int, naiveBuffer bool, memScale float64) []config.Config {
	if e.memo == nil {
		return e.feasibleShapesRaw(l, B, maxTokens, naiveBuffer, memScale)
	}
	key := feasKey{
		limits:   limitsFingerprint(l),
		b:        B,
		tokens:   maxTokens,
		naive:    naiveBuffer,
		memScale: memScale,
	}
	e.memo.mu.Lock()
	if out, ok := e.memo.feasible[key]; ok {
		e.memo.mu.Unlock()
		return out
	}
	e.memo.mu.Unlock()
	out := e.feasibleShapesRaw(l, B, maxTokens, naiveBuffer, memScale)
	e.memo.mu.Lock()
	e.memo.feasible[key] = out
	e.memo.mu.Unlock()
	return out
}

func (e *Estimator) feasibleShapesRaw(l config.Limits, B, maxTokens int, naiveBuffer bool, memScale float64) []config.Config {
	var out []config.Config
	for _, s := range l.EnumerateShapes(e.Spec.Layers, e.Spec.Heads) {
		c := config.Config{D: 1, P: s.P, M: s.M, B: B}
		if e.FeasibleScaled(c, maxTokens, naiveBuffer, memScale) {
			out = append(out, c)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		gi, gj := out[i].GPUsPerPipeline(), out[j].GPUsPerPipeline()
		if gi != gj {
			return gi < gj
		}
		if out[i].P != out[j].P {
			return out[i].P < out[j].P
		}
		return out[i].M < out[j].M
	})
	return out
}

// MinGPUs returns the smallest pipeline GPU count able to serve the model
// (B=1, default sequence lengths) and the latency-optimal shape at that
// count — the quantities reported in Table 1. naiveBuffer selects the
// migration-buffer model as in PerGPUMemBytes.
func (e *Estimator) MinGPUs(l config.Limits, maxTokens int, naiveBuffer bool) (int, config.Config) {
	return e.MinGPUsScaled(l, maxTokens, naiveBuffer, 1)
}

// MinGPUsScaled is MinGPUs against memScale-scaled usable GPU memory.
func (e *Estimator) MinGPUsScaled(l config.Limits, maxTokens int, naiveBuffer bool, memScale float64) (int, config.Config) {
	shapes := e.FeasibleShapesScaled(l, 1, maxTokens, naiveBuffer, memScale)
	if len(shapes) == 0 {
		return 0, config.Zero
	}
	minGPUs := shapes[0].GPUsPerPipeline()
	best := config.Zero
	bestLat := math.Inf(1)
	for _, s := range shapes {
		if s.GPUsPerPipeline() != minGPUs {
			continue
		}
		lat := e.Exec(s.P, s.M, 1, DefaultSeqIn, DefaultSeqOut)
		if lat < bestLat {
			bestLat = lat
			best = s
		}
	}
	return minGPUs, best
}

// Default sequence lengths used throughout the paper's evaluation (§6.1):
// S_in = 512 input tokens, S_out = 128 generated tokens.
const (
	DefaultSeqIn  = 512
	DefaultSeqOut = 128
)

// DefaultMaxTokens is the KV-cache budget per request.
const DefaultMaxTokens = DefaultSeqIn + DefaultSeqOut
