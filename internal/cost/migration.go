package cost

// TransferTime estimates moving `bytes` of context between two GPUs.
// interInstance selects the network link (true) or the intra-instance
// interconnect (false).
func (e *Estimator) TransferTime(bytes float64, interInstance bool) float64 {
	if bytes <= 0 {
		return 0
	}
	if interInstance {
		return e.Params.AlphaInter + bytes/e.Params.InterBWBytes
	}
	return e.Params.AlphaIntra + bytes/e.Params.IntraBWBytes
}

// ReloadTime returns the cost of restarting an inference pipeline from
// persistent storage: every GPU loads its parameter shard (in parallel)
// plus the fixed engine launch/initialization time. This is the restart
// penalty paid by the Reparallelization baseline on every configuration
// change, and by SpotServe only when all replicas of some model context
// were lost (§4.2 fault tolerance).
func (e *Estimator) ReloadTime(P, M int) float64 {
	perGPU := e.StageParamBytesPerGPU(P, M) / e.Params.StorageBWPerGPU
	return perGPU + e.Params.EngineInitTime
}

// EngineRestartTime is the fixed engine relaunch cost without reloading
// parameters (context daemon kept them resident) — the cheap path enabled
// by SpotServe's context management.
func (e *Estimator) EngineRestartTime() float64 {
	// Restarting the engine against a live context daemon skips both the
	// parameter load and most process-group setup.
	return e.Params.EngineInitTime / 10
}
