package cost

import (
	"testing"

	"spotserve/internal/config"
	"spotserve/internal/model"
)

// TestFeasibleShapesScaledBaseline pins memScale 1 to the unscaled check,
// entry for entry (including the shared-memo path on repeated calls).
func TestFeasibleShapesScaledBaseline(t *testing.T) {
	est := NewEstimator(DefaultParams(), model.GPT20B)
	for round := 0; round < 2; round++ {
		for _, b := range config.DefaultLimits().Bs {
			plain := est.FeasibleShapes(config.DefaultLimits(), b, DefaultMaxTokens, false)
			scaled := est.FeasibleShapesScaled(config.DefaultLimits(), b, DefaultMaxTokens, false, 1)
			if len(plain) != len(scaled) {
				t.Fatalf("B=%d: %d shapes vs %d scaled", b, len(plain), len(scaled))
			}
			for i := range plain {
				if plain[i] != scaled[i] {
					t.Fatalf("B=%d shape %d: %v vs %v", b, i, plain[i], scaled[i])
				}
			}
		}
	}
}

// TestFeasibleShapesScaledShrinksSpace checks per-type memory feasibility:
// smaller usable memory must shrink the shape space monotonically and
// raise the minimum pipeline GPU count (GPT-20B: 12 at baseline memory).
func TestFeasibleShapesScaledShrinksSpace(t *testing.T) {
	est := NewEstimator(DefaultParams(), model.GPT20B)
	l := config.DefaultLimits()
	baseline := est.FeasibleShapesScaled(l, 1, DefaultMaxTokens, false, 1)
	small := est.FeasibleShapesScaled(l, 1, DefaultMaxTokens, false, 0.7)
	if len(small) >= len(baseline) {
		t.Fatalf("memScale 0.7 kept %d shapes, baseline %d", len(small), len(baseline))
	}
	// Every shape feasible at 0.7 must be feasible at 1 (monotonicity).
	ok := map[config.Config]bool{}
	for _, c := range baseline {
		ok[c] = true
	}
	for _, c := range small {
		if !ok[c] {
			t.Fatalf("shape %v feasible at 0.7 but not at 1.0", c)
		}
	}
	minBase, _ := est.MinGPUsScaled(l, DefaultMaxTokens, false, 1)
	minSmall, _ := est.MinGPUsScaled(l, DefaultMaxTokens, false, 0.7)
	if minBase != 12 {
		t.Fatalf("baseline min GPUs = %d, want 12 (Table 1)", minBase)
	}
	if minSmall <= minBase {
		t.Fatalf("memScale 0.7 min GPUs = %d, not above baseline %d", minSmall, minBase)
	}
	// Larger-memory devices must never shrink the space.
	big := est.FeasibleShapesScaled(l, 1, DefaultMaxTokens, false, 1.5)
	if len(big) < len(baseline) {
		t.Fatalf("memScale 1.5 kept %d shapes, below baseline %d", len(big), len(baseline))
	}
}

// TestSharedEstimatorIdentity pins the offline-profile registry: the same
// (Params, Spec) yields one instance, distinct configurations do not, and
// shared values match a fresh estimator bit for bit.
func TestSharedEstimatorIdentity(t *testing.T) {
	a := Shared(DefaultParams(), model.GPT20B)
	b := Shared(DefaultParams(), model.GPT20B)
	if a != b {
		t.Fatal("identical (Params, Spec) returned distinct estimators")
	}
	if c := Shared(DefaultParams(), model.OPT6B7); c == a {
		t.Fatal("distinct specs share an estimator")
	}
	p := DefaultParams()
	p.MemBWEff = 0.6
	if d := Shared(p, model.GPT20B); d == a {
		t.Fatal("distinct params share an estimator")
	}
	fresh := NewEstimator(DefaultParams(), model.GPT20B)
	if got, want := a.Exec(3, 4, 1, DefaultSeqIn, DefaultSeqOut), fresh.Exec(3, 4, 1, DefaultSeqIn, DefaultSeqOut); got != want {
		t.Fatalf("shared Exec %v != fresh %v", got, want)
	}
}

// TestDecodeRangeMatchesDecodeIter pins the bulk decode-table read against
// the per-call path, bit for bit.
func TestDecodeRangeMatchesDecodeIter(t *testing.T) {
	est := NewEstimator(DefaultParams(), model.GPT20B)
	s := est.DecodeRange(3, 4, 8, 512, 640)
	for i, v := range s {
		if want := est.DecodeIter(3, 4, 8, 512+i); v != want {
			t.Fatalf("DecodeRange[%d] = %v, DecodeIter = %v", i, v, want)
		}
	}
	// Partially-warm table: a second overlapping range stays consistent.
	s2 := est.DecodeRange(3, 4, 8, 600, 700)
	for i, v := range s2 {
		if want := est.DecodeIter(3, 4, 8, 600+i); v != want {
			t.Fatalf("warm DecodeRange[%d] = %v, DecodeIter = %v", i, v, want)
		}
	}
}
