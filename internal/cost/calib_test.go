package cost

import (
	"testing"

	"spotserve/internal/config"
	"spotserve/internal/model"
)

// TestPrintCalibration is a diagnostic that prints the modeled Table-1
// quantities; run with -v to inspect calibration.
func TestPrintCalibration(t *testing.T) {
	p := DefaultParams()
	type row struct {
		spec model.Spec
		P, M int
	}
	for _, r := range []row{
		{model.OPT6B7, 1, 4},
		{model.GPT20B, 3, 4},
		{model.LLaMA30B, 2, 8},
	} {
		e := NewEstimator(p, r.spec)
		lexe := e.Exec(r.P, r.M, 1, DefaultSeqIn, DefaultSeqOut)
		ming, shape := e.MinGPUs(config.DefaultLimits(), DefaultMaxTokens, false)
		mingNaive, _ := e.MinGPUs(config.DefaultLimits(), DefaultMaxTokens, true)
		t.Logf("%-10s (P=%d,M=%d): lexe(B=1)=%6.3fs  lexe(B=8)=%6.3fs  minGPUs=%d shape=%v  naiveMinGPUs=%d",
			r.spec.Name, r.P, r.M, lexe,
			e.Exec(r.P, r.M, 8, DefaultSeqIn, DefaultSeqOut),
			ming, shape, mingNaive)
		// Throughput sanity for Fig. 8 reasoning (GPT-20B).
		if r.spec.Name == "GPT-20B" {
			for _, c := range []config.Config{
				{D: 1, P: 2, M: 8, B: 8},
				{D: 2, P: 2, M: 8, B: 8},
				{D: 2, P: 3, M: 4, B: 8},
			} {
				t.Logf("  phi%v = %.3f req/s", c, e.Throughput(c, DefaultSeqIn, DefaultSeqOut))
			}
		}
	}
}
