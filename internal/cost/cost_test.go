package cost

import (
	"math"
	"testing"
	"testing/quick"

	"spotserve/internal/config"
	"spotserve/internal/model"
)

func est(t testing.TB, spec model.Spec) *Estimator {
	t.Helper()
	return NewEstimator(DefaultParams(), spec)
}

func within(t *testing.T, name string, got, want, relTol float64) {
	t.Helper()
	if math.Abs(got-want) > relTol*want {
		t.Errorf("%s = %v, want %v ± %.0f%%", name, got, want, relTol*100)
	}
}

// TestTable1Latency pins the calibration against the paper's single-request
// execution latencies (Table 1: l_exe with B=1, S_in=512, S_out=128).
func TestTable1Latency(t *testing.T) {
	cases := []struct {
		spec  model.Spec
		P, M  int
		paper float64
	}{
		{model.OPT6B7, 1, 4, 5.447},
		{model.GPT20B, 3, 4, 14.373},
		{model.LLaMA30B, 2, 8, 17.540},
	}
	for _, c := range cases {
		e := est(t, c.spec)
		got := e.Exec(c.P, c.M, 1, DefaultSeqIn, DefaultSeqOut)
		within(t, c.spec.Name+" l_exe(B=1)", got, c.paper, 0.15)
	}
}

// TestTable1MinGPUs pins the memory model against the paper's minimum GPU
// counts and latency-optimal shapes (Table 1).
func TestTable1MinGPUs(t *testing.T) {
	cases := []struct {
		spec  model.Spec
		wantN int
		wantP int
		wantM int
	}{
		{model.OPT6B7, 4, 1, 4},
		{model.GPT20B, 12, 3, 4},
		{model.LLaMA30B, 16, 2, 8},
	}
	for _, c := range cases {
		e := est(t, c.spec)
		n, shape := e.MinGPUs(config.DefaultLimits(), DefaultMaxTokens, false)
		if n != c.wantN || shape.P != c.wantP || shape.M != c.wantM {
			t.Errorf("%s: MinGPUs = %d %v, want %d (P=%d,M=%d)",
				c.spec.Name, n, shape, c.wantN, c.wantP, c.wantM)
		}
	}
}

// TestMemOptEnlargesSpace pins the §6.2 ablation claim: the memory-optimized
// migration planner reduces GPT-20B's minimum from 16 to 12 GPUs.
func TestMemOptEnlargesSpace(t *testing.T) {
	e := est(t, model.GPT20B)
	l := config.DefaultLimits()
	naive, _ := e.MinGPUs(l, DefaultMaxTokens, true)
	opt, _ := e.MinGPUs(l, DefaultMaxTokens, false)
	if naive != 16 {
		t.Errorf("naive-buffer min GPUs = %d, want 16", naive)
	}
	if opt != 12 {
		t.Errorf("memopt min GPUs = %d, want 12", opt)
	}
}

// TestFigure8ThroughputCrossover pins the overload narrative of §6.3: on
// GPT-20B with α=0.35 req/s, one (P=2,M=8) pipeline cannot keep up, two
// can, and (D=2,P=3,M=4) — SpotServe's pick with 7 instances — also can.
func TestFigure8ThroughputCrossover(t *testing.T) {
	e := est(t, model.GPT20B)
	const alpha = 0.35
	phi1 := e.Throughput(config.Config{D: 1, P: 2, M: 8, B: 8}, DefaultSeqIn, DefaultSeqOut)
	phi2 := e.Throughput(config.Config{D: 2, P: 2, M: 8, B: 8}, DefaultSeqIn, DefaultSeqOut)
	phi34 := e.Throughput(config.Config{D: 2, P: 3, M: 4, B: 8}, DefaultSeqIn, DefaultSeqOut)
	if phi1 >= alpha {
		t.Errorf("phi(1,2,8,B=8) = %v, want < %v (rerouting overload)", phi1, alpha)
	}
	if phi2 < alpha {
		t.Errorf("phi(2,2,8,B=8) = %v, want >= %v", phi2, alpha)
	}
	if phi34 < alpha {
		t.Errorf("phi(2,3,4,B=8) = %v, want >= %v (SpotServe's alternative)", phi34, alpha)
	}
}

func TestDecodeIterMonotonicity(t *testing.T) {
	e := est(t, model.GPT20B)
	base := e.DecodeIter(3, 4, 1, 512)
	if e.DecodeIter(3, 4, 8, 512) <= base {
		t.Error("larger batch should not be faster per iteration")
	}
	if e.DecodeIter(3, 4, 1, 1024) <= base {
		t.Error("longer context should not be faster (KV reads grow)")
	}
	// More tensor shards reduce per-stage latency for the same P until
	// communication dominates; M=2 vs M=1 must help on a 20B model.
	if e.DecodeIter(1, 2, 1, 512) >= e.DecodeIter(1, 1, 1, 512) {
		t.Error("M=2 should beat M=1 on a model this large")
	}
}

func TestExecDecomposition(t *testing.T) {
	// l_exe = initial phase + sum of per-iteration costs (eq. 1).
	e := est(t, model.OPT6B7)
	total := e.Exec(1, 4, 2, 512, 16)
	manual := e.InitPhase(1, 4, 2, 512)
	for i := 1; i <= 16; i++ {
		manual += e.DecodeIter(1, 4, 2, 512+i)
	}
	if math.Abs(total-manual) > 1e-9 {
		t.Fatalf("Exec = %v, manual sum = %v", total, manual)
	}
}

func TestExecPartial(t *testing.T) {
	e := est(t, model.OPT6B7)
	full := e.Exec(1, 4, 1, 512, 128)
	split := e.InitPhase(1, 4, 1, 512) +
		e.ExecPartial(1, 4, 1, 512, 0, 50) +
		e.ExecPartial(1, 4, 1, 512, 50, 128)
	if math.Abs(full-split) > 1e-9 {
		t.Fatalf("partial decomposition mismatch: %v vs %v", full, split)
	}
	if e.ExecPartial(1, 4, 1, 512, 10, 10) != 0 {
		t.Fatal("empty partial range should cost zero")
	}
}

func TestThroughputScalesWithD(t *testing.T) {
	e := est(t, model.GPT20B)
	c1 := config.Config{D: 1, P: 3, M: 4, B: 8}
	c2 := config.Config{D: 2, P: 3, M: 4, B: 8}
	if math.Abs(e.Throughput(c2, 512, 128)-2*e.Throughput(c1, 512, 128)) > 1e-9 {
		t.Fatal("throughput should scale linearly in D")
	}
	if e.Throughput(config.Zero, 512, 128) != 0 {
		t.Fatal("zero config should have zero throughput")
	}
}

func TestFeasibilityRules(t *testing.T) {
	e := est(t, model.GPT20B) // 48 layers, 48 heads
	mt := DefaultMaxTokens
	if e.Feasible(config.Config{D: 1, P: 5, M: 4, B: 1}, mt, false) {
		t.Error("P=5 does not divide 48 layers; should be infeasible")
	}
	if e.Feasible(config.Config{D: 1, P: 3, M: 5, B: 1}, mt, false) {
		t.Error("M=5 does not divide 48 heads; should be infeasible")
	}
	if e.Feasible(config.Config{D: 1, P: 1, M: 1, B: 1}, mt, false) {
		t.Error("a 74.5 GB model cannot fit one 16 GB GPU")
	}
	if !e.Feasible(config.Config{D: 4, P: 3, M: 4, B: 8}, mt, false) {
		t.Error("(D=4,P=3,M=4,B=8) should fit (D does not change per-GPU memory)")
	}
}

func TestFeasibleShapesSorted(t *testing.T) {
	e := est(t, model.GPT20B)
	shapes := e.FeasibleShapes(config.DefaultLimits(), 1, DefaultMaxTokens, false)
	if len(shapes) == 0 {
		t.Fatal("no feasible shapes for GPT-20B")
	}
	for i := 1; i < len(shapes); i++ {
		if shapes[i].GPUsPerPipeline() < shapes[i-1].GPUsPerPipeline() {
			t.Fatalf("shapes not sorted by GPU count: %v", shapes)
		}
	}
	for _, s := range shapes {
		if !e.Feasible(s, DefaultMaxTokens, false) {
			t.Fatalf("FeasibleShapes returned infeasible %v", s)
		}
	}
}

func TestPerGPUMemNaiveBufferLarger(t *testing.T) {
	e := est(t, model.GPT20B)
	opt := e.PerGPUMemBytes(3, 4, 8, DefaultMaxTokens, false)
	naive := e.PerGPUMemBytes(3, 4, 8, DefaultMaxTokens, true)
	if naive <= opt {
		t.Fatalf("naive buffer %v should exceed memopt %v", naive, opt)
	}
	diff := naive - opt
	wantDiff := e.StageParamBytesPerGPU(3, 4) - e.Params.BufMaxBytes
	if math.Abs(diff-wantDiff) > 1 {
		t.Fatalf("buffer delta = %v, want %v", diff, wantDiff)
	}
}

func TestTransferTime(t *testing.T) {
	e := est(t, model.GPT20B)
	if e.TransferTime(0, true) != 0 {
		t.Fatal("zero bytes should cost zero")
	}
	intra := e.TransferTime(model.GB, false)
	inter := e.TransferTime(model.GB, true)
	if inter <= intra {
		t.Fatal("inter-instance transfer should be slower")
	}
	// 1 GB over 6 GB/s ≈ 167 ms plus alpha.
	if inter < 0.16 || inter > 0.2 {
		t.Fatalf("1 GB inter transfer = %v s, want ≈0.167", inter)
	}
}

func TestReloadVsMigrationGap(t *testing.T) {
	// The premise of the whole paper: restarting from storage is far more
	// expensive than migrating context over the network.
	e := est(t, model.GPT20B)
	reload := e.ReloadTime(3, 4)
	migrate := e.TransferTime(e.StageParamBytesPerGPU(3, 4), true)
	if reload < 5*migrate {
		t.Fatalf("reload (%v) should dwarf migration (%v)", reload, migrate)
	}
	if e.EngineRestartTime() >= e.Params.EngineInitTime {
		t.Fatal("context-daemon restart should be cheaper than full init")
	}
}

func TestValidateParams(t *testing.T) {
	p := DefaultParams()
	if err := p.Validate(); err != nil {
		t.Fatalf("default params invalid: %v", err)
	}
	p.UsableGPUMemBytes = p.GPUMemBytes + 1
	if err := p.Validate(); err == nil {
		t.Fatal("usable > physical accepted")
	}
	p = DefaultParams()
	p.MemBWBytes = 0
	if err := p.Validate(); err == nil {
		t.Fatal("zero bandwidth accepted")
	}
	p = DefaultParams()
	p.GPUsPerInstance = 0
	if err := p.Validate(); err == nil {
		t.Fatal("zero GPUs per instance accepted")
	}
}

// Regression: with several fields invalid at once, Validate must name the
// same field on every run. It used to iterate a map literal, so the
// reported field — and anything fingerprinting the error text — varied
// with Go's per-run map iteration order.
func TestValidateDeterministicFieldOrder(t *testing.T) {
	p := DefaultParams()
	p.ComputeEff = 0
	p.MemBWBytes = -1
	p.StorageBWPerGPU = 0
	want := "cost: MemBWBytes = -1 must be positive" // declaration order: MemBWBytes precedes the others
	for i := 0; i < 50; i++ {
		err := p.Validate()
		if err == nil {
			t.Fatal("invalid params accepted")
		}
		if err.Error() != want {
			t.Fatalf("run %d: Validate() = %q, want %q", i, err.Error(), want)
		}
	}
}

// Property: Exec is monotone in S_out and additive in iteration count.
func TestQuickExecMonotone(t *testing.T) {
	e := est(t, model.OPT6B7)
	f := func(soutRaw uint8) bool {
		sout := int(soutRaw%100) + 1
		a := e.Exec(1, 4, 1, 512, sout)
		b := e.Exec(1, 4, 1, 512, sout+1)
		return b > a
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: per-GPU parameter bytes across the whole mesh sum to at least
// the model size (padding from uneven stages can only add).
func TestQuickShardBytesCoverModel(t *testing.T) {
	f := func(pRaw, mRaw uint8) bool {
		for _, spec := range model.All() {
			e := NewEstimator(DefaultParams(), spec)
			P := int(pRaw%8) + 1
			M := []int{1, 2, 4, 8}[mRaw%4]
			total := e.StageParamBytesPerGPU(P, M) * float64(P*M)
			if total < spec.ParamBytes-1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkExec(b *testing.B) {
	e := NewEstimator(DefaultParams(), model.GPT20B)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = e.Exec(3, 4, 8, DefaultSeqIn, DefaultSeqOut)
	}
}
