package serve

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"spotserve/internal/calibrate"
)

// smallObserved exports a two-seed simulated run as an observed trace — the
// same self-calibration fixture the calibrate package's round-trip test
// uses, so a daemon replay must score it with zero violations.
func smallObserved(t *testing.T) calibrate.ObservedTrace {
	t.Helper()
	obs, err := calibrate.ExportScenario("serve-equivalence", calibrate.ScenarioRef{
		Avail: "bursty", Policy: "fixed", Fleet: "homog", Seed: 1, Seeds: 2,
	}, 0)
	if err != nil {
		t.Fatal(err)
	}
	return obs
}

// submitCalibrate POSTs an observed trace to /calibrate and returns the
// accepted job's id.
func submitCalibrate(t *testing.T, ts *httptest.Server, obs calibrate.ObservedTrace) string {
	t.Helper()
	body, err := obs.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/calibrate", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit status %d", resp.StatusCode)
	}
	var out struct {
		ID   string `json:"id"`
		Kind string `json:"kind"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if out.Kind != KindCalibrate {
		t.Fatalf("accepted kind %q, want %q", out.Kind, KindCalibrate)
	}
	return out.ID
}

// The calibrate determinism contract: a daemon calibrate job's rendered
// report, JSON report and replica fingerprints are byte-identical to the
// CLI path (calibrate.Run on the same trace, which is exactly what
// `experiments -exp calibrate` prints).
func TestCalibrateMatchesCLIRun(t *testing.T) {
	obs := smallObserved(t)
	cliRep, err := calibrate.Run(obs, calibrate.Options{})
	if err != nil {
		t.Fatal(err)
	}

	s, ts := newTestServer(t, Options{})
	st := waitDone(t, s, submitCalibrate(t, ts, obs))
	if st.State != StateDone {
		t.Fatalf("job state %s (%s)", st.State, st.Error)
	}
	if st.Kind != KindCalibrate {
		t.Fatalf("status kind %q, want %q", st.Kind, KindCalibrate)
	}
	if st.Render != cliRep.Render() {
		t.Fatalf("daemon render differs from CLI render:\n--- daemon ---\n%s\n--- cli ---\n%s", st.Render, cliRep.Render())
	}
	if st.Calibration == nil {
		t.Fatal("terminal calibrate status carries no report")
	}
	daemonJSON, err := st.Calibration.JSON()
	if err != nil {
		t.Fatal(err)
	}
	cliJSON, err := cliRep.JSON()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(daemonJSON, cliJSON) {
		t.Fatalf("daemon report JSON differs from CLI:\n--- daemon ---\n%s\n--- cli ---\n%s", daemonJSON, cliJSON)
	}
	if got, want := st.Calibration.Fingerprints, cliRep.Fingerprints; strings.Join(got, ",") != strings.Join(want, ",") {
		t.Fatalf("fingerprints %v, want CLI's %v", got, want)
	}
	// Self-calibration through the daemon keeps the round-trip guarantee.
	if st.Calibration.Verdict != calibrate.VerdictPass || st.Calibration.Fail != 0 || st.Calibration.Warn != 0 {
		t.Fatalf("self-calibration verdict %s (%d warn, %d fail), want clean pass",
			st.Calibration.Verdict, st.Calibration.Warn, st.Calibration.Fail)
	}
	// The replayed cell streams exactly one row.
	if len(st.Rows) != 1 || st.Rows[0].Cell != 0 {
		t.Fatalf("calibrate job rows = %+v, want one row for cell 0", st.Rows)
	}
}

// A repeated identical calibrate job is served entirely from the shared
// cell cache and renders byte-identically — calibrate replays share cache
// entries with each other (and with grid jobs over the same cell).
func TestRepeatCalibrateServedFromCache(t *testing.T) {
	s, ts := newTestServer(t, Options{})
	obs := smallObserved(t)
	first := waitDone(t, s, submitCalibrate(t, ts, obs))
	second := waitDone(t, s, submitCalibrate(t, ts, obs))

	if first.Render != second.Render {
		t.Fatal("cached calibrate job rendered differently")
	}
	replicas := len(first.Calibration.Fingerprints)
	if replicas == 0 {
		t.Fatal("first report carries no fingerprints")
	}
	if first.CacheHits != 0 || first.CacheMisses != replicas {
		t.Fatalf("first job: %d hits / %d misses, want 0 / %d",
			first.CacheHits, first.CacheMisses, replicas)
	}
	if second.CacheHits != replicas || second.CacheMisses != 0 {
		t.Fatalf("second job: %d hits / %d misses, want %d / 0",
			second.CacheHits, second.CacheMisses, replicas)
	}
}
