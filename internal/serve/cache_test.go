package serve

import (
	"fmt"
	"testing"

	"spotserve/internal/experiments"
)

func TestCellCacheEvictsFIFO(t *testing.T) {
	c := newCellCache(3)
	for i := 0; i < 5; i++ {
		c.Put(fmt.Sprintf("k%d", i), experiments.Result{})
	}
	for i, want := range []bool{false, false, true, true, true} {
		_, ok := c.Get(fmt.Sprintf("k%d", i))
		if ok != want {
			t.Errorf("k%d present=%v, want %v", i, ok, want)
		}
	}
	st := c.stats()
	if st.Size != 3 || st.Max != 3 {
		t.Fatalf("stats %+v, want size 3 of max 3", st)
	}
	if st.Hits != 3 || st.Misses != 2 {
		t.Fatalf("stats %+v, want 3 hits / 2 misses", st)
	}
}

func TestCellCacheDuplicatePutKept(t *testing.T) {
	c := newCellCache(2)
	r := experiments.Result{}
	r.Scenario.Seed = 7
	c.Put("a", r)
	c.Put("a", experiments.Result{}) // a racy duplicate Put never downgrades
	got, ok := c.Get("a")
	if !ok || got.Scenario.Seed != 7 {
		t.Fatalf("duplicate Put replaced the stored result: %+v", got.Scenario.Seed)
	}
	if st := c.stats(); st.Size != 1 {
		t.Fatalf("size %d after duplicate Put, want 1", st.Size)
	}
}

func TestCountingCacheAttribution(t *testing.T) {
	shared := newCellCache(8)
	shared.Put("x", experiments.Result{})
	c := &countingCache{inner: shared}
	c.Get("x")
	c.Get("y")
	c.Get("x")
	hits, misses := c.counts()
	if hits != 2 || misses != 1 {
		t.Fatalf("counts = %d/%d, want 2/1", hits, misses)
	}
}
