package serve

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"sort"
	"strings"
	"testing"
	"time"

	"spotserve/internal/scenario"
)

// smallSpec is the grid the daemon tests run: 2 availability models × 1
// policy × 1 fleet at 2 seeds — 4 replicas, small enough that the full
// suite stays fast, wide enough to exercise streaming and replication.
func smallSpec() scenario.JobSpec {
	return scenario.JobSpec{
		Avail:    []string{"diurnal", "bursty"},
		Policies: []string{"fixed"},
		Fleets:   []string{"homog"},
		Seed:     1,
		Seeds:    2,
	}
}

func newTestServer(t *testing.T, opts Options) (*Server, *httptest.Server) {
	t.Helper()
	s := New(opts)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		s.Shutdown(ctx)
	})
	return s, ts
}

func submit(t *testing.T, ts *httptest.Server, spec scenario.JobSpec) string {
	t.Helper()
	body, _ := json.Marshal(spec)
	resp, err := http.Post(ts.URL+"/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit status %d", resp.StatusCode)
	}
	var out struct {
		ID string `json:"id"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	return out.ID
}

func waitDone(t *testing.T, s *Server, id string) Status {
	t.Helper()
	job, ok := s.Job(id)
	if !ok {
		t.Fatalf("no job %s", id)
	}
	select {
	case <-job.Done():
	case <-time.After(60 * time.Second):
		t.Fatalf("job %s did not finish", id)
	}
	return job.status(true)
}

// The determinism contract: a daemon job's rendered table and per-row
// replica fingerprints are byte-identical to the equivalent CLI path
// (scenario.GridSweep + RenderGrid at the same seed, which is exactly what
// `experiments -exp scenarios` prints).
func TestJobMatchesCLIRun(t *testing.T) {
	spec := smallSpec()
	grid, err := spec.Grid()
	if err != nil {
		t.Fatal(err)
	}
	cliRows, err := scenario.GridSweep(grid, spec.Sweep())
	if err != nil {
		t.Fatal(err)
	}
	cliRender := scenario.RenderGrid(cliRows)

	s, ts := newTestServer(t, Options{})
	st := waitDone(t, s, submit(t, ts, spec))
	if st.State != StateDone {
		t.Fatalf("job state %s (%s)", st.State, st.Error)
	}
	if st.Render != cliRender {
		t.Fatalf("daemon render differs from CLI render:\n--- daemon ---\n%s\n--- cli ---\n%s", st.Render, cliRender)
	}
	if len(st.Rows) != len(cliRows) {
		t.Fatalf("%d rows, want %d", len(st.Rows), len(cliRows))
	}
	for _, row := range st.Rows {
		want := cliRows[row.Cell].Fingerprints
		if fmt.Sprint(row.Fingerprints) != fmt.Sprint(want) {
			t.Fatalf("cell %d fingerprints %v, want CLI's %v", row.Cell, row.Fingerprints, want)
		}
	}
}

// A repeated identical job is served entirely from the cell cache, the
// results stay byte-identical, and /stats surfaces the hit rate.
func TestRepeatJobServedFromCache(t *testing.T) {
	s, ts := newTestServer(t, Options{})
	spec := smallSpec()
	first := waitDone(t, s, submit(t, ts, spec))
	second := waitDone(t, s, submit(t, ts, spec))

	if first.Render != second.Render {
		t.Fatal("cached job rendered differently")
	}
	replicas := 0
	for _, row := range first.Rows {
		replicas += len(row.Fingerprints)
	}
	if second.CacheHits != replicas || second.CacheMisses != 0 {
		t.Fatalf("second job: %d hits / %d misses, want %d / 0",
			second.CacheHits, second.CacheMisses, replicas)
	}
	if first.CacheHits != 0 || first.CacheMisses != replicas {
		t.Fatalf("first job: %d hits / %d misses, want 0 / %d",
			first.CacheHits, first.CacheMisses, replicas)
	}

	resp, err := http.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var stats Stats
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	if stats.Cache == nil {
		t.Fatal("/stats missing cache section")
	}
	if stats.Cache.Hits != uint64(replicas) || stats.Cache.HitRate != 0.5 {
		t.Fatalf("cache stats %+v, want %d hits at rate 0.5", stats.Cache, replicas)
	}
	if stats.JobsServed != 2 || stats.JobsDone != 2 {
		t.Fatalf("stats %+v, want 2 jobs served/done", stats)
	}
}

// Cache-on == cache-off: the same spec on a cache-disabled daemon produces
// byte-identical renders and fingerprints.
func TestCacheEquivalence(t *testing.T) {
	spec := smallSpec()
	sOn, tsOn := newTestServer(t, Options{})
	sOff, tsOff := newTestServer(t, Options{DisableCache: true})

	// Run the cached daemon twice so the second pass really replays the
	// cache, then compare that pass against the uncached daemon.
	waitDone(t, sOn, submit(t, tsOn, spec))
	cached := waitDone(t, sOn, submit(t, tsOn, spec))
	uncached := waitDone(t, sOff, submit(t, tsOff, spec))

	if cached.Render != uncached.Render {
		t.Fatalf("cache-on render != cache-off render:\n--- on ---\n%s\n--- off ---\n%s",
			cached.Render, uncached.Render)
	}
	if uncached.CacheHits != 0 || uncached.CacheMisses != 0 {
		t.Fatalf("cache-off daemon recorded cache traffic: %+v", uncached)
	}
	byCell := func(rows []Row) []Row {
		out := append([]Row(nil), rows...)
		sort.Slice(out, func(i, j int) bool { return out[i].Cell < out[j].Cell })
		return out
	}
	on, off := byCell(cached.Rows), byCell(uncached.Rows)
	for i := range on {
		if fmt.Sprint(on[i].Fingerprints) != fmt.Sprint(off[i].Fingerprints) {
			t.Fatalf("cell %d: cache-on fingerprints %v != cache-off %v",
				on[i].Cell, on[i].Fingerprints, off[i].Fingerprints)
		}
	}
}

// The stream endpoint delivers one NDJSON line per cell plus a terminal
// done line, and the streamed rows are the rows the finished job reports.
func TestStreamNDJSON(t *testing.T) {
	s, ts := newTestServer(t, Options{})
	id := submit(t, ts, smallSpec())

	resp, err := http.Get(ts.URL + "/jobs/" + id + "/stream")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("content type %q", ct)
	}
	var rows []Row
	sawDone := false
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<24)
	for sc.Scan() {
		line := sc.Bytes()
		var probe map[string]json.RawMessage
		if err := json.Unmarshal(line, &probe); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", line, err)
		}
		if _, ok := probe["done"]; ok {
			sawDone = true
			var term struct {
				Done  bool  `json:"done"`
				State State `json:"state"`
				Rows  int   `json:"rows"`
			}
			if err := json.Unmarshal(line, &term); err != nil {
				t.Fatal(err)
			}
			if term.State != StateDone || term.Rows != len(rows) {
				t.Fatalf("terminal line %+v after %d rows", term, len(rows))
			}
			continue
		}
		var row Row
		if err := json.Unmarshal(line, &row); err != nil {
			t.Fatal(err)
		}
		rows = append(rows, row)
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if !sawDone {
		t.Fatal("stream ended without a done line")
	}
	st := waitDone(t, s, id)
	if len(rows) != st.Cells {
		t.Fatalf("streamed %d rows, want %d cells", len(rows), st.Cells)
	}
	// The streamed rows must be exactly the job's recorded rows (the
	// late-subscriber backlog path is covered by streaming after Done).
	resp2, err := http.Get(ts.URL + "/jobs/" + id + "/stream")
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	replay, _ := io.ReadAll(resp2.Body)
	if got := strings.Count(string(replay), "\n"); got != st.Cells+1 {
		t.Fatalf("replayed stream has %d lines, want %d rows + done", got, st.Cells+1)
	}
}

// A full queue rejects the submission with 429 and Retry-After, and the
// registry never learns about the rejected job.
func TestQueueBackpressure(t *testing.T) {
	s, ts := newTestServer(t, Options{QueueDepth: 1})
	// Hold the runner inside its first job so the queue genuinely fills:
	// one job running, one occupying the single queue slot, third rejected.
	release := make(chan struct{})
	s.testJobStart = func(*Job) { <-release }
	defer close(release)

	accepted := 0
	var rejected *http.Response
	for i := 0; i < 5; i++ {
		body, _ := json.Marshal(smallSpec())
		resp, err := http.Post(ts.URL+"/jobs", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode == http.StatusAccepted {
			accepted++
			resp.Body.Close()
			// Give the runner a moment to dequeue the first job before
			// filling the queue slot behind it.
			if accepted == 1 {
				time.Sleep(50 * time.Millisecond)
			}
			continue
		}
		rejected = resp
		break
	}
	if rejected == nil {
		t.Fatalf("queue of depth 1 accepted %d jobs without backpressure", accepted)
	}
	defer rejected.Body.Close()
	if rejected.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("rejected with %d, want 429", rejected.StatusCode)
	}
	if rejected.Header.Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After")
	}
	if accepted != 2 {
		t.Fatalf("%d jobs accepted, want exactly 2 (1 running + 1 queued)", accepted)
	}
	// The rejected submissions must not appear in the job list.
	resp, err := http.Get(ts.URL + "/jobs")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var list struct {
		Jobs []Status `json:"jobs"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&list); err != nil {
		t.Fatal(err)
	}
	if len(list.Jobs) != accepted {
		t.Fatalf("job list has %d entries, want %d accepted", len(list.Jobs), accepted)
	}
}

// Shutdown drains: accepted jobs finish, late submissions get 503, and
// /healthz flips to 503.
func TestGracefulShutdownDrains(t *testing.T) {
	s := New(Options{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	body, _ := json.Marshal(smallSpec())
	resp, err := http.Post(ts.URL+"/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var out struct {
		ID string `json:"id"`
	}
	json.NewDecoder(resp.Body).Decode(&out)
	resp.Body.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	job, _ := s.Job(out.ID)
	if st := job.status(false); st.State != StateDone {
		t.Fatalf("accepted job drained to %s (%s), want done", st.State, st.Error)
	}

	// Post-shutdown: submissions 503, healthz 503.
	resp, err = http.Post(ts.URL+"/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("post-shutdown submit got %d, want 503", resp.StatusCode)
	}
	resp, err = http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("post-shutdown healthz got %d, want 503", resp.StatusCode)
	}
	// Idempotent.
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("second shutdown: %v", err)
	}
}

// Bad specs fail at submission with 400 and a registry-grounded message.
func TestSubmitRejectsBadSpec(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	cases := []struct {
		body string
		want string
	}{
		{`{"avail": ["sunny"]}`, "unknown availability model"},
		{`{"avial": ["diurnal"]}`, "unknown field"},
		{`not json`, "bad job spec"},
	}
	for _, c := range cases {
		resp, err := http.Post(ts.URL+"/jobs", "application/json", strings.NewReader(c.body))
		if err != nil {
			t.Fatal(err)
		}
		msg, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("%q: status %d, want 400", c.body, resp.StatusCode)
		}
		if !strings.Contains(string(msg), c.want) {
			t.Fatalf("%q: error %q does not mention %q", c.body, msg, c.want)
		}
	}
	resp, err := http.Get(ts.URL + "/jobs/job-999999")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown job got %d, want 404", resp.StatusCode)
	}
}

// healthz answers ok while the daemon is live.
func TestHealthz(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(body), "ok") {
		t.Fatalf("healthz: %d %q", resp.StatusCode, body)
	}
}

// Concurrent clients hammer a shared daemon: submits, polls, streams and
// stats at once. Run under -race (the make race-serve gate).
func TestConcurrentClients(t *testing.T) {
	s, ts := newTestServer(t, Options{QueueDepth: 32})
	spec := scenario.JobSpec{
		Avail:    []string{"diurnal"},
		Policies: []string{"fixed"},
		Fleets:   []string{"homog"},
		Seeds:    1,
	}
	const clients = 6
	ids := make([]string, clients)
	done := make(chan int, clients)
	for c := 0; c < clients; c++ {
		c := c
		go func() {
			ids[c] = submit(t, ts, spec)
			resp, err := http.Get(ts.URL + "/jobs/" + ids[c] + "/stream")
			if err == nil {
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
			}
			done <- c
		}()
	}
	for i := 0; i < clients; i++ {
		go http.Get(ts.URL + "/stats")
		go http.Get(ts.URL + "/jobs")
	}
	for i := 0; i < clients; i++ {
		select {
		case <-done:
		case <-time.After(120 * time.Second):
			t.Fatal("concurrent clients timed out")
		}
	}
	var renders []string
	for _, id := range ids {
		st := waitDone(t, s, id)
		if st.State != StateDone {
			t.Fatalf("job %s: %s (%s)", id, st.State, st.Error)
		}
		renders = append(renders, st.Render)
	}
	for _, r := range renders[1:] {
		if r != renders[0] {
			t.Fatal("identical concurrent jobs rendered differently")
		}
	}
}
