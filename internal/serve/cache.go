package serve

import (
	"sync"

	"spotserve/internal/experiments"
)

// cellCache is the daemon's fingerprint-equivalent cell store: completed
// per-seed replicas keyed by experiments.Scenario.CacheKey, shared across
// every job the daemon serves, so a repeated what-if query replays stored
// results instead of re-simulating. Eviction is FIFO in insertion order —
// the sweep workloads hit either everything (repeated grid) or nothing
// (fresh axes), so recency tracking buys little over insertion order.
// Safe for concurrent use by sweep workers; implements
// experiments.ResultCache.
type cellCache struct {
	mu    sync.Mutex
	max   int
	cells map[string]experiments.Result
	order []string // insertion order for FIFO eviction
	hits  uint64
	miss  uint64
}

func newCellCache(max int) *cellCache {
	return &cellCache{max: max, cells: make(map[string]experiments.Result)}
}

func (c *cellCache) Get(key string) (experiments.Result, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	r, ok := c.cells[key]
	if ok {
		c.hits++
	} else {
		c.miss++
	}
	return r, ok
}

func (c *cellCache) Put(key string, r experiments.Result) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.cells[key]; ok {
		return
	}
	for len(c.order) >= c.max && len(c.order) > 0 {
		oldest := c.order[0]
		c.order = c.order[1:]
		delete(c.cells, oldest)
	}
	c.cells[key] = r
	c.order = append(c.order, key)
}

// CacheStats is the cache section of the daemon's /stats payload.
type CacheStats struct {
	Size    int     `json:"size"`
	Max     int     `json:"max"`
	Hits    uint64  `json:"hits"`
	Misses  uint64  `json:"misses"`
	HitRate float64 `json:"hit_rate"`
}

func (c *cellCache) stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	s := CacheStats{Size: len(c.cells), Max: c.max, Hits: c.hits, Misses: c.miss}
	if total := c.hits + c.miss; total > 0 {
		s.HitRate = float64(c.hits) / float64(total)
	}
	return s
}

// countingCache wraps the shared cell cache to attribute hits and misses to
// one job (the per-job hit count /jobs/{id} reports). The inner cache is an
// interface so chaos mode can interpose a fault-injected wrapper — an
// outage then counts as the miss it behaves as.
type countingCache struct {
	inner experiments.ResultCache
	mu    sync.Mutex
	hits  int
	miss  int
}

func (c *countingCache) Get(key string) (experiments.Result, bool) {
	r, ok := c.inner.Get(key)
	c.mu.Lock()
	if ok {
		c.hits++
	} else {
		c.miss++
	}
	c.mu.Unlock()
	return r, ok
}

func (c *countingCache) Put(key string, r experiments.Result) { c.inner.Put(key, r) }

func (c *countingCache) counts() (hits, misses int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.miss
}
