package serve

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"spotserve/internal/experiments"
	"spotserve/internal/faults"
	"spotserve/internal/scenario"
)

// cancelJob issues DELETE /jobs/{id} and returns whether the cancel took.
func cancelJob(t *testing.T, ts *httptest.Server, id string) bool {
	t.Helper()
	req, err := http.NewRequest(http.MethodDelete, ts.URL+"/jobs/"+id, nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("DELETE status %d", resp.StatusCode)
	}
	var out struct {
		Cancelled bool `json:"cancelled"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	return out.Cancelled
}

// The headline chaos test: a 50-cell default-grid job with one injected
// cell panic completes degraded — 49 good rows, one n/a error row — and the
// good rows are byte-identical to a fault-free daemon's.
func TestFiftyCellJobDegradesOnOnePanic(t *testing.T) {
	// Empty spec = the full 50-cell default grid at one seed, so flat sweep
	// job indices equal grid cell indices and the plan pins exactly cell 7.
	spec := scenario.JobSpec{}
	clean, tsClean := newTestServer(t, Options{})
	cleanSt := waitDone(t, clean, submit(t, tsClean, spec))
	if cleanSt.State != StateDone || cleanSt.Cells != 50 {
		t.Fatalf("fault-free run: state %s, %d cells (want done, 50)", cleanSt.State, cleanSt.Cells)
	}

	s, ts := newTestServer(t, Options{
		Faults: &faults.Plan{Kind: faults.CellPanic, Seed: 1, Cells: []int{7}},
	})
	st := waitDone(t, s, submit(t, ts, spec))
	if st.State != StateDegraded {
		t.Fatalf("state %s (%s), want degraded", st.State, st.Error)
	}
	if st.FailedCells != 1 {
		t.Fatalf("failed_cells = %d, want 1", st.FailedCells)
	}
	if len(st.Rows) != 50 {
		t.Fatalf("%d rows, want 50 (failed cell included as an error row)", len(st.Rows))
	}
	cleanByCell := map[int]Row{}
	for _, r := range cleanSt.Rows {
		cleanByCell[r.Cell] = r
	}
	good := 0
	for _, r := range st.Rows {
		if r.Cell == 7 {
			if r.Err == "" || !strings.Contains(r.Err, "injected panic") {
				t.Fatalf("cell 7 err = %q, want the injected panic", r.Err)
			}
			if len(r.Fingerprints) != 0 {
				t.Fatal("failed cell carries fingerprints")
			}
			continue
		}
		good++
		if r.Err != "" {
			t.Fatalf("cell %d collaterally failed: %s", r.Cell, r.Err)
		}
		want := cleanByCell[r.Cell]
		if len(r.Fingerprints) == 0 || strings.Join(r.Fingerprints, ",") != strings.Join(want.Fingerprints, ",") {
			t.Fatalf("cell %d fingerprints differ from the fault-free run", r.Cell)
		}
	}
	if good != 49 {
		t.Fatalf("%d good rows, want 49", good)
	}
	if !strings.Contains(st.Render, "n/a") || !strings.Contains(st.Render, "1 cell(s) failed") {
		t.Fatalf("render lacks the n/a row or error footer:\n%s", st.Render)
	}

	stats := s.StatsSnapshot()
	if stats.JobsDegraded != 1 || stats.CellFailures != 1 {
		t.Fatalf("stats %+v, want 1 degraded job / 1 cell failure", stats)
	}
}

// Transient faults healed by the daemon's retry policy leave the job done,
// byte-identical to a fault-free run, with the retry surfaced in status and
// /stats.
func TestDaemonRetriesHealTransientFault(t *testing.T) {
	clean, tsClean := newTestServer(t, Options{})
	cleanSt := waitDone(t, clean, submit(t, tsClean, smallSpec()))

	s, ts := newTestServer(t, Options{
		Retry:  experiments.RetryPolicy{MaxAttempts: 3},
		Faults: &faults.Plan{Kind: faults.TransientError, Seed: 1, Cells: []int{1}, SucceedAfter: 2},
	})
	st := waitDone(t, s, submit(t, ts, smallSpec()))
	if st.State != StateDone {
		t.Fatalf("state %s (%s), want done — the retry should heal", st.State, st.Error)
	}
	if st.Retries != 1 || st.FailedCells != 0 {
		t.Fatalf("retries=%d failed=%d, want 1/0", st.Retries, st.FailedCells)
	}
	if st.Render != cleanSt.Render {
		t.Fatal("healed render differs from fault-free render")
	}
	if stats := s.StatsSnapshot(); stats.CellRetries != 1 || stats.JobsDone != 1 {
		t.Fatalf("stats %+v, want 1 cell retry on a done job", stats)
	}
}

// A total cache outage degrades to recomputation, never to wrong answers:
// the repeated job records zero hits but renders byte-identically.
func TestCacheOutageForcesRecomputeOnly(t *testing.T) {
	s, ts := newTestServer(t, Options{
		Faults: &faults.Plan{Kind: faults.CacheOutage, Seed: 1, Cells: []int{0}},
	})
	first := waitDone(t, s, submit(t, ts, smallSpec()))
	second := waitDone(t, s, submit(t, ts, smallSpec()))
	if first.State != StateDone || second.State != StateDone {
		t.Fatalf("states %s/%s, want done/done", first.State, second.State)
	}
	if second.CacheHits != 0 {
		t.Fatalf("outage job still hit the cache %d times", second.CacheHits)
	}
	if first.Render != second.Render {
		t.Fatal("recomputed job rendered differently — outage corrupted results")
	}
}

// DELETE on a running job cancels it cooperatively: the stalled in-flight
// cell completes once released, unstarted cells short-circuit, and the
// stream's done-line reports the cancelled state.
func TestDeleteCancelsRunningJob(t *testing.T) {
	entered := make(chan struct{}, 16)
	release := make(chan struct{})
	s, ts := newTestServer(t, Options{
		Parallel: 1,
		Faults: &faults.Plan{
			Kind: faults.SlowCell, Seed: 1, Rate: 1,
			Sleep: func(time.Duration) { entered <- struct{}{}; <-release },
		},
	})
	id := submit(t, ts, scenario.JobSpec{
		Avail: []string{"diurnal", "bursty"}, Policies: []string{"fixed"},
		Fleets: []string{"homog"}, Seeds: 1,
	})
	// Open the stream before cancelling so the done-line is observable.
	streamResp, err := http.Get(ts.URL + "/jobs/" + id + "/stream")
	if err != nil {
		t.Fatal(err)
	}
	defer streamResp.Body.Close()

	select {
	case <-entered: // the first cell is stalled mid-attempt
	case <-time.After(30 * time.Second):
		t.Fatal("no cell entered the stall gate")
	}
	if !cancelJob(t, ts, id) {
		t.Fatal("DELETE on a running job reported cancelled=false")
	}
	close(release)

	st := waitDone(t, s, id)
	if st.State != StateCancelled {
		t.Fatalf("state %s (%s), want cancelled", st.State, st.Error)
	}
	if !strings.Contains(st.Error, "cancelled by client") {
		t.Fatalf("error %q", st.Error)
	}
	// The stream must terminate with a cancelled done-line.
	var lastLine []byte
	sc := bufio.NewScanner(streamResp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<24)
	for sc.Scan() {
		lastLine = append(lastLine[:0], sc.Bytes()...)
	}
	var term struct {
		Done  bool  `json:"done"`
		State State `json:"state"`
	}
	if err := json.Unmarshal(lastLine, &term); err != nil {
		t.Fatalf("bad terminal line %q: %v", lastLine, err)
	}
	if !term.Done || term.State != StateCancelled {
		t.Fatalf("done-line %+v, want cancelled", term)
	}
	// A second DELETE is a no-op on a terminal job.
	if cancelJob(t, ts, id) {
		t.Fatal("DELETE on a terminal job reported cancelled=true")
	}
	if stats := s.StatsSnapshot(); stats.JobsCancelled != 1 {
		t.Fatalf("stats %+v, want 1 cancelled job", stats)
	}
}

// DELETE on a queued job cancels it before it ever runs.
func TestDeleteCancelsQueuedJob(t *testing.T) {
	release := make(chan struct{})
	s, ts := newTestServer(t, Options{QueueDepth: 4})
	s.testJobStart = func(*Job) { <-release }
	first := submit(t, ts, smallSpec())
	queued := submit(t, ts, smallSpec())
	if !cancelJob(t, ts, queued) {
		t.Fatal("DELETE on a queued job reported cancelled=false")
	}
	close(release)
	if st := waitDone(t, s, queued); st.State != StateCancelled || !strings.Contains(st.Error, "before start") {
		t.Fatalf("queued job drained to %s (%s), want cancelled before start", st.State, st.Error)
	}
	if st := waitDone(t, s, first); st.State != StateDone {
		t.Fatalf("first job: %s (%s)", st.State, st.Error)
	}
}

// A job over its deadline_ms finishes in the deadline state, keeping the
// rows that completed in time.
func TestDeadlineExpires(t *testing.T) {
	s, ts := newTestServer(t, Options{
		Parallel: 1,
		// Every cell stalls 200 ms against a 50 ms deadline: the first cell
		// finishes late (in-flight work is never interrupted), the rest
		// short-circuit.
		Faults: &faults.Plan{Kind: faults.SlowCell, Seed: 1, Rate: 1, Stall: 200 * time.Millisecond},
	})
	body, _ := json.Marshal(map[string]any{
		"avail": []string{"diurnal", "bursty"}, "policies": []string{"fixed"},
		"fleets": []string{"homog"}, "seeds": 1, "deadline_ms": 50,
	})
	resp, err := http.Post(ts.URL+"/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var out struct {
		ID string `json:"id"`
	}
	json.NewDecoder(resp.Body).Decode(&out)
	resp.Body.Close()

	st := waitDone(t, s, out.ID)
	if st.State != StateDeadline {
		t.Fatalf("state %s (%s), want deadline", st.State, st.Error)
	}
	if !strings.Contains(st.Error, "deadline") {
		t.Fatalf("error %q", st.Error)
	}
	if stats := s.StatsSnapshot(); stats.JobsDeadline != 1 {
		t.Fatalf("stats %+v, want 1 deadline job", stats)
	}
}

// A client that disconnects mid-stream is unsubscribed promptly: the job's
// fan-out list drains to zero, emit never blocks, and the job still
// completes.
func TestStreamClientDisconnectUnsubscribes(t *testing.T) {
	release := make(chan struct{})
	s, ts := newTestServer(t, Options{})
	s.testJobStart = func(*Job) { <-release }
	id := submit(t, ts, smallSpec())
	job, _ := s.Job(id)

	ctx, cancelReq := context.WithCancel(context.Background())
	req, _ := http.NewRequestWithContext(ctx, http.MethodGet, ts.URL+"/jobs/"+id+"/stream", nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	waitFor := func(want int, what string) {
		t.Helper()
		deadline := time.Now().Add(10 * time.Second)
		for job.subscribers() != want {
			if time.Now().After(deadline) {
				t.Fatalf("%s: %d subscribers, want %d", what, job.subscribers(), want)
			}
			time.Sleep(5 * time.Millisecond)
		}
	}
	waitFor(1, "after connect")
	cancelReq() // client disconnects mid-stream, before any row arrives
	resp.Body.Close()
	waitFor(0, "after disconnect")

	close(release)
	if st := waitDone(t, s, id); st.State != StateDone {
		t.Fatalf("job after subscriber vanished: %s (%s)", st.State, st.Error)
	}
}

// Request bodies over the configured limit are rejected with 400.
func TestSubmitBodyLimit(t *testing.T) {
	_, ts := newTestServer(t, Options{MaxBodyBytes: 64})
	big := `{"avail": ["diurnal"], "policies": ["fixed", "` + strings.Repeat("x", 200) + `"]}`
	resp, err := http.Post(ts.URL+"/jobs", "application/json", strings.NewReader(big))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("oversized body got %d, want 400", resp.StatusCode)
	}
}
