package serve

import (
	"sync"

	"spotserve/internal/scenario"
)

// State is a job's lifecycle phase.
type State string

const (
	StateQueued  State = "queued"
	StateRunning State = "running"
	StateDone    State = "done"
	StateFailed  State = "failed"
)

// Row is one streamed grid result: the cell index in grid order plus the
// cell's assembled row. Cells stream in completion order (nondeterministic
// under parallelism) — Cell is the key a client reorders by; the row
// content at a given Cell is deterministic and fingerprint-matched against
// the equivalent CLI run.
type Row struct {
	Cell int `json:"cell"`
	scenario.GridRow
}

// Job is one submitted grid sweep moving through the daemon's queue.
type Job struct {
	ID    string           `json:"id"`
	Spec  scenario.JobSpec `json:"spec"`
	Cells int              `json:"cells"`
	Seeds int              `json:"seeds_per_cell"`

	mu     sync.Mutex
	state  State
	errMsg string
	rows   []Row // completion order
	render string
	hits   int
	misses int
	subs   []chan Row
	done   chan struct{}
}

func newJob(id string, spec scenario.JobSpec, cells, seeds int) *Job {
	return &Job{
		ID:    id,
		Spec:  spec,
		Cells: cells,
		Seeds: seeds,
		state: StateQueued,
		done:  make(chan struct{}),
	}
}

// Status is the poll-endpoint view of a job.
type Status struct {
	ID           string           `json:"id"`
	State        State            `json:"state"`
	Error        string           `json:"error,omitempty"`
	Spec         scenario.JobSpec `json:"spec"`
	Cells        int              `json:"cells"`
	SeedsPerCell int              `json:"seeds_per_cell"`
	RowsDone     int              `json:"rows_done"`
	CacheHits    int              `json:"cache_hits"`
	CacheMisses  int              `json:"cache_misses"`
	// Rows are the completed rows so far, in completion order.
	Rows []Row `json:"rows,omitempty"`
	// Render is the full rendered grid table — byte-identical to the
	// equivalent `experiments -exp scenarios` run — present once done.
	Render string `json:"render,omitempty"`
}

// status snapshots the job. withRows controls whether the (potentially
// large) row payload is included.
func (j *Job) status(withRows bool) Status {
	j.mu.Lock()
	defer j.mu.Unlock()
	s := Status{
		ID:           j.ID,
		State:        j.state,
		Error:        j.errMsg,
		Spec:         j.Spec,
		Cells:        j.Cells,
		SeedsPerCell: j.Seeds,
		RowsDone:     len(j.rows),
		CacheHits:    j.hits,
		CacheMisses:  j.misses,
		Render:       j.render,
	}
	if withRows {
		s.Rows = append([]Row(nil), j.rows...)
	}
	return s
}

func (j *Job) setState(s State) {
	j.mu.Lock()
	j.state = s
	j.mu.Unlock()
}

// emit appends a completed row and fans it out to every stream subscriber.
// Subscriber channels are buffered to the job's cell count, so a send can
// never block the sweep worker that produced the row.
func (j *Job) emit(r Row) {
	j.mu.Lock()
	j.rows = append(j.rows, r)
	for _, ch := range j.subs {
		ch <- r
	}
	j.mu.Unlock()
}

// finish moves the job to its terminal state, records the rendered table
// (or the failure), and closes every subscriber stream. It is idempotent:
// a shutdown deadline may fail a job the runner is still finishing, and
// whichever call lands first wins.
func (j *Job) finish(render string, hits, misses int, err error) {
	j.mu.Lock()
	if j.state == StateDone || j.state == StateFailed {
		j.mu.Unlock()
		return
	}
	if err != nil {
		j.state = StateFailed
		j.errMsg = err.Error()
	} else {
		j.state = StateDone
		j.render = render
	}
	j.hits, j.misses = hits, misses
	for _, ch := range j.subs {
		close(ch)
	}
	j.subs = nil
	close(j.done)
	j.mu.Unlock()
}

// subscribe returns the rows emitted so far plus a channel carrying every
// subsequent row; the channel is closed when the job reaches a terminal
// state. For an already-finished job the channel arrives closed.
func (j *Job) subscribe() (backlog []Row, live <-chan Row) {
	j.mu.Lock()
	defer j.mu.Unlock()
	backlog = append([]Row(nil), j.rows...)
	ch := make(chan Row, j.Cells+1)
	if j.state == StateDone || j.state == StateFailed {
		close(ch)
		return backlog, ch
	}
	j.subs = append(j.subs, ch)
	return backlog, ch
}

// Done exposes the job's completion signal.
func (j *Job) Done() <-chan struct{} { return j.done }
