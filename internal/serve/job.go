package serve

import (
	"sync"
	"time"

	"spotserve/internal/calibrate"
	"spotserve/internal/scenario"
)

// State is a job's lifecycle phase.
type State string

const (
	StateQueued  State = "queued"
	StateRunning State = "running"
	// StateDone: every cell completed.
	StateDone State = "done"
	// StateDegraded: the job finished, but fault isolation degraded at
	// least one cell to an error row (rendered n/a); every other row is
	// present and byte-identical to a healthy run.
	StateDegraded State = "degraded"
	// StateCancelled: a client cancelled the job (DELETE /jobs/{id});
	// completed rows are kept.
	StateCancelled State = "cancelled"
	// StateDeadline: the job's per-job deadline expired mid-run; completed
	// rows are kept.
	StateDeadline State = "deadline"
	// StateFailed: the job produced no usable result (bad grid, a
	// whole-job panic, every cell failed, or shutdown interrupted it).
	StateFailed State = "failed"
)

// terminal reports whether a state is final.
func terminal(s State) bool {
	switch s {
	case StateDone, StateDegraded, StateCancelled, StateDeadline, StateFailed:
		return true
	}
	return false
}

// Row is one streamed grid result: the cell index in grid order plus the
// cell's assembled row. Cells stream in completion order (nondeterministic
// under parallelism) — Cell is the key a client reorders by; the row
// content at a given Cell is deterministic and fingerprint-matched against
// the equivalent CLI run. A fault-isolated failure streams as a row whose
// embedded GridRow carries Err (and renders n/a in the table).
type Row struct {
	Cell int `json:"cell"`
	scenario.GridRow
}

// Job kinds: a grid sweep (the default) or a calibration replay.
const (
	KindGrid      = "grid"
	KindCalibrate = "calibrate"
)

// Job is one submitted job moving through the daemon's queue: a grid sweep
// (KindGrid) or a calibration replay (KindCalibrate). Both share the queue,
// the cell cache and the NDJSON row stream; a calibrate job replays exactly
// one cell and additionally carries a tolerance-scored report when done.
type Job struct {
	ID string `json:"id"`
	// Kind distinguishes grid sweeps from calibration replays ("" is
	// treated as KindGrid for compatibility).
	Kind  string           `json:"kind,omitempty"`
	Spec  scenario.JobSpec `json:"spec"`
	Cells int              `json:"cells"`
	Seeds int              `json:"seeds_per_cell"`

	// Observed is the calibrate job's input trace (nil for grid jobs).
	Observed *calibrate.ObservedTrace `json:"observed,omitempty"`

	// deadline bounds the run once it starts (0 = none); from the spec.
	deadline time.Duration

	mu          sync.Mutex
	state       State
	errMsg      string
	rows        []Row // completion order
	render      string
	calibration *calibrate.Report
	hits        int
	misses      int
	retries     int
	failedCells int
	cancelled   bool
	subs        []chan Row
	cancelCh    chan struct{}
	done        chan struct{}
}

func newJob(id string, spec scenario.JobSpec, cells, seeds int) *Job {
	return &Job{
		ID:       id,
		Spec:     spec,
		Cells:    cells,
		Seeds:    seeds,
		deadline: time.Duration(spec.DeadlineMS) * time.Millisecond,
		state:    StateQueued,
		cancelCh: make(chan struct{}),
		done:     make(chan struct{}),
	}
}

// Status is the poll-endpoint view of a job.
type Status struct {
	ID           string           `json:"id"`
	Kind         string           `json:"kind,omitempty"`
	State        State            `json:"state"`
	Error        string           `json:"error,omitempty"`
	Spec         scenario.JobSpec `json:"spec"`
	Cells        int              `json:"cells"`
	SeedsPerCell int              `json:"seeds_per_cell"`
	RowsDone     int              `json:"rows_done"`
	CacheHits    int              `json:"cache_hits"`
	CacheMisses  int              `json:"cache_misses"`
	// Retries counts extra cell attempts the retry policy ran; FailedCells
	// counts cells that degraded to error rows.
	Retries     int `json:"retries,omitempty"`
	FailedCells int `json:"failed_cells,omitempty"`
	// CancelRequested reports a DELETE seen but not yet acted on (the job
	// was queued or mid-cell when it arrived).
	CancelRequested bool `json:"cancel_requested,omitempty"`
	// Rows are the completed rows so far, in completion order.
	Rows []Row `json:"rows,omitempty"`
	// Render is the full rendered grid table — byte-identical to the
	// equivalent `experiments -exp scenarios` run — present once the job
	// reaches a terminal state with any rows (degraded/cancelled/deadline
	// renders carry n/a rows for the cells that never completed). For a
	// calibrate job it is the rendered calibration report, byte-identical
	// to the `-exp calibrate` CLI output.
	Render string `json:"render,omitempty"`
	// Calibration is the calibrate job's tolerance-scored report (nil for
	// grid jobs and until the job finishes).
	Calibration *calibrate.Report `json:"calibration,omitempty"`
}

// status snapshots the job. withRows controls whether the (potentially
// large) row payload is included.
func (j *Job) status(withRows bool) Status {
	j.mu.Lock()
	defer j.mu.Unlock()
	s := Status{
		ID:              j.ID,
		Kind:            j.Kind,
		State:           j.state,
		Error:           j.errMsg,
		Spec:            j.Spec,
		Cells:           j.Cells,
		SeedsPerCell:    j.Seeds,
		RowsDone:        len(j.rows),
		CacheHits:       j.hits,
		CacheMisses:     j.misses,
		Retries:         j.retries,
		FailedCells:     j.failedCells,
		CancelRequested: j.cancelled && !terminal(j.state),
		Render:          j.render,
		Calibration:     j.calibration,
	}
	if withRows {
		s.Rows = append([]Row(nil), j.rows...)
	}
	return s
}

func (j *Job) setState(s State) {
	j.mu.Lock()
	j.state = s
	j.mu.Unlock()
}

// Cancel requests cooperative cancellation and reports whether the request
// took effect (false once the job is terminal or already cancelled). The
// runner observes it through cancelCh: a queued job finishes cancelled
// without running, a running job's sweep context is cancelled so remaining
// cells short-circuit while in-flight cells complete.
func (j *Job) Cancel() bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.cancelled || terminal(j.state) {
		return false
	}
	j.cancelled = true
	close(j.cancelCh)
	return true
}

// isCancelled reports whether a client requested cancellation.
func (j *Job) isCancelled() bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.cancelled
}

// emit appends a completed row and fans it out to every stream subscriber.
// Subscriber channels are buffered to the job's cell count, so a send can
// never block the sweep worker that produced the row — even when the
// subscribing client has disconnected and nobody is draining.
func (j *Job) emit(r Row) {
	j.mu.Lock()
	j.rows = append(j.rows, r)
	for _, ch := range j.subs {
		ch <- r
	}
	j.mu.Unlock()
}

// outcome is everything finish records about a job's terminal state.
type outcome struct {
	state       State
	errMsg      string
	render      string
	calibration *calibrate.Report
	hits        int
	misses      int
	retries     int
	failedCells int
}

// finish moves the job to its terminal state, records the rendered table
// and counters, and closes every subscriber stream. It is idempotent: a
// shutdown deadline may fail a job the runner is still finishing, and
// whichever call lands first wins.
func (j *Job) finish(o outcome) {
	j.mu.Lock()
	if terminal(j.state) {
		j.mu.Unlock()
		return
	}
	j.state = o.state
	j.errMsg = o.errMsg
	j.render = o.render
	j.calibration = o.calibration
	j.hits, j.misses = o.hits, o.misses
	j.retries, j.failedCells = o.retries, o.failedCells
	for _, ch := range j.subs {
		close(ch)
	}
	j.subs = nil
	close(j.done)
	j.mu.Unlock()
}

// subscribe returns the rows emitted so far plus a channel carrying every
// subsequent row; the channel is closed when the job reaches a terminal
// state. For an already-finished job the channel arrives closed. Callers
// that stop consuming before the job finishes must unsubscribe, or the
// dead channel stays fanned-out until the job ends.
func (j *Job) subscribe() (backlog []Row, live chan Row) {
	j.mu.Lock()
	defer j.mu.Unlock()
	backlog = append([]Row(nil), j.rows...)
	ch := make(chan Row, j.Cells+1)
	if terminal(j.state) {
		close(ch)
		return backlog, ch
	}
	j.subs = append(j.subs, ch)
	return backlog, ch
}

// unsubscribe removes a subscriber registered by subscribe. Safe to call
// after finish (the subscriber list is already gone) and for channels that
// were never registered.
func (j *Job) unsubscribe(ch chan Row) {
	j.mu.Lock()
	defer j.mu.Unlock()
	for i, c := range j.subs {
		if c == ch {
			j.subs = append(j.subs[:i], j.subs[i+1:]...)
			return
		}
	}
}

// subscribers reports the live subscriber count (tests assert that a
// disconnected client's subscription is reaped).
func (j *Job) subscribers() int {
	j.mu.Lock()
	defer j.mu.Unlock()
	return len(j.subs)
}

// Done exposes the job's completion signal.
func (j *Job) Done() <-chan struct{} { return j.done }
